#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

namespace poe {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextU64() == b.NextU64());
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    float v = rng.Uniform(-2.5f, 3.5f);
    EXPECT_GE(v, -2.5f);
    EXPECT_LT(v, 3.5f);
  }
}

TEST(RngTest, NextIntCoversRange) {
  Rng rng(99);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInt(10);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 10);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, NormalHasRoughlyStandardMoments) {
  Rng rng(31);
  const int n = 50000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal();
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, NormalWithParams) {
  Rng rng(32);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Normal(5.0f, 0.5f);
  EXPECT_NEAR(sum / n, 5.0, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(5);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> orig = v;
  rng.Shuffle(v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(11);
  Rng child = parent.Fork();
  // Parent continues after fork; child differs from a fresh copy.
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (parent.NextU64() == child.NextU64());
  EXPECT_LE(same, 1);
}

}  // namespace
}  // namespace poe

// Pool generations and live upgrade: content diffing, selective cache
// invalidation, adoption (memory sharing across generations), precision
// policy, upgrade-under-load, and the generation counters.
#include "core/versioned_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "core/query_service.h"
#include "core/request.h"
#include "distill/specialize.h"
#include "eval/metrics.h"
#include "net/wire.h"
#include "serve/inference_server.h"
#include "test_util.h"

namespace poe {
namespace {

using testutil::FastTrainOptions;
using testutil::TinyDataConfig;
using testutil::TinyLibraryConfig;
using testutil::TinyOracleConfig;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// Builds a small pool once for all generation tests (training is the slow
// part; every test then works on Save/Load deep copies).
ExpertPool BuildPool() {
  static SyntheticDataset* data =
      new SyntheticDataset(GenerateSyntheticDataset(TinyDataConfig()));
  static Wrn* oracle = [] {
    Rng rng(41);
    Wrn* w = new Wrn(TinyOracleConfig(), rng);
    TrainScratch(*w, data->train, FastTrainOptions(4));
    return w;
  }();
  PoeBuildConfig cfg;
  cfg.library_config = TinyLibraryConfig();
  cfg.expert_ks = 0.5;
  cfg.library_options = FastTrainOptions(2);
  cfg.expert_options = FastTrainOptions(2);
  Rng rng(42);
  return ExpertPool::Preprocess(ModelLogits(*oracle), *data, cfg, rng);
}

/// A DEEP copy of the seed pool: the copy constructor shares masters (by
/// design), so content-independent generations go through Save/Load.
ExpertPool DeepCopy(const std::string& tag) {
  const std::string path = TempPath("versioned_" + tag + ".poe");
  ExpertPool pool = BuildPool();
  EXPECT_TRUE(pool.Save(path).ok());
  auto loaded = ExpertPool::Load(path);
  EXPECT_TRUE(loaded.ok());
  return std::move(loaded).ValueOrDie();
}

/// Perturbs one weight of expert `task_id` so its content CRC changes.
void PerturbExpert(ExpertPool& pool, int task_id) {
  auto params = pool.expert(task_id)->Parameters();
  ASSERT_FALSE(params.empty());
  params.front()->value.data()[0] += 1.0f;
}

TEST(GenerationCoversKeyTest, AppliesTheChangeTableRule) {
  PoolGeneration gen(3, BuildPool());
  gen.last_changed = {1, 3, 2};
  // Unversioned models never validate.
  EXPECT_FALSE(GenerationCoversKey(gen, {0}, 0));
  // Covered: every key expert last changed at or before the model's gen.
  EXPECT_TRUE(GenerationCoversKey(gen, {0, 2}, 2));
  EXPECT_TRUE(GenerationCoversKey(gen, {0, 1, 2}, 3));
  // Expert 1 changed in gen 3: models from gen 2 are stale for it.
  EXPECT_FALSE(GenerationCoversKey(gen, {1}, 2));
  // Removed / never-existed experts are never covered.
  EXPECT_FALSE(GenerationCoversKey(gen, {7}, 3));
  EXPECT_FALSE(GenerationCoversKey(gen, {-1}, 3));
}

TEST(VersionedPoolTest, NoopSwapDiffsAsNoopAndAdvancesGeneration) {
  VersionedPool versioned(DeepCopy("noop_a"));
  EXPECT_EQ(versioned.generation(), 1u);
  auto diff = versioned.Swap(DeepCopy("noop_b"));
  ASSERT_TRUE(diff.ok());
  EXPECT_TRUE(diff.ValueOrDie().noop());
  EXPECT_EQ(diff.ValueOrDie().unchanged, 3);
  EXPECT_EQ(versioned.generation(), 2u);
  EXPECT_EQ(versioned.generations_swapped(), 1);
  // A faithful reload carries every last_changed forward: gen-1 models
  // still cover every key.
  EXPECT_TRUE(GenerationCoversKey(*versioned.Current(), {0, 1, 2}, 1));
}

TEST(VersionedPoolTest, ChangedExpertIsDiffedAndChangeTableBumped) {
  VersionedPool versioned(DeepCopy("chg_a"));
  ExpertPool next = DeepCopy("chg_b");
  PerturbExpert(next, 1);
  auto diff_result = versioned.Swap(std::move(next));
  ASSERT_TRUE(diff_result.ok());
  const GenerationDiff diff = diff_result.ValueOrDie();
  EXPECT_EQ(diff.changed, (std::vector<int>{1}));
  EXPECT_EQ(diff.unchanged, 2);
  EXPECT_FALSE(diff.library_changed);
  EXPECT_FALSE(diff.noop());
  const PoolGenerationHandle gen = versioned.Current();
  EXPECT_TRUE(GenerationCoversKey(*gen, {0, 2}, 1));
  EXPECT_FALSE(GenerationCoversKey(*gen, {1}, 1));
  EXPECT_TRUE(GenerationCoversKey(*gen, {1}, 2));
}

TEST(VersionedPoolTest, UnchangedMastersAreAdoptedByPointer) {
  ExpertPool first = DeepCopy("adopt_a");
  const std::shared_ptr<Sequential> e0 = first.expert(0);
  const std::shared_ptr<Sequential> trunk = first.library();
  VersionedPool versioned(std::move(first));
  ExpertPool next = DeepCopy("adopt_b");
  PerturbExpert(next, 1);
  ASSERT_TRUE(versioned.Swap(std::move(next)).ok());
  const PoolGenerationHandle gen = versioned.Current();
  // Unchanged expert and trunk keep POINTER identity across the swap (no
  // byte duplication; serving-layer trunk fusion keeps working).
  EXPECT_EQ(gen->pool.expert(0).get(), e0.get());
  EXPECT_EQ(gen->pool.library().get(), trunk.get());
  // The changed expert is the new generation's own module.
  EXPECT_NE(gen->pool.expert(1).get(), nullptr);
}

TEST(VersionedPoolTest, Int8NextIntoF32FacadeIsRejected) {
  VersionedPool versioned(DeepCopy("prec_a"));
  ExpertPool next = DeepCopy("prec_b");
  ASSERT_TRUE(next.SetServingPrecision(ServingPrecision::kInt8).ok());
  auto diff = versioned.Swap(std::move(next));
  ASSERT_FALSE(diff.ok());
  EXPECT_EQ(diff.status().code(), StatusCode::kFailedPrecondition);
  // The failed swap published nothing.
  EXPECT_EQ(versioned.generation(), 1u);
  EXPECT_EQ(versioned.generations_swapped(), 0);
}

TEST(QueryServiceUpgradeTest, InvalidatesOnlyChangedKeys) {
  ModelQueryService service(DeepCopy("sel_a"), /*cache_capacity=*/8);
  auto m0 = service.Query({0}).ValueOrDie();
  service.Query({1}).ValueOrDie();
  auto m02 = service.Query({0, 2}).ValueOrDie();
  service.Query({1, 2}).ValueOrDie();
  EXPECT_EQ(service.cache_size(), 4u);

  ExpertPool next = DeepCopy("sel_b");
  PerturbExpert(next, 1);
  auto diff = service.UpgradePool(std::move(next));
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff.ValueOrDie().changed, (std::vector<int>{1}));

  // Exactly the keys naming expert 1 were dropped.
  ServeStats stats = service.serve_stats();
  EXPECT_EQ(stats.cache_keys_invalidated, 2);
  EXPECT_EQ(service.cache_size(), 2u);
  EXPECT_EQ(stats.generation, 2u);
  EXPECT_EQ(stats.generations_swapped, 1);

  // Unchanged composites keep hitting — the SAME cached objects.
  const int64_t hits_before = service.serve_stats().cache_hits;
  EXPECT_EQ(service.Query({0}).ValueOrDie().get(), m0.get());
  EXPECT_EQ(service.Query({0, 2}).ValueOrDie().get(), m02.get());
  EXPECT_EQ(service.serve_stats().cache_hits, hits_before + 2);

  // Changed keys miss exactly once, then hit again.
  const int64_t misses_before = service.serve_stats().cache_misses;
  auto fresh = service.Query({1}).ValueOrDie();
  EXPECT_EQ(fresh->generation(), 2u);
  EXPECT_EQ(service.serve_stats().cache_misses, misses_before + 1);
  EXPECT_EQ(service.Query({1}).ValueOrDie().get(), fresh.get());
  EXPECT_EQ(service.serve_stats().cache_misses, misses_before + 1);
}

TEST(QueryServiceUpgradeTest, NoopUpgradeKeepsWholeCacheAndBytes) {
  ModelQueryService service(DeepCopy("noop_svc_a"), 8);
  auto before = service.Query({0, 1}).ValueOrDie();
  const int64_t pool_bytes = service.serve_stats().pool_bytes;
  auto diff = service.UpgradePool(DeepCopy("noop_svc_b"));
  ASSERT_TRUE(diff.ok());
  EXPECT_TRUE(diff.ValueOrDie().noop());
  EXPECT_EQ(service.serve_stats().cache_keys_invalidated, 0);
  EXPECT_EQ(service.cache_size(), 1u);
  EXPECT_EQ(service.Query({0, 1}).ValueOrDie().get(), before.get());
  // Every master was adopted: the generation's footprint is unchanged.
  EXPECT_EQ(service.serve_stats().pool_bytes, pool_bytes);
}

TEST(QueryServiceUpgradeTest, NoopUpgradeIsBitwiseIdenticalF32) {
  ModelQueryService service(DeepCopy("bit_a"), 8);
  Rng rng(7);
  Tensor probe = Tensor::Randn({2, 3, 6, 6}, rng);
  Tensor logits_before = service.Query({0, 2}).ValueOrDie()->Logits(probe);
  ASSERT_TRUE(service.UpgradePool(DeepCopy("bit_b")).ok());
  // Fresh assembly against the NEW generation, same probe.
  TaskModel fresh =
      service.PinGeneration()->pool.Query({0, 2}).ValueOrDie();
  Tensor logits_after = fresh.Logits(probe);
  ASSERT_EQ(logits_before.numel(), logits_after.numel());
  EXPECT_EQ(std::memcmp(logits_before.data(), logits_after.data(),
                        sizeof(float) * logits_before.numel()),
            0);
}

TEST(QueryServiceUpgradeTest, NoopUpgradeIsBitwiseIdenticalInt8) {
  // Calibrate once, save, and serve two loads of the SAME file through an
  // int8 facade: the deterministic conversion must make the reload diff
  // as a no-op and serve bit-identical int8 logits.
  const std::string path = TempPath("versioned_int8.poe");
  {
    ExpertPool pool = BuildPool();
    Rng rng(13);
    Tensor samples = Tensor::Randn({4, 3, 6, 6}, rng);
    ASSERT_TRUE(pool.CalibrateActivations(samples).ok());
    ASSERT_TRUE(pool.Save(path).ok());
  }
  auto first = ExpertPool::Load(path);
  ASSERT_TRUE(first.ok());
  ModelQueryService service(std::move(first).ValueOrDie(), 8,
                            ServingPrecision::kInt8);
  Rng rng(7);
  Tensor probe = Tensor::Randn({2, 3, 6, 6}, rng);
  Tensor logits_before = service.Query({0, 1}).ValueOrDie()->Logits(probe);

  auto second = ExpertPool::Load(path);
  ASSERT_TRUE(second.ok());
  auto diff = service.UpgradePool(std::move(second).ValueOrDie());
  ASSERT_TRUE(diff.ok());
  EXPECT_TRUE(diff.ValueOrDie().noop());

  TaskModel fresh =
      service.PinGeneration()->pool.Query({0, 1}).ValueOrDie();
  EXPECT_EQ(fresh.serving_precision(), ServingPrecision::kInt8);
  Tensor logits_after = fresh.Logits(probe);
  ASSERT_EQ(logits_before.numel(), logits_after.numel());
  EXPECT_EQ(std::memcmp(logits_before.data(), logits_after.data(),
                        sizeof(float) * logits_before.numel()),
            0);
}

TEST(QueryServiceUpgradeTest, OldGenerationMemoryIsReleased) {
  ModelQueryService service(DeepCopy("mem_a"), 8);
  std::weak_ptr<Sequential> old_e0;
  std::weak_ptr<Sequential> old_e1;
  {
    const PoolGenerationHandle gen = service.PinGeneration();
    old_e0 = gen->pool.expert(0);
    old_e1 = gen->pool.expert(1);
  }
  {
    // Populate the cache, then drop our client handles.
    auto a = service.Query({0});
    ASSERT_TRUE(a.ok());
    auto b = service.Query({1});
    ASSERT_TRUE(b.ok());
  }
  ExpertPool next = DeepCopy("mem_b");
  PerturbExpert(next, 1);
  ASSERT_TRUE(service.UpgradePool(std::move(next)).ok());
  // The changed expert's old master had three possible owners: the old
  // generation (destroyed at swap), the invalidated cache entry (swept at
  // swap), and client models (dropped above) — so it is gone.
  EXPECT_TRUE(old_e1.expired());
  // The unchanged master was adopted into the new generation: still live.
  EXPECT_FALSE(old_e0.expired());
}

TEST(QueryServiceUpgradeTest, UpgradeUnderConcurrentLoadNeverFailsAQuery) {
  ModelQueryService service(DeepCopy("load_a"), 16);
  std::atomic<bool> stop{false};
  std::atomic<int64_t> ok_queries{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&service, &stop, &ok_queries, t] {
      Rng rng(60 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        const int a = static_cast<int>(rng.NextInt(3));
        const int b = static_cast<int>(rng.NextInt(3));
        auto r = service.Query(a == b ? std::vector<int>{a}
                                      : std::vector<int>{a, b});
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        ok_queries.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Several upgrades while the clients hammer the service: alternating
  // changed and no-op generations.
  for (int i = 0; i < 3; ++i) {
    ExpertPool next = DeepCopy("load_next_" + std::to_string(i));
    if (i % 2 == 0) PerturbExpert(next, i % 3);
    auto diff = service.UpgradePool(std::move(next));
    ASSERT_TRUE(diff.ok()) << diff.status().ToString();
  }
  stop.store(true);
  for (auto& c : clients) c.join();

  EXPECT_GT(ok_queries.load(), 0);
  ServeStats stats = service.serve_stats();
  EXPECT_EQ(stats.generation, 4u);
  EXPECT_EQ(stats.generations_swapped, 3);
  EXPECT_EQ(stats.generation,
            static_cast<uint64_t>(1 + stats.generations_swapped));
  // Shard invalidations are exactly the service-level counter.
  int64_t shard_invalidated = 0;
  for (const auto& s : stats.shards) shard_invalidated += s.invalidated;
  EXPECT_EQ(stats.cache_keys_invalidated, shard_invalidated);
}

TEST(QueryServiceUpgradeTest, StaleGenerationPinsAreCountedNotFailed) {
  ModelQueryService service(DeepCopy("stale_a"), 8);
  Rng rng(9);
  Tensor probe = Tensor::Randn({1, 3, 6, 6}, rng);
  ASSERT_TRUE(service.UpgradePool(DeepCopy("stale_b")).ok());
  ASSERT_EQ(service.generation(), 2u);

  // Pin the superseded generation: still answered (by gen 2), counted.
  PoolRequest stale = PoolRequestBuilder()
                          .Tasks({0, 1})
                          .Input(probe)
                          .Generation(1)
                          .Build();
  auto answered = service.Query(stale);
  ASSERT_TRUE(answered.ok());
  EXPECT_EQ(answered.ValueOrDie()->generation(), 2u);
  EXPECT_EQ(service.serve_stats().stale_generation_queries, 1);

  // Current pin and no pin both do not count.
  auto current = service.Query(
      PoolRequestBuilder().Tasks({0, 1}).Input(probe).Generation(2).Build());
  ASSERT_TRUE(current.ok());
  auto unpinned = service.Query(
      PoolRequestBuilder().Tasks({0, 1}).Input(probe).Build());
  ASSERT_TRUE(unpinned.ok());
  EXPECT_EQ(service.serve_stats().stale_generation_queries, 1);
}

TEST(PoolRequestTest, ValidationIsTheSingleAdmissionCheck) {
  Rng rng(3);
  PoolRequest ok = PoolRequestBuilder()
                       .Tasks({0})
                       .Input(Tensor::Randn({1, 3, 6, 6}, rng))
                       .DeadlineMs(50.0)
                       .Generation(1)
                       .Build();
  EXPECT_TRUE(ValidatePoolRequest(ok).ok());
  EXPECT_EQ(ok.deadline_ms, 50.0);
  EXPECT_EQ(ok.generation, 1u);

  PoolRequest no_tasks;
  no_tasks.input = Tensor::Randn({1, 3, 6, 6}, rng);
  EXPECT_EQ(ValidatePoolRequest(no_tasks).code(),
            StatusCode::kInvalidArgument);

  PoolRequest bad_input;
  bad_input.task_ids = {0};
  bad_input.input = Tensor::Randn({3, 6, 6}, rng);  // 3-dim, not [n,c,h,w]
  EXPECT_EQ(ValidatePoolRequest(bad_input).code(),
            StatusCode::kInvalidArgument);
}

TEST(ServerUpgradeTest, ResponsesReportServingGenerationAcrossSwap) {
  ModelQueryService service(DeepCopy("srv_a"), 8);
  InferenceServer::Options opts;
  opts.num_workers = 1;
  InferenceServer server(&service, opts);
  Rng rng(5);
  Tensor probe = Tensor::Randn({1, 3, 6, 6}, rng);

  InferenceRequest req;
  req.task_ids = {0, 1};
  req.input = probe;
  InferenceResponse before = server.Submit(req).get();
  ASSERT_TRUE(before.status.ok());
  EXPECT_EQ(before.generation, 1u);

  ExpertPool next = DeepCopy("srv_b");
  PerturbExpert(next, 0);
  ASSERT_TRUE(service.UpgradePool(std::move(next)).ok());

  // Pin the old generation: answered by the new one, counted as stale.
  req.generation = 1;
  InferenceResponse after = server.Submit(req).get();
  ASSERT_TRUE(after.status.ok());
  EXPECT_EQ(after.generation, 2u);
  server.Shutdown();
  ServeStats stats = server.stats();
  EXPECT_EQ(stats.stale_generation_queries, 1);
  EXPECT_EQ(stats.generation, 2u);
  EXPECT_EQ(stats.generations_swapped, 1);
}

TEST(WireGenerationTest, ResponseCarriesGenerationOnTheWire) {
  InferenceResponse response;
  response.status = Status::OK();
  response.logits = Tensor({1, 2});
  response.logits.data()[0] = 0.25f;
  response.logits.data()[1] = 0.75f;
  response.global_classes = {0, 1};
  response.predictions = {1};
  response.generation = 7;
  const std::vector<uint8_t> frame = EncodeResponseFrame(99, response);

  WireHeader header;
  ASSERT_TRUE(DecodeHeader(frame.data(), frame.size(), kWireTypeResponse,
                           kDefaultMaxBodyBytes, &header)
                  .ok());
  EXPECT_EQ(header.version, kWireVersion);
  WireResponse decoded;
  ASSERT_TRUE(DecodeResponseBody(frame.data() + kWireHeaderBytes,
                                 frame.size() - kWireHeaderBytes, header,
                                 &decoded)
                  .ok());
  EXPECT_EQ(decoded.generation, 7u);
  EXPECT_EQ(decoded.request_id, 99u);
  EXPECT_EQ(decoded.predictions, (std::vector<int>{1}));
}

}  // namespace
}  // namespace poe

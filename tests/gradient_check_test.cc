// Finite-difference verification of every layer's Backward, including the
// composite WRN basic block. These tests gate the whole training stack.
#include "nn/gradient_check.h"

#include <gtest/gtest.h>

#include <cmath>

#include <memory>
#include <string>

#include "nn/activations.h"
#include "nn/basic_block.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/pooling.h"
#include "nn/sequential.h"
#include "util/rng.h"

namespace poe {
namespace {

constexpr float kTolerance = 2e-2f;  // float32 central differences

TEST(GradCheckTest, Linear) {
  Rng rng(1);
  Linear lin(5, 4, rng);
  Tensor x = Tensor::Randn({3, 5}, rng);
  auto r = CheckModuleGradients(lin, x);
  EXPECT_LT(r.max_input_grad_error, kTolerance);
  EXPECT_LT(r.max_param_grad_error, kTolerance);
}

TEST(GradCheckTest, ReLU) {
  Rng rng(2);
  ReLU relu;
  // Keep inputs away from the kink at 0.
  Tensor x = Tensor::Randn({3, 7}, rng);
  for (int64_t i = 0; i < x.numel(); ++i) {
    if (std::fabs(x.at(i)) < 0.1f) x.at(i) = 0.5f;
  }
  auto r = CheckModuleGradients(relu, x);
  EXPECT_LT(r.max_input_grad_error, kTolerance);
}

TEST(GradCheckTest, GlobalAvgPool) {
  Rng rng(3);
  GlobalAvgPool pool;
  Tensor x = Tensor::Randn({2, 3, 4, 4}, rng);
  auto r = CheckModuleGradients(pool, x);
  EXPECT_LT(r.max_input_grad_error, kTolerance);
}

struct ConvCase {
  int in_c, out_c, kernel, stride, pad, h, w;
  std::string name;
};

class ConvGradCheckTest : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvGradCheckTest, MatchesFiniteDifferences) {
  const ConvCase& c = GetParam();
  Rng rng(42);
  Conv2d conv(c.in_c, c.out_c, c.kernel, c.stride, c.pad, rng,
              /*bias=*/true);
  Tensor x = Tensor::Randn({2, c.in_c, c.h, c.w}, rng);
  auto r = CheckModuleGradients(conv, x);
  EXPECT_LT(r.max_input_grad_error, kTolerance);
  EXPECT_LT(r.max_param_grad_error, kTolerance);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvGradCheckTest,
    ::testing::Values(ConvCase{1, 1, 1, 1, 0, 3, 3, "1x1"},
                      ConvCase{2, 3, 3, 1, 1, 4, 4, "3x3same"},
                      ConvCase{2, 2, 3, 2, 1, 6, 6, "3x3stride2"},
                      ConvCase{3, 2, 1, 2, 0, 4, 4, "proj1x1stride2"},
                      ConvCase{1, 4, 3, 1, 0, 5, 5, "nopad"}),
    [](const ::testing::TestParamInfo<ConvCase>& info) {
      return info.param.name;
    });

TEST(GradCheckTest, BatchNorm) {
  Rng rng(5);
  BatchNorm2d bn(3);
  Tensor x = Tensor::Randn({4, 3, 3, 3}, rng);
  auto r = CheckModuleGradients(bn, x);
  // BN's objective involves batch statistics; slightly looser tolerance.
  EXPECT_LT(r.max_input_grad_error, 4e-2f);
  EXPECT_LT(r.max_param_grad_error, 4e-2f);
}

struct BlockCase {
  int in_c, out_c, stride;
  std::string name;
};

class BlockGradCheckTest : public ::testing::TestWithParam<BlockCase> {};

TEST_P(BlockGradCheckTest, MatchesFiniteDifferences) {
  const BlockCase& c = GetParam();
  Rng rng(7);
  BasicBlock block(c.in_c, c.out_c, c.stride, rng);
  Tensor x = Tensor::Randn({2, c.in_c, 4, 4}, rng);
  // BN centers its output at zero, so many ReLU inputs sit near the kink;
  // a small step keeps the finite differences on one side of it.
  auto r = CheckModuleGradients(block, x, /*epsilon=*/1e-3f);
  EXPECT_LT(r.max_input_grad_error, 6e-2f);
  EXPECT_LT(r.max_param_grad_error, 6e-2f);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BlockGradCheckTest,
    ::testing::Values(BlockCase{2, 2, 1, "identity"},
                      BlockCase{2, 4, 1, "widen"},
                      BlockCase{2, 4, 2, "downsample"}),
    [](const ::testing::TestParamInfo<BlockCase>& info) {
      return info.param.name;
    });

TEST(GradCheckTest, SmallSequentialStack) {
  Rng rng(9);
  Sequential seq;
  seq.Add(std::make_unique<Conv2d>(1, 2, 3, 1, 1, rng));
  seq.Add(std::make_unique<BatchNorm2d>(2));
  seq.Add(std::make_unique<ReLU>());
  seq.Add(std::make_unique<GlobalAvgPool>());
  seq.Add(std::make_unique<Linear>(2, 3, rng));
  Tensor x = Tensor::Randn({2, 1, 4, 4}, rng);
  auto r = CheckModuleGradients(seq, x);
  EXPECT_LT(r.max_input_grad_error, 6e-2f);
  EXPECT_LT(r.max_param_grad_error, 6e-2f);
}

TEST(GradCheckTest, BlockHasProjectionWhenShapesChange) {
  Rng rng(1);
  EXPECT_FALSE(BasicBlock(4, 4, 1, rng).has_projection());
  EXPECT_TRUE(BasicBlock(4, 8, 1, rng).has_projection());
  EXPECT_TRUE(BasicBlock(4, 4, 2, rng).has_projection());
}

}  // namespace
}  // namespace poe

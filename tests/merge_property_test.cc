// Properties of SD/UHC merging that the consolidation experiments rely on.
#include <gtest/gtest.h>

#include "distill/merge.h"
#include "nn/linear.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace poe {
namespace {

// A trivial "teacher" with fixed logits per input value.
TeacherSpec ConstantTeacher(std::vector<int> classes, float offset) {
  TeacherSpec spec;
  spec.classes = std::move(classes);
  const int width = static_cast<int>(spec.classes.size());
  spec.logits = [width, offset](const Tensor& images) {
    Tensor out({images.dim(0), width});
    for (int64_t b = 0; b < images.dim(0); ++b) {
      for (int c = 0; c < width; ++c) {
        // First class mildly preferred; all logits shifted by offset.
        out.at(b * width + c) = offset + (c == 0 ? 0.4f : 0.0f);
      }
    }
    return out;
  };
  return spec;
}

Dataset RandomData(int n) {
  Dataset d;
  Rng rng(123);
  d.images = Tensor::Randn({n, 4}, rng);
  d.labels.assign(n, 0);
  return d;
}

// A linear student over 4-dim inputs and 4 unified classes.
class TinyStudent : public Linear {
 public:
  explicit TinyStudent(Rng& rng) : Linear(4, 4, rng) {}
};

TEST(MergePropertyTest, SdTargetInheritsScaleMismatch) {
  // Teacher A lives at offset +10, teacher B at offset 0. Their per-task
  // softmax targets are identical in shape, but SD's concatenated softmax
  // funnels nearly all probability into A's block - the logit scale
  // problem surfacing inside SD training targets.
  TeacherSpec a = ConstantTeacher({0, 1}, 10.0f);
  TeacherSpec b = ConstantTeacher({2, 3}, 0.0f);
  Tensor x = Tensor::Zeros({1, 4});
  Tensor concat = ConcatColumns({a.logits(x), b.logits(x)});
  Tensor p = Softmax2d(concat);
  EXPECT_GT(p.at(0) + p.at(1), 0.99f);
}

TEST(MergePropertyTest, UhcTrainingIsInvariantToTeacherOffsets) {
  // UHC normalizes per-block, so adding a constant to one teacher's logits
  // must not change the trained student (same seed, same data).
  Dataset data = RandomData(16);
  TrainOptions opts;
  opts.epochs = 3;
  opts.batch_size = 8;
  opts.seed = 5;

  Rng ra(7), rb(7);
  TinyStudent sa(ra), sb(rb);
  TrainUhcMerge({ConstantTeacher({0, 1}, 0.0f), ConstantTeacher({2, 3}, 0.0f)},
                sa, data, opts);
  TrainUhcMerge({ConstantTeacher({0, 1}, 50.0f),
                 ConstantTeacher({2, 3}, 0.0f)},
                sb, data, opts);
  EXPECT_LT(MaxAbsDiff(sa.weight().value, sb.weight().value), 1e-5f);
}

TEST(MergePropertyTest, SdTrainingIsNotInvariantToTeacherOffsets) {
  // SD, by contrast, is sensitive to the offset (joint normalization).
  Dataset data = RandomData(16);
  TrainOptions opts;
  opts.epochs = 3;
  opts.batch_size = 8;
  opts.seed = 5;

  Rng ra(7), rb(7);
  TinyStudent sa(ra), sb(rb);
  TrainSdMerge({ConstantTeacher({0, 1}, 0.0f), ConstantTeacher({2, 3}, 0.0f)},
               sa, data, opts);
  TrainSdMerge({ConstantTeacher({0, 1}, 50.0f),
                ConstantTeacher({2, 3}, 0.0f)},
               sb, data, opts);
  EXPECT_GT(MaxAbsDiff(sa.weight().value, sb.weight().value), 1e-4f);
}

TEST(MergePropertyTest, BothMethodsRequireTeachers) {
  Dataset data = RandomData(4);
  TrainOptions opts;
  opts.epochs = 1;
  Rng rng(1);
  TinyStudent s(rng);
  EXPECT_DEATH(TrainSdMerge({}, s, data, opts), "");
  EXPECT_DEATH(TrainUhcMerge({}, s, data, opts), "");
}

}  // namespace
}  // namespace poe

#include "data/synthetic.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.h"

namespace poe {
namespace {

SyntheticDataConfig TinyConfig() {
  SyntheticDataConfig cfg;
  cfg.num_tasks = 3;
  cfg.classes_per_task = 2;
  cfg.height = 6;
  cfg.width = 6;
  cfg.train_per_class = 4;
  cfg.test_per_class = 2;
  cfg.seed = 9;
  return cfg;
}

TEST(SyntheticTest, ShapesAndCounts) {
  SyntheticDataset d = GenerateSyntheticDataset(TinyConfig());
  EXPECT_EQ(d.hierarchy.num_classes(), 6);
  EXPECT_EQ(d.train.size(), 24);
  EXPECT_EQ(d.test.size(), 12);
  EXPECT_EQ(d.train.images.shape(),
            (std::vector<int64_t>{24, 3, 6, 6}));
}

TEST(SyntheticTest, LabelsCoverAllClasses) {
  SyntheticDataset d = GenerateSyntheticDataset(TinyConfig());
  std::vector<int> count(6, 0);
  for (int label : d.train.labels) {
    ASSERT_GE(label, 0);
    ASSERT_LT(label, 6);
    count[label]++;
  }
  for (int c = 0; c < 6; ++c) EXPECT_EQ(count[c], 4);
}

TEST(SyntheticTest, DeterministicForSameSeed) {
  SyntheticDataset a = GenerateSyntheticDataset(TinyConfig());
  SyntheticDataset b = GenerateSyntheticDataset(TinyConfig());
  EXPECT_EQ(MaxAbsDiff(a.train.images, b.train.images), 0.0f);
  EXPECT_EQ(a.train.labels, b.train.labels);
}

TEST(SyntheticTest, DifferentSeedsProduceDifferentData) {
  SyntheticDataConfig cfg = TinyConfig();
  SyntheticDataset a = GenerateSyntheticDataset(cfg);
  cfg.seed += 1;
  SyntheticDataset b = GenerateSyntheticDataset(cfg);
  EXPECT_GT(MaxAbsDiff(a.train.images, b.train.images), 0.1f);
}

TEST(SyntheticTest, TrainAndTestSplitsDiffer) {
  SyntheticDataset d = GenerateSyntheticDataset(TinyConfig());
  // Same class structure but different noise/jitter draws.
  Tensor train_head = SliceRows(d.train.images, 0, 2);
  Tensor test_head = SliceRows(d.test.images, 0, 2);
  EXPECT_GT(MaxAbsDiff(train_head, test_head), 0.1f);
}

// Same-class samples must be more similar than different-superclass samples
// (after averaging out noise): this is the structure the library/experts
// are supposed to learn.
TEST(SyntheticTest, ClassStructureIsPresent) {
  SyntheticDataConfig cfg = TinyConfig();
  cfg.train_per_class = 32;
  cfg.jitter = 0;  // disable shifts so prototype distances are clean
  SyntheticDataset d = GenerateSyntheticDataset(cfg);

  // Per-class mean images.
  const int num_classes = cfg.num_classes();
  const int64_t image_size = d.train.images.numel() / d.train.size();
  std::vector<std::vector<double>> mean(
      num_classes, std::vector<double>(image_size, 0.0));
  std::vector<int> count(num_classes, 0);
  for (int64_t i = 0; i < d.train.size(); ++i) {
    const int c = d.train.labels[i];
    count[c]++;
    for (int64_t j = 0; j < image_size; ++j) {
      mean[c][j] += d.train.images.at(i * image_size + j);
    }
  }
  for (int c = 0; c < num_classes; ++c)
    for (int64_t j = 0; j < image_size; ++j) mean[c][j] /= count[c];

  auto dist = [&](int a, int b) {
    double acc = 0.0;
    for (int64_t j = 0; j < image_size; ++j) {
      const double diff = mean[a][j] - mean[b][j];
      acc += diff * diff;
    }
    return acc;
  };
  // Classes 0 and 1 share superclass 0; class 2 lives in superclass 1.
  const double same_super = dist(0, 1);
  const double cross_super_a = dist(0, 2);
  const double cross_super_b = dist(1, 2);
  EXPECT_GT(cross_super_a + cross_super_b, same_super);
}

TEST(SyntheticTest, PresetConfigsAreConsistent) {
  SyntheticDataConfig cifar = Cifar100LikeConfig();
  EXPECT_EQ(cifar.num_classes(), 100);
  EXPECT_EQ(cifar.num_tasks, 20);
  SyntheticDataConfig tiny = TinyImageNetLikeConfig();
  EXPECT_EQ(tiny.num_classes(), 200);
}

}  // namespace
}  // namespace poe

// Robust serving semantics, end to end: deadline shedding (an expired
// request is NEVER executed), degraded-mode f32 fallback (bitwise
// identical to a pure-f32 pool), poisoned-expert isolation, per-response
// precision reporting, and the Submit-vs-Shutdown race (every future
// resolves; run under TSan in CI).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "core/query_service.h"
#include "distill/specialize.h"
#include "serve/inference_server.h"
#include "tensor/ops.h"
#include "test_util.h"
#include "util/fault.h"

namespace poe {
namespace {

using testutil::TinyLibraryConfig;

// Untrained pool from fresh modules - robustness semantics do not care
// how well the experts learned, and this builds in milliseconds.
ExpertPool MakePool(uint64_t seed = 77) {
  Rng rng(seed);
  WrnConfig lib_cfg = TinyLibraryConfig();
  auto library = BuildLibraryPart(lib_cfg, rng);
  std::vector<std::vector<int>> tasks = {{0, 1}, {2, 3}, {4, 5}};
  std::vector<std::shared_ptr<Sequential>> experts;
  for (const auto& classes : tasks) {
    WrnConfig ecfg = lib_cfg;
    ecfg.ks = 0.5;
    ecfg.num_classes = static_cast<int>(classes.size());
    experts.push_back(BuildExpertPart(ecfg, lib_cfg.conv3_channels(), rng));
  }
  auto hierarchy = ClassHierarchy::FromTasks(std::move(tasks));
  return ExpertPool(lib_cfg, 0.5, std::move(hierarchy).ValueOrDie(),
                    std::move(library), std::move(experts));
}

Tensor Probe(uint64_t seed) {
  Rng rng(seed);
  return Tensor::Randn({1, 3, 6, 6}, rng);
}

class RobustServingTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Global().Clear(); }
};

// THE deadline pin: requests whose budget lapses in the queue are shed -
// resolved with kDeadlineExceeded, counted ONLY in deadline_expired, and
// the forward pass is never spent on them.
TEST_F(RobustServingTest, ExpiredRequestsAreNeverExecuted) {
  ModelQueryService service(MakePool(), /*cache_capacity=*/4);
  InferenceServer::Options opts;
  opts.num_workers = 1;      // serialize: the slow batch blocks the rest
  opts.max_batch_rows = 1;   // no coalescing: each request is its own batch
  InferenceServer server(&service, opts);

  // The first (unbounded) request holds the only worker for ~60ms; the
  // deadline-bounded ones behind it expire while queued.
  ScopedFaultInjection arm("server.forward=delay:60:once:1");
  InferenceRequest slow;
  slow.task_ids = {0};
  slow.input = Probe(1);
  std::future<InferenceResponse> slow_future = server.Submit(std::move(slow));

  constexpr int kBounded = 4;
  std::vector<std::future<InferenceResponse>> bounded;
  for (int i = 0; i < kBounded; ++i) {
    InferenceRequest req;
    req.task_ids = {0};
    req.input = Probe(2 + i);
    req.deadline_ms = 5;  // far less than the 60ms the worker is held
    bounded.push_back(server.Submit(std::move(req)));
  }

  InferenceResponse slow_res = slow_future.get();
  EXPECT_TRUE(slow_res.status.ok()) << slow_res.status.ToString();
  for (auto& f : bounded) {
    InferenceResponse res = f.get();
    EXPECT_EQ(res.status.code(), StatusCode::kDeadlineExceeded);
    EXPECT_FALSE(res.logits.defined()) << "shed requests carry no result";
  }
  server.Shutdown();

  ServeStats stats = server.stats();
  EXPECT_EQ(stats.deadline_expired, kBounded);
  EXPECT_EQ(stats.completed, 1);
  EXPECT_EQ(stats.rejected, 0);
  EXPECT_EQ(stats.submitted,
            stats.completed + stats.rejected + stats.deadline_expired);
  // The forward surface ran exactly once - for the unbounded request.
  EXPECT_EQ(stats.batches, 1);
}

TEST_F(RobustServingTest, MicroscopicBudgetIsShedAtSubmission) {
  ModelQueryService service(MakePool(), 4);
  InferenceServer server(&service, {});
  InferenceRequest req;
  req.task_ids = {0};
  req.input = Probe(9);
  req.deadline_ms = 1e-7;  // expires before the queue is even reached
  InferenceResponse res = server.Submit(std::move(req)).get();
  EXPECT_EQ(res.status.code(), StatusCode::kDeadlineExceeded);
  server.Shutdown();
  ServeStats stats = server.stats();
  EXPECT_EQ(stats.deadline_expired, 1);
  EXPECT_EQ(stats.rejected, 0) << "shed is not rejection";
  EXPECT_EQ(stats.completed, 0);
}

TEST_F(RobustServingTest, UnlimitedAndGenerousDeadlinesServeNormally) {
  ModelQueryService service(MakePool(), 4);
  InferenceServer server(&service, {});
  for (double budget : {0.0, 10000.0}) {  // none / generous
    InferenceRequest req;
    req.task_ids = {0, 1};
    req.input = Probe(10);
    req.deadline_ms = budget;
    InferenceResponse res = server.Submit(std::move(req)).get();
    EXPECT_TRUE(res.status.ok()) << res.status.ToString();
    EXPECT_EQ(res.predictions.size(), 1u);
  }
}

// THE degraded-mode pin (acceptance): a pool whose int8 conversion failed
// everywhere keeps serving - on the f32 path - with logits bitwise
// identical to a pool that never attempted conversion.
TEST_F(RobustServingTest, FullyDegradedInt8PoolServesBitwiseF32) {
  ExpertPool f32_pool = MakePool();
  ExpertPool degraded_pool = f32_pool;  // same weights, separate masters
  {
    ScopedFaultInjection arm(
        "store.int8.convert=alloc:always;"
        "pool.int8.convert.library=alloc:always");
    ASSERT_TRUE(
        degraded_pool.SetServingPrecision(ServingPrecision::kInt8).ok());
  }
  FaultInjector::Global().Clear();

  Rng rng(21);
  Tensor x = Tensor::Randn({3, 3, 6, 6}, rng);
  TaskModel pure = f32_pool.Query({0, 1, 2}).ValueOrDie();
  TaskModel fallback = degraded_pool.Query({0, 1, 2}).ValueOrDie();

  // The degraded model knows exactly what it is ...
  EXPECT_EQ(fallback.serving_precision(), ServingPrecision::kInt8);
  EXPECT_TRUE(fallback.trunk_degraded());
  EXPECT_EQ(fallback.degraded_branches(), fallback.num_branches());
  // ... and serves the pure-f32 answer, bit for bit.
  Tensor y_pure = pure.Logits(x);
  Tensor y_fallback = fallback.Logits(x);
  ASSERT_EQ(y_pure.numel(), y_fallback.numel());
  EXPECT_EQ(MaxAbsDiff(y_pure, y_fallback), 0.0f);
}

// Partial degradation: only the faulted expert falls back; the response
// surface reports the intended precision and the actual degradation.
TEST_F(RobustServingTest, ResponseReportsPrecisionAndDegradation) {
  ExpertPool pool = MakePool();
  {
    ScopedFaultInjection arm("store.int8.convert=alloc:nth:2");
    ASSERT_TRUE(pool.SetServingPrecision(ServingPrecision::kInt8).ok());
  }
  FaultInjector::Global().Clear();

  ModelQueryService service(std::move(pool), 4);
  InferenceServer server(&service, {});
  InferenceRequest req;
  req.task_ids = {0, 1, 2};
  req.input = Probe(31);
  InferenceResponse res = server.Submit(std::move(req)).get();
  ASSERT_TRUE(res.status.ok()) << res.status.ToString();
  EXPECT_EQ(res.precision, ServingPrecision::kInt8);
  EXPECT_EQ(res.degraded_branches, 1);
  EXPECT_FALSE(res.trunk_degraded);
  server.Shutdown();
  EXPECT_GE(server.stats().degraded_queries, 1);
  EXPECT_EQ(server.stats().experts_degraded, 1);
}

// Poisoning: permanent corruption during materialization quarantines THAT
// expert; queries touching it fail fast, everything else serves.
TEST_F(RobustServingTest, PoisonedExpertIsIsolated) {
  ExpertPool pool = MakePool();
  {
    ScopedFaultInjection arm("store.materialize=corrupt:once:1");
    auto first = pool.Query({0});
    ASSERT_FALSE(first.ok());
    EXPECT_EQ(first.status().code(), StatusCode::kCorruption);
  }
  FaultInjector::Global().Clear();

  // The fault is long gone, but the poisoned expert stays quarantined.
  auto again = pool.Query({0});
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kUnavailable);
  // Composite queries touching it fail; disjoint ones are untouched.
  EXPECT_EQ(pool.Query({0, 1}).status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(pool.Query({1, 2}).ok());
  EXPECT_EQ(pool.expert_store()->stats().experts_poisoned, 1);

  // A fresh copy of the pool gets fresh slots: poison does not follow
  // the weights, only the failed materialization.
  ExpertPool clone = pool;
  EXPECT_TRUE(clone.Query({0}).ok());
}

// Transient assembly faults are absorbed by retry/backoff; the counters
// record the work. A permanently-unavailable store exhausts its attempts.
TEST_F(RobustServingTest, AssemblyRetriesAbsorbTransientFaults) {
  {
    ModelQueryService service(MakePool(), 4);
    ScopedFaultInjection arm("store.materialize=unavail:once:1");
    auto model = service.Query({0, 1});
    ASSERT_TRUE(model.ok()) << model.status();
    EXPECT_GE(service.serve_stats().assembly_retries, 1);
  }
  FaultInjector::Global().Clear();
  {
    ModelQueryService service(MakePool(), 4);
    ScopedFaultInjection arm("service.assemble=unavail:always");
    auto model = service.Query({0});
    ASSERT_FALSE(model.ok());
    EXPECT_EQ(model.status().code(), StatusCode::kUnavailable);
    EXPECT_GE(service.serve_stats().assembly_retries, 2);
  }
}

TEST_F(RobustServingTest, ExpiredDeadlineFailsAssemblyBeforeAnyWork) {
  ModelQueryService service(MakePool(), 4);
  auto model = service.Query({0, 1}, Deadline::AfterMillis(-1));
  ASSERT_FALSE(model.ok());
  EXPECT_EQ(model.status().code(), StatusCode::kDeadlineExceeded);
}

// The Submit-vs-Shutdown window: clients hammering Submit while the
// server shuts down must ALL get resolved futures - accepted requests
// drain, late ones get kFailedPrecondition, and nothing hangs. TSan runs
// this in CI to pin the data-race-freedom half.
TEST_F(RobustServingTest, SubmitDuringShutdownNeverHangsAFuture) {
  ModelQueryService service(MakePool(), 4);
  auto* server = new InferenceServer(&service, {});

  constexpr int kThreads = 4;
  constexpr int kPerThread = 40;
  std::atomic<int> resolved{0}, weird{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      while (!go.load()) std::this_thread::yield();
      for (int i = 0; i < kPerThread; ++i) {
        InferenceRequest req;
        req.task_ids = {t % 3};
        req.input = Probe(100 + t * kPerThread + i);
        InferenceResponse res = server->Submit(std::move(req)).get();
        resolved.fetch_add(1);
        if (!res.status.ok() &&
            res.status.code() != StatusCode::kFailedPrecondition &&
            res.status.code() != StatusCode::kResourceExhausted) {
          weird.fetch_add(1);
        }
      }
    });
  }
  go.store(true);
  // Shut down mid-traffic; the destructor's Shutdown must also be safe.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server->Shutdown();
  for (auto& c : clients) c.join();

  EXPECT_EQ(resolved.load(), kThreads * kPerThread)
      << "every Submit must resolve its future";
  EXPECT_EQ(weird.load(), 0);
  ServeStats stats = server->stats();
  EXPECT_EQ(stats.submitted,
            stats.completed + stats.rejected + stats.deadline_expired);
  delete server;
}

}  // namespace
}  // namespace poe

// End-to-end pipeline test: oracle -> preprocessing -> pool -> queries,
// asserting the paper's qualitative claims at miniature scale.
#include <gtest/gtest.h>

#include "core/expert_pool.h"
#include "core/query_service.h"
#include "distill/merge.h"
#include "distill/specialize.h"
#include "eval/confidence.h"
#include "eval/metrics.h"
#include "test_util.h"
#include "util/stopwatch.h"

namespace poe {
namespace {

using testutil::FastTrainOptions;
using testutil::TinyLibraryConfig;
using testutil::TinyOracleConfig;

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticDataConfig dc = testutil::TinyDataConfig();
    dc.num_tasks = 4;
    dc.train_per_class = 20;
    data_ = new SyntheticDataset(GenerateSyntheticDataset(dc));
    Rng rng(2024);
    WrnConfig ocfg = TinyOracleConfig();
    ocfg.num_classes = data_->hierarchy.num_classes();
    oracle_ = new Wrn(ocfg, rng);
    TrainScratch(*oracle_, data_->train, FastTrainOptions(12));

    PoeBuildConfig cfg;
    cfg.library_config = TinyLibraryConfig();
    cfg.library_config.num_classes = data_->hierarchy.num_classes();
    cfg.expert_ks = 0.5;
    cfg.library_options = FastTrainOptions(8);
    cfg.expert_options = FastTrainOptions(8);
    pool_ = new ExpertPool(
        ExpertPool::Preprocess(ModelLogits(*oracle_), *data_, cfg, rng));
  }
  static void TearDownTestSuite() {
    delete pool_;
    delete oracle_;
    delete data_;
    pool_ = nullptr;
    oracle_ = nullptr;
    data_ = nullptr;
  }

  static float PoeAccuracy(const std::vector<int>& tasks) {
    TaskModel model = pool_->Query(tasks).ValueOrDie();
    Dataset test = FilterClasses(
        data_->test, data_->hierarchy.CompositeClasses(tasks), true);
    LogitFn fn = [&](const Tensor& x) { return model.Logits(x); };
    return EvaluateAccuracy(fn, test);
  }

  static SyntheticDataset* data_;
  static Wrn* oracle_;
  static ExpertPool* pool_;
};

SyntheticDataset* IntegrationTest::data_ = nullptr;
Wrn* IntegrationTest::oracle_ = nullptr;
ExpertPool* IntegrationTest::pool_ = nullptr;

TEST_F(IntegrationTest, PoeModelsBeatChanceForAllCompositeSizes) {
  EXPECT_GT(PoeAccuracy({0}), 0.6f);          // chance 0.5
  EXPECT_GT(PoeAccuracy({0, 1}), 0.4f);       // chance 0.25
  EXPECT_GT(PoeAccuracy({0, 1, 2}), 0.3f);    // chance 0.167
  EXPECT_GT(PoeAccuracy({0, 1, 2, 3}), 0.25f);  // chance 0.125
}

TEST_F(IntegrationTest, PoeQueryIsOrdersOfMagnitudeFasterThanTraining) {
  // PoE service-phase latency.
  Stopwatch sw;
  TaskModel model = pool_->Query({0, 1, 2}).ValueOrDie();
  const double poe_seconds = sw.ElapsedSeconds();

  // A competitive trained baseline for the same composite task.
  const std::vector<int> classes =
      data_->hierarchy.CompositeClasses({0, 1, 2});
  Dataset train = FilterClasses(data_->train, classes, true);
  WrnConfig cfg = TinyLibraryConfig();
  cfg.num_classes = static_cast<int>(classes.size());
  Rng rng(1);
  Wrn scratch(cfg, rng);
  sw.Reset();
  TrainScratch(scratch, train, FastTrainOptions(4));
  const double scratch_seconds = sw.ElapsedSeconds();

  EXPECT_LT(poe_seconds * 100, scratch_seconds);
}

TEST_F(IntegrationTest, PoeBeatsIndependentlyTrainedMerging) {
  // SD+Scratch (merging independently trained experts) should lose to PoE
  // (the paper's overconfidence + logit-scale argument).
  const std::vector<int> tasks = {0, 1};
  const std::vector<int> classes = data_->hierarchy.CompositeClasses(tasks);
  Dataset train = FilterClasses(data_->train, classes, true);
  Dataset test = FilterClasses(data_->test, classes, true);

  // Scratch-trained primitive teachers.
  std::vector<std::unique_ptr<Wrn>> teachers;
  std::vector<TeacherSpec> specs;
  Rng rng(3);
  for (int t : tasks) {
    WrnConfig cfg = TinyLibraryConfig();
    cfg.ks = 0.5;
    cfg.num_classes = 2;
    auto m = std::make_unique<Wrn>(cfg, rng);
    Dataset ttrain = FilterClasses(
        data_->train, data_->hierarchy.task_classes(t), true);
    TrainScratch(*m, ttrain, FastTrainOptions(8));
    specs.push_back(TeacherSpec{ModelLogits(*m),
                                data_->hierarchy.task_classes(t)});
    teachers.push_back(std::move(m));
  }
  WrnConfig scfg = TinyLibraryConfig();
  scfg.num_classes = static_cast<int>(classes.size());
  Wrn student(scfg, rng);
  TrainSdMerge(specs, student, train, FastTrainOptions(8));
  const float sd_acc = EvaluateAccuracy(ModelLogits(student), test);
  EXPECT_GT(PoeAccuracy(tasks) + 0.05f, sd_acc);
}

TEST_F(IntegrationTest, ServiceRoundTripThroughDisk) {
  const std::string path = ::testing::TempDir() + "/integration_pool.poe";
  ASSERT_TRUE(pool_->Save(path).ok());
  auto loaded = ExpertPool::Load(path);
  ASSERT_TRUE(loaded.ok());
  ModelQueryService service(std::move(loaded).ValueOrDie(), 4);
  auto model = service.Query({1, 3});
  ASSERT_TRUE(model.ok());
  Dataset test = FilterClasses(
      data_->test, data_->hierarchy.CompositeClasses({1, 3}), true);
  LogitFn fn = [&](const Tensor& x) {
    return model.ValueOrDie()->Logits(x);
  };
  EXPECT_GT(EvaluateAccuracy(fn, test), 0.4f);
}

TEST_F(IntegrationTest, CkdExpertsLessOverconfidentThanScratchOnOod) {
  const auto& classes = data_->hierarchy.task_classes(0);
  Dataset ood = ExcludeClasses(data_->test, classes);

  WrnConfig scfg = TinyLibraryConfig();
  scfg.ks = 0.5;
  scfg.num_classes = 2;
  Rng rng(4);
  Wrn scratch(scfg, rng);
  TrainScratch(scratch, FilterClasses(data_->train, classes, true),
               FastTrainOptions(8));

  ConfidenceHistogram ckd_hist = ComputeConfidenceHistogram(
      LibraryHeadLogits(*pool_->library(), *pool_->expert(0)), ood);
  ConfidenceHistogram scratch_hist =
      ComputeConfidenceHistogram(ModelLogits(scratch), ood);
  EXPECT_LT(ckd_hist.mean_confidence, scratch_hist.mean_confidence);
}

}  // namespace
}  // namespace poe

#include "nn/sgd.h"

#include <gtest/gtest.h>

#include "nn/linear.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace poe {
namespace {

TEST(SgdTest, PlainStepWithoutMomentumOrDecay) {
  Parameter p("w", Tensor::FromVector({2}, {1.0f, 2.0f}));
  p.grad = Tensor::FromVector({2}, {0.5f, -0.5f});
  Sgd sgd({&p}, SgdOptions{/*lr=*/0.1f, /*momentum=*/0.0f,
                           /*weight_decay=*/0.0f});
  sgd.Step();
  EXPECT_FLOAT_EQ(p.value.at(0), 0.95f);
  EXPECT_FLOAT_EQ(p.value.at(1), 2.05f);
}

TEST(SgdTest, MomentumAccumulatesVelocity) {
  Parameter p("w", Tensor::FromVector({1}, {0.0f}));
  Sgd sgd({&p}, SgdOptions{1.0f, 0.5f, 0.0f});
  p.grad = Tensor::FromVector({1}, {1.0f});
  sgd.Step();  // v=1, w=-1
  EXPECT_FLOAT_EQ(p.value.at(0), -1.0f);
  sgd.Step();  // v=0.5*1+1=1.5, w=-2.5
  EXPECT_FLOAT_EQ(p.value.at(0), -2.5f);
}

TEST(SgdTest, WeightDecayPullsTowardZero) {
  Parameter p("w", Tensor::FromVector({1}, {10.0f}));
  p.grad = Tensor::Zeros({1});
  Sgd sgd({&p}, SgdOptions{0.1f, 0.0f, 0.5f});
  sgd.Step();  // w -= 0.1 * (0 + 0.5*10) = 0.5
  EXPECT_FLOAT_EQ(p.value.at(0), 9.5f);
}

TEST(SgdTest, FrozenParameterIsSkipped) {
  Parameter p("w", Tensor::FromVector({1}, {1.0f}));
  p.grad = Tensor::FromVector({1}, {100.0f});
  p.trainable = false;
  Sgd sgd({&p}, SgdOptions{0.1f, 0.9f, 1e-2f});
  sgd.Step();
  EXPECT_FLOAT_EQ(p.value.at(0), 1.0f);
}

TEST(SgdTest, ZeroGradClears) {
  Parameter p("w", Tensor::FromVector({2}, {1.0f, 1.0f}));
  p.grad.Fill(3.0f);
  Sgd sgd({&p}, SgdOptions{});
  sgd.ZeroGrad();
  EXPECT_EQ(Sum(p.grad), 0.0f);
}

TEST(SgdTest, LearningRateMutable) {
  Parameter p("w", Tensor::FromVector({1}, {0.0f}));
  Sgd sgd({&p}, SgdOptions{0.1f, 0.0f, 0.0f});
  sgd.set_lr(0.01f);
  EXPECT_FLOAT_EQ(sgd.lr(), 0.01f);
  p.grad = Tensor::FromVector({1}, {1.0f});
  sgd.Step();
  EXPECT_FLOAT_EQ(p.value.at(0), -0.01f);
}

TEST(SgdTest, ConvergesOnQuadratic) {
  // Minimize 0.5*(w - 3)^2: grad = w - 3.
  Parameter p("w", Tensor::FromVector({1}, {0.0f}));
  Sgd sgd({&p}, SgdOptions{0.1f, 0.9f, 0.0f});
  for (int i = 0; i < 200; ++i) {
    p.grad = Tensor::FromVector({1}, {p.value.at(0) - 3.0f});
    sgd.Step();
  }
  EXPECT_NEAR(p.value.at(0), 3.0f, 1e-3f);
}

}  // namespace
}  // namespace poe

#include "distill/merge.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "distill/specialize.h"
#include "eval/metrics.h"
#include "models/wrn.h"
#include "tensor/ops.h"
#include "test_util.h"

namespace poe {
namespace {

using testutil::FastTrainOptions;
using testutil::TinyDataConfig;
using testutil::TinyLibraryConfig;

class MergeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data_ = new SyntheticDataset(GenerateSyntheticDataset(TinyDataConfig()));
    rng_ = new Rng(321);
    // Two scratch-trained primitive teachers for tasks 0 and 1.
    teachers_ = new std::vector<std::unique_ptr<Wrn>>();
    for (int t = 0; t < 2; ++t) {
      WrnConfig cfg = TinyLibraryConfig();
      cfg.ks = 0.5;
      cfg.num_classes = 2;
      auto model = std::make_unique<Wrn>(cfg, *rng_);
      Dataset train = FilterClasses(
          data_->train, data_->hierarchy.task_classes(t), true);
      TrainScratch(*model, train, FastTrainOptions(8));
      teachers_->push_back(std::move(model));
    }
  }
  static void TearDownTestSuite() {
    delete teachers_;
    delete rng_;
    delete data_;
    teachers_ = nullptr;
    rng_ = nullptr;
    data_ = nullptr;
  }

  static std::vector<TeacherSpec> Teachers() {
    std::vector<TeacherSpec> specs;
    for (int t = 0; t < 2; ++t) {
      specs.push_back(TeacherSpec{ModelLogits(*(*teachers_)[t]),
                                  data_->hierarchy.task_classes(t)});
    }
    return specs;
  }

  static Dataset UnionTrain() {
    return FilterClasses(data_->train,
                         data_->hierarchy.CompositeClasses({0, 1}), true);
  }
  static Dataset UnionTest() {
    return FilterClasses(data_->test,
                         data_->hierarchy.CompositeClasses({0, 1}), true);
  }

  static Wrn MakeStudent() {
    WrnConfig cfg = TinyLibraryConfig();
    cfg.ks = 1.0;
    cfg.num_classes = 4;
    return Wrn(cfg, *rng_);
  }

  static SyntheticDataset* data_;
  static Rng* rng_;
  static std::vector<std::unique_ptr<Wrn>>* teachers_;
};

SyntheticDataset* MergeTest::data_ = nullptr;
Rng* MergeTest::rng_ = nullptr;
std::vector<std::unique_ptr<Wrn>>* MergeTest::teachers_ = nullptr;

TEST_F(MergeTest, TeachersKnowTheirTasks) {
  for (int t = 0; t < 2; ++t) {
    Dataset test = FilterClasses(
        data_->test, data_->hierarchy.task_classes(t), true);
    EXPECT_GT(EvaluateAccuracy(ModelLogits(*(*teachers_)[t]), test), 0.6f);
  }
}

TEST_F(MergeTest, SdMergeLearnsUnifiedModel) {
  Wrn student = MakeStudent();
  Dataset train = UnionTrain();
  Dataset test = UnionTest();
  const float before = EvaluateAccuracy(ModelLogits(student), test);
  TrainSdMerge(Teachers(), student, train, FastTrainOptions(8));
  const float after = EvaluateAccuracy(ModelLogits(student), test);
  EXPECT_GT(after, before);
  EXPECT_GT(after, 0.3f);  // chance = 0.25
}

TEST_F(MergeTest, UhcMergeLearnsUnifiedModel) {
  Wrn student = MakeStudent();
  Dataset train = UnionTrain();
  Dataset test = UnionTest();
  TrainUhcMerge(Teachers(), student, train, FastTrainOptions(8));
  EXPECT_GT(EvaluateAccuracy(ModelLogits(student), test), 0.3f);
}

TEST_F(MergeTest, SdAndUhcProduceDifferentStudents) {
  Rng ra(55), rb(55);
  WrnConfig cfg = TinyLibraryConfig();
  cfg.num_classes = 4;
  Wrn sa(cfg, ra), sb(cfg, rb);
  TrainOptions opts = FastTrainOptions(2);
  Dataset train = UnionTrain();
  TrainSdMerge(Teachers(), sa, train, opts);
  TrainUhcMerge(Teachers(), sb, train, opts);
  EXPECT_GT(MaxAbsDiff(sa.Parameters()[0]->value, sb.Parameters()[0]->value),
            1e-7f);
}

TEST_F(MergeTest, MergedStudentMatchesTeacherPerBlock) {
  // After UHC merging, the student's block for task 0 should rank task-0
  // classes sensibly: its accuracy within the block beats chance.
  Wrn student = MakeStudent();
  Dataset train = UnionTrain();
  TrainUhcMerge(Teachers(), student, train, FastTrainOptions(8));
  Dataset task0_test = FilterClasses(
      data_->test, data_->hierarchy.task_classes(0), true);
  // Restrict logits to the first block (columns 0..1).
  LogitFn block0 = [&](const Tensor& x) {
    Tensor full = student.Forward(x, false);
    return GatherColumns(full, {0, 1});
  };
  EXPECT_GT(EvaluateAccuracy(block0, task0_test), 0.55f);
}

}  // namespace
}  // namespace poe

#include "core/planner.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace poe {
namespace {

// Hierarchy: 4 tasks x 3 classes -> task t covers {3t, 3t+1, 3t+2}.
ClassHierarchy H() { return ClassHierarchy::Uniform(4, 3); }

TEST(PlannerTest, SingleClassMapsToItsTask) {
  auto plan = PlanClassQuery(H(), {7}).ValueOrDie();
  EXPECT_EQ(plan.task_ids, (std::vector<int>{2}));
  EXPECT_EQ(plan.requested_classes, (std::vector<int>{7}));
  EXPECT_EQ(plan.covered_classes, (std::vector<int>{6, 7, 8}));
  EXPECT_EQ(plan.excess_classes(), 2);
}

TEST(PlannerTest, ClassesInSameTaskShareOneExpert) {
  auto plan = PlanClassQuery(H(), {0, 2, 1}).ValueOrDie();
  EXPECT_EQ(plan.task_ids, (std::vector<int>{0}));
  EXPECT_EQ(plan.excess_classes(), 0);
}

TEST(PlannerTest, CrossTaskQueryUnionsTasks) {
  auto plan = PlanClassQuery(H(), {1, 10}).ValueOrDie();
  EXPECT_EQ(plan.task_ids, (std::vector<int>{0, 3}));
  EXPECT_EQ(plan.covered_classes.size(), 6u);
  EXPECT_EQ(plan.excess_classes(), 4);
}

TEST(PlannerTest, DeduplicatesRequestedClasses) {
  auto plan = PlanClassQuery(H(), {5, 5, 5}).ValueOrDie();
  EXPECT_EQ(plan.requested_classes, (std::vector<int>{5}));
  EXPECT_EQ(plan.task_ids, (std::vector<int>{1}));
}

TEST(PlannerTest, RejectsEmptyAndUnknown) {
  EXPECT_EQ(PlanClassQuery(H(), {}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(PlanClassQuery(H(), {99}).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(PlanClassQuery(H(), {-1}).status().code(),
            StatusCode::kOutOfRange);
}

TEST(PlannerTest, RestrictedLogitsSelectRequestedColumns) {
  // Build a task model over tasks {0, 1} with random weights.
  WrnConfig lib_cfg;
  lib_cfg.num_classes = 12;
  lib_cfg.base_channels = 4;
  Rng rng(1);
  auto library = BuildLibraryPart(lib_cfg, rng);
  std::vector<TaskModel::Branch> branches;
  for (int t = 0; t < 2; ++t) {
    TaskModel::Branch b;
    WrnConfig ecfg = lib_cfg;
    ecfg.ks = 0.5;
    ecfg.num_classes = 3;
    b.head = BuildExpertPart(ecfg, lib_cfg.conv3_channels(), rng);
    b.classes = {3 * t, 3 * t + 1, 3 * t + 2};
    b.config = ecfg;
    branches.push_back(std::move(b));
  }
  TaskModel model(library, lib_cfg, std::move(branches));

  auto plan = PlanClassQuery(H(), {4, 1}).ValueOrDie();
  LogitFn restricted = RestrictToRequestedClasses(model, plan);
  Tensor x = Tensor::Randn({2, 3, 8, 8}, rng);
  Tensor full = model.Logits(x);
  Tensor sub = restricted(x);
  ASSERT_EQ(sub.dim(1), 2);
  // Column order follows requested_classes = {4, 1}; model order is
  // {0,1,2,3,4,5}, so requested columns are 4 and 1.
  for (int64_t r = 0; r < 2; ++r) {
    EXPECT_EQ(sub.at(r * 2 + 0), full.at(r * 6 + 4));
    EXPECT_EQ(sub.at(r * 2 + 1), full.at(r * 6 + 1));
  }
}

}  // namespace
}  // namespace poe

#include "util/status.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "util/result.h"

namespace poe {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status s = Status::InvalidArgument("bad arg");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad arg");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad arg");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kCorruption), "CORRUPTION");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIoError), "IO_ERROR");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnimplemented),
               "UNIMPLEMENTED");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "INTERNAL");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOutOfRange), "OUT_OF_RANGE");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kAlreadyExists),
               "ALREADY_EXISTS");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kFailedPrecondition),
               "FAILED_PRECONDITION");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kResourceExhausted),
               "RESOURCE_EXHAUSTED");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnavailable), "UNAVAILABLE");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kDeadlineExceeded),
               "DEADLINE_EXCEEDED");
}

// Whole-enum sweep: every code stringifies to a real (non-fallback) name,
// and no two codes share one. A code added without a ToString case - or a
// renumbering that aliases two codes - fails here, not in a log message.
TEST(StatusTest, EveryCodeHasAUniqueName) {
  std::set<std::string> names;
  for (int c = 0; c < kNumStatusCodes; ++c) {
    const char* name = StatusCodeToString(static_cast<StatusCode>(c));
    EXPECT_STRNE(name, "UNKNOWN") << "code " << c << " has no name";
    EXPECT_TRUE(names.insert(name).second)
        << "duplicate status name " << name;
  }
  EXPECT_EQ(static_cast<int>(names.size()), kNumStatusCodes);
}

TEST(StatusTest, RobustnessFactories) {
  Status unavailable = Status::Unavailable("expert poisoned");
  EXPECT_EQ(unavailable.code(), StatusCode::kUnavailable);
  EXPECT_EQ(unavailable.ToString(), "UNAVAILABLE: expert poisoned");
  Status deadline = Status::DeadlineExceeded("budget gone");
  EXPECT_EQ(deadline.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(deadline.ToString(), "DEADLINE_EXCEEDED: budget gone");
}

Status Propagate(bool fail) {
  POE_RETURN_NOT_OK(fail ? Status::NotFound("x") : Status::OK());
  return Status::AlreadyExists("reached end");
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_EQ(Propagate(true).code(), StatusCode::kNotFound);
  EXPECT_EQ(Propagate(false).code(), StatusCode::kAlreadyExists);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_EQ(r.ValueOr(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string(1000, 'x'));
  std::string v = std::move(r).ValueOrDie();
  EXPECT_EQ(v.size(), 1000u);
}

Result<int> HalfOf(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseAssignOrReturn(int x, int* out) {
  POE_ASSIGN_OR_RETURN(*out, HalfOf(x));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(10, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_EQ(UseAssignOrReturn(7, &out).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace poe

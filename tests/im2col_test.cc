#include "tensor/im2col.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "tensor/gemm_s8.h"
#include "util/rng.h"

namespace poe {
namespace {

TEST(Im2ColTest, OutSize) {
  EXPECT_EQ(ConvOutSize(8, 3, 1, 1), 8);
  EXPECT_EQ(ConvOutSize(8, 3, 1, 2), 4);
  EXPECT_EQ(ConvOutSize(8, 1, 0, 1), 8);
  EXPECT_EQ(ConvOutSize(8, 1, 0, 2), 4);
  EXPECT_EQ(ConvOutSize(5, 3, 0, 1), 3);
}

TEST(Im2ColTest, OneByOneKernelIsIdentity) {
  const int c = 2, h = 3, w = 3;
  std::vector<float> img(c * h * w);
  for (size_t i = 0; i < img.size(); ++i) img[i] = static_cast<float>(i);
  std::vector<float> cols(c * h * w);
  Im2Col(img.data(), c, h, w, 1, 1, 0, 1, cols.data());
  for (size_t i = 0; i < img.size(); ++i) EXPECT_EQ(cols[i], img[i]);
}

TEST(Im2ColTest, CenterTapOfPadded3x3EqualsImage) {
  const int h = 4, w = 4;
  std::vector<float> img(h * w);
  for (int i = 0; i < h * w; ++i) img[i] = static_cast<float>(i + 1);
  std::vector<float> cols(9 * h * w);
  Im2Col(img.data(), 1, h, w, 3, 3, 1, 1, cols.data());
  // Row 4 (kh=1, kw=1) is the center tap: equals the original image.
  for (int i = 0; i < h * w; ++i) EXPECT_EQ(cols[4 * h * w + i], img[i]);
  // Top-left tap (kh=0,kw=0) at output (0,0) looks at (-1,-1): padding.
  EXPECT_EQ(cols[0], 0.0f);
}

TEST(Im2ColTest, StridedSamplesCorrectPixels) {
  const int h = 4, w = 4;
  std::vector<float> img(h * w);
  for (int i = 0; i < h * w; ++i) img[i] = static_cast<float>(i);
  // 1x1 kernel, stride 2: picks pixels (0,0),(0,2),(2,0),(2,2).
  std::vector<float> cols(4);
  Im2Col(img.data(), 1, h, w, 1, 1, 0, 2, cols.data());
  EXPECT_EQ(cols[0], 0.0f);
  EXPECT_EQ(cols[1], 2.0f);
  EXPECT_EQ(cols[2], 8.0f);
  EXPECT_EQ(cols[3], 10.0f);
}

// Col2Im must be the adjoint of Im2Col: <Im2Col(x), y> == <x, Col2Im(y)>.
TEST(Im2ColTest, Col2ImIsAdjointOfIm2Col) {
  const int c = 2, h = 5, w = 4, k = 3, pad = 1, stride = 2;
  const int out_h = static_cast<int>(ConvOutSize(h, k, pad, stride));
  const int out_w = static_cast<int>(ConvOutSize(w, k, pad, stride));
  const int rows = c * k * k, cols_n = out_h * out_w;

  Rng rng(11);
  std::vector<float> x(c * h * w), y(rows * cols_n);
  for (auto& v : x) v = rng.Uniform(-1.0f, 1.0f);
  for (auto& v : y) v = rng.Uniform(-1.0f, 1.0f);

  std::vector<float> cols(rows * cols_n);
  Im2Col(x.data(), c, h, w, k, k, pad, stride, cols.data());
  double lhs = 0.0;
  for (size_t i = 0; i < y.size(); ++i)
    lhs += static_cast<double>(cols[i]) * y[i];

  std::vector<float> xt(c * h * w, 0.0f);
  Col2Im(y.data(), c, h, w, k, k, pad, stride, xt.data());
  double rhs = 0.0;
  for (size_t i = 0; i < x.size(); ++i)
    rhs += static_cast<double>(x[i]) * xt[i];

  EXPECT_NEAR(lhs, rhs, 1e-3);
}

// The fused quantizing unfold must equal quantize-then-unfold bit for bit
// (elementwise quantization commutes with the gather; padding is exact
// quantized zero), across padded, strided, and edge geometries.
TEST(Im2ColTest, Im2ColQuantizeMatchesQuantizeThenUnfold) {
  struct Geo {
    int c, h, w, k, pad, stride;
  };
  const Geo geos[] = {{2, 5, 4, 3, 1, 2}, {1, 1, 1, 1, 0, 1},
                      {3, 8, 8, 3, 1, 1}, {2, 6, 7, 5, 2, 3}};
  Rng rng(23);
  for (const Geo& g : geos) {
    const int rows = g.c * g.k * g.k;
    const int cols_n = static_cast<int>(ConvOutSize(g.h, g.k, g.pad, g.stride) *
                                        ConvOutSize(g.w, g.k, g.pad, g.stride));
    std::vector<float> x(g.c * g.h * g.w);
    for (auto& v : x) v = rng.Uniform(-2.0f, 2.0f);
    const float inv_scale = 1.0f / SymmetricScaleS8(x.data(), x.size());

    std::vector<int8_t> q(x.size());
    QuantizeBufferS8(x.data(), x.size(), inv_scale, q.data());
    std::vector<int8_t> expected(rows * cols_n);
    Im2Col(q.data(), g.c, g.h, g.w, g.k, g.k, g.pad, g.stride,
           expected.data());

    std::vector<int8_t> fused(rows * cols_n, 99);
    Im2ColQuantize(x.data(), g.c, g.h, g.w, g.k, g.k, g.pad, g.stride,
                   inv_scale, fused.data());
    ASSERT_EQ(0, std::memcmp(expected.data(), fused.data(), fused.size()));
  }
}

}  // namespace
}  // namespace poe

#include "tensor/gemm_s8.h"

#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <string>
#include <tuple>
#include <vector>

#include "util/rng.h"

namespace poe {
namespace {

// Int8 accumulation is exact (int32, no intermediate rounding), so
// threaded-vs-sequential and packed-vs-unpacked comparisons are bitwise.
// Oracle comparisons allow a few ulps: the fused dequantizing store and
// GemmS8Ref share the same arithmetic expression but the compiler may
// contract its mul/add chains differently per call site.
float RelTol(float ref) {
  return 1e-5f * (ref < 0.0f ? -ref : ref) + 1e-4f;
}

void FillInt8(std::vector<int8_t>* v, Rng& rng) {
  for (auto& x : *v)
    x = static_cast<int8_t>(static_cast<int64_t>(rng.NextInt(255)) - 127);
}

void FillUniform(std::vector<float>* v, Rng& rng, float lo = -1.0f,
                 float hi = 1.0f) {
  for (auto& x : *v) x = rng.Uniform(lo, hi);
}

// (trans_a, trans_b, m, n, k)
using GemmS8Case = std::tuple<bool, bool, int, int, int>;

class GemmS8ParamTest : public ::testing::TestWithParam<GemmS8Case> {};

TEST_P(GemmS8ParamTest, MatchesReference) {
  const auto [ta, tb, m, n, k] = GetParam();
  Rng rng(static_cast<uint64_t>(m * 10007 + n * 101 + k + ta * 2 + tb));
  std::vector<int8_t> a(static_cast<size_t>(m) * k);
  std::vector<int8_t> b(static_cast<size_t>(k) * n);
  FillInt8(&a, rng);
  FillInt8(&b, rng);
  std::vector<float> row_scale(m), col_scale(n), row_bias(m), col_bias(n);
  FillUniform(&row_scale, rng, 0.01f, 2.0f);
  FillUniform(&col_scale, rng, 0.01f, 2.0f);
  FillUniform(&row_bias, rng);
  FillUniform(&col_bias, rng);

  // Cover the epilogue shapes the serving layers use: bare dequant, conv
  // (row_scale + row_bias + relu), and linear (col_scale + col_bias).
  GemmS8Epilogue plain;
  plain.scale = 0.037f;
  GemmS8Epilogue conv;
  conv.scale = 0.02f;
  conv.row_scale = row_scale.data();
  conv.row_bias = row_bias.data();
  conv.relu = true;
  GemmS8Epilogue linear;
  linear.scale = 0.05f;
  linear.col_scale = col_scale.data();
  linear.col_bias = col_bias.data();
  for (const GemmS8Epilogue& ep : {plain, conv, linear}) {
    std::vector<float> c(static_cast<size_t>(m) * n, -1.0f);
    std::vector<float> c_ref = c;
    GemmS8(ta, tb, m, n, k, a.data(), b.data(), c.data(), ep,
           /*parallel=*/true);
    GemmS8Ref(ta, tb, m, n, k, a.data(), b.data(), c_ref.data(), ep);
    for (size_t i = 0; i < c.size(); ++i) {
      ASSERT_NEAR(c[i], c_ref[i], RelTol(c_ref[i]))
          << "at " << i << " m=" << m << " n=" << n << " k=" << k
          << " ta=" << ta << " tb=" << tb;
    }
  }
}

// Odd/prime sizes hit every panel-edge and KR-remainder case; the larger
// sizes cross the MC = 240 / NC = 1024 macro-tile boundaries.
std::vector<GemmS8Case> AllTransposeCases() {
  const int sizes[] = {1, 2, 3, 17, 63, 130};
  std::vector<GemmS8Case> cases;
  for (bool ta : {false, true}) {
    for (bool tb : {false, true}) {
      for (int m : sizes)
        for (int n : sizes)
          for (int k : sizes) {
            if (m * n * k > 17 * 130 * 130) continue;
            cases.push_back({ta, tb, m, n, k});
          }
      // Macro-tile boundary cases (MC = 240, NC = 1024) and a k deep
      // enough to stress long in-register accumulation.
      cases.push_back({ta, tb, 241, 65, 321});
      cases.push_back({ta, tb, 37, 1025, 11});
      cases.push_back({ta, tb, 13, 33, 1301});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllTransposeCombos, GemmS8ParamTest,
                         ::testing::ValuesIn(AllTransposeCases()));

// Saturated operands (every input at +-127) maximize every partial product;
// the accumulation must stay exact — this is where a saturating
// implementation (e.g. a bare maddubs path) would diverge.
TEST(GemmS8Test, SaturatedInputsStayExact) {
  const int m = 29, n = 47, k = 640;
  for (int sign_a : {-1, 1}) {
    for (int sign_b : {-1, 1}) {
      std::vector<int8_t> a(static_cast<size_t>(m) * k,
                            static_cast<int8_t>(sign_a * 127));
      std::vector<int8_t> b(static_cast<size_t>(k) * n,
                            static_cast<int8_t>(sign_b * 127));
      std::vector<float> c(static_cast<size_t>(m) * n, 0.0f);
      GemmS8Epilogue ep;
      ep.scale = 1.0f;
      GemmS8(false, false, m, n, k, a.data(), b.data(), c.data(), ep,
             /*parallel=*/false);
      const float want = static_cast<float>(sign_a * sign_b) * 127.0f *
                         127.0f * static_cast<float>(k);
      for (float v : c) ASSERT_EQ(v, want);
    }
  }
}

// Alternating +-127 catches pairwise-saturation bugs that same-sign
// saturation misses (adjacent products cancel to huge intermediate pairs).
TEST(GemmS8Test, AlternatingSaturatedInputsMatchReference) {
  const int m = 18, n = 35, k = 514;
  std::vector<int8_t> a(static_cast<size_t>(m) * k);
  std::vector<int8_t> b(static_cast<size_t>(k) * n);
  for (size_t i = 0; i < a.size(); ++i) a[i] = (i % 2) ? 127 : -127;
  for (size_t i = 0; i < b.size(); ++i) b[i] = (i % 3) ? -127 : 127;
  std::vector<float> c(static_cast<size_t>(m) * n, 0.0f), c_ref = c;
  GemmS8Epilogue ep;
  ep.scale = 0.25f;
  GemmS8(false, false, m, n, k, a.data(), b.data(), c.data(), ep, true);
  GemmS8Ref(false, false, m, n, k, a.data(), b.data(), c_ref.data(), ep);
  for (size_t i = 0; i < c.size(); ++i) ASSERT_EQ(c[i], c_ref[i]);
}

TEST(GemmS8Test, ThreadedMatchesSequentialBitwise) {
  Rng rng(77);
  for (const auto& [m, n, k] :
       {std::tuple<int, int, int>{64, 48, 32},
        std::tuple<int, int, int>{300, 130, 400},
        std::tuple<int, int, int>{513, 1100, 129}}) {
    std::vector<int8_t> a(static_cast<size_t>(m) * k);
    std::vector<int8_t> b(static_cast<size_t>(k) * n);
    FillInt8(&a, rng);
    FillInt8(&b, rng);
    std::vector<float> bias(m);
    FillUniform(&bias, rng);
    GemmS8Epilogue ep;
    ep.scale = 0.013f;
    ep.row_bias = bias.data();
    ep.relu = true;
    std::vector<float> c1(static_cast<size_t>(m) * n, 0.0f), c2 = c1;
    GemmS8(false, false, m, n, k, a.data(), b.data(), c1.data(), ep, true);
    GemmS8(false, false, m, n, k, a.data(), b.data(), c2.data(), ep, false);
    ASSERT_EQ(0, std::memcmp(c1.data(), c2.data(),
                             c1.size() * sizeof(float)))
        << "m=" << m << " n=" << n << " k=" << k;
  }
}

TEST(GemmS8Test, PackedWeightsMatchUnpacked) {
  Rng rng(31);
  for (const auto& [m, n, k] :
       {std::tuple<int, int, int>{5, 9, 7},
        std::tuple<int, int, int>{64, 64, 576},
        std::tuple<int, int, int>{250, 1030, 130}}) {
    std::vector<int8_t> a(static_cast<size_t>(m) * k);
    std::vector<int8_t> b(static_cast<size_t>(k) * n);
    FillInt8(&a, rng);
    FillInt8(&b, rng);
    std::vector<float> scales(m);
    FillUniform(&scales, rng, 0.001f, 0.1f);
    GemmS8Epilogue ep;
    ep.scale = 0.07f;
    ep.row_scale = scales.data();
    PackedS8Weights packed = PackedS8Weights::Pack(m, k, a.data());
    EXPECT_EQ(packed.rows(), m);
    EXPECT_EQ(packed.depth(), k);
    EXPECT_GE(packed.nbytes(), m * k);
    std::vector<float> c1(static_cast<size_t>(m) * n, 0.0f), c2 = c1;
    GemmS8PackedA(packed, n, b.data(), c1.data(), ep, /*parallel=*/true);
    GemmS8(false, false, m, n, k, a.data(), b.data(), c2.data(), ep, true);
    ASSERT_EQ(0, std::memcmp(c1.data(), c2.data(),
                             c1.size() * sizeof(float)));
  }
}

TEST(GemmS8Test, KZeroAppliesEpilogueOnly) {
  const int m = 3, n = 2;
  std::vector<float> bias = {1.5f, -2.0f, 0.25f};
  std::vector<float> c(m * n, -9.0f);
  GemmS8Epilogue ep;
  ep.row_bias = bias.data();
  ep.relu = true;
  GemmS8(false, false, m, n, 0, nullptr, nullptr, c.data(), ep, false);
  EXPECT_FLOAT_EQ(c[0], 1.5f);
  EXPECT_FLOAT_EQ(c[1], 1.5f);
  EXPECT_FLOAT_EQ(c[2], 0.0f);  // relu clamps the negative bias
  EXPECT_FLOAT_EQ(c[3], 0.0f);
  EXPECT_FLOAT_EQ(c[4], 0.25f);
  EXPECT_FLOAT_EQ(c[5], 0.25f);
}

// Independent check of the epilogue arithmetic (not via GemmS8Ref, which
// shares the implementation): one tiny product computed by hand.
TEST(GemmS8Test, EpilogueMatchesManualArithmetic) {
  // C = [2x2] from A = [2x1], B = [1x2].
  const std::vector<int8_t> a = {10, -20};
  const std::vector<int8_t> b = {3, -5};
  std::vector<float> row_scale = {0.5f, 2.0f};
  std::vector<float> col_bias = {1.0f, -1.0f};
  GemmS8Epilogue ep;
  ep.scale = 0.1f;
  ep.row_scale = row_scale.data();
  ep.col_bias = col_bias.data();
  std::vector<float> c(4, 0.0f);
  GemmS8(false, false, 2, 2, 1, a.data(), b.data(), c.data(), ep, false);
  EXPECT_FLOAT_EQ(c[0], 30.0f * 0.1f * 0.5f + 1.0f);
  EXPECT_FLOAT_EQ(c[1], -50.0f * 0.1f * 0.5f - 1.0f);
  EXPECT_FLOAT_EQ(c[2], -60.0f * 0.1f * 2.0f + 1.0f);
  EXPECT_FLOAT_EQ(c[3], 100.0f * 0.1f * 2.0f - 1.0f);
}

TEST(GemmS8Test, KernelNameIsKnown) {
  const std::string name = GemmS8KernelName();
  EXPECT_TRUE(name == "avx512vnni" || name == "avx2" || name == "scalar")
      << name;
}

TEST(QuantizeBufferS8Test, RoundsHalfAwayFromZeroAndClamps) {
  const std::vector<float> src = {0.0f,  1.4f,  1.5f,  -1.5f,
                                  -1.4f, 300.0f, -300.0f};
  std::vector<int8_t> dst(src.size());
  QuantizeBufferS8(src.data(), static_cast<int64_t>(src.size()), 1.0f,
                   dst.data());
  EXPECT_EQ(dst[0], 0);
  EXPECT_EQ(dst[1], 1);
  EXPECT_EQ(dst[2], 2);
  EXPECT_EQ(dst[3], -2);
  EXPECT_EQ(dst[4], -1);
  EXPECT_EQ(dst[5], 127);
  EXPECT_EQ(dst[6], -127);
}

TEST(QuantizeBufferS8Test, MaxAbsFindsExtremes) {
  const std::vector<float> src = {0.5f, -3.25f, 2.0f};
  EXPECT_FLOAT_EQ(MaxAbs(src.data(), 3), 3.25f);
  EXPECT_FLOAT_EQ(MaxAbs(src.data(), 0), 0.0f);
}

// Pins the vectorized MaxAbs to the scalar definition bit for bit: every
// length through the 32-wide main loop, 8-wide loop, and scalar tail, on
// data salted with -0.0, denormals, infinities, and NaN (which the scan
// skips — `v > max` is false for NaN, and MAXPS keeps the running max on
// unordered compares).
TEST(QuantizeBufferS8Test, MaxAbsMatchesScalarReferenceBitwise) {
  const auto scalar_ref = [](const float* src, int64_t n) {
    float max_abs = 0.0f;
    for (int64_t i = 0; i < n; ++i) {
      const float v = src[i] < 0.0f ? -src[i] : src[i];
      if (v > max_abs) max_abs = v;
    }
    return max_abs;
  };
  Rng rng(4242);
  const float specials[] = {-0.0f,
                            0.0f,
                            1e-42f,  // denormal
                            -1e-42f,
                            std::numeric_limits<float>::infinity(),
                            -std::numeric_limits<float>::infinity(),
                            std::numeric_limits<float>::quiet_NaN()};
  for (int64_t n = 0; n <= 67; ++n) {
    std::vector<float> src(static_cast<size_t>(n));
    FillUniform(&src, rng, -1000.0f, 1000.0f);
    // Sprinkle specials at positions covering vector lanes and the tail.
    for (int64_t i = 0; i < n; i += 5)
      src[i] = specials[(n + i / 5) % 7];
    const float got = MaxAbs(src.data(), n);
    const float want = scalar_ref(src.data(), n);
    ASSERT_EQ(0, std::memcmp(&got, &want, sizeof(float))) << "n=" << n;
  }
  // Large buffer: many full 32-wide iterations plus both tail loops.
  std::vector<float> big(100003);
  FillUniform(&big, rng, -3.0f, 3.0f);
  big[99990] = -12345.5f;  // extreme in the scalar tail
  const float got = MaxAbs(big.data(), static_cast<int64_t>(big.size()));
  const float want = scalar_ref(big.data(), static_cast<int64_t>(big.size()));
  ASSERT_EQ(0, std::memcmp(&got, &want, sizeof(float)));
}

// The op(B) panels are the only resident form of an int8 Linear weight;
// Unpack must reconstruct the exact row-major source (serialization
// depends on it), including across the kNC = 1024 column-tile boundary.
TEST(GemmS8Test, PackedBWeightsUnpackRoundTrips) {
  const int64_t cases[][2] = {{7, 33}, {64, 40}, {33, 16}, {96, 1100}};
  for (const auto& kn : cases) {
    const int64_t k = kn[0], n = kn[1];
    Rng rng(k * 1009 + n);
    std::vector<int8_t> w(static_cast<size_t>(n * k));  // n x k row-major
    FillInt8(&w, rng);
    const PackedS8BWeights packed =
        PackedS8BWeights::Pack(/*trans_b=*/true, k, n, w.data());
    std::vector<int8_t> out(w.size());
    packed.Unpack(out.data());
    ASSERT_EQ(0, std::memcmp(w.data(), out.data(), w.size()))
        << "k=" << k << " n=" << n;
  }
}

}  // namespace
}  // namespace poe

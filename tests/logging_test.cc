#include "util/logging.h"

#include <gtest/gtest.h>

namespace poe {
namespace {

TEST(LoggingTest, LevelRoundTrip) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, LogMacroCompilesAndStreams) {
  // Smoke test: must not crash and must accept stream operands.
  SetLogLevel(LogLevel::kError);  // suppress output during the test
  POE_LOG(Info) << "value=" << 42 << " pi=" << 3.14;
  POE_LOG(Warning) << "warn";
  SetLogLevel(LogLevel::kInfo);
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH({ POE_CHECK(1 == 2) << "impossible"; }, "Check failed");
}

TEST(LoggingDeathTest, CheckComparisonsPrintValues) {
  EXPECT_DEATH({ POE_CHECK_EQ(3, 4); }, "3 vs 4");
  EXPECT_DEATH({ POE_CHECK_LT(9, 2); }, "9 vs 2");
}

TEST(LoggingTest, CheckPassesSilently) {
  POE_CHECK(true);
  POE_CHECK_EQ(1, 1);
  POE_CHECK_NE(1, 2);
  POE_CHECK_LE(1, 1);
  POE_CHECK_GE(2, 1);
  POE_CHECK_GT(2, 1);
  POE_CHECK_LT(1, 2);
}

}  // namespace
}  // namespace poe

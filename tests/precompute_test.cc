#include "distill/precompute.h"

#include <gtest/gtest.h>

#include "nn/linear.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace poe {
namespace {

TEST(BatchedApplyTest, MatchesSingleShotApplication) {
  Rng rng(1);
  Linear lin(6, 4, rng);
  Tensor images = Tensor::Randn({33, 6}, rng);
  auto fn = [&](const Tensor& x) { return lin.Forward(x, false); };
  Tensor batched = BatchedApply(fn, images, /*batch_size=*/8);
  Tensor direct = fn(images);
  EXPECT_EQ(batched.shape(), direct.shape());
  EXPECT_LT(MaxAbsDiff(batched, direct), 1e-6f);
}

TEST(BatchedApplyTest, BatchSizeLargerThanData) {
  Rng rng(2);
  Linear lin(3, 2, rng);
  Tensor images = Tensor::Randn({5, 3}, rng);
  auto fn = [&](const Tensor& x) { return lin.Forward(x, false); };
  Tensor out = BatchedApply(fn, images, 1000);
  EXPECT_EQ(out.dim(0), 5);
}

TEST(BatchedApplyTest, BatchSizeOne) {
  Rng rng(3);
  Linear lin(3, 2, rng);
  Tensor images = Tensor::Randn({4, 3}, rng);
  auto fn = [&](const Tensor& x) { return lin.Forward(x, false); };
  Tensor a = BatchedApply(fn, images, 1);
  Tensor b = BatchedApply(fn, images, 4);
  EXPECT_LT(MaxAbsDiff(a, b), 1e-7f);
}

TEST(BatchedApplyTest, PreservesMultiDimOutputs) {
  // fn returns 4-D feature maps; stacking must preserve the inner shape.
  auto fn = [](const Tensor& x) {
    Tensor out({x.dim(0), 2, 3, 3});
    for (int64_t i = 0; i < out.numel(); ++i) out.at(i) = 1.0f;
    return out;
  };
  Rng rng(4);
  Tensor images = Tensor::Randn({7, 1, 5, 5}, rng);
  Tensor out = BatchedApply(fn, images, 3);
  EXPECT_EQ(out.shape(), (std::vector<int64_t>{7, 2, 3, 3}));
  EXPECT_EQ(Sum(out), 7.0f * 18.0f);
}

TEST(BatchedApplyTest, RowsStayAligned) {
  // fn copies the first input element into every output slot; verify the
  // rows are not permuted by batching.
  auto fn = [](const Tensor& x) {
    const int64_t pixels = x.numel() / x.dim(0);
    Tensor out({x.dim(0), 2});
    for (int64_t b = 0; b < x.dim(0); ++b) {
      out.at(b * 2) = x.at(b * pixels);
      out.at(b * 2 + 1) = -x.at(b * pixels);
    }
    return out;
  };
  Tensor images({10, 1, 1, 1});
  for (int i = 0; i < 10; ++i) images.at(i) = static_cast<float>(i);
  Tensor out = BatchedApply(fn, images, 4);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(out.at(i * 2), static_cast<float>(i));
    EXPECT_EQ(out.at(i * 2 + 1), -static_cast<float>(i));
  }
}

}  // namespace
}  // namespace poe

// The cluster layer over real sockets: peer-RPC codec round trips, 2-node
// serving with wire fetches (serialized expert sections, rebuilt masters),
// and abrupt peer death mid-load — connection-refused maps to transient
// kUnavailable, every future resolves inside the whitelist, the dead node
// is detected, and a restarted peer reintegrates with a clean epoch
// handoff.
#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <vector>

#include "cluster/cluster_node.h"
#include "cluster/peer_rpc.h"
#include "eval/metrics.h"
#include "test_util.h"

namespace poe {
namespace {

using testutil::FastTrainOptions;
using testutil::TinyDataConfig;
using testutil::TinyLibraryConfig;
using testutil::TinyOracleConfig;

constexpr int kNumTasks = 3;

ExpertPool BuildPool() {
  static SyntheticDataset* data =
      new SyntheticDataset(GenerateSyntheticDataset(TinyDataConfig()));
  static Wrn* oracle = [] {
    Rng rng(41);
    Wrn* w = new Wrn(TinyOracleConfig(), rng);
    TrainScratch(*w, data->train, FastTrainOptions(4));
    return w;
  }();
  PoeBuildConfig cfg;
  cfg.library_config = TinyLibraryConfig();
  cfg.expert_ks = 0.5;
  cfg.library_options = FastTrainOptions(2);
  cfg.expert_options = FastTrainOptions(2);
  Rng rng(42);
  ExpertPool pool = ExpertPool::Preprocess(ModelLogits(*oracle), *data, cfg, rng);
  pool.set_retry_policy({2, 0.1, 2.0, 0.5});
  return pool;
}

Tensor MakeInput(int rows, int seed) {
  Rng rng(seed);
  return Tensor::Randn({rows, 3, 6, 6}, rng);
}

TEST(PeerRpcCodecTest, ViewFramesRoundTrip) {
  MembershipView view;
  view.epoch = 42;
  view.nodes.push_back({0, "127.0.0.1", 9100, 9200, NodeState::kDraining});
  view.nodes.push_back({5, "10.0.0.7", 9105, 9205, NodeState::kOffline});

  const std::vector<uint8_t> frame = EncodeViewFrame(7, kWireTypePing, view);
  WireHeader header;
  ASSERT_TRUE(DecodeHeader(frame.data(), kWireHeaderBytes, kWireTypePing,
                           kDefaultMaxBodyBytes, &header)
                  .ok());
  EXPECT_EQ(header.request_id, 7u);
  MembershipView decoded;
  ASSERT_TRUE(DecodeViewBody(frame.data() + kWireHeaderBytes,
                             frame.size() - kWireHeaderBytes, &decoded)
                  .ok());
  EXPECT_EQ(decoded.epoch, 42u);
  ASSERT_EQ(decoded.nodes.size(), 2u);
  EXPECT_EQ(decoded.nodes[1].host, "10.0.0.7");
  EXPECT_EQ(decoded.nodes[1].state, NodeState::kOffline);
  EXPECT_EQ(decoded.Fingerprint(), view.Fingerprint());

  // Truncated bodies are rejected, not misread.
  EXPECT_FALSE(DecodeViewBody(frame.data() + kWireHeaderBytes,
                              frame.size() - kWireHeaderBytes - 1, &decoded)
                   .ok());
}

TEST(PeerRpcCodecTest, FetchReplyCarriesStatusAndPayload) {
  const std::vector<uint8_t> ok_frame =
      EncodeFetchExpertReplyFrame(9, Status::OK(), "payload-bytes");
  Status remote;
  std::string payload;
  ASSERT_TRUE(DecodeFetchExpertReplyBody(ok_frame.data() + kWireHeaderBytes,
                                         ok_frame.size() - kWireHeaderBytes,
                                         &remote, &payload)
                  .ok());
  EXPECT_TRUE(remote.ok());
  EXPECT_EQ(payload, "payload-bytes");

  // An error reply drops the payload and survives the round trip intact.
  const std::vector<uint8_t> err_frame = EncodeFetchExpertReplyFrame(
      10, Status::Unavailable("not resident"), "ignored");
  ASSERT_TRUE(DecodeFetchExpertReplyBody(err_frame.data() + kWireHeaderBytes,
                                         err_frame.size() - kWireHeaderBytes,
                                         &remote, &payload)
                  .ok());
  EXPECT_EQ(remote.code(), StatusCode::kUnavailable);
  EXPECT_EQ(remote.message(), "not resident");
  EXPECT_TRUE(payload.empty());
}

/// One wire-connected node: peer server bound FIRST (so the view carries
/// real ports), then the node, then the endpoint wired in.
struct WireNode {
  std::unique_ptr<PeerServer> peer_server;
  std::unique_ptr<WireTransport> transport;
  std::unique_ptr<ClusterNode> node;

  static std::unique_ptr<WireNode> Bind() {
    auto wn = std::make_unique<WireNode>();
    wn->peer_server = std::make_unique<PeerServer>(nullptr,
                                                   PeerServer::Options{});
    EXPECT_TRUE(wn->peer_server->Start().ok());
    return wn;
  }

  void Wire(int id, const MembershipView& view) {
    ClusterNodeOptions options;
    options.node_id = id;
    options.placement.replication = 1;
    options.serve.num_workers = 2;
    node = std::make_unique<ClusterNode>(BuildPool(), view,
                                         std::move(options));
    transport = std::make_unique<WireTransport>(
        [this] { return node->view(); }, /*timeout_ms=*/2000.0);
    node->SetTransport(transport.get());
    peer_server->SetEndpoint(node.get());
    ASSERT_TRUE(node->Start().ok());
  }
};

MembershipView ViewFor(const std::vector<WireNode*>& nodes) {
  MembershipView view;
  for (size_t id = 0; id < nodes.size(); ++id) {
    view.nodes.push_back({static_cast<int>(id), "127.0.0.1",
                          nodes[id]->peer_server->port(), 0,
                          NodeState::kOnline});
  }
  return view;
}

TEST(ClusterWireTest, FetchesTravelSerializedAndRebuildIdenticalMasters) {
  auto wn0 = WireNode::Bind();
  auto wn1 = WireNode::Bind();
  const MembershipView view = ViewFor({wn0.get(), wn1.get()});
  wn0->Wire(0, view);
  wn1->Wire(1, view);

  // Both nodes serve the full composite through wire fetches.
  for (WireNode* wn : {wn0.get(), wn1.get()}) {
    PoolRequest request;
    request.task_ids = {0, 1, 2};
    request.input = MakeInput(2, 31);
    const InferenceResponse response =
        wn->node->server().Submit(std::move(request)).get();
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    EXPECT_EQ(response.logits.dim(1), 6);
  }

  const ServeStats s0 = wn0->node->stats();
  const ServeStats s1 = wn1->node->stats();
  EXPECT_EQ(s0.remote_fetch_ok + s1.remote_fetch_ok, kNumTasks);
  EXPECT_EQ(s0.peer_fetches_served + s1.peer_fetches_served, kNumTasks);
  EXPECT_EQ(s0.remote_fetch_requests, s0.remote_fetch_ok);
  EXPECT_EQ(s1.remote_fetch_requests, s1.remote_fetch_ok);

  // Wire fetches REBUILD masters from serialized sections — same weights,
  // distinct objects (unlike the loopback path, which aliases).
  for (int t = 0; t < kNumTasks; ++t) {
    EXPECT_NE(wn0->node->service().pool().expert(t).get(),
              wn1->node->service().pool().expert(t).get());
  }

  // ...and identical weights really means identical serving: the same
  // input produces the same predictions on both nodes.
  const Tensor probe = MakeInput(3, 77);
  auto m0 = wn0->node->service().Query({0, 1, 2});
  auto m1 = wn1->node->service().Query({0, 1, 2});
  ASSERT_TRUE(m0.ok() && m1.ok());
  const Tensor l0 = m0.ValueOrDie()->Logits(probe);
  const Tensor l1 = m1.ValueOrDie()->Logits(probe);
  ASSERT_EQ(l0.numel(), l1.numel());
  for (int64_t i = 0; i < l0.numel(); ++i) {
    EXPECT_FLOAT_EQ(l0.data()[i], l1.data()[i]);
  }
}

TEST(ClusterWireTest, AbruptPeerDeathIsDetectedAndSurvivedThenHealed) {
  auto wn0 = WireNode::Bind();
  auto wn1 = WireNode::Bind();
  const MembershipView view = ViewFor({wn0.get(), wn1.get()});
  const int node1_port = wn1->peer_server->port();
  wn0->Wire(0, view);
  wn1->Wire(1, view);

  // Kill node 1's control plane abruptly: in-flight and future fetches
  // see connection-refused / reset, which the client maps to transient
  // kUnavailable (the reconnect-uniformity contract).
  wn1->peer_server->Stop();

  std::vector<std::future<InferenceResponse>> futures;
  for (int i = 0; i < 12; ++i) {
    PoolRequest request;
    request.task_ids = {i % kNumTasks};
    request.input = MakeInput(1, 400 + i);
    request.deadline_ms = 800;
    futures.push_back(wn0->node->server().Submit(std::move(request)));
  }
  int failed = 0;
  for (auto& f : futures) {
    const InferenceResponse response = f.get();
    EXPECT_TRUE(response.status.ok() ||
                response.status.code() == StatusCode::kUnavailable ||
                response.status.code() == StatusCode::kDeadlineExceeded ||
                response.status.code() == StatusCode::kResourceExhausted)
        << response.status.ToString();
    if (!response.status.ok()) ++failed;
  }
  ASSERT_GT(failed, 0) << "every request succeeded - node 0 owned all "
                          "experts and the kill exercised nothing";

  // Failure detection over the wire: pings fail, node 1 goes OFFLINE.
  wn0->node->GossipOnce();
  wn0->node->GossipOnce();
  EXPECT_EQ(wn0->node->view().Find(1)->state, NodeState::kOffline);

  // "Restart" node 1's control plane on the SAME port and let gossip
  // reintegrate it: self-defense promotes it back to ONLINE at fresh
  // epochs, node 0 adopts, and the failed composites now assemble.
  PeerServer::Options options;
  options.port = node1_port;
  wn1->peer_server = std::make_unique<PeerServer>(wn1->node.get(), options);
  ASSERT_TRUE(wn1->peer_server->Start().ok());
  wn1->node->GossipOnce();
  EXPECT_EQ(wn1->node->SelfState(), NodeState::kOnline);
  wn0->node->GossipOnce();
  EXPECT_EQ(wn0->node->view().Find(1)->state, NodeState::kOnline);

  for (int t = 0; t < kNumTasks; ++t) {
    EXPECT_TRUE(wn0->node->service().Query({t}).ok());
  }

  // Reconciliation after drain: terminal buckets partition submissions.
  wn0->node->Stop();
  const ServeStats s = wn0->node->stats();
  EXPECT_EQ(s.submitted, s.completed + s.rejected + s.deadline_expired);
  EXPECT_EQ(s.remote_fetch_requests,
            s.remote_fetch_ok + s.remote_fetch_failed);
}

}  // namespace
}  // namespace poe

// Unit-level reproduction of the paper's Figure 4: the logit scale
// problem. Two perfectly accurate experts whose logits live on different
// scales produce wrong predictions under naive concatenation; matching
// scales (what L_scale enforces) fixes it.
#include <gtest/gtest.h>

#include "tensor/ops.h"

namespace poe {
namespace {

// Figure 4's setup: Q = H1 u H2, H1 = {cat, fox}, H2 = {dog, wolf}.
// The input is a dog image.
//
// Both experts are "properly confident": M(H1) slightly prefers cat within
// its own task but with low confidence; M(H2) confidently says dog.
TEST(LogitScaleTest, MismatchedScalesBreakConcatenation) {
  // M(H1) produces logits on a LARGE scale (e.g. 8, 6) even though its
  // softmax is only mildly confident... the softmax of (8, 6) is ~(0.88,
  // 0.12) - after distillation with only soft targets, the absolute scale
  // is arbitrary, so take a properly-confident distribution (0.6, 0.4)
  // realized at a large scale:
  //   softmax(a, b) = (0.6, 0.4)  <=>  a - b = log(1.5) ~ 0.405
  // Scale-1 realization: (0.405, 0).   Scale-10 realization: (4.05, 0) is
  // NOT the same softmax... the pair must keep the same difference but can
  // sit at any offset: (10.405, 10.0) has softmax (0.6, 0.4) too.
  Tensor h1 = Tensor::FromVector({1, 2}, {10.405f, 10.0f});  // cat, fox
  // M(H2): confident dog, softmax ~ (0.95, 0.05), small offset.
  Tensor h2 = Tensor::FromVector({1, 2}, {2.94f, 0.0f});  // dog, wolf

  // Each expert alone is properly confident.
  Tensor p1 = Softmax2d(h1);
  Tensor p2 = Softmax2d(h2);
  EXPECT_NEAR(p1.at(0), 0.6f, 0.01f);   // cat only mildly preferred
  EXPECT_NEAR(p2.at(0), 0.95f, 0.01f);  // dog strongly preferred

  // Naive concatenation: the offset mismatch dominates and the unified
  // model says "cat" for the dog image - Figure 4(b), wrong scale.
  Tensor unified = ConcatColumns({h1, h2});
  EXPECT_EQ(ArgmaxRow(unified, 0), 0);  // cat (wrong!)

  // With matched scales (same offset), concatenation is correct - Figure
  // 4(b), right scale. This is exactly the invariant L_scale transfers
  // from the oracle: both sub-logits inherit the oracle's common scale.
  Tensor h1_matched = Tensor::FromVector({1, 2}, {0.405f, 0.0f});
  Tensor fixed = ConcatColumns({h1_matched, h2});
  EXPECT_EQ(ArgmaxRow(fixed, 0), 2);  // dog (correct)
}

// The same effect expressed through softmax probabilities: joint softmax
// over mismatched-scale logits distorts the per-task marginals.
TEST(LogitScaleTest, JointSoftmaxDistortsMarginals) {
  Tensor h1 = Tensor::FromVector({1, 2}, {10.405f, 10.0f});
  Tensor h2 = Tensor::FromVector({1, 2}, {2.94f, 0.0f});
  Tensor joint = Softmax2d(ConcatColumns({h1, h2}));
  // Almost all mass leaks to the H1 block purely due to its offset.
  const float h1_mass = joint.at(0) + joint.at(1);
  EXPECT_GT(h1_mass, 0.99f);
}

// L1 distance between sub-logits detects scale mismatch where KL cannot:
// the quantitative rationale for Eq. (4).
TEST(LogitScaleTest, L1SeparatesScalesKlDoesNot) {
  Tensor oracle_sub = Tensor::FromVector({1, 2}, {0.405f, 0.0f});
  Tensor student_same_softmax = Tensor::FromVector({1, 2}, {10.405f, 10.0f});
  // Identical softmax => zero KL at any temperature.
  Tensor p_a = Softmax2d(oracle_sub);
  Tensor p_b = Softmax2d(student_same_softmax);
  EXPECT_LT(MaxAbsDiff(p_a, p_b), 1e-4f);
  // But L1 on raw logits sees the 10-unit offset.
  EXPECT_GT(L1Norm(Sub(student_same_softmax, oracle_sub)), 19.0f);
}

}  // namespace
}  // namespace poe

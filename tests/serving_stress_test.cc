// Concurrent serving stress: many client threads over mixed composite
// tasks against a small (churning) cache, checking the three serving
// invariants end to end:
//   1. the cache never serves the wrong model for a key,
//   2. cache-hit logits are bitwise identical to a fresh assembly,
//   3. counters reconcile exactly and no LRU entry is lost or duplicated.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "core/query_service.h"
#include "distill/specialize.h"
#include "eval/metrics.h"
#include "serve/inference_server.h"
#include "test_util.h"

namespace poe {
namespace {

using testutil::FastTrainOptions;
using testutil::TinyDataConfig;
using testutil::TinyLibraryConfig;
using testutil::TinyOracleConfig;

ExpertPool BuildPool() {
  static SyntheticDataset* data =
      new SyntheticDataset(GenerateSyntheticDataset(TinyDataConfig()));
  static Wrn* oracle = [] {
    Rng rng(51);
    Wrn* w = new Wrn(TinyOracleConfig(), rng);
    TrainScratch(*w, data->train, FastTrainOptions(4));
    return w;
  }();
  PoeBuildConfig cfg;
  cfg.library_config = TinyLibraryConfig();
  cfg.expert_ks = 0.5;
  cfg.library_options = FastTrainOptions(2);
  cfg.expert_options = FastTrainOptions(2);
  Rng rng(52);
  return ExpertPool::Preprocess(ModelLogits(*oracle), *data, cfg, rng);
}

// All 7 non-empty subsets of {0,1,2}, in assorted spellings (order and
// duplicates must not matter for correctness).
const std::vector<std::vector<int>>& MixedTaskSets() {
  static const std::vector<std::vector<int>>* sets =
      new std::vector<std::vector<int>>{
          {0},       {1},    {2},       {0, 1},    {1, 0, 0}, {0, 2},
          {2, 0},    {1, 2}, {2, 1, 1}, {0, 1, 2}, {2, 1, 0}, {1, 1, 2, 0},
      };
  return *sets;
}

std::vector<int> SortedClasses(const std::vector<int>& classes) {
  std::vector<int> sorted = classes;
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

// The class set M(Q) must predict, independent of spelling.
std::vector<int> ExpectedClasses(const ClassHierarchy& hierarchy,
                                 const std::vector<int>& tasks) {
  std::vector<int> ids = tasks;
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  std::vector<int> classes;
  for (int t : ids) {
    const auto& task_classes = hierarchy.task_classes(t);
    classes.insert(classes.end(), task_classes.begin(), task_classes.end());
  }
  std::sort(classes.begin(), classes.end());
  return classes;
}

TEST(ServingStressTest, ConcurrentMixedWorkloadKeepsEveryInvariant) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 250;
  constexpr size_t kCapacity = 3;  // well under the 7 distinct keys: churn

  ModelQueryService service(BuildPool(), kCapacity,
                            ServingPrecision::kFloat32, /*cache_shards=*/4);
  const ClassHierarchy& hierarchy = service.pool().hierarchy();
  std::atomic<int> failures{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      unsigned state = 99u + 7u * t;
      Rng rng(1000 + t);
      for (int i = 0; i < kPerThread; ++i) {
        state = state * 1664525u + 1013904223u;
        const auto& tasks = MixedTaskSets()[state % MixedTaskSets().size()];
        auto result = service.Query(tasks);
        if (!result.ok()) {
          failures.fetch_add(1);
          continue;
        }
        // Invariant 1: the served model predicts exactly the classes of
        // this composite task - never another key's model.
        if (SortedClasses(result.ValueOrDie()->global_classes()) !=
            ExpectedClasses(hierarchy, tasks)) {
          failures.fetch_add(1);
        }
        // Occasionally run the model to shake out lifetime bugs (a model
        // evicted while a client still holds it must stay usable).
        if (i % 25 == 0) {
          Tensor probe = Tensor::Randn({1, 3, 6, 6}, rng);
          result.ValueOrDie()->Predict(probe);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);

  // Invariant 3: exact counter reconciliation.
  ServeStats stats = service.serve_stats();
  EXPECT_EQ(stats.queries, kThreads * kPerThread);
  EXPECT_EQ(stats.cache_hits + stats.cache_misses + stats.coalesced,
            stats.queries);
  EXPECT_EQ(stats.queries, service.stats().num_queries);

  int64_t shard_hits = 0, shard_misses = 0, shard_coalesced = 0,
          shard_evictions = 0, shard_size = 0;
  for (const auto& shard : stats.shards) {
    shard_hits += shard.hits;
    shard_misses += shard.misses;
    shard_coalesced += shard.coalesced;
    shard_evictions += shard.evictions;
    shard_size += shard.size;
  }
  EXPECT_EQ(shard_hits, stats.cache_hits);
  EXPECT_EQ(shard_misses, stats.cache_misses);
  EXPECT_EQ(shard_coalesced, stats.coalesced);
  // No lost LRU entries after eviction churn: resident entries equal
  // successful assemblies minus evictions, and fill the global bound.
  EXPECT_EQ(shard_size, stats.cache_misses - shard_evictions);
  EXPECT_EQ(static_cast<int64_t>(service.cache_size()), shard_size);
  EXPECT_EQ(service.cache_size(), kCapacity);

  // Invariant 2: whatever is cached now serves logits bitwise identical
  // to a fresh pool assembly of the same key.
  Rng rng(5);
  Tensor probe = Tensor::Randn({2, 3, 6, 6}, rng);
  for (const auto& tasks : {std::vector<int>{0, 1, 2}, std::vector<int>{1}}) {
    auto cached = service.Query(tasks).ValueOrDie();
    Tensor hit_logits = cached->Logits(probe);
    TaskModel fresh = service.pool().Query(tasks).ValueOrDie();
    Tensor fresh_logits = fresh.Logits(probe);
    ASSERT_EQ(hit_logits.numel(), fresh_logits.numel());
    EXPECT_EQ(std::memcmp(hit_logits.data(), fresh_logits.data(),
                          sizeof(float) * hit_logits.numel()),
              0);
  }
}

TEST(ServingStressTest, ServerUnderConcurrentClientsReconciles) {
  ModelQueryService service(BuildPool(), 4, ServingPrecision::kFloat32, 4);
  InferenceServer::Options opts;
  opts.num_workers = 2;
  opts.queue_capacity = 16;
  InferenceServer server(&service, opts);

  constexpr int kClients = 4;
  constexpr int kPerClient = 50;
  std::atomic<int> ok{0}, rejected{0}, failed{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      unsigned state = 7u + 13u * c;
      Rng rng(3000 + c);
      for (int i = 0; i < kPerClient; ++i) {
        state = state * 1664525u + 1013904223u;
        InferenceRequest req;
        req.task_ids = MixedTaskSets()[state % MixedTaskSets().size()];
        req.input = Tensor::Randn({1, 3, 6, 6}, rng);
        InferenceResponse res = server.Submit(std::move(req)).get();
        if (res.status.ok()) {
          ok.fetch_add(1);
          if (res.predictions.size() != 1) failed.fetch_add(1);
        } else if (res.status.code() == StatusCode::kResourceExhausted) {
          rejected.fetch_add(1);
        } else {
          failed.fetch_add(1);
        }
      }
    });
  }
  for (auto& client : clients) client.join();
  server.Shutdown();

  EXPECT_EQ(failed.load(), 0);
  EXPECT_EQ(ok.load() + rejected.load(), kClients * kPerClient);
  ServeStats stats = server.stats();
  EXPECT_EQ(stats.submitted, kClients * kPerClient);
  EXPECT_EQ(stats.completed, ok.load());
  EXPECT_EQ(stats.rejected, rejected.load());
  EXPECT_EQ(stats.completed + stats.rejected, stats.submitted);
  EXPECT_EQ(stats.queue_depth, 0);
  // The service underneath saw one Query per fused batch, and its own
  // counters reconcile too.
  EXPECT_EQ(stats.cache_hits + stats.cache_misses + stats.coalesced,
            stats.queries);
}

}  // namespace
}  // namespace poe

#include <gtest/gtest.h>

#include <cmath>

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/pooling.h"
#include "nn/sequential.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace poe {
namespace {

TEST(ReluTest, ForwardClampsNegatives) {
  ReLU relu;
  Tensor x = Tensor::FromVector({1, 4}, {-1, 0, 2, -3});
  Tensor y = relu.Forward(x, false);
  EXPECT_EQ(y.at(0), 0.0f);
  EXPECT_EQ(y.at(1), 0.0f);
  EXPECT_EQ(y.at(2), 2.0f);
  EXPECT_EQ(y.at(3), 0.0f);
}

TEST(ReluTest, BackwardMasksByInputSign) {
  ReLU relu;
  Tensor x = Tensor::FromVector({1, 3}, {-1, 1, 2});
  relu.Forward(x, true);
  Tensor g = relu.Backward(Tensor::Ones({1, 3}));
  EXPECT_EQ(g.at(0), 0.0f);
  EXPECT_EQ(g.at(1), 1.0f);
  EXPECT_EQ(g.at(2), 1.0f);
}

TEST(GlobalAvgPoolTest, AveragesSpatially) {
  GlobalAvgPool pool;
  Tensor x = Tensor::FromVector({1, 2, 2, 2}, {1, 2, 3, 4, 10, 10, 10, 10});
  Tensor y = pool.Forward(x, false);
  EXPECT_EQ(y.dim(0), 1);
  EXPECT_EQ(y.dim(1), 2);
  EXPECT_FLOAT_EQ(y.at(0), 2.5f);
  EXPECT_FLOAT_EQ(y.at(1), 10.0f);
}

TEST(GlobalAvgPoolTest, BackwardSpreadsUniformly) {
  GlobalAvgPool pool;
  Tensor x = Tensor::Zeros({1, 1, 2, 2});
  pool.Forward(x, true);
  Tensor g = pool.Backward(Tensor::FromVector({1, 1}, {8}));
  for (int i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(g.at(i), 2.0f);
}

TEST(FlattenTest, RoundTripsShape) {
  Flatten flatten;
  Tensor x = Tensor::Zeros({2, 3, 4, 5});
  Tensor y = flatten.Forward(x, true);
  EXPECT_EQ(y.ndim(), 2);
  EXPECT_EQ(y.dim(1), 60);
  Tensor g = flatten.Backward(Tensor::Zeros({2, 60}));
  EXPECT_EQ(g.shape(), x.shape());
}

TEST(LinearTest, KnownValues) {
  Rng rng(1);
  Linear lin(2, 2, rng, /*bias=*/true);
  lin.weight().value = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  lin.bias().value = Tensor::FromVector({2}, {10, 20});
  Tensor x = Tensor::FromVector({1, 2}, {1, 1});
  Tensor y = lin.Forward(x, false);
  EXPECT_FLOAT_EQ(y.at(0), 13.0f);  // 1*1 + 2*1 + 10
  EXPECT_FLOAT_EQ(y.at(1), 27.0f);  // 3*1 + 4*1 + 20
}

TEST(LinearTest, ParameterCount) {
  Rng rng(1);
  Linear lin(8, 4, rng, true);
  EXPECT_EQ(lin.NumParams(), 8 * 4 + 4);
  Linear nobias(8, 4, rng, false);
  EXPECT_EQ(nobias.NumParams(), 8 * 4);
}

TEST(Conv2dTest, IdentityKernelPreservesImage) {
  Rng rng(1);
  Conv2d conv(1, 1, 3, 1, 1, rng);
  conv.weight().value.Fill(0.0f);
  conv.weight().value.at(4) = 1.0f;  // center tap
  Tensor x = Tensor::Randn({2, 1, 5, 5}, rng);
  Tensor y = conv.Forward(x, false);
  EXPECT_EQ(y.shape(), x.shape());
  EXPECT_LT(MaxAbsDiff(x, y), 1e-6f);
}

TEST(Conv2dTest, StrideHalvesResolution) {
  Rng rng(1);
  Conv2d conv(3, 8, 3, 2, 1, rng);
  Tensor x = Tensor::Randn({4, 3, 8, 8}, rng);
  Tensor y = conv.Forward(x, false);
  EXPECT_EQ(y.dim(0), 4);
  EXPECT_EQ(y.dim(1), 8);
  EXPECT_EQ(y.dim(2), 4);
  EXPECT_EQ(y.dim(3), 4);
}

TEST(Conv2dTest, SumKernelComputesLocalSums) {
  Rng rng(1);
  Conv2d conv(1, 1, 3, 1, 1, rng);
  conv.weight().value.Fill(1.0f);
  Tensor x = Tensor::Ones({1, 1, 3, 3});
  Tensor y = conv.Forward(x, false);
  // Center pixel sees all 9 ones; corners see 4.
  EXPECT_FLOAT_EQ(y.at(4), 9.0f);
  EXPECT_FLOAT_EQ(y.at(0), 4.0f);
}

TEST(Conv2dTest, BiasIsAdded) {
  Rng rng(1);
  Conv2d conv(1, 2, 1, 1, 0, rng, /*bias=*/true);
  conv.weight().value.Fill(0.0f);
  conv.bias().value = Tensor::FromVector({2}, {1.5f, -2.0f});
  Tensor x = Tensor::Zeros({1, 1, 2, 2});
  Tensor y = conv.Forward(x, false);
  EXPECT_FLOAT_EQ(y.at(0), 1.5f);
  EXPECT_FLOAT_EQ(y.at(4), -2.0f);
}

TEST(BatchNormTest, TrainingNormalizesBatch) {
  BatchNorm2d bn(2);
  Rng rng(3);
  Tensor x = Tensor::Randn({8, 2, 4, 4}, rng, 3.0f);
  Tensor y = bn.Forward(x, true);
  // Per channel, output should have ~zero mean and ~unit variance.
  for (int c = 0; c < 2; ++c) {
    double sum = 0.0, sq = 0.0;
    int n = 0;
    for (int b = 0; b < 8; ++b) {
      for (int i = 0; i < 16; ++i) {
        float v = y.at((b * 2 + c) * 16 + i);
        sum += v;
        sq += v * v;
        ++n;
      }
    }
    EXPECT_NEAR(sum / n, 0.0, 1e-4);
    EXPECT_NEAR(sq / n, 1.0, 1e-2);
  }
}

TEST(BatchNormTest, EvalUsesRunningStats) {
  BatchNorm2d bn(1);
  Rng rng(4);
  // Feed several training batches so running stats adapt.
  for (int i = 0; i < 200; ++i) {
    Tensor x = Tensor::Randn({16, 1, 2, 2}, rng, 2.0f);
    ScaleInPlace(x, 1.0f);
    bn.Forward(x, true);
  }
  // Eval on data from the same distribution: output ~ standardized.
  Tensor x = Tensor::Randn({256, 1, 2, 2}, rng, 2.0f);
  Tensor y = bn.Forward(x, false);
  EXPECT_NEAR(Mean(y), 0.0f, 0.1f);
}

TEST(BatchNormTest, AffineParamsScaleAndShift) {
  BatchNorm2d bn(1);
  bn.gamma().value.Fill(2.0f);
  bn.beta().value.Fill(5.0f);
  Rng rng(5);
  Tensor x = Tensor::Randn({16, 1, 4, 4}, rng);
  Tensor y = bn.Forward(x, true);
  EXPECT_NEAR(Mean(y), 5.0f, 1e-3f);
}

TEST(SequentialTest, ChainsLayers) {
  Rng rng(1);
  Sequential seq;
  seq.Add(std::make_unique<Linear>(4, 8, rng));
  seq.Add(std::make_unique<ReLU>());
  seq.Add(std::make_unique<Linear>(8, 3, rng));
  EXPECT_EQ(seq.size(), 3u);
  Tensor x = Tensor::Randn({2, 4}, rng);
  Tensor y = seq.Forward(x, false);
  EXPECT_EQ(y.dim(0), 2);
  EXPECT_EQ(y.dim(1), 3);
}

TEST(SequentialTest, CollectsAllParameters) {
  Rng rng(1);
  Sequential seq;
  seq.Add(std::make_unique<Linear>(4, 8, rng));
  seq.Add(std::make_unique<Linear>(8, 3, rng));
  EXPECT_EQ(seq.Parameters().size(), 4u);  // two weights + two biases
  EXPECT_EQ(seq.NumParams(), 4 * 8 + 8 + 8 * 3 + 3);
}

TEST(ModuleTest, ZeroGradClearsGradients) {
  Rng rng(1);
  Linear lin(3, 2, rng);
  lin.weight().grad.Fill(5.0f);
  lin.ZeroGrad();
  EXPECT_EQ(Sum(lin.weight().grad), 0.0f);
}

TEST(ModuleTest, SetTrainableMarksAllParams) {
  Rng rng(1);
  Sequential seq;
  seq.Add(std::make_unique<Linear>(3, 2, rng));
  seq.SetTrainable(false);
  for (Parameter* p : seq.Parameters()) EXPECT_FALSE(p->trainable);
}

TEST(BatchNormTest, CollectBuffersExposesRunningStats) {
  BatchNorm2d bn(4);
  std::vector<Tensor*> buffers;
  bn.CollectBuffers(&buffers);
  ASSERT_EQ(buffers.size(), 2u);
  EXPECT_EQ(buffers[0]->numel(), 4);
}

}  // namespace
}  // namespace poe

// Loopback end-to-end tests of the network front-end: a NetServer over
// 127.0.0.1 must be a transparent transport - logits bitwise-identical
// to in-process Submit (f32 AND int8), deadlines and backpressure
// observable through wire status codes, and transport counters
// reconciling with the serving counters.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "eval/metrics.h"
#include "net/net_client.h"
#include "net/net_server.h"
#include "serve/inference_server.h"
#include "test_util.h"
#include "util/fault.h"

namespace poe {
namespace {

using testutil::FastTrainOptions;
using testutil::TinyDataConfig;
using testutil::TinyLibraryConfig;
using testutil::TinyOracleConfig;

ExpertPool BuildPool() {
  static SyntheticDataset* data =
      new SyntheticDataset(GenerateSyntheticDataset(TinyDataConfig()));
  static Wrn* oracle = [] {
    Rng rng(41);
    Wrn* w = new Wrn(TinyOracleConfig(), rng);
    TrainScratch(*w, data->train, FastTrainOptions(4));
    return w;
  }();
  PoeBuildConfig cfg;
  cfg.library_config = TinyLibraryConfig();
  cfg.expert_ks = 0.5;
  cfg.library_options = FastTrainOptions(2);
  cfg.expert_options = FastTrainOptions(2);
  Rng rng(42);
  return ExpertPool::Preprocess(ModelLogits(*oracle), *data, cfg, rng);
}

Tensor MakeInput(int rows, int seed) {
  Rng rng(seed);
  return Tensor::Randn({rows, 3, 6, 6}, rng);
}

/// Starts a NetServer over `server` and returns it running.
std::unique_ptr<NetServer> StartNet(InferenceServer* server,
                                    NetServer::Options opts = {}) {
  auto net = std::make_unique<NetServer>(server, opts);
  Status s = net->Start();
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_GT(net->port(), 0);
  return net;
}

void ExpectBitwiseEqual(const Tensor& a, const Tensor& b) {
  ASSERT_TRUE(a.defined());
  ASSERT_TRUE(b.defined());
  ASSERT_EQ(a.shape(), b.shape());
  EXPECT_EQ(0, std::memcmp(a.data(), b.data(),
                           sizeof(float) * static_cast<size_t>(a.numel())));
}

TEST(NetLoopbackTest, F32LogitsBitwiseIdenticalToInProcessSubmit) {
  ModelQueryService service(BuildPool(), /*cache_capacity=*/8);
  InferenceServer server(&service, {});
  auto net = StartNet(&server);

  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", net->port()).ok());

  for (int i = 0; i < 3; ++i) {
    const std::vector<int> tasks = i == 0 ? std::vector<int>{0, 1}
                                          : std::vector<int>{0, 1, 2};
    const Tensor input = MakeInput(2 + i, 100 + i);

    InferenceRequest direct;
    direct.task_ids = tasks;
    direct.input = input;
    InferenceResponse in_process = server.Submit(std::move(direct)).get();
    ASSERT_TRUE(in_process.status.ok()) << in_process.status.ToString();

    auto wire = client.Query(tasks, input);
    ASSERT_TRUE(wire.ok()) << wire.status().ToString();
    const WireResponse& resp = wire.ValueOrDie();
    ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
    ExpectBitwiseEqual(in_process.logits, resp.logits);
    EXPECT_EQ(in_process.predictions, resp.predictions);
    EXPECT_EQ(in_process.global_classes, resp.global_classes);
    EXPECT_EQ(ServingPrecision::kFloat32, resp.precision);
  }
}

TEST(NetLoopbackTest, Int8LogitsBitwiseIdenticalToInProcessSubmit) {
  ModelQueryService service(BuildPool(), /*cache_capacity=*/8,
                            ServingPrecision::kInt8);
  InferenceServer server(&service, {});
  auto net = StartNet(&server);

  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", net->port()).ok());

  // Serial requests: each is served as a batch-of-one on both paths, so
  // the dynamic activation quantization sees the identical batch and the
  // int8 logits must match bit for bit.
  for (int i = 0; i < 3; ++i) {
    const std::vector<int> tasks{0, 2};
    const Tensor input = MakeInput(3, 200 + i);

    InferenceRequest direct;
    direct.task_ids = tasks;
    direct.input = input;
    InferenceResponse in_process = server.Submit(std::move(direct)).get();
    ASSERT_TRUE(in_process.status.ok()) << in_process.status.ToString();
    ASSERT_EQ(ServingPrecision::kInt8, in_process.precision);

    auto wire = client.Query(tasks, input, /*deadline_ms=*/0.0,
                             WirePrecision::kInt8);
    ASSERT_TRUE(wire.ok()) << wire.status().ToString();
    const WireResponse& resp = wire.ValueOrDie();
    ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
    ExpectBitwiseEqual(in_process.logits, resp.logits);
    EXPECT_EQ(in_process.predictions, resp.predictions);
    EXPECT_EQ(ServingPrecision::kInt8, resp.precision);
  }
}

TEST(NetLoopbackTest, DeadlineStatusesPropagateOverTheWire) {
  ModelQueryService service(BuildPool(), 8);
  InferenceServer server(&service, {});
  auto net = StartNet(&server);

  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", net->port()).ok());

  // A microscopic budget expires at submission; the shed must arrive as
  // a kDeadlineExceeded response frame, not a closed connection.
  auto expired = client.Query({0, 1}, MakeInput(1, 7), /*deadline_ms=*/1e-6);
  ASSERT_TRUE(expired.ok()) << expired.status().ToString();
  EXPECT_EQ(StatusCode::kDeadlineExceeded,
            expired.ValueOrDie().status.code());

  // A generous budget sails through on the SAME connection (the shed did
  // not poison it).
  auto served = client.Query({0, 1}, MakeInput(1, 8), /*deadline_ms=*/60000);
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  EXPECT_TRUE(served.ValueOrDie().status.ok());

  EXPECT_GE(server.stats().deadline_expired, 1);
}

TEST(NetLoopbackTest, QueueBackpressureArrivesAsResourceExhausted) {
  ModelQueryService service(BuildPool(), 8);
  InferenceServer::Options opts;
  opts.num_workers = 1;
  opts.queue_capacity = 1;
  InferenceServer server(&service, opts);
  auto net = StartNet(&server);

  // A slow forward keeps the single worker busy so pipelined requests
  // pile onto the 1-deep queue and overflow it.
  ScopedFaultInjection slow("server.forward=delay:30:always");

  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", net->port()).ok());
  constexpr int kPipelined = 12;
  const Tensor input = MakeInput(1, 9);
  for (int i = 0; i < kPipelined; ++i) {
    ASSERT_TRUE(client.Send({0, 1}, input).ok());
  }
  int ok = 0, exhausted = 0;
  for (int i = 0; i < kPipelined; ++i) {
    auto r = client.Receive();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    const Status& s = r.ValueOrDie().status;
    if (s.ok()) {
      ++ok;
    } else {
      ASSERT_EQ(StatusCode::kResourceExhausted, s.code()) << s.ToString();
      ++exhausted;
    }
  }
  // Every pipelined request got exactly one answer; under a 1-deep queue
  // and a 30 ms forward at least one overflowed.
  EXPECT_EQ(kPipelined, ok + exhausted);
  EXPECT_GE(exhausted, 1);
  EXPECT_GE(ok, 1);
  EXPECT_GE(server.stats().rejected, exhausted);
}

TEST(NetLoopbackTest, PerConnectionWindowStillAnswersEverything) {
  ModelQueryService service(BuildPool(), 8);
  InferenceServer server(&service, {});
  NetServer::Options nopts;
  nopts.max_inflight_per_conn = 2;  // tiny window: reads must pause/resume
  auto net = StartNet(&server, nopts);

  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", net->port()).ok());
  constexpr int kPipelined = 10;
  const Tensor input = MakeInput(1, 10);
  for (int i = 0; i < kPipelined; ++i) {
    ASSERT_TRUE(client.Send({0}, input).ok());
  }
  for (int i = 0; i < kPipelined; ++i) {
    auto r = client.Receive();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r.ValueOrDie().status.ok())
        << r.ValueOrDie().status.ToString();
  }
  EXPECT_EQ(kPipelined, net->stats().frames_decoded);
}

TEST(NetLoopbackTest, PrecisionDemandMismatchIsRejectedWithoutSubmission) {
  ModelQueryService service(BuildPool(), 8);  // f32 pool
  InferenceServer server(&service, {});
  auto net = StartNet(&server);

  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", net->port()).ok());
  auto r = client.Query({0, 1}, MakeInput(1, 11), 0.0, WirePrecision::kInt8);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(StatusCode::kFailedPrecondition, r.ValueOrDie().status.code());

  const NetStats stats = net->stats();
  EXPECT_EQ(1, stats.precision_rejects);
  EXPECT_EQ(1, stats.frames_decoded);
  EXPECT_EQ(0, server.stats().submitted);  // never reached the queue
}

TEST(NetLoopbackTest, CountersReconcileAcrossTransportAndServing) {
  ModelQueryService service(BuildPool(), 8);
  InferenceServer server(&service, {});
  auto net = StartNet(&server);

  constexpr int kConns = 3;
  constexpr int kPerConn = 5;
  for (int c = 0; c < kConns; ++c) {
    NetClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", net->port()).ok());
    for (int i = 0; i < kPerConn; ++i) {
      auto r = client.Query({0, 1}, MakeInput(1, 300 + c * kPerConn + i));
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      EXPECT_TRUE(r.ValueOrDie().status.ok());
    }
    client.Close();
  }
  net->Stop();

  const NetStats n = net->stats();
  const ServeStats s = server.stats();
  EXPECT_EQ(kConns * kPerConn, n.frames_decoded);
  EXPECT_EQ(kConns * kPerConn, n.responses_sent);
  EXPECT_EQ(0, n.protocol_errors);
  // Transport identity: every accepted connection is open or dropped.
  EXPECT_EQ(kConns, n.conns_accepted);
  EXPECT_EQ(0, n.conns_open);
  EXPECT_EQ(n.conns_accepted, n.conns_open + n.conns_dropped);
  // Cross-layer identity: every decoded frame became exactly one
  // submitted request (no precision rejects here), and the drained
  // serve-side buckets partition them.
  EXPECT_EQ(n.frames_decoded, s.submitted + n.precision_rejects);
  EXPECT_EQ(s.submitted, s.completed + s.rejected + s.deadline_expired);
  EXPECT_GT(n.bytes_in, 0);
  EXPECT_GT(n.bytes_out, 0);
}

TEST(NetLoopbackTest, StopIsGracefulAndIdempotent) {
  ModelQueryService service(BuildPool(), 8);
  InferenceServer server(&service, {});
  auto net = StartNet(&server);

  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", net->port()).ok());
  auto r = client.Query({0}, MakeInput(1, 12));
  ASSERT_TRUE(r.ok());

  net->Stop();
  net->Stop();  // idempotent
  EXPECT_FALSE(net->running());

  // A connection attempt after Stop must fail, not hang.
  NetClient late;
  EXPECT_FALSE(late.Connect("127.0.0.1", net->port()).ok());
}

}  // namespace
}  // namespace poe

// Concurrency tests for the sharded single-flight cache, driven with
// cheap int values so the machinery (not model assembly) is under test.
#include "serve/model_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

namespace poe {
namespace {

using IntCache = ShardedFlightCache<int>;

IntCache::Options Opts(size_t capacity, int shards = 8) {
  IntCache::Options options;
  options.capacity = capacity;
  options.num_shards = shards;
  return options;
}

int64_t TotalHits(const std::vector<CacheShardStats>& shards) {
  int64_t n = 0;
  for (const auto& s : shards) n += s.hits;
  return n;
}
int64_t TotalMisses(const std::vector<CacheShardStats>& shards) {
  int64_t n = 0;
  for (const auto& s : shards) n += s.misses;
  return n;
}
int64_t TotalCoalesced(const std::vector<CacheShardStats>& shards) {
  int64_t n = 0;
  for (const auto& s : shards) n += s.coalesced;
  return n;
}
int64_t TotalEvictions(const std::vector<CacheShardStats>& shards) {
  int64_t n = 0;
  for (const auto& s : shards) n += s.evictions;
  return n;
}
int64_t TotalSize(const std::vector<CacheShardStats>& shards) {
  int64_t n = 0;
  for (const auto& s : shards) n += s.size;
  return n;
}

TEST(ShardedFlightCacheTest, MissAssemblesThenHits) {
  IntCache cache(Opts(8));
  std::atomic<int> assemblies{0};
  auto assemble = [&](const IntCache::Key& key) -> Result<int> {
    assemblies.fetch_add(1);
    return key[0] * 10;
  };
  bool hit = true;
  EXPECT_EQ(cache.GetOrAssemble({3}, assemble, &hit).ValueOrDie(), 30);
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.GetOrAssemble({3}, assemble, &hit).ValueOrDie(), 30);
  EXPECT_TRUE(hit);
  EXPECT_EQ(assemblies.load(), 1);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ShardedFlightCacheTest, CapacityZeroAssemblesEveryTime) {
  IntCache cache(Opts(0));
  std::atomic<int> assemblies{0};
  auto assemble = [&](const IntCache::Key&) -> Result<int> {
    return assemblies.fetch_add(1) + 1;
  };
  EXPECT_EQ(cache.GetOrAssemble({1}, assemble).ValueOrDie(), 1);
  EXPECT_EQ(cache.GetOrAssemble({1}, assemble).ValueOrDie(), 2);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ShardedFlightCacheTest, GlobalLruEvictsOldestAcrossShards) {
  // Capacity is a GLOBAL bound: 3 distinct keys (landing in whatever
  // shards the hash picks) through a capacity-2 cache must leave exactly
  // 2 resident, with the least recently used key the one evicted.
  IntCache cache(Opts(2, 4));
  std::atomic<int> assemblies{0};
  auto assemble = [&](const IntCache::Key& key) -> Result<int> {
    assemblies.fetch_add(1);
    return key[0];
  };
  cache.GetOrAssemble({0}, assemble);
  cache.GetOrAssemble({1}, assemble);
  cache.GetOrAssemble({2}, assemble);  // evicts {0}
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(assemblies.load(), 3);

  bool hit = false;
  cache.GetOrAssemble({1}, assemble, &hit);
  EXPECT_TRUE(hit);
  cache.GetOrAssemble({2}, assemble, &hit);
  EXPECT_TRUE(hit);
  cache.GetOrAssemble({0}, assemble, &hit);  // was evicted: assembles again
  EXPECT_FALSE(hit);
  EXPECT_EQ(assemblies.load(), 4);
  EXPECT_EQ(TotalEvictions(cache.ShardStats()), 2);
}

TEST(ShardedFlightCacheTest, SingleFlightCoalescesConcurrentSameKeyMisses) {
  IntCache cache(Opts(8));
  std::atomic<int> assemblies{0};
  constexpr int kThreads = 8;
  auto assemble = [&](const IntCache::Key&) -> Result<int> {
    assemblies.fetch_add(1);
    // Long enough that every racer arrives while the flight is open.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    return 7;
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      EXPECT_EQ(cache.GetOrAssemble({5}, assemble).ValueOrDie(), 7);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(assemblies.load(), 1);  // one leader, everyone else waited/hit
  auto shards = cache.ShardStats();
  EXPECT_EQ(TotalMisses(shards), 1);
  EXPECT_EQ(TotalHits(shards) + TotalCoalesced(shards), kThreads - 1);
}

// Regression test for the pre-PR design, which held one global mutex
// across the entire assembly: two concurrent misses on DIFFERENT keys
// must overlap in time. Each assembly signals its entry and then waits
// for the other; under assembly-under-lock this times out.
TEST(ShardedFlightCacheTest, DistinctKeyMissesAssembleInParallel) {
  IntCache cache(Opts(8));
  std::mutex mu;
  std::condition_variable cv;
  int entered = 0;
  bool overlapped = true;
  auto assemble = [&](const IntCache::Key& key) -> Result<int> {
    std::unique_lock<std::mutex> lock(mu);
    ++entered;
    cv.notify_all();
    if (!cv.wait_for(lock, std::chrono::seconds(5),
                     [&] { return entered >= 2; })) {
      overlapped = false;  // the other assembly never started: serialized
    }
    return key[0];
  };
  std::thread a([&] { cache.GetOrAssemble({100}, assemble); });
  std::thread b([&] { cache.GetOrAssemble({200}, assemble); });
  a.join();
  b.join();
  EXPECT_TRUE(overlapped)
      << "distinct-key assemblies serialized: assembly runs under a lock";
}

TEST(ShardedFlightCacheTest, FailedAssemblyReachesWaitersAndIsNotCached) {
  IntCache cache(Opts(8));
  std::atomic<int> assemblies{0};
  auto failing = [&](const IntCache::Key&) -> Result<int> {
    assemblies.fetch_add(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    return Status::InvalidArgument("boom");
  };
  std::vector<std::thread> threads;
  std::atomic<int> errors{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      auto r = cache.GetOrAssemble({9}, failing);
      if (!r.ok()) errors.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(errors.load(), 4);  // leader and every waiter saw the error
  EXPECT_EQ(cache.size(), 0u);  // never cached

  // The key is retryable: a later assembly that succeeds is cached.
  auto ok = [](const IntCache::Key&) -> Result<int> { return 1; };
  EXPECT_TRUE(cache.GetOrAssemble({9}, ok).ok());
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ShardedFlightCacheTest, ValueBytesAreChargedAtInsertAndCreditedAtEvict) {
  IntCache::Options options = Opts(2, 1);
  options.value_bytes = [](const int& v) {
    return static_cast<int64_t>(100 * v);
  };
  IntCache cache(options);
  auto assemble = [](const IntCache::Key& key) -> Result<int> {
    return key[0];
  };
  auto resident_bytes = [&] {
    int64_t n = 0;
    for (const auto& s : cache.ShardStats()) n += s.resident_bytes;
    return n;
  };

  cache.GetOrAssemble({1}, assemble);
  EXPECT_EQ(resident_bytes(), 100);
  cache.GetOrAssemble({2}, assemble);
  EXPECT_EQ(resident_bytes(), 300);
  // Hits re-stamp but never re-charge.
  cache.GetOrAssemble({1}, assemble);
  EXPECT_EQ(resident_bytes(), 300);
  // Past capacity: {2} (oldest stamp) is evicted and its bytes credited.
  cache.GetOrAssemble({3}, assemble);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(resident_bytes(), 100 + 300);
}

TEST(ShardedFlightCacheTest, EvictionChurnKeepsCountersAndSizeConsistent) {
  constexpr size_t kCapacity = 8;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  constexpr int kKeySpace = 64;
  IntCache::Options churn_options = Opts(kCapacity, 4);
  churn_options.value_bytes = [](const int&) -> int64_t { return 7; };
  IntCache cache(churn_options);
  std::atomic<int64_t> assemblies{0};
  auto assemble = [&](const IntCache::Key& key) -> Result<int> {
    assemblies.fetch_add(1);
    return key[0];
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      unsigned state = 12345u + t;
      for (int i = 0; i < kPerThread; ++i) {
        state = state * 1664525u + 1013904223u;
        const int k = static_cast<int>(state % kKeySpace);
        auto r = cache.GetOrAssemble({k}, assemble);
        ASSERT_TRUE(r.ok());
        ASSERT_EQ(r.ValueOrDie(), k);  // never served another key's value
      }
    });
  }
  for (auto& t : threads) t.join();

  auto shards = cache.ShardStats();
  // Every lookup is accounted exactly once.
  EXPECT_EQ(TotalHits(shards) + TotalMisses(shards) + TotalCoalesced(shards),
            kThreads * kPerThread);
  // Every miss led exactly one assembly.
  EXPECT_EQ(TotalMisses(shards), assemblies.load());
  // No lost or duplicated LRU entries: resident == assembled - evicted,
  // and the global bound held.
  EXPECT_EQ(TotalSize(shards), assemblies.load() - TotalEvictions(shards));
  EXPECT_EQ(static_cast<int64_t>(cache.size()), TotalSize(shards));
  EXPECT_LE(cache.size(), kCapacity);
  EXPECT_EQ(cache.size(), kCapacity);  // churn far exceeded capacity
  // Byte accounting survives the churn: charged minus credited equals
  // exactly the residents' bytes.
  int64_t resident_bytes = 0;
  for (const auto& s : shards) resident_bytes += s.resident_bytes;
  EXPECT_EQ(resident_bytes, 7 * TotalSize(shards));
}

}  // namespace
}  // namespace poe

// Seeded fault injection on the transport: with net.read/net.write armed
// the server drops connections mid-stream, and every client call must
// still resolve (transport error or well-formed response - never a hang),
// after which the server serves normally and its counters reconcile.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "eval/metrics.h"
#include "net/net_client.h"
#include "net/net_server.h"
#include "serve/inference_server.h"
#include "test_util.h"
#include "util/fault.h"

namespace poe {
namespace {

using testutil::FastTrainOptions;
using testutil::TinyDataConfig;
using testutil::TinyLibraryConfig;
using testutil::TinyOracleConfig;

ExpertPool BuildPool() {
  static SyntheticDataset* data =
      new SyntheticDataset(GenerateSyntheticDataset(TinyDataConfig()));
  static Wrn* oracle = [] {
    Rng rng(41);
    Wrn* w = new Wrn(TinyOracleConfig(), rng);
    TrainScratch(*w, data->train, FastTrainOptions(4));
    return w;
  }();
  PoeBuildConfig cfg;
  cfg.library_config = TinyLibraryConfig();
  cfg.expert_ks = 0.5;
  cfg.library_options = FastTrainOptions(2);
  cfg.expert_options = FastTrainOptions(2);
  Rng rng(42);
  return ExpertPool::Preprocess(ModelLogits(*oracle), *data, cfg, rng);
}

Tensor MakeInput(int rows, int seed) {
  Rng rng(seed);
  return Tensor::Randn({rows, 3, 6, 6}, rng);
}

TEST(NetFaultTest, EveryCallResolvesUnderSeededTransportFaults) {
  ModelQueryService service(BuildPool(), 8);
  InferenceServer server(&service, {});
  NetServer net(&server, {});
  ASSERT_TRUE(net.Start().ok());

  std::atomic<int> served{0};
  std::atomic<int> failed{0};
  {
    // Deterministic schedule: every (spec, seed) pair replays the same
    // connection kills. Probabilities are high enough that both sites
    // fire within the run.
    ScopedFaultInjection faults(
        "net.read=io:prob:0.15;net.write=io:prob:0.15", /*seed=*/7);

    constexpr int kThreads = 3;
    constexpr int kCallsPerThread = 30;
    std::vector<std::thread> clients;
    for (int t = 0; t < kThreads; ++t) {
      clients.emplace_back([&, t] {
        NetClient client;
        for (int i = 0; i < kCallsPerThread; ++i) {
          if (!client.connected()) {
            client.Close();
            if (!client.Connect("127.0.0.1", net.port()).ok()) {
              ++failed;
              continue;
            }
          }
          auto r = client.Query({0, 1}, MakeInput(1, 1000 + t * 100 + i));
          if (r.ok() && r.ValueOrDie().status.ok()) {
            ++served;
          } else {
            // A killed connection surfaces as kUnavailable (EOF/reset);
            // the next iteration reconnects.
            ++failed;
          }
        }
      });
    }
    for (std::thread& c : clients) c.join();

    // Every call came back - the exactly-once accounting held.
    EXPECT_EQ(kThreads * kCallsPerThread, served.load() + failed.load());
    // The schedule actually fired on the transport sites.
    const int64_t read_triggers =
        FaultInjector::Global().SiteStats("net.read").triggers;
    const int64_t write_triggers =
        FaultInjector::Global().SiteStats("net.write").triggers;
    EXPECT_GT(read_triggers + write_triggers, 0);
    EXPECT_GT(served.load(), 0);
    EXPECT_GT(failed.load(), 0);
  }

  // Disarmed, the server serves as if nothing happened.
  NetClient probe;
  ASSERT_TRUE(probe.Connect("127.0.0.1", net.port()).ok());
  auto r = probe.Query({0, 1}, MakeInput(1, 4));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.ValueOrDie().status.ok());
  probe.Close();
  net.Stop();

  const NetStats n = net.stats();
  EXPECT_EQ(n.conns_accepted, n.conns_open + n.conns_dropped);
  EXPECT_EQ(0, n.conns_open);
  // Dropped-mid-flight requests still resolved inside the inference
  // server even though their response frames had nowhere to go.
  const ServeStats s = server.stats();
  EXPECT_EQ(s.submitted, s.completed + s.rejected + s.deadline_expired);
}

TEST(NetFaultTest, WriteFaultDropsConnectionButNotTheServer) {
  ModelQueryService service(BuildPool(), 8);
  InferenceServer server(&service, {});
  NetServer net(&server, {});
  ASSERT_TRUE(net.Start().ok());

  {
    ScopedFaultInjection faults("net.write=io:always", /*seed=*/3);
    NetClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", net.port()).ok());
    auto r = client.Query({0}, MakeInput(1, 5));
    // The response write always faults, so the round trip must fail as
    // a transport error - never hang.
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(StatusCode::kUnavailable, r.status().code());
  }

  NetClient probe;
  ASSERT_TRUE(probe.Connect("127.0.0.1", net.port()).ok());
  auto r = probe.Query({0}, MakeInput(1, 6));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.ValueOrDie().status.ok());
}

// --- transient-errno mapping: connect and mid-stream failures take the
// --- same retry path ---

TEST(NetFaultTest, ConnectionRefusedIsTransientUnavailable) {
  // Reserve a port that nothing listens on: ECONNREFUSED is "the peer is
  // not up YET" - a retry might cure it, so it must map to kUnavailable
  // (kIoError would make RetryWithBackoff give up immediately).
  NetServer::Options opts;
  ModelQueryService service(BuildPool(), 8);
  InferenceServer server(&service, {});
  NetServer net(&server, opts);
  ASSERT_TRUE(net.Start().ok());
  const int port = net.port();
  net.Stop();  // the port is now dead

  NetClient client;
  const Status s = client.Connect("127.0.0.1", port);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(StatusCode::kUnavailable, s.code()) << s.ToString();
}

TEST(NetFaultTest, OneRetryLoopCoversReconnectAndMidStreamFailure) {
  // The uniformity contract end-to-end: a client wraps "ensure connected
  // + query" in ONE RetryWithBackoff. First the server is down (connect
  // fails kUnavailable), then it comes up mid-retries and the SAME loop
  // completes the query - no special-casing per failure shape.
  ModelQueryService service(BuildPool(), 8);
  InferenceServer server(&service, {});
  NetServer net(&server, NetServer::Options{});
  ASSERT_TRUE(net.Start().ok());
  const int port = net.port();
  net.Stop();

  NetServer revived(&server, [&] {
    NetServer::Options o;
    o.port = port;
    return o;
  }());
  std::thread reviver([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    ASSERT_TRUE(revived.Start().ok());
  });

  NetClient client;
  int64_t retries = 0;
  RetryPolicy policy;
  policy.max_attempts = 50;
  policy.initial_backoff_ms = 5.0;
  policy.multiplier = 1.5;
  policy.max_backoff_ms = 40.0;
  auto result = RetryWithBackoff(
      policy, Deadline::AfterMillis(5000),
      [&]() -> Result<WireResponse> {
        if (!client.connected()) {
          client.Close();
          POE_RETURN_NOT_OK(client.Connect("127.0.0.1", port));
        }
        return client.Query({0, 1}, MakeInput(1, 7));
      },
      &retries);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.ValueOrDie().status.ok());
  EXPECT_GT(retries, 0);  // the down phase was actually observed
  reviver.join();

  // Mid-stream death of the revived server takes the same path: the next
  // call on the (now dead) connection is kUnavailable, not kIoError.
  revived.Stop();
  auto dead = client.Query({0, 1}, MakeInput(1, 8));
  ASSERT_FALSE(dead.ok());
  EXPECT_EQ(StatusCode::kUnavailable, dead.status().code())
      << dead.status().ToString();
}

}  // namespace
}  // namespace poe

#include "util/histogram.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace poe {
namespace {

TEST(LatencyHistogramTest, EmptyHistogramReportsZero) {
  LatencyHistogram hist;
  EXPECT_EQ(hist.count(), 0);
  EXPECT_EQ(hist.Percentile(0.5), 0.0);
  EXPECT_EQ(hist.max_ms(), 0.0);
  EXPECT_EQ(hist.avg_ms(), 0.0);
}

TEST(LatencyHistogramTest, BucketBoundsAreGeometricAndCoverTheRange) {
  LatencyHistogram hist;
  EXPECT_DOUBLE_EQ(hist.bucket_upper_ms(0), 1e-3);
  for (int i = 1; i < LatencyHistogram::kNumBuckets; ++i) {
    EXPECT_GT(hist.bucket_upper_ms(i), hist.bucket_upper_ms(i - 1));
  }
  // The top bound must exceed any latency this system can produce (100 s).
  EXPECT_GT(hist.bucket_upper_ms(LatencyHistogram::kNumBuckets - 1), 1e5);
}

TEST(LatencyHistogramTest, CountSumMaxAreExact) {
  LatencyHistogram hist;
  hist.Record(1.0);
  hist.Record(2.0);
  hist.Record(3.0);
  EXPECT_EQ(hist.count(), 3);
  EXPECT_NEAR(hist.sum_ms(), 6.0, 1e-6);
  EXPECT_NEAR(hist.max_ms(), 3.0, 1e-6);
  EXPECT_NEAR(hist.avg_ms(), 2.0, 1e-6);
}

TEST(LatencyHistogramTest, PercentilesWithinBucketResolution) {
  LatencyHistogram hist;
  // 1..1000 ms uniform: p50 ~ 500, p99 ~ 990. Buckets are geometric with
  // factor 1.33, so estimates must land within ~33% of truth.
  for (int i = 1; i <= 1000; ++i) hist.Record(static_cast<double>(i));
  EXPECT_NEAR(hist.Percentile(0.50), 500.0, 500.0 * 0.35);
  EXPECT_NEAR(hist.Percentile(0.99), 990.0, 990.0 * 0.35);
  // Extremes are exact: p0 is within the lowest populated bucket, p100 is
  // the true max.
  EXPECT_LE(hist.Percentile(0.0), 1.33);
  EXPECT_NEAR(hist.Percentile(1.0), 1000.0, 1e-6);
}

TEST(LatencyHistogramTest, PercentileNeverExceedsMax) {
  LatencyHistogram hist;
  hist.Record(0.5);
  for (double p : {0.5, 0.9, 0.99, 1.0}) {
    EXPECT_LE(hist.Percentile(p), hist.max_ms() + 1e-9);
  }
}

TEST(LatencyHistogramTest, OutOfRangeSamplesClampToEdgeBuckets) {
  LatencyHistogram hist;
  hist.Record(-5.0);      // clamps to 0
  hist.Record(1e9);       // clamps into the last bucket
  EXPECT_EQ(hist.count(), 2);
  EXPECT_NEAR(hist.max_ms(), 1e9, 1.0);
}

TEST(LatencyHistogramTest, ConcurrentRecordsLoseNothing) {
  LatencyHistogram hist;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist] {
      for (int i = 0; i < kPerThread; ++i) hist.Record(1.0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(hist.count(), kThreads * kPerThread);
  EXPECT_NEAR(hist.sum_ms(), kThreads * kPerThread, 1e-3);
}

TEST(HistogramSnapshotTest, SnapshotCountIsAlwaysTheBucketSum) {
  LatencyHistogram hist;
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    double ms = 0.01;
    while (!stop.load(std::memory_order_relaxed)) {
      hist.Record(ms);
      ms = ms > 1000.0 ? 0.01 : ms * 1.7;
    }
  });
  // However the snapshot interleaves with concurrent Record()s, its count
  // must equal the sum of ITS buckets - that is the consistency contract
  // percentile walks rely on.
  for (int i = 0; i < 2000; ++i) {
    const HistogramSnapshot snap = hist.snapshot();
    int64_t sum = 0;
    for (int64_t b : snap.buckets) sum += b;
    ASSERT_EQ(sum, snap.count);
    ASSERT_LE(snap.Percentile(1.0), snap.max_ms() + 1e-9);
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
}

TEST(HistogramSnapshotTest, SnapshotPercentilesMatchLivePercentiles) {
  LatencyHistogram hist;
  for (int i = 1; i <= 500; ++i) hist.Record(static_cast<double>(i));
  const HistogramSnapshot snap = hist.snapshot();
  for (double p : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(hist.Percentile(p), snap.Percentile(p));
  }
  EXPECT_EQ(hist.count(), snap.count);
  EXPECT_NEAR(hist.sum_ms(), snap.sum_ms(), 1e-9);
  EXPECT_NEAR(hist.max_ms(), snap.max_ms(), 1e-9);
}

TEST(HistogramSnapshotTest, MergeAggregatesPerWorkerHistograms) {
  LatencyHistogram a, b;
  for (int i = 0; i < 100; ++i) a.Record(1.0);
  for (int i = 0; i < 100; ++i) b.Record(100.0);

  HistogramSnapshot merged = a.snapshot();
  merged.Merge(b.snapshot());
  EXPECT_EQ(200, merged.count);
  EXPECT_NEAR(merged.sum_ms(), 100 * 1.0 + 100 * 100.0, 1e-6);
  EXPECT_NEAR(merged.max_ms(), 100.0, 1e-6);
  // Half the mass at ~1ms, half at ~100ms: the median must sit in the low
  // mode and p99 in the high mode.
  EXPECT_LT(merged.Percentile(0.49), 2.0);
  EXPECT_GT(merged.Percentile(0.99), 50.0);

  // Merge with an empty snapshot is the identity.
  HistogramSnapshot copy = merged;
  copy.Merge(HistogramSnapshot{});
  EXPECT_EQ(merged.count, copy.count);
  EXPECT_DOUBLE_EQ(merged.Percentile(0.5), copy.Percentile(0.5));
}

TEST(QpsWindowTest, RateReflectsRecordedEvents) {
  QpsWindow qps(10);
  for (int i = 0; i < 100; ++i) qps.Record();
  // 100 events within well under a second; the young-gauge denominator is
  // the uptime, so the rate must be at least 100/uptime >= 100/10.
  EXPECT_GE(qps.Rate(), 10.0);
}

TEST(QpsWindowTest, ConcurrentRecordIsSafe) {
  QpsWindow qps(10);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&qps] {
      for (int i = 0; i < 5000; ++i) qps.Record();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_GT(qps.Rate(), 0.0);
}

}  // namespace
}  // namespace poe

#include "data/dataset.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace poe {
namespace {

Dataset TinyData() {
  Dataset d;
  d.images = Tensor::FromVector({6, 1, 1, 1}, {0, 1, 2, 3, 4, 5});
  d.labels = {0, 1, 2, 0, 1, 2};
  return d;
}

TEST(DatasetTest, FilterClassesKeepsMatchingSamples) {
  Dataset d = TinyData();
  Dataset f = FilterClasses(d, {1, 2}, /*remap=*/false);
  EXPECT_EQ(f.size(), 4);
  EXPECT_EQ(f.labels, (std::vector<int>{1, 2, 1, 2}));
  EXPECT_EQ(f.images.at(0), 1.0f);  // sample of class 1
}

TEST(DatasetTest, FilterClassesRemapsToLocalIndices) {
  Dataset d = TinyData();
  Dataset f = FilterClasses(d, {2, 0}, /*remap=*/true);
  // class 2 -> 0, class 0 -> 1, order of samples preserved.
  EXPECT_EQ(f.labels, (std::vector<int>{1, 0, 1, 0}));
}

TEST(DatasetTest, ExcludeClassesDropsThem) {
  Dataset d = TinyData();
  Dataset e = ExcludeClasses(d, {0});
  EXPECT_EQ(e.size(), 4);
  for (int label : e.labels) EXPECT_NE(label, 0);
}

TEST(DatasetTest, FilterToNothingGivesEmpty) {
  Dataset d = TinyData();
  Dataset f = FilterClasses(d, {99}, true);
  EXPECT_EQ(f.size(), 0);
}

TEST(BatchIteratorTest, CoversAllSamplesOncePerEpoch) {
  Dataset d = TinyData();
  Rng rng(1);
  BatchIterator it(d, 4, rng);
  std::multiset<float> seen;
  Batch b;
  int batches = 0;
  while (it.Next(&b)) {
    ++batches;
    for (int64_t i = 0; i < b.images.numel(); ++i) seen.insert(b.images.at(i));
  }
  EXPECT_EQ(batches, 2);
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(it.batches_per_epoch(), 2);
  for (int v = 0; v < 6; ++v) EXPECT_EQ(seen.count(static_cast<float>(v)), 1u);
}

TEST(BatchIteratorTest, LabelsAlignWithImages) {
  Dataset d = TinyData();
  Rng rng(2);
  BatchIterator it(d, 3, rng);
  Batch b;
  while (it.Next(&b)) {
    for (size_t i = 0; i < b.labels.size(); ++i) {
      // In TinyData, image value v has label v % 3.
      const int v = static_cast<int>(b.images.at(i));
      EXPECT_EQ(b.labels[i], v % 3);
    }
  }
}

TEST(BatchIteratorTest, IndicesPointIntoParentDataset) {
  Dataset d = TinyData();
  Rng rng(3);
  BatchIterator it(d, 2, rng);
  Batch b;
  while (it.Next(&b)) {
    for (size_t i = 0; i < b.indices.size(); ++i) {
      EXPECT_EQ(d.labels[b.indices[i]], b.labels[i]);
    }
  }
}

TEST(BatchIteratorTest, ReshufflesAcrossEpochs) {
  Dataset d;
  const int n = 64;
  d.images = Tensor::Zeros({n, 1, 1, 1});
  for (int i = 0; i < n; ++i) d.images.at(i) = static_cast<float>(i);
  d.labels.assign(n, 0);
  Rng rng(4);
  BatchIterator it(d, n, rng);
  Batch b1, b2;
  it.Next(&b1);
  it.Reset();
  it.Next(&b2);
  EXPECT_NE(b1.indices, b2.indices);
}

TEST(BatchIteratorTest, NoShuffleKeepsOrder) {
  Dataset d = TinyData();
  Rng rng(5);
  BatchIterator it(d, 6, rng, /*shuffle=*/false);
  Batch b;
  ASSERT_TRUE(it.Next(&b));
  for (int i = 0; i < 6; ++i) EXPECT_EQ(b.indices[i], i);
}

}  // namespace
}  // namespace poe

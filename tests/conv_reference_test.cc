// Property test: Conv2d (im2col + GEMM) against a direct naive convolution
// across a parameter sweep of shapes, strides, and paddings.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "nn/conv2d.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace poe {
namespace {

// Direct convolution: out[b][oc][oh][ow] = sum_ic,kh,kw w * x (+ bias).
Tensor NaiveConv(const Tensor& x, const Tensor& weight, const Tensor& bias,
                 int64_t out_c, int64_t kernel, int64_t stride, int64_t pad) {
  const int64_t batch = x.dim(0), in_c = x.dim(1), h = x.dim(2),
                w = x.dim(3);
  const int64_t out_h = (h + 2 * pad - kernel) / stride + 1;
  const int64_t out_w = (w + 2 * pad - kernel) / stride + 1;
  Tensor out = Tensor::Zeros({batch, out_c, out_h, out_w});
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t oc = 0; oc < out_c; ++oc) {
      for (int64_t oh = 0; oh < out_h; ++oh) {
        for (int64_t ow = 0; ow < out_w; ++ow) {
          double acc = bias.defined() ? bias.at(oc) : 0.0;
          for (int64_t ic = 0; ic < in_c; ++ic) {
            for (int64_t kh = 0; kh < kernel; ++kh) {
              for (int64_t kw = 0; kw < kernel; ++kw) {
                const int64_t ih = oh * stride - pad + kh;
                const int64_t iw = ow * stride - pad + kw;
                if (ih < 0 || ih >= h || iw < 0 || iw >= w) continue;
                const float xv = x.at(((b * in_c + ic) * h + ih) * w + iw);
                const float wv = weight.at(
                    oc * in_c * kernel * kernel + ic * kernel * kernel +
                    kh * kernel + kw);
                acc += static_cast<double>(xv) * wv;
              }
            }
          }
          out.at(((b * out_c + oc) * out_h + oh) * out_w + ow) =
              static_cast<float>(acc);
        }
      }
    }
  }
  return out;
}

// (in_c, out_c, kernel, stride, pad, h, w, bias)
using Case = std::tuple<int, int, int, int, int, int, int, bool>;

class ConvReferenceTest : public ::testing::TestWithParam<Case> {};

TEST_P(ConvReferenceTest, MatchesNaiveConvolution) {
  const auto [in_c, out_c, kernel, stride, pad, h, w, bias] = GetParam();
  Rng rng(in_c * 131 + out_c * 17 + kernel + stride + pad + h + w);
  Conv2d conv(in_c, out_c, kernel, stride, pad, rng, bias);
  Tensor x = Tensor::Randn({3, in_c, h, w}, rng);
  Tensor fast = conv.Forward(x, false);
  Tensor slow = NaiveConv(x, conv.weight().value,
                          bias ? conv.bias().value : Tensor(), out_c, kernel,
                          stride, pad);
  ASSERT_EQ(fast.shape(), slow.shape());
  EXPECT_LT(MaxAbsDiff(fast, slow), 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConvReferenceTest,
    ::testing::Values(Case{1, 1, 1, 1, 0, 4, 4, false},
                      Case{3, 8, 3, 1, 1, 8, 8, false},
                      Case{3, 8, 3, 2, 1, 8, 8, false},
                      Case{4, 2, 3, 1, 0, 5, 7, true},
                      Case{2, 6, 1, 2, 0, 6, 6, true},
                      Case{8, 16, 3, 2, 1, 7, 5, false},
                      Case{1, 3, 5, 1, 2, 9, 9, true},
                      Case{2, 2, 3, 3, 1, 9, 9, false}));

}  // namespace
}  // namespace poe

// The fault injector itself: spec parsing, trigger arithmetic, seeded
// determinism, and the zero-cost-when-disarmed contract. Everything else
// in this PR leans on these semantics, so they are pinned here first.
#include "util/fault.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "util/stopwatch.h"

namespace poe {
namespace {

class FaultTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Global().Clear(); }
};

TEST_F(FaultTest, DisarmedInjectorIsAlwaysOk) {
  FaultInjector& f = FaultInjector::Global();
  f.Clear();
  EXPECT_FALSE(f.enabled());
  EXPECT_TRUE(PoeFaultHit("anything.at.all").ok());
  // Disabled hits are not even counted - the fast path does no work.
  EXPECT_EQ(f.SiteStats("anything.at.all").hits, 0);
}

TEST_F(FaultTest, AlwaysTriggerFiresEveryHitWithTheMappedCode) {
  struct KindCase {
    const char* kind;
    StatusCode code;
  };
  const std::vector<KindCase> kinds = {
      {"io", StatusCode::kIoError},
      {"corrupt", StatusCode::kCorruption},
      {"unavail", StatusCode::kUnavailable},
      {"alloc", StatusCode::kResourceExhausted},
      {"deadline", StatusCode::kDeadlineExceeded},
  };
  for (const KindCase& k : kinds) {
    ScopedFaultInjection arm(std::string("site.x=") + k.kind + ":always");
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(PoeFaultHit("site.x").code(), k.code) << k.kind;
    }
    FaultSiteStats stats = FaultInjector::Global().SiteStats("site.x");
    EXPECT_EQ(stats.hits, 3);
    EXPECT_EQ(stats.triggers, 3);
  }
}

TEST_F(FaultTest, NthOnceAndAfterTriggers) {
  {
    ScopedFaultInjection arm("s=io:nth:3");
    std::vector<bool> fired;
    for (int i = 0; i < 9; ++i) fired.push_back(!PoeFaultHit("s").ok());
    EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false,
                                        true, false, false, true}));
  }
  FaultInjector::Global().Clear();
  {
    ScopedFaultInjection arm("s=io:once:2");
    std::vector<bool> fired;
    for (int i = 0; i < 5; ++i) fired.push_back(!PoeFaultHit("s").ok());
    EXPECT_EQ(fired,
              (std::vector<bool>{false, true, false, false, false}));
  }
  FaultInjector::Global().Clear();
  {
    ScopedFaultInjection arm("s=io:after:2");
    std::vector<bool> fired;
    for (int i = 0; i < 5; ++i) fired.push_back(!PoeFaultHit("s").ok());
    EXPECT_EQ(fired, (std::vector<bool>{false, false, true, true, true}));
  }
}

TEST_F(FaultTest, ProbScheduleIsDeterministicPerSeedAndDiffersAcrossSeeds) {
  auto schedule = [](uint64_t seed) {
    FaultInjector::Global().Clear();
    ScopedFaultInjection arm("s=io:prob:0.5", seed);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(!PoeFaultHit("s").ok());
    return fired;
  };
  const auto a1 = schedule(7);
  const auto a2 = schedule(7);
  const auto b = schedule(8);
  EXPECT_EQ(a1, a2) << "same (spec, seed) must replay identically";
  EXPECT_NE(a1, b) << "different seeds must explore different schedules";
  // p=0.5 over 64 draws: both extremes (never / always firing) would mean
  // the per-site stream is broken.
  int fires = 0;
  for (bool f : a1) fires += f ? 1 : 0;
  EXPECT_GT(fires, 8);
  EXPECT_LT(fires, 56);
}

TEST_F(FaultTest, ProbExtremesAreExact) {
  {
    ScopedFaultInjection arm("s=io:prob:0");
    for (int i = 0; i < 32; ++i) EXPECT_TRUE(PoeFaultHit("s").ok());
  }
  FaultInjector::Global().Clear();
  {
    ScopedFaultInjection arm("s=io:prob:1");
    for (int i = 0; i < 32; ++i) EXPECT_FALSE(PoeFaultHit("s").ok());
  }
}

TEST_F(FaultTest, SitesAreIndependentStreams) {
  ScopedFaultInjection arm("a=io:nth:2;b=corrupt:always");
  EXPECT_TRUE(PoeFaultHit("a").ok());
  EXPECT_EQ(PoeFaultHit("b").code(), StatusCode::kCorruption);
  EXPECT_EQ(PoeFaultHit("a").code(), StatusCode::kIoError);
  // An armed config still returns OK for sites it does not mention, but
  // counts the traffic (coverage: did control even reach the site?).
  EXPECT_TRUE(PoeFaultHit("never.mentioned").ok());
  EXPECT_EQ(FaultInjector::Global().SiteStats("never.mentioned").hits, 1);
  EXPECT_EQ(FaultInjector::Global().SiteStats("never.mentioned").triggers, 0);
}

TEST_F(FaultTest, DelayKindSleepsThenSucceeds) {
  ScopedFaultInjection arm("s=delay:20:always");
  Stopwatch sw;
  EXPECT_TRUE(PoeFaultHit("s").ok());
  EXPECT_GE(sw.ElapsedMillis(), 15.0);
  EXPECT_EQ(FaultInjector::Global().SiteStats("s").triggers, 1);
}

TEST_F(FaultTest, MalformedSpecsRejectedAndPreviousConfigKept) {
  FaultInjector& f = FaultInjector::Global();
  ASSERT_TRUE(f.Configure("s=io:always").ok());
  const std::vector<std::string> bad = {
      "s",                  // no '='
      "s=",                 // no kind
      "s=io",               // no trigger
      "s=bogus:always",     // unknown kind
      "s=io:bogus",         // unknown trigger
      "s=io:nth",           // nth without count
      "s=io:nth:0",         // zero count
      "s=io:prob:1.5",      // probability out of range
      "s=io:prob:nope",     // non-numeric
      "s=delay:always",     // delay without ms
      "=io:always",         // empty site
  };
  for (const std::string& spec : bad) {
    EXPECT_EQ(f.Configure(spec).code(), StatusCode::kInvalidArgument)
        << spec;
  }
  // Every rejection kept the previous (armed) config intact.
  EXPECT_TRUE(f.enabled());
  EXPECT_EQ(PoeFaultHit("s").code(), StatusCode::kIoError);
}

TEST_F(FaultTest, AllStatsAndTotalTriggersAggregate) {
  ScopedFaultInjection arm("a=io:always;b=io:nth:2");
  PoeFaultHit("a");
  PoeFaultHit("a");
  PoeFaultHit("b");
  PoeFaultHit("b");
  FaultInjector& f = FaultInjector::Global();
  EXPECT_EQ(f.TotalTriggers(), 3);  // a twice + b's 2nd hit
  std::set<std::string> sites;
  int64_t hits = 0;
  for (const FaultSiteStats& s : f.AllStats()) {
    sites.insert(s.site);
    hits += s.hits;
  }
  EXPECT_EQ(sites, (std::set<std::string>{"a", "b"}));
  EXPECT_EQ(hits, 4);
}

TEST_F(FaultTest, ScopedInjectionDisarmsOnExit) {
  {
    ScopedFaultInjection arm("s=io:always");
    EXPECT_TRUE(FaultInjector::Global().enabled());
  }
  EXPECT_FALSE(FaultInjector::Global().enabled());
  EXPECT_TRUE(PoeFaultHit("s").ok());
}

TEST_F(FaultTest, ConcurrentHitsCountExactly) {
  ScopedFaultInjection arm("s=io:nth:2");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  std::atomic<int64_t> fired{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        if (!PoeFaultHit("s").ok()) fired.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  FaultSiteStats stats = FaultInjector::Global().SiteStats("s");
  EXPECT_EQ(stats.hits, kThreads * kPerThread);
  EXPECT_EQ(stats.triggers, kThreads * kPerThread / 2);
  EXPECT_EQ(fired.load(), stats.triggers);
}

}  // namespace
}  // namespace poe

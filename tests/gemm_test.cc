#include "tensor/gemm.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <tuple>
#include <vector>

#include "util/rng.h"

namespace poe {
namespace {

// Fills a vector with deterministic uniform values.
void FillUniform(std::vector<float>* v, Rng& rng, float lo = -1.0f,
                 float hi = 1.0f) {
  for (auto& x : *v) x = rng.Uniform(lo, hi);
}

// Tolerance scaled to the accumulation depth: the optimized kernel sums in
// fp32 while GemmRef uses a double accumulator.
float Tol(int64_t k) { return 1e-5f * static_cast<float>(k) + 1e-4f; }

// (trans_a, trans_b, m, n, k)
using GemmCase = std::tuple<bool, bool, int, int, int>;

class GemmParamTest : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmParamTest, MatchesReference) {
  const auto [ta, tb, m, n, k] = GetParam();
  Rng rng(static_cast<uint64_t>(m * 10007 + n * 101 + k + ta * 2 + tb));
  std::vector<float> a(static_cast<size_t>(m) * k);
  std::vector<float> b(static_cast<size_t>(k) * n);
  FillUniform(&a, rng);
  FillUniform(&b, rng);

  const float alphas[] = {1.0f, 0.7f, -0.3f, 0.0f};
  const float betas[] = {0.0f, 1.0f, 0.3f, -2.0f};
  for (float alpha : alphas) {
    for (float beta : betas) {
      std::vector<float> c(static_cast<size_t>(m) * n);
      FillUniform(&c, rng);
      std::vector<float> c_ref = c;
      Gemm(ta, tb, m, n, k, alpha, a.data(), b.data(), beta, c.data());
      GemmRef(ta, tb, m, n, k, alpha, a.data(), b.data(), beta,
              c_ref.data());
      for (size_t i = 0; i < c.size(); ++i) {
        ASSERT_NEAR(c[i], c_ref[i], Tol(k))
            << "at " << i << " alpha=" << alpha << " beta=" << beta;
      }
    }
  }
}

// Odd/prime sizes hit every panel-edge case of the packed kernels; the
// larger sizes cross the MC/KC/NC cache-blocking boundaries.
std::vector<GemmCase> AllTransposeCases() {
  const int sizes[] = {1, 3, 17, 63, 129};
  std::vector<GemmCase> cases;
  for (bool ta : {false, true}) {
    for (bool tb : {false, true}) {
      for (int m : sizes)
        for (int n : sizes)
          for (int k : sizes) {
            // Cap the raw work product to keep the grid fast; this drops
            // the largest combinations (e.g. {63,129,129}), whose
            // panel-edge interplay is instead covered by the explicit
            // blocking-boundary cases below.
            if (m * n * k > 17 * 129 * 129) continue;
            cases.push_back({ta, tb, m, n, k});
          }
      // Blocking-boundary cases: cross kMC=240, kKC=320, kNC=1024.
      cases.push_back({ta, tb, 241, 65, 321});
      cases.push_back({ta, tb, 256, 256, 72});
      cases.push_back({ta, tb, 37, 1025, 11});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllTransposeCombos, GemmParamTest,
                         ::testing::ValuesIn(AllTransposeCases()));

TEST(GemmTest, BetaZeroOverwritesGarbage) {
  std::vector<float> a = {1, 2};
  std::vector<float> b = {3, 4};
  std::vector<float> c = {std::nanf(""), std::nanf("")};
  // 2x1 times 1x1 -> 2x1
  Gemm(false, false, 2, 1, 1, 1.0f, a.data(), b.data(), 0.0f, c.data());
  EXPECT_FLOAT_EQ(c[0], 3.0f);
  EXPECT_FLOAT_EQ(c[1], 6.0f);
  (void)b;
}

TEST(GemmTest, KZeroScalesOnly) {
  std::vector<float> c = {2.0f, 4.0f};
  Gemm(false, false, 2, 1, 0, 1.0f, nullptr, nullptr, 0.5f, c.data());
  EXPECT_FLOAT_EQ(c[0], 1.0f);
  EXPECT_FLOAT_EQ(c[1], 2.0f);
}

// The blocked GEMM assigns each C macro-tile to exactly one task with a
// fixed k-accumulation order, so the threaded and sequential paths must be
// bitwise identical — not merely close.
TEST(GemmTest, ThreadedMatchesSequentialBitwise) {
  Rng rng(77);
  for (const auto& [m, n, k] :
       {std::tuple<int, int, int>{64, 48, 32},
        std::tuple<int, int, int>{300, 130, 400},
        std::tuple<int, int, int>{513, 257, 129}}) {
    std::vector<float> a(static_cast<size_t>(m) * k);
    std::vector<float> b(static_cast<size_t>(k) * n);
    std::vector<float> c1(static_cast<size_t>(m) * n, 0.0f), c2 = c1;
    FillUniform(&a, rng);
    FillUniform(&b, rng);
    Gemm(false, false, m, n, k, 1.0f, a.data(), b.data(), 0.0f, c1.data());
    GemmSeq(false, false, m, n, k, 1.0f, a.data(), b.data(), 0.0f,
            c2.data());
    ASSERT_EQ(0, std::memcmp(c1.data(), c2.data(),
                             c1.size() * sizeof(float)))
        << "m=" << m << " n=" << n << " k=" << k;
  }
}

TEST(GemmTest, IdentityMultiplication) {
  const int n = 8;
  std::vector<float> eye(n * n, 0.0f);
  for (int i = 0; i < n; ++i) eye[i * n + i] = 1.0f;
  Rng rng(3);
  std::vector<float> x(n * n);
  FillUniform(&x, rng);
  std::vector<float> y(n * n, 0.0f);
  Gemm(false, false, n, n, n, 1.0f, eye.data(), x.data(), 0.0f, y.data());
  for (int i = 0; i < n * n; ++i) ASSERT_NEAR(y[i], x[i], 1e-6f);
}

TEST(GemmEpilogueTest, RowBiasMatchesManual) {
  Rng rng(11);
  const int m = 29, n = 83, k = 47;
  std::vector<float> a(m * k), b(k * n), bias(m);
  FillUniform(&a, rng);
  FillUniform(&b, rng);
  FillUniform(&bias, rng);
  std::vector<float> c(m * n, 0.0f), c_ref(m * n, 0.0f);

  GemmEpilogue ep;
  ep.row_bias = bias.data();
  GemmEx(false, false, m, n, k, 1.0f, a.data(), b.data(), 0.0f, c.data(),
         ep, /*parallel=*/false);

  GemmRef(false, false, m, n, k, 1.0f, a.data(), b.data(), 0.0f,
          c_ref.data());
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < n; ++j) c_ref[i * n + j] += bias[i];
  for (int i = 0; i < m * n; ++i) ASSERT_NEAR(c[i], c_ref[i], Tol(k));
}

TEST(GemmEpilogueTest, ColBiasReluMatchesManual) {
  Rng rng(13);
  const int m = 65, n = 31, k = 129;
  std::vector<float> a(m * k), b(n * k), bias(n);
  FillUniform(&a, rng);
  FillUniform(&b, rng);
  FillUniform(&bias, rng);
  std::vector<float> c(m * n, 0.0f), c_ref(m * n, 0.0f);

  GemmEpilogue ep;
  ep.col_bias = bias.data();
  ep.relu = true;
  GemmEx(false, true, m, n, k, 1.0f, a.data(), b.data(), 0.0f, c.data(), ep,
         /*parallel=*/true);

  GemmRef(false, true, m, n, k, 1.0f, a.data(), b.data(), 0.0f,
          c_ref.data());
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < n; ++j)
      c_ref[i * n + j] = std::max(0.0f, c_ref[i * n + j] + bias[j]);
  for (int i = 0; i < m * n; ++i) ASSERT_NEAR(c[i], c_ref[i], Tol(k));
}

// The epilogue must fire exactly once (on the last k-block), even when k
// spans multiple KC blocks.
TEST(GemmEpilogueTest, MultiKBlockAppliesEpilogueOnce) {
  Rng rng(17);
  const int m = 13, n = 21, k = 700;  // k > 2 * kKC(320)
  std::vector<float> a(m * k), b(k * n), bias(m);
  FillUniform(&a, rng);
  FillUniform(&b, rng);
  FillUniform(&bias, rng, 5.0f, 6.0f);  // large bias exposes double-adds
  std::vector<float> c(m * n, 0.0f), c_ref(m * n, 0.0f);

  GemmEpilogue ep;
  ep.row_bias = bias.data();
  ep.relu = true;
  GemmEx(false, false, m, n, k, 1.0f, a.data(), b.data(), 0.0f, c.data(),
         ep, /*parallel=*/false);

  GemmRef(false, false, m, n, k, 1.0f, a.data(), b.data(), 0.0f,
          c_ref.data());
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < n; ++j)
      c_ref[i * n + j] = std::max(0.0f, c_ref[i * n + j] + bias[i]);
  for (int i = 0; i < m * n; ++i) ASSERT_NEAR(c[i], c_ref[i], Tol(k));
}

TEST(GemmTest, KernelNameIsKnown) {
  const std::string name = GemmKernelName();
  EXPECT_TRUE(name == "avx512" || name == "avx2" || name == "scalar")
      << name;
}

}  // namespace
}  // namespace poe

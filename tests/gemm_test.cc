#include "tensor/gemm.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "util/rng.h"

namespace poe {
namespace {

// Naive reference GEMM.
void RefGemm(bool ta, bool tb, int64_t m, int64_t n, int64_t k, float alpha,
             const float* a, const float* b, float beta, float* c) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int64_t p = 0; p < k; ++p) {
        const float av = ta ? a[p * m + i] : a[i * k + p];
        const float bv = tb ? b[j * k + p] : b[p * n + j];
        acc += static_cast<double>(av) * bv;
      }
      c[i * n + j] = alpha * static_cast<float>(acc) + beta * c[i * n + j];
    }
  }
}

// (trans_a, trans_b, m, n, k)
using GemmCase = std::tuple<bool, bool, int, int, int>;

class GemmParamTest : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmParamTest, MatchesReference) {
  const auto [ta, tb, m, n, k] = GetParam();
  Rng rng(static_cast<uint64_t>(m * 10007 + n * 101 + k + ta * 2 + tb));
  std::vector<float> a(static_cast<size_t>(m) * k);
  std::vector<float> b(static_cast<size_t>(k) * n);
  for (auto& v : a) v = rng.Uniform(-1.0f, 1.0f);
  for (auto& v : b) v = rng.Uniform(-1.0f, 1.0f);
  std::vector<float> c(static_cast<size_t>(m) * n);
  for (auto& v : c) v = rng.Uniform(-1.0f, 1.0f);
  std::vector<float> c_ref = c;

  Gemm(ta, tb, m, n, k, 0.7f, a.data(), b.data(), 0.3f, c.data());
  RefGemm(ta, tb, m, n, k, 0.7f, a.data(), b.data(), 0.3f, c_ref.data());
  for (size_t i = 0; i < c.size(); ++i) {
    ASSERT_NEAR(c[i], c_ref[i], 1e-3f) << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTransposeCombos, GemmParamTest,
    ::testing::Values(
        GemmCase{false, false, 4, 5, 6}, GemmCase{false, true, 4, 5, 6},
        GemmCase{true, false, 4, 5, 6}, GemmCase{true, true, 4, 5, 6},
        GemmCase{false, false, 1, 1, 1}, GemmCase{false, false, 17, 3, 9},
        GemmCase{false, true, 32, 64, 16}, GemmCase{true, false, 8, 128, 8},
        GemmCase{false, false, 128, 96, 33}, GemmCase{true, true, 13, 7, 21},
        GemmCase{false, false, 256, 64, 72}));

TEST(GemmTest, BetaZeroOverwritesGarbage) {
  std::vector<float> a = {1, 2};
  std::vector<float> b = {3, 4};
  std::vector<float> c = {std::nanf(""), std::nanf("")};
  // 2x1 times 1x1 -> 2x1
  Gemm(false, false, 2, 1, 1, 1.0f, a.data(), b.data(), 0.0f, c.data());
  EXPECT_FLOAT_EQ(c[0], 3.0f);
  EXPECT_FLOAT_EQ(c[1], 6.0f);
  (void)b;
}

TEST(GemmTest, KZeroScalesOnly) {
  std::vector<float> c = {2.0f, 4.0f};
  Gemm(false, false, 2, 1, 0, 1.0f, nullptr, nullptr, 0.5f, c.data());
  EXPECT_FLOAT_EQ(c[0], 1.0f);
  EXPECT_FLOAT_EQ(c[1], 2.0f);
}

TEST(GemmTest, SeqMatchesParallel) {
  Rng rng(77);
  const int m = 64, n = 48, k = 32;
  std::vector<float> a(m * k), b(k * n), c1(m * n, 0.0f), c2(m * n, 0.0f);
  for (auto& v : a) v = rng.Uniform(-1.0f, 1.0f);
  for (auto& v : b) v = rng.Uniform(-1.0f, 1.0f);
  Gemm(false, false, m, n, k, 1.0f, a.data(), b.data(), 0.0f, c1.data());
  GemmSeq(false, false, m, n, k, 1.0f, a.data(), b.data(), 0.0f, c2.data());
  for (int i = 0; i < m * n; ++i) ASSERT_NEAR(c1[i], c2[i], 1e-4f);
}

TEST(GemmTest, IdentityMultiplication) {
  const int n = 8;
  std::vector<float> eye(n * n, 0.0f);
  for (int i = 0; i < n; ++i) eye[i * n + i] = 1.0f;
  Rng rng(3);
  std::vector<float> x(n * n);
  for (auto& v : x) v = rng.Uniform(-1.0f, 1.0f);
  std::vector<float> y(n * n, 0.0f);
  Gemm(false, false, n, n, n, 1.0f, eye.data(), x.data(), 0.0f, y.data());
  for (int i = 0; i < n * n; ++i) ASSERT_NEAR(y[i], x[i], 1e-6f);
}

}  // namespace
}  // namespace poe

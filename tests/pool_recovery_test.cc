// Crash-safe pool persistence (format v3): sectioned CRCs + commit
// footer, torn-write recovery through the atomic save path, fsck
// reporting, legacy-format compatibility, and fuzzed corruption handling
// (every mutilation must yield kCorruption - never UB, never a wrong
// pool).
#include "core/serialization.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/expert_pool.h"
#include "distill/specialize.h"
#include "tensor/ops.h"
#include "test_util.h"
#include "util/fault.h"

namespace poe {
namespace {

using testutil::TinyLibraryConfig;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// Untrained pool from fresh modules: persistence fidelity does not care
// how well the experts learned, and building one takes milliseconds.
ExpertPool MakePool(uint64_t seed = 99) {
  Rng rng(seed);
  WrnConfig lib_cfg = TinyLibraryConfig();
  auto library = BuildLibraryPart(lib_cfg, rng);
  std::vector<std::vector<int>> tasks = {{0, 1}, {2, 3}, {4, 5}};
  std::vector<std::shared_ptr<Sequential>> experts;
  for (const auto& classes : tasks) {
    WrnConfig ecfg = lib_cfg;
    ecfg.ks = 0.5;
    ecfg.num_classes = static_cast<int>(classes.size());
    experts.push_back(BuildExpertPart(ecfg, lib_cfg.conv3_channels(), rng));
  }
  auto hierarchy = ClassHierarchy::FromTasks(std::move(tasks));
  return ExpertPool(lib_cfg, 0.5, std::move(hierarchy).ValueOrDie(),
                    std::move(library), std::move(experts));
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

bool FileExists(const std::string& path) {
  return std::ifstream(path).good();
}

Tensor Probe(uint64_t seed = 3) {
  Rng rng(seed);
  return Tensor::Randn({2, 3, 6, 6}, rng);
}

class PoolRecoveryTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Global().Clear(); }
};

TEST_F(PoolRecoveryTest, V3RoundTripAndFsckClean) {
  ExpertPool pool = MakePool();
  const std::string path = TempPath("recovery_v3.poe");
  ASSERT_TRUE(SaveExpertPool(pool, path).ok());

  auto fsck = FsckExpertPool(path);
  ASSERT_TRUE(fsck.ok()) << fsck.status();
  const PoolFsckReport report = std::move(fsck).ValueOrDie();
  EXPECT_TRUE(report.ok) << report.error;
  EXPECT_EQ(report.version, 3u);
  // meta + library + 3 experts + footer, every CRC good.
  ASSERT_EQ(report.sections.size(), 6u);
  std::vector<std::string> names;
  for (const PoolSectionReport& s : report.sections) {
    names.push_back(s.name);
    EXPECT_TRUE(s.crc_ok) << s.name << ": " << s.detail;
    EXPECT_GT(s.bytes, 0) << s.name;
  }
  EXPECT_EQ(names,
            (std::vector<std::string>{"meta", "library", "expert[0]",
                                      "expert[1]", "expert[2]", "footer"}));

  auto loaded = LoadExpertPool(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ExpertPool pool2 = std::move(loaded).ValueOrDie();
  Tensor x = Probe();
  TaskModel m1 = pool.Query({0, 1, 2}).ValueOrDie();
  TaskModel m2 = pool2.Query({0, 1, 2}).ValueOrDie();
  EXPECT_EQ(MaxAbsDiff(m1.Logits(x), m2.Logits(x)), 0.0f);
}

TEST_F(PoolRecoveryTest, EveryTruncationIsCorruptionNeverUB) {
  ExpertPool pool = MakePool();
  const std::string path = TempPath("recovery_trunc_src.poe");
  ASSERT_TRUE(SaveExpertPool(pool, path).ok());
  const std::string bytes = ReadFile(path);
  ASSERT_GT(bytes.size(), 200u);

  // Every length in the header region, then a stride through the body,
  // then each of the last bytes (footer truncation is the torn-write
  // shape that whole-payload checksums historically missed).
  std::set<size_t> lengths;
  for (size_t n = 0; n < 64; ++n) lengths.insert(n);
  for (size_t n = 64; n < bytes.size(); n += 97) lengths.insert(n);
  for (size_t back = 1; back <= 24; ++back) {
    lengths.insert(bytes.size() - back);
  }

  const std::string victim = TempPath("recovery_trunc.poe");
  for (size_t n : lengths) {
    WriteFile(victim, bytes.substr(0, n));
    auto r = LoadExpertPool(victim);
    ASSERT_FALSE(r.ok()) << "length " << n << " of " << bytes.size();
    EXPECT_EQ(r.status().code(), StatusCode::kCorruption)
        << "length " << n << ": " << r.status().ToString();
    // fsck must agree, and must never error out on garbage.
    auto fsck = FsckExpertPool(victim);
    ASSERT_TRUE(fsck.ok()) << "length " << n;
    EXPECT_FALSE(fsck.ValueOrDie().ok) << "length " << n;
  }
}

TEST_F(PoolRecoveryTest, EveryBitFlipIsCorruption) {
  ExpertPool pool = MakePool();
  const std::string path = TempPath("recovery_flip_src.poe");
  ASSERT_TRUE(SaveExpertPool(pool, path).ok());
  const std::string bytes = ReadFile(path);

  const std::string victim = TempPath("recovery_flip.poe");
  for (size_t offset = 0; offset < bytes.size();
       offset += 1 + bytes.size() / 151) {
    std::string mutated = bytes;
    mutated[offset] = static_cast<char>(mutated[offset] ^ 0x20);
    WriteFile(victim, mutated);
    auto r = LoadExpertPool(victim);
    ASSERT_FALSE(r.ok()) << "flip at " << offset << " went undetected";
    EXPECT_EQ(r.status().code(), StatusCode::kCorruption)
        << "offset " << offset << ": " << r.status().ToString();
  }
}

TEST_F(PoolRecoveryTest, FsckNamesTheBadSection) {
  ExpertPool pool = MakePool();
  const std::string path = TempPath("recovery_fsck_bad.poe");
  ASSERT_TRUE(SaveExpertPool(pool, path).ok());
  std::string bytes = ReadFile(path);
  // Flip a byte ~2/3 in: lands inside a module payload, past the header.
  bytes[bytes.size() * 2 / 3] ^= 0x10;
  WriteFile(path, bytes);

  auto fsck = FsckExpertPool(path);
  ASSERT_TRUE(fsck.ok());
  const PoolFsckReport report = std::move(fsck).ValueOrDie();
  EXPECT_FALSE(report.ok);
  EXPECT_FALSE(report.error.empty());
  int bad = 0;
  for (const PoolSectionReport& s : report.sections) bad += s.crc_ok ? 0 : 1;
  EXPECT_GE(bad, 1) << "the flipped section must be flagged";
}

TEST_F(PoolRecoveryTest, TornWriteNeverDamagesTheCommittedFile) {
  ExpertPool pool = MakePool();
  const std::string path = TempPath("recovery_torn.poe");
  ASSERT_TRUE(SaveExpertPool(pool, path).ok());
  const std::string committed = ReadFile(path);

  // Crash mid-write: the tmp file is half-written and left behind; the
  // committed file must be untouched, byte for byte.
  {
    ScopedFaultInjection arm("pool.save.write=io:always");
    Status s = SaveExpertPool(pool, path);
    EXPECT_EQ(s.code(), StatusCode::kIoError);
  }
  EXPECT_EQ(ReadFile(path), committed);
  EXPECT_TRUE(FileExists(path + ".tmp")) << "simulated crash leaves tmp";
  // The stale tmp is itself a torn file; loading it must say corruption.
  EXPECT_EQ(LoadExpertPool(path + ".tmp").status().code(),
            StatusCode::kCorruption);

  // Crash at fsync / at rename: same guarantee.
  for (const char* site : {"pool.save.sync", "pool.save.rename"}) {
    ScopedFaultInjection arm(std::string(site) + "=io:always");
    EXPECT_FALSE(SaveExpertPool(pool, path).ok()) << site;
    EXPECT_EQ(ReadFile(path), committed) << site;
  }

  // Recovery: the next clean save wins despite the stale tmp.
  ASSERT_TRUE(SaveExpertPool(pool, path).ok());
  EXPECT_FALSE(FileExists(path + ".tmp"));
  auto loaded = LoadExpertPool(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
}

TEST_F(PoolRecoveryTest, LegacyFormatsStillLoad) {
  ExpertPool pool = MakePool();
  Tensor x = Probe();
  Tensor want = pool.Query({0, 1, 2}).ValueOrDie().Logits(x);

  for (uint32_t version : {1u, 2u}) {
    const std::string path =
        TempPath("recovery_legacy_v" + std::to_string(version) + ".poe");
    ASSERT_TRUE(SaveExpertPoolLegacy(pool, path, version).ok());
    auto loaded = LoadExpertPool(path);
    ASSERT_TRUE(loaded.ok()) << "v" << version << ": " << loaded.status();
    ExpertPool pool2 = std::move(loaded).ValueOrDie();
    TaskModel m = pool2.Query({0, 1, 2}).ValueOrDie();
    EXPECT_EQ(MaxAbsDiff(want, m.Logits(x)), 0.0f) << "v" << version;

    // fsck understands legacy files too: one whole-payload pseudo-section.
    auto fsck = FsckExpertPool(path);
    ASSERT_TRUE(fsck.ok());
    EXPECT_TRUE(fsck.ValueOrDie().ok);
    EXPECT_EQ(fsck.ValueOrDie().version, version);

    // ... and still detects legacy corruption.
    std::string bytes = ReadFile(path);
    bytes[bytes.size() / 2] ^= 0x08;
    WriteFile(path, bytes);
    EXPECT_EQ(LoadExpertPool(path).status().code(), StatusCode::kCorruption)
        << "v" << version;
    EXPECT_FALSE(FsckExpertPool(path).ValueOrDie().ok) << "v" << version;
  }
}

TEST_F(PoolRecoveryTest, LegacyV1CannotRepresentInt8Pools) {
  ExpertPool pool = MakePool();
  ASSERT_TRUE(pool.SetServingPrecision(ServingPrecision::kInt8).ok());
  Status s =
      SaveExpertPoolLegacy(pool, TempPath("recovery_v1_int8.poe"), 1);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST_F(PoolRecoveryTest, UnsupportedVersionIsCorruption) {
  ExpertPool pool = MakePool();
  const std::string path = TempPath("recovery_badver.poe");
  ASSERT_TRUE(SaveExpertPool(pool, path).ok());
  std::string bytes = ReadFile(path);
  bytes[8] = 99;  // version u32 sits right after the 8-byte magic
  WriteFile(path, bytes);
  auto r = LoadExpertPool(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
}

TEST_F(PoolRecoveryTest, MissingFileIsNotFoundEverywhere) {
  const std::string path = TempPath("recovery_missing.poe");
  std::remove(path.c_str());
  EXPECT_EQ(LoadExpertPool(path).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(FsckExpertPool(path).status().code(), StatusCode::kNotFound);
}

TEST_F(PoolRecoveryTest, InjectedLoadFaultsSurfaceAsTheirCodes) {
  ExpertPool pool = MakePool();
  const std::string path = TempPath("recovery_loadfault.poe");
  ASSERT_TRUE(SaveExpertPool(pool, path).ok());
  {
    ScopedFaultInjection arm("pool.load.open=io:always");
    EXPECT_EQ(LoadExpertPool(path).status().code(), StatusCode::kIoError);
  }
  FaultInjector::Global().Clear();
  {
    ScopedFaultInjection arm("pool.load.read=io:always");
    EXPECT_EQ(LoadExpertPool(path).status().code(), StatusCode::kIoError);
  }
}

// A pool that degraded during int8 conversion (one expert kept f32) must
// save faithfully and HEAL on load: SetServingPrecision is re-applied by
// the loader, and with no fault armed the retry converts the straggler.
TEST_F(PoolRecoveryTest, DegradedPoolSavesFaithfullyAndHealsOnLoad) {
  ExpertPool pool = MakePool();
  {
    ScopedFaultInjection arm("store.int8.convert=alloc:nth:2");
    ASSERT_TRUE(pool.SetServingPrecision(ServingPrecision::kInt8).ok());
  }
  TaskModel degraded = pool.Query({0, 1, 2}).ValueOrDie();
  ASSERT_TRUE(degraded.degraded()) << "fixture must actually degrade";
  ASSERT_EQ(degraded.degraded_branches(), 1);

  const std::string path = TempPath("recovery_degraded.poe");
  ASSERT_TRUE(SaveExpertPool(pool, path).ok());
  auto loaded = LoadExpertPool(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ExpertPool pool2 = std::move(loaded).ValueOrDie();
  EXPECT_EQ(pool2.serving_precision(), ServingPrecision::kInt8);
  TaskModel healed = pool2.Query({0, 1, 2}).ValueOrDie();
  EXPECT_FALSE(healed.degraded())
      << "clean load must retry the failed conversion";
}

}  // namespace
}  // namespace poe

// The pool-membership state machine and consistent-hash placement: legal
// transitions, epoch monotonicity, wholesale view adoption with the
// equal-epoch tie-break, and the placement invariants fetch routing
// relies on (determinism, distinct owners, state-independence).
#include <gtest/gtest.h>

#include <set>

#include "cluster/membership.h"
#include "cluster/placement.h"

namespace poe {
namespace {

MembershipView TwoNodeView() {
  MembershipView view;
  view.nodes.push_back({0, "127.0.0.1", 9100, 9200, NodeState::kOnline});
  view.nodes.push_back({1, "127.0.0.1", 9101, 9201, NodeState::kOnline});
  return view;
}

TEST(PoolMembershipTest, LegalTransitionsBumpTheEpoch) {
  PoolMembership membership(TwoNodeView());
  EXPECT_EQ(membership.epoch(), 1u);

  ASSERT_TRUE(membership.Transition(1, NodeState::kDraining).ok());
  EXPECT_EQ(membership.epoch(), 2u);
  ASSERT_TRUE(membership.Transition(1, NodeState::kOffline).ok());
  ASSERT_TRUE(membership.Transition(1, NodeState::kReintegrating).ok());
  ASSERT_TRUE(membership.Transition(1, NodeState::kOnline).ok());
  EXPECT_EQ(membership.epoch(), 5u);
  EXPECT_EQ(membership.transitions(), 4);
  EXPECT_EQ(membership.View().Find(1)->state, NodeState::kOnline);
}

TEST(PoolMembershipTest, IllegalTransitionsAreRejectedWithoutAnEpochBurn) {
  PoolMembership membership(TwoNodeView());

  // OFFLINE must pass through REINTEGRATING to come back.
  ASSERT_TRUE(membership.Transition(1, NodeState::kOffline).ok());
  const uint64_t epoch = membership.epoch();
  Status s = membership.Transition(1, NodeState::kOnline);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  // Self-transitions are not legal either (they would burn an epoch for
  // no view change).
  EXPECT_EQ(membership.Transition(1, NodeState::kOffline).code(),
            StatusCode::kFailedPrecondition);
  // Unknown nodes are a caller bug, not a precondition.
  EXPECT_EQ(membership.Transition(7, NodeState::kOffline).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(membership.epoch(), epoch);
}

TEST(PoolMembershipTest, AddNodeRejectsDuplicatesAndKeepsIdsSorted) {
  PoolMembership membership(TwoNodeView());
  ASSERT_TRUE(
      membership.AddNode({2, "127.0.0.1", 9102, 9202, NodeState::kOffline})
          .ok());
  EXPECT_EQ(membership.AddNode({2, "x", 1, 2, NodeState::kOnline}).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(membership.View().NodeIds(), (std::vector<int>{0, 1, 2}));
}

TEST(PoolMembershipTest, MergeAdoptsOnlyStrictlyNewerViews) {
  PoolMembership a(TwoNodeView());
  PoolMembership b(TwoNodeView());
  ASSERT_TRUE(b.Transition(1, NodeState::kOffline).ok());  // b at epoch 2

  // Older/equal views from a are ignored by b; b's newer view wins in a.
  EXPECT_FALSE(b.MergeView(a.View()));
  EXPECT_TRUE(a.MergeView(b.View()));
  EXPECT_EQ(a.epoch(), 2u);
  EXPECT_EQ(a.View().Find(1)->state, NodeState::kOffline);
  // Merges are not local transitions.
  EXPECT_EQ(a.transitions(), 0);
}

TEST(PoolMembershipTest, EpochZeroViewsAreProbesAndNeverAdopted) {
  PoolMembership membership(TwoNodeView());
  MembershipView probe;  // epoch 0, no nodes
  EXPECT_FALSE(membership.MergeView(probe));
  EXPECT_EQ(membership.View().nodes.size(), 2u);
}

TEST(PoolMembershipTest, EqualEpochDivergenceConvergesByFingerprint) {
  // Two nodes transition concurrently: same epoch, different content.
  PoolMembership a(TwoNodeView());
  PoolMembership b(TwoNodeView());
  ASSERT_TRUE(a.Transition(0, NodeState::kDraining).ok());
  ASSERT_TRUE(b.Transition(1, NodeState::kDraining).ok());
  ASSERT_EQ(a.epoch(), b.epoch());
  ASSERT_NE(a.View().Fingerprint(), b.View().Fingerprint());

  // Exactly one side adopts (the one holding the larger fingerprint), so
  // one gossip exchange converges both on the same view.
  const MembershipView view_a = a.View();
  const MembershipView view_b = b.View();
  const bool a_adopted = a.MergeView(view_b);
  const bool b_adopted = b.MergeView(view_a);
  EXPECT_NE(a_adopted, b_adopted);
  EXPECT_EQ(a.View().Fingerprint(), b.View().Fingerprint());
}

TEST(PlacementTest, DeterministicDistinctOwnersRegardlessOfInputOrder) {
  const PlacementConfig config;  // replication = 2
  for (int expert = 0; expert < 32; ++expert) {
    const auto owners = ExpertOwners(expert, {0, 1, 2}, config);
    ASSERT_EQ(owners.size(), 2u);
    EXPECT_NE(owners[0], owners[1]);
    // Node-id order must not matter: the ring position of a node depends
    // only on its id.
    EXPECT_EQ(owners, ExpertOwners(expert, {2, 0, 1}, config));
    EXPECT_EQ(owners, ExpertOwners(expert, {0, 1, 2}, config));
  }
}

TEST(PlacementTest, ReplicationIsClampedToThePoolSize) {
  PlacementConfig config;
  config.replication = 5;
  const auto owners = ExpertOwners(3, {0, 1}, config);
  EXPECT_EQ(owners.size(), 2u);
  EXPECT_TRUE(ExpertOwners(3, {}, config).empty());
}

TEST(PlacementTest, EveryNodeOwnsASliceOfALargePool) {
  PlacementConfig config;
  config.replication = 1;
  std::set<int> primaries;
  for (int expert = 0; expert < 256; ++expert) {
    const auto owners = ExpertOwners(expert, {0, 1, 2, 3}, config);
    ASSERT_EQ(owners.size(), 1u);
    primaries.insert(owners[0]);
  }
  // With 16 vnodes per node, 256 experts cannot all land on a strict
  // subset of 4 nodes.
  EXPECT_EQ(primaries.size(), 4u);
}

}  // namespace
}  // namespace poe

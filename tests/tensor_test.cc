#include "tensor/tensor.h"

#include <gtest/gtest.h>

namespace poe {
namespace {

TEST(TensorTest, DefaultIsUndefined) {
  Tensor t;
  EXPECT_FALSE(t.defined());
  EXPECT_EQ(t.numel(), 0);
  EXPECT_EQ(t.data(), nullptr);
}

TEST(TensorTest, ShapeAndNumel) {
  Tensor t({2, 3, 4});
  EXPECT_TRUE(t.defined());
  EXPECT_EQ(t.ndim(), 3);
  EXPECT_EQ(t.numel(), 24);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(1), 3);
  EXPECT_EQ(t.dim(2), 4);
  EXPECT_EQ(t.dim(-1), 4);  // negative indexing
  EXPECT_EQ(t.nbytes(), 24 * 4);
}

TEST(TensorTest, ZerosOnesFull) {
  Tensor z = Tensor::Zeros({3, 3});
  Tensor o = Tensor::Ones({3, 3});
  Tensor f = Tensor::Full({3, 3}, 2.5f);
  for (int64_t i = 0; i < 9; ++i) {
    EXPECT_EQ(z.at(i), 0.0f);
    EXPECT_EQ(o.at(i), 1.0f);
    EXPECT_EQ(f.at(i), 2.5f);
  }
}

TEST(TensorTest, FromVector) {
  Tensor t = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.at(0), 1.0f);
  EXPECT_EQ(t.at(3), 4.0f);
}

TEST(TensorTest, RandnIsDeterministicGivenSeed) {
  Rng a(42), b(42);
  Tensor ta = Tensor::Randn({100}, a);
  Tensor tb = Tensor::Randn({100}, b);
  for (int64_t i = 0; i < 100; ++i) EXPECT_EQ(ta.at(i), tb.at(i));
}

TEST(TensorTest, CopyIsShallowCloneIsDeep) {
  Tensor a = Tensor::Zeros({4});
  Tensor shallow = a;
  Tensor deep = a.Clone();
  a.at(0) = 7.0f;
  EXPECT_EQ(shallow.at(0), 7.0f);
  EXPECT_EQ(deep.at(0), 0.0f);
  EXPECT_TRUE(a.SharesStorageWith(shallow));
  EXPECT_FALSE(a.SharesStorageWith(deep));
}

TEST(TensorTest, ReshapeSharesStorage) {
  Tensor a = Tensor::Zeros({2, 6});
  Tensor b = a.Reshape({3, 4});
  EXPECT_TRUE(a.SharesStorageWith(b));
  b.at(11) = 5.0f;
  EXPECT_EQ(a.at(11), 5.0f);
  EXPECT_EQ(b.ndim(), 2);
  EXPECT_EQ(b.dim(0), 3);
}

TEST(TensorTest, FillAndCopyDataFrom) {
  Tensor a = Tensor::Zeros({5});
  a.Fill(3.0f);
  EXPECT_EQ(a.at(4), 3.0f);
  Tensor b = Tensor::Zeros({5});
  b.CopyDataFrom(a);
  EXPECT_EQ(b.at(2), 3.0f);
}

TEST(TensorTest, ShapeString) {
  Tensor t({2, 3});
  EXPECT_EQ(t.ShapeString(), "Tensor[2, 3]");
}

TEST(TensorTest, ShapeNumelHelper) {
  EXPECT_EQ(ShapeNumel({}), 1);
  EXPECT_EQ(ShapeNumel({5}), 5);
  EXPECT_EQ(ShapeNumel({2, 0, 3}), 0);
}

TEST(TensorTest, SameShapeHelper) {
  EXPECT_TRUE(SameShape(Tensor({2, 3}), Tensor({2, 3})));
  EXPECT_FALSE(SameShape(Tensor({2, 3}), Tensor({3, 2})));
}

}  // namespace
}  // namespace poe

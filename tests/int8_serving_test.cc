// End-to-end tests of the dequant-free int8 serving mode: layer-level
// agreement with the f32 twin, pool conversion semantics, and the
// accuracy bound of an int8-served TaskModel.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/expert_pool.h"
#include "core/query_service.h"
#include "distill/specialize.h"
#include "eval/metrics.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "tensor/ops.h"
#include "test_util.h"
#include "util/rng.h"

namespace poe {
namespace {

using testutil::FastTrainOptions;
using testutil::TinyDataConfig;
using testutil::TinyLibraryConfig;
using testutil::TinyOracleConfig;

float MaxAbsValue(const Tensor& t) {
  float m = 0.0f;
  for (int64_t i = 0; i < t.numel(); ++i) {
    m = std::max(m, std::fabs(t.at(i)));
  }
  return m;
}

TEST(Int8LayerTest, Conv2dInt8TracksF32) {
  Rng rng(11);
  Conv2d conv(8, 16, 3, 1, 1, rng, /*bias=*/true);
  Tensor x = Tensor::Randn({3, 8, 7, 7}, rng);
  Tensor f32 = conv.Forward(x, false);

  conv.PrepareInt8Serving();
  EXPECT_TRUE(conv.int8_serving());
  EXPECT_FALSE(conv.weight().value.defined());  // f32 weights released
  EXPECT_GT(conv.Int8WeightBytes(), 0);
  Tensor i8 = conv.Forward(x, false);

  ASSERT_EQ(i8.shape(), f32.shape());
  // Both weight and activation quantization are 8-bit symmetric: the
  // output error is a small fraction of the output range.
  EXPECT_LT(MaxAbsDiff(f32, i8), 0.05f * MaxAbsValue(f32) + 1e-4f);
  EXPECT_GT(MaxAbsDiff(f32, i8), 0.0f);  // actually quantized
}

TEST(Int8LayerTest, Conv2dPointwiseFastPath) {
  Rng rng(12);
  Conv2d conv(16, 8, 1, 1, 0, rng);
  Tensor x = Tensor::Randn({2, 16, 5, 5}, rng);
  Tensor f32 = conv.Forward(x, false);
  conv.PrepareInt8Serving();
  Tensor i8 = conv.Forward(x, false);
  EXPECT_LT(MaxAbsDiff(f32, i8), 0.05f * MaxAbsValue(f32) + 1e-4f);
}

TEST(Int8LayerTest, Conv2dFusedReluMatchesClampedF32) {
  Rng rng(13);
  Conv2d conv(4, 4, 3, 2, 1, rng, /*bias=*/true);
  Tensor x = Tensor::Randn({2, 4, 9, 9}, rng);
  Tensor f32 = conv.Forward(x, false);
  for (int64_t i = 0; i < f32.numel(); ++i) {
    f32.at(i) = std::max(0.0f, f32.at(i));
  }
  conv.PrepareInt8Serving();
  Tensor i8 = conv.ForwardFusedRelu(x);
  EXPECT_LT(MaxAbsDiff(f32, i8), 0.05f * MaxAbsValue(f32) + 1e-4f);
  for (int64_t i = 0; i < i8.numel(); ++i) EXPECT_GE(i8.at(i), 0.0f);
}

TEST(Int8LayerTest, LinearInt8TracksF32) {
  Rng rng(14);
  Linear lin(32, 10, rng);
  Tensor x = Tensor::Randn({5, 32}, rng);
  Tensor f32 = lin.Forward(x, false);
  lin.PrepareInt8Serving();
  EXPECT_FALSE(lin.weight().value.defined());
  EXPECT_GT(lin.Int8WeightBytes(), 0);
  Tensor i8 = lin.Forward(x, false);
  EXPECT_LT(MaxAbsDiff(f32, i8), 0.05f * MaxAbsValue(f32) + 1e-4f);
}

// At production widths the packed panels carry no row padding (out
// channels divide the kernel MR), so the weight footprint lands near the
// ideal 1/4 of f32.
TEST(Int8LayerTest, FootprintNearsQuarterAtWidth) {
  Rng rng(16);
  Conv2d conv(128, 128, 3, 1, 1, rng);
  const int64_t f32_bytes = conv.weight().value.nbytes();
  conv.PrepareInt8Serving();
  EXPECT_LT(conv.Int8WeightBytes() * 7, f32_bytes * 2);  // < f32 / 3.5
}

TEST(Int8LayerTest, PrepareTwiceIsIdempotent) {
  Rng rng(15);
  Linear lin(8, 4, rng);
  lin.PrepareInt8Serving();
  const int64_t bytes = lin.Int8WeightBytes();
  lin.PrepareInt8Serving();
  EXPECT_EQ(lin.Int8WeightBytes(), bytes);
}

// Pool-level conversion and the paper-level accuracy claim: int8 serving
// must agree with the f32 model on >= 99% of the synthetic eval set.
class Int8ServingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data_ = new SyntheticDataset(GenerateSyntheticDataset(TinyDataConfig()));
    rng_ = new Rng(4242);
    oracle_ = new Wrn(TinyOracleConfig(), *rng_);
    TrainScratch(*oracle_, data_->train, FastTrainOptions(10));
    PoeBuildConfig cfg;
    cfg.library_config = TinyLibraryConfig();
    cfg.expert_ks = 0.5;
    cfg.library_options = FastTrainOptions(6);
    cfg.expert_options = FastTrainOptions(8);
    pool_ = new ExpertPool(ExpertPool::Preprocess(ModelLogits(*oracle_),
                                                  *data_, cfg, *rng_));
  }
  static void TearDownTestSuite() {
    delete pool_;
    delete oracle_;
    delete rng_;
    delete data_;
    pool_ = nullptr;
    oracle_ = nullptr;
    rng_ = nullptr;
    data_ = nullptr;
  }

  static SyntheticDataset* data_;
  static Rng* rng_;
  static Wrn* oracle_;
  static ExpertPool* pool_;
};

SyntheticDataset* Int8ServingTest::data_ = nullptr;
Rng* Int8ServingTest::rng_ = nullptr;
Wrn* Int8ServingTest::oracle_ = nullptr;
ExpertPool* Int8ServingTest::pool_ = nullptr;

TEST_F(Int8ServingTest, Int8ModelAgreesWithF32Twin) {
  const std::vector<int> tasks = {0, 1, 2};
  TaskModel f32_model = pool_->Query(tasks).ValueOrDie();
  EXPECT_EQ(f32_model.serving_precision(), ServingPrecision::kFloat32);
  const Tensor& images = data_->test.images;
  Tensor f32_logits = f32_model.Logits(images);
  std::vector<int> f32_pred = f32_model.Predict(images);
  const int64_t f32_bytes = pool_->ServingBytes();

  ASSERT_TRUE(
      pool_->SetServingPrecision(ServingPrecision::kInt8).ok());
  TaskModel i8_model = pool_->Query(tasks).ValueOrDie();
  EXPECT_EQ(i8_model.serving_precision(), ServingPrecision::kInt8);
  Tensor i8_logits = i8_model.Logits(images);
  std::vector<int> i8_pred = i8_model.Predict(images);

  // Max logit divergence of the int8-served model is bounded: the whole
  // network is 8-bit symmetric per layer, so drift stays a small fraction
  // of the logit scale.
  ASSERT_EQ(i8_logits.shape(), f32_logits.shape());
  EXPECT_LT(MaxAbsDiff(f32_logits, i8_logits),
            0.15f * MaxAbsValue(f32_logits) + 1e-3f);

  // Top-1 agreement >= 99% (the acceptance bound for int8 serving).
  ASSERT_EQ(i8_pred.size(), f32_pred.size());
  int64_t agree = 0;
  for (size_t i = 0; i < i8_pred.size(); ++i) {
    agree += (i8_pred[i] == f32_pred[i]) ? 1 : 0;
  }
  EXPECT_GE(static_cast<double>(agree),
            0.99 * static_cast<double>(i8_pred.size()))
      << agree << "/" << i8_pred.size() << " predictions agree";

  // The int8 pool holds a fraction of the f32 bytes. The tiny test
  // architecture (4-16 channel convs) pays heavy panel padding (rows are
  // padded to the kernel's MR = 16), so the bound here is loose; real
  // shapes approach 4x (see Int8LayerTest.FootprintNearsQuarterAtWidth).
  const int64_t i8_bytes = pool_->ServingBytes();
  EXPECT_LT(i8_bytes, f32_bytes * 3 / 4);
  EXPECT_GT(i8_bytes, 0);
}

TEST_F(Int8ServingTest, Int8PoolRejectsMutationsAndReversal) {
  // Runs after Int8ModelAgreesWithF32Twin within the suite; make sure the
  // pool is converted regardless of test order.
  ASSERT_TRUE(pool_->SetServingPrecision(ServingPrecision::kInt8).ok());
  // Idempotent.
  EXPECT_TRUE(pool_->SetServingPrecision(ServingPrecision::kInt8).ok());
  // Irreversible.
  EXPECT_EQ(pool_->SetServingPrecision(ServingPrecision::kFloat32).code(),
            StatusCode::kFailedPrecondition);
  // Persistence works at int8 since the v2 pool format: the quantized
  // form itself is saved (round-trip pinned in serialization_test).
  EXPECT_TRUE(pool_->Save("/tmp/poe_int8_pool_test.bin").ok());
  // No extension (expert extraction needs f32 training).
  EXPECT_EQ(pool_
                ->AddExpert(ModelLogits(*oracle_), data_->train, {99},
                            FastTrainOptions(1), CkdOptions(), *rng_)
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST(Int8QueryServiceTest, ServesInt8AndReportsFootprint) {
  SyntheticDataset data = GenerateSyntheticDataset(TinyDataConfig());
  Rng rng(99);
  Wrn oracle(TinyOracleConfig(), rng);
  TrainScratch(oracle, data.train, FastTrainOptions(4));
  PoeBuildConfig cfg;
  cfg.library_config = TinyLibraryConfig();
  cfg.expert_ks = 0.5;
  cfg.library_options = FastTrainOptions(2);
  cfg.expert_options = FastTrainOptions(2);
  ExpertPool pool =
      ExpertPool::Preprocess(ModelLogits(oracle), data, cfg, rng);
  const int64_t f32_bytes = pool.ServingBytes();

  ModelQueryService service(std::move(pool), /*cache_capacity=*/4,
                            ServingPrecision::kInt8);
  QueryStats stats = service.stats();
  EXPECT_EQ(stats.precision, ServingPrecision::kInt8);
  EXPECT_GT(stats.pool_bytes, 0);
  EXPECT_LT(stats.pool_bytes, f32_bytes * 3 / 4);

  auto model = service.Query({0, 2});
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model.ValueOrDie()->serving_precision(),
            ServingPrecision::kInt8);
  EXPECT_GT(model.ValueOrDie()->StateBytes(), 0);
  Tensor probe = Tensor::Randn({2, 3, 6, 6}, rng);
  Tensor logits = model.ValueOrDie()->Logits(probe);
  EXPECT_EQ(logits.dim(0), 2);
  EXPECT_EQ(logits.dim(1), 4);  // 2 tasks x 2 classes
}

}  // namespace
}  // namespace poe

#include <gtest/gtest.h>

#include <fstream>

#include "core/serialization.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace poe {
namespace {

WrnConfig SmallCfg() {
  WrnConfig cfg;
  cfg.kc = 1.5;
  cfg.ks = 0.5;
  cfg.num_classes = 7;
  cfg.base_channels = 4;
  return cfg;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(WrnModelFileTest, RoundTripPreservesConfigAndOutputs) {
  Rng rng(1);
  WrnConfig cfg = SmallCfg();
  Wrn model(cfg, rng);
  const std::string path = TempPath("wrn_roundtrip.wrn");
  ASSERT_TRUE(SaveWrnModel(model, cfg, path).ok());

  auto loaded = LoadWrnModel(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  std::shared_ptr<Wrn> copy = std::move(loaded).ValueOrDie();
  EXPECT_DOUBLE_EQ(copy->config().kc, cfg.kc);
  EXPECT_DOUBLE_EQ(copy->config().ks, cfg.ks);
  EXPECT_EQ(copy->config().num_classes, cfg.num_classes);

  Tensor x = Tensor::Randn({2, 3, 8, 8}, rng);
  EXPECT_EQ(MaxAbsDiff(model.Forward(x, false), copy->Forward(x, false)),
            0.0f);
}

TEST(WrnModelFileTest, MissingFileIsNotFound) {
  EXPECT_EQ(LoadWrnModel(TempPath("nope.wrn")).status().code(),
            StatusCode::kNotFound);
}

TEST(WrnModelFileTest, RejectsForeignMagic) {
  const std::string path = TempPath("bad_magic.wrn");
  std::ofstream f(path, std::ios::binary);
  f << "POEPOOL1xxxxxxxxxxxxxxxxxxxxxxxx";  // a pool header, not a WRN
  f.close();
  EXPECT_EQ(LoadWrnModel(path).status().code(), StatusCode::kCorruption);
}

TEST(WrnModelFileTest, DetectsPayloadCorruption) {
  Rng rng(2);
  WrnConfig cfg = SmallCfg();
  Wrn model(cfg, rng);
  const std::string path = TempPath("corrupt.wrn");
  ASSERT_TRUE(SaveWrnModel(model, cfg, path).ok());
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(200);
  const char byte = 0x7f;
  f.write(&byte, 1);
  f.close();
  EXPECT_EQ(LoadWrnModel(path).status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace poe

// Deadline and RetryWithBackoff semantics: what retries, how often, how
// long it may sleep, and what the caller sees when the budget runs out.
#include "util/retry.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <string>
#include <thread>

#include "util/result.h"
#include "util/status.h"
#include "util/stopwatch.h"

namespace poe {
namespace {

TEST(DeadlineTest, DefaultIsUnlimited) {
  Deadline d;
  EXPECT_TRUE(d.unlimited());
  EXPECT_FALSE(d.expired());
  EXPECT_TRUE(std::isinf(d.remaining_ms()));
}

TEST(DeadlineTest, AfterMillisExpires) {
  Deadline d = Deadline::AfterMillis(10);
  EXPECT_FALSE(d.unlimited());
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_ms(), 0.0);
  EXPECT_LE(d.remaining_ms(), 10.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.remaining_ms(), 0.0);  // clamped, never negative
}

TEST(DeadlineTest, NonPositiveBudgetIsBornExpired) {
  EXPECT_TRUE(Deadline::AfterMillis(0).expired());
  EXPECT_TRUE(Deadline::AfterMillis(-5).expired());
}

TEST(DeadlineTest, CopiesShareTheAbsoluteExpiry) {
  Deadline a = Deadline::AfterMillis(5);
  Deadline b = a;  // handed down a layer; budget must not reset
  std::this_thread::sleep_for(std::chrono::milliseconds(8));
  EXPECT_TRUE(a.expired());
  EXPECT_TRUE(b.expired());
}

TEST(RetryTest, TransientCodes) {
  EXPECT_TRUE(IsTransient(Status::Unavailable("x")));
  EXPECT_TRUE(IsTransient(Status::IoError("x")));
  EXPECT_TRUE(IsTransient(Status::ResourceExhausted("x")));
  EXPECT_FALSE(IsTransient(Status::OK()));
  EXPECT_FALSE(IsTransient(Status::Corruption("x")));
  EXPECT_FALSE(IsTransient(Status::InvalidArgument("x")));
  EXPECT_FALSE(IsTransient(Status::DeadlineExceeded("x")));
}

RetryPolicy FastPolicy(int attempts) {
  RetryPolicy p;
  p.max_attempts = attempts;
  p.initial_backoff_ms = 0.01;
  p.max_backoff_ms = 0.05;
  return p;
}

TEST(RetryTest, SuccessNeedsOneAttempt) {
  int calls = 0;
  int64_t retries = 0;
  Status s = RetryWithBackoff(FastPolicy(3), Deadline(),
                              [&] {
                                ++calls;
                                return Status::OK();
                              },
                              &retries);
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(retries, 0);
}

TEST(RetryTest, TransientFailureRetriesUpToMaxAttempts) {
  int calls = 0;
  int64_t retries = 0;
  Status s = RetryWithBackoff(FastPolicy(3), Deadline(),
                              [&] {
                                ++calls;
                                return Status::Unavailable("flaky");
                              },
                              &retries);
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retries, 2);  // attempts - 1 completed backoff cycles
}

TEST(RetryTest, RecoversMidway) {
  int calls = 0;
  Status s = RetryWithBackoff(FastPolicy(5), Deadline(), [&] {
    return ++calls < 3 ? Status::IoError("blip") : Status::OK();
  });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 3);
}

TEST(RetryTest, PermanentErrorReturnsImmediately) {
  int calls = 0;
  Status s = RetryWithBackoff(FastPolicy(5), Deadline(), [&] {
    ++calls;
    return Status::Corruption("bit rot");
  });
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_EQ(calls, 1) << "retrying corruption would only mask it";
}

TEST(RetryTest, ResultFormCarriesTheValue) {
  int calls = 0;
  int64_t retries = 0;
  Result<std::string> r = RetryWithBackoff(
      FastPolicy(4), Deadline(),
      [&]() -> Result<std::string> {
        if (++calls < 2) return Status::Unavailable("warming up");
        return std::string("served");
      },
      &retries);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), "served");
  EXPECT_EQ(retries, 1);
}

TEST(RetryTest, ExpiredDeadlineFailsBeforeTheFirstAttempt) {
  int calls = 0;
  Status s = RetryWithBackoff(FastPolicy(3), Deadline::AfterMillis(-1),
                              [&] {
                                ++calls;
                                return Status::OK();
                              });
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(calls, 0) << "no work may start on an expired budget";
}

TEST(RetryTest, DeadlineCutsRetriesShortAndReportsTheLastError) {
  RetryPolicy policy;
  policy.max_attempts = 100;
  policy.initial_backoff_ms = 5;
  policy.max_backoff_ms = 5;
  int calls = 0;
  Result<int> r = RetryWithBackoff(policy, Deadline::AfterMillis(20),
                                   [&]() -> Result<int> {
                                     ++calls;
                                     return Status::Unavailable("outage");
                                   });
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  // The terminal status still names what kept failing underneath.
  EXPECT_NE(r.status().message().find("UNAVAILABLE"), std::string::npos);
  EXPECT_LT(calls, 100) << "the deadline, not max_attempts, ended the loop";
  EXPECT_GE(calls, 1);
}

TEST(RetryTest, BackoffSleepIsCappedByTheRemainingBudget) {
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.initial_backoff_ms = 1000;  // would blow way past the deadline
  policy.max_backoff_ms = 1000;
  Stopwatch sw;
  Status s = RetryWithBackoff(policy, Deadline::AfterMillis(25),
                              [&] { return Status::IoError("blip"); });
  // One capped sleep (<= ~25ms) then the second attempt fails normally;
  // without the cap this would take a full second.
  EXPECT_LT(sw.ElapsedMillis(), 500.0);
  EXPECT_FALSE(s.ok());
}

TEST(RetryTest, ZeroAndNegativeMaxAttemptsStillRunOnce) {
  for (int attempts : {0, -3}) {
    RetryPolicy policy = FastPolicy(attempts);
    int calls = 0;
    Status s = RetryWithBackoff(policy, Deadline(), [&] {
      ++calls;
      return Status::Unavailable("x");
    });
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  }
}

}  // namespace
}  // namespace poe

#include "core/serialization.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/expert_pool.h"
#include "distill/specialize.h"
#include "eval/metrics.h"
#include "nn/linear.h"
#include "tensor/ops.h"
#include "test_util.h"

namespace poe {
namespace {

using testutil::FastTrainOptions;
using testutil::TinyDataConfig;
using testutil::TinyLibraryConfig;
using testutil::TinyOracleConfig;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(ModuleStateTest, RoundTripsThroughStream) {
  Rng rng(1);
  WrnConfig cfg = TinyLibraryConfig();
  Wrn a(cfg, rng);
  Wrn b(cfg, rng);  // different random weights

  std::stringstream ss;
  ASSERT_TRUE(WriteModuleState(ss, a).ok());
  ASSERT_TRUE(ReadModuleState(ss, b).ok());

  Tensor x = Tensor::Randn({2, 3, 6, 6}, rng);
  EXPECT_LT(MaxAbsDiff(a.Forward(x, false), b.Forward(x, false)), 1e-7f);
}

TEST(ModuleStateTest, PreservesBatchNormRunningStats) {
  Rng rng(2);
  WrnConfig cfg = TinyLibraryConfig();
  Wrn a(cfg, rng);
  // Run some training batches so running stats become non-trivial.
  for (int i = 0; i < 3; ++i) {
    Tensor x = Tensor::Randn({8, 3, 6, 6}, rng);
    a.Forward(x, true);
  }
  Wrn b(cfg, rng);
  std::stringstream ss;
  ASSERT_TRUE(WriteModuleState(ss, a).ok());
  ASSERT_TRUE(ReadModuleState(ss, b).ok());
  std::vector<Tensor*> ba, bb;
  a.CollectBuffers(&ba);
  b.CollectBuffers(&bb);
  ASSERT_EQ(ba.size(), bb.size());
  for (size_t i = 0; i < ba.size(); ++i) {
    EXPECT_EQ(MaxAbsDiff(*ba[i], *bb[i]), 0.0f);
  }
}

TEST(ModuleStateTest, RejectsStructureMismatch) {
  Rng rng(3);
  WrnConfig small = TinyLibraryConfig();
  WrnConfig big = small;
  big.kc = 2.0;
  Wrn a(small, rng);
  Wrn b(big, rng);
  std::stringstream ss;
  ASSERT_TRUE(WriteModuleState(ss, a).ok());
  Status s = ReadModuleState(ss, b);
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
}

TEST(ModuleStateTest, ByteSizeMatchesParamAndBufferCount) {
  Rng rng(4);
  Linear lin(4, 3, rng);
  EXPECT_EQ(ModuleStateBytes(lin), (4 * 3 + 3) * 4);
}

class PoolSerializationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data_ = new SyntheticDataset(GenerateSyntheticDataset(TinyDataConfig()));
    Rng rng(555);
    oracle_ = new Wrn(TinyOracleConfig(), rng);
    TrainScratch(*oracle_, data_->train, FastTrainOptions(6));
    PoeBuildConfig cfg;
    cfg.library_config = TinyLibraryConfig();
    cfg.expert_ks = 0.5;
    cfg.library_options = FastTrainOptions(3);
    cfg.expert_options = FastTrainOptions(3);
    pool_ = new ExpertPool(
        ExpertPool::Preprocess(ModelLogits(*oracle_), *data_, cfg, rng));
  }
  static void TearDownTestSuite() {
    delete pool_;
    delete oracle_;
    delete data_;
    pool_ = nullptr;
    oracle_ = nullptr;
    data_ = nullptr;
  }
  static SyntheticDataset* data_;
  static Wrn* oracle_;
  static ExpertPool* pool_;
};

SyntheticDataset* PoolSerializationTest::data_ = nullptr;
Wrn* PoolSerializationTest::oracle_ = nullptr;
ExpertPool* PoolSerializationTest::pool_ = nullptr;

TEST_F(PoolSerializationTest, SaveLoadPreservesLogitsBitExact) {
  const std::string path = TempPath("pool_roundtrip.poe");
  ASSERT_TRUE(pool_->Save(path).ok());
  auto loaded = ExpertPool::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ExpertPool pool2 = std::move(loaded).ValueOrDie();

  EXPECT_EQ(pool2.num_experts(), pool_->num_experts());
  EXPECT_EQ(pool2.hierarchy().num_classes(),
            pool_->hierarchy().num_classes());

  TaskModel m1 = pool_->Query({0, 1, 2}).ValueOrDie();
  TaskModel m2 = pool2.Query({0, 1, 2}).ValueOrDie();
  Rng rng(6);
  Tensor x = Tensor::Randn({4, 3, 6, 6}, rng);
  EXPECT_EQ(MaxAbsDiff(m1.Logits(x), m2.Logits(x)), 0.0f);
}

// An untrained pool assembled from fresh modules: serialization fidelity
// does not care how well the experts learned, and conversion to int8 is
// irreversible so the shared trained fixture must not be touched.
ExpertPool MakeUntrainedPool() {
  Rng rng(99);
  WrnConfig lib_cfg = TinyLibraryConfig();
  auto library = BuildLibraryPart(lib_cfg, rng);
  std::vector<std::vector<int>> tasks = {{0, 1}, {2, 3}, {4, 5}};
  std::vector<std::shared_ptr<Sequential>> experts;
  for (const auto& classes : tasks) {
    WrnConfig ecfg = lib_cfg;
    ecfg.ks = 0.5;
    ecfg.num_classes = static_cast<int>(classes.size());
    experts.push_back(
        BuildExpertPart(ecfg, lib_cfg.conv3_channels(), rng));
  }
  auto hierarchy = ClassHierarchy::FromTasks(std::move(tasks));
  return ExpertPool(lib_cfg, 0.5, std::move(hierarchy).ValueOrDie(),
                    std::move(library), std::move(experts));
}

// The int8 persistence path end to end: calibrate -> convert -> save ->
// load must come back at int8 precision with NO f32 weight
// materialization, identical byte footprint, and bitwise identical
// serving (quantized values, scales, and static activation scales all
// survive verbatim; the GEMM kernels are the same process's).
TEST(Int8PoolSerializationTest, CalibratedInt8PoolRoundTripsBitExact) {
  ExpertPool pool = MakeUntrainedPool();
  Rng rng(12);
  Tensor samples = Tensor::Randn({4, 3, 6, 6}, rng);
  ASSERT_TRUE(pool.CalibrateActivations(samples).ok());
  ASSERT_TRUE(pool.SetServingPrecision(ServingPrecision::kInt8).ok());

  Tensor x = Tensor::Randn({3, 3, 6, 6}, rng);
  TaskModel m1 = pool.Query({0, 1, 2}).ValueOrDie();
  Tensor y1 = m1.Logits(x);

  const std::string path = TempPath("pool_int8_roundtrip.poe");
  ASSERT_TRUE(pool.Save(path).ok());
  auto loaded = ExpertPool::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ExpertPool pool2 = std::move(loaded).ValueOrDie();

  EXPECT_EQ(pool2.serving_precision(), ServingPrecision::kInt8);
  // No f32 weight storage came back: the quantized state was adopted
  // directly, so the held footprint matches the source pool's exactly.
  EXPECT_EQ(pool2.ServingBytes(), pool.ServingBytes());
  TaskModel m2 = pool2.Query({0, 1, 2}).ValueOrDie();
  EXPECT_EQ(MaxAbsDiff(y1, m2.Logits(x)), 0.0f);
}

// Calibration must survive an f32 save/load: a calibrated pool saved
// BEFORE its int8 conversion must not silently fall back to dynamic
// activation quantization after loading. Converting both pools must then
// serve bitwise identically.
TEST(Int8PoolSerializationTest, CalibrationSurvivesF32SaveLoad) {
  ExpertPool pool = MakeUntrainedPool();
  Rng rng(14);
  Tensor samples = Tensor::Randn({4, 3, 6, 6}, rng);
  ASSERT_TRUE(pool.CalibrateActivations(samples).ok());

  const std::string path = TempPath("pool_calibrated_f32.poe");
  ASSERT_TRUE(pool.Save(path).ok());
  auto loaded = ExpertPool::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ExpertPool pool2 = std::move(loaded).ValueOrDie();
  EXPECT_EQ(pool2.serving_precision(), ServingPrecision::kFloat32);

  std::vector<Module*> q1, q2;
  pool.library()->CollectQuantizable(&q1);
  pool2.library()->CollectQuantizable(&q2);
  ASSERT_EQ(q1.size(), q2.size());
  ASSERT_FALSE(q1.empty());
  for (size_t i = 0; i < q1.size(); ++i) {
    EXPECT_GT(q1[i]->static_act_scale(), 0.0f);
    EXPECT_EQ(q1[i]->static_act_scale(), q2[i]->static_act_scale());
  }

  ASSERT_TRUE(pool.SetServingPrecision(ServingPrecision::kInt8).ok());
  ASSERT_TRUE(pool2.SetServingPrecision(ServingPrecision::kInt8).ok());
  Tensor x = Tensor::Randn({3, 3, 6, 6}, rng);
  TaskModel m1 = pool.Query({0, 1}).ValueOrDie();
  TaskModel m2 = pool2.Query({0, 1}).ValueOrDie();
  EXPECT_EQ(MaxAbsDiff(m1.Logits(x), m2.Logits(x)), 0.0f);
}

// Calibration must precede the int8 conversion (it observes f32
// forwards).
TEST(Int8PoolSerializationTest, CalibrationAfterConversionIsRejected) {
  ExpertPool pool = MakeUntrainedPool();
  ASSERT_TRUE(pool.SetServingPrecision(ServingPrecision::kInt8).ok());
  Rng rng(13);
  Tensor samples = Tensor::Randn({2, 3, 6, 6}, rng);
  EXPECT_EQ(pool.CalibrateActivations(samples).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(PoolSerializationTest, LoadMissingFileIsNotFound) {
  auto r = ExpertPool::Load(TempPath("does_not_exist.poe"));
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(PoolSerializationTest, DetectsBitFlipCorruption) {
  const std::string path = TempPath("pool_corrupt.poe");
  ASSERT_TRUE(pool_->Save(path).ok());
  // Flip one byte in the middle of the payload.
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekg(0, std::ios::end);
  const auto size = static_cast<int64_t>(f.tellg());
  f.seekp(size / 2);
  char byte = 0;
  f.seekg(size / 2);
  f.read(&byte, 1);
  byte ^= 0x40;
  f.seekp(size / 2);
  f.write(&byte, 1);
  f.close();

  auto r = ExpertPool::Load(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
}

TEST_F(PoolSerializationTest, DetectsBadMagic) {
  const std::string path = TempPath("pool_magic.poe");
  std::ofstream f(path, std::ios::binary);
  f << "NOTAPOOLFILE_____________";
  f.close();
  auto r = ExpertPool::Load(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
}

TEST_F(PoolSerializationTest, DetectsTruncation) {
  const std::string path = TempPath("pool_trunc.poe");
  ASSERT_TRUE(pool_->Save(path).ok());
  // Truncate to 60% of the file.
  std::ifstream in(path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  std::string bytes = buf.str();
  in.close();
  bytes.resize(bytes.size() * 6 / 10);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
  out.close();

  EXPECT_FALSE(ExpertPool::Load(path).ok());
}

}  // namespace
}  // namespace poe

#include "core/serialization.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/expert_pool.h"
#include "distill/specialize.h"
#include "eval/metrics.h"
#include "nn/linear.h"
#include "tensor/ops.h"
#include "test_util.h"

namespace poe {
namespace {

using testutil::FastTrainOptions;
using testutil::TinyDataConfig;
using testutil::TinyLibraryConfig;
using testutil::TinyOracleConfig;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(ModuleStateTest, RoundTripsThroughStream) {
  Rng rng(1);
  WrnConfig cfg = TinyLibraryConfig();
  Wrn a(cfg, rng);
  Wrn b(cfg, rng);  // different random weights

  std::stringstream ss;
  ASSERT_TRUE(WriteModuleState(ss, a).ok());
  ASSERT_TRUE(ReadModuleState(ss, b).ok());

  Tensor x = Tensor::Randn({2, 3, 6, 6}, rng);
  EXPECT_LT(MaxAbsDiff(a.Forward(x, false), b.Forward(x, false)), 1e-7f);
}

TEST(ModuleStateTest, PreservesBatchNormRunningStats) {
  Rng rng(2);
  WrnConfig cfg = TinyLibraryConfig();
  Wrn a(cfg, rng);
  // Run some training batches so running stats become non-trivial.
  for (int i = 0; i < 3; ++i) {
    Tensor x = Tensor::Randn({8, 3, 6, 6}, rng);
    a.Forward(x, true);
  }
  Wrn b(cfg, rng);
  std::stringstream ss;
  ASSERT_TRUE(WriteModuleState(ss, a).ok());
  ASSERT_TRUE(ReadModuleState(ss, b).ok());
  std::vector<Tensor*> ba, bb;
  a.CollectBuffers(&ba);
  b.CollectBuffers(&bb);
  ASSERT_EQ(ba.size(), bb.size());
  for (size_t i = 0; i < ba.size(); ++i) {
    EXPECT_EQ(MaxAbsDiff(*ba[i], *bb[i]), 0.0f);
  }
}

TEST(ModuleStateTest, RejectsStructureMismatch) {
  Rng rng(3);
  WrnConfig small = TinyLibraryConfig();
  WrnConfig big = small;
  big.kc = 2.0;
  Wrn a(small, rng);
  Wrn b(big, rng);
  std::stringstream ss;
  ASSERT_TRUE(WriteModuleState(ss, a).ok());
  Status s = ReadModuleState(ss, b);
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
}

TEST(ModuleStateTest, ByteSizeMatchesParamAndBufferCount) {
  Rng rng(4);
  Linear lin(4, 3, rng);
  EXPECT_EQ(ModuleStateBytes(lin), (4 * 3 + 3) * 4);
}

class PoolSerializationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data_ = new SyntheticDataset(GenerateSyntheticDataset(TinyDataConfig()));
    Rng rng(555);
    oracle_ = new Wrn(TinyOracleConfig(), rng);
    TrainScratch(*oracle_, data_->train, FastTrainOptions(6));
    PoeBuildConfig cfg;
    cfg.library_config = TinyLibraryConfig();
    cfg.expert_ks = 0.5;
    cfg.library_options = FastTrainOptions(3);
    cfg.expert_options = FastTrainOptions(3);
    pool_ = new ExpertPool(
        ExpertPool::Preprocess(ModelLogits(*oracle_), *data_, cfg, rng));
  }
  static void TearDownTestSuite() {
    delete pool_;
    delete oracle_;
    delete data_;
    pool_ = nullptr;
    oracle_ = nullptr;
    data_ = nullptr;
  }
  static SyntheticDataset* data_;
  static Wrn* oracle_;
  static ExpertPool* pool_;
};

SyntheticDataset* PoolSerializationTest::data_ = nullptr;
Wrn* PoolSerializationTest::oracle_ = nullptr;
ExpertPool* PoolSerializationTest::pool_ = nullptr;

TEST_F(PoolSerializationTest, SaveLoadPreservesLogitsBitExact) {
  const std::string path = TempPath("pool_roundtrip.poe");
  ASSERT_TRUE(pool_->Save(path).ok());
  auto loaded = ExpertPool::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ExpertPool pool2 = std::move(loaded).ValueOrDie();

  EXPECT_EQ(pool2.num_experts(), pool_->num_experts());
  EXPECT_EQ(pool2.hierarchy().num_classes(),
            pool_->hierarchy().num_classes());

  TaskModel m1 = pool_->Query({0, 1, 2}).ValueOrDie();
  TaskModel m2 = pool2.Query({0, 1, 2}).ValueOrDie();
  Rng rng(6);
  Tensor x = Tensor::Randn({4, 3, 6, 6}, rng);
  EXPECT_EQ(MaxAbsDiff(m1.Logits(x), m2.Logits(x)), 0.0f);
}

TEST_F(PoolSerializationTest, LoadMissingFileIsNotFound) {
  auto r = ExpertPool::Load(TempPath("does_not_exist.poe"));
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(PoolSerializationTest, DetectsBitFlipCorruption) {
  const std::string path = TempPath("pool_corrupt.poe");
  ASSERT_TRUE(pool_->Save(path).ok());
  // Flip one byte in the middle of the payload.
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekg(0, std::ios::end);
  const auto size = static_cast<int64_t>(f.tellg());
  f.seekp(size / 2);
  char byte = 0;
  f.seekg(size / 2);
  f.read(&byte, 1);
  byte ^= 0x40;
  f.seekp(size / 2);
  f.write(&byte, 1);
  f.close();

  auto r = ExpertPool::Load(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
}

TEST_F(PoolSerializationTest, DetectsBadMagic) {
  const std::string path = TempPath("pool_magic.poe");
  std::ofstream f(path, std::ios::binary);
  f << "NOTAPOOLFILE_____________";
  f.close();
  auto r = ExpertPool::Load(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
}

TEST_F(PoolSerializationTest, DetectsTruncation) {
  const std::string path = TempPath("pool_trunc.poe");
  ASSERT_TRUE(pool_->Save(path).ok());
  // Truncate to 60% of the file.
  std::ifstream in(path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  std::string bytes = buf.str();
  in.close();
  bytes.resize(bytes.size() * 6 / 10);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
  out.close();

  EXPECT_FALSE(ExpertPool::Load(path).ok());
}

}  // namespace
}  // namespace poe

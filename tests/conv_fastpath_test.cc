// Covers the conv pipeline's fast paths: the 1x1/stride-1 no-im2col route,
// the fused bias+ReLU epilogue, and the zero-scratch-allocation steady
// state backed by the per-thread arena.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/sequential.h"
#include "tensor/arena.h"
#include "tensor/gemm.h"
#include "tensor/im2col.h"
#include "util/rng.h"

// Global allocation counters for the zero-alloc steady-state checks. This
// test binary overrides operator new/delete; each tests/*_test.cc links
// into its own executable, so the override is local to this test.
namespace {
std::atomic<int64_t> g_alloc_count{0};
std::atomic<int64_t> g_alloc_bytes{0};
std::atomic<bool> g_tracking{false};

// Force single-threaded execution before the worker pool (and any
// thread-local arena) exists: the steady-state allocation counts are only
// deterministic when warmup and measurement run on the same thread.
// ParallelFor reads POE_NUM_THREADS lazily on first use, after this.
const bool g_single_thread = [] {
  setenv("POE_NUM_THREADS", "1", /*overwrite=*/1);
  return true;
}();
}  // namespace

void* operator new(std::size_t size) {
  if (g_tracking.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    g_alloc_bytes.fetch_add(static_cast<int64_t>(size),
                            std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace poe {
namespace {

// Reference conv forward via explicit im2col + the naive GEMM oracle.
Tensor ReferenceConvForward(Conv2d& conv, const Tensor& input) {
  const int64_t batch = input.dim(0);
  const int64_t h = input.dim(2);
  const int64_t w = input.dim(3);
  const int64_t out_h = ConvOutSize(h, conv.kernel(), conv.pad(),
                                    conv.stride());
  const int64_t out_w = ConvOutSize(w, conv.kernel(), conv.pad(),
                                    conv.stride());
  const int64_t ckk = conv.in_channels() * conv.kernel() * conv.kernel();
  const int64_t ohw = out_h * out_w;
  Tensor out({batch, conv.out_channels(), out_h, out_w});
  std::vector<float> cols(ckk * ohw);
  for (int64_t b = 0; b < batch; ++b) {
    Im2Col(input.data() + b * conv.in_channels() * h * w,
           conv.in_channels(), h, w, conv.kernel(), conv.kernel(),
           conv.pad(), conv.stride(), cols.data());
    GemmRef(false, false, conv.out_channels(), ohw, ckk, 1.0f,
            conv.weight().value.data(), cols.data(), 0.0f,
            out.data() + b * conv.out_channels() * ohw);
  }
  if (conv.has_bias()) {
    const float* bp = conv.bias().value.data();
    for (int64_t b = 0; b < batch; ++b)
      for (int64_t oc = 0; oc < conv.out_channels(); ++oc) {
        float* row = out.data() + (b * conv.out_channels() + oc) * ohw;
        for (int64_t i = 0; i < ohw; ++i) row[i] += bp[oc];
      }
  }
  return out;
}

TEST(ConvFastPathTest, PointwiseMatchesReference) {
  Rng rng(21);
  Conv2d conv(13, 7, /*kernel=*/1, /*stride=*/1, /*pad=*/0, rng,
              /*bias=*/true);
  Tensor x = Tensor::Randn({3, 13, 9, 11}, rng);
  Tensor got = conv.Forward(x, /*training=*/false);
  Tensor want = ReferenceConvForward(conv, x);
  ASSERT_EQ(got.numel(), want.numel());
  for (int64_t i = 0; i < got.numel(); ++i)
    ASSERT_NEAR(got.at(i), want.at(i), 1e-3f) << "at " << i;
}

TEST(ConvFastPathTest, PointwiseStride2TakesGeneralPathCorrectly) {
  Rng rng(22);
  // 1x1 but stride 2: must NOT use the fast path; verify it still matches.
  Conv2d conv(6, 10, /*kernel=*/1, /*stride=*/2, /*pad=*/0, rng);
  Tensor x = Tensor::Randn({2, 6, 8, 8}, rng);
  Tensor got = conv.Forward(x, /*training=*/false);
  Tensor want = ReferenceConvForward(conv, x);
  for (int64_t i = 0; i < got.numel(); ++i)
    ASSERT_NEAR(got.at(i), want.at(i), 1e-3f) << "at " << i;
}

TEST(ConvFastPathTest, GeneralConvMatchesReference) {
  Rng rng(23);
  Conv2d conv(5, 9, /*kernel=*/3, /*stride=*/2, /*pad=*/1, rng,
              /*bias=*/true);
  Tensor x = Tensor::Randn({2, 5, 7, 7}, rng);
  Tensor got = conv.Forward(x, /*training=*/false);
  Tensor want = ReferenceConvForward(conv, x);
  for (int64_t i = 0; i < got.numel(); ++i)
    ASSERT_NEAR(got.at(i), want.at(i), 1e-3f) << "at " << i;
}

TEST(ConvFastPathTest, FusedReluMatchesSeparateRelu) {
  Rng rng(24);
  Conv2d conv(8, 8, /*kernel=*/3, /*stride=*/1, /*pad=*/1, rng,
              /*bias=*/true);
  Tensor x = Tensor::Randn({2, 8, 6, 6}, rng);

  Tensor fused = conv.ForwardFusedRelu(x);
  Tensor plain = conv.Forward(x, /*training=*/false);
  ReLU relu;
  Tensor want = relu.Forward(plain, /*training=*/false);
  for (int64_t i = 0; i < fused.numel(); ++i)
    ASSERT_FLOAT_EQ(fused.at(i), want.at(i)) << "at " << i;
}

TEST(ConvFastPathTest, SequentialFusesTrailingRelu) {
  Rng rng(25);
  Sequential fused_seq, plain_seq;
  {
    Rng r1(99), r2(99);
    fused_seq.Add(std::make_unique<Conv2d>(4, 6, 3, 1, 1, r1, true));
    fused_seq.Add(std::make_unique<ReLU>());
    plain_seq.Add(std::make_unique<Conv2d>(4, 6, 3, 1, 1, r2, true));
    plain_seq.Add(std::make_unique<ReLU>());
  }
  Tensor x = Tensor::Randn({2, 4, 5, 5}, rng);
  // The fused path (inference) and the module-by-module path (training
  // flag off only disables caching for ReLU) must agree exactly.
  Tensor got = fused_seq.Forward(x, /*training=*/false);
  Tensor p = plain_seq.at(0)->Forward(x, /*training=*/false);
  Tensor want = plain_seq.at(1)->Forward(p, /*training=*/false);
  for (int64_t i = 0; i < got.numel(); ++i)
    ASSERT_FLOAT_EQ(got.at(i), want.at(i)) << "at " << i;
}

TEST(ConvFastPathTest, LinearFusedReluMatches) {
  Rng rng(26);
  Linear lin(12, 7, rng);
  Tensor x = Tensor::Randn({5, 12}, rng);
  Tensor fused = lin.ForwardFusedRelu(x);
  ReLU relu;
  Tensor want = relu.Forward(lin.Forward(x, false), false);
  for (int64_t i = 0; i < fused.numel(); ++i)
    ASSERT_FLOAT_EQ(fused.at(i), want.at(i)) << "at " << i;
}

// After warmup, Conv2d::Forward must not allocate scratch: the only heap
// traffic allowed is the output tensor itself (storage + shared_ptr
// control block + shape bookkeeping) plus the ParallelFor closure — all
// O(1) and independent of the im2col size.
TEST(ConvFastPathTest, SteadyStateForwardMakesNoScratchAllocations) {
  Rng rng(27);
  Conv2d conv(32, 32, /*kernel=*/3, /*stride=*/1, /*pad=*/1, rng);
  Tensor x = Tensor::Randn({4, 32, 16, 16}, rng);
  const int64_t scratch_floats = 32 * 9 * 16 * 16;  // ckk * ohw per image

  // Warmup sizes the thread-local arena.
  for (int i = 0; i < 3; ++i) conv.Forward(x, false);

  const int64_t output_bytes = 4 * 32 * 16 * 16 * sizeof(float);
  int64_t counts[2], bytes[2];
  for (int round = 0; round < 2; ++round) {
    g_alloc_count = 0;
    g_alloc_bytes = 0;
    g_tracking = true;
    Tensor y = conv.Forward(x, false);
    g_tracking = false;
    counts[round] = g_alloc_count.load();
    bytes[round] = g_alloc_bytes.load();
    ASSERT_GT(y.numel(), 0);
  }

  // Steady state: identical allocation behavior every call...
  EXPECT_EQ(counts[0], counts[1]);
  EXPECT_EQ(bytes[0], bytes[1]);
  // ... a handful of bookkeeping allocations, not per-image scratch ...
  EXPECT_LE(counts[0], 12) << "unexpected per-call allocations";
  // ... and the bytes are the output tensor plus small constants — far
  // below what an im2col scratch buffer would add.
  EXPECT_LT(bytes[0], output_bytes + 4096);
  EXPECT_LT(bytes[0],
            output_bytes + scratch_floats * static_cast<int64_t>(
                               sizeof(float)));
}

// Same property for the pointwise fast path.
TEST(ConvFastPathTest, PointwiseSteadyStateMakesNoScratchAllocations) {
  Rng rng(28);
  Conv2d conv(64, 64, /*kernel=*/1, /*stride=*/1, /*pad=*/0, rng);
  Tensor x = Tensor::Randn({2, 64, 8, 8}, rng);
  for (int i = 0; i < 3; ++i) conv.Forward(x, false);

  g_alloc_count = 0;
  g_alloc_bytes = 0;
  g_tracking = true;
  Tensor y = conv.Forward(x, false);
  g_tracking = false;

  const int64_t output_bytes = 2 * 64 * 8 * 8 * sizeof(float);
  EXPECT_LE(g_alloc_count.load(), 12);
  EXPECT_LT(g_alloc_bytes.load(), output_bytes + 4096);
  ASSERT_GT(y.numel(), 0);
}

}  // namespace
}  // namespace poe

#include "util/env.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace poe {
namespace {

TEST(EnvTest, StringFallback) {
  ::unsetenv("POE_TEST_VAR");
  EXPECT_EQ(GetEnvOr("POE_TEST_VAR", "default"), "default");
  ::setenv("POE_TEST_VAR", "hello", 1);
  EXPECT_EQ(GetEnvOr("POE_TEST_VAR", "default"), "hello");
  ::setenv("POE_TEST_VAR", "", 1);
  EXPECT_EQ(GetEnvOr("POE_TEST_VAR", "default"), "default");
  ::unsetenv("POE_TEST_VAR");
}

TEST(EnvTest, IntParsing) {
  ::setenv("POE_TEST_INT", "42", 1);
  EXPECT_EQ(GetEnvIntOr("POE_TEST_INT", 7), 42);
  ::setenv("POE_TEST_INT", "-3", 1);
  EXPECT_EQ(GetEnvIntOr("POE_TEST_INT", 7), -3);
  ::setenv("POE_TEST_INT", "notanumber", 1);
  EXPECT_EQ(GetEnvIntOr("POE_TEST_INT", 7), 7);
  ::unsetenv("POE_TEST_INT");
  EXPECT_EQ(GetEnvIntOr("POE_TEST_INT", 7), 7);
}

TEST(EnvTest, DoubleParsing) {
  ::setenv("POE_TEST_DBL", "2.5", 1);
  EXPECT_DOUBLE_EQ(GetEnvDoubleOr("POE_TEST_DBL", 1.0), 2.5);
  ::setenv("POE_TEST_DBL", "x", 1);
  EXPECT_DOUBLE_EQ(GetEnvDoubleOr("POE_TEST_DBL", 1.0), 1.0);
  ::unsetenv("POE_TEST_DBL");
}

}  // namespace
}  // namespace poe

#include "core/task_model.h"

#include <gtest/gtest.h>

#include "models/cost.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace poe {
namespace {

WrnConfig LibConfig() {
  WrnConfig cfg;
  cfg.depth = 10;
  cfg.kc = 1.0;
  cfg.ks = 1.0;
  cfg.num_classes = 6;
  cfg.base_channels = 4;
  return cfg;
}

TaskModel MakeModel(Rng& rng, int branches, int classes_per_branch = 2) {
  WrnConfig lib_cfg = LibConfig();
  auto library = BuildLibraryPart(lib_cfg, rng);
  std::vector<TaskModel::Branch> bs;
  int next_class = 0;
  for (int b = 0; b < branches; ++b) {
    TaskModel::Branch branch;
    WrnConfig ecfg = lib_cfg;
    ecfg.ks = 0.5;
    ecfg.num_classes = classes_per_branch;
    branch.head = BuildExpertPart(ecfg, lib_cfg.conv3_channels(), rng);
    branch.config = ecfg;
    for (int c = 0; c < classes_per_branch; ++c)
      branch.classes.push_back(next_class++);
    bs.push_back(std::move(branch));
  }
  return TaskModel(std::move(library), lib_cfg, std::move(bs));
}

TEST(TaskModelTest, LogitWidthIsSumOfBranchWidths) {
  Rng rng(1);
  TaskModel model = MakeModel(rng, 3);
  Tensor x = Tensor::Randn({4, 3, 8, 8}, rng);
  Tensor logits = model.Logits(x);
  EXPECT_EQ(logits.dim(0), 4);
  EXPECT_EQ(logits.dim(1), 6);
  EXPECT_EQ(model.num_branches(), 3);
}

TEST(TaskModelTest, LogitsMatchManualBranchForward) {
  Rng rng(2);
  WrnConfig lib_cfg = LibConfig();
  auto library = BuildLibraryPart(lib_cfg, rng);
  WrnConfig ecfg = lib_cfg;
  ecfg.ks = 0.5;
  ecfg.num_classes = 2;
  auto head_a = BuildExpertPart(ecfg, lib_cfg.conv3_channels(), rng);
  auto head_b = BuildExpertPart(ecfg, lib_cfg.conv3_channels(), rng);

  TaskModel model(library, lib_cfg,
                  {TaskModel::Branch{head_a, {0, 1}, ecfg},
                   TaskModel::Branch{head_b, {2, 3}, ecfg}});
  Tensor x = Tensor::Randn({3, 3, 8, 8}, rng);
  Tensor unified = model.Logits(x);

  Tensor feat = library->Forward(x, false);
  Tensor manual =
      ConcatColumns({head_a->Forward(feat, false),
                     head_b->Forward(feat, false)});
  EXPECT_LT(MaxAbsDiff(unified, manual), 1e-6f);
}

TEST(TaskModelTest, GlobalClassesConcatenateBranchOrder) {
  Rng rng(3);
  WrnConfig lib_cfg = LibConfig();
  auto library = BuildLibraryPart(lib_cfg, rng);
  WrnConfig ecfg = lib_cfg;
  ecfg.num_classes = 2;
  auto head = BuildExpertPart(ecfg, lib_cfg.conv3_channels(), rng);
  TaskModel model(library, lib_cfg,
                  {TaskModel::Branch{head, {4, 5}, ecfg},
                   TaskModel::Branch{head, {0, 1}, ecfg}});
  EXPECT_EQ(model.global_classes(), (std::vector<int>{4, 5, 0, 1}));
}

TEST(TaskModelTest, PredictMapsToGlobalIds) {
  Rng rng(4);
  TaskModel model = MakeModel(rng, 2);
  Tensor x = Tensor::Randn({5, 3, 8, 8}, rng);
  std::vector<int> preds = model.Predict(x);
  ASSERT_EQ(preds.size(), 5u);
  for (int p : preds) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 4);
  }
}

TEST(TaskModelTest, SharedLibraryIsAliasedNotCopied) {
  Rng rng(5);
  WrnConfig lib_cfg = LibConfig();
  auto library = BuildLibraryPart(lib_cfg, rng);
  WrnConfig ecfg = lib_cfg;
  ecfg.num_classes = 2;
  auto head = BuildExpertPart(ecfg, lib_cfg.conv3_channels(), rng);
  TaskModel model(library, lib_cfg, {TaskModel::Branch{head, {0, 1}, ecfg}});
  // Mutating the pool's library must change the assembled model's output.
  Rng rng2(6);
  Tensor x = Tensor::Randn({1, 3, 8, 8}, rng2);
  Tensor before = model.Logits(x);
  library->Parameters()[0]->value.Fill(0.0f);
  Tensor after = model.Logits(x);
  EXPECT_GT(MaxAbsDiff(before, after), 1e-6f);
}

TEST(TaskModelTest, NumParamsGrowsLinearlyWithBranches) {
  Rng rng(7);
  TaskModel m1 = MakeModel(rng, 1);
  TaskModel m2 = MakeModel(rng, 2);
  TaskModel m3 = MakeModel(rng, 3);
  const int64_t d21 = m2.NumParams() - m1.NumParams();
  const int64_t d32 = m3.NumParams() - m2.NumParams();
  EXPECT_EQ(d21, d32);  // each branch adds the same parameter count
  EXPECT_GT(d21, 0);
}

TEST(TaskModelTest, CostMatchesActualParams) {
  Rng rng(8);
  TaskModel model = MakeModel(rng, 3);
  EXPECT_EQ(model.Cost(8, 8).params, model.NumParams());
}

}  // namespace
}  // namespace poe

#include "core/expert_pool.h"

#include <gtest/gtest.h>

#include "core/volume.h"
#include "distill/specialize.h"
#include "eval/metrics.h"
#include "tensor/ops.h"
#include "test_util.h"

namespace poe {
namespace {

using testutil::FastTrainOptions;
using testutil::TinyDataConfig;
using testutil::TinyLibraryConfig;
using testutil::TinyOracleConfig;

class ExpertPoolTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data_ = new SyntheticDataset(GenerateSyntheticDataset(TinyDataConfig()));
    rng_ = new Rng(777);
    oracle_ = new Wrn(TinyOracleConfig(), *rng_);
    TrainScratch(*oracle_, data_->train, FastTrainOptions(10));

    PoeBuildConfig cfg;
    cfg.library_config = TinyLibraryConfig();
    cfg.expert_ks = 0.5;
    cfg.library_options = FastTrainOptions(6);
    cfg.expert_options = FastTrainOptions(8);
    stats_ = new PoeBuildStats();
    pool_ = new ExpertPool(ExpertPool::Preprocess(
        ModelLogits(*oracle_), *data_, cfg, *rng_, stats_));
  }
  static void TearDownTestSuite() {
    delete pool_;
    delete stats_;
    delete oracle_;
    delete rng_;
    delete data_;
    pool_ = nullptr;
    stats_ = nullptr;
    oracle_ = nullptr;
    rng_ = nullptr;
    data_ = nullptr;
  }

  static SyntheticDataset* data_;
  static Rng* rng_;
  static Wrn* oracle_;
  static ExpertPool* pool_;
  static PoeBuildStats* stats_;
};

SyntheticDataset* ExpertPoolTest::data_ = nullptr;
Rng* ExpertPoolTest::rng_ = nullptr;
Wrn* ExpertPoolTest::oracle_ = nullptr;
ExpertPool* ExpertPoolTest::pool_ = nullptr;
PoeBuildStats* ExpertPoolTest::stats_ = nullptr;

TEST_F(ExpertPoolTest, HasOneExpertPerPrimitiveTask) {
  EXPECT_EQ(pool_->num_experts(), 3);
  EXPECT_EQ(pool_->hierarchy().num_tasks(), 3);
}

TEST_F(ExpertPoolTest, BuildStatsRecorded) {
  EXPECT_GT(stats_->library_seconds, 0.0);
  EXPECT_GT(stats_->experts_seconds, 0.0);
  EXPECT_EQ(stats_->per_expert_seconds.size(), 3u);
}

TEST_F(ExpertPoolTest, LibraryIsFrozen) {
  for (Parameter* p : pool_->library()->Parameters()) {
    EXPECT_FALSE(p->trainable);
  }
}

TEST_F(ExpertPoolTest, QueryBuildsWorkingTaskModel) {
  auto result = pool_->Query({0, 2});
  ASSERT_TRUE(result.ok()) << result.status();
  TaskModel model = std::move(result).ValueOrDie();
  EXPECT_EQ(model.num_branches(), 2);
  EXPECT_EQ(model.global_classes(),
            pool_->hierarchy().CompositeClasses({0, 2}));

  Dataset test = FilterClasses(
      data_->test, pool_->hierarchy().CompositeClasses({0, 2}), true);
  LogitFn fn = [&](const Tensor& x) { return model.Logits(x); };
  EXPECT_GT(EvaluateAccuracy(fn, test), 0.4f);  // chance = 0.25
}

TEST_F(ExpertPoolTest, QueryRejectsBadInput) {
  EXPECT_EQ(pool_->Query({}).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(pool_->Query({0, 0}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(pool_->Query({99}).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(pool_->Query({-1}).status().code(), StatusCode::kOutOfRange);
}

TEST_F(ExpertPoolTest, QueryIsTrainFree) {
  // Snapshot expert weights, query, verify nothing changed.
  Tensor before = pool_->expert(0)->Parameters()[0]->value.Clone();
  auto model = pool_->Query({0, 1}).ValueOrDie();
  Rng rng(1);
  Tensor x = Tensor::Randn({2, 3, 6, 6}, rng);
  model.Logits(x);
  EXPECT_EQ(MaxAbsDiff(before, pool_->expert(0)->Parameters()[0]->value),
            0.0f);
}

TEST_F(ExpertPoolTest, ExpertConfigReflectsTask) {
  WrnConfig cfg = pool_->ExpertConfig(1);
  EXPECT_EQ(cfg.num_classes, 2);
  EXPECT_DOUBLE_EQ(cfg.ks, 0.5);
  EXPECT_DOUBLE_EQ(cfg.kc, TinyLibraryConfig().kc);
}

TEST_F(ExpertPoolTest, ExpertsAreProperlyConfident) {
  // CKD experts should be less confident on OOD than a scratch model - the
  // Figure 5 property, asserted here as a testable invariant.
  const auto& classes = data_->hierarchy.task_classes(0);
  Dataset ood = ExcludeClasses(data_->test, classes);
  LogitFn expert_fn =
      LibraryHeadLogits(*pool_->library(), *pool_->expert(0));

  WrnConfig scfg = TinyLibraryConfig();
  scfg.ks = 0.5;
  scfg.num_classes = 2;
  Rng rng(3);
  Wrn scratch(scfg, rng);
  Dataset task_train = FilterClasses(data_->train, classes, true);
  TrainScratch(scratch, task_train, FastTrainOptions(8));

  Tensor e_probs = Softmax2d(expert_fn(ood.images));
  Tensor s_probs = Softmax2d(ModelLogits(scratch)(ood.images));
  double e_conf = 0, s_conf = 0;
  for (int64_t r = 0; r < ood.size(); ++r) {
    e_conf += e_probs.at(r * 2 + ArgmaxRow(e_probs, r));
    s_conf += s_probs.at(r * 2 + ArgmaxRow(s_probs, r));
  }
  EXPECT_LT(e_conf, s_conf);
}

TEST_F(ExpertPoolTest, VolumeReportIsConsistent) {
  VolumeReport report = ComputeVolumeReport(*oracle_, *pool_);
  EXPECT_GT(report.oracle_bytes, report.pool_total_bytes);
  EXPECT_EQ(report.pool_total_bytes,
            report.library_bytes + report.experts_total_bytes);
  EXPECT_EQ(report.num_primitive_tasks, 3);
  // 2^3 * avg expert bytes.
  EXPECT_DOUBLE_EQ(report.all_specialized_estimate_bytes,
                   8.0 * report.avg_expert_bytes);
}

TEST_F(ExpertPoolTest, AddExpertExtendsPool) {
  // Build a fresh pool over tasks {0, 1} and hot-add task 2.
  auto sub_hierarchy =
      ClassHierarchy::FromTasks(
          {data_->hierarchy.task_classes(0), data_->hierarchy.task_classes(1)})
          .ValueOrDie();
  (void)sub_hierarchy;

  PoeBuildConfig cfg;
  cfg.library_config = TinyLibraryConfig();
  cfg.expert_ks = 0.5;
  cfg.library_options = FastTrainOptions(2);
  cfg.expert_options = FastTrainOptions(2);
  Rng rng(9);
  // Preprocess over the full data (3 tasks), then drop to emulate a
  // 2-task pool via direct construction.
  ExpertPool full = ExpertPool::Preprocess(ModelLogits(*oracle_), *data_,
                                           cfg, rng);
  std::vector<std::shared_ptr<Sequential>> two_experts = {
      full.expert(0), full.expert(1)};
  ExpertPool pool(cfg.library_config, cfg.expert_ks,
                  ClassHierarchy::FromTasks(
                      {data_->hierarchy.task_classes(0),
                       data_->hierarchy.task_classes(1)})
                      .ValueOrDie(),
                  full.library(), two_experts);
  EXPECT_EQ(pool.num_experts(), 2);

  Status s = pool.AddExpert(ModelLogits(*oracle_), data_->train,
                            data_->hierarchy.task_classes(2),
                            FastTrainOptions(2), CkdOptions{}, rng);
  ASSERT_TRUE(s.ok()) << s;
  EXPECT_EQ(pool.num_experts(), 3);
  EXPECT_TRUE(pool.Query({0, 1, 2}).ok());
}

TEST_F(ExpertPoolTest, AddExpertRejectsOverlap) {
  PoeBuildConfig cfg;
  cfg.library_config = TinyLibraryConfig();
  Rng rng(10);
  // Use the existing full pool: adding task 0's classes again must fail.
  std::vector<std::shared_ptr<Sequential>> experts;
  for (int t = 0; t < 3; ++t) experts.push_back(pool_->expert(t));
  ExpertPool copy(pool_->library_config(), pool_->expert_ks(),
                  pool_->hierarchy(), pool_->library(), experts);
  Status s = copy.AddExpert(ModelLogits(*oracle_), data_->train,
                            data_->hierarchy.task_classes(0),
                            FastTrainOptions(1), CkdOptions{}, rng);
  EXPECT_FALSE(s.ok());
}

}  // namespace
}  // namespace poe

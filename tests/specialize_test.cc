#include "distill/specialize.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "eval/metrics.h"
#include "models/wrn.h"
#include "tensor/ops.h"
#include "test_util.h"

namespace poe {
namespace {

using testutil::FastTrainOptions;
using testutil::TinyDataConfig;
using testutil::TinyLibraryConfig;
using testutil::TinyOracleConfig;

class SpecializeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data_ = new SyntheticDataset(GenerateSyntheticDataset(TinyDataConfig()));
    rng_ = new Rng(123);
    oracle_ = new Wrn(TinyOracleConfig(), *rng_);
    TrainScratch(*oracle_, data_->train, FastTrainOptions(10));
  }
  static void TearDownTestSuite() {
    delete oracle_;
    delete rng_;
    delete data_;
    oracle_ = nullptr;
    rng_ = nullptr;
    data_ = nullptr;
  }

  static SyntheticDataset* data_;
  static Rng* rng_;
  static Wrn* oracle_;
};

SyntheticDataset* SpecializeTest::data_ = nullptr;
Rng* SpecializeTest::rng_ = nullptr;
Wrn* SpecializeTest::oracle_ = nullptr;

TEST_F(SpecializeTest, OracleLearnsAboveChance) {
  const float acc = EvaluateAccuracy(ModelLogits(*oracle_), data_->test);
  EXPECT_GT(acc, 0.5f);  // chance = 1/6
}

TEST_F(SpecializeTest, ScratchBeatsChanceOnPrimitiveTask) {
  const auto& classes = data_->hierarchy.task_classes(0);
  Dataset train = FilterClasses(data_->train, classes, true);
  Dataset test = FilterClasses(data_->test, classes, true);
  WrnConfig cfg = TinyLibraryConfig();
  cfg.ks = 0.5;
  cfg.num_classes = 2;
  Wrn model(cfg, *rng_);
  TrainScratch(model, train, FastTrainOptions(8));
  EXPECT_GT(EvaluateAccuracy(ModelLogits(model), test), 0.6f);
}

TEST_F(SpecializeTest, StandardKdTransfersGenericKnowledge) {
  WrnConfig cfg = TinyLibraryConfig();
  Wrn student(cfg, *rng_);
  const float before = EvaluateAccuracy(ModelLogits(student), data_->test);
  TrainStandardKd(ModelLogits(*oracle_), student, data_->train,
                  FastTrainOptions(8));
  const float after = EvaluateAccuracy(ModelLogits(student), data_->test);
  EXPECT_GT(after, before);
  EXPECT_GT(after, 0.4f);
}

TEST_F(SpecializeTest, TransferFreezesLibraryBitExact) {
  // Train a library student then freeze it for transfer.
  WrnConfig cfg = TinyLibraryConfig();
  Wrn student(cfg, *rng_);
  TrainStandardKd(ModelLogits(*oracle_), student, data_->train,
                  FastTrainOptions(4));
  Sequential& library = *student.library_part();
  library.SetTrainable(false);

  // Snapshot library weights and BN stats.
  std::vector<Tensor> before;
  for (Parameter* p : library.Parameters()) before.push_back(p->value.Clone());
  std::vector<Tensor*> buffers;
  library.CollectBuffers(&buffers);
  for (Tensor* b : buffers) before.push_back(b->Clone());

  const auto& classes = data_->hierarchy.task_classes(1);
  Dataset train = FilterClasses(data_->train, classes, true);
  WrnConfig ecfg = cfg;
  ecfg.ks = 0.5;
  ecfg.num_classes = 2;
  auto head = BuildExpertPart(ecfg, cfg.conv3_channels(), *rng_);
  TrainTransfer(library, *head, train, FastTrainOptions(4));

  // Library must be bit-identical after training the head.
  size_t i = 0;
  for (Parameter* p : library.Parameters()) {
    EXPECT_EQ(MaxAbsDiff(p->value, before[i++]), 0.0f);
  }
  for (Tensor* b : buffers) {
    EXPECT_EQ(MaxAbsDiff(*b, before[i++]), 0.0f);
  }
}

TEST_F(SpecializeTest, CkdExpertLearnsTask) {
  WrnConfig cfg = TinyLibraryConfig();
  Wrn student(cfg, *rng_);
  TrainStandardKd(ModelLogits(*oracle_), student, data_->train,
                  FastTrainOptions(6));
  Sequential& library = *student.library_part();

  const auto& classes = data_->hierarchy.task_classes(2);
  Dataset test = FilterClasses(data_->test, classes, true);
  WrnConfig ecfg = cfg;
  ecfg.ks = 0.5;
  ecfg.num_classes = 2;
  auto head = BuildExpertPart(ecfg, cfg.conv3_channels(), *rng_);
  TrainCkdExpert(ModelLogits(*oracle_), library, *head, data_->train,
                 classes, FastTrainOptions(8), CkdOptions{});
  const float acc =
      EvaluateAccuracy(LibraryHeadLogits(library, *head), test);
  EXPECT_GT(acc, 0.6f);
}

TEST_F(SpecializeTest, CkdWithTablesMatchesDirectPath) {
  WrnConfig cfg = TinyLibraryConfig();
  Wrn student(cfg, *rng_);
  TrainStandardKd(ModelLogits(*oracle_), student, data_->train,
                  FastTrainOptions(2));
  Sequential& library = *student.library_part();
  const auto& classes = data_->hierarchy.task_classes(0);

  WrnConfig ecfg = cfg;
  ecfg.ks = 0.5;
  ecfg.num_classes = 2;
  Rng rng_a(42), rng_b(42);
  auto head_a = BuildExpertPart(ecfg, cfg.conv3_channels(), rng_a);
  auto head_b = BuildExpertPart(ecfg, cfg.conv3_channels(), rng_b);

  TrainOptions opts = FastTrainOptions(2);
  TrainCkdExpert(ModelLogits(*oracle_), library, *head_a, data_->train,
                 classes, opts, CkdOptions{});
  CkdTables tables =
      PrecomputeCkdTables(ModelLogits(*oracle_), library, data_->train);
  TrainCkdExpertWithTables(tables, *head_b, data_->train, classes, opts,
                           CkdOptions{});

  // Identical seeds and identical teacher tables => identical weights.
  auto pa = head_a->Parameters();
  auto pb = head_b->Parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_LT(MaxAbsDiff(pa[i]->value, pb[i]->value), 1e-6f);
  }
}

TEST_F(SpecializeTest, CkdAblationFlagsChangeTraining) {
  WrnConfig cfg = TinyLibraryConfig();
  Wrn student(cfg, *rng_);
  TrainStandardKd(ModelLogits(*oracle_), student, data_->train,
                  FastTrainOptions(2));
  Sequential& library = *student.library_part();
  const auto& classes = data_->hierarchy.task_classes(0);
  WrnConfig ecfg = cfg;
  ecfg.ks = 0.5;
  ecfg.num_classes = 2;

  CkdOptions soft_only;
  soft_only.use_scale = false;
  CkdOptions scale_only;
  scale_only.use_soft = false;

  Rng ra(9), rb(9);
  auto head_soft = BuildExpertPart(ecfg, cfg.conv3_channels(), ra);
  auto head_scale = BuildExpertPart(ecfg, cfg.conv3_channels(), rb);
  TrainOptions opts = FastTrainOptions(2);
  TrainCkdExpert(ModelLogits(*oracle_), library, *head_soft, data_->train,
                 classes, opts, soft_only);
  TrainCkdExpert(ModelLogits(*oracle_), library, *head_scale, data_->train,
                 classes, opts, scale_only);
  // Different losses must produce different weights from the same init.
  EXPECT_GT(MaxAbsDiff(head_soft->Parameters()[0]->value,
                       head_scale->Parameters()[0]->value),
            1e-6f);
}

TEST_F(SpecializeTest, CkdScaleTermShrinksLogitGap) {
  // With L_scale, expert logits should be closer (L1) to the oracle's
  // sub-logits than without it.
  WrnConfig cfg = TinyLibraryConfig();
  Wrn student(cfg, *rng_);
  TrainStandardKd(ModelLogits(*oracle_), student, data_->train,
                  FastTrainOptions(4));
  Sequential& library = *student.library_part();
  const auto& classes = data_->hierarchy.task_classes(1);
  WrnConfig ecfg = cfg;
  ecfg.ks = 0.5;
  ecfg.num_classes = 2;

  CkdOptions with_scale;  // defaults: both terms
  CkdOptions without_scale;
  without_scale.use_scale = false;

  Rng ra(10), rb(10);
  auto head_with = BuildExpertPart(ecfg, cfg.conv3_channels(), ra);
  auto head_without = BuildExpertPart(ecfg, cfg.conv3_channels(), rb);
  TrainOptions opts = FastTrainOptions(8);
  TrainCkdExpert(ModelLogits(*oracle_), library, *head_with, data_->train,
                 classes, opts, with_scale);
  TrainCkdExpert(ModelLogits(*oracle_), library, *head_without,
                 data_->train, classes, opts, without_scale);

  // Compare L1 gap to oracle sub-logits on test data.
  Dataset test_all = data_->test;
  Tensor t = GatherColumns(ModelLogits(*oracle_)(test_all.images), classes);
  Tensor s_with =
      LibraryHeadLogits(library, *head_with)(test_all.images);
  Tensor s_without =
      LibraryHeadLogits(library, *head_without)(test_all.images);
  EXPECT_LT(L1Norm(Sub(s_with, t)), L1Norm(Sub(s_without, t)));
}

}  // namespace
}  // namespace poe

// Parameterized property sweeps over the distillation losses.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/losses.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace poe {
namespace {

class TemperatureSweep : public ::testing::TestWithParam<float> {};

TEST_P(TemperatureSweep, KlIsNonNegative) {
  const float temperature = GetParam();
  Rng rng(static_cast<uint64_t>(temperature * 100));
  for (int trial = 0; trial < 20; ++trial) {
    Tensor t = Tensor::Randn({4, 7}, rng, 2.0f);
    Tensor s = Tensor::Randn({4, 7}, rng, 2.0f);
    EXPECT_GE(DistillationKl(t, s, temperature).loss, -1e-5f);
  }
}

TEST_P(TemperatureSweep, KlGradientMatchesFiniteDifferences) {
  const float temperature = GetParam();
  Rng rng(17);
  Tensor t = Tensor::Randn({2, 5}, rng);
  Tensor s = Tensor::Randn({2, 5}, rng);
  LossResult analytic = DistillationKl(t, s, temperature);
  const float eps = 1e-3f;
  for (int64_t i = 0; i < s.numel(); ++i) {
    const float saved = s.at(i);
    s.at(i) = saved + eps;
    const float plus = DistillationKl(t, s, temperature).loss;
    s.at(i) = saved - eps;
    const float minus = DistillationKl(t, s, temperature).loss;
    s.at(i) = saved;
    EXPECT_NEAR(analytic.grad.at(i), (plus - minus) / (2 * eps), 5e-3f)
        << "T=" << temperature << " i=" << i;
  }
}

TEST_P(TemperatureSweep, HigherTemperatureSoftensTarget) {
  // As T grows, teacher softmax approaches uniform, so the KL against a
  // uniform student shrinks.
  const float temperature = GetParam();
  Tensor t = Tensor::FromVector({1, 3}, {4, 0, -4});
  Tensor s = Tensor::Zeros({1, 3});
  const float kl_t =
      DistillationKl(t, s, temperature, /*scale_t_squared=*/false).loss;
  const float kl_hotter =
      DistillationKl(t, s, temperature * 4, /*scale_t_squared=*/false).loss;
  EXPECT_LT(kl_hotter, kl_t);
}

INSTANTIATE_TEST_SUITE_P(Temperatures, TemperatureSweep,
                         ::testing::Values(0.5f, 1.0f, 2.0f, 4.0f, 8.0f));

class BatchSizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(BatchSizeSweep, CrossEntropyScalesAsMeanOverBatch) {
  const int batch = GetParam();
  Rng rng(batch);
  // Identical rows: loss must equal the single-row loss for any batch.
  Tensor one = Tensor::Randn({1, 6}, rng);
  Tensor many({batch, 6});
  std::vector<int> labels(batch, 2);
  for (int b = 0; b < batch; ++b) {
    for (int c = 0; c < 6; ++c) many.at(b * 6 + c) = one.at(c);
  }
  const float single = SoftmaxCrossEntropy(one, {2}).loss;
  const float batched = SoftmaxCrossEntropy(many, labels).loss;
  EXPECT_NEAR(single, batched, 1e-5f);
}

TEST_P(BatchSizeSweep, L1LossScalesAsMeanOverBatch) {
  const int batch = GetParam();
  Rng rng(batch + 100);
  Tensor t_one = Tensor::Randn({1, 4}, rng);
  Tensor s_one = Tensor::Randn({1, 4}, rng);
  Tensor t_many({batch, 4}), s_many({batch, 4});
  for (int b = 0; b < batch; ++b) {
    for (int c = 0; c < 4; ++c) {
      t_many.at(b * 4 + c) = t_one.at(c);
      s_many.at(b * 4 + c) = s_one.at(c);
    }
  }
  EXPECT_NEAR(L1LogitLoss(t_one, s_one).loss,
              L1LogitLoss(t_many, s_many).loss, 1e-5f);
}

INSTANTIATE_TEST_SUITE_P(Batches, BatchSizeSweep,
                         ::testing::Values(1, 2, 8, 33));

TEST(LossInteractionTest, CkdGradIsWeightedSumOfTerms) {
  // The CKD loss is L_soft + alpha * L_scale; verify the linearity the
  // trainer relies on when combining gradients.
  Rng rng(9);
  Tensor t = Tensor::Randn({3, 4}, rng);
  Tensor s = Tensor::Randn({3, 4}, rng);
  const float alpha = 0.3f;
  LossResult soft = DistillationKl(t, s, 4.0f);
  LossResult scale = L1LogitLoss(t, s);
  Tensor combined = Add(soft.grad, Scale(scale.grad, alpha));
  // Finite-difference of the combined objective.
  const float eps = 1e-3f;
  for (int64_t i = 0; i < s.numel(); ++i) {
    const float saved = s.at(i);
    s.at(i) = saved + eps;
    const float plus =
        DistillationKl(t, s, 4.0f).loss + alpha * L1LogitLoss(t, s).loss;
    s.at(i) = saved - eps;
    const float minus =
        DistillationKl(t, s, 4.0f).loss + alpha * L1LogitLoss(t, s).loss;
    s.at(i) = saved;
    EXPECT_NEAR(combined.at(i), (plus - minus) / (2 * eps), 5e-3f);
  }
}

}  // namespace
}  // namespace poe

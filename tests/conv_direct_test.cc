// Direct (im2col-free) convolution: the ISSUE-level guarantee is bitwise
// identity with the im2col lowering on every kernel tier, plus sub-tile
// determinism (thread count never changes output bits). The GEMM-level
// tests compare GemmConvEx/GemmS8Conv against the same GEMM run over a
// materialized im2col matrix; the layer-level tests pin POE_CONV_PATH's
// programmatic equivalent to each lowering and compare Conv2d outputs.
// CMake reruns this binary under POE_GEMM_KERNEL=scalar|avx2 and
// POE_NUM_THREADS=4 so every dispatch tier and the sub-tile parallel
// schedule are all covered.
#include "tensor/conv_direct.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "nn/conv2d.h"
#include "tensor/gemm.h"
#include "tensor/gemm_s8.h"
#include "tensor/im2col.h"
#include "util/rng.h"

namespace poe {
namespace {

// Pins the conv path for one scope and restores the previous choice.
class ScopedConvPath {
 public:
  explicit ScopedConvPath(ConvPath path) : prev_(ConvPathChoice()) {
    SetConvPath(path);
  }
  ~ScopedConvPath() { SetConvPath(prev_); }

 private:
  ConvPath prev_;
};

void FillUniform(std::vector<float>* v, Rng& rng) {
  for (auto& x : *v) x = rng.Uniform(-1.0f, 1.0f);
}

void FillInt8(std::vector<int8_t>* v, Rng& rng) {
  for (auto& x : *v)
    x = static_cast<int8_t>(static_cast<int64_t>(rng.NextInt(255)) - 127);
}

template <typename T>
std::vector<T> PadImage(const std::vector<T>& img, int64_t c, int64_t h,
                        int64_t w, int64_t pad) {
  const int64_t ph = h + 2 * pad;
  const int64_t pw = w + 2 * pad;
  std::vector<T> padded(static_cast<size_t>(c * ph * pw), T(0));
  for (int64_t ch = 0; ch < c; ++ch)
    for (int64_t y = 0; y < h; ++y)
      std::memcpy(padded.data() + (ch * ph + y + pad) * pw + pad,
                  img.data() + (ch * h + y) * w,
                  static_cast<size_t>(w) * sizeof(T));
  return padded;
}

// Direct-conv geometry sweep shared by the f32 and int8 GEMM oracles.
struct Geometry {
  int64_t c, h, w, kernel, pad;
};

const Geometry kGeometries[] = {
    {1, 5, 5, 1, 0},  {1, 5, 5, 1, 1},  {3, 7, 7, 2, 0}, {3, 7, 7, 2, 1},
    {3, 8, 8, 3, 0},  {3, 8, 8, 3, 1},  {1, 5, 7, 3, 2}, {16, 8, 8, 3, 1},
    {3, 16, 16, 5, 2}, {4, 32, 32, 3, 1},
};

TEST(ConvDirectGemmTest, F32BitwiseMatchesIm2Col) {
  for (const auto& g : kGeometries) {
    Rng rng(g.c * 131 + g.h * 17 + g.kernel * 5 + g.pad);
    const int64_t m = 7;
    const int64_t depth = g.c * g.kernel * g.kernel;
    const int64_t out_h = g.h + 2 * g.pad - g.kernel + 1;
    const int64_t out_w = g.w + 2 * g.pad - g.kernel + 1;
    const int64_t cols_n = out_h * out_w;
    std::vector<float> img(static_cast<size_t>(g.c * g.h * g.w));
    std::vector<float> weight(static_cast<size_t>(m * depth));
    std::vector<float> bias(static_cast<size_t>(m));
    FillUniform(&img, rng);
    FillUniform(&weight, rng);
    FillUniform(&bias, rng);

    GemmEpilogue ep;
    ep.row_bias = bias.data();
    ep.relu = true;

    std::vector<float> cols(static_cast<size_t>(depth * cols_n));
    Im2Col(img.data(), g.c, g.h, g.w, g.kernel, g.kernel, g.pad,
           /*stride=*/1, cols.data());
    std::vector<float> c_ref(static_cast<size_t>(m * cols_n));
    GemmEx(false, false, m, cols_n, depth, 1.0f, weight.data(), cols.data(),
           0.0f, c_ref.data(), ep, /*parallel=*/false);

    const std::vector<float> padded = PadImage(img, g.c, g.h, g.w, g.pad);
    ConvImageView view;
    view.padded = g.pad == 0 ? img.data() : padded.data();
    view.channels = g.c;
    view.height = g.h;
    view.width = g.w;
    view.kernel = g.kernel;
    view.pad = g.pad;
    ASSERT_EQ(view.depth(), depth);
    ASSERT_EQ(view.cols(), cols_n);

    for (bool parallel : {false, true}) {
      std::vector<float> c_direct(static_cast<size_t>(m * cols_n), -7.0f);
      GemmConvEx(m, weight.data(), view, 1.0f, 0.0f, c_direct.data(), ep,
                 parallel);
      ASSERT_EQ(0, std::memcmp(c_ref.data(), c_direct.data(),
                               c_ref.size() * sizeof(float)))
          << "c=" << g.c << " h=" << g.h << " k=" << g.kernel
          << " pad=" << g.pad << " parallel=" << parallel;
    }

    // Prepacked weight operand: same bitwise guarantee.
    PackedAWeights packed =
        PackedAWeights::Pack(/*trans_a=*/false, m, depth, weight.data());
    std::vector<float> c_packed(static_cast<size_t>(m * cols_n));
    GemmConvPackedA(packed, view, 1.0f, 0.0f, c_packed.data(), ep,
                    /*parallel=*/true);
    ASSERT_EQ(0, std::memcmp(c_ref.data(), c_packed.data(),
                             c_ref.size() * sizeof(float)));
  }
}

TEST(ConvDirectGemmTest, Int8BitwiseMatchesIm2Col) {
  for (const auto& g : kGeometries) {
    Rng rng(g.c * 37 + g.h * 11 + g.kernel * 3 + g.pad + 1);
    const int64_t m = 9;
    const int64_t depth = g.c * g.kernel * g.kernel;
    const int64_t out_h = g.h + 2 * g.pad - g.kernel + 1;
    const int64_t out_w = g.w + 2 * g.pad - g.kernel + 1;
    const int64_t cols_n = out_h * out_w;
    std::vector<int8_t> img(static_cast<size_t>(g.c * g.h * g.w));
    std::vector<int8_t> weight(static_cast<size_t>(m * depth));
    std::vector<float> wscale(static_cast<size_t>(m));
    FillInt8(&img, rng);
    FillInt8(&weight, rng);
    FillUniform(&wscale, rng);

    GemmS8Epilogue ep;
    ep.scale = 0.03125f;
    ep.row_scale = wscale.data();
    ep.relu = true;

    std::vector<int8_t> cols(static_cast<size_t>(depth * cols_n));
    Im2Col(img.data(), g.c, g.h, g.w, g.kernel, g.kernel, g.pad,
           /*stride=*/1, cols.data());
    std::vector<float> c_ref(static_cast<size_t>(m * cols_n));
    GemmS8(false, false, m, cols_n, depth, weight.data(), cols.data(),
           c_ref.data(), ep, /*parallel=*/false);

    const std::vector<int8_t> padded = PadImage(img, g.c, g.h, g.w, g.pad);
    ConvImageViewS8 view;
    view.padded = g.pad == 0 ? img.data() : padded.data();
    view.channels = g.c;
    view.height = g.h;
    view.width = g.w;
    view.kernel = g.kernel;
    view.pad = g.pad;

    for (bool parallel : {false, true}) {
      std::vector<float> c_direct(static_cast<size_t>(m * cols_n), -7.0f);
      GemmS8Conv(m, weight.data(), view, c_direct.data(), ep, parallel);
      ASSERT_EQ(0, std::memcmp(c_ref.data(), c_direct.data(),
                               c_ref.size() * sizeof(float)))
          << "c=" << g.c << " h=" << g.h << " k=" << g.kernel
          << " pad=" << g.pad << " parallel=" << parallel;
    }

    PackedS8Weights packed = PackedS8Weights::Pack(m, depth, weight.data());
    std::vector<float> c_packed(static_cast<size_t>(m * cols_n));
    GemmS8ConvPackedA(packed, view, c_packed.data(), ep, /*parallel=*/true);
    ASSERT_EQ(0, std::memcmp(c_ref.data(), c_packed.data(),
                             c_ref.size() * sizeof(float)));
  }
}

// Sub-tile parallelism inside a single macro tile must not change output
// bits: every register tile is computed by exactly one task with the same
// packed panels and accumulation order (ParallelFor is a barrier).
TEST(ConvDirectGemmTest, SubTileParallelIsDeterministicF32) {
  Rng rng(91);
  // m=64 rows, ~900 columns: one macro tile, many NR-column micro panels
  // (the shape that exercises the sub-tile ParallelFor schedule).
  const int64_t m = 64, k = 64 * 3 * 3, n = 30 * 30;
  std::vector<float> a(static_cast<size_t>(m * k));
  std::vector<float> b(static_cast<size_t>(k * n));
  FillUniform(&a, rng);
  FillUniform(&b, rng);
  std::vector<float> c_seq(static_cast<size_t>(m * n));
  std::vector<float> c_par(static_cast<size_t>(m * n));
  GemmEx(false, false, m, n, k, 1.0f, a.data(), b.data(), 0.0f,
         c_seq.data(), GemmEpilogue{}, /*parallel=*/false);
  GemmEx(false, false, m, n, k, 1.0f, a.data(), b.data(), 0.0f,
         c_par.data(), GemmEpilogue{}, /*parallel=*/true);
  ASSERT_EQ(0,
            std::memcmp(c_seq.data(), c_par.data(), c_seq.size() * sizeof(float)));
}

TEST(ConvDirectGemmTest, SubTileParallelIsDeterministicInt8) {
  Rng rng(92);
  const int64_t m = 64, k = 64 * 3 * 3, n = 30 * 30;
  std::vector<int8_t> a(static_cast<size_t>(m * k));
  std::vector<int8_t> b(static_cast<size_t>(k * n));
  FillInt8(&a, rng);
  FillInt8(&b, rng);
  GemmS8Epilogue ep;
  ep.scale = 0.0625f;
  std::vector<float> c_seq(static_cast<size_t>(m * n));
  std::vector<float> c_par(static_cast<size_t>(m * n));
  GemmS8(false, false, m, n, k, a.data(), b.data(), c_seq.data(), ep,
         /*parallel=*/false);
  GemmS8(false, false, m, n, k, a.data(), b.data(), c_par.data(), ep,
         /*parallel=*/true);
  ASSERT_EQ(0,
            std::memcmp(c_seq.data(), c_par.data(), c_seq.size() * sizeof(float)));
}

// Multi-macro-tile shape: the macro schedule (or sub-tile, depending on
// worker count) must agree with sequential bit for bit too.
TEST(ConvDirectGemmTest, MultiTileParallelIsDeterministic) {
  Rng rng(93);
  const int64_t m = 300, k = 60, n = 1100;
  std::vector<float> a(static_cast<size_t>(m * k));
  std::vector<float> b(static_cast<size_t>(k * n));
  FillUniform(&a, rng);
  FillUniform(&b, rng);
  std::vector<float> c_seq(static_cast<size_t>(m * n));
  std::vector<float> c_par(static_cast<size_t>(m * n));
  GemmEx(false, false, m, n, k, 1.0f, a.data(), b.data(), 0.0f,
         c_seq.data(), GemmEpilogue{}, /*parallel=*/false);
  GemmEx(false, false, m, n, k, 1.0f, a.data(), b.data(), 0.0f,
         c_par.data(), GemmEpilogue{}, /*parallel=*/true);
  ASSERT_EQ(0,
            std::memcmp(c_seq.data(), c_par.data(), c_seq.size() * sizeof(float)));
}

// Layer-level oracle: identically-seeded Conv2d layers forwarded under
// the pinned direct and im2col paths must agree bitwise — f32 plain,
// f32 prepacked, and both int8 serving modes, across paddings, strides
// (stride 2 exercises the automatic im2col fallback), and batch sizes.
TEST(ConvDirectLayerTest, ForwardF32BitwiseAcrossPaths) {
  for (int64_t kernel : {1, 3, 5}) {
    for (int64_t stride : {1, 2}) {
      for (int64_t pad : {int64_t{0}, kernel / 2}) {
        for (int64_t batch : {1, 3}) {
          Rng rng1(55), rng2(55), rngx(56);
          Conv2d direct(3, 10, kernel, stride, pad, rng1, /*bias=*/true);
          Conv2d im2col(3, 10, kernel, stride, pad, rng2, /*bias=*/true);
          Tensor x = Tensor::Randn({batch, 3, 9, 9}, rngx);
          Tensor y1, y2;
          {
            ScopedConvPath pin(ConvPath::kDirect);
            y1 = direct.Forward(x, /*training=*/false);
          }
          {
            ScopedConvPath pin(ConvPath::kIm2Col);
            y2 = im2col.Forward(x, /*training=*/false);
          }
          ASSERT_EQ(0, std::memcmp(y1.data(), y2.data(),
                                   y1.numel() * sizeof(float)))
              << "kernel=" << kernel << " stride=" << stride
              << " pad=" << pad << " batch=" << batch;
        }
      }
    }
  }
}

TEST(ConvDirectLayerTest, ForwardF32PrepackedBitwiseAcrossPaths) {
  Rng rng1(57), rng2(57), rngx(58);
  Conv2d direct(6, 12, 3, 1, 1, rng1, /*bias=*/true);
  Conv2d im2col(6, 12, 3, 1, 1, rng2, /*bias=*/true);
  direct.Prepack(ServingPrecision::kFloat32);
  im2col.Prepack(ServingPrecision::kFloat32);
  Tensor x = Tensor::Randn({2, 6, 11, 11}, rngx);
  Tensor y1, y2;
  {
    ScopedConvPath pin(ConvPath::kDirect);
    y1 = direct.ForwardFusedRelu(x);
  }
  {
    ScopedConvPath pin(ConvPath::kIm2Col);
    y2 = im2col.ForwardFusedRelu(x);
  }
  ASSERT_EQ(0,
            std::memcmp(y1.data(), y2.data(), y1.numel() * sizeof(float)));
}

TEST(ConvDirectLayerTest, ForwardInt8BitwiseAcrossPaths) {
  for (int64_t pad : {0, 1}) {
    for (int64_t batch : {1, 2}) {
      Rng rng1(59), rng2(59), rngx(60);
      Conv2d direct(5, 8, 3, 1, pad, rng1);
      Conv2d im2col(5, 8, 3, 1, pad, rng2);
      Tensor x = Tensor::Randn({batch, 5, 8, 8}, rngx);
      // Calibrate one pair member on the probe batch so both the static
      // and dynamic activation-scale paths cross the lowering boundary.
      direct.BeginActivationCalibration();
      direct.Forward(x, /*training=*/false);
      direct.FinishActivationCalibration();
      im2col.set_static_act_scale(direct.static_act_scale());
      direct.PrepareInt8Serving();
      im2col.PrepareInt8Serving();
      Tensor y1, y2;
      {
        ScopedConvPath pin(ConvPath::kDirect);
        y1 = direct.ForwardFusedRelu(x);
      }
      {
        ScopedConvPath pin(ConvPath::kIm2Col);
        y2 = im2col.ForwardFusedRelu(x);
      }
      ASSERT_EQ(0, std::memcmp(y1.data(), y2.data(),
                               y1.numel() * sizeof(float)))
          << "pad=" << pad << " batch=" << batch;
    }
  }
}

// The batch-parallel schedule (ParallelFor over items, sequential GEMMs)
// and the GEMM-parallel schedule agree bitwise on the direct path; batch
// size only changes which one Conv2d picks, never the bits.
TEST(ConvDirectLayerTest, BatchSizeDoesNotChangeBits) {
  Rng rng1(61), rng2(61), rngx(62);
  Conv2d conv_a(4, 16, 3, 1, 1, rng1, /*bias=*/true);
  Conv2d conv_b(4, 16, 3, 1, 1, rng2, /*bias=*/true);
  Tensor big = Tensor::Randn({8, 4, 10, 10}, rngx);
  ScopedConvPath pin(ConvPath::kDirect);
  Tensor y_all = conv_a.Forward(big, /*training=*/false);
  const int64_t item = 16 * 10 * 10;
  for (int64_t b = 0; b < 8; ++b) {
    Tensor x({1, 4, 10, 10});
    std::memcpy(x.data(), big.data() + b * 4 * 10 * 10,
                sizeof(float) * 4 * 10 * 10);
    Tensor y = conv_b.Forward(x, /*training=*/false);
    ASSERT_EQ(0, std::memcmp(y.data(), y_all.data() + b * item,
                             sizeof(float) * item))
        << "item " << b;
  }
}

}  // namespace
}  // namespace poe

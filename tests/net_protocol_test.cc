// Protocol-robustness tests: a NetServer fed truncated, oversized,
// bit-flipped, and garbage frames must answer with a clean protocol
// error (or silently close when the header is not even ours), never
// corrupt state, hang a request, or stop serving other connections.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "eval/metrics.h"
#include "net/net_client.h"
#include "net/net_server.h"
#include "net/wire.h"
#include "serve/inference_server.h"
#include "test_util.h"
#include "util/crc32c.h"

namespace poe {
namespace {

using testutil::FastTrainOptions;
using testutil::TinyDataConfig;
using testutil::TinyLibraryConfig;
using testutil::TinyOracleConfig;

ExpertPool BuildPool() {
  static SyntheticDataset* data =
      new SyntheticDataset(GenerateSyntheticDataset(TinyDataConfig()));
  static Wrn* oracle = [] {
    Rng rng(41);
    Wrn* w = new Wrn(TinyOracleConfig(), rng);
    TrainScratch(*w, data->train, FastTrainOptions(4));
    return w;
  }();
  PoeBuildConfig cfg;
  cfg.library_config = TinyLibraryConfig();
  cfg.expert_ks = 0.5;
  cfg.library_options = FastTrainOptions(2);
  cfg.expert_options = FastTrainOptions(2);
  Rng rng(42);
  return ExpertPool::Preprocess(ModelLogits(*oracle), *data, cfg, rng);
}

Tensor MakeInput(int rows, int seed) {
  Rng rng(seed);
  return Tensor::Randn({rows, 3, 6, 6}, rng);
}

std::vector<uint8_t> ValidFrame(uint64_t id = 1) {
  return EncodeRequestFrame(id, {0, 1}, MakeInput(2, 55), /*deadline_ms=*/0.0,
                            WirePrecision::kAny);
}

/// Polls until the server's protocol_errors counter reaches `want`
/// (connection teardown is asynchronous).
void WaitForProtocolErrors(const NetServer& net, int64_t want) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (net.stats().protocol_errors < want &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(want, net.stats().protocol_errors);
}

/// The server must still serve a well-formed request after whatever a
/// test just threw at it.
void ExpectStillHealthy(const NetServer& net) {
  NetClient probe;
  ASSERT_TRUE(probe.Connect("127.0.0.1", net.port()).ok());
  auto r = probe.Query({0, 1}, MakeInput(1, 56));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.ValueOrDie().status.ok())
      << r.ValueOrDie().status.ToString();
}

class NetProtocolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    service_ = std::make_unique<ModelQueryService>(BuildPool(), 8);
    server_ = std::make_unique<InferenceServer>(service_.get(),
                                                InferenceServer::Options{});
    net_ = std::make_unique<NetServer>(server_.get(), NetServer::Options{});
    ASSERT_TRUE(net_->Start().ok());
  }

  std::unique_ptr<ModelQueryService> service_;
  std::unique_ptr<InferenceServer> server_;
  std::unique_ptr<NetServer> net_;
};

TEST_F(NetProtocolTest, TruncationAtEveryBoundaryIsACleanError) {
  const std::vector<uint8_t> frame = ValidFrame();
  const size_t tasks_end = kWireHeaderBytes + kWireRequestMetaBytes + 4 * 2;

  // Every byte position through header+meta+tasks, then a stride through
  // the payload, plus the exact stage boundaries and full-1.
  std::vector<size_t> cuts;
  for (size_t cut = 1; cut <= tasks_end; ++cut) cuts.push_back(cut);
  for (size_t cut = tasks_end + 13; cut < frame.size(); cut += 97) {
    cuts.push_back(cut);
  }
  cuts.push_back(frame.size() - 1);

  int64_t expected_errors = 0;
  for (size_t cut : cuts) {
    NetClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", net_->port()).ok());
    ASSERT_TRUE(client.SendRaw(frame.data(), cut).ok());
    client.Close();  // EOF mid-frame: a truncated frame
    ++expected_errors;
  }
  WaitForProtocolErrors(*net_, expected_errors);
  // Nothing reached the inference queue and nothing hangs.
  EXPECT_EQ(0, server_->stats().submitted);
  ExpectStillHealthy(*net_);
}

TEST_F(NetProtocolTest, CleanEofAtFrameBoundaryIsNotAnError) {
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", net_->port()).ok());
  auto r = client.Query({0, 1}, MakeInput(1, 57));
  ASSERT_TRUE(r.ok());
  client.Close();  // EOF exactly between frames

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (net_->stats().conns_dropped < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(0, net_->stats().protocol_errors);
}

TEST_F(NetProtocolTest, OversizedLengthHeaderGetsErrorReplyThenClose) {
  // Sound prefix (magic/version/type), absurd body_len: the server can
  // trust request_id, so it must answer before closing.
  std::vector<uint8_t> frame = ValidFrame(/*id=*/42);
  const uint32_t huge = kDefaultMaxBodyBytes + 1;
  std::memcpy(frame.data() + 8, &huge, sizeof(huge));

  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", net_->port()).ok());
  ASSERT_TRUE(client.SendRaw(frame.data(), kWireHeaderBytes).ok());
  auto r = client.Receive();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(42u, r.ValueOrDie().request_id);
  EXPECT_EQ(StatusCode::kInvalidArgument, r.ValueOrDie().status.code());
  // ... and then the connection is gone.
  EXPECT_FALSE(client.Receive().ok());
  WaitForProtocolErrors(*net_, 1);
  ExpectStillHealthy(*net_);
}

TEST_F(NetProtocolTest, BitFlippedPayloadIsCorruptionNotLogits) {
  std::vector<uint8_t> frame = ValidFrame(/*id=*/7);
  frame[frame.size() - 5] ^= 0x10;  // flip one payload bit

  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", net_->port()).ok());
  ASSERT_TRUE(client.SendRaw(frame.data(), frame.size()).ok());
  auto r = client.Receive();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(7u, r.ValueOrDie().request_id);
  EXPECT_EQ(StatusCode::kCorruption, r.ValueOrDie().status.code());
  EXPECT_FALSE(client.Receive().ok());
  WaitForProtocolErrors(*net_, 1);
  EXPECT_EQ(0, server_->stats().submitted);
  ExpectStillHealthy(*net_);
}

TEST_F(NetProtocolTest, BitFlippedTaskIdsAreCaughtByTheCrcToo) {
  std::vector<uint8_t> frame = ValidFrame(/*id=*/8);
  frame[kWireHeaderBytes + kWireRequestMetaBytes + 1] ^= 0x01;

  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", net_->port()).ok());
  ASSERT_TRUE(client.SendRaw(frame.data(), frame.size()).ok());
  auto r = client.Receive();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(StatusCode::kCorruption, r.ValueOrDie().status.code());
  WaitForProtocolErrors(*net_, 1);
  ExpectStillHealthy(*net_);
}

TEST_F(NetProtocolTest, MalformedMagicClosesWithoutReply) {
  std::vector<uint8_t> frame = ValidFrame();
  frame[0] ^= 0xFF;

  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", net_->port()).ok());
  ASSERT_TRUE(client.SendRaw(frame.data(), frame.size()).ok());
  // Not our protocol: no reply can be trusted, so the server just
  // closes. The client sees EOF, not a frame.
  auto r = client.Receive();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(StatusCode::kUnavailable, r.status().code());
  WaitForProtocolErrors(*net_, 1);
  ExpectStillHealthy(*net_);
}

TEST_F(NetProtocolTest, ResponseTypeFrameToServerCloses) {
  std::vector<uint8_t> frame = ValidFrame();
  frame[5] = kWireTypeResponse;  // wrong direction

  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", net_->port()).ok());
  ASSERT_TRUE(client.SendRaw(frame.data(), frame.size()).ok());
  EXPECT_FALSE(client.Receive().ok());
  WaitForProtocolErrors(*net_, 1);
  ExpectStillHealthy(*net_);
}

TEST_F(NetProtocolTest, MalformedMetaGetsInvalidArgumentReply) {
  std::vector<uint8_t> frame = ValidFrame(/*id=*/9);
  frame[kWireHeaderBytes + 9] = 3;  // ndim must be 4
  // Re-seal the CRC so the error is attributed to the meta, not the CRC.
  const uint32_t crc = Crc32c(frame.data() + kWireHeaderBytes,
                              frame.size() - kWireHeaderBytes);
  std::memcpy(frame.data() + 12, &crc, sizeof(crc));

  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", net_->port()).ok());
  ASSERT_TRUE(client.SendRaw(frame.data(), frame.size()).ok());
  auto r = client.Receive();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(StatusCode::kInvalidArgument, r.ValueOrDie().status.code());
  WaitForProtocolErrors(*net_, 1);
  ExpectStillHealthy(*net_);
}

TEST_F(NetProtocolTest, GarbageFloodNeverWedgesTheServer) {
  Rng rng(99);
  std::vector<uint8_t> garbage(4096);
  for (uint8_t& b : garbage) {
    b = static_cast<uint8_t>(rng.NextInt(256));
  }
  for (int i = 0; i < 4; ++i) {
    NetClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", net_->port()).ok());
    ASSERT_TRUE(client.SendRaw(garbage.data(), garbage.size()).ok());
    client.Close();
  }
  WaitForProtocolErrors(*net_, 4);
  EXPECT_EQ(0, server_->stats().submitted);
  ExpectStillHealthy(*net_);
}

// --- deadline edge cases on the wire ---

TEST_F(NetProtocolTest, WireDeadlineZeroMeansNoDeadlineNotBornExpired) {
  // deadline_ms = 0.0 crosses the wire as "no budget" (the <= 0 contract
  // in the frame spec), NOT as a deadline that expired at birth - the
  // request must be served.
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", net_->port()).ok());
  auto r = client.Query({0, 1}, MakeInput(1, 60), /*deadline_ms=*/0.0);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.ValueOrDie().status.ok())
      << r.ValueOrDie().status.ToString();
  EXPECT_EQ(0, server_->stats().deadline_expired);
}

TEST_F(NetProtocolTest, WireDeadlineTinyPositiveIsShedAsExpired) {
  // The smallest representable positive budget IS a real deadline and has
  // long passed by the time the frame crosses the socket: the request is
  // shed with a well-formed kDeadlineExceeded response (never executed,
  // never a protocol error).
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", net_->port()).ok());
  auto r = client.Query({0, 1}, MakeInput(1, 61), /*deadline_ms=*/1e-6);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(StatusCode::kDeadlineExceeded, r.ValueOrDie().status.code());
  EXPECT_EQ(0, net_->stats().protocol_errors);
  EXPECT_EQ(1, server_->stats().deadline_expired);
  ExpectStillHealthy(*net_);
}

TEST_F(NetProtocolTest, DeadlineLongerThanTheConnectionIsHarmless) {
  // A client that sets an hour-long budget and hangs up right after
  // sending must not leave the server holding anything: the request
  // resolves (the response is written to a dead socket and dropped with
  // the connection), counters reconcile, and the next connection serves.
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", net_->port()).ok());
  ASSERT_TRUE(
      client.Send({0, 1}, MakeInput(1, 62), /*deadline_ms=*/3.6e6).ok());
  client.Close();

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    const ServeStats s = server_->stats();
    if (s.submitted >= 1 &&
        s.submitted == s.completed + s.rejected + s.deadline_expired) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const ServeStats s = server_->stats();
  EXPECT_GE(s.submitted, 1);
  EXPECT_EQ(s.submitted, s.completed + s.rejected + s.deadline_expired);
  ExpectStillHealthy(*net_);
}

}  // namespace
}  // namespace poe

#include "data/hierarchy.h"

#include <gtest/gtest.h>

namespace poe {
namespace {

TEST(HierarchyTest, UniformPartition) {
  ClassHierarchy h = ClassHierarchy::Uniform(4, 3);
  EXPECT_EQ(h.num_tasks(), 4);
  EXPECT_EQ(h.num_classes(), 12);
  EXPECT_EQ(h.task_classes(0), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(h.task_classes(3), (std::vector<int>{9, 10, 11}));
}

TEST(HierarchyTest, TaskOfClass) {
  ClassHierarchy h = ClassHierarchy::Uniform(3, 2);
  EXPECT_EQ(h.task_of_class(0), 0);
  EXPECT_EQ(h.task_of_class(1), 0);
  EXPECT_EQ(h.task_of_class(2), 1);
  EXPECT_EQ(h.task_of_class(5), 2);
}

TEST(HierarchyTest, FromTasksAcceptsIrregularPartition) {
  auto r = ClassHierarchy::FromTasks({{0, 2}, {1}, {3, 4, 5}});
  ASSERT_TRUE(r.ok());
  const ClassHierarchy& h = r.ValueOrDie();
  EXPECT_EQ(h.num_tasks(), 3);
  EXPECT_EQ(h.num_classes(), 6);
  EXPECT_EQ(h.task_of_class(2), 0);
  EXPECT_EQ(h.task_of_class(1), 1);
}

TEST(HierarchyTest, FromTasksRejectsEmpty) {
  EXPECT_FALSE(ClassHierarchy::FromTasks({}).ok());
  EXPECT_FALSE(ClassHierarchy::FromTasks({{0}, {}}).ok());
}

TEST(HierarchyTest, FromTasksRejectsOverlap) {
  auto r = ClassHierarchy::FromTasks({{0, 1}, {1, 2}});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(HierarchyTest, FromTasksRejectsGaps) {
  // Classes {0, 2} with 2 total classes: id 2 is out of range.
  EXPECT_FALSE(ClassHierarchy::FromTasks({{0}, {2}}).ok());
}

TEST(HierarchyTest, CompositeClassesConcatenatesInTaskOrder) {
  ClassHierarchy h = ClassHierarchy::Uniform(3, 2);
  EXPECT_EQ(h.CompositeClasses({2, 0}), (std::vector<int>{4, 5, 0, 1}));
}

TEST(HierarchyTest, AllTaskIds) {
  ClassHierarchy h = ClassHierarchy::Uniform(3, 1);
  EXPECT_EQ(h.AllTaskIds(), (std::vector<int>{0, 1, 2}));
}

}  // namespace
}  // namespace poe

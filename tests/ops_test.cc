#include "tensor/ops.h"

#include <gtest/gtest.h>

#include <cmath>

namespace poe {
namespace {

TEST(OpsTest, AddSubMulScale) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector({2, 2}, {10, 20, 30, 40});
  Tensor sum = Add(a, b);
  Tensor diff = Sub(b, a);
  Tensor prod = Mul(a, b);
  Tensor scaled = Scale(a, 2.0f);
  EXPECT_EQ(sum.at(3), 44.0f);
  EXPECT_EQ(diff.at(0), 9.0f);
  EXPECT_EQ(prod.at(1), 40.0f);
  EXPECT_EQ(scaled.at(2), 6.0f);
}

TEST(OpsTest, InPlaceOps) {
  Tensor a = Tensor::FromVector({3}, {1, 2, 3});
  Tensor b = Tensor::FromVector({3}, {1, 1, 1});
  AddInPlace(a, b);
  EXPECT_EQ(a.at(0), 2.0f);
  Axpy(0.5f, b, a);
  EXPECT_EQ(a.at(0), 2.5f);
  ScaleInPlace(a, 2.0f);
  EXPECT_EQ(a.at(0), 5.0f);
}

TEST(OpsTest, Reductions) {
  Tensor a = Tensor::FromVector({4}, {-1, 2, -3, 4});
  EXPECT_EQ(Sum(a), 2.0f);
  EXPECT_EQ(Mean(a), 0.5f);
  EXPECT_EQ(MaxValue(a), 4.0f);
  EXPECT_EQ(Argmax(a), 3);
  EXPECT_EQ(L1Norm(a), 10.0f);
  EXPECT_FLOAT_EQ(L2Norm(a), std::sqrt(30.0f));
}

TEST(OpsTest, ArgmaxRow) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 5, 2, 9, 0, 3});
  EXPECT_EQ(ArgmaxRow(a, 0), 1);
  EXPECT_EQ(ArgmaxRow(a, 1), 0);
}

TEST(OpsTest, MaxAbsDiff) {
  Tensor a = Tensor::FromVector({3}, {1, 2, 3});
  Tensor b = Tensor::FromVector({3}, {1, 2.5, 2});
  EXPECT_FLOAT_EQ(MaxAbsDiff(a, b), 1.0f);
}

TEST(OpsTest, SoftmaxRowsSumToOne) {
  Tensor logits = Tensor::FromVector({2, 3}, {1, 2, 3, -5, 0, 5});
  Tensor p = Softmax2d(logits);
  for (int r = 0; r < 2; ++r) {
    float s = 0;
    for (int c = 0; c < 3; ++c) s += p.at(r * 3 + c);
    EXPECT_NEAR(s, 1.0f, 1e-6f);
  }
  // Monotone in logits.
  EXPECT_LT(p.at(0), p.at(1));
  EXPECT_LT(p.at(1), p.at(2));
}

TEST(OpsTest, SoftmaxIsShiftInvariant) {
  Tensor a = Tensor::FromVector({1, 3}, {1, 2, 3});
  Tensor b = Tensor::FromVector({1, 3}, {101, 102, 103});
  Tensor pa = Softmax2d(a);
  Tensor pb = Softmax2d(b);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(pa.at(i), pb.at(i), 1e-6f);
}

TEST(OpsTest, SoftmaxTemperatureFlattens) {
  Tensor logits = Tensor::FromVector({1, 2}, {0, 4});
  Tensor sharp = SoftmaxWithTemperature(logits, 1.0f);
  Tensor soft = SoftmaxWithTemperature(logits, 8.0f);
  EXPECT_GT(sharp.at(1), soft.at(1));
  EXPECT_GT(soft.at(0), sharp.at(0));
}

TEST(OpsTest, LogSoftmaxMatchesLogOfSoftmax) {
  Tensor logits = Tensor::FromVector({1, 4}, {0.5, -1, 2, 0});
  Tensor p = Softmax2d(logits);
  Tensor lp = LogSoftmax2d(logits);
  for (int i = 0; i < 4; ++i)
    EXPECT_NEAR(lp.at(i), std::log(p.at(i)), 1e-5f);
}

TEST(OpsTest, LogSoftmaxStableForLargeLogits) {
  Tensor logits = Tensor::FromVector({1, 2}, {1000, 1001});
  Tensor lp = LogSoftmax2d(logits);
  EXPECT_TRUE(std::isfinite(lp.at(0)));
  EXPECT_TRUE(std::isfinite(lp.at(1)));
}

TEST(OpsTest, GatherColumns) {
  Tensor a = Tensor::FromVector({2, 4}, {0, 1, 2, 3, 10, 11, 12, 13});
  Tensor g = GatherColumns(a, {3, 1});
  EXPECT_EQ(g.dim(1), 2);
  EXPECT_EQ(g.at(0), 3.0f);
  EXPECT_EQ(g.at(1), 1.0f);
  EXPECT_EQ(g.at(2), 13.0f);
}

TEST(OpsTest, ConcatColumns) {
  Tensor a = Tensor::FromVector({2, 1}, {1, 2});
  Tensor b = Tensor::FromVector({2, 2}, {3, 4, 5, 6});
  Tensor c = ConcatColumns({a, b});
  EXPECT_EQ(c.dim(0), 2);
  EXPECT_EQ(c.dim(1), 3);
  EXPECT_EQ(c.at(0), 1.0f);
  EXPECT_EQ(c.at(1), 3.0f);
  EXPECT_EQ(c.at(2), 4.0f);
  EXPECT_EQ(c.at(3), 2.0f);
  EXPECT_EQ(c.at(5), 6.0f);
}

TEST(OpsTest, ConcatThenGatherRoundTrips) {
  Tensor a = Tensor::FromVector({1, 2}, {7, 8});
  Tensor b = Tensor::FromVector({1, 2}, {9, 10});
  Tensor c = ConcatColumns({a, b});
  Tensor back_a = GatherColumns(c, {0, 1});
  Tensor back_b = GatherColumns(c, {2, 3});
  EXPECT_EQ(MaxAbsDiff(a, back_a), 0.0f);
  EXPECT_EQ(MaxAbsDiff(b, back_b), 0.0f);
}

TEST(OpsTest, SliceRows) {
  Tensor a = Tensor::FromVector({3, 2}, {0, 1, 10, 11, 20, 21});
  Tensor s = SliceRows(a, 1, 3);
  EXPECT_EQ(s.dim(0), 2);
  EXPECT_EQ(s.at(0), 10.0f);
  EXPECT_EQ(s.at(3), 21.0f);
}

TEST(OpsTest, GatherRows) {
  Tensor a = Tensor::FromVector({3, 2}, {0, 1, 10, 11, 20, 21});
  Tensor g = GatherRows(a, {2, 0, 2});
  EXPECT_EQ(g.dim(0), 3);
  EXPECT_EQ(g.at(0), 20.0f);
  EXPECT_EQ(g.at(2), 0.0f);
  EXPECT_EQ(g.at(4), 20.0f);
}

TEST(OpsTest, GatherRows4d) {
  Tensor a = Tensor::Zeros({2, 1, 2, 2});
  a.at(0) = 1.0f;
  a.at(4) = 2.0f;
  Tensor g = GatherRows(a, {1});
  EXPECT_EQ(g.dim(0), 1);
  EXPECT_EQ(g.at(0), 2.0f);
}

}  // namespace
}  // namespace poe

// AdaptiveBatchLimiter unit tests (exact, pinned cap trajectories) and
// InferenceServer integration: the effective max_batch_rows must shrink
// when the observed p99 blows the budget and regrow on headroom.
#include "serve/adaptive_batch.h"

#include <gtest/gtest.h>

#include <vector>

#include "eval/metrics.h"
#include "serve/inference_server.h"
#include "test_util.h"
#include "util/fault.h"

namespace poe {
namespace {

using testutil::FastTrainOptions;
using testutil::TinyDataConfig;
using testutil::TinyLibraryConfig;
using testutil::TinyOracleConfig;

ExpertPool BuildPool() {
  static SyntheticDataset* data =
      new SyntheticDataset(GenerateSyntheticDataset(TinyDataConfig()));
  static Wrn* oracle = [] {
    Rng rng(41);
    Wrn* w = new Wrn(TinyOracleConfig(), rng);
    TrainScratch(*w, data->train, FastTrainOptions(4));
    return w;
  }();
  PoeBuildConfig cfg;
  cfg.library_config = TinyLibraryConfig();
  cfg.expert_ks = 0.5;
  cfg.library_options = FastTrainOptions(2);
  cfg.expert_options = FastTrainOptions(2);
  Rng rng(42);
  return ExpertPool::Preprocess(ModelLogits(*oracle), *data, cfg, rng);
}

AdaptiveBatchOptions TestOptions() {
  AdaptiveBatchOptions opts;
  opts.enabled = true;
  opts.p99_budget_ms = 100.0;
  opts.min_rows = 1;
  opts.max_rows = 64;
  opts.epoch_samples = 4;
  opts.regrow_headroom = 0.5;
  return opts;
}

void FeedEpoch(AdaptiveBatchLimiter& limiter, double ms, int samples = 4) {
  for (int i = 0; i < samples; ++i) limiter.Record(ms);
}

TEST(AdaptiveBatchLimiterTest, CapHalvesPerOverBudgetEpochDownToFloor) {
  AdaptiveBatchLimiter limiter(TestOptions(), /*initial_rows=*/64);
  EXPECT_EQ(64, limiter.rows());

  // Pinned trajectory: each 200ms epoch (over the 100ms budget) halves.
  const std::vector<int64_t> expected{32, 16, 8, 4, 2, 1, 1};
  for (int64_t want : expected) {
    FeedEpoch(limiter, 200.0);
    EXPECT_EQ(want, limiter.rows());
  }
  EXPECT_EQ(7, limiter.epochs());
  EXPECT_DOUBLE_EQ(200.0, limiter.last_p99_ms());
}

TEST(AdaptiveBatchLimiterTest, CapDoublesOnHeadroomUpToCeiling) {
  AdaptiveBatchLimiter limiter(TestOptions(), 64);
  while (limiter.rows() > 1) FeedEpoch(limiter, 200.0);

  // p99 well under headroom (0.5 * 100ms): regrow geometrically.
  const std::vector<int64_t> expected{2, 4, 8, 16, 32, 64, 64};
  for (int64_t want : expected) {
    FeedEpoch(limiter, 10.0);
    EXPECT_EQ(want, limiter.rows());
  }
}

TEST(AdaptiveBatchLimiterTest, DeadBandHoldsTheCapSteady) {
  AdaptiveBatchLimiter limiter(TestOptions(), 16);
  // Between headroom (50ms) and budget (100ms): no movement either way.
  for (int e = 0; e < 5; ++e) {
    FeedEpoch(limiter, 80.0);
    EXPECT_EQ(16, limiter.rows());
  }
  EXPECT_EQ(5, limiter.epochs());
}

TEST(AdaptiveBatchLimiterTest, EpochP99IsExactNotSticky) {
  AdaptiveBatchLimiter limiter(TestOptions(), 64);
  // One catastrophic epoch...
  FeedEpoch(limiter, 500.0);
  EXPECT_EQ(32, limiter.rows());
  // ...must not haunt later epochs: a cumulative p99 would still be
  // 500ms here, but the epoch p99 is fresh and the cap regrows.
  FeedEpoch(limiter, 5.0);
  EXPECT_EQ(64, limiter.rows());
}

TEST(AdaptiveBatchLimiterTest, SanitizesDegenerateOptions) {
  AdaptiveBatchOptions opts;
  opts.enabled = true;
  opts.p99_budget_ms = 10.0;
  opts.min_rows = -5;          // -> 1
  opts.max_rows = 0;           // -> inherit initial
  opts.epoch_samples = 1;      // -> 4
  opts.regrow_headroom = 2.0;  // -> 0.5
  AdaptiveBatchLimiter limiter(opts, 8);
  EXPECT_EQ(8, limiter.rows());
  FeedEpoch(limiter, 100.0);  // over budget after 4 samples
  EXPECT_EQ(4, limiter.rows());
  for (int e = 0; e < 6; ++e) FeedEpoch(limiter, 100.0);
  EXPECT_EQ(1, limiter.rows());  // floor respected
  for (int e = 0; e < 6; ++e) FeedEpoch(limiter, 1.0);
  EXPECT_EQ(8, limiter.rows());  // ceiling = initial when max_rows == 0
}

TEST(AdaptiveBatchServerTest, ServerCapShrinksUnderLoadAndRegrows) {
  ModelQueryService service(BuildPool(), 8);
  InferenceServer::Options opts;
  opts.num_workers = 1;
  opts.max_batch_rows = 32;
  opts.adaptive.enabled = true;
  opts.adaptive.p99_budget_ms = 100.0;
  opts.adaptive.min_rows = 2;
  opts.adaptive.epoch_samples = 4;
  opts.adaptive.regrow_headroom = 0.5;
  InferenceServer server(&service, opts);

  ASSERT_NE(nullptr, server.batch_limiter());
  EXPECT_EQ(32, server.current_max_batch_rows());
  EXPECT_EQ(32, server.stats().batch_rows_cap);

  auto submit_one = [&](int seed) {
    Rng rng(seed);
    InferenceRequest req;
    req.task_ids = {0, 1};
    req.input = Tensor::Randn({1, 3, 6, 6}, rng);
    InferenceResponse res = server.Submit(std::move(req)).get();
    ASSERT_TRUE(res.status.ok()) << res.status.ToString();
  };

  {
    // Every forward takes ~300ms: p99 blows the 100ms budget and the cap
    // must walk down. 8 sequential completions = 2 closed epochs.
    ScopedFaultInjection slow("server.forward=delay:300:always");
    for (int i = 0; i < 8; ++i) submit_one(10 + i);
  }
  const int64_t shrunk = server.current_max_batch_rows();
  EXPECT_LT(shrunk, 32);
  EXPECT_GE(shrunk, 2);
  EXPECT_EQ(shrunk, server.stats().batch_rows_cap);
  EXPECT_GE(server.batch_limiter()->epochs(), 2);

  // Disarmed, the tiny model serves in a few ms - far under the 50ms
  // regrow threshold - so the cap recovers.
  for (int i = 0; i < 16; ++i) submit_one(50 + i);
  EXPECT_GT(server.current_max_batch_rows(), shrunk);
}

}  // namespace
}  // namespace poe

#include "data/augment.h"

#include <gtest/gtest.h>

#include "tensor/ops.h"

namespace poe {
namespace {

TEST(AugmentTest, ShiftMovesPixels) {
  // 1x3x3 image with a single hot pixel at the center.
  std::vector<float> src(9, 0.0f);
  src[4] = 1.0f;
  std::vector<float> dst(9, -1.0f);
  ShiftImage(src.data(), dst.data(), 1, 3, 3, /*dy=*/1, /*dx=*/0);
  EXPECT_EQ(dst[7], 1.0f);  // moved down one row
  EXPECT_EQ(dst[4], 0.0f);
  // Shifted-in border is zero-padded.
  EXPECT_EQ(dst[0], 0.0f);
}

TEST(AugmentTest, ShiftByZeroIsIdentity) {
  std::vector<float> src = {1, 2, 3, 4};
  std::vector<float> dst(4, 0.0f);
  ShiftImage(src.data(), dst.data(), 1, 2, 2, 0, 0);
  EXPECT_EQ(dst, src);
}

TEST(AugmentTest, FlipMirrorsColumns) {
  std::vector<float> src = {1, 2, 3, 4, 5, 6};  // 1x2x3
  std::vector<float> dst(6, 0.0f);
  FlipImage(src.data(), dst.data(), 1, 2, 3);
  EXPECT_EQ(dst, (std::vector<float>{3, 2, 1, 6, 5, 4}));
}

TEST(AugmentTest, DoubleFlipIsIdentity) {
  std::vector<float> src = {1, 2, 3, 4, 5, 6, 7, 8};  // 2x2x2
  std::vector<float> once(8), twice(8);
  FlipImage(src.data(), once.data(), 2, 2, 2);
  FlipImage(once.data(), twice.data(), 2, 2, 2);
  EXPECT_EQ(twice, src);
}

Dataset SmallData() {
  Dataset d;
  d.images = Tensor::FromVector({2, 1, 2, 2}, {1, 2, 3, 4, 5, 6, 7, 8});
  d.labels = {0, 1};
  return d;
}

TEST(AugmentTest, OutputSizeAndLabels) {
  Rng rng(1);
  AugmentConfig cfg;
  cfg.copies = 3;
  Dataset out = AugmentDataset(SmallData(), cfg, rng);
  EXPECT_EQ(out.size(), 8);
  EXPECT_EQ(out.labels, (std::vector<int>{0, 1, 0, 1, 0, 1, 0, 1}));
}

TEST(AugmentTest, OriginalsComeFirstUnchanged) {
  Rng rng(2);
  AugmentConfig cfg;
  cfg.copies = 1;
  Dataset in = SmallData();
  Dataset out = AugmentDataset(in, cfg, rng);
  Tensor head = SliceRows(out.images, 0, 2);
  EXPECT_EQ(MaxAbsDiff(head, in.images), 0.0f);
}

TEST(AugmentTest, ZeroCopiesReturnsOriginalOnly) {
  Rng rng(3);
  AugmentConfig cfg;
  cfg.copies = 0;
  Dataset out = AugmentDataset(SmallData(), cfg, rng);
  EXPECT_EQ(out.size(), 2);
}

TEST(AugmentTest, DeterministicGivenSeed) {
  AugmentConfig cfg;
  cfg.copies = 2;
  cfg.noise = 0.1f;
  Rng a(9), b(9);
  Dataset out1 = AugmentDataset(SmallData(), cfg, a);
  Dataset out2 = AugmentDataset(SmallData(), cfg, b);
  EXPECT_EQ(MaxAbsDiff(out1.images, out2.images), 0.0f);
}

TEST(AugmentTest, NoiseChangesAugmentedCopies) {
  AugmentConfig cfg;
  cfg.copies = 1;
  cfg.max_shift = 0;
  cfg.horizontal_flip = false;
  cfg.noise = 0.5f;
  Rng rng(4);
  Dataset in = SmallData();
  Dataset out = AugmentDataset(in, cfg, rng);
  Tensor copies = SliceRows(out.images, 2, 4);
  EXPECT_GT(MaxAbsDiff(copies, in.images), 0.01f);
}

}  // namespace
}  // namespace poe

#include "core/volume.h"

#include <gtest/gtest.h>

#include <cmath>

#include "models/wrn.h"
#include "util/rng.h"

namespace poe {
namespace {

// Builds an untrained pool (volume accounting is weight-independent).
ExpertPool MakePool(int num_tasks, int classes_per_task) {
  WrnConfig lib_cfg;
  lib_cfg.num_classes = num_tasks * classes_per_task;
  lib_cfg.base_channels = 4;
  Rng rng(1);
  auto library = BuildLibraryPart(lib_cfg, rng);
  std::vector<std::shared_ptr<Sequential>> experts;
  for (int t = 0; t < num_tasks; ++t) {
    WrnConfig ecfg = lib_cfg;
    ecfg.ks = 0.25;
    ecfg.num_classes = classes_per_task;
    experts.push_back(BuildExpertPart(ecfg, lib_cfg.conv3_channels(), rng));
  }
  return ExpertPool(lib_cfg, 0.25,
                    ClassHierarchy::Uniform(num_tasks, classes_per_task),
                    std::move(library), std::move(experts));
}

TEST(VolumeTest, PoolTotalIsLibraryPlusExperts) {
  WrnConfig oracle_cfg;
  oracle_cfg.kc = 4;
  oracle_cfg.ks = 4;
  oracle_cfg.num_classes = 12;
  oracle_cfg.base_channels = 4;
  Rng rng(2);
  Wrn oracle(oracle_cfg, rng);
  ExpertPool pool = MakePool(4, 3);
  VolumeReport r = ComputeVolumeReport(oracle, pool);
  EXPECT_EQ(r.pool_total_bytes, r.library_bytes + r.experts_total_bytes);
  EXPECT_EQ(r.num_primitive_tasks, 4);
  EXPECT_GT(r.library_bytes, 0);
  EXPECT_GT(r.avg_expert_bytes, 0);
}

TEST(VolumeTest, AllSpecializedEstimateIsTwoToTheN) {
  WrnConfig oracle_cfg;
  oracle_cfg.num_classes = 12;
  oracle_cfg.base_channels = 4;
  Rng rng(3);
  Wrn oracle(oracle_cfg, rng);
  for (int n : {2, 5, 10}) {
    ExpertPool pool = MakePool(n, 2);
    VolumeReport r = ComputeVolumeReport(oracle, pool);
    EXPECT_DOUBLE_EQ(r.all_specialized_estimate_bytes,
                     std::ldexp(static_cast<double>(r.avg_expert_bytes), n))
        << "n=" << n;
  }
}

TEST(VolumeTest, EstimateExplodesExponentially) {
  // The paper's storage argument: 34 tasks => >= 1198 TB. Verify the
  // growth rate on our scaled pool.
  ExpertPool small = MakePool(4, 2);
  ExpertPool large = MakePool(12, 2);
  WrnConfig oracle_cfg;
  oracle_cfg.num_classes = 8;
  oracle_cfg.base_channels = 4;
  Rng rng(4);
  Wrn oracle(oracle_cfg, rng);
  WrnConfig oracle_cfg2 = oracle_cfg;
  oracle_cfg2.num_classes = 24;
  Wrn oracle2(oracle_cfg2, rng);
  const double small_est =
      ComputeVolumeReport(oracle, small).all_specialized_estimate_bytes;
  const double large_est =
      ComputeVolumeReport(oracle2, large).all_specialized_estimate_bytes;
  EXPECT_GT(large_est, 100.0 * small_est);
}

TEST(VolumeTest, ExpertsAreSmallerThanLibrary) {
  // With ks = 0.25 the conv4 branch is tiny compared to conv1..conv3.
  ExpertPool pool = MakePool(6, 3);
  WrnConfig oracle_cfg;
  oracle_cfg.num_classes = 18;
  oracle_cfg.base_channels = 4;
  Rng rng(5);
  Wrn oracle(oracle_cfg, rng);
  VolumeReport r = ComputeVolumeReport(oracle, pool);
  EXPECT_LT(r.avg_expert_bytes, r.library_bytes);
}

}  // namespace
}  // namespace poe

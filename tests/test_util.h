// Shared fixtures for training-level tests: a tiny dataset and tiny models
// so end-to-end tests stay fast.
#ifndef POE_TESTS_TEST_UTIL_H_
#define POE_TESTS_TEST_UTIL_H_

#include "data/synthetic.h"
#include "distill/trainer.h"
#include "models/wrn.h"

namespace poe {
namespace testutil {

/// 3 primitive tasks x 2 classes, 6x6 images, small but learnable.
inline SyntheticDataConfig TinyDataConfig() {
  SyntheticDataConfig cfg;
  cfg.name = "tiny-test";
  cfg.num_tasks = 3;
  cfg.classes_per_task = 2;
  cfg.height = 6;
  cfg.width = 6;
  cfg.train_per_class = 16;
  cfg.test_per_class = 8;
  cfg.noise = 0.4f;
  cfg.jitter = 1;
  cfg.seed = 77;
  return cfg;
}

/// A small oracle architecture for the tiny dataset.
inline WrnConfig TinyOracleConfig() {
  WrnConfig cfg;
  cfg.depth = 10;
  cfg.kc = 2.0;
  cfg.ks = 2.0;
  cfg.num_classes = 6;
  cfg.base_channels = 4;
  return cfg;
}

/// Library student: narrower version of the oracle.
inline WrnConfig TinyLibraryConfig() {
  WrnConfig cfg = TinyOracleConfig();
  cfg.kc = 1.0;
  cfg.ks = 1.0;
  return cfg;
}

/// Fast training options for tests.
inline TrainOptions FastTrainOptions(int epochs = 4) {
  TrainOptions opts;
  opts.epochs = epochs;
  opts.batch_size = 16;
  opts.lr = 0.05f;
  opts.seed = 5;
  return opts;
}

}  // namespace testutil
}  // namespace poe

#endif  // POE_TESTS_TEST_UTIL_H_

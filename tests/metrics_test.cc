#include "eval/metrics.h"

#include <gtest/gtest.h>

#include "eval/confidence.h"
#include "nn/linear.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace poe {
namespace {

// LogitFn that returns a fixed one-hot-ish logit per sample based on the
// (integer) value stored in the image.
LogitFn OracleByImageValue(int num_classes) {
  return [num_classes](const Tensor& images) {
    const int64_t batch = images.dim(0);
    const int64_t pixels = images.numel() / batch;
    Tensor logits = Tensor::Zeros({batch, num_classes});
    for (int64_t b = 0; b < batch; ++b) {
      const int cls =
          static_cast<int>(images.at(b * pixels)) % num_classes;
      logits.at(b * num_classes + cls) = 10.0f;
    }
    return logits;
  };
}

Dataset DataWithValues(const std::vector<int>& values,
                       const std::vector<int>& labels) {
  Dataset d;
  d.images = Tensor({static_cast<int64_t>(values.size()), 1, 1, 1});
  for (size_t i = 0; i < values.size(); ++i)
    d.images.at(i) = static_cast<float>(values[i]);
  d.labels = labels;
  return d;
}

TEST(MetricsTest, PerfectAccuracy) {
  Dataset d = DataWithValues({0, 1, 2}, {0, 1, 2});
  EXPECT_FLOAT_EQ(EvaluateAccuracy(OracleByImageValue(3), d), 1.0f);
}

TEST(MetricsTest, PartialAccuracy) {
  Dataset d = DataWithValues({0, 1, 2, 0}, {0, 1, 0, 1});
  EXPECT_FLOAT_EQ(EvaluateAccuracy(OracleByImageValue(3), d), 0.5f);
}

TEST(MetricsTest, EmptyDatasetGivesZero) {
  Dataset d;
  d.images = Tensor::Zeros({0, 1, 1, 1});
  EXPECT_FLOAT_EQ(EvaluateAccuracy(OracleByImageValue(3), d), 0.0f);
}

TEST(MetricsTest, TaskSpecificAccuracyRestrictsColumns) {
  // Oracle over 6 classes; task = {4, 5}; samples of classes 4 and 5.
  Dataset d = DataWithValues({4, 5, 4}, {4, 5, 5});
  const float acc =
      EvaluateTaskSpecificAccuracy(OracleByImageValue(6), d, {4, 5});
  EXPECT_NEAR(acc, 2.0f / 3.0f, 1e-6f);
}

TEST(MetricsTest, TaskSpecificIgnoresOutOfTaskLogits) {
  // A "generic" model that always puts huge mass on class 0, but within
  // task {1, 2} prefers the right one. Task-specific accuracy must be 1.
  LogitFn fn = [](const Tensor& images) {
    const int64_t batch = images.dim(0);
    Tensor logits = Tensor::Zeros({batch, 3});
    for (int64_t b = 0; b < batch; ++b) {
      logits.at(b * 3) = 100.0f;  // distractor class outside the task
      const int cls = static_cast<int>(images.at(b));
      logits.at(b * 3 + cls) = 5.0f;
    }
    return logits;
  };
  Dataset d = DataWithValues({1, 2}, {1, 2});
  EXPECT_FLOAT_EQ(EvaluateTaskSpecificAccuracy(fn, d, {1, 2}), 1.0f);
}

TEST(MetricsTest, ModelLogitsWrapsModule) {
  Rng rng(1);
  Linear lin(4, 2, rng);
  LogitFn fn = ModelLogits(lin);
  Tensor x = Tensor::Randn({3, 4}, rng);
  Tensor direct = lin.Forward(x, false);
  EXPECT_LT(MaxAbsDiff(fn(x), direct), 1e-7f);
}

TEST(ConfidenceTest, OverconfidentModelFillsTopBin) {
  Dataset ood = DataWithValues({0, 1, 2, 0}, {0, 0, 0, 0});
  ConfidenceHistogram h =
      ComputeConfidenceHistogram(OracleByImageValue(3), ood, 10);
  EXPECT_EQ(h.ModeBin(), 9);
  EXPECT_GT(h.mean_confidence, 0.99);
  EXPECT_NEAR(h.FractionAbove(0.9), 1.0, 1e-9);
}

TEST(ConfidenceTest, UniformModelFillsLowBin) {
  LogitFn uniform = [](const Tensor& images) {
    return Tensor::Zeros({images.dim(0), 4});
  };
  Dataset ood = DataWithValues({0, 1}, {0, 0});
  ConfidenceHistogram h = ComputeConfidenceHistogram(uniform, ood, 10);
  EXPECT_EQ(h.ModeBin(), 2);  // 1/4 confidence lands in bin [0.2, 0.3)
  EXPECT_NEAR(h.mean_confidence, 0.25, 1e-6);
}

TEST(ConfidenceTest, FrequenciesSumToOne) {
  Dataset ood = DataWithValues({0, 1, 2, 1, 0}, {0, 0, 0, 0, 0});
  ConfidenceHistogram h =
      ComputeConfidenceHistogram(OracleByImageValue(3), ood, 5);
  double total = 0;
  for (double f : h.relative_frequency) total += f;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_EQ(h.num_samples, 5);
}

TEST(ConfidenceTest, AsciiChartContainsTitle) {
  Dataset ood = DataWithValues({0}, {0});
  ConfidenceHistogram h =
      ComputeConfidenceHistogram(OracleByImageValue(3), ood, 4);
  EXPECT_NE(h.ToAsciiChart("my-title").find("my-title"), std::string::npos);
}

TEST(EceTest, PerfectlyCalibratedConfidentModel) {
  // Always right with ~1.0 confidence: ECE ~ 0.
  Dataset d = DataWithValues({0, 1, 2}, {0, 1, 2});
  EXPECT_LT(ExpectedCalibrationError(OracleByImageValue(3), d), 1e-3f);
}

TEST(EceTest, ConfidentButWrongModelHasHighEce) {
  Dataset d = DataWithValues({0, 1, 2}, {1, 2, 0});  // always wrong
  EXPECT_GT(ExpectedCalibrationError(OracleByImageValue(3), d), 0.9f);
}

}  // namespace
}  // namespace poe

#include "core/expert_store.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/query_service.h"
#include "distill/specialize.h"
#include "models/wrn.h"
#include "test_util.h"
#include "util/rng.h"

namespace poe {
namespace {

using testutil::FastTrainOptions;
using testutil::TinyDataConfig;
using testutil::TinyLibraryConfig;
using testutil::TinyOracleConfig;

WrnConfig SmallExpertConfig() {
  WrnConfig cfg;
  cfg.depth = 10;
  cfg.kc = 1.0;
  cfg.ks = 0.5;
  cfg.num_classes = 2;
  cfg.base_channels = 4;
  return cfg;
}

/// A store over `n` freshly initialized (untrained) expert heads — the
/// sharing machinery does not care how well the experts learned.
std::unique_ptr<ExpertStore> MakeStore(int n, Rng& rng) {
  auto store = std::make_unique<ExpertStore>();
  WrnConfig ecfg = SmallExpertConfig();
  for (int t = 0; t < n; ++t) {
    auto head = BuildExpertPart(ecfg, ecfg.conv3_channels(), rng);
    store->AddExpert(std::move(head), {2 * t, 2 * t + 1}, ecfg);
  }
  return store;
}

TEST(ExpertStoreTest, AcquireSharesLiveBranchByPointerIdentity) {
  Rng rng(1);
  auto store = MakeStore(3, rng);

  // "Composite {0,1}" then "composite {0,1,2}": the overlap must be the
  // SAME branch objects, and only expert 2 newly materializes.
  std::vector<ExpertBranchHandle> first = {
      store->Acquire(0).ValueOrDie(), store->Acquire(1).ValueOrDie()};
  std::vector<ExpertBranchHandle> second = {store->Acquire(0).ValueOrDie(),
                                            store->Acquire(1).ValueOrDie(),
                                            store->Acquire(2).ValueOrDie()};
  EXPECT_EQ(first[0].get(), second[0].get());
  EXPECT_EQ(first[1].get(), second[1].get());

  ExpertStoreStats stats = store->stats();
  EXPECT_EQ(stats.expert_misses, 3);  // 0, 1, 2 each materialized once
  EXPECT_EQ(stats.expert_hits, 2);    // 0 and 1 reused by the second set
  EXPECT_EQ(stats.experts_referenced, 3);
}

TEST(ExpertStoreTest, SharedBytesSavedIsExactlyTheHitBytes) {
  Rng rng(2);
  auto store = MakeStore(2, rng);

  auto a = store->Acquire(0).ValueOrDie();
  const int64_t bytes0 = HeldStateBytes(*a->head);
  ASSERT_GT(bytes0, 0);
  EXPECT_EQ(store->stats().shared_bytes_saved, 0);  // no sharing yet

  auto b = store->Acquire(0).ValueOrDie();  // hit
  auto c = store->Acquire(1).ValueOrDie();  // miss
  auto d = store->Acquire(0).ValueOrDie();  // hit
  ExpertStoreStats stats = store->stats();
  EXPECT_EQ(stats.expert_hits + stats.expert_misses, 4);
  EXPECT_EQ(stats.shared_bytes_saved, 2 * bytes0);
}

// Pack-once serving: materialization builds the expert's persistent
// packed GEMM panels exactly once, composites sharing the expert share
// ONE packed form (by module pointer identity), and the byte counters
// account the packed bytes without double-counting.
TEST(ExpertStoreTest, MaterializationPrepacksOnceAndSharesPackedBytes) {
  Rng rng(7);
  auto store = MakeStore(2, rng);

  auto a = store->Acquire(0).ValueOrDie();
  const int64_t packed = a->head->PackedWeightBytes();
  EXPECT_GT(packed, 0);  // Acquire materialization prepacked the branch
  const int64_t bytes0 = HeldStateBytes(*a->head);
  EXPECT_GT(bytes0, packed);
  EXPECT_EQ(store->stats().referenced_bytes, bytes0);

  // A second composite acquiring the same expert shares the same packed
  // form — no re-pack, and shared_bytes_saved charges the full held bytes
  // (packed form included) exactly once.
  auto b = store->Acquire(0).ValueOrDie();
  EXPECT_EQ(a->head.get(), b->head.get());
  EXPECT_EQ(a->head->PackedWeightBytes(), packed);
  ExpertStoreStats stats = store->stats();
  EXPECT_EQ(stats.shared_bytes_saved, bytes0);
  EXPECT_EQ(stats.referenced_bytes, bytes0);  // one packed copy resident

  // Releasing everything and re-acquiring finds the panels already built:
  // byte accounting is stable across re-materialization.
  a.reset();
  b.reset();
  auto c = store->Acquire(0).ValueOrDie();
  EXPECT_EQ(c->head->PackedWeightBytes(), packed);
  EXPECT_EQ(store->stats().referenced_bytes, bytes0);
}

TEST(ExpertStoreTest, ReleasingLastHandleDropsTheReference) {
  Rng rng(3);
  auto store = MakeStore(2, rng);

  const ExpertBranch* raw = nullptr;
  {
    auto handle = store->Acquire(0).ValueOrDie();
    raw = handle.get();
    EXPECT_EQ(store->stats().experts_referenced, 1);
    EXPECT_GT(store->ReferencedBytes(), 0);
  }
  // Last composite gone: the branch is released (masters stay).
  EXPECT_EQ(store->stats().experts_referenced, 0);
  EXPECT_EQ(store->ReferencedBytes(), 0);

  // A fresh acquire re-materializes (a new object; counted as a miss).
  auto again = store->Acquire(0).ValueOrDie();
  ExpertStoreStats stats = store->stats();
  EXPECT_EQ(stats.expert_misses, 2);
  EXPECT_EQ(stats.expert_hits, 0);
  (void)raw;  // the old pointer value may even be reused; no aliasing claim
}

TEST(ExpertStoreTest, ReferencedBytesScaleWithDistinctExpertsNotAcquires) {
  Rng rng(4);
  auto store = MakeStore(4, rng);

  std::vector<ExpertBranchHandle> held;
  for (int round = 0; round < 5; ++round) {
    for (int t = 0; t < 2; ++t) held.push_back(store->Acquire(t).ValueOrDie());
  }
  // 10 acquires over 2 distinct experts: footprint is 2 experts' bytes.
  const int64_t two = store->ReferencedBytes();
  held.push_back(store->Acquire(2).ValueOrDie());
  const int64_t three = store->ReferencedBytes();
  EXPECT_GT(two, 0);
  EXPECT_GT(three, two);
  EXPECT_EQ(store->stats().experts_referenced, 3);
}

TEST(ExpertStoreTest, UnknownIdIsOutOfRange) {
  Rng rng(5);
  auto store = MakeStore(2, rng);
  EXPECT_EQ(store->Acquire(-1).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(store->Acquire(2).status().code(), StatusCode::kOutOfRange);
}

// ---------------------------------------------------------------- service
// Service-level behavior over a real (trained) pool: the cache, the pool
// and the store must compose so that overlapping composites share branch
// objects and eviction never frees a still-referenced expert.

ExpertPool BuildPool() {
  static SyntheticDataset* data =
      new SyntheticDataset(GenerateSyntheticDataset(TinyDataConfig()));
  static Wrn* oracle = [] {
    Rng rng(41);
    Wrn* w = new Wrn(TinyOracleConfig(), rng);
    TrainScratch(*w, data->train, FastTrainOptions(4));
    return w;
  }();
  PoeBuildConfig cfg;
  cfg.library_config = TinyLibraryConfig();
  cfg.expert_ks = 0.5;
  cfg.library_options = FastTrainOptions(2);
  cfg.expert_options = FastTrainOptions(2);
  Rng rng(42);
  return ExpertPool::Preprocess(ModelLogits(*oracle), *data, cfg, rng);
}

TEST(ExpertStoreServiceTest, OverlappingCompositesShareBranchObjects) {
  ModelQueryService service(BuildPool(), /*cache_capacity=*/8);
  auto m12 = service.Query({0, 1}).ValueOrDie();
  auto m123 = service.Query({0, 1, 2}).ValueOrDie();

  ASSERT_EQ(m12->num_branches(), 2);
  ASSERT_EQ(m123->num_branches(), 3);
  // Branch order is sorted task ids, so the overlap lines up pairwise.
  EXPECT_EQ(m12->branch_handle(0).get(), m123->branch_handle(0).get());
  EXPECT_EQ(m12->branch_handle(1).get(), m123->branch_handle(1).get());

  ServeStats stats = service.serve_stats();
  EXPECT_EQ(stats.expert_misses, 3);
  EXPECT_EQ(stats.expert_hits, 2);
  EXPECT_GT(stats.shared_bytes_saved, 0);
  // Model-granularity accounting double-charges the trunk and the shared
  // experts; the deduplicated footprint is strictly smaller.
  EXPECT_GT(stats.resident_model_bytes,
            stats.trunk_bytes + stats.referenced_expert_bytes);
  EXPECT_GT(stats.resident_dedup_saved_bytes(), 0);
}

TEST(ExpertStoreServiceTest, EvictingACompositeKeepsSharedExpertsAlive) {
  // Capacity 1: the second query evicts the first composite.
  ModelQueryService service(BuildPool(), /*cache_capacity=*/1);
  auto m01 = service.Query({0, 1}).ValueOrDie();
  auto m12 = service.Query({1, 2}).ValueOrDie();
  EXPECT_EQ(service.cache_size(), 1u);

  // The evicted composite still serves (clients may hold it), and its
  // expert-1 branch is the one the resident composite shares.
  Rng rng(7);
  Tensor x = Tensor::Randn({2, 3, 6, 6}, rng);
  Tensor logits = m01->Logits(x);
  EXPECT_EQ(logits.dim(1), 4);
  EXPECT_EQ(m01->branch_handle(1).get(), m12->branch_handle(0).get());

  // Drop the evicted model: expert 0 loses its last reference, experts 1
  // and 2 stay referenced through the resident composite.
  m01.reset();
  ServeStats stats = service.serve_stats();
  EXPECT_EQ(stats.experts_referenced, 2);
}

TEST(ExpertStoreServiceTest, PoolCopiesGetIndependentStoresOverSharedMasters) {
  ExpertPool pool = BuildPool();
  ExpertPool copy = pool;
  // Distinct stores (per-copy accounting, AddExpert cannot desync the
  // other copy) over the same master modules (weights never duplicated).
  EXPECT_NE(pool.expert_store().get(), copy.expert_store().get());
  EXPECT_EQ(pool.expert(0).get(), copy.expert(0).get());

  TaskModel model = pool.Query({0, 1}).ValueOrDie();
  EXPECT_EQ(pool.expert_store()->stats().expert_misses, 2);
  EXPECT_EQ(copy.expert_store()->stats().expert_misses, 0);
  (void)model;
}

TEST(ExpertStoreServiceTest, Int8PoolReportsInt8ExpertBytes) {
  ModelQueryService f32(BuildPool(), 4);
  ModelQueryService i8(BuildPool(), 4, ServingPrecision::kInt8);
  auto mf = f32.Query({0, 1}).ValueOrDie();
  auto mi = i8.Query({0, 1}).ValueOrDie();
  ServeStats sf = f32.serve_stats();
  ServeStats si = i8.serve_stats();
  ASSERT_GT(sf.referenced_expert_bytes, 0);
  ASSERT_GT(si.referenced_expert_bytes, 0);
  // Packed int8 weights (plus scales) are well under the f32 footprint.
  EXPECT_LT(si.referenced_expert_bytes, sf.referenced_expert_bytes);
  EXPECT_EQ(mi->serving_precision(), ServingPrecision::kInt8);
  (void)mf;
}

}  // namespace
}  // namespace poe

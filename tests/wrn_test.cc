#include "models/wrn.h"

#include <gtest/gtest.h>

#include "models/cost.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace poe {
namespace {

WrnConfig SmallConfig() {
  WrnConfig cfg;
  cfg.depth = 10;
  cfg.kc = 1.0;
  cfg.ks = 1.0;
  cfg.num_classes = 6;
  cfg.base_channels = 4;
  return cfg;
}

TEST(WrnConfigTest, ChannelFormulas) {
  WrnConfig cfg = SmallConfig();
  EXPECT_EQ(cfg.blocks_per_group(), 1);
  EXPECT_EQ(cfg.conv1_channels(), 4);
  EXPECT_EQ(cfg.conv2_channels(), 4);
  EXPECT_EQ(cfg.conv3_channels(), 8);
  EXPECT_EQ(cfg.conv4_channels(), 16);
}

TEST(WrnConfigTest, FractionalWideningRoundsAndClamps) {
  WrnConfig cfg = SmallConfig();
  cfg.ks = 0.25;  // 4 * 4 * 0.25 = 4
  EXPECT_EQ(cfg.conv4_channels(), 4);
  cfg.ks = 0.01;  // would round to 0; clamped to 1
  EXPECT_EQ(cfg.conv4_channels(), 1);
  cfg.kc = 2.0;
  EXPECT_EQ(cfg.conv2_channels(), 8);
  EXPECT_EQ(cfg.conv3_channels(), 16);
}

TEST(WrnConfigTest, ToStringMatchesPaperNotation) {
  WrnConfig cfg = SmallConfig();
  cfg.depth = 16;
  cfg.kc = 1;
  cfg.ks = 0.25;
  EXPECT_EQ(cfg.ToString(), "WRN-16-(1, 0.25)");
}

TEST(WrnTest, ForwardShape) {
  Rng rng(1);
  Wrn wrn(SmallConfig(), rng);
  Tensor x = Tensor::Randn({2, 3, 8, 8}, rng);
  Tensor y = wrn.Forward(x, false);
  EXPECT_EQ(y.dim(0), 2);
  EXPECT_EQ(y.dim(1), 6);
}

TEST(WrnTest, DeeperNetworkBuilds) {
  Rng rng(1);
  WrnConfig cfg = SmallConfig();
  cfg.depth = 16;  // 2 blocks per group
  Wrn wrn(cfg, rng);
  Tensor x = Tensor::Randn({1, 3, 8, 8}, rng);
  EXPECT_EQ(wrn.Forward(x, false).dim(1), 6);
}

TEST(WrnTest, LibraryAndExpertSplitComposes) {
  Rng rng(2);
  WrnConfig cfg = SmallConfig();
  Wrn wrn(cfg, rng);
  Tensor x = Tensor::Randn({2, 3, 8, 8}, rng);
  Tensor whole = wrn.Forward(x, false);
  Tensor via_parts = wrn.expert_part()->Forward(
      wrn.library_part()->Forward(x, false), false);
  EXPECT_LT(MaxAbsDiff(whole, via_parts), 1e-6f);
}

TEST(WrnTest, LibraryFeatureMapShape) {
  Rng rng(2);
  WrnConfig cfg = SmallConfig();
  Wrn wrn(cfg, rng);
  Tensor x = Tensor::Randn({2, 3, 8, 8}, rng);
  Tensor feat = wrn.library_part()->Forward(x, false);
  EXPECT_EQ(feat.dim(1), cfg.conv3_channels());
  EXPECT_EQ(feat.dim(2), 4);  // one stride-2 stage inside conv3
  EXPECT_EQ(feat.dim(3), 4);
}

TEST(WrnTest, StandaloneExpertPartMatchesEmbedded) {
  Rng rng(3);
  WrnConfig cfg = SmallConfig();
  cfg.ks = 0.5;
  cfg.num_classes = 3;
  auto head = BuildExpertPart(cfg, cfg.conv3_channels(), rng);
  Tensor feat = Tensor::Randn({2, cfg.conv3_channels(), 4, 4}, rng);
  Tensor y = head->Forward(feat, false);
  EXPECT_EQ(y.dim(1), 3);
}

TEST(WrnTest, ParamCountMatchesCostModel) {
  Rng rng(4);
  WrnConfig cfg = SmallConfig();
  Wrn wrn(cfg, rng);
  ModelCost cost = CostOfWrn(cfg, 8, 8);
  EXPECT_EQ(wrn.NumParams(), cost.params);
}

TEST(WrnTest, PartsParamCountsMatchCostModel) {
  Rng rng(5);
  WrnConfig cfg = SmallConfig();
  cfg.ks = 0.25;
  Wrn wrn(cfg, rng);
  int64_t h = 0, w = 0;
  ModelCost lib = CostOfLibraryPart(cfg, 8, 8, &h, &w);
  ModelCost exp = CostOfExpertPart(cfg, cfg.conv3_channels(), h, w);
  EXPECT_EQ(wrn.library_part()->NumParams(), lib.params);
  EXPECT_EQ(wrn.expert_part()->NumParams(), exp.params);
}

TEST(WrnTest, WiderModelHasMoreParams) {
  Rng rng(6);
  WrnConfig small = SmallConfig();
  WrnConfig wide = small;
  wide.kc = 2.0;
  wide.ks = 2.0;
  Wrn a(small, rng), b(wide, rng);
  EXPECT_GT(b.NumParams(), 3 * a.NumParams());
}

}  // namespace
}  // namespace poe

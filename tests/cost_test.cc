#include "models/cost.h"

#include <gtest/gtest.h>

#include <tuple>

#include "util/rng.h"

namespace poe {
namespace {

// (depth, kc, ks, num_classes, base)
using CostCase = std::tuple<int, double, double, int, int>;

class CostParamTest : public ::testing::TestWithParam<CostCase> {};

TEST_P(CostParamTest, ParamsMatchActualModel) {
  const auto [depth, kc, ks, classes, base] = GetParam();
  WrnConfig cfg;
  cfg.depth = depth;
  cfg.kc = kc;
  cfg.ks = ks;
  cfg.num_classes = classes;
  cfg.base_channels = base;
  Rng rng(1);
  Wrn wrn(cfg, rng);
  EXPECT_EQ(CostOfWrn(cfg, 8, 8).params, wrn.NumParams())
      << cfg.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CostParamTest,
    ::testing::Values(CostCase{10, 1, 1, 10, 4}, CostCase{10, 1, 0.25, 5, 8},
                      CostCase{10, 2, 2, 100, 8}, CostCase{16, 1, 1, 10, 4},
                      CostCase{16, 2, 0.5, 20, 8},
                      CostCase{10, 4, 4, 100, 8},
                      CostCase{22, 1, 1, 10, 4}));

TEST(CostTest, FlopsArePositiveAndScaleWithWidth) {
  WrnConfig narrow;
  narrow.num_classes = 10;
  WrnConfig wide = narrow;
  wide.kc = 2;
  wide.ks = 2;
  const int64_t f_narrow = CostOfWrn(narrow, 8, 8).flops;
  const int64_t f_wide = CostOfWrn(wide, 8, 8).flops;
  EXPECT_GT(f_narrow, 0);
  EXPECT_GT(f_wide, 2 * f_narrow);
}

TEST(CostTest, FlopsScaleQuadraticallyWithResolution) {
  WrnConfig cfg;
  cfg.num_classes = 10;
  const int64_t f8 = CostOfWrn(cfg, 8, 8).flops;
  const int64_t f16 = CostOfWrn(cfg, 16, 16).flops;
  EXPECT_GT(f16, 3 * f8);
  EXPECT_LT(f16, 5 * f8);
}

// The paper's Section 5.1 size argument: n(Q) branched conv4 blocks grow
// parameters linearly in n(Q), while one conv4 block with n(Q) times the
// channels grows quadratically.
TEST(CostTest, BranchedGrowsLinearlyMonolithicQuadratically) {
  WrnConfig lib;
  lib.num_classes = 100;
  lib.base_channels = 8;

  WrnConfig expert = lib;
  expert.ks = 0.25;
  expert.num_classes = 5;

  auto branch_params = [&](int n) {
    std::vector<WrnConfig> experts(n, expert);
    return CostOfBranched(lib, experts, 8, 8).params;
  };
  int64_t h, w;
  const int64_t lib_params = CostOfLibraryPart(lib, 8, 8, &h, &w).params;
  const int64_t one_branch = branch_params(1) - lib_params;
  const int64_t five_branches = branch_params(5) - lib_params;
  // Linear growth in the number of branches.
  EXPECT_EQ(five_branches, 5 * one_branch);

  // Monolithic student with ks = 0.25 * n has a conv4 whose params grow
  // superlinearly (~quadratic in width).
  auto mono_conv4 = [&](int n) {
    WrnConfig m = lib;
    m.ks = 0.25 * n;
    m.num_classes = 5 * n;
    return CostOfExpertPart(m, lib.conv3_channels(), h, w).params;
  };
  const int64_t mono1 = mono_conv4(1);
  const int64_t mono5 = mono_conv4(5);
  EXPECT_GT(mono5, 5 * mono1);  // superlinear
}

TEST(CostTest, BranchedRejectsMismatchedKc) {
  WrnConfig lib;
  lib.num_classes = 10;
  WrnConfig expert = lib;
  expert.kc = 2.0;  // different conv3 width: incompatible with the library
  EXPECT_DEATH(CostOfBranched(lib, {expert}, 8, 8), "kc");
}

TEST(CostTest, ModelCostAddition) {
  ModelCost a{100, 10}, b{50, 5};
  ModelCost c = a + b;
  EXPECT_EQ(c.flops, 150);
  EXPECT_EQ(c.params, 15);
}

}  // namespace
}  // namespace poe

// Property-style sweeps of BatchNorm2d behaviours that the WRN training
// pipeline depends on.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <tuple>

#include "nn/batchnorm.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace poe {
namespace {

// (channels, batch, hw_side)
using BnCase = std::tuple<int, int, int>;

class BatchNormSweep : public ::testing::TestWithParam<BnCase> {};

TEST_P(BatchNormSweep, TrainingOutputIsStandardized) {
  const auto [channels, batch, side] = GetParam();
  BatchNorm2d bn(channels);
  Rng rng(channels * 7 + batch);
  Tensor x = Tensor::Randn({batch, channels, side, side}, rng, 2.5f);
  Tensor y = bn.Forward(x, true);
  const int64_t hw = side * side;
  for (int c = 0; c < channels; ++c) {
    double sum = 0, sq = 0;
    for (int b = 0; b < batch; ++b) {
      for (int64_t i = 0; i < hw; ++i) {
        const float v = y.at((b * channels + c) * hw + i);
        sum += v;
        sq += v * v;
      }
    }
    const double n = batch * hw;
    EXPECT_NEAR(sum / n, 0.0, 1e-3);
    EXPECT_NEAR(sq / n, 1.0, 2e-2);
  }
}

TEST_P(BatchNormSweep, EvalIsDeterministicAndBatchIndependent) {
  const auto [channels, batch, side] = GetParam();
  BatchNorm2d bn(channels);
  Rng rng(3);
  // Prime running stats.
  for (int i = 0; i < 20; ++i) {
    bn.Forward(Tensor::Randn({batch, channels, side, side}, rng), true);
  }
  // Eval output for a sample must not depend on its batch companions.
  Tensor single = Tensor::Randn({1, channels, side, side}, rng);
  Tensor alone = bn.Forward(single, false);

  Tensor batch2({2, channels, static_cast<int64_t>(side),
                 static_cast<int64_t>(side)});
  std::memcpy(batch2.data(), single.data(), sizeof(float) * single.numel());
  Tensor other = Tensor::Randn({1, channels, side, side}, rng);
  std::memcpy(batch2.data() + single.numel(), other.data(),
              sizeof(float) * other.numel());
  Tensor together = bn.Forward(batch2, false);
  Tensor first_row = SliceRows(together, 0, 1);
  EXPECT_LT(MaxAbsDiff(alone, first_row), 1e-6f);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BatchNormSweep,
                         ::testing::Values(BnCase{1, 4, 2}, BnCase{3, 8, 4},
                                           BnCase{8, 16, 2},
                                           BnCase{2, 32, 3}));

TEST(BatchNormPropertyTest, RunningStatsConvergeToDataMoments) {
  BatchNorm2d bn(1, 1e-5f, 0.1f);
  Rng rng(5);
  for (int i = 0; i < 400; ++i) {
    Tensor x = Tensor::Randn({32, 1, 2, 2}, rng, 3.0f);
    for (int64_t j = 0; j < x.numel(); ++j) x.at(j) += 7.0f;
    bn.Forward(x, true);
  }
  EXPECT_NEAR(bn.running_mean().at(0), 7.0f, 0.2f);
  EXPECT_NEAR(bn.running_var().at(0), 9.0f, 0.8f);
}

TEST(BatchNormPropertyTest, EvalWithoutTrainingUsesInitStats) {
  // Fresh BN in eval mode: running mean 0, var 1 => near-identity.
  BatchNorm2d bn(2);
  Rng rng(6);
  Tensor x = Tensor::Randn({4, 2, 3, 3}, rng);
  Tensor y = bn.Forward(x, false);
  EXPECT_LT(MaxAbsDiff(x, y), 1e-4f);
}

}  // namespace
}  // namespace poe

// Multi-node expert pool over the in-process loopback transport: remote
// fetch + install-once caching, replica fallback, drain semantics,
// kill-a-node failure detection and reintegration, and the seeded fault
// matrix (every future resolves, statuses stay inside the whitelist,
// counters reconcile).
#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <vector>

#include "cluster/cluster_node.h"
#include "cluster/placement.h"
#include "eval/metrics.h"
#include "test_util.h"
#include "util/fault.h"

namespace poe {
namespace {

using testutil::FastTrainOptions;
using testutil::TinyDataConfig;
using testutil::TinyLibraryConfig;
using testutil::TinyOracleConfig;

constexpr int kNumTasks = 3;

ExpertPool BuildPool() {
  static SyntheticDataset* data =
      new SyntheticDataset(GenerateSyntheticDataset(TinyDataConfig()));
  static Wrn* oracle = [] {
    Rng rng(41);
    Wrn* w = new Wrn(TinyOracleConfig(), rng);
    TrainScratch(*w, data->train, FastTrainOptions(4));
    return w;
  }();
  PoeBuildConfig cfg;
  cfg.library_config = TinyLibraryConfig();
  cfg.expert_ks = 0.5;
  cfg.library_options = FastTrainOptions(2);
  cfg.expert_options = FastTrainOptions(2);
  Rng rng(42);
  ExpertPool pool = ExpertPool::Preprocess(ModelLogits(*oracle), *data, cfg, rng);
  // Tight, fast retries so dead-peer failures resolve in milliseconds.
  pool.set_retry_policy({2, 0.1, 2.0, 0.5});
  return pool;
}

Tensor MakeInput(int rows, int seed) {
  Rng rng(seed);
  return Tensor::Randn({rows, 3, 6, 6}, rng);
}

MembershipView ViewOf(int num_nodes) {
  MembershipView view;
  for (int id = 0; id < num_nodes; ++id) {
    view.nodes.push_back(
        {id, "127.0.0.1", 9100 + id, 9200 + id, NodeState::kOnline});
  }
  return view;
}

std::unique_ptr<ClusterNode> MakeNode(int id, int num_nodes, int replication,
                                      LoopbackTransport& transport) {
  ClusterNodeOptions options;
  options.node_id = id;
  options.placement.replication = replication;
  options.serve.num_workers = 2;
  auto node = std::make_unique<ClusterNode>(BuildPool(), ViewOf(num_nodes),
                                            std::move(options));
  node->SetTransport(&transport);
  transport.Register(id, node.get());
  EXPECT_TRUE(node->Start().ok());
  return node;
}

bool Whitelisted(const Status& s) {
  return s.ok() || s.code() == StatusCode::kUnavailable ||
         s.code() == StatusCode::kDeadlineExceeded ||
         s.code() == StatusCode::kResourceExhausted;
}

void ExpectFetchIdentities(ClusterNode& node) {
  const ServeStats s = node.stats();
  EXPECT_EQ(s.remote_fetch_requests,
            s.remote_fetch_ok + s.remote_fetch_failed);
  EXPECT_LE(s.remote_fetch_replica, s.remote_fetch_ok);
  EXPECT_LE(s.ping_failures, s.pings_sent);
}

TEST(ClusterTest, QueriesFetchMissingExpertsFromPeersAndCacheThem) {
  LoopbackTransport transport;
  auto node0 = MakeNode(0, 2, /*replication=*/1, transport);
  auto node1 = MakeNode(1, 2, /*replication=*/1, transport);

  // Replication 1 over 2 nodes: each node shed the experts the other
  // owns, so between them exactly kNumTasks masters are non-resident.
  EXPECT_EQ(node0->stats().experts_nonresident +
                node1->stats().experts_nonresident,
            kNumTasks);

  const std::vector<int> all = {0, 1, 2};
  ASSERT_TRUE(node0->service().Query(all).ok());
  ASSERT_TRUE(node1->service().Query(all).ok());

  // Every shed expert was fetched exactly once and installed as a local
  // master — both nodes now hold the full pool.
  EXPECT_EQ(node0->stats().experts_nonresident, 0);
  EXPECT_EQ(node1->stats().experts_nonresident, 0);
  const ServeStats s0 = node0->stats();
  const ServeStats s1 = node1->stats();
  EXPECT_EQ(s0.remote_fetch_ok + s1.remote_fetch_ok, kNumTasks);
  EXPECT_EQ(s0.peer_fetches_served + s1.peer_fetches_served, kNumTasks);
  ExpectFetchIdentities(*node0);
  ExpectFetchIdentities(*node1);

  // Loopback fetches alias the owner's master: no duplicate weights.
  for (int t = 0; t < kNumTasks; ++t) {
    EXPECT_EQ(node0->service().pool().expert(t).get(),
              node1->service().pool().expert(t).get());
  }

  // Re-querying hits the flight cache: no new fetch traffic.
  ASSERT_TRUE(node0->service().Query(all).ok());
  EXPECT_EQ(node0->stats().remote_fetch_requests, s0.remote_fetch_requests);
}

TEST(ClusterTest, FetchFallsBackToTheReplicaOwnerWhenThePrimaryIsDown) {
  LoopbackTransport transport;
  auto node0 = MakeNode(0, 3, /*replication=*/2, transport);
  auto node1 = MakeNode(1, 3, /*replication=*/2, transport);
  auto node2 = MakeNode(2, 3, /*replication=*/2, transport);
  ClusterNode* nodes[] = {node0.get(), node1.get(), node2.get()};

  // With 2 owners among 3 nodes, every expert has exactly one non-owner;
  // pick any (expert, non-owner) pair and kill the expert's PRIMARY.
  PlacementConfig placement;
  const int expert = 0;
  const std::vector<int> owners = ExpertOwners(expert, {0, 1, 2}, placement);
  ASSERT_EQ(owners.size(), 2u);
  int querier = 0;
  for (int id = 0; id < 3; ++id) {
    if (id != owners[0] && id != owners[1]) querier = id;
  }
  transport.Crash(owners[0]);

  ASSERT_TRUE(nodes[querier]->service().Query({expert}).ok());
  const ServeStats s = nodes[querier]->stats();
  EXPECT_EQ(s.remote_fetch_ok, 1);
  EXPECT_EQ(s.remote_fetch_replica, 1);
  ExpectFetchIdentities(*nodes[querier]);
}

TEST(ClusterTest, DrainingNodeStillAnswersFetches) {
  LoopbackTransport transport;
  auto node0 = MakeNode(0, 2, /*replication=*/1, transport);
  auto node1 = MakeNode(1, 2, /*replication=*/1, transport);

  // Admin drains node 1 on node 0's view; one gossip round spreads it.
  ASSERT_TRUE(node0->RequestTransition(1, NodeState::kDraining).ok());
  node0->GossipOnce();
  EXPECT_EQ(node1->SelfState(), NodeState::kDraining);

  // DRAINING serves fetches: its experts are still the owned copies.
  ASSERT_TRUE(node0->service().Query({0, 1, 2}).ok());
  EXPECT_EQ(node0->stats().remote_fetch_failed, 0);
  EXPECT_EQ(node0->stats().experts_nonresident, 0);
}

TEST(ClusterTest, KilledNodeIsDetectedAndReintegratesCleanly) {
  LoopbackTransport transport;
  auto node0 = MakeNode(0, 2, /*replication=*/1, transport);
  auto node1 = MakeNode(1, 2, /*replication=*/1, transport);
  const uint64_t epoch0 = node0->membership().epoch();

  transport.Crash(1);

  // Queries needing node 1's experts resolve inside the whitelist (no
  // owner reachable -> kUnavailable through the retry stack, or a
  // deadline expiry - never a hang, never a foreign status).
  int failed = 0;
  for (int t = 0; t < kNumTasks; ++t) {
    if (node0->OwnsExpert(t)) continue;
    PoolRequest request;
    request.task_ids = {t};
    request.input = MakeInput(1, 700 + t);
    request.deadline_ms = 500;
    auto result = node0->service().Query(request);
    EXPECT_FALSE(result.ok());
    EXPECT_TRUE(Whitelisted(result.status()))
        << result.status().ToString();
    ++failed;
  }
  ASSERT_GT(failed, 0) << "placement left node 0 owning every expert";
  EXPECT_GT(node0->stats().remote_fetch_failed, 0);

  // Failure detection: consecutive failed pings mark the peer OFFLINE
  // and burn an epoch.
  for (int round = 0; round < 2; ++round) node0->GossipOnce();
  EXPECT_EQ(node0->view().Find(1)->state, NodeState::kOffline);
  EXPECT_GT(node0->membership().epoch(), epoch0);
  EXPECT_GE(node0->stats().ping_failures, 2);

  // The node comes back: its own gossip pulls the view that declared it
  // dead, and self-defense walks it OFFLINE -> REINTEGRATING -> ONLINE at
  // fresh epochs that win the next exchange.
  transport.Revive(1);
  node1->GossipOnce();
  EXPECT_EQ(node1->SelfState(), NodeState::kOnline);
  node0->GossipOnce();
  EXPECT_EQ(node0->view().Find(1)->state, NodeState::kOnline);
  EXPECT_EQ(node0->view().Fingerprint(), node1->view().Fingerprint());

  // Fully healed: the failed composites now assemble.
  for (int t = 0; t < kNumTasks; ++t) {
    EXPECT_TRUE(node0->service().Query({t}).ok());
  }
  ExpectFetchIdentities(*node0);
  ExpectFetchIdentities(*node1);
}

TEST(ClusterTest, SeededFaultMatrixKeepsEveryFutureInsideTheWhitelist) {
  LoopbackTransport transport;
  auto node0 = MakeNode(0, 2, /*replication=*/1, transport);
  auto node1 = MakeNode(1, 2, /*replication=*/1, transport);
  ClusterNode* nodes[] = {node0.get(), node1.get()};

  const std::vector<std::vector<int>> composites = {
      {0}, {1}, {2}, {0, 1}, {1, 2}, {0, 1, 2}};
  {
    ScopedFaultInjection faults(
        "cluster.fetch=unavail:prob:0.4;cluster.gossip=unavail:prob:0.5",
        /*seed=*/7);
    std::vector<std::future<InferenceResponse>> futures;
    for (int i = 0; i < 48; ++i) {
      ClusterNode* node = nodes[i % 2];
      PoolRequest request;
      request.task_ids = composites[i % composites.size()];
      request.input = MakeInput(1, 900 + i);
      request.deadline_ms = 1000;
      futures.push_back(node->server().Submit(std::move(request)));
      if (i % 8 == 7) {
        node0->GossipOnce();
        node1->GossipOnce();
      }
    }
    for (auto& f : futures) {
      const InferenceResponse response = f.get();  // must resolve
      EXPECT_TRUE(Whitelisted(response.status))
          << response.status.ToString();
    }
    EXPECT_GT(
        FaultInjector::Global().SiteStats("cluster.fetch").hits +
            FaultInjector::Global().SiteStats("cluster.gossip").hits,
        0);
  }

  // Post-fault convergence: bounded gossip rounds bring both nodes back
  // ONLINE on one fingerprint (self-defense undoes spurious OFFLINEs).
  for (int round = 0; round < 6; ++round) {
    node0->GossipOnce();
    node1->GossipOnce();
  }
  EXPECT_EQ(node0->view().Find(0)->state, NodeState::kOnline);
  EXPECT_EQ(node0->view().Find(1)->state, NodeState::kOnline);
  EXPECT_EQ(node0->view().Fingerprint(), node1->view().Fingerprint());

  // Clean air: every composite assembles on both nodes.
  for (ClusterNode* node : nodes) {
    for (const auto& q : composites) {
      EXPECT_TRUE(node->service().Query(q).ok());
    }
  }

  // Reconciliation after drain: terminal buckets partition submissions,
  // fetch attempts partition into ok/failed.
  for (ClusterNode* node : nodes) {
    node->Stop();
    const ServeStats s = node->stats();
    EXPECT_EQ(s.submitted, s.completed + s.rejected + s.deadline_expired);
    ExpectFetchIdentities(*node);
  }
}

}  // namespace
}  // namespace poe

#include "serve/inference_server.h"

#include <gtest/gtest.h>

#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "distill/specialize.h"
#include "eval/metrics.h"
#include "test_util.h"

namespace poe {
namespace {

using testutil::FastTrainOptions;
using testutil::TinyDataConfig;
using testutil::TinyLibraryConfig;
using testutil::TinyOracleConfig;

ExpertPool BuildPool() {
  static SyntheticDataset* data =
      new SyntheticDataset(GenerateSyntheticDataset(TinyDataConfig()));
  static Wrn* oracle = [] {
    Rng rng(41);
    Wrn* w = new Wrn(TinyOracleConfig(), rng);
    TrainScratch(*w, data->train, FastTrainOptions(4));
    return w;
  }();
  PoeBuildConfig cfg;
  cfg.library_config = TinyLibraryConfig();
  cfg.expert_ks = 0.5;
  cfg.library_options = FastTrainOptions(2);
  cfg.expert_options = FastTrainOptions(2);
  Rng rng(42);
  return ExpertPool::Preprocess(ModelLogits(*oracle), *data, cfg, rng);
}

InferenceRequest MakeRequest(std::vector<int> tasks, int rows, int seed) {
  Rng rng(seed);
  InferenceRequest req;
  req.task_ids = std::move(tasks);
  req.input = Tensor::Randn({rows, 3, 6, 6}, rng);
  return req;
}

TEST(InferenceServerTest, ServesLogitsMatchingDirectForward) {
  ModelQueryService service(BuildPool(), /*cache_capacity=*/8);
  InferenceServer::Options opts;
  opts.num_workers = 2;
  InferenceServer server(&service, opts);

  InferenceRequest req = MakeRequest({0, 1}, 3, 11);
  Tensor input_copy = req.input.Clone();
  InferenceResponse res = server.Submit(std::move(req)).get();
  ASSERT_TRUE(res.status.ok()) << res.status.ToString();

  auto model = service.Query({0, 1}).ValueOrDie();
  Tensor direct = model->Logits(input_copy);
  ASSERT_EQ(res.logits.numel(), direct.numel());
  EXPECT_EQ(std::memcmp(res.logits.data(), direct.data(),
                        sizeof(float) * direct.numel()),
            0);
  EXPECT_EQ(res.global_classes, model->global_classes());
  ASSERT_EQ(static_cast<int>(res.predictions.size()), 3);
  std::vector<int> direct_pred = model->Predict(input_copy);
  EXPECT_EQ(res.predictions, direct_pred);
  EXPECT_GE(res.total_ms, res.queue_ms);
}

TEST(InferenceServerTest, ErrorsPropagateThroughTheFuture) {
  ModelQueryService service(BuildPool(), 8);
  InferenceServer server(&service, InferenceServer::Options{});
  // Unknown task id: assembly fails, the future carries the status.
  InferenceResponse res = server.Submit(MakeRequest({42}, 1, 1)).get();
  EXPECT_FALSE(res.status.ok());

  // Malformed input shape is rejected at submission.
  InferenceRequest bad;
  bad.task_ids = {0};
  bad.input = Tensor::Zeros({3, 6, 6});  // not [n,c,h,w]
  res = server.Submit(std::move(bad)).get();
  EXPECT_FALSE(res.status.ok());
}

TEST(InferenceServerTest, BatchesSameModelRequestsIntoOneForward) {
  ModelQueryService service(BuildPool(), 8);
  // One worker: submissions during the first forward pile up and must be
  // coalesced into a fused pass ({1,0} spells the same model as {0,1}).
  InferenceServer::Options opts;
  opts.num_workers = 1;
  opts.max_batch_rows = 64;
  InferenceServer server(&service, opts);

  std::vector<std::future<InferenceResponse>> futures;
  for (int i = 0; i < 12; ++i) {
    futures.push_back(
        server.Submit(MakeRequest(i % 2 == 0 ? std::vector<int>{0, 1}
                                             : std::vector<int>{1, 0},
                                  1, 100 + i)));
  }
  int64_t max_batch_rows = 0;
  for (auto& f : futures) {
    InferenceResponse res = f.get();
    ASSERT_TRUE(res.status.ok()) << res.status.ToString();
    max_batch_rows = std::max(max_batch_rows, res.batch_rows);
  }
  // At least one fused pass served multiple requests (the first may run
  // alone, but the 11 queued behind it cannot all have).
  EXPECT_GT(max_batch_rows, 1);
  ServeStats stats = server.stats();
  EXPECT_EQ(stats.completed, 12);
  EXPECT_LT(stats.batches, 12);
  EXPECT_GT(stats.avg_batch(), 1.0);
}

TEST(InferenceServerTest, BatchedLogitsMatchUnbatchedBitwise) {
  ModelQueryService service(BuildPool(), 8);
  InferenceServer::Options opts;
  opts.num_workers = 1;
  InferenceServer server(&service, opts);

  // Same inputs submitted twice: once in a coalescing burst, once alone.
  std::vector<Tensor> inputs;
  for (int i = 0; i < 4; ++i) {
    Rng rng(500 + i);
    inputs.push_back(Tensor::Randn({1, 3, 6, 6}, rng));
  }
  std::vector<std::future<InferenceResponse>> futures;
  for (int i = 0; i < 4; ++i) {
    InferenceRequest req;
    req.task_ids = {0, 2};
    req.input = inputs[i].Clone();
    futures.push_back(server.Submit(std::move(req)));
  }
  std::vector<InferenceResponse> burst;
  for (auto& f : futures) burst.push_back(f.get());

  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(burst[i].status.ok());
    InferenceRequest req;
    req.task_ids = {0, 2};
    req.input = inputs[i].Clone();
    InferenceResponse solo = server.Submit(std::move(req)).get();
    ASSERT_TRUE(solo.status.ok());
    ASSERT_EQ(solo.logits.numel(), burst[i].logits.numel());
    // f32 conv/linear rows accumulate independently of the surrounding
    // batch, so fused and solo forwards agree bitwise.
    EXPECT_EQ(std::memcmp(solo.logits.data(), burst[i].logits.data(),
                          sizeof(float) * solo.logits.numel()),
              0)
        << "request " << i;
  }
}

TEST(InferenceServerTest, TrunkFusedCrossModelLogitsAreBitwiseF32) {
  ModelQueryService service(BuildPool(), 8);
  // One worker: the burst piles up behind the first forward and the
  // worker absorbs requests for DIFFERENT models into one trunk pass.
  InferenceServer::Options opts;
  opts.num_workers = 1;
  opts.max_batch_rows = 64;
  InferenceServer server(&service, opts);

  const std::vector<std::vector<int>> keys = {{0}, {1}, {2}, {0, 1}, {1, 2}};
  // Whether a burst actually coalesces is a race against the worker
  // draining it, so retry bursts until fusion is observed (the bitwise
  // checks hold on every round, fused or not). One round nearly always
  // suffices; the bound is for pathological schedulers (e.g. TSan).
  for (int round = 0; round < 20; ++round) {
    std::vector<Tensor> inputs;
    std::vector<std::future<InferenceResponse>> futures;
    for (int i = 0; i < 10; ++i) {
      Rng rng(800 + 100 * round + i);
      inputs.push_back(Tensor::Randn({2, 3, 6, 6}, rng));
      InferenceRequest req;
      req.task_ids = keys[i % keys.size()];
      req.input = inputs.back().Clone();
      futures.push_back(server.Submit(std::move(req)));
    }
    std::vector<InferenceResponse> fused;
    for (auto& f : futures) fused.push_back(f.get());

    // Every response must be bitwise identical to a solo forward of its
    // own model: the shared trunk computes rows independently, so fusing
    // rows across models cannot change the f32 numbers.
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(fused[i].status.ok()) << fused[i].status.ToString();
      auto model = service.Query(keys[i % keys.size()]).ValueOrDie();
      Tensor direct = model->Logits(inputs[i]);
      ASSERT_EQ(fused[i].logits.numel(), direct.numel());
      EXPECT_EQ(std::memcmp(fused[i].logits.data(), direct.data(),
                            sizeof(float) * direct.numel()),
                0)
          << "round " << round << " request " << i;
    }
    if (server.stats().trunk_fused_batches > 0) break;
  }
  ServeStats stats = server.stats();
  EXPECT_GT(stats.trunk_fused_batches, 0);
  EXPECT_GT(stats.trunk_fused_rows, 0);
}

TEST(InferenceServerTest, FuseTrunkOffKeepsSameModelBatchingOnly) {
  ModelQueryService service(BuildPool(), 8);
  InferenceServer::Options opts;
  opts.num_workers = 1;
  opts.fuse_trunk = false;
  InferenceServer server(&service, opts);

  std::vector<std::future<InferenceResponse>> futures;
  for (int i = 0; i < 10; ++i) {
    futures.push_back(server.Submit(MakeRequest({i % 3}, 1, 600 + i)));
  }
  for (auto& f : futures) {
    ASSERT_TRUE(f.get().status.ok());
  }
  ServeStats stats = server.stats();
  EXPECT_EQ(stats.trunk_fused_batches, 0);
  EXPECT_EQ(stats.trunk_fused_rows, 0);
}

TEST(InferenceServerTest, BadKeyInABatchFailsOnlyItsOwnRequests) {
  ModelQueryService service(BuildPool(), 8);
  InferenceServer::Options opts;
  opts.num_workers = 1;
  InferenceServer server(&service, opts);

  std::vector<std::future<InferenceResponse>> futures;
  std::vector<Tensor> inputs;
  for (int i = 0; i < 8; ++i) {
    Rng rng(900 + i);
    inputs.push_back(Tensor::Randn({1, 3, 6, 6}, rng));
    InferenceRequest req;
    // Every third request names an unknown task; it must fail without
    // poisoning the valid requests co-batched around it.
    req.task_ids = (i % 3 == 2) ? std::vector<int>{42}
                                : std::vector<int>{i % 2};
    req.input = inputs.back().Clone();
    futures.push_back(server.Submit(std::move(req)));
  }
  for (int i = 0; i < 8; ++i) {
    InferenceResponse res = futures[i].get();
    if (i % 3 == 2) {
      EXPECT_FALSE(res.status.ok()) << "request " << i;
    } else {
      ASSERT_TRUE(res.status.ok()) << res.status.ToString();
      auto model = service.Query({i % 2}).ValueOrDie();
      Tensor direct = model->Logits(inputs[i]);
      EXPECT_EQ(std::memcmp(res.logits.data(), direct.data(),
                            sizeof(float) * direct.numel()),
                0)
          << "request " << i;
    }
  }
}

TEST(InferenceServerTest, TrunkFusedInt8MatchesSoloWhenScalesAgree) {
  // Int8 activation quantization is per-tensor dynamic (max-abs), so
  // fused and solo forwards only agree bitwise when their max-abs does.
  // Identical input rows across requests for different models pin exactly
  // that: same trunk input scale, and each head sees the same feature
  // rows solo as fused.
  ModelQueryService service(BuildPool(), 8, ServingPrecision::kInt8);
  InferenceServer::Options opts;
  opts.num_workers = 1;
  InferenceServer server(&service, opts);

  Rng rng(321);
  Tensor probe = Tensor::Randn({2, 3, 6, 6}, rng);
  const std::vector<std::vector<int>> keys = {{0}, {1}, {2}, {0, 2}};
  std::vector<std::future<InferenceResponse>> futures;
  for (int i = 0; i < 8; ++i) {
    InferenceRequest req;
    req.task_ids = keys[i % keys.size()];
    req.input = probe.Clone();
    futures.push_back(server.Submit(std::move(req)));
  }
  for (int i = 0; i < 8; ++i) {
    InferenceResponse res = futures[i].get();
    ASSERT_TRUE(res.status.ok()) << res.status.ToString();
    auto model = service.Query(keys[i % keys.size()]).ValueOrDie();
    Tensor direct = model->Logits(probe);
    ASSERT_EQ(res.logits.numel(), direct.numel());
    EXPECT_EQ(std::memcmp(res.logits.data(), direct.data(),
                          sizeof(float) * direct.numel()),
              0)
        << "request " << i;
  }
}

TEST(InferenceServerTest, BackpressureRejectsWhenQueueIsFull) {
  ModelQueryService service(BuildPool(), 8);
  InferenceServer::Options opts;
  opts.num_workers = 1;
  opts.queue_capacity = 2;
  opts.max_batch_rows = 1;  // no coalescing: drain slowly
  InferenceServer server(&service, opts);

  std::vector<std::future<InferenceResponse>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(server.Submit(MakeRequest({i % 3}, 1, 900 + i)));
  }
  int ok = 0, exhausted = 0;
  for (auto& f : futures) {
    InferenceResponse res = f.get();
    if (res.status.ok()) {
      ++ok;
    } else {
      ASSERT_EQ(res.status.code(), StatusCode::kResourceExhausted)
          << res.status.ToString();
      ++exhausted;
    }
  }
  EXPECT_GT(ok, 0);
  EXPECT_GT(exhausted, 0) << "64 instant submissions into a 2-deep queue "
                             "must trip backpressure";
  ServeStats stats = server.stats();
  EXPECT_EQ(stats.submitted, 64);
  EXPECT_EQ(stats.completed + stats.rejected, 64);
}

TEST(InferenceServerTest, ShutdownDrainsPendingAndRejectsNew) {
  ModelQueryService service(BuildPool(), 8);
  InferenceServer::Options opts;
  opts.num_workers = 1;
  InferenceServer server(&service, opts);

  std::vector<std::future<InferenceResponse>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(server.Submit(MakeRequest({i % 3}, 1, 700 + i)));
  }
  server.Shutdown();
  // Everything accepted before shutdown completes (graceful drain)...
  for (auto& f : futures) {
    EXPECT_TRUE(f.get().status.ok());
  }
  EXPECT_EQ(server.queue_depth(), 0u);
  // ...and new work is refused.
  InferenceResponse res = server.Submit(MakeRequest({0}, 1, 1)).get();
  EXPECT_EQ(res.status.code(), StatusCode::kFailedPrecondition);
}

TEST(InferenceServerTest, MaxGenerationLagRejectsOnlyTooStalePins) {
  ModelQueryService service(BuildPool(), 8);
  InferenceServer::Options opts;
  opts.max_generation_lag = 1;
  InferenceServer server(&service, opts);

  // Advance the serving generation to 3 via no-op upgrades (each swap
  // still publishes a new generation id).
  ASSERT_TRUE(service.UpgradePool(BuildPool()).ok());
  ASSERT_TRUE(service.UpgradePool(BuildPool()).ok());
  ASSERT_EQ(service.generation(), 3u);

  // Unpinned requests are never lag-checked.
  EXPECT_TRUE(server.Submit(MakeRequest({0}, 1, 21)).get().status.ok());

  // A pin within the lag budget (3 - 2 <= 1) is served; the answer still
  // reports the generation that answered and counts as stale telemetry.
  InferenceRequest within = MakeRequest({0}, 1, 22);
  within.generation = 2;
  InferenceResponse served = server.Submit(std::move(within)).get();
  EXPECT_TRUE(served.status.ok()) << served.status.ToString();
  EXPECT_EQ(served.generation, 3u);

  // A pin beyond the budget (3 - 1 > 1) is refused with a precondition
  // error carrying the serving generation, so the client can refresh.
  InferenceRequest stale = MakeRequest({0}, 1, 23);
  stale.generation = 1;
  InferenceResponse refused = server.Submit(std::move(stale)).get();
  EXPECT_EQ(refused.status.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(refused.generation, 3u);

  // A pin AHEAD of the serving generation (a client that raced an
  // upgrade announcement) is never lag-rejected.
  InferenceRequest ahead = MakeRequest({0}, 1, 24);
  ahead.generation = 9;
  EXPECT_TRUE(server.Submit(std::move(ahead)).get().status.ok());

  server.Shutdown();
  const ServeStats s = server.stats();
  // The refusal is a rejection, not a completion or a shed.
  EXPECT_EQ(s.submitted, s.completed + s.rejected + s.deadline_expired);
  EXPECT_GE(s.rejected, 1);
}

}  // namespace
}  // namespace poe

#include "core/query_service.h"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "distill/specialize.h"
#include "eval/metrics.h"
#include "test_util.h"

namespace poe {
namespace {

using testutil::FastTrainOptions;
using testutil::TinyDataConfig;
using testutil::TinyLibraryConfig;
using testutil::TinyOracleConfig;

// Builds a small pool once for all service tests.
ExpertPool BuildPool() {
  static SyntheticDataset* data =
      new SyntheticDataset(GenerateSyntheticDataset(TinyDataConfig()));
  static Wrn* oracle = [] {
    Rng rng(31);
    Wrn* w = new Wrn(TinyOracleConfig(), rng);
    TrainScratch(*w, data->train, FastTrainOptions(4));
    return w;
  }();
  PoeBuildConfig cfg;
  cfg.library_config = TinyLibraryConfig();
  cfg.expert_ks = 0.5;
  cfg.library_options = FastTrainOptions(2);
  cfg.expert_options = FastTrainOptions(2);
  Rng rng(32);
  return ExpertPool::Preprocess(ModelLogits(*oracle), *data, cfg, rng);
}

TEST(QueryServiceTest, ServesModelsAndCountsQueries) {
  ModelQueryService service(BuildPool());
  auto m1 = service.Query({0, 1});
  ASSERT_TRUE(m1.ok());
  EXPECT_EQ(m1.ValueOrDie()->num_branches(), 2);
  auto m2 = service.Query({2});
  ASSERT_TRUE(m2.ok());
  QueryStats stats = service.stats();
  EXPECT_EQ(stats.num_queries, 2);
  EXPECT_EQ(stats.cache_hits, 0);
  EXPECT_GE(stats.total_ms, 0.0);
  EXPECT_GE(stats.max_ms, 0.0);
}

TEST(QueryServiceTest, PropagatesQueryErrors) {
  ModelQueryService service(BuildPool());
  EXPECT_FALSE(service.Query({42}).ok());
  EXPECT_FALSE(service.Query(std::vector<int>{}).ok());
}

TEST(QueryServiceTest, CacheHitsOnRepeatedQueries) {
  ModelQueryService service(BuildPool(), /*cache_capacity=*/4);
  auto a = service.Query({0, 1}).ValueOrDie();
  auto b = service.Query({0, 1}).ValueOrDie();
  EXPECT_EQ(a.get(), b.get());  // same cached object
  EXPECT_EQ(service.stats().cache_hits, 1);
}

TEST(QueryServiceTest, CacheKeyIsOrderInsensitive) {
  ModelQueryService service(BuildPool(), 4);
  service.Query({0, 1}).ValueOrDie();
  service.Query({1, 0}).ValueOrDie();
  EXPECT_EQ(service.stats().cache_hits, 1);
}

TEST(QueryServiceTest, DuplicateTaskIdsShareOneCacheEntry) {
  // {1,1,2}, {1,2} and {2,1,1} are the same composite task: the key is
  // canonicalized (sorted + deduplicated), so all spellings hit one entry
  // and the assembled model has one branch per distinct task.
  ModelQueryService service(BuildPool(), 4);
  auto a = service.Query({1, 1, 2});
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.ValueOrDie()->num_branches(), 2);
  auto b = service.Query({1, 2});
  ASSERT_TRUE(b.ok());
  auto c = service.Query({2, 1, 1});
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(a.ValueOrDie().get(), b.ValueOrDie().get());
  EXPECT_EQ(a.ValueOrDie().get(), c.ValueOrDie().get());
  EXPECT_EQ(service.stats().cache_hits, 2);
  EXPECT_EQ(service.cache_size(), 1u);
}

TEST(QueryServiceTest, CacheHitLogitsMatchFreshAssemblyBitwise) {
  ModelQueryService service(BuildPool(), 4);
  Rng rng(7);
  Tensor probe = Tensor::Randn({2, 3, 6, 6}, rng);
  auto cached = service.Query({0, 2}).ValueOrDie();
  service.Query({0, 2}).ValueOrDie();  // now served from cache
  Tensor hit_logits = cached->Logits(probe);

  // Fresh assembly straight off the pool: same aliased weights, so the
  // forward must be bitwise identical to the cached model's.
  TaskModel fresh = service.pool().Query({0, 2}).ValueOrDie();
  Tensor fresh_logits = fresh.Logits(probe);
  ASSERT_EQ(hit_logits.numel(), fresh_logits.numel());
  EXPECT_EQ(std::memcmp(hit_logits.data(), fresh_logits.data(),
                        sizeof(float) * hit_logits.numel()),
            0);
}

TEST(QueryServiceTest, ServeStatsExposeShardsAndReconcile) {
  ModelQueryService service(BuildPool(), 4, ServingPrecision::kFloat32,
                            /*cache_shards=*/4);
  service.Query({0}).ValueOrDie();
  service.Query({0}).ValueOrDie();
  service.Query({1}).ValueOrDie();
  ServeStats stats = service.serve_stats();
  EXPECT_EQ(stats.queries, 3);
  EXPECT_EQ(stats.cache_hits, 1);
  EXPECT_EQ(stats.cache_misses, 2);
  EXPECT_EQ(stats.coalesced, 0);
  EXPECT_EQ(static_cast<int>(stats.shards.size()), 4);
  int64_t shard_hits = 0, shard_misses = 0, shard_size = 0;
  for (const auto& s : stats.shards) {
    shard_hits += s.hits;
    shard_misses += s.misses;
    shard_size += s.size;
  }
  EXPECT_EQ(shard_hits, 1);
  EXPECT_EQ(shard_misses, 2);
  EXPECT_EQ(shard_size, static_cast<int64_t>(service.cache_size()));
  EXPECT_GE(stats.p99_ms, stats.p50_ms);
  EXPECT_GE(stats.max_ms, stats.p99_ms);
  EXPECT_GT(stats.qps, 0.0);
}

TEST(QueryServiceTest, LruEvictsOldest) {
  ModelQueryService service(BuildPool(), /*cache_capacity=*/2);
  service.Query({0}).ValueOrDie();
  service.Query({1}).ValueOrDie();
  service.Query({2}).ValueOrDie();  // evicts {0}
  EXPECT_EQ(service.cache_size(), 2u);
  service.Query({0}).ValueOrDie();  // miss again
  EXPECT_EQ(service.stats().cache_hits, 0);
  service.Query({0}).ValueOrDie();  // now a hit
  EXPECT_EQ(service.stats().cache_hits, 1);
}

TEST(QueryServiceTest, ZeroCapacityDisablesCache) {
  ModelQueryService service(BuildPool(), 0);
  service.Query({0}).ValueOrDie();
  service.Query({0}).ValueOrDie();
  EXPECT_EQ(service.stats().cache_hits, 0);
  EXPECT_EQ(service.cache_size(), 0u);
}

TEST(QueryServiceTest, ConcurrentQueriesAreSafe) {
  ModelQueryService service(BuildPool(), 8);
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&service, i] {
      for (int j = 0; j < 25; ++j) {
        auto r = service.Query({i % 3});
        ASSERT_TRUE(r.ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(service.stats().num_queries, 100);
}

TEST(QueryServiceTest, AssemblyIsFasterThanAnyTraining) {
  // The train-free property: queries assemble in well under a second.
  ModelQueryService service(BuildPool());
  for (int t = 0; t < 3; ++t) service.Query({t}).ValueOrDie();
  EXPECT_LT(service.stats().max_ms, 1000.0);
}

}  // namespace
}  // namespace poe

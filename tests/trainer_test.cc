#include "distill/trainer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/linear.h"
#include "nn/losses.h"
#include "util/rng.h"

namespace poe {
namespace {

// A linearly separable 2-class dataset.
Dataset SeparableData() {
  Dataset d;
  const int n = 32;
  d.images = Tensor({n, 2});
  d.labels.resize(n);
  Rng rng(1);
  for (int i = 0; i < n; ++i) {
    const int label = i % 2;
    d.images.at(i * 2) = (label == 0 ? -1.0f : 1.0f) + rng.Normal(0, 0.1f);
    d.images.at(i * 2 + 1) = rng.Normal(0, 0.1f);
    d.labels[i] = label;
  }
  return d;
}

TEST(TrainerTest, LossDecreasesOnSeparableProblem) {
  Dataset data = SeparableData();
  Rng rng(2);
  Linear model(2, 2, rng);
  Sgd sgd(model.Parameters(), SgdOptions{0.5f, 0.9f, 0.0f});
  float first_loss = -1.0f;
  TrainOptions opts;
  opts.epochs = 20;
  opts.batch_size = 8;
  auto step = [&](const Batch& batch) {
    sgd.ZeroGrad();
    Tensor logits = model.Forward(batch.images, true);
    LossResult ce = SoftmaxCrossEntropy(logits, batch.labels);
    model.Backward(ce.grad);
    sgd.Step();
    if (first_loss < 0) first_loss = ce.loss;
    return ce.loss;
  };
  TrainResult r = RunTrainingLoop(data, opts, &sgd, step);
  EXPECT_LT(r.final_loss, first_loss * 0.5f);
  EXPECT_LT(r.final_loss, 0.1f);
  EXPECT_GT(r.seconds, 0.0);
}

TEST(TrainerTest, CurveCapturedAtRequestedCadence) {
  Dataset data = SeparableData();
  TrainOptions opts;
  opts.epochs = 10;
  opts.eval_every = 3;
  int eval_calls = 0;
  auto step = [&](const Batch&) { return 1.0f; };
  TrainResult r = RunTrainingLoop(data, opts, nullptr, step, [&] {
    ++eval_calls;
    return 0.5f;
  });
  // Epochs 3, 6, 9 and the final epoch 10.
  ASSERT_EQ(r.curve.size(), 4u);
  EXPECT_EQ(r.curve[0].epoch, 3);
  EXPECT_EQ(r.curve[3].epoch, 10);
  EXPECT_EQ(eval_calls, 4);
  EXPECT_FLOAT_EQ(r.final_accuracy, 0.5f);
  // Curve timestamps are nondecreasing.
  for (size_t i = 1; i < r.curve.size(); ++i) {
    EXPECT_GE(r.curve[i].seconds, r.curve[i - 1].seconds);
  }
}

TEST(TrainerTest, SinglePointWhenNoCadence) {
  Dataset data = SeparableData();
  TrainOptions opts;
  opts.epochs = 5;
  auto step = [&](const Batch&) { return 2.0f; };
  TrainResult r = RunTrainingLoop(data, opts, nullptr, step);
  ASSERT_EQ(r.curve.size(), 1u);
  EXPECT_EQ(r.curve[0].epoch, 5);
  EXPECT_TRUE(std::isnan(r.curve[0].accuracy));
}

TEST(TrainerTest, LrDecayAppliedAtScheduledEpochs) {
  Dataset data = SeparableData();
  Rng rng(3);
  Linear model(2, 2, rng);
  Sgd sgd(model.Parameters(), SgdOptions{1.0f, 0.0f, 0.0f});
  TrainOptions opts;
  opts.epochs = 4;
  opts.lr_decay_epochs = {1, 3};
  opts.lr_decay_factor = 0.1f;
  auto step = [&](const Batch&) { return 0.0f; };
  RunTrainingLoop(data, opts, &sgd, step);
  EXPECT_NEAR(sgd.lr(), 0.01f, 1e-6f);
}

TEST(TrainerTest, BestAccuracyTracksMaximum) {
  Dataset data = SeparableData();
  TrainOptions opts;
  opts.epochs = 4;
  opts.eval_every = 1;
  int call = 0;
  const float accs[] = {0.2f, 0.9f, 0.6f, 0.7f};
  auto step = [&](const Batch&) { return 0.0f; };
  TrainResult r =
      RunTrainingLoop(data, opts, nullptr, step, [&] { return accs[call++]; });
  EXPECT_FLOAT_EQ(r.best_accuracy, 0.9f);
  EXPECT_FLOAT_EQ(r.final_accuracy, 0.7f);
  EXPECT_LE(r.seconds_to_best, r.seconds + 1e-9);
}

TEST(TrainerTest, StepSeesEveryBatchEachEpoch) {
  Dataset data = SeparableData();  // 32 samples
  TrainOptions opts;
  opts.epochs = 3;
  opts.batch_size = 8;
  int64_t samples_seen = 0;
  auto step = [&](const Batch& b) {
    samples_seen += b.labels.size();
    return 0.0f;
  };
  RunTrainingLoop(data, opts, nullptr, step);
  EXPECT_EQ(samples_seen, 3 * 32);
}

}  // namespace
}  // namespace poe

// The fault matrix: N seeds x fault classes {io-error, alloc-fail,
// slow-expert, mixed} thrown at the full serving stack under concurrent
// load, plus torn-write churn on the persistence path. The invariants are
// absolute: no crash, every future resolves, every response carries an
// expected status, and the terminal counters reconcile exactly. CI runs
// this suite under ASan and TSan.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/query_service.h"
#include "core/serialization.h"
#include "distill/specialize.h"
#include "serve/inference_server.h"
#include "tensor/ops.h"
#include "test_util.h"
#include "util/fault.h"

namespace poe {
namespace {

using testutil::TinyLibraryConfig;

constexpr uint64_t kSeeds[] = {1, 2, 3, 4, 5, 6, 7, 8};

ExpertPool MakePool(uint64_t seed = 42) {
  Rng rng(seed);
  WrnConfig lib_cfg = TinyLibraryConfig();
  auto library = BuildLibraryPart(lib_cfg, rng);
  std::vector<std::vector<int>> tasks = {{0, 1}, {2, 3}, {4, 5}};
  std::vector<std::shared_ptr<Sequential>> experts;
  for (const auto& classes : tasks) {
    WrnConfig ecfg = lib_cfg;
    ecfg.ks = 0.5;
    ecfg.num_classes = static_cast<int>(classes.size());
    experts.push_back(BuildExpertPart(ecfg, lib_cfg.conv3_channels(), rng));
  }
  auto hierarchy = ClassHierarchy::FromTasks(std::move(tasks));
  return ExpertPool(lib_cfg, 0.5, std::move(hierarchy).ValueOrDie(),
                    std::move(library), std::move(experts));
}

const std::vector<std::vector<int>>& TaskSets() {
  static const auto* sets = new std::vector<std::vector<int>>{
      {0}, {1}, {2}, {0, 1}, {0, 2}, {1, 2}, {0, 1, 2},
  };
  return *sets;
}

struct FaultCase {
  const char* name;
  const char* spec;
};

const std::vector<FaultCase>& Matrix() {
  static const auto* cases = new std::vector<FaultCase>{
      // nth (not prob): materializations only happen while a branch is
      // dead, so a probabilistic trigger could legitimately never fire.
      // Every 2nd materialization failing keeps the pressure on all run.
      {"io-error", "store.materialize=io:nth:2"},
      {"alloc-fail", "service.assemble=alloc:prob:0.25"},
      {"slow-expert", "server.forward=delay:2:prob:0.3"},
      {"mixed",
       "store.materialize=unavail:prob:0.15;"
       "server.forward=delay:1:prob:0.2;"
       "service.assemble=io:prob:0.1"},
  };
  return *cases;
}

// Statuses a faulted serving run may legitimately surface to a client.
bool IsExpectedServingStatus(const Status& s) {
  switch (s.code()) {
    case StatusCode::kOk:
    case StatusCode::kIoError:            // injected, retries exhausted
    case StatusCode::kUnavailable:        // injected / poisoned
    case StatusCode::kResourceExhausted:  // injected alloc or backpressure
    case StatusCode::kDeadlineExceeded:   // shed or budget-bounded retry
      return true;
    default:
      return false;
  }
}

void RunServingLoad(const FaultCase& fc, uint64_t seed) {
  SCOPED_TRACE(std::string(fc.name) + " seed " + std::to_string(seed));
  ModelQueryService service(MakePool(), /*cache_capacity=*/3,
                            ServingPrecision::kFloat32, /*cache_shards=*/2);
  InferenceServer::Options opts;
  opts.num_workers = 2;
  opts.queue_capacity = 32;
  InferenceServer server(&service, opts);

  ScopedFaultInjection arm(fc.spec, seed);

  constexpr int kClients = 3;
  constexpr int kPerClient = 30;
  std::atomic<int> resolved{0}, unexpected{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      unsigned state = 17u + 31u * c + static_cast<unsigned>(seed);
      Rng rng(500 + c);
      for (int i = 0; i < kPerClient; ++i) {
        state = state * 1664525u + 1013904223u;
        InferenceRequest req;
        req.task_ids = TaskSets()[state % TaskSets().size()];
        req.input = Tensor::Randn({1, 3, 6, 6}, rng);
        // A third of the traffic carries a real (occasionally tight)
        // deadline so shedding interleaves with the injected faults.
        if (state % 3 == 0) req.deadline_ms = (state % 5 == 0) ? 1.0 : 200.0;
        InferenceResponse res = server.Submit(std::move(req)).get();
        resolved.fetch_add(1);
        if (!IsExpectedServingStatus(res.status)) {
          unexpected.fetch_add(1);
          ADD_FAILURE() << "unexpected status: " << res.status.ToString();
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  server.Shutdown();

  // Every future resolved (the .get() calls above returned), faults
  // actually fired, and the terminal buckets partition the traffic.
  EXPECT_EQ(resolved.load(), kClients * kPerClient);
  EXPECT_EQ(unexpected.load(), 0);
  EXPECT_GT(FaultInjector::Global().TotalTriggers(), 0)
      << "the armed spec never fired - the matrix row tested nothing";
  ServeStats stats = server.stats();
  EXPECT_EQ(stats.submitted, kClients * kPerClient);
  EXPECT_EQ(stats.submitted,
            stats.completed + stats.rejected + stats.deadline_expired);
  EXPECT_EQ(stats.queue_depth, 0);
  // The cache-side identity holds under faults too (errors not cached).
  EXPECT_EQ(stats.queries,
            stats.cache_hits + stats.cache_misses + stats.coalesced);
}

TEST(FaultMatrixTest, ServingSurvivesEverySeedAndFaultClass) {
  for (const FaultCase& fc : Matrix()) {
    for (uint64_t seed : kSeeds) {
      RunServingLoad(fc, seed);
      FaultInjector::Global().Clear();
    }
  }
}

// Torn-write churn: saves keep failing mid-write/fsync/rename across
// seeds; the committed file must stay loadable (and bit-identical) after
// every failed attempt, and a clean save must always recover.
TEST(FaultMatrixTest, PersistenceSurvivesTornWriteChurn) {
  ExpertPool pool = MakePool();
  const std::string path = ::testing::TempDir() + "/fault_matrix_pool.poe";
  ASSERT_TRUE(SaveExpertPool(pool, path).ok());
  auto read_file = [&](const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    std::stringstream buf;
    buf << in.rdbuf();
    return buf.str();
  };
  const std::string committed = read_file(path);

  for (uint64_t seed : kSeeds) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    ScopedFaultInjection arm(
        "pool.save.write=io:prob:0.5;"
        "pool.save.sync=io:prob:0.25;"
        "pool.save.rename=io:prob:0.25",
        seed);
    int failures = 0;
    for (int attempt = 0; attempt < 10; ++attempt) {
      Status s = SaveExpertPool(pool, path);
      if (!s.ok()) {
        ++failures;
        // The committed bytes must be untouched by the failed attempt.
        ASSERT_EQ(read_file(path), committed) << "attempt " << attempt;
      }
      auto loaded = LoadExpertPool(path);
      ASSERT_TRUE(loaded.ok()) << loaded.status();
    }
    FaultInjector::Global().Clear();
    // Recovery after the outage: a clean save + load always works.
    ASSERT_TRUE(SaveExpertPool(pool, path).ok());
    ASSERT_TRUE(LoadExpertPool(path).ok());
    ASSERT_EQ(read_file(path), committed);
  }
}

// Poison accumulation across a hostile run stays bounded and observable:
// corruption fires once, exactly one expert is quarantined, the rest of
// the pool keeps serving.
TEST(FaultMatrixTest, CorruptionQuarantinesExactlyWhatItHit) {
  for (uint64_t seed : kSeeds) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    ModelQueryService service(MakePool(), 3);
    {
      ScopedFaultInjection arm("store.materialize=corrupt:once:1", seed);
      // Drive queries until the poison lands (first materialization).
      (void)service.Query({0, 1, 2});
    }
    FaultInjector::Global().Clear();
    ServeStats stats = service.serve_stats();
    EXPECT_EQ(stats.experts_poisoned, 1);
    // Two of the three experts are healthy; at least one pair query
    // avoiding the poisoned expert must succeed.
    int healthy_pairs = 0;
    for (const auto& tasks :
         {std::vector<int>{0, 1}, {0, 2}, {1, 2}}) {
      if (service.Query(tasks).ok()) ++healthy_pairs;
    }
    EXPECT_EQ(healthy_pairs, 1)
        << "exactly the pair avoiding the poisoned expert serves";
    int healthy_singles = 0;
    for (const auto& tasks : {std::vector<int>{0}, {1}, {2}}) {
      if (service.Query(tasks).ok()) ++healthy_singles;
    }
    EXPECT_EQ(healthy_singles, 2);
  }
}

}  // namespace
}  // namespace poe

#include "compress/quantize.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "models/wrn.h"
#include "nn/linear.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace poe {
namespace {

TEST(QuantizeTest, RoundTripErrorBoundedByHalfStep) {
  Rng rng(1);
  Tensor t = Tensor::Randn({100}, rng);
  QuantizedTensor q = Quantize(t);
  Tensor back = Dequantize(q);
  // Max error is half a quantization step = scale / 2.
  EXPECT_LE(MaxAbsDiff(t, back), q.scale * 0.5f + 1e-7f);
}

TEST(QuantizeTest, ZeroTensorIsExact) {
  Tensor t = Tensor::Zeros({10});
  QuantizedTensor q = Quantize(t);
  EXPECT_EQ(q.scale, 1.0f);
  Tensor back = Dequantize(q);
  EXPECT_EQ(MaxAbsDiff(t, back), 0.0f);
}

TEST(QuantizeTest, ExtremesMapToFullRange) {
  Tensor t = Tensor::FromVector({3}, {-2.0f, 0.0f, 2.0f});
  QuantizedTensor q = Quantize(t);
  EXPECT_EQ(q.values[0], -127);
  EXPECT_EQ(q.values[1], 0);
  EXPECT_EQ(q.values[2], 127);
}

TEST(QuantizeTest, PreservesShape) {
  Rng rng(2);
  Tensor t = Tensor::Randn({2, 3, 4}, rng);
  Tensor back = Dequantize(Quantize(t));
  EXPECT_EQ(back.shape(), t.shape());
}

TEST(QuantizeTest, FootprintIsRoughlyQuarterOfFloat) {
  Rng rng(3);
  Tensor t = Tensor::Randn({1000}, rng);
  QuantizedTensor q = Quantize(t);
  EXPECT_LT(q.nbytes() * 3, t.nbytes());
}

TEST(QuantizeTest, PerChannelRoundTripBoundedPerRow) {
  Rng rng(8);
  Tensor t = Tensor::Randn({4, 50}, rng);
  // Spread row magnitudes by ~64x so per-tensor scaling would waste most
  // of the int8 range on the small rows.
  for (int64_t r = 0; r < 4; ++r) {
    const float gain = 1.0f / static_cast<float>(1 << (2 * r));
    for (int64_t i = 0; i < 50; ++i) t.at(r * 50 + i) *= gain;
  }
  QuantizedTensor q = QuantizePerChannel(t);
  EXPECT_EQ(q.axis, 0);
  ASSERT_EQ(q.channel_scales.size(), 4u);
  Tensor back = Dequantize(q);
  for (int64_t r = 0; r < 4; ++r) {
    for (int64_t i = 0; i < 50; ++i) {
      EXPECT_LE(std::abs(t.at(r * 50 + i) - back.at(r * 50 + i)),
                q.channel_scales[r] * 0.5f + 1e-7f);
    }
  }
  // Per-channel reconstruction strictly beats the per-tensor snapshot on
  // the attenuated rows.
  Tensor per_tensor = Dequantize(Quantize(t));
  float worst_pc = 0.0f, worst_pt = 0.0f;
  for (int64_t i = 150; i < 200; ++i) {  // smallest-magnitude row
    worst_pc = std::max(worst_pc, std::abs(t.at(i) - back.at(i)));
    worst_pt = std::max(worst_pt, std::abs(t.at(i) - per_tensor.at(i)));
  }
  EXPECT_LT(worst_pc, worst_pt);
}

TEST(QuantizeTest, PerChannelExtremesMapPerRow) {
  Tensor t = Tensor::FromVector({2, 2}, {-4.0f, 2.0f, 0.5f, -0.25f});
  QuantizedTensor q = QuantizePerChannel(t);
  EXPECT_EQ(q.values[0], -127);  // row-0 max-abs
  EXPECT_EQ(q.values[2], 127);   // row-1 max-abs
}

// nbytes must account for everything a serialized snapshot holds: int8
// values, the scale(s), the axis tag, and the shape metadata. These exact
// numbers feed the pool-volume reporting of the Table 4 / quantization
// ablation benches.
TEST(QuantizedTensorTest, NbytesCountsScalesAndMetadata) {
  Rng rng(10);
  // Per-tensor, shape {3}: 3 values + 4 (scale) + 4 (axis) + 8 (ndim)
  // + 8 (one dim) + 8 (element count) = 35.
  QuantizedTensor pt = Quantize(Tensor::Randn({3}, rng));
  EXPECT_EQ(pt.nbytes(), 35);
  // Per-channel, shape {2, 3}: 6 values + 4 (scale) + 2*4 (channel
  // scales) + 4 (axis) + 8 (ndim) + 2*8 (dims) + 8 (count) = 54.
  QuantizedTensor pc = QuantizePerChannel(Tensor::Randn({2, 3}, rng));
  EXPECT_EQ(pc.nbytes(), 54);
}

TEST(QuantizeModuleTest, RoundTripKeepsOutputsClose) {
  Rng rng(4);
  WrnConfig cfg;
  cfg.num_classes = 5;
  cfg.base_channels = 4;
  Wrn model(cfg, rng);
  Tensor x = Tensor::Randn({2, 3, 8, 8}, rng);
  Tensor before = model.Forward(x, false);

  QuantizedModuleState state = QuantizeModule(model);
  // Perturb then restore from the snapshot.
  model.Parameters()[0]->value.Fill(0.0f);
  ASSERT_TRUE(DequantizeInto(state, model).ok());
  Tensor after = model.Forward(x, false);
  // int8 weights shift logits slightly but not wildly.
  EXPECT_LT(MaxAbsDiff(before, after), 0.5f);
  EXPECT_GT(MaxAbsDiff(before, after), 0.0f);
}

// Float32 footprint of a module's state, for compression-ratio checks.
int64_t FloatStateBytes(Module& m) {
  int64_t bytes = 0;
  for (Parameter* p : m.Parameters()) bytes += p->value.nbytes();
  std::vector<Tensor*> buffers;
  m.CollectBuffers(&buffers);
  for (Tensor* b : buffers) bytes += b->nbytes();
  return bytes;
}

TEST(QuantizeModuleTest, SnapshotCoversParamsAndBuffers) {
  Rng rng(5);
  WrnConfig cfg;
  cfg.num_classes = 3;
  cfg.base_channels = 4;
  Wrn model(cfg, rng);
  QuantizedModuleState state = QuantizeModule(model);
  std::vector<Tensor*> buffers;
  model.CollectBuffers(&buffers);
  EXPECT_EQ(state.tensors.size(),
            model.Parameters().size() + buffers.size());
  EXPECT_LT(state.nbytes() * 3, FloatStateBytes(model));
}

// Pins the exact int8 snapshot footprint of a fixed architecture so the
// pool-size numbers the Table 4 / ablation benches report cannot drift
// silently (shapes are architecture-determined, not RNG-dependent).
TEST(QuantizeModuleTest, PoolSnapshotBytesPinned) {
  Rng rng(21);
  WrnConfig cfg;
  cfg.num_classes = 5;
  cfg.base_channels = 4;
  Wrn model(cfg, rng);
  QuantizedModuleState state = QuantizeModule(model);
  int64_t expected = 0;
  for (Parameter* p : model.Parameters()) {
    const int64_t channel_scales =
        p->value.ndim() >= 2 ? p->value.dim(0) : 0;
    expected += p->value.numel() + 4 + channel_scales * 4 + 4 + 8 +
                8 * p->value.ndim() + 8;
  }
  std::vector<Tensor*> buffers;
  model.CollectBuffers(&buffers);
  for (Tensor* b : buffers) {
    expected += b->numel() + 4 + 4 + 8 + 8 * b->ndim() + 8;
  }
  EXPECT_EQ(state.nbytes(), expected);
  // And the absolute value, pinned: a change to this number is a format
  // change and must be deliberate.
  EXPECT_EQ(state.nbytes(), 6885);
}

TEST(QuantizeModuleTest, DequantizeRejectsWrongStructure) {
  Rng rng(6);
  Linear small(3, 2, rng);
  Linear big(5, 4, rng);
  QuantizedModuleState state = QuantizeModule(small);
  EXPECT_EQ(DequantizeInto(state, big).code(), StatusCode::kCorruption);
}

TEST(QuantizeModuleTest, QuantizationErrorDiagnostic) {
  Rng rng(7);
  Linear lin(8, 8, rng);
  const float err = QuantizationError(lin);
  EXPECT_GT(err, 0.0f);
  EXPECT_LT(err, 0.05f);  // weights ~N(0, 0.5); step ~ max/127
}

}  // namespace
}  // namespace poe

#include "compress/quantize.h"

#include <gtest/gtest.h>

#include "models/wrn.h"
#include "nn/linear.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace poe {
namespace {

TEST(QuantizeTest, RoundTripErrorBoundedByHalfStep) {
  Rng rng(1);
  Tensor t = Tensor::Randn({100}, rng);
  QuantizedTensor q = Quantize(t);
  Tensor back = Dequantize(q);
  // Max error is half a quantization step = scale / 2.
  EXPECT_LE(MaxAbsDiff(t, back), q.scale * 0.5f + 1e-7f);
}

TEST(QuantizeTest, ZeroTensorIsExact) {
  Tensor t = Tensor::Zeros({10});
  QuantizedTensor q = Quantize(t);
  EXPECT_EQ(q.scale, 1.0f);
  Tensor back = Dequantize(q);
  EXPECT_EQ(MaxAbsDiff(t, back), 0.0f);
}

TEST(QuantizeTest, ExtremesMapToFullRange) {
  Tensor t = Tensor::FromVector({3}, {-2.0f, 0.0f, 2.0f});
  QuantizedTensor q = Quantize(t);
  EXPECT_EQ(q.values[0], -127);
  EXPECT_EQ(q.values[1], 0);
  EXPECT_EQ(q.values[2], 127);
}

TEST(QuantizeTest, PreservesShape) {
  Rng rng(2);
  Tensor t = Tensor::Randn({2, 3, 4}, rng);
  Tensor back = Dequantize(Quantize(t));
  EXPECT_EQ(back.shape(), t.shape());
}

TEST(QuantizeTest, FootprintIsRoughlyQuarterOfFloat) {
  Rng rng(3);
  Tensor t = Tensor::Randn({1000}, rng);
  QuantizedTensor q = Quantize(t);
  EXPECT_LT(q.nbytes() * 3, t.nbytes());
}

TEST(QuantizeModuleTest, RoundTripKeepsOutputsClose) {
  Rng rng(4);
  WrnConfig cfg;
  cfg.num_classes = 5;
  cfg.base_channels = 4;
  Wrn model(cfg, rng);
  Tensor x = Tensor::Randn({2, 3, 8, 8}, rng);
  Tensor before = model.Forward(x, false);

  QuantizedModuleState state = QuantizeModule(model);
  // Perturb then restore from the snapshot.
  model.Parameters()[0]->value.Fill(0.0f);
  ASSERT_TRUE(DequantizeInto(state, model).ok());
  Tensor after = model.Forward(x, false);
  // int8 weights shift logits slightly but not wildly.
  EXPECT_LT(MaxAbsDiff(before, after), 0.5f);
  EXPECT_GT(MaxAbsDiff(before, after), 0.0f);
}

// Float32 footprint of a module's state, for compression-ratio checks.
int64_t FloatStateBytes(Module& m) {
  int64_t bytes = 0;
  for (Parameter* p : m.Parameters()) bytes += p->value.nbytes();
  std::vector<Tensor*> buffers;
  m.CollectBuffers(&buffers);
  for (Tensor* b : buffers) bytes += b->nbytes();
  return bytes;
}

TEST(QuantizeModuleTest, SnapshotCoversParamsAndBuffers) {
  Rng rng(5);
  WrnConfig cfg;
  cfg.num_classes = 3;
  cfg.base_channels = 4;
  Wrn model(cfg, rng);
  QuantizedModuleState state = QuantizeModule(model);
  std::vector<Tensor*> buffers;
  model.CollectBuffers(&buffers);
  EXPECT_EQ(state.tensors.size(),
            model.Parameters().size() + buffers.size());
  EXPECT_LT(state.nbytes() * 3, FloatStateBytes(model));
}

TEST(QuantizeModuleTest, DequantizeRejectsWrongStructure) {
  Rng rng(6);
  Linear small(3, 2, rng);
  Linear big(5, 4, rng);
  QuantizedModuleState state = QuantizeModule(small);
  EXPECT_EQ(DequantizeInto(state, big).code(), StatusCode::kCorruption);
}

TEST(QuantizeModuleTest, QuantizationErrorDiagnostic) {
  Rng rng(7);
  Linear lin(8, 8, rng);
  const float err = QuantizationError(lin);
  EXPECT_GT(err, 0.0f);
  EXPECT_LT(err, 0.05f);  // weights ~N(0, 0.5); step ~ max/127
}

}  // namespace
}  // namespace poe

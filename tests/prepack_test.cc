// Pack-once serving: persistent prepacked weights must be bitwise
// indistinguishable from the per-call packing paths, at the GEMM level
// and through the Conv2d/Linear forwards (f32 and int8). The CMake
// forced-kernel reruns (POE_GEMM_KERNEL=scalar|avx2) cover every kernel
// tier; the plain run covers whatever the host dispatches (avx512/vnni
// where available).
#include <gtest/gtest.h>

#include <cstring>
#include <utility>
#include <vector>

#include "nn/conv2d.h"
#include "nn/linear.h"
#include "tensor/gemm.h"
#include "tensor/gemm_s8.h"
#include "util/rng.h"

namespace poe {
namespace {

void FillInt8(std::vector<int8_t>* v, Rng& rng) {
  for (auto& x : *v)
    x = static_cast<int8_t>(static_cast<int64_t>(rng.NextInt(255)) - 127);
}

// Shapes cross every boundary the persistent layouts index: MC = 240 row
// tiles, NC = 1024 column tiles, KC = 320 k-blocks, plus panel-edge
// remainders in every dimension.
struct Shape {
  int64_t m, n, k;
};
const Shape kShapes[] = {{1, 1, 1},     {3, 17, 5},    {63, 33, 130},
                         {241, 65, 321}, {37, 1025, 11}, {13, 1040, 650},
                         {250, 70, 320}};

TEST(GemmPackedBitwiseTest, PackedAMatchesOnTheFly) {
  for (const Shape& s : kShapes) {
    Rng rng(s.m * 131 + s.n * 17 + s.k);
    std::vector<float> a(s.m * s.k), b(s.k * s.n), bias(s.m);
    for (auto& v : a) v = rng.Uniform(-1.0f, 1.0f);
    for (auto& v : b) v = rng.Uniform(-1.0f, 1.0f);
    for (auto& v : bias) v = rng.Uniform(-1.0f, 1.0f);
    GemmEpilogue ep;
    ep.row_bias = bias.data();
    ep.relu = true;
    PackedAWeights packed =
        PackedAWeights::Pack(/*trans_a=*/false, s.m, s.k, a.data());
    EXPECT_EQ(packed.rows(), s.m);
    EXPECT_EQ(packed.depth(), s.k);
    EXPECT_GT(packed.nbytes(), 0);
    for (bool parallel : {false, true}) {
      std::vector<float> c1(s.m * s.n, 0.5f), c2(s.m * s.n, 0.5f);
      GemmEx(false, false, s.m, s.n, s.k, 1.0f, a.data(), b.data(), 0.25f,
             c1.data(), ep, parallel);
      GemmPackedA(packed, s.n, b.data(), 1.0f, 0.25f, c2.data(), ep,
                  parallel);
      ASSERT_EQ(0, std::memcmp(c1.data(), c2.data(),
                               c1.size() * sizeof(float)))
          << "m=" << s.m << " n=" << s.n << " k=" << s.k
          << " parallel=" << parallel;
    }
  }
}

TEST(GemmPackedBitwiseTest, PackedBMatchesOnTheFlyBothTransposes) {
  for (const Shape& s : kShapes) {
    for (bool trans_b : {false, true}) {
      Rng rng(s.m * 7 + s.n * 311 + s.k + trans_b);
      std::vector<float> a(s.m * s.k), b(s.k * s.n), bias(s.n);
      for (auto& v : a) v = rng.Uniform(-1.0f, 1.0f);
      for (auto& v : b) v = rng.Uniform(-1.0f, 1.0f);
      for (auto& v : bias) v = rng.Uniform(-1.0f, 1.0f);
      GemmEpilogue ep;
      ep.col_bias = bias.data();
      PackedBWeights packed =
          PackedBWeights::Pack(trans_b, s.k, s.n, b.data());
      EXPECT_EQ(packed.depth(), s.k);
      EXPECT_EQ(packed.cols(), s.n);
      for (bool parallel : {false, true}) {
        std::vector<float> c1(s.m * s.n, -1.0f), c2(s.m * s.n, -1.0f);
        GemmEx(false, trans_b, s.m, s.n, s.k, 1.0f, a.data(), b.data(),
               0.0f, c1.data(), ep, parallel);
        GemmPackedB(s.m, a.data(), /*trans_a=*/false, packed, 1.0f, 0.0f,
                    c2.data(), ep, parallel);
        ASSERT_EQ(0, std::memcmp(c1.data(), c2.data(),
                                 c1.size() * sizeof(float)))
            << "m=" << s.m << " n=" << s.n << " k=" << s.k
            << " tb=" << trans_b << " parallel=" << parallel;
      }
    }
  }
}

TEST(GemmS8PackedBBitwiseTest, MatchesOnTheFlyBothTransposes) {
  for (const Shape& s : kShapes) {
    for (bool trans_b : {false, true}) {
      Rng rng(s.m * 19 + s.n * 5 + s.k + trans_b);
      std::vector<int8_t> a(s.m * s.k), b(s.k * s.n);
      FillInt8(&a, rng);
      FillInt8(&b, rng);
      std::vector<float> col_scale(s.n), col_bias(s.n);
      for (auto& v : col_scale) v = rng.Uniform(0.01f, 1.0f);
      for (auto& v : col_bias) v = rng.Uniform(-1.0f, 1.0f);
      GemmS8Epilogue ep;
      ep.scale = 0.031f;
      ep.col_scale = col_scale.data();
      ep.col_bias = col_bias.data();
      ep.relu = true;
      PackedS8BWeights packed =
          PackedS8BWeights::Pack(trans_b, s.k, s.n, b.data());
      EXPECT_EQ(packed.depth(), s.k);
      EXPECT_EQ(packed.cols(), s.n);
      EXPECT_GT(packed.nbytes(), 0);
      for (bool parallel : {false, true}) {
        std::vector<float> c1(s.m * s.n, -1.0f), c2(s.m * s.n, -1.0f);
        GemmS8(false, trans_b, s.m, s.n, s.k, a.data(), b.data(), c1.data(),
               ep, parallel);
        GemmS8PackedB(/*trans_a=*/false, s.m, a.data(), packed, c2.data(),
                      ep, parallel);
        ASSERT_EQ(0, std::memcmp(c1.data(), c2.data(),
                                 c1.size() * sizeof(float)))
            << "m=" << s.m << " n=" << s.n << " k=" << s.k
            << " tb=" << trans_b << " parallel=" << parallel;
      }
    }
  }
}

TEST(PackedS8WeightsTest, UnpackIsTheExactInverseOfPack) {
  const std::vector<std::pair<int64_t, int64_t>> shapes = {
      {1, 1}, {5, 3}, {16, 64}, {241, 130}, {33, 321}};
  for (const auto& [m, k] : shapes) {
    Rng rng(m * 100 + k);
    std::vector<int8_t> a(m * k);
    FillInt8(&a, rng);
    PackedS8Weights packed = PackedS8Weights::Pack(m, k, a.data());
    std::vector<int8_t> back(m * k, 99);
    packed.Unpack(back.data());
    ASSERT_EQ(0, std::memcmp(a.data(), back.data(), a.size()))
        << "m=" << m << " k=" << k;
  }
}

TEST(LayerPrepackTest, LinearF32PrepackedForwardIsBitwise) {
  Rng rng1(5), rng2(5), rngx(6);
  Linear plain(130, 70, rng1);
  Linear packed(130, 70, rng2);
  packed.Prepack(ServingPrecision::kFloat32);
  EXPECT_GT(packed.PackedWeightBytes(), 0);
  EXPECT_EQ(plain.PackedWeightBytes(), 0);
  Tensor x = Tensor::Randn({9, 130}, rngx);
  Tensor y1 = plain.Forward(x, /*training=*/false);
  Tensor y2 = packed.Forward(x, /*training=*/false);
  ASSERT_EQ(0, std::memcmp(y1.data(), y2.data(),
                           y1.numel() * sizeof(float)));
  // Fused-ReLU epilogue path too.
  Tensor r1 = plain.ForwardFusedRelu(x);
  Tensor r2 = packed.ForwardFusedRelu(x);
  ASSERT_EQ(0, std::memcmp(r1.data(), r2.data(),
                           r1.numel() * sizeof(float)));
}

// Int8 Linear packs its op(B) panels at conversion time: every int8
// forward serves from the panels (no raw weight copy exists), Prepack is
// a no-op that changes nothing, and the panels count under
// Int8WeightBytes only.
TEST(LayerPrepackTest, LinearInt8PacksAtConversionBitwise) {
  Rng rng1(7), rng2(7), rngx(8);
  Linear plain(96, 40, rng1);
  Linear packed(96, 40, rng2);
  plain.PrepareInt8Serving();
  packed.PrepareInt8Serving();
  packed.Prepack(ServingPrecision::kInt8);
  EXPECT_EQ(packed.PackedWeightBytes(), 0);
  EXPECT_GT(packed.Int8WeightBytes(), 0);
  EXPECT_EQ(packed.Int8WeightBytes(), plain.Int8WeightBytes());
  Tensor x = Tensor::Randn({11, 96}, rngx);
  Tensor y1 = plain.Forward(x, /*training=*/false);
  Tensor y2 = packed.Forward(x, /*training=*/false);
  ASSERT_EQ(0, std::memcmp(y1.data(), y2.data(),
                           y1.numel() * sizeof(float)));
}

TEST(LayerPrepackTest, ConvF32PrepackedForwardIsBitwise) {
  for (int kernel : {1, 3}) {
    Rng rng1(3), rng2(3), rngx(4);
    const int pad = kernel / 2;
    Conv2d plain(6, 10, kernel, 1, pad, rng1, /*bias=*/true);
    Conv2d packed(6, 10, kernel, 1, pad, rng2, /*bias=*/true);
    packed.Prepack(ServingPrecision::kFloat32);
    EXPECT_GT(packed.PackedWeightBytes(), 0);
    Tensor x = Tensor::Randn({2, 6, 9, 9}, rngx);
    Tensor y1 = plain.Forward(x, /*training=*/false);
    Tensor y2 = packed.Forward(x, /*training=*/false);
    ASSERT_EQ(0, std::memcmp(y1.data(), y2.data(),
                             y1.numel() * sizeof(float)))
        << "kernel=" << kernel;
  }
}

// Calibrating on exactly the probe batch makes the static activation
// scale equal the dynamic max-abs scale, so the static-scale serving path
// must reproduce the dynamic path bit for bit.
TEST(LayerPrepackTest, ConvInt8StaticScaleMatchesDynamicBitwise) {
  Rng rng1(9), rng2(9), rngx(10);
  Conv2d dynamic(5, 8, 3, 1, 1, rng1);
  Conv2d calibrated(5, 8, 3, 1, 1, rng2);
  Tensor x = Tensor::Randn({3, 5, 7, 7}, rngx);
  calibrated.BeginActivationCalibration();
  calibrated.Forward(x, /*training=*/false);
  calibrated.FinishActivationCalibration();
  EXPECT_GT(calibrated.static_act_scale(), 0.0f);
  dynamic.PrepareInt8Serving();
  calibrated.PrepareInt8Serving();
  Tensor y1 = dynamic.Forward(x, /*training=*/false);
  Tensor y2 = calibrated.Forward(x, /*training=*/false);
  ASSERT_EQ(0, std::memcmp(y1.data(), y2.data(),
                           y1.numel() * sizeof(float)));
}

TEST(LayerPrepackTest, LinearInt8StaticScaleMatchesDynamicBitwise) {
  Rng rng1(13), rng2(13), rngx(14);
  Linear dynamic(48, 20, rng1);
  Linear calibrated(48, 20, rng2);
  Tensor x = Tensor::Randn({6, 48}, rngx);
  calibrated.BeginActivationCalibration();
  calibrated.Forward(x, /*training=*/false);
  calibrated.FinishActivationCalibration();
  dynamic.PrepareInt8Serving();
  calibrated.PrepareInt8Serving();
  calibrated.Prepack(ServingPrecision::kInt8);
  Tensor y1 = dynamic.Forward(x, /*training=*/false);
  Tensor y2 = calibrated.Forward(x, /*training=*/false);
  ASSERT_EQ(0, std::memcmp(y1.data(), y2.data(),
                           y1.numel() * sizeof(float)));
}

TEST(LayerPrepackTest, PrepackIsIdempotent) {
  Rng rng(21);
  Linear lin(32, 16, rng);
  lin.Prepack(ServingPrecision::kFloat32);
  const int64_t bytes = lin.PackedWeightBytes();
  lin.Prepack(ServingPrecision::kFloat32);
  EXPECT_EQ(lin.PackedWeightBytes(), bytes);
  // Int8 conversion drops the stale f32 panels and builds the int8 op(B)
  // panels immediately (conversion-time packing): they count under
  // Int8WeightBytes, not PackedWeightBytes, and Prepack(kInt8) is a no-op.
  lin.PrepareInt8Serving();
  EXPECT_EQ(lin.PackedWeightBytes(), 0);
  const int64_t int8_bytes = lin.Int8WeightBytes();
  EXPECT_GT(int8_bytes, 0);
  lin.Prepack(ServingPrecision::kInt8);
  EXPECT_EQ(lin.PackedWeightBytes(), 0);
  EXPECT_EQ(lin.Int8WeightBytes(), int8_bytes);
}

}  // namespace
}  // namespace poe

#include "nn/losses.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.h"
#include "util/rng.h"

namespace poe {
namespace {

// Numeric gradient of a loss wrt student logits.
template <typename LossFn>
void CheckLossGradient(const Tensor& logits, LossFn&& loss_fn,
                       float tol = 2e-3f) {
  LossResult analytic = loss_fn(logits);
  Tensor x = logits.Clone();
  const float eps = 1e-3f;
  for (int64_t i = 0; i < x.numel(); ++i) {
    const float saved = x.at(i);
    x.at(i) = saved + eps;
    const float plus = loss_fn(x).loss;
    x.at(i) = saved - eps;
    const float minus = loss_fn(x).loss;
    x.at(i) = saved;
    const float numeric = (plus - minus) / (2 * eps);
    EXPECT_NEAR(analytic.grad.at(i), numeric, tol) << "at " << i;
  }
}

TEST(CrossEntropyTest, UniformLogitsGiveLogC) {
  Tensor logits = Tensor::Zeros({2, 4});
  LossResult r = SoftmaxCrossEntropy(logits, {0, 3});
  EXPECT_NEAR(r.loss, std::log(4.0f), 1e-5f);
}

TEST(CrossEntropyTest, ConfidentCorrectHasLowLoss) {
  Tensor logits = Tensor::FromVector({1, 3}, {10, 0, 0});
  LossResult r = SoftmaxCrossEntropy(logits, {0});
  EXPECT_LT(r.loss, 1e-3f);
}

TEST(CrossEntropyTest, GradientMatchesFiniteDifferences) {
  Rng rng(1);
  Tensor logits = Tensor::Randn({3, 5}, rng);
  std::vector<int> labels = {1, 4, 0};
  CheckLossGradient(logits, [&](const Tensor& s) {
    return SoftmaxCrossEntropy(s, labels);
  });
}

TEST(CrossEntropyTest, GradientRowsSumToZero) {
  Rng rng(2);
  Tensor logits = Tensor::Randn({2, 4}, rng);
  LossResult r = SoftmaxCrossEntropy(logits, {0, 2});
  for (int row = 0; row < 2; ++row) {
    float s = 0;
    for (int c = 0; c < 4; ++c) s += r.grad.at(row * 4 + c);
    EXPECT_NEAR(s, 0.0f, 1e-6f);
  }
}

TEST(DistillKlTest, ZeroWhenStudentEqualsTeacher) {
  Rng rng(3);
  Tensor t = Tensor::Randn({4, 6}, rng);
  LossResult r = DistillationKl(t, t, 4.0f);
  EXPECT_NEAR(r.loss, 0.0f, 1e-5f);
  EXPECT_LT(MaxValue(r.grad), 1e-5f);
}

TEST(DistillKlTest, PositiveWhenDifferent) {
  Tensor t = Tensor::FromVector({1, 2}, {2, 0});
  Tensor s = Tensor::FromVector({1, 2}, {0, 2});
  EXPECT_GT(DistillationKl(t, s, 1.0f).loss, 0.1f);
}

TEST(DistillKlTest, ShiftInvariantInBothArguments) {
  // KL depends only on softmax, so adding constants changes nothing.
  Tensor t = Tensor::FromVector({1, 3}, {1, 2, 3});
  Tensor s = Tensor::FromVector({1, 3}, {0, 1, 0});
  Tensor t2 = Tensor::FromVector({1, 3}, {11, 12, 13});
  Tensor s2 = Tensor::FromVector({1, 3}, {-5, -4, -5});
  EXPECT_NEAR(DistillationKl(t, s, 2.0f).loss,
              DistillationKl(t2, s2, 2.0f).loss, 1e-5f);
}

TEST(DistillKlTest, GradientMatchesFiniteDifferences) {
  Rng rng(4);
  Tensor t = Tensor::Randn({2, 4}, rng);
  Tensor s0 = Tensor::Randn({2, 4}, rng);
  CheckLossGradient(s0, [&](const Tensor& s) {
    return DistillationKl(t, s, 3.0f);
  });
}

TEST(DistillKlTest, GradientWithoutTSquaredScaling) {
  Rng rng(5);
  Tensor t = Tensor::Randn({2, 3}, rng);
  Tensor s0 = Tensor::Randn({2, 3}, rng);
  CheckLossGradient(s0, [&](const Tensor& s) {
    return DistillationKl(t, s, 2.0f, /*scale_t_squared=*/false);
  });
}

TEST(DistillKlTest, TSquaredScalingMultipliesLoss) {
  Rng rng(6);
  Tensor t = Tensor::Randn({2, 3}, rng);
  Tensor s = Tensor::Randn({2, 3}, rng);
  const float T = 4.0f;
  LossResult scaled = DistillationKl(t, s, T, true);
  LossResult raw = DistillationKl(t, s, T, false);
  EXPECT_NEAR(scaled.loss, raw.loss * T * T, 1e-4f);
}

TEST(L1LogitTest, ZeroAtTarget) {
  Tensor t = Tensor::FromVector({1, 3}, {1, -2, 3});
  LossResult r = L1LogitLoss(t, t);
  EXPECT_EQ(r.loss, 0.0f);
}

TEST(L1LogitTest, MeanOverBatchSumOverClasses) {
  Tensor t = Tensor::Zeros({2, 2});
  Tensor s = Tensor::FromVector({2, 2}, {1, -1, 2, 0});
  // Row sums of |s - t|: 2 and 2; mean over batch = 2.
  EXPECT_FLOAT_EQ(L1LogitLoss(t, s).loss, 2.0f);
}

TEST(L1LogitTest, GradientIsSignOverBatch) {
  Tensor t = Tensor::Zeros({2, 2});
  Tensor s = Tensor::FromVector({2, 2}, {1, -1, 2, 0});
  LossResult r = L1LogitLoss(t, s);
  EXPECT_FLOAT_EQ(r.grad.at(0), 0.5f);
  EXPECT_FLOAT_EQ(r.grad.at(1), -0.5f);
  EXPECT_FLOAT_EQ(r.grad.at(2), 0.5f);
  EXPECT_FLOAT_EQ(r.grad.at(3), 0.0f);
}

TEST(L1LogitTest, CarriesScaleInformation) {
  // Unlike KL, L1 distinguishes logits with equal softmax but different
  // scales - exactly why the paper adds it (the logit scale problem).
  Tensor t = Tensor::FromVector({1, 2}, {4, 2});
  Tensor s_same_softmax = Tensor::FromVector({1, 2}, {2, 0});
  EXPECT_NEAR(DistillationKl(t, s_same_softmax, 1.0f).loss, 0.0f, 1e-5f);
  EXPECT_GT(L1LogitLoss(t, s_same_softmax).loss, 1.0f);
}

TEST(CountCorrectTest, CountsArgmaxMatches) {
  Tensor logits = Tensor::FromVector({3, 2}, {1, 0, 0, 1, 5, 2});
  EXPECT_EQ(CountCorrect(logits, {0, 1, 0}), 3);
  EXPECT_EQ(CountCorrect(logits, {1, 1, 0}), 2);
}

}  // namespace
}  // namespace poe

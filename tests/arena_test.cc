#include "tensor/arena.h"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

namespace poe {
namespace {

TEST(ArenaTest, AllocReturnsWritableMemory) {
  ScratchArena arena;
  {
    ScratchScope scope(arena);
    float* p = scope.Alloc(1000);
    ASSERT_NE(p, nullptr);
    std::memset(p, 0, 1000 * sizeof(float));
    p[0] = 1.0f;
    p[999] = 2.0f;
    EXPECT_FLOAT_EQ(p[0], 1.0f);
    EXPECT_FLOAT_EQ(p[999], 2.0f);
  }
}

TEST(ArenaTest, ScopeRewindReusesMemory) {
  ScratchArena arena;
  float* first;
  {
    ScratchScope scope(arena);
    first = scope.Alloc(512);
  }
  const int64_t cap = arena.capacity();
  {
    ScratchScope scope(arena);
    float* again = scope.Alloc(512);
    EXPECT_EQ(first, again) << "rewound scope should replay placements";
  }
  EXPECT_EQ(cap, arena.capacity()) << "no growth on replay";
}

// Growing a new block must not invalidate pointers handed out earlier in
// the same scope (the property the nested conv->gemm allocation pattern
// relies on).
TEST(ArenaTest, GrowthPreservesEarlierPointers) {
  ScratchArena arena;
  ScratchScope scope(arena);
  // Larger than one minimum block so a second block is certainly needed.
  const int64_t big = (1 << 18) + 1000;
  float* a = scope.Alloc(big);
  a[0] = 42.0f;
  a[big - 1] = 43.0f;
  float* b = scope.Alloc(big);
  b[0] = 1.0f;
  EXPECT_FLOAT_EQ(a[0], 42.0f);
  EXPECT_FLOAT_EQ(a[big - 1], 43.0f);
  EXPECT_GE(arena.num_blocks(), 2);
}

TEST(ArenaTest, NestedScopesRestoreInLifoOrder) {
  ScratchArena arena;
  ScratchScope outer(arena);
  float* a = outer.Alloc(64);
  a[0] = 7.0f;
  float* inner_ptr;
  {
    ScratchScope inner(arena);
    inner_ptr = inner.Alloc(64);
    EXPECT_NE(a, inner_ptr);
  }
  // After the inner scope rewinds, its space is reusable...
  {
    ScratchScope inner(arena);
    EXPECT_EQ(inner_ptr, inner.Alloc(64));
  }
  // ...while the outer allocation is untouched.
  EXPECT_FLOAT_EQ(a[0], 7.0f);
}

TEST(ArenaTest, SteadyStateCapacityIsStable) {
  ScratchArena arena;
  for (int round = 0; round < 5; ++round) {
    ScratchScope scope(arena);
    scope.Alloc(100);
    scope.Alloc(5000);
    scope.Alloc(70000);
  }
  const int64_t cap = arena.capacity();
  const int64_t blocks = arena.num_blocks();
  for (int round = 0; round < 5; ++round) {
    ScratchScope scope(arena);
    scope.Alloc(100);
    scope.Alloc(5000);
    scope.Alloc(70000);
  }
  EXPECT_EQ(cap, arena.capacity());
  EXPECT_EQ(blocks, arena.num_blocks());
}

TEST(ArenaTest, ThreadLocalInstancesAreDistinct) {
  ScratchArena* main_arena = &ScratchArena::ThreadLocal();
  ScratchArena* other_arena = nullptr;
  std::thread t([&] { other_arena = &ScratchArena::ThreadLocal(); });
  t.join();
  ASSERT_NE(other_arena, nullptr);
  EXPECT_NE(main_arena, other_arena);
}

}  // namespace
}  // namespace poe

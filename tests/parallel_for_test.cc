#include "util/parallel_for.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace poe {
namespace {

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  const int64_t n = 100000;
  std::vector<std::atomic<int>> hits(n);
  ParallelFor(n, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (int64_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForTest, SmallRangeRunsInline) {
  int64_t sum = 0;  // no synchronization: must run on the calling thread
  ParallelFor(
      100, [&](int64_t begin, int64_t end) { sum += end - begin; },
      /*min_chunk=*/1024);
  EXPECT_EQ(sum, 100);
}

TEST(ParallelForTest, ZeroAndNegativeAreNoops) {
  bool called = false;
  ParallelFor(0, [&](int64_t, int64_t) { called = true; });
  ParallelFor(-5, [&](int64_t, int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, ComputesParallelSum) {
  const int64_t n = 1 << 20;
  std::vector<int64_t> data(n);
  std::iota(data.begin(), data.end(), 0);
  std::atomic<int64_t> total{0};
  ParallelFor(n, [&](int64_t begin, int64_t end) {
    int64_t local = 0;
    for (int64_t i = begin; i < end; ++i) local += data[i];
    total.fetch_add(local);
  });
  EXPECT_EQ(total.load(), n * (n - 1) / 2);
}

TEST(ParallelForTest, RepeatedInvocationsAreStable) {
  for (int round = 0; round < 50; ++round) {
    std::atomic<int64_t> count{0};
    ParallelFor(
        5000, [&](int64_t begin, int64_t end) { count += end - begin; },
        /*min_chunk=*/16);
    ASSERT_EQ(count.load(), 5000);
  }
}

TEST(ParallelForTest, NumThreadsIsPositive) {
  EXPECT_GE(NumThreads(), 1);
}

}  // namespace
}  // namespace poe

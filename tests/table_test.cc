#include "eval/table.h"

#include <gtest/gtest.h>

namespace poe {
namespace {

TEST(TablePrinterTest, RendersHeaderAndRows) {
  TablePrinter t({"Name", "Value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"beta", "22"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("Name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
}

TEST(TablePrinterTest, ColumnsAlign) {
  TablePrinter t({"A", "B"});
  t.AddRow({"x", "long-cell-content"});
  t.AddRow({"longer-name", "y"});
  const std::string s = t.ToString();
  // Every rendered line between separators has the same length.
  size_t line_len = 0;
  size_t pos = 0;
  while (pos < s.size()) {
    size_t end = s.find('\n', pos);
    if (end == std::string::npos) break;
    const size_t len = end - pos;
    if (line_len == 0) line_len = len;
    EXPECT_EQ(len, line_len);
    pos = end + 1;
  }
}

TEST(TablePrinterTest, SeparatorRendersAsLine) {
  TablePrinter t({"A"});
  t.AddRow({"1"});
  t.AddSeparator();
  t.AddRow({"2"});
  const std::string s = t.ToString();
  // Header sep + one mid sep + bottom sep + top = 4 separator lines.
  size_t count = 0, pos = 0;
  while ((pos = s.find("+--", pos)) != std::string::npos) {
    ++count;
    pos += 3;
  }
  EXPECT_EQ(count, 4u);
}

TEST(TablePrinterTest, PctFormatsFractionsAsPercent) {
  EXPECT_EQ(TablePrinter::Pct(0.7654), "76.54");
  EXPECT_EQ(TablePrinter::Pct(0.5, 1), "50.0");
  EXPECT_EQ(TablePrinter::Pct(1.0, 0), "100");
}

TEST(TablePrinterTest, NumFormats) {
  EXPECT_EQ(TablePrinter::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Num(2.0, 0), "2");
}

TEST(TablePrinterTest, HumanBytes) {
  EXPECT_EQ(TablePrinter::HumanBytes(512), "512.00B");
  EXPECT_EQ(TablePrinter::HumanBytes(2048), "2.00KB");
  EXPECT_EQ(TablePrinter::HumanBytes(3 * 1024 * 1024), "3.00MB");
  EXPECT_EQ(TablePrinter::HumanBytes(int64_t{5} << 30), "5.00GB");
}

TEST(TablePrinterTest, HumanCount) {
  EXPECT_EQ(TablePrinter::HumanCount(999), "999");
  EXPECT_EQ(TablePrinter::HumanCount(1500), "1.50K");
  EXPECT_EQ(TablePrinter::HumanCount(8970000), "8.97M");
  EXPECT_EQ(TablePrinter::HumanCount(1300000000), "1.30B");
}

}  // namespace
}  // namespace poe

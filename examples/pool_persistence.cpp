// Pool persistence and evolution: save a preprocessed pool, detect file
// corruption, reload, and hot-add an expert for a brand-new primitive task
// without touching existing experts (extension feature).
#include <cstdio>
#include <fstream>

#include "core/expert_pool.h"
#include "core/serialization.h"
#include "data/synthetic.h"
#include "distill/specialize.h"
#include "eval/metrics.h"
#include "util/rng.h"

using namespace poe;

int main() {
  // Dataset with 5 primitive tasks; the pool is first built over 4 of
  // them, task 4 arrives "later".
  SyntheticDataConfig dc;
  dc.num_tasks = 5;
  dc.classes_per_task = 3;
  dc.train_per_class = 32;
  dc.test_per_class = 10;
  dc.noise = 0.8f;
  SyntheticDataset data = GenerateSyntheticDataset(dc);

  Rng rng(5);
  WrnConfig oracle_cfg;
  oracle_cfg.kc = 2.0;
  oracle_cfg.ks = 2.0;
  oracle_cfg.num_classes = data.hierarchy.num_classes();
  Wrn oracle(oracle_cfg, rng);
  TrainOptions opts;
  opts.epochs = 14;
  opts.lr = 0.08f;
  opts.lr_decay_epochs = {10, 13};
  std::printf("training oracle...\n");
  TrainScratch(oracle, data.train, opts);
  std::printf("oracle test accuracy: %.1f%%\n",
              100 * EvaluateAccuracy(ModelLogits(oracle), data.test));

  // Build a pool over the first 4 tasks only.
  SyntheticDataset initial = data;
  initial.hierarchy =
      ClassHierarchy::FromTasks({data.hierarchy.task_classes(0),
                                 data.hierarchy.task_classes(1),
                                 data.hierarchy.task_classes(2),
                                 data.hierarchy.task_classes(3)})
          .ValueOrDie();
  // The library student still covers ALL oracle classes.
  PoeBuildConfig build;
  build.library_config = oracle_cfg;
  build.library_config.kc = 1.0;
  build.library_config.ks = 1.0;
  build.library_config.num_classes = data.hierarchy.num_classes();
  build.expert_ks = 0.25;
  build.library_options = opts;
  build.expert_options = opts;
  // Keep only samples of the first 4 tasks? No - CKD deliberately uses all
  // data, including out-of-distribution samples (Section 4.1).
  std::printf("preprocessing pool over 4 of 5 primitive tasks...\n");
  ExpertPool pool =
      ExpertPool::Preprocess(ModelLogits(oracle), initial, build, rng);

  const std::string path = "/tmp/persistence_pool.poe";
  Status s = pool.Save(path);
  std::printf("saved pool to %s: %s\n", path.c_str(), s.ToString().c_str());

  // Corruption detection: flip a byte in a copy and try to load it.
  {
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    bytes[bytes.size() / 2] ^= 0x20;
    const std::string bad_path = "/tmp/persistence_pool_corrupt.poe";
    std::ofstream out(bad_path, std::ios::binary);
    out << bytes;
    out.close();
    auto r = ExpertPool::Load(bad_path);
    std::printf("loading corrupted copy: %s (expected CORRUPTION)\n",
                r.status().ToString().c_str());
  }

  // Reload the good file and hot-add the 5th task.
  ExpertPool reloaded = ExpertPool::Load(path).ValueOrDie();
  std::printf("reloaded pool: %d experts\n", reloaded.num_experts());
  s = reloaded.AddExpert(ModelLogits(oracle), data.train,
                         data.hierarchy.task_classes(4), opts, CkdOptions{},
                         rng);
  std::printf("hot-added expert for task 4: %s\n", s.ToString().c_str());

  // Query single tasks and a composite task spanning old + new knowledge.
  for (const std::vector<int>& q :
       {std::vector<int>{1}, {4}, {1, 4}}) {
    TaskModel model = reloaded.Query(q).ValueOrDie();
    Dataset test = FilterClasses(
        data.test, data.hierarchy.CompositeClasses(q), true);
    LogitFn fn = [&](const Tensor& x) { return model.Logits(x); };
    std::printf("task {");
    for (size_t i = 0; i < q.size(); ++i)
      std::printf("%s%d", i ? "," : "", q[i]);
    std::printf("} accuracy after hot-add: %.1f%%\n",
                100 * EvaluateAccuracy(fn, test));
  }

  // Existing experts were untouched: re-save and verify determinism.
  const std::string path2 = "/tmp/persistence_pool_v2.poe";
  s = reloaded.Save(path2);
  std::printf("saved extended pool (%d experts) to %s: %s\n",
              reloaded.num_experts(), path2.c_str(), s.ToString().c_str());
  return 0;
}

// The paper's motivating scenario (Section 1): a mobile user walks through
// an animal theme park. Entering a restaurant they need a food classifier;
// returning to the animal area they need an animal classifier; at the
// souvenir shop both. Each context switch issues a model query, and PoE
// answers with a fresh task-specific model in milliseconds - no retraining,
// no giant generic model shipped to the device.
#include <cstdio>
#include <string>
#include <vector>

#include "core/expert_pool.h"
#include "core/query_service.h"
#include "data/synthetic.h"
#include "distill/specialize.h"
#include "eval/metrics.h"
#include "models/cost.h"
#include "util/stopwatch.h"

using namespace poe;

namespace {

struct Context {
  std::string place;
  std::vector<int> tasks;  // primitive tasks the user needs here
};

}  // namespace

int main() {
  // 8 primitive tasks standing in for semantic superclasses.
  const std::vector<std::string> task_names = {
      "mammals", "birds",   "reptiles", "fish",
      "dishes",  "drinks",  "desserts", "souvenirs"};
  SyntheticDataConfig dc;
  dc.num_tasks = static_cast<int>(task_names.size());
  dc.classes_per_task = 4;
  dc.train_per_class = 20;
  dc.test_per_class = 8;
  dc.noise = 0.8f;
  SyntheticDataset data = GenerateSyntheticDataset(dc);

  // Server side: one-time preprocessing of the oracle into a pool.
  Rng rng(7);
  WrnConfig oracle_cfg;
  oracle_cfg.kc = 2.0;
  oracle_cfg.ks = 2.0;
  oracle_cfg.num_classes = data.hierarchy.num_classes();
  Wrn oracle(oracle_cfg, rng);
  TrainOptions opts;
  opts.epochs = 10;
  opts.lr = 0.08f;
  std::printf("[server] training oracle and preprocessing the pool "
              "(one-time)...\n");
  TrainScratch(oracle, data.train, opts);

  PoeBuildConfig build;
  build.library_config = oracle_cfg;
  build.library_config.kc = 1.0;
  build.library_config.ks = 1.0;
  build.expert_ks = 0.25;
  build.library_options = opts;
  build.expert_options = opts;
  ModelQueryService service(
      ExpertPool::Preprocess(ModelLogits(oracle), data, build, rng),
      /*cache_capacity=*/4);
  std::printf("[server] ready: %d experts in the pool\n\n",
              service.pool().num_experts());

  // Client side: a day at the theme park.
  const std::vector<Context> day = {
      {"animal area (morning)", {0, 1, 2, 3}},
      {"restaurant (lunch)", {4, 5}},
      {"animal area (afternoon)", {0, 1, 2, 3}},  // cache hit
      {"dessert stand", {6}},
      {"souvenir shop (evening)", {7, 4}},
  };

  const int64_t hw = dc.height;
  ModelCost oracle_cost = CostOfWrn(oracle_cfg, hw, hw);
  for (const Context& ctx : day) {
    Stopwatch sw;
    auto model = service.Query(ctx.tasks).ValueOrDie();
    const double ms = sw.ElapsedMillis();

    Dataset test = FilterClasses(
        data.test, data.hierarchy.CompositeClasses(ctx.tasks), true);
    LogitFn fn = [&](const Tensor& x) { return model->Logits(x); };
    const float acc = EvaluateAccuracy(fn, test);
    ModelCost cost = model->Cost(hw, hw);

    std::printf("[client] %-26s needs {", ctx.place.c_str());
    for (size_t i = 0; i < ctx.tasks.size(); ++i)
      std::printf("%s%s", i ? ", " : "", task_names[ctx.tasks[i]].c_str());
    std::printf("}\n");
    std::printf(
        "         model delivered in %6.2fms | acc %.1f%% | %lld params "
        "(oracle/model size ratio %.0fx)\n",
        ms, 100 * acc, static_cast<long long>(cost.params),
        static_cast<double>(oracle_cost.params) / cost.params);
  }

  QueryStats stats = service.stats();
  std::printf(
      "\n[server] served %lld queries, %lld cache hits, avg %.2fms, max "
      "%.2fms\n",
      static_cast<long long>(stats.num_queries),
      static_cast<long long>(stats.cache_hits), stats.avg_ms(),
      stats.max_ms);
  return 0;
}

// Class-level querying via the planner (extension feature): the client
// names classes ("cat", "pizza"), the planner maps them to the minimal set
// of primitive experts, and the delivered model's logits are restricted
// back to exactly the requested classes.
#include <cstdio>
#include <string>
#include <vector>

#include "core/expert_pool.h"
#include "core/planner.h"
#include "data/synthetic.h"
#include "distill/specialize.h"
#include "eval/metrics.h"
#include "models/wrn.h"
#include "util/rng.h"

using namespace poe;

int main() {
  SyntheticDataConfig dc;
  dc.num_tasks = 5;
  dc.classes_per_task = 4;  // 20 classes total
  dc.train_per_class = 20;
  dc.test_per_class = 8;
  dc.noise = 0.8f;
  SyntheticDataset data = GenerateSyntheticDataset(dc);

  Rng rng(17);
  WrnConfig oracle_cfg;
  oracle_cfg.kc = 2.0;
  oracle_cfg.ks = 2.0;
  oracle_cfg.num_classes = data.hierarchy.num_classes();
  Wrn oracle(oracle_cfg, rng);
  TrainOptions opts;
  opts.epochs = 10;
  opts.lr = 0.08f;
  std::printf("training oracle + preprocessing pool...\n");
  TrainScratch(oracle, data.train, opts);

  PoeBuildConfig build;
  build.library_config = oracle_cfg;
  build.library_config.kc = 1.0;
  build.library_config.ks = 1.0;
  build.expert_ks = 0.25;
  build.library_options = opts;
  build.expert_options = opts;
  ExpertPool pool = ExpertPool::Preprocess(ModelLogits(oracle), data, build,
                                           rng);

  // Client asks for specific classes scattered over the hierarchy.
  const std::vector<std::vector<int>> requests = {
      {0, 1},        // two classes in one superclass -> one expert
      {2, 9, 17},    // three superclasses -> three experts
      {5, 5, 6, 7},  // duplicates collapse
  };
  for (const auto& classes : requests) {
    QueryPlan plan = PlanClassQuery(data.hierarchy, classes).ValueOrDie();
    TaskModel model = pool.Query(plan.task_ids).ValueOrDie();
    LogitFn restricted = RestrictToRequestedClasses(model, plan);

    // Evaluate on test samples of exactly the requested classes.
    Dataset test = FilterClasses(data.test, plan.requested_classes, true);
    const float acc = EvaluateAccuracy(restricted, test);

    std::printf("request {");
    for (size_t i = 0; i < classes.size(); ++i)
      std::printf("%s%d", i ? "," : "", classes[i]);
    std::printf("} -> %zu expert(s), %d covered classes (%d beyond the "
                "request), restricted accuracy %.1f%%\n",
                plan.task_ids.size(), (int)plan.covered_classes.size(),
                plan.excess_classes(), 100 * acc);
  }
  std::printf("done.\n");
  return 0;
}

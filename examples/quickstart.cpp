// Quickstart: the full PoE pipeline on a small synthetic benchmark.
//
//  1. Train an oracle classifier (stands in for a massive pretrained model).
//  2. Preprocessing phase: extract the library + a pool of experts.
//  3. Service phase: query task-specific models in realtime.
//  4. Persist the pool and query it again after reloading.
//
// Runs in about a minute on a laptop. See examples/zoo_restaurant.cpp for
// the paper's motivating scenario and examples/aiaas_server.cpp for a
// multi-client serving loop.
#include <cstdio>

#include "core/expert_pool.h"
#include "core/query_service.h"
#include "data/synthetic.h"
#include "distill/specialize.h"
#include "eval/metrics.h"
#include "models/wrn.h"
#include "util/stopwatch.h"

using namespace poe;

int main() {
  // ---- 0. A small hierarchical dataset: 6 primitive tasks x 4 classes.
  SyntheticDataConfig dc;
  dc.num_tasks = 6;
  dc.classes_per_task = 4;
  dc.train_per_class = 24;
  dc.test_per_class = 10;
  dc.noise = 0.8f;
  SyntheticDataset data = GenerateSyntheticDataset(dc);
  std::printf("dataset: %d classes in %d primitive tasks, %lld train / %lld "
              "test images\n",
              data.hierarchy.num_classes(), data.hierarchy.num_tasks(),
              static_cast<long long>(data.train.size()),
              static_cast<long long>(data.test.size()));

  // ---- 1. The oracle: a generic model covering every class.
  Rng rng(42);
  WrnConfig oracle_cfg;
  oracle_cfg.kc = 2.0;
  oracle_cfg.ks = 2.0;
  oracle_cfg.num_classes = data.hierarchy.num_classes();
  Wrn oracle(oracle_cfg, rng);
  TrainOptions train_opts;
  train_opts.epochs = 12;
  train_opts.lr = 0.08f;
  train_opts.lr_decay_epochs = {9, 11};
  std::printf("training oracle %s...\n", oracle_cfg.ToString().c_str());
  TrainScratch(oracle, data.train, train_opts);
  std::printf("oracle test accuracy: %.1f%%\n",
              100 * EvaluateAccuracy(ModelLogits(oracle), data.test));

  // ---- 2. Preprocessing phase: library extraction + expert extraction.
  PoeBuildConfig build;
  build.library_config = oracle_cfg;
  build.library_config.kc = 1.0;
  build.library_config.ks = 1.0;
  build.expert_ks = 0.25;
  build.library_options = train_opts;
  build.expert_options = train_opts;
  build.expert_options.lr = 0.05f;
  PoeBuildStats stats;
  ExpertPool pool = ExpertPool::Preprocess(ModelLogits(oracle), data, build,
                                           rng, &stats);
  std::printf("pool built: library %.1fs + %d experts %.1fs\n",
              stats.library_seconds, pool.num_experts(),
              stats.experts_seconds);

  // ---- 3. Service phase: realtime task-specific model queries.
  ModelQueryService service(std::move(pool), /*cache_capacity=*/8);
  for (const std::vector<int>& query :
       {std::vector<int>{0, 1}, {2, 4, 5}, {3}}) {
    Stopwatch sw;
    auto model = service.Query(query).ValueOrDie();
    const double ms = sw.ElapsedMillis();
    Dataset test = FilterClasses(
        data.test, data.hierarchy.CompositeClasses(query), true);
    LogitFn fn = [&](const Tensor& x) { return model->Logits(x); };
    std::printf("query {");
    for (size_t i = 0; i < query.size(); ++i)
      std::printf("%s%d", i ? "," : "", query[i]);
    std::printf("} -> model with %d branches, %lld params, assembled in "
                "%.3fms, accuracy %.1f%%\n",
                model->num_branches(),
                static_cast<long long>(model->NumParams()), ms,
                100 * EvaluateAccuracy(fn, test));
  }

  // ---- 4. Persistence round-trip.
  const std::string path = "/tmp/quickstart_pool.poe";
  Status s = service.pool().Save(path);
  if (!s.ok()) {
    std::printf("save failed: %s\n", s.ToString().c_str());
    return 1;
  }
  auto reloaded = ExpertPool::Load(path);
  if (!reloaded.ok()) {
    std::printf("load failed: %s\n", reloaded.status().ToString().c_str());
    return 1;
  }
  auto model = reloaded.ValueOrDie().Query({0, 5}).ValueOrDie();
  std::printf("reloaded pool from %s and assembled a %d-branch model.\n",
              path.c_str(), model.num_branches());
  std::printf("done.\n");
  return 0;
}

// A realtime AIaaS serving loop: multiple client threads issue composite-
// task model queries against one ModelQueryService while the service
// tracks latency. Demonstrates thread safety, the LRU model cache, and
// hot-adding a new expert to a live pool (extension feature).
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/expert_pool.h"
#include "core/query_service.h"
#include "data/synthetic.h"
#include "distill/specialize.h"
#include "eval/metrics.h"
#include "util/rng.h"
#include "util/stopwatch.h"

using namespace poe;

int main() {
  // Build a small pool (random-ish training budget: this example is about
  // the serving path, not accuracy).
  SyntheticDataConfig dc;
  dc.num_tasks = 10;
  dc.classes_per_task = 3;
  dc.train_per_class = 12;
  dc.test_per_class = 4;
  dc.noise = 0.8f;
  SyntheticDataset data = GenerateSyntheticDataset(dc);

  Rng rng(99);
  WrnConfig oracle_cfg;
  oracle_cfg.kc = 2.0;
  oracle_cfg.ks = 2.0;
  oracle_cfg.num_classes = data.hierarchy.num_classes();
  Wrn oracle(oracle_cfg, rng);
  TrainOptions opts;
  opts.epochs = 6;
  TrainScratch(oracle, data.train, opts);

  PoeBuildConfig build;
  build.library_config = oracle_cfg;
  build.library_config.kc = 1.0;
  build.library_config.ks = 1.0;
  build.expert_ks = 0.25;
  build.library_options = opts;
  build.expert_options = opts;
  std::printf("[server] preprocessing pool...\n");
  ExpertPool pool = ExpertPool::Preprocess(ModelLogits(oracle), data, build,
                                           rng);

  // Dequant-free int8 serving (extension): convert the pool once —
  // Conv2d/Linear weights are quantized per-output-channel into packed
  // int8 GEMM panels and the f32 copies are released — then every model
  // assembled from it runs the quantized inference path, with
  // dequantization fused into the GEMM output pass.
  const int64_t f32_bytes = pool.ServingBytes();
  Tensor probe0 = Tensor::Randn({1, 3, 8, 8}, rng);
  TaskModel f32_model = pool.Query({0, 1, 2}).ValueOrDie();
  Stopwatch probe_sw;
  for (int i = 0; i < 50; ++i) f32_model.Logits(probe0);
  const double f32_ms = probe_sw.ElapsedMillis() / 50;

  const Status to_int8 = pool.SetServingPrecision(ServingPrecision::kInt8);
  if (!to_int8.ok()) {
    std::printf("[server] int8 conversion failed: %s\n",
                to_int8.ToString().c_str());
    return 1;
  }
  TaskModel int8_model = pool.Query({0, 1, 2}).ValueOrDie();
  probe_sw.Reset();
  for (int i = 0; i < 50; ++i) int8_model.Logits(probe0);
  const double int8_ms = probe_sw.ElapsedMillis() / 50;
  std::printf(
      "[server] int8 serving: pool %lld -> %lld bytes, 3-task probe "
      "%.3fms -> %.3fms per image\n",
      static_cast<long long>(f32_bytes),
      static_cast<long long>(pool.ServingBytes()), f32_ms, int8_ms);

  // The service inherits the converted pool: every client below is served
  // by int8 models without ever materializing f32 weights.
  ModelQueryService service(std::move(pool), /*cache_capacity=*/16);

  // Serve a burst of queries from concurrent clients.
  constexpr int kClients = 4;
  constexpr int kQueriesPerClient = 50;
  std::atomic<int> failures{0};
  std::vector<double> latencies_ms(kClients * kQueriesPerClient, 0.0);
  std::printf("[server] serving %d clients x %d queries...\n", kClients,
              kQueriesPerClient);

  Stopwatch wall;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng client_rng(1000 + c);
      for (int q = 0; q < kQueriesPerClient; ++q) {
        // Random composite task of 1..4 distinct primitives.
        const int nq = 1 + static_cast<int>(client_rng.NextInt(4));
        std::vector<int> all(data.hierarchy.num_tasks());
        for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);
        client_rng.Shuffle(all);
        std::vector<int> tasks(all.begin(), all.begin() + nq);

        Stopwatch sw;
        auto model = service.Query(tasks);
        latencies_ms[c * kQueriesPerClient + q] = sw.ElapsedMillis();
        if (!model.ok()) {
          failures.fetch_add(1);
          continue;
        }
        // Simulate on-device inference on a probe image.
        Tensor probe = Tensor::Randn({1, 3, 8, 8}, client_rng);
        model.ValueOrDie()->Predict(probe);
      }
    });
  }
  for (auto& t : clients) t.join();
  const double total_s = wall.ElapsedSeconds();

  std::sort(latencies_ms.begin(), latencies_ms.end());
  auto pct = [&](double p) {
    return latencies_ms[static_cast<size_t>(p * (latencies_ms.size() - 1))];
  };
  QueryStats stats = service.stats();
  std::printf(
      "[server] %lld queries in %.2fs (%.0f qps), %d failures\n",
      static_cast<long long>(stats.num_queries), total_s,
      stats.num_queries / total_s, failures.load());
  std::printf("[server] assembly latency p50=%.3fms p95=%.3fms p99=%.3fms "
              "max=%.3fms, cache hits %lld/%lld\n",
              pct(0.50), pct(0.95), pct(0.99), stats.max_ms,
              static_cast<long long>(stats.cache_hits),
              static_cast<long long>(stats.num_queries));
  std::printf("[server] serving precision: %s, pool weight bytes held: "
              "%lld\n",
              stats.precision == ServingPrecision::kInt8 ? "int8" : "f32",
              static_cast<long long>(stats.pool_bytes));

  std::printf(
      "\n[server] every query was served without any training - the paper's "
      "realtime AIaaS property.\n");
  return 0;
}

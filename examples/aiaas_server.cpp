// A realtime AIaaS serving loop on the concurrent serving runtime:
// client threads submit composite-task inference requests to an embedded
// InferenceServer, which batches same-model requests into fused forward
// passes over a ModelQueryService backed by the sharded single-flight
// model cache. Demonstrates int8 serving, batching, backpressure, and the
// full ServeStats metrics surface.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "core/expert_pool.h"
#include "core/query_service.h"
#include "data/synthetic.h"
#include "distill/specialize.h"
#include "eval/metrics.h"
#include "serve/inference_server.h"
#include "util/rng.h"
#include "util/stopwatch.h"

using namespace poe;

int main() {
  // Build a small pool (random-ish training budget: this example is about
  // the serving path, not accuracy).
  SyntheticDataConfig dc;
  dc.num_tasks = 10;
  dc.classes_per_task = 3;
  dc.train_per_class = 12;
  dc.test_per_class = 4;
  dc.noise = 0.8f;
  SyntheticDataset data = GenerateSyntheticDataset(dc);

  Rng rng(99);
  WrnConfig oracle_cfg;
  oracle_cfg.kc = 2.0;
  oracle_cfg.ks = 2.0;
  oracle_cfg.num_classes = data.hierarchy.num_classes();
  Wrn oracle(oracle_cfg, rng);
  TrainOptions opts;
  opts.epochs = 6;
  TrainScratch(oracle, data.train, opts);

  PoeBuildConfig build;
  build.library_config = oracle_cfg;
  build.library_config.kc = 1.0;
  build.library_config.ks = 1.0;
  build.expert_ks = 0.25;
  build.library_options = opts;
  build.expert_options = opts;
  std::printf("[server] preprocessing pool...\n");
  ExpertPool pool = ExpertPool::Preprocess(ModelLogits(oracle), data, build,
                                           rng);

  // Dequant-free int8 serving (extension): convert the pool once —
  // Conv2d/Linear weights are quantized per-output-channel into packed
  // int8 GEMM panels and the f32 copies are released — then every model
  // assembled from it runs the quantized inference path, with
  // dequantization fused into the GEMM output pass.
  const int64_t f32_bytes = pool.ServingBytes();
  Tensor probe0 = Tensor::Randn({1, 3, 8, 8}, rng);
  TaskModel f32_model = pool.Query({0, 1, 2}).ValueOrDie();
  Stopwatch probe_sw;
  for (int i = 0; i < 50; ++i) f32_model.Logits(probe0);
  const double f32_ms = probe_sw.ElapsedMillis() / 50;

  const Status to_int8 = pool.SetServingPrecision(ServingPrecision::kInt8);
  if (!to_int8.ok()) {
    std::printf("[server] int8 conversion failed: %s\n",
                to_int8.ToString().c_str());
    return 1;
  }
  TaskModel int8_model = pool.Query({0, 1, 2}).ValueOrDie();
  probe_sw.Reset();
  for (int i = 0; i < 50; ++i) int8_model.Logits(probe0);
  const double int8_ms = probe_sw.ElapsedMillis() / 50;
  std::printf(
      "[server] int8 serving: pool %lld -> %lld bytes, 3-task probe "
      "%.3fms -> %.3fms per image\n",
      static_cast<long long>(f32_bytes),
      static_cast<long long>(pool.ServingBytes()), f32_ms, int8_ms);

  // The service inherits the converted pool: every client below is served
  // by int8 models without ever materializing f32 weights. The sharded
  // single-flight cache keeps concurrent assemblies off each other's
  // locks; the InferenceServer batches same-model requests into fused
  // forward passes and sheds load when its bounded queue fills.
  ModelQueryService service(std::move(pool), /*cache_capacity=*/16);
  InferenceServer::Options server_opts;
  server_opts.num_workers = 2;
  server_opts.queue_capacity = 64;
  server_opts.max_batch_rows = 16;
  InferenceServer server(&service, server_opts);

  // Serve a burst of inference requests from concurrent clients.
  constexpr int kClients = 4;
  constexpr int kQueriesPerClient = 50;
  std::atomic<int> failures{0};
  std::atomic<int> shed{0};
  std::printf("[server] serving %d clients x %d requests...\n", kClients,
              kQueriesPerClient);

  Stopwatch wall;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng client_rng(1000 + c);
      for (int q = 0; q < kQueriesPerClient; ++q) {
        // Random composite task of 1..4 distinct primitives, one probe
        // image to classify under it.
        const int nq = 1 + static_cast<int>(client_rng.NextInt(4));
        std::vector<int> all(data.hierarchy.num_tasks());
        for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);
        client_rng.Shuffle(all);
        InferenceRequest req;
        req.task_ids.assign(all.begin(), all.begin() + nq);
        req.input = Tensor::Randn({1, 3, 8, 8}, client_rng);

        InferenceResponse res = server.Submit(std::move(req)).get();
        if (res.status.code() == StatusCode::kResourceExhausted) {
          shed.fetch_add(1);  // backpressure: retry/fail-open upstream
        } else if (!res.status.ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  const double total_s = wall.ElapsedSeconds();
  server.Shutdown();

  ServeStats stats = server.stats();
  std::printf(
      "[server] %lld requests in %.2fs (%.0f qps), %d failures, %d shed by "
      "backpressure\n",
      static_cast<long long>(stats.submitted), total_s,
      stats.completed / total_s, failures.load(), shed.load());
  std::printf("[server] end-to-end latency p50=%.3fms p95=%.3fms "
              "p99=%.3fms max=%.3fms\n",
              stats.p50_ms, stats.p95_ms, stats.p99_ms, stats.max_ms);
  std::printf("[server] model cache: %lld hits, %lld assemblies, %lld "
              "coalesced on in-flight assemblies, across %zu shards\n",
              static_cast<long long>(stats.cache_hits),
              static_cast<long long>(stats.cache_misses),
              static_cast<long long>(stats.coalesced),
              stats.shards.size());
  std::printf("[server] batching: %lld fused passes, %.1f requests/pass "
              "average\n",
              static_cast<long long>(stats.batches), stats.avg_batch());
  std::printf("[server] serving precision: %s, pool weight bytes held: "
              "%lld\n",
              stats.precision == ServingPrecision::kInt8 ? "int8" : "f32",
              static_cast<long long>(stats.pool_bytes));

  std::printf(
      "\n[server] every request was served without any training - the "
      "paper's realtime AIaaS property.\n");
  return 0;
}

// Figure 5: histograms of maximum confidence on out-of-distribution
// samples for models specialized by Scratch, Transfer, and CKD.
//
// Paper shape: Scratch and Transfer put their histogram mode in the top
// bin (>0.9 confidence on OOD inputs); CKD's mode sits near 0.3-0.4.
#include <cstdio>

#include "common/bench_env.h"
#include "distill/specialize.h"
#include "eval/confidence.h"
#include "eval/metrics.h"

namespace poe {
namespace bench {
namespace {

void RunDataset(DatasetKind kind) {
  BenchEnv& env = GetBenchEnv(kind);
  const int task = env.selected_tasks[0];
  const std::vector<int>& classes = env.data.hierarchy.task_classes(task);
  Dataset ood = ExcludeClasses(env.data.test, classes);
  Dataset train_local = FilterClasses(env.data.train, classes, true);

  WrnConfig cfg = env.library_config;
  cfg.ks = env.expert_ks;
  cfg.num_classes = static_cast<int>(classes.size());

  // The paper's baselines are trained to convergence on their task data,
  // which is what makes them overconfident on OOD inputs; extend the
  // shared schedule accordingly.
  TrainOptions long_opts = env.baseline_options;
  long_opts.epochs = 3 * env.baseline_options.epochs;
  long_opts.lr_decay_epochs = {long_opts.epochs * 3 / 4,
                               long_opts.epochs * 9 / 10};

  std::printf("\n=== Figure 5 [%s], primitive task %d (%zu classes) ===\n",
              env.name.c_str(), task, classes.size());

  // (a) Scratch.
  Rng rng(50);
  Wrn scratch(cfg, rng);
  TrainScratch(scratch, train_local, long_opts);
  ConfidenceHistogram scratch_hist =
      ComputeConfidenceHistogram(ModelLogits(scratch), ood);
  std::printf("%s\n",
              scratch_hist.ToAsciiChart("(a) Scratch").c_str());

  // (b) Transfer.
  auto thead = BuildExpertPart(cfg, env.library_config.conv3_channels(), rng);
  TrainTransfer(*env.pool->library(), *thead, train_local, long_opts);
  ConfidenceHistogram transfer_hist = ComputeConfidenceHistogram(
      LibraryHeadLogits(*env.pool->library(), *thead), ood);
  std::printf("%s\n",
              transfer_hist.ToAsciiChart("(b) Transfer").c_str());

  // (c) CKD (the pool's expert).
  ConfidenceHistogram ckd_hist = ComputeConfidenceHistogram(
      LibraryHeadLogits(*env.pool->library(), *env.pool->expert(task)), ood);
  std::printf("%s\n", ckd_hist.ToAsciiChart("(c) CKD (ours)").c_str());

  std::printf(
      "shape check (paper: CKD mean confidence well below Scratch and "
      "Transfer): scratch=%.3f transfer=%.3f ckd=%.3f -> %s\n",
      scratch_hist.mean_confidence, transfer_hist.mean_confidence,
      ckd_hist.mean_confidence,
      (ckd_hist.mean_confidence < scratch_hist.mean_confidence &&
       ckd_hist.mean_confidence < transfer_hist.mean_confidence)
          ? "holds"
          : "violated");
  std::printf(
      "fraction of OOD samples with confidence > 0.9: scratch=%.2f "
      "transfer=%.2f ckd=%.2f\n",
      scratch_hist.FractionAbove(0.9), transfer_hist.FractionAbove(0.9),
      ckd_hist.FractionAbove(0.9));
}

}  // namespace
}  // namespace bench
}  // namespace poe

int main() {
  poe::bench::RunDataset(poe::bench::DatasetKind::kCifar100Like);
  if (poe::bench::BenchScale::FromEnv().paper) {
    poe::bench::RunDataset(poe::bench::DatasetKind::kTinyImageNetLike);
  } else {
    std::printf(
        "\n[figure5] tiny-imagenet-like skipped in fast mode; set "
        "POE_BENCH_SCALE=paper to include it.\n");
  }
  return 0;
}

// Figure 6: accuracy vs wall-clock learning curves of every consolidation
// method for n(Q) = 5.
//
// Paper shape: all training methods need tens-to-hundreds of seconds to
// reach their best accuracy; PoE reaches its accuracy instantly (train-free
// assembly), plotted as a point at ~0 seconds.
#include <cstdio>

#include "common/bench_env.h"
#include "common/consolidation.h"

namespace poe {
namespace bench {
namespace {

void RunDataset(DatasetKind kind) {
  BenchEnv& env = GetBenchEnv(kind);
  const auto combo = env.Combos(5, 1).front();

  std::printf("\n=== Figure 6 [%s], n(Q)=5, tasks {", env.name.c_str());
  for (size_t i = 0; i < combo.size(); ++i)
    std::printf("%s%d", i ? "," : "", combo[i]);
  std::printf("} ===\n");
  std::printf("series: (wall-clock seconds, accuracy%%) per epoch\n\n");

  std::vector<std::string> methods = AllConsolidationMethods();
  // Oracle has no curve.
  methods.erase(methods.begin());

  for (ConsolidationRun& run :
       RunConsolidation(env, combo, /*with_curves=*/true, methods)) {
    std::printf("%-12s:", run.method.c_str());
    for (const CurvePoint& p : run.curve) {
      std::printf(" (%.1fs, %.1f)", p.seconds, 100.0 * p.accuracy);
    }
    std::printf("\n");
  }

  // Re-run just PoE to report assembly latency precisely.
  auto poe_runs = RunConsolidation(env, combo, false, {"PoE"});
  std::printf(
      "\nshape check: PoE reaches %.1f%% in %.4fs (train-free) while every "
      "training method above needs its full schedule.\n",
      100.0 * poe_runs[0].accuracy, poe_runs[0].train_seconds);
}

}  // namespace
}  // namespace bench
}  // namespace poe

int main() {
  poe::bench::RunDataset(poe::bench::DatasetKind::kCifar100Like);
  if (poe::bench::BenchScale::FromEnv().paper) {
    poe::bench::RunDataset(poe::bench::DatasetKind::kTinyImageNetLike);
  } else {
    std::printf(
        "\n[figure6] tiny-imagenet-like skipped in fast mode; set "
        "POE_BENCH_SCALE=paper to include it.\n");
  }
  return 0;
}

// Microbenchmarks of the PoE service phase: query assembly latency, cached
// queries, and assembled-model inference. Weights are random (latency does
// not depend on training), so this runs instantly with no cache files.
#include <benchmark/benchmark.h>

#include "core/expert_pool.h"
#include "core/query_service.h"
#include "models/wrn.h"
#include "util/rng.h"

namespace poe {
namespace {

ExpertPool MakePool(int num_tasks) {
  WrnConfig lib_cfg;
  lib_cfg.depth = 10;
  lib_cfg.kc = 1.0;
  lib_cfg.ks = 1.0;
  lib_cfg.num_classes = num_tasks * 5;
  lib_cfg.base_channels = 8;
  Rng rng(1);
  auto library = BuildLibraryPart(lib_cfg, rng);
  std::vector<std::shared_ptr<Sequential>> experts;
  for (int t = 0; t < num_tasks; ++t) {
    WrnConfig ecfg = lib_cfg;
    ecfg.ks = 0.25;
    ecfg.num_classes = 5;
    experts.push_back(
        BuildExpertPart(ecfg, lib_cfg.conv3_channels(), rng));
  }
  return ExpertPool(lib_cfg, 0.25, ClassHierarchy::Uniform(num_tasks, 5),
                    std::move(library), std::move(experts));
}

void BM_PoolQueryAssembly(benchmark::State& state) {
  const int nq = static_cast<int>(state.range(0));
  ExpertPool pool = MakePool(20);
  std::vector<int> tasks;
  for (int t = 0; t < nq; ++t) tasks.push_back(t);
  for (auto _ : state) {
    auto model = pool.Query(tasks);
    benchmark::DoNotOptimize(model.ok());
  }
}
BENCHMARK(BM_PoolQueryAssembly)->Arg(1)->Arg(2)->Arg(5)->Arg(10);

void BM_ServiceQueryCached(benchmark::State& state) {
  ModelQueryService service(MakePool(20), /*cache_capacity=*/16);
  std::vector<int> tasks = {0, 1, 2};
  service.Query(tasks).ValueOrDie();
  for (auto _ : state) {
    auto model = service.Query(tasks);
    benchmark::DoNotOptimize(model.ok());
  }
}
BENCHMARK(BM_ServiceQueryCached);

void BM_TaskModelInference(benchmark::State& state) {
  const int nq = static_cast<int>(state.range(0));
  ExpertPool pool = MakePool(20);
  std::vector<int> tasks;
  for (int t = 0; t < nq; ++t) tasks.push_back(t);
  TaskModel model = pool.Query(tasks).ValueOrDie();
  Rng rng(2);
  Tensor batch = Tensor::Randn({16, 3, 8, 8}, rng);
  for (auto _ : state) {
    Tensor logits = model.Logits(batch);
    benchmark::DoNotOptimize(logits.data());
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_TaskModelInference)->Arg(1)->Arg(2)->Arg(5);

// The same assembled-model forward served dequant-free int8: the pool is
// converted once (packed int8 weights, per-channel scales) and every
// query's inference runs the quantized GEMM. Compare row-for-row against
// BM_TaskModelInference for the end-to-end serving speedup.
void BM_TaskModelInferenceInt8(benchmark::State& state) {
  const int nq = static_cast<int>(state.range(0));
  ExpertPool pool = MakePool(20);
  const Status status = pool.SetServingPrecision(ServingPrecision::kInt8);
  POE_CHECK(status.ok()) << status.ToString();
  std::vector<int> tasks;
  for (int t = 0; t < nq; ++t) tasks.push_back(t);
  TaskModel model = pool.Query(tasks).ValueOrDie();
  Rng rng(2);
  Tensor batch = Tensor::Randn({16, 3, 8, 8}, rng);
  for (auto _ : state) {
    Tensor logits = model.Logits(batch);
    benchmark::DoNotOptimize(logits.data());
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_TaskModelInferenceInt8)->Arg(1)->Arg(2)->Arg(5);

void BM_PoolSerializationRoundTrip(benchmark::State& state) {
  ExpertPool pool = MakePool(10);
  const std::string path = "/tmp/poe_micro_bench.pool";
  for (auto _ : state) {
    pool.Save(path);
    auto loaded = ExpertPool::Load(path);
    benchmark::DoNotOptimize(loaded.ok());
  }
}
BENCHMARK(BM_PoolSerializationRoundTrip);

}  // namespace
}  // namespace poe

BENCHMARK_MAIN();

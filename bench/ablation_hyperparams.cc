// Design-choice ablation: sensitivity of CKD to the temperature T and the
// scale weight alpha (the paper fixes T's standard value and alpha = 0.3
// without a sweep; DESIGN.md calls this out as worth ablating).
//
// For one primitive task we train an expert per (T, alpha) cell and report
// its accuracy and the L1 gap between its logits and the oracle's
// sub-logits (the quantity L_scale controls).
#include <cstdio>
#include <vector>

#include "common/bench_env.h"
#include "distill/specialize.h"
#include "eval/metrics.h"
#include "eval/table.h"
#include "tensor/ops.h"

namespace poe {
namespace bench {
namespace {

void Run() {
  BenchEnv& env = GetBenchEnv(DatasetKind::kCifar100Like);
  const int task = env.selected_tasks[0];
  const std::vector<int>& classes = env.data.hierarchy.task_classes(task);
  Dataset test_local = FilterClasses(env.data.test, classes, true);

  Sequential& library = *env.pool->library();
  CkdTables tables = PrecomputeCkdTables(ModelLogits(*env.oracle), library,
                                         env.data.train);
  Tensor oracle_test_sub =
      GatherColumns(ModelLogits(*env.oracle)(test_local.images), classes);

  WrnConfig cfg = env.library_config;
  cfg.ks = env.expert_ks;
  cfg.num_classes = static_cast<int>(classes.size());

  auto train_cell = [&](float temperature, float alpha, float* acc,
                        float* l1_gap) {
    TrainOptions opts = env.expert_options;
    opts.temperature = temperature;
    CkdOptions ckd;
    ckd.alpha = alpha;
    ckd.use_scale = alpha > 0.0f;
    Rng rng(42);  // same init for all cells
    auto head = BuildExpertPart(cfg, env.library_config.conv3_channels(), rng);
    TrainCkdExpertWithTables(tables, *head, env.data.train, classes, opts,
                             ckd);
    LogitFn fn = LibraryHeadLogits(library, *head);
    *acc = EvaluateAccuracy(fn, test_local);
    Tensor s = fn(test_local.images);
    *l1_gap = L1Norm(Sub(s, oracle_test_sub)) /
              static_cast<float>(test_local.size());
  };

  std::printf("\n=== CKD hyperparameter sensitivity [%s], task %d ===\n",
              env.name.c_str(), task);

  TablePrinter t_table({"Temperature T", "Acc(%)", "L1 logit gap"});
  for (float temperature : {1.0f, 2.0f, 4.0f, 8.0f}) {
    float acc, gap;
    train_cell(temperature, 0.3f, &acc, &gap);
    t_table.AddRow({TablePrinter::Num(temperature, 0),
                    TablePrinter::Pct(acc), TablePrinter::Num(gap, 3)});
    std::fflush(stdout);
  }
  std::printf("alpha fixed at 0.3:\n%s", t_table.ToString().c_str());

  TablePrinter a_table({"alpha", "Acc(%)", "L1 logit gap"});
  for (float alpha : {0.0f, 0.1f, 0.3f, 1.0f, 3.0f}) {
    float acc, gap;
    train_cell(4.0f, alpha, &acc, &gap);
    a_table.AddRow({TablePrinter::Num(alpha, 1), TablePrinter::Pct(acc),
                    TablePrinter::Num(gap, 3)});
    std::fflush(stdout);
  }
  std::printf("T fixed at 4:\n%s", a_table.ToString().c_str());
  std::printf(
      "expected shape: larger alpha shrinks the L1 logit gap (better scale "
      "preservation) with mild accuracy impact; the paper's alpha=0.3 sits "
      "on the flat part of the accuracy curve.\n");
}

}  // namespace
}  // namespace bench
}  // namespace poe

int main() {
  poe::bench::Run();
  return 0;
}

// Serving-runtime throughput: hit / miss / mixed query workloads vs client
// thread count, at f32 and int8 serving precision, for
//   (a) the pre-PR baseline - one global mutex held across the entire
//       pool assembly (reimplemented here verbatim as GlobalMutexService),
//   (b) the sharded single-flight ModelQueryService, and
//   (c) the batching InferenceServer (fused forwards vs batch-of-one).
//
// Usage:
//   serving_throughput [--json out.json] [--seconds 0.3]
//                      [--threads 1,2,4,8] [--epochs 2]
//
// QPS numbers are only comparable on the same machine; the JSON records
// hardware_concurrency because contended scaling is meaningless on fewer
// cores than client threads.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/expert_pool.h"
#include "core/query_service.h"
#include "core/request.h"
#include "data/synthetic.h"
#include "distill/specialize.h"
#include "eval/metrics.h"
#include "serve/inference_server.h"
#include "serve/model_cache.h"
#include "util/histogram.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace poe {
namespace {

// ------------------------------------------------------------------ baseline
// The pre-PR ModelQueryService, kept bit-for-bit in spirit: one mutex
// guards the stats, the LRU, AND the whole ExpertPool::Query assembly, so
// every cache miss stalls every other query and even hits serialize.
class GlobalMutexService {
 public:
  GlobalMutexService(ExpertPool pool, size_t cache_capacity)
      : pool_(std::move(pool)), cache_capacity_(cache_capacity) {}

  Result<std::shared_ptr<TaskModel>> Query(const std::vector<int>& task_ids) {
    Stopwatch clock;
    std::vector<int> key = task_ids;
    std::sort(key.begin(), key.end());
    key.erase(std::unique(key.begin(), key.end()), key.end());

    std::lock_guard<std::mutex> lock(mu_);
    stats_.num_queries++;
    if (cache_capacity_ > 0) {
      auto it = index_.find(key);
      if (it != index_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second);
        stats_.cache_hits++;
        const double ms = clock.ElapsedMillis();
        stats_.total_ms += ms;
        stats_.max_ms = std::max(stats_.max_ms, ms);
        return lru_.front().second;
      }
    }
    auto assembled = pool_.Query(key);  // assembly under the global lock
    if (!assembled.ok()) return assembled.status();
    auto model =
        std::make_shared<TaskModel>(std::move(assembled).ValueOrDie());
    if (cache_capacity_ > 0) {
      lru_.emplace_front(key, model);
      index_[key] = lru_.begin();
      if (lru_.size() > cache_capacity_) {
        index_.erase(lru_.back().first);
        lru_.pop_back();
      }
    }
    const double ms = clock.ElapsedMillis();
    stats_.total_ms += ms;
    stats_.max_ms = std::max(stats_.max_ms, ms);
    return model;
  }

 private:
  using Entry = std::pair<std::vector<int>, std::shared_ptr<TaskModel>>;
  ExpertPool pool_;
  size_t cache_capacity_;
  std::mutex mu_;
  QueryStats stats_;
  std::list<Entry> lru_;
  std::map<std::vector<int>, std::list<Entry>::iterator> index_;
};

// ------------------------------------------------------------------ workload
struct RunResult {
  std::string service;
  std::string precision;
  std::string workload;
  int threads = 0;
  double seconds = 0.0;
  int64_t ops = 0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double avg_batch = 0.0;          // server runs only
  int64_t trunk_fused_rows = 0;    // rows served by cross-model trunk passes
};

/// All composite tasks of size 1..4 over `num_tasks` primitives,
/// deterministically shuffled - the bench's key universe.
std::vector<std::vector<int>> KeyUniverse(int num_tasks) {
  std::vector<std::vector<int>> keys;
  for (int a = 0; a < num_tasks; ++a) {
    keys.push_back({a});
    for (int b = a + 1; b < num_tasks; ++b) {
      keys.push_back({a, b});
      for (int c = b + 1; c < num_tasks; ++c) {
        keys.push_back({a, b, c});
        for (int d = c + 1; d < num_tasks; ++d) {
          keys.push_back({a, b, c, d});
        }
      }
    }
  }
  Rng rng(13);
  for (size_t i = keys.size(); i > 1; --i) {
    std::swap(keys[i - 1], keys[rng.NextInt(static_cast<int64_t>(i))]);
  }
  return keys;
}

constexpr int kHotKeys = 32;
// Hot set + generous cold-churn slack: evictions land on spent cold keys,
// not the hot set (thrash-recovery is the stress suite's job, not the
// throughput bench's).
constexpr size_t kCacheCapacity = 128;

/// Cheap per-thread LCG so clients walk the hot set in decorrelated
/// orders (lockstep walks herd onto one key and measure the herd, not
/// the cache).
inline int HotIndex(unsigned* state) {
  *state = *state * 1664525u + 1013904223u;
  return static_cast<int>((*state >> 8) % kHotKeys);
}

/// Runs `op(thread_id, op_index)` from `threads` client threads for
/// `seconds` of wall time and returns aggregate ops + latency percentiles.
template <typename Op>
RunResult RunTimed(const std::string& service, const std::string& precision,
                   const std::string& workload, int threads, double seconds,
                   const Op& op, int queries_per_op = 1) {
  LatencyHistogram hist;
  std::atomic<int64_t> total_ops{0};
  std::atomic<bool> stop{false};

  std::vector<std::thread> clients;
  Stopwatch wall;
  for (int t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      int64_t ops = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        Stopwatch sw;
        op(t, ops);
        hist.Record(sw.ElapsedMillis());
        ++ops;
      }
      total_ops.fetch_add(ops);
    });
  }
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int64_t>(seconds * 1e3)));
  stop.store(true);
  for (auto& c : clients) c.join();
  const double elapsed = wall.ElapsedSeconds();

  RunResult result;
  result.service = service;
  result.precision = precision;
  result.workload = workload;
  result.threads = threads;
  result.seconds = elapsed;
  result.ops = total_ops.load() * queries_per_op;
  result.qps = static_cast<double>(result.ops) / elapsed;
  result.p50_ms = hist.Percentile(0.50);
  result.p99_ms = hist.Percentile(0.99);
  return result;
}

/// One query-workload pass against either service type. `Service` needs
/// only Query(vector<int>).
template <typename Service>
std::vector<RunResult> QueryWorkloads(
    const std::string& name, const std::string& precision, Service& service,
    const std::vector<std::vector<int>>& keys,
    const std::vector<int>& thread_counts, double seconds) {
  std::vector<RunResult> results;
  std::atomic<int64_t> cold_cursor{kHotKeys};

  // (Re-)preload the hot set so hit/mixed runs start from a warm cache:
  // a preceding pure-miss run's cold churn ages the untouched hot
  // entries into eviction victims, and re-faulting them inside a timed
  // run would bill misses to the "hit" rows.
  auto preload = [&] {
    for (int k = 0; k < kHotKeys; ++k) service.Query(keys[k]);
  };

  for (int threads : thread_counts) {
    std::vector<unsigned> states(threads);
    auto reseed = [&states](unsigned salt) {
      for (size_t t = 0; t < states.size(); ++t) {
        states[t] = 0x9e3779b9u * static_cast<unsigned>(t + 1) + salt;
      }
    };

    // hit: threads walk the preloaded hot set in decorrelated orders.
    preload();
    reseed(1);
    results.push_back(RunTimed(name, precision, "hit", threads, seconds,
                               [&](int t, int64_t) {
                                 service.Query(keys[HotIndex(&states[t])]);
                               }));

    // miss: a shared cursor hands every query a fresh cold key (cycling a
    // universe far larger than capacity, so re-visits were long evicted).
    results.push_back(RunTimed(
        name, precision, "miss", threads, seconds, [&](int, int64_t) {
          const int64_t c = cold_cursor.fetch_add(1);
          service.Query(
              keys[kHotKeys + c % static_cast<int64_t>(keys.size() -
                                                       kHotKeys)]);
        }));

    // mixed: 90% hot hits, 10% cold misses - the AIaaS steady state.
    preload();
    reseed(2);
    results.push_back(RunTimed(
        name, precision, "mixed", threads, seconds, [&](int t, int64_t i) {
          if (i % 10 == 0) {
            const int64_t c = cold_cursor.fetch_add(1);
            service.Query(
                keys[kHotKeys + c % static_cast<int64_t>(keys.size() -
                                                         kHotKeys)]);
          } else {
            service.Query(keys[HotIndex(&states[t])]);
          }
        }));
  }
  return results;
}

/// Batched vs unbatched InferenceServer throughput: each client pipelines
/// a burst of 1-row requests for one model (the open-loop traffic a
/// front-end fans in), so the batching server has same-model work to fuse
/// while the batch-of-one server pays a full forward per request.
std::vector<RunResult> ServerWorkloads(
    const std::string& precision, ModelQueryService& service,
    const std::vector<std::vector<int>>& keys,
    const std::vector<int>& thread_counts, double seconds, int image_hw) {
  constexpr int kBurst = 8;
  std::vector<RunResult> results;
  for (bool batching : {false, true}) {
    for (int threads : thread_counts) {
      InferenceServer::Options opts;
      opts.num_workers = 2;
      opts.queue_capacity = 1024;
      opts.max_batch_rows = batching ? 32 : 1;
      InferenceServer server(&service, opts);

      std::vector<Tensor> probes;
      for (int t = 0; t < threads; ++t) {
        Rng rng(400 + t);
        probes.push_back(Tensor::Randn({1, 3, image_hw, image_hw}, rng));
      }
      RunResult r = RunTimed(
          batching ? "server_batched" : "server_unbatched", precision,
          "infer_burst", threads, seconds,
          [&](int t, int64_t i) {
            std::vector<std::future<InferenceResponse>> burst;
            burst.reserve(kBurst);
            for (int b = 0; b < kBurst; ++b) {
              InferenceRequest req;
              req.task_ids = keys[(t * 7 + i) % 8];  // few hot models
              req.input = probes[t].Clone();
              burst.push_back(server.Submit(std::move(req)));
            }
            for (auto& f : burst) f.get();
          },
          kBurst);
      r.avg_batch = server.stats().avg_batch();
      server.Shutdown();
      results.push_back(r);
    }
  }
  return results;
}

/// Cross-model trunk reuse: every client pipelines 1-row requests
/// round-robin over DIFFERENT single-task models (the worst case for
/// same-model batching: no two consecutive requests share a model), so
/// the only batching win available is fusing the shared library trunk.
std::vector<RunResult> TrunkWorkloads(
    const std::string& precision, ModelQueryService& service,
    const std::vector<int>& thread_counts, double seconds, int image_hw,
    int num_models) {
  constexpr int kBurst = 8;
  std::vector<RunResult> results;
  for (bool fuse : {false, true}) {
    for (int threads : thread_counts) {
      InferenceServer::Options opts;
      opts.num_workers = 2;
      opts.queue_capacity = 1024;
      opts.max_batch_rows = 32;
      opts.fuse_trunk = fuse;
      InferenceServer server(&service, opts);

      std::vector<Tensor> probes;
      for (int t = 0; t < threads; ++t) {
        Rng rng(700 + t);
        probes.push_back(Tensor::Randn({1, 3, image_hw, image_hw}, rng));
      }
      RunResult r = RunTimed(
          fuse ? "server_trunk_fused" : "server_trunk_off", precision,
          "cross_model", threads, seconds,
          [&](int t, int64_t i) {
            std::vector<std::future<InferenceResponse>> burst;
            burst.reserve(kBurst);
            for (int b = 0; b < kBurst; ++b) {
              InferenceRequest req;
              // Walk the single-task models so adjacent requests always
              // name different models.
              req.task_ids = {static_cast<int>((t + i + b) % num_models)};
              req.input = probes[t].Clone();
              burst.push_back(server.Submit(std::move(req)));
            }
            for (auto& f : burst) f.get();
          },
          kBurst);
      ServeStats stats = server.stats();
      r.avg_batch = stats.avg_batch();
      r.trunk_fused_rows = stats.trunk_fused_rows;
      server.Shutdown();
      results.push_back(r);
    }
  }
  return results;
}

// ------------------------------------------------------- pack-once serving
/// Prepacked-vs-per-call inference on one assembled model (batch-1 probe,
/// one client — the realtime query path). The per-call half runs FIRST,
/// on an ad-hoc composite over still-unpacked master modules; then the
/// store acquisition + library prepack materialize the persistent weight
/// panels — the state every served model runs in — and the same composite
/// is measured again. Outputs are bitwise identical; only the per-forward
/// pack work (and, at int8, the dynamic max-abs pass the calibrated pool
/// would drop) separates the rows. Masters stay prepacked afterwards, so
/// this scenario must run before any other workload of its precision.
std::vector<RunResult> PrepackWorkloads(ExpertPool& pool,
                                        const std::string& precision,
                                        double seconds, int image_hw) {
  std::vector<RunResult> results;
  Rng rng(900);
  Tensor probe = Tensor::Randn({1, 3, image_hw, image_hw}, rng);
  auto make_model = [&] {
    TaskModel::Branch b;
    b.head = pool.expert(0);
    b.classes = pool.hierarchy().task_classes(0);
    b.config = pool.ExpertConfig(0);
    std::vector<TaskModel::Branch> branches;
    branches.push_back(std::move(b));
    return TaskModel(pool.library(), pool.library_config(),
                     std::move(branches), pool.serving_precision());
  };
  {
    TaskModel model = make_model();
    results.push_back(RunTimed("model_percall", precision, "logits", 1,
                               seconds, [&](int, int64_t) {
                                 Tensor y = model.Logits(probe);
                                 (void)y;
                               }));
  }
  pool.PrepackForServing();
  auto handle = pool.expert_store()->Acquire(0);  // prepacks expert 0
  {
    TaskModel model = make_model();
    results.push_back(RunTimed("model_prepacked", precision, "logits", 1,
                               seconds, [&](int, int64_t) {
                                 Tensor y = model.Logits(probe);
                                 (void)y;
                               }));
  }
  const double percall = results[results.size() - 2].qps;
  const double packed = results.back().qps;
  std::printf("[bench] %s pack-once: per-call %.0f qps, prepacked %.0f qps "
              "(%.2fx)\n",
              precision.c_str(), percall, packed,
              percall > 0 ? packed / percall : 0.0);
  return results;
}

// ------------------------------------------------------ expert-level dedup
/// The overlapping-composite scenario: hold the prefix chain {0}, {0,1},
/// ..., {0..n-1} plus every adjacent pair resident at once and compare
/// model-granularity accounting (Σ private-copy StateBytes) against the
/// deduplicated footprint (one trunk + distinct referenced experts). The
/// former scales with composites, the latter with distinct experts — the
/// paper's economics, measured.
struct DedupResult {
  int composites = 0;
  int distinct_experts = 0;
  int64_t naive_model_bytes = 0;   // Σ StateBytes over resident composites
  int64_t deduped_bytes = 0;       // trunk + referenced expert bytes
  int64_t shared_bytes_saved = 0;  // cumulative store counter
  int64_t expert_hits = 0;
};

DedupResult DedupScenario(const ExpertPool& pool, int num_tasks) {
  ModelQueryService service(pool, /*cache_capacity=*/256);
  std::vector<std::shared_ptr<TaskModel>> resident;
  std::vector<std::vector<int>> composites;
  std::vector<int> chain;
  for (int t = 0; t < num_tasks; ++t) {
    chain.push_back(t);
    composites.push_back(chain);
    if (t + 1 < num_tasks) composites.push_back({t, t + 1});
  }
  for (const auto& q : composites) {
    resident.push_back(service.Query(q).ValueOrDie());
  }

  ServeStats stats = service.serve_stats();
  DedupResult r;
  r.composites = static_cast<int>(composites.size());
  r.distinct_experts = static_cast<int>(stats.experts_referenced);
  r.naive_model_bytes = stats.resident_model_bytes;
  r.deduped_bytes = stats.trunk_bytes + stats.referenced_expert_bytes;
  r.shared_bytes_saved = stats.shared_bytes_saved;
  r.expert_hits = stats.expert_hits;

  std::printf(
      "[bench] expert dedup: %d overlapping composites over %d experts\n"
      "        model-granularity bytes %lld, deduplicated bytes %lld "
      "(%.2fx), shared_bytes_saved %lld, expert hits %lld\n",
      r.composites, r.distinct_experts,
      static_cast<long long>(r.naive_model_bytes),
      static_cast<long long>(r.deduped_bytes),
      r.deduped_bytes > 0
          ? static_cast<double>(r.naive_model_bytes) /
                static_cast<double>(r.deduped_bytes)
          : 0.0,
      static_cast<long long>(r.shared_bytes_saved),
      static_cast<long long>(r.expert_hits));
  return r;
}

// ------------------------------------------------------- live pool upgrade
/// Mixed hot-key traffic through a ModelQueryService while the pool is
/// live-upgraded several times mid-run (each upgrade perturbs ONE expert,
/// so only that expert's composite keys are invalidated). 10% of queries
/// pin generation 1 via PoolRequest, so after the first swap they count
/// into stale_generation_queries. The scenario's claim: zero failed
/// queries across every swap, and invalidation stays selective.
struct SwapResult {
  RunResult run;
  int64_t swaps = 0;
  int64_t keys_invalidated = 0;
  int64_t stale_pins = 0;
  uint64_t final_generation = 0;
};

SwapResult SwapScenario(const ExpertPool& pool, int num_tasks, int threads,
                        double seconds, int image_hw) {
  constexpr int kSwaps = 3;
  ModelQueryService service(pool, kCacheCapacity);

  // Next generations: Save/Load deep copies (the copy constructor shares
  // masters, which would diff as a no-op), each with one expert perturbed.
  const std::string tmp = "serving_swap_gen.poe.tmp";
  std::vector<ExpertPool> nexts;
  if (!pool.Save(tmp).ok()) {
    std::fprintf(stderr, "[bench] swap scenario: cannot save %s\n",
                 tmp.c_str());
    return SwapResult{};
  }
  for (int i = 0; i < kSwaps; ++i) {
    auto loaded = ExpertPool::Load(tmp);
    if (!loaded.ok()) {
      std::fprintf(stderr, "[bench] swap scenario: reload failed\n");
      std::remove(tmp.c_str());
      return SwapResult{};
    }
    ExpertPool next = std::move(loaded).ValueOrDie();
    auto params = next.expert(i % num_tasks)->Parameters();
    if (!params.empty()) params.front()->value.data()[0] += 0.5f;
    nexts.push_back(std::move(next));
  }
  std::remove(tmp.c_str());

  // Warm the single-task hot set.
  for (int t = 0; t < num_tasks; ++t) service.Query({t});

  std::atomic<int64_t> failed{0};
  Rng probe_rng(800);
  Tensor probe = Tensor::Randn({1, 3, image_hw, image_hw}, probe_rng);
  std::thread swapper([&] {
    const auto gap = std::chrono::duration<double>(seconds / (kSwaps + 1));
    for (auto& next : nexts) {
      std::this_thread::sleep_for(gap);
      auto diff = service.UpgradePool(std::move(next));
      if (!diff.ok()) failed.fetch_add(1);
    }
  });
  std::vector<unsigned> states(threads);
  for (size_t t = 0; t < states.size(); ++t) {
    states[t] = 0x9e3779b9u * static_cast<unsigned>(t + 1) + 5;
  }
  RunResult run = RunTimed(
      "sharded_upgrade", "f32", "mixed_swap", threads, seconds,
      [&](int t, int64_t i) {
        unsigned* s = &states[t];
        *s = *s * 1664525u + 1013904223u;
        const int task = static_cast<int>((*s >> 8) % num_tasks);
        if (i % 10 == 0) {
          // Generation-pinned request: stale after the first swap.
          auto r = service.Query(PoolRequestBuilder()
                                     .Tasks({task})
                                     .Input(probe)
                                     .Generation(1)
                                     .Build());
          if (!r.ok()) failed.fetch_add(1);
        } else {
          if (!service.Query({task}).ok()) failed.fetch_add(1);
        }
      });
  swapper.join();

  ServeStats stats = service.serve_stats();
  SwapResult result;
  result.run = run;
  result.swaps = stats.generations_swapped;
  result.keys_invalidated = stats.cache_keys_invalidated;
  result.stale_pins = stats.stale_generation_queries;
  result.final_generation = stats.generation;
  std::printf(
      "[bench] live upgrade: %lld swaps under %.0f qps mixed load, "
      "%lld keys invalidated, %lld stale pins, %lld failed queries, "
      "final generation %llu\n",
      static_cast<long long>(result.swaps), run.qps,
      static_cast<long long>(result.keys_invalidated),
      static_cast<long long>(result.stale_pins),
      static_cast<long long>(failed.load()),
      static_cast<unsigned long long>(result.final_generation));
  if (failed.load() > 0) result.run.service = "sharded_upgrade_FAILED";
  return result;
}

// ------------------------------------------------------- simulated assembly
// On the real pool, assembly is pointer wiring (~1us), so the cost a miss
// imposes on concurrent traffic is hard to see on few cores. These two
// adapters run the SAME cache designs with a simulated 1ms assembly (a
// production-weight miss: big pools, experts paged from disk), which
// overlaps across threads regardless of core count - isolating the
// architectural difference: does a miss stall unrelated traffic?
class SimGlobalMutexService {
 public:
  explicit SimGlobalMutexService(size_t capacity, double assembly_ms)
      : capacity_(capacity), assembly_ms_(assembly_ms) {}

  void Query(const std::vector<int>& key) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      return;
    }
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        assembly_ms_));  // "assembly" under the global lock
    lru_.emplace_front(key, 0);
    index_[key] = lru_.begin();
    if (lru_.size() > capacity_) {
      index_.erase(lru_.back().first);
      lru_.pop_back();
    }
  }

 private:
  using Entry = std::pair<std::vector<int>, int>;
  size_t capacity_;
  double assembly_ms_;
  std::mutex mu_;
  std::list<Entry> lru_;
  std::map<std::vector<int>, std::list<Entry>::iterator> index_;
};

class SimShardedService {
 public:
  explicit SimShardedService(size_t capacity, double assembly_ms)
      : cache_(ShardedFlightCache<int>::Options{capacity, 8}),
        assembly_ms_(assembly_ms) {}

  void Query(const std::vector<int>& key) {
    cache_.GetOrAssemble(key, [this](const std::vector<int>&) -> Result<int> {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          assembly_ms_));  // "assembly" outside every shard lock
      return 0;
    });
  }

 private:
  ShardedFlightCache<int> cache_;
  double assembly_ms_;
};

// ---------------------------------------------------------------------- main
void PrintTable(const std::vector<RunResult>& results) {
  std::printf("%-18s %-5s %-10s %8s %12s %10s %10s %8s\n", "service", "prec",
              "workload", "threads", "qps", "p50_ms", "p99_ms", "batch");
  for (const RunResult& r : results) {
    std::printf("%-18s %-5s %-10s %8d %12.0f %10.4f %10.4f %8.1f\n",
                r.service.c_str(), r.precision.c_str(), r.workload.c_str(),
                r.threads, r.qps, r.p50_ms, r.p99_ms, r.avg_batch);
  }
}

double FindQps(const std::vector<RunResult>& results,
               const std::string& service, const std::string& precision,
               const std::string& workload, int threads) {
  for (const RunResult& r : results) {
    if (r.service == service && r.precision == precision &&
        r.workload == workload && r.threads == threads) {
      return r.qps;
    }
  }
  return 0.0;
}

void WriteJson(const std::string& path, const std::vector<RunResult>& results,
               const std::vector<int>& thread_counts,
               const DedupResult& dedup, const SwapResult& swap) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"context\": {\n");
  std::fprintf(f, "    \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "    \"hot_keys\": %d,\n    \"cache_capacity\": %zu\n",
               kHotKeys, kCacheCapacity);
  std::fprintf(f, "  },\n  \"runs\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    std::fprintf(
        f,
        "    {\"service\": \"%s\", \"precision\": \"%s\", \"workload\": "
        "\"%s\", \"threads\": %d, \"seconds\": %.3f, \"ops\": %lld, "
        "\"qps\": %.1f, \"p50_ms\": %.5f, \"p99_ms\": %.5f, "
        "\"avg_batch\": %.2f, \"trunk_fused_rows\": %lld}%s\n",
        r.service.c_str(), r.precision.c_str(), r.workload.c_str(),
        r.threads, r.seconds, static_cast<long long>(r.ops), r.qps,
        r.p50_ms, r.p99_ms, r.avg_batch,
        static_cast<long long>(r.trunk_fused_rows),
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"expert_dedup\": {\n");
  std::fprintf(f,
               "    \"composites\": %d,\n    \"distinct_experts\": %d,\n"
               "    \"naive_model_bytes\": %lld,\n"
               "    \"deduped_bytes\": %lld,\n"
               "    \"shared_bytes_saved\": %lld,\n"
               "    \"expert_hits\": %lld\n  },\n",
               dedup.composites, dedup.distinct_experts,
               static_cast<long long>(dedup.naive_model_bytes),
               static_cast<long long>(dedup.deduped_bytes),
               static_cast<long long>(dedup.shared_bytes_saved),
               static_cast<long long>(dedup.expert_hits));
  std::fprintf(f, "  \"generation_swap\": {\n");
  std::fprintf(f,
               "    \"swaps\": %lld,\n    \"keys_invalidated\": %lld,\n"
               "    \"stale_pins\": %lld,\n    \"final_generation\": %llu,\n"
               "    \"qps_under_swap\": %.1f,\n"
               "    \"p99_ms_under_swap\": %.5f\n  },\n",
               static_cast<long long>(swap.swaps),
               static_cast<long long>(swap.keys_invalidated),
               static_cast<long long>(swap.stale_pins),
               static_cast<unsigned long long>(swap.final_generation),
               swap.run.qps, swap.run.p99_ms);
  std::fprintf(f, "  \"derived\": {\n");
  const int top = thread_counts.back();
  for (const char* prec : {"f32", "int8", "sim"}) {
    const double base = FindQps(results, "global_mutex", prec, "mixed", top);
    const double shard = FindQps(results, "sharded", prec, "mixed", top);
    std::fprintf(f,
                 "    \"mixed_speedup_%dt_%s\": %.2f,\n", top, prec,
                 base > 0 ? shard / base : 0.0);
    const double one = FindQps(results, "sharded", prec, "hit", 1);
    const double many = FindQps(results, "sharded", prec, "hit", top);
    std::fprintf(f, "    \"hit_scaling_%dt_%s\": %.2f,\n", top, prec,
                 one > 0 ? many / one : 0.0);
  }
  for (const char* prec : {"f32"}) {
    const double off =
        FindQps(results, "server_trunk_off", prec, "cross_model", top);
    const double fused =
        FindQps(results, "server_trunk_fused", prec, "cross_model", top);
    std::fprintf(f, "    \"trunk_fusion_speedup_%dt_%s\": %.2f,\n", top,
                 prec, off > 0 ? fused / off : 0.0);
  }
  for (const char* prec : {"f32", "int8"}) {
    const double percall =
        FindQps(results, "model_percall", prec, "logits", 1);
    const double packed =
        FindQps(results, "model_prepacked", prec, "logits", 1);
    std::fprintf(f, "    \"prepack_speedup_%s\": %.2f,\n", prec,
                 percall > 0 ? packed / percall : 0.0);
  }
  std::fprintf(f, "    \"threads\": %d\n  }\n}\n", top);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

int Main(int argc, char** argv) {
  std::string json_path;
  double seconds = 0.3;
  int epochs = 2;
  std::vector<int> thread_counts = {1, 2, 4, 8};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--seconds" && i + 1 < argc) {
      seconds = std::atof(argv[++i]);
    } else if (arg == "--epochs" && i + 1 < argc) {
      epochs = std::atoi(argv[++i]);
    } else if (arg == "--threads" && i + 1 < argc) {
      thread_counts.clear();
      std::string spec = argv[++i];
      std::string cur;
      for (char c : spec + ",") {
        if (c == ',') {
          if (!cur.empty()) thread_counts.push_back(std::atoi(cur.c_str()));
          cur.clear();
        } else {
          cur += c;
        }
      }
    } else {
      std::fprintf(stderr,
                   "usage: serving_throughput [--json out.json] [--seconds "
                   "s] [--threads 1,2,4,8] [--epochs n]\n");
      return 2;
    }
  }

  // A small pool with enough primitives for a large composite-key
  // universe. Accuracy is irrelevant here - the serving path is the same
  // regardless of how well the experts learned.
  SyntheticDataConfig dc;
  dc.num_tasks = 12;
  dc.classes_per_task = 3;
  dc.train_per_class = 12;
  dc.test_per_class = 2;
  dc.noise = 0.8f;
  SyntheticDataset data = GenerateSyntheticDataset(dc);
  Rng rng(3);
  WrnConfig oracle_cfg;
  oracle_cfg.kc = 1.0;
  oracle_cfg.ks = 1.0;
  oracle_cfg.num_classes = data.hierarchy.num_classes();
  Wrn oracle(oracle_cfg, rng);
  TrainOptions opts;
  opts.epochs = epochs;
  std::printf("[bench] building pool (%d tasks, %d epochs)...\n",
              dc.num_tasks, epochs);
  TrainScratch(oracle, data.train, opts);
  PoeBuildConfig build;
  build.library_config = oracle_cfg;
  build.expert_ks = 0.25;
  build.library_options = opts;
  build.expert_options = opts;
  ExpertPool pool =
      ExpertPool::Preprocess(ModelLogits(oracle), data, build, rng);

  const std::vector<std::vector<int>> keys = KeyUniverse(dc.num_tasks);
  std::printf("[bench] %zu composite keys, %d hot, capacity %zu, %.1fs per "
              "run, threads on %u hw contexts\n",
              keys.size(), kHotKeys, kCacheCapacity, seconds,
              std::thread::hardware_concurrency());

  std::vector<RunResult> results;
  // Pack-once first: its per-call half needs masters nobody has prepacked
  // yet (any query through a service prepacks them for good).
  {
    auto r = PrepackWorkloads(pool, "f32", seconds, dc.height);
    results.insert(results.end(), r.begin(), r.end());
  }

  // Expert-level dedup next: the scenario needs a clean store (no prior
  // acquires) for its hit/miss accounting to be the scenario's own.
  const DedupResult dedup = DedupScenario(pool, dc.num_tasks);
  auto run_precision = [&](const std::string& precision) {
    {
      GlobalMutexService baseline(pool, kCacheCapacity);
      auto r = QueryWorkloads("global_mutex", precision, baseline, keys,
                              thread_counts, seconds);
      results.insert(results.end(), r.begin(), r.end());
    }
    {
      ModelQueryService sharded(pool, kCacheCapacity);
      auto r = QueryWorkloads("sharded", precision, sharded, keys,
                              thread_counts, seconds);
      results.insert(results.end(), r.begin(), r.end());
    }
    {
      ModelQueryService sharded(pool, kCacheCapacity);
      auto r = ServerWorkloads(precision, sharded, keys, thread_counts,
                               seconds, dc.height);
      results.insert(results.end(), r.begin(), r.end());
    }
    {
      ModelQueryService sharded(pool, kCacheCapacity);
      auto r = TrunkWorkloads(precision, sharded, thread_counts, seconds,
                              dc.height, dc.num_tasks);
      results.insert(results.end(), r.begin(), r.end());
    }
  };

  run_precision("f32");

  // Live pool upgrade under mixed load (f32; the pool is converted to
  // int8 just below, and SwapScenario deep-copies via Save/Load).
  const SwapResult swap =
      SwapScenario(pool, dc.num_tasks, thread_counts.back(), seconds,
                   dc.height);
  results.push_back(swap.run);

  const Status to_int8 = pool.SetServingPrecision(ServingPrecision::kInt8);
  if (!to_int8.ok()) {
    std::fprintf(stderr, "int8 conversion failed: %s\n",
                 to_int8.ToString().c_str());
    return 1;
  }
  {
    // The conversion dropped the f32 panels, so the int8 per-call half
    // starts unpacked just like a freshly converted pool would.
    auto r = PrepackWorkloads(pool, "int8", seconds, dc.height);
    results.insert(results.end(), r.begin(), r.end());
  }
  run_precision("int8");

  // Simulated production-weight assembly (1ms): the architectural
  // comparison that holds on any core count.
  constexpr double kSimAssemblyMs = 1.0;
  {
    SimGlobalMutexService baseline(kCacheCapacity, kSimAssemblyMs);
    auto r = QueryWorkloads("global_mutex", "sim", baseline, keys,
                            thread_counts, seconds);
    results.insert(results.end(), r.begin(), r.end());
  }
  {
    SimShardedService sharded(kCacheCapacity, kSimAssemblyMs);
    auto r = QueryWorkloads("sharded", "sim", sharded, keys, thread_counts,
                            seconds);
    results.insert(results.end(), r.begin(), r.end());
  }

  PrintTable(results);
  const int top = thread_counts.back();
  for (const char* prec : {"f32", "int8", "sim"}) {
    const double base = FindQps(results, "global_mutex", prec, "mixed", top);
    const double shard = FindQps(results, "sharded", prec, "mixed", top);
    std::printf("[bench] %s mixed @%d threads: global_mutex %.0f qps, "
                "sharded %.0f qps (%.2fx)\n",
                prec, top, base, shard, base > 0 ? shard / base : 0.0);
  }
  for (const char* prec : {"f32", "int8"}) {
    const double off =
        FindQps(results, "server_trunk_off", prec, "cross_model", top);
    const double fused =
        FindQps(results, "server_trunk_fused", prec, "cross_model", top);
    std::printf("[bench] %s cross-model @%d threads: trunk off %.0f qps, "
                "fused %.0f qps (%.2fx)\n",
                prec, top, off, fused, off > 0 ? fused / off : 0.0);
  }
  if (!json_path.empty()) {
    WriteJson(json_path, results, thread_counts, dedup, swap);
  }
  return 0;
}

}  // namespace
}  // namespace poe

int main(int argc, char** argv) { return poe::Main(argc, argv); }

// Table 1: accuracy and model sizes of oracles and library student models.
//
// Paper reference (CIFAR-100): oracle WRN-40-(4,4) 76.70% / 1.30B FLOPs /
// 8.97M params; library WRN-16-(1,1) 63.84% / 0.03B / 0.18M.
// (Tiny-ImageNet): oracle WRN-16-(10,10) 64.49% / 2.42B / 17.24M; library
// WRN-16-(2,2) 56.96% / 0.10B / 0.72M.
#include <cstdio>
#include <map>

#include "common/bench_env.h"
#include "eval/metrics.h"
#include "eval/table.h"
#include "models/cost.h"

namespace poe {
namespace bench {
namespace {

struct PaperRow {
  double oracle_acc, library_acc;
};

void RunDataset(DatasetKind kind, const PaperRow& paper) {
  BenchEnv& env = GetBenchEnv(kind);
  const int64_t hw = env.data.config.height;

  const float oracle_acc =
      EvaluateAccuracy(ModelLogits(*env.oracle), env.data.test);

  ModelCost oracle_cost = CostOfWrn(env.oracle_config, hw, hw);
  ModelCost library_cost = CostOfWrn(env.library_config, hw, hw);

  // Table 1's library row is the *generic* KD student (the pool only keeps
  // its conv1..conv3), so train one here to measure its accuracy; memoized
  // per dataset within this process.
  static std::map<DatasetKind, float>* lib_acc_cache =
      new std::map<DatasetKind, float>();
  float library_acc;
  auto it = lib_acc_cache->find(kind);
  if (it != lib_acc_cache->end()) {
    library_acc = it->second;
  } else {
    Rng rng(777);
    Wrn student(env.library_config, rng);
    TrainOptions opts = env.baseline_options;
    opts.epochs += 4;
    TrainStandardKd(ModelLogits(*env.oracle), student, env.data.train, opts);
    library_acc = EvaluateAccuracy(ModelLogits(student), env.data.test);
    (*lib_acc_cache)[kind] = library_acc;
  }

  std::printf("\n=== Table 1 [%s] ===\n", env.name.c_str());
  TablePrinter table({"Model", "Arch", "Acc(%)", "paper Acc", "FLOPs",
                      "Params"});
  table.AddRow({"Oracle (teacher)", env.oracle_config.ToString(),
                TablePrinter::Pct(oracle_acc), PaperRef(paper.oracle_acc),
                TablePrinter::HumanCount(oracle_cost.flops),
                TablePrinter::HumanCount(oracle_cost.params)});
  table.AddRow({"Library model (student)", env.library_config.ToString(),
                TablePrinter::Pct(library_acc), PaperRef(paper.library_acc),
                TablePrinter::HumanCount(library_cost.flops),
                TablePrinter::HumanCount(library_cost.params)});
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "shape check: oracle > library accuracy: %s | oracle/library params "
      "ratio %.1fx (paper ~50x at full scale)\n",
      oracle_acc > library_acc ? "yes" : "NO",
      static_cast<double>(oracle_cost.params) / library_cost.params);
}

}  // namespace
}  // namespace bench
}  // namespace poe

int main() {
  using poe::bench::DatasetKind;
  poe::bench::RunDataset(DatasetKind::kCifar100Like, {76.70, 63.84});
  if (poe::bench::BenchScale::FromEnv().paper) {
    poe::bench::RunDataset(DatasetKind::kTinyImageNetLike, {64.49, 56.96});
  } else {
    std::printf(
        "\n[table1] tiny-imagenet-like skipped in fast mode; set "
        "POE_BENCH_SCALE=paper to include it.\n");
  }
  return 0;
}

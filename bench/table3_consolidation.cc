// Table 3: accuracy and size of task-specific models built by each
// consolidation method, for n(Q) = 2..5 primitive tasks.
//
// Paper shape (CIFAR-100, n(Q)=2 .. 5):
//   Oracle 84.25 / 82.94 / 81.82 / 80.82
//   KD 67.61 / 71.29 / 72.32 / 72.43,  Scratch 72.65 / 71.47 / 70.97 / 70.21
//   Transfer 77.82 / 77.50 / 74.54 / 73.36
//   SD+Scratch 57.06 / 48.60 / 43.08 / 39.15
//   UHC+Scratch 57.57 / 49.73 / 44.49 / 40.83
//   SD+CKD 73.94 / 71.28 / 69.46 / 67.77, UHC+CKD 73.87 / 71.56 / 70.49 / 68.84
//   CKD 78.55 / 77.00 / 75.70 / 74.27,  PoE 79.03 / 76.41 / 74.18 / 72.22
// Key shapes: PoE beats every training method except CKD (and Transfer at
// small n); SD/UHC+Scratch collapse; PoE params < all trained models.
#include <cstdio>
#include <map>
#include <vector>

#include "common/bench_env.h"
#include "common/consolidation.h"
#include "eval/table.h"
#include "util/env.h"

namespace poe {
namespace bench {
namespace {

void RunDataset(DatasetKind kind) {
  BenchEnv& env = GetBenchEnv(kind);
  const BenchScale scale = BenchScale::FromEnv();

  std::printf("\n=== Table 3 [%s] ===\n", env.name.c_str());
  TablePrinter table({"Method", "n(Q)=2 Acc", "n(Q)=3 Acc", "n(Q)=4 Acc",
                      "n(Q)=5 Acc", "FLOPs@5", "Params@5"});

  // method -> per-n accuracy average.
  std::map<std::string, std::vector<double>> acc;
  std::map<std::string, ConsolidationRun> last_runs;
  for (int n = 2; n <= 5; ++n) {
    std::map<std::string, double> sums;
    std::map<std::string, int> counts;
    for (const auto& combo : env.Combos(n, scale.combos_per_nq)) {
      std::printf("[table3] %s n(Q)=%d combo {", env.name.c_str(), n);
      for (size_t i = 0; i < combo.size(); ++i)
        std::printf("%s%d", i ? "," : "", combo[i]);
      std::printf("}...\n");
      std::fflush(stdout);
      for (ConsolidationRun& run :
           RunConsolidation(env, combo, /*with_curves=*/false)) {
        sums[run.method] += run.accuracy;
        counts[run.method] += 1;
        if (n == 5) last_runs[run.method] = run;
      }
    }
    for (const std::string& m : AllConsolidationMethods()) {
      acc[m].push_back(sums[m] / counts[m]);
    }
  }

  for (const std::string& m : AllConsolidationMethods()) {
    const ConsolidationRun& run = last_runs[m];
    table.AddRow({m + (m == "CKD" || m == "PoE" ? " (ours)" : ""),
                  TablePrinter::Pct(acc[m][0]), TablePrinter::Pct(acc[m][1]),
                  TablePrinter::Pct(acc[m][2]), TablePrinter::Pct(acc[m][3]),
                  TablePrinter::HumanCount(run.cost.flops),
                  TablePrinter::HumanCount(run.cost.params)});
  }
  std::printf("%s", table.ToString().c_str());

  // Shape checks from the paper's discussion.
  auto avg = [&](const std::string& m) {
    double s = 0;
    for (double v : acc[m]) s += v;
    return s / acc[m].size();
  };
  std::printf("shape checks:\n");
  std::printf("  PoE > SD+Scratch and UHC+Scratch (merging independent "
              "models fails): %s\n",
              (avg("PoE") > avg("SD+Scratch") &&
               avg("PoE") > avg("UHC+Scratch"))
                  ? "holds"
                  : "violated");
  std::printf("  SD/UHC+CKD > SD/UHC+Scratch (composable experts help): "
              "%s\n",
              (avg("SD+CKD") > avg("SD+Scratch") &&
               avg("UHC+CKD") > avg("UHC+Scratch"))
                  ? "holds"
                  : "violated");
  std::printf("  CKD is the best trained method: %s\n",
              (avg("CKD") >= avg("Scratch") && avg("CKD") >= avg("KD") &&
               avg("CKD") >= avg("SD+CKD") && avg("CKD") >= avg("UHC+CKD"))
                  ? "holds"
                  : "violated");
  std::printf("  PoE params below monolithic students (branched "
              "architecture): %s\n",
              last_runs["PoE"].cost.params < last_runs["CKD"].cost.params
                  ? "holds"
                  : "violated");
}

}  // namespace
}  // namespace bench
}  // namespace poe

int main() {
  poe::bench::RunDataset(poe::bench::DatasetKind::kCifar100Like);
  if (poe::bench::BenchScale::FromEnv().paper) {
    poe::bench::RunDataset(poe::bench::DatasetKind::kTinyImageNetLike);
  } else {
    std::printf(
        "\n[table3] tiny-imagenet-like skipped in fast mode; set "
        "POE_BENCH_SCALE=paper to include it.\n");
  }
  return 0;
}

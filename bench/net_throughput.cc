// Loopback load generator for the net front-end: drives a NetServer over
// 127.0.0.1 with real request/response frames and reports wire-level
// throughput and latency.
//
// Two traffic shapes per connection count:
//   - closed: each connection is a synchronous client - send one request,
//     wait for its response, repeat. Latency is a pure round trip.
//   - open: each connection keeps a window of requests pipelined
//     (Send/Receive with request_id matching), the shape a fan-in
//     front-end produces. Throughput reflects batching; latency includes
//     queueing behind the window.
//
// Usage:
//   net_throughput [--json out.json] [--seconds 0.3] [--conns 1,2,4]
//                  [--window 8] [--epochs 2]
//                  [--target host:port] [--max-task N] [--hw N]
//
// By default the bench builds its own in-process pool + NetServer. With
// --target it instead drives an EXTERNAL server (e.g. `poectl net-serve`)
// — the load half of the upgrade-under-load smoke: traffic keeps flowing
// while the operator hot-swaps the pool, and the bench exits nonzero if
// ANY request failed. --allow=status,... whitelists failure statuses for
// fault smokes (the kill-a-node smoke allows exactly the cluster
// whitelist unavailable,deadline_exceeded,resource_exhausted — those
// count separately and do not fail the run). --max-task bounds the task
// ids used (clients issue pairs {i, i+1} with i+1 <= max-task; default
// 4), --hw the probe image side (default 8, matching poectl-built pools).
//
// The JSON is merged under the "net_loopback" key of
// BENCH_serving_throughput.json by tools/bench_to_json.sh --with-net.
#include <atomic>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/expert_pool.h"
#include "core/query_service.h"
#include "data/synthetic.h"
#include "distill/specialize.h"
#include "eval/metrics.h"
#include "net/net_client.h"
#include "net/net_server.h"
#include "serve/inference_server.h"
#include "util/histogram.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace poe {
namespace {

struct RunResult {
  std::string mode;       // "closed" | "open"
  int conns = 0;
  int window = 1;         // in-flight per connection (1 for closed)
  double seconds = 0.0;
  int64_t ops = 0;        // completed round trips
  int64_t errors = 0;     // transport or server-status failures
  int64_t allowed = 0;    // failures whose status was --allow whitelisted
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double avg_batch = 0.0;  // server-side fused batch size over the run
};

/// The `--allow` whitelist: failure statuses that do NOT fail a --target
/// run. The kill-a-node smoke drives load while a peer is SIGKILLed, so
/// it allows exactly the cluster status whitelist {Unavailable,
/// DeadlineExceeded, ResourceExhausted} — every other failure (protocol
/// error, InvalidArgument, a hang surfacing as zero ops) still fails.
struct AllowList {
  std::vector<StatusCode> codes;

  bool Allows(StatusCode code) const {
    for (StatusCode c : codes) {
      if (c == code) return true;
    }
    return false;
  }
};

bool ParseAllowList(const std::string& spec, AllowList* allow) {
  static const std::map<std::string, StatusCode> kNames = {
      {"unavailable", StatusCode::kUnavailable},
      {"deadline_exceeded", StatusCode::kDeadlineExceeded},
      {"resource_exhausted", StatusCode::kResourceExhausted},
      {"io_error", StatusCode::kIoError},
  };
  std::string cur;
  for (char c : spec + ",") {
    if (c != ',') {
      cur += c;
      continue;
    }
    if (cur.empty()) continue;
    auto it = kNames.find(cur);
    if (it == kNames.end()) return false;
    allow->codes.push_back(it->second);
    cur.clear();
  }
  return true;
}

/// The composite task a client thread queries: adjacent pairs {i, i+1}
/// cycling over [0, max_task] so overlapping composites exercise both the
/// flight cache and expert-level sharing.
std::vector<int> TasksFor(int t, int max_task) {
  const int lo = max_task > 0 ? t % max_task : 0;
  return {lo, lo + 1};
}

/// Closed loop: `conns` synchronous clients, each its own connection and
/// thread, each blocking on one round trip at a time.
RunResult RunClosed(const std::string& host, int port, int conns,
                    double seconds, int image_hw, int max_task,
                    const AllowList& allow = {}) {
  LatencyHistogram hist;
  std::atomic<int64_t> total_ops{0};
  std::atomic<int64_t> total_errors{0};
  std::atomic<int64_t> total_allowed{0};
  std::atomic<bool> stop{false};

  std::vector<std::thread> clients;
  Stopwatch wall;
  for (int t = 0; t < conns; ++t) {
    clients.emplace_back([&, t] {
      NetClient client;
      if (!client.Connect(host, port).ok()) {
        total_errors.fetch_add(1);
        return;
      }
      Rng rng(100 + t);
      Tensor probe = Tensor::Randn({1, 3, image_hw, image_hw}, rng);
      const std::vector<int> tasks = TasksFor(t, max_task);
      int64_t ops = 0, errors = 0, allowed = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        Stopwatch sw;
        auto r = client.Query(tasks, probe);
        if (r.ok() && r.ValueOrDie().status.ok()) {
          hist.Record(sw.ElapsedMillis());
          ++ops;
        } else {
          const StatusCode code =
              r.ok() ? r.ValueOrDie().status.code() : r.status().code();
          if (allow.Allows(code)) {
            ++allowed;
          } else {
            ++errors;
          }
          if (!r.ok()) break;  // transport gone - stop this connection
        }
      }
      total_ops.fetch_add(ops);
      total_errors.fetch_add(errors);
      total_allowed.fetch_add(allowed);
    });
  }
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int64_t>(seconds * 1e3)));
  stop.store(true);
  for (auto& c : clients) c.join();

  RunResult r;
  r.mode = "closed";
  r.conns = conns;
  r.window = 1;
  r.seconds = wall.ElapsedSeconds();
  r.ops = total_ops.load();
  r.errors = total_errors.load();
  r.allowed = total_allowed.load();
  r.qps = static_cast<double>(r.ops) / r.seconds;
  r.p50_ms = hist.Percentile(0.50);
  r.p99_ms = hist.Percentile(0.99);
  return r;
}

/// Open loop: each connection keeps `window` requests in flight. Every
/// Receive() retires one in-flight slot (matched by request_id, since the
/// server answers in completion order) and refills it with a fresh Send.
RunResult RunOpen(const std::string& host, int port, int conns, int window,
                  double seconds, int image_hw, int max_task,
                  const AllowList& allow = {}) {
  LatencyHistogram hist;
  std::atomic<int64_t> total_ops{0};
  std::atomic<int64_t> total_errors{0};
  std::atomic<int64_t> total_allowed{0};
  std::atomic<bool> stop{false};

  std::vector<std::thread> clients;
  Stopwatch wall;
  for (int t = 0; t < conns; ++t) {
    clients.emplace_back([&, t] {
      NetClient client;
      if (!client.Connect(host, port).ok()) {
        total_errors.fetch_add(1);
        return;
      }
      Rng rng(200 + t);
      Tensor probe = Tensor::Randn({1, 3, image_hw, image_hw}, rng);
      const std::vector<int> tasks = TasksFor(t, max_task);
      std::map<uint64_t, Stopwatch> inflight;
      int64_t ops = 0, errors = 0, allowed = 0;

      auto send_one = [&]() -> bool {
        auto id = client.Send(tasks, probe);
        if (!id.ok()) return false;
        inflight.emplace(id.ValueOrDie(), Stopwatch());
        return true;
      };
      auto retire_one = [&]() -> bool {
        auto r = client.Receive();
        if (!r.ok()) return false;
        auto it = inflight.find(r.ValueOrDie().request_id);
        if (it != inflight.end()) {
          if (r.ValueOrDie().status.ok()) {
            hist.Record(it->second.ElapsedMillis());
            ++ops;
          } else if (allow.Allows(r.ValueOrDie().status.code())) {
            ++allowed;
          } else {
            ++errors;
          }
          inflight.erase(it);
        }
        return true;
      };

      bool alive = true;
      for (int i = 0; i < window && alive; ++i) alive = send_one();
      while (alive && !stop.load(std::memory_order_relaxed)) {
        alive = retire_one() && send_one();
      }
      // Drain what is still pipelined so the run's ops are fully counted.
      while (alive && !inflight.empty()) alive = retire_one();
      if (!alive) ++errors;
      total_ops.fetch_add(ops);
      total_errors.fetch_add(errors);
      total_allowed.fetch_add(allowed);
    });
  }
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int64_t>(seconds * 1e3)));
  stop.store(true);
  for (auto& c : clients) c.join();

  RunResult r;
  r.mode = "open";
  r.conns = conns;
  r.window = window;
  r.seconds = wall.ElapsedSeconds();
  r.ops = total_ops.load();
  r.errors = total_errors.load();
  r.allowed = total_allowed.load();
  r.qps = static_cast<double>(r.ops) / r.seconds;
  r.p50_ms = hist.Percentile(0.50);
  r.p99_ms = hist.Percentile(0.99);
  return r;
}

void PrintTable(const std::vector<RunResult>& results) {
  std::printf("%-8s %6s %7s %10s %8s %10s %10s %8s %7s %7s\n", "mode",
              "conns", "window", "qps", "ops", "p50_ms", "p99_ms", "batch",
              "errors", "allowed");
  for (const RunResult& r : results) {
    std::printf("%-8s %6d %7d %10.0f %8lld %10.4f %10.4f %8.1f %7lld %7lld\n",
                r.mode.c_str(), r.conns, r.window, r.qps,
                static_cast<long long>(r.ops), r.p50_ms, r.p99_ms,
                r.avg_batch, static_cast<long long>(r.errors),
                static_cast<long long>(r.allowed));
  }
}

void WriteJson(const std::string& path, const std::vector<RunResult>& results,
               const NetStats& net_stats) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"context\": {\n");
  std::fprintf(f, "    \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "    \"transport\": \"loopback_tcp\"\n  },\n");
  std::fprintf(f, "  \"runs\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    std::fprintf(
        f,
        "    {\"mode\": \"%s\", \"conns\": %d, \"window\": %d, "
        "\"seconds\": %.3f, \"ops\": %lld, \"errors\": %lld, "
        "\"allowed\": %lld, \"qps\": %.1f, \"p50_ms\": %.5f, "
        "\"p99_ms\": %.5f, \"avg_batch\": %.2f}%s\n",
        r.mode.c_str(), r.conns, r.window, r.seconds,
        static_cast<long long>(r.ops), static_cast<long long>(r.errors),
        static_cast<long long>(r.allowed), r.qps, r.p50_ms, r.p99_ms,
        r.avg_batch, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"server\": {\n");
  std::fprintf(f,
               "    \"bytes_in\": %lld,\n    \"bytes_out\": %lld,\n"
               "    \"frames_decoded\": %lld,\n"
               "    \"responses_sent\": %lld,\n"
               "    \"protocol_errors\": %lld,\n"
               "    \"conns_accepted\": %lld\n  }\n}\n",
               static_cast<long long>(net_stats.bytes_in),
               static_cast<long long>(net_stats.bytes_out),
               static_cast<long long>(net_stats.frames_decoded),
               static_cast<long long>(net_stats.responses_sent),
               static_cast<long long>(net_stats.protocol_errors),
               static_cast<long long>(net_stats.conns_accepted));
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

int Main(int argc, char** argv) {
  std::string json_path;
  std::string target;
  double seconds = 0.3;
  int epochs = 2;
  int window = 8;
  int max_task = 4;
  int image_hw = 8;
  AllowList allow;
  std::vector<int> conn_counts = {1, 2, 4};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--target" && i + 1 < argc) {
      target = argv[++i];
    } else if (arg == "--allow" && i + 1 < argc) {
      if (!ParseAllowList(argv[++i], &allow)) {
        std::fprintf(stderr, "bad --allow '%s' (known: unavailable, "
                     "deadline_exceeded, resource_exhausted, io_error)\n",
                     argv[i]);
        return 2;
      }
    } else if (arg == "--seconds" && i + 1 < argc) {
      seconds = std::atof(argv[++i]);
    } else if (arg == "--epochs" && i + 1 < argc) {
      epochs = std::atoi(argv[++i]);
    } else if (arg == "--window" && i + 1 < argc) {
      window = std::atoi(argv[++i]);
    } else if (arg == "--max-task" && i + 1 < argc) {
      max_task = std::atoi(argv[++i]);
    } else if (arg == "--hw" && i + 1 < argc) {
      image_hw = std::atoi(argv[++i]);
    } else if (arg == "--conns" && i + 1 < argc) {
      conn_counts.clear();
      std::string spec = argv[++i];
      std::string cur;
      for (char c : spec + ",") {
        if (c == ',') {
          if (!cur.empty()) conn_counts.push_back(std::atoi(cur.c_str()));
          cur.clear();
        } else {
          cur += c;
        }
      }
    } else {
      std::fprintf(stderr,
                   "usage: net_throughput [--json out.json] [--seconds s] "
                   "[--conns 1,2,4] [--window n] [--epochs n] "
                   "[--target host:port] [--allow status,...] "
                   "[--max-task n] [--hw n]\n");
      return 2;
    }
  }

  if (!target.empty()) {
    // External-target mode: drive an already-running server (the load
    // half of the upgrade-under-load smoke). No pool, no in-process
    // server, no per-run batch stats — and any failed request fails the
    // whole run, because a live upgrade must not drop traffic.
    std::string host = "127.0.0.1";
    int port = 0;
    const size_t colon = target.rfind(':');
    if (colon == std::string::npos) {
      port = std::atoi(target.c_str());
    } else {
      host = target.substr(0, colon);
      port = std::atoi(target.c_str() + colon + 1);
    }
    if (port <= 0) {
      std::fprintf(stderr, "bad --target '%s'\n", target.c_str());
      return 2;
    }
    std::printf("[bench] driving external %s:%d, %.1fs per run, window %d, "
                "tasks <= %d\n",
                host.c_str(), port, seconds, window, max_task);
    std::vector<RunResult> results;
    for (int conns : conn_counts) {
      results.push_back(
          RunClosed(host, port, conns, seconds, image_hw, max_task, allow));
    }
    for (int conns : conn_counts) {
      results.push_back(RunOpen(host, port, conns, window, seconds,
                                image_hw, max_task, allow));
    }
    PrintTable(results);
    if (!json_path.empty()) WriteJson(json_path, results, NetStats());
    int64_t total_errors = 0, total_ops = 0, total_allowed = 0;
    for (const RunResult& r : results) {
      total_errors += r.errors;
      total_ops += r.ops;
      total_allowed += r.allowed;
    }
    // Liveness: SOMETHING must have resolved — a whitelisted failure is
    // a resolved future (the kill smoke's point), silence is a hang.
    if ((total_ops == 0 && total_allowed == 0) || total_errors > 0) {
      std::fprintf(stderr, "[bench] FAILED: %lld errors over %lld ops "
                   "(%lld whitelisted)\n",
                   static_cast<long long>(total_errors),
                   static_cast<long long>(total_ops),
                   static_cast<long long>(total_allowed));
      return 1;
    }
    std::printf("[bench] ok: %lld ops, 0 errors, %lld whitelisted "
                "failures\n",
                static_cast<long long>(total_ops),
                static_cast<long long>(total_allowed));
    return 0;
  }

  SyntheticDataConfig dc;
  dc.num_tasks = 6;
  dc.classes_per_task = 3;
  dc.train_per_class = 12;
  dc.test_per_class = 2;
  dc.noise = 0.8f;
  SyntheticDataset data = GenerateSyntheticDataset(dc);
  Rng rng(3);
  WrnConfig oracle_cfg;
  oracle_cfg.kc = 1.0;
  oracle_cfg.ks = 1.0;
  oracle_cfg.num_classes = data.hierarchy.num_classes();
  Wrn oracle(oracle_cfg, rng);
  TrainOptions topts;
  topts.epochs = epochs;
  std::printf("[bench] building pool (%d tasks, %d epochs)...\n",
              dc.num_tasks, epochs);
  TrainScratch(oracle, data.train, topts);
  PoeBuildConfig build;
  build.library_config = oracle_cfg;
  build.expert_ks = 0.25;
  build.library_options = topts;
  build.expert_options = topts;
  ExpertPool pool =
      ExpertPool::Preprocess(ModelLogits(oracle), data, build, rng);

  ModelQueryService service(pool, /*cache_capacity=*/64);
  InferenceServer::Options sopts;
  sopts.num_workers = 2;
  sopts.queue_capacity = 1024;
  sopts.max_batch_rows = 32;
  InferenceServer server(&service, sopts);

  NetServer::Options nopts;
  nopts.num_workers = 2;
  NetServer net(&server, nopts);
  const Status started = net.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "net.Start: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("[bench] serving on 127.0.0.1:%d, %.1fs per run, window %d\n",
              net.port(), seconds, window);

  std::vector<RunResult> results;
  for (int conns : conn_counts) {
    ServeStats before = server.stats();
    RunResult r =
        RunClosed("127.0.0.1", net.port(), conns, seconds, dc.height,
                  max_task);
    ServeStats after = server.stats();
    const int64_t batches = after.batches - before.batches;
    r.avg_batch = batches > 0
                      ? static_cast<double>(after.batched_requests -
                                            before.batched_requests) /
                            static_cast<double>(batches)
                      : 0.0;
    results.push_back(r);
  }
  for (int conns : conn_counts) {
    ServeStats before = server.stats();
    RunResult r = RunOpen("127.0.0.1", net.port(), conns, window, seconds,
                          dc.height, max_task);
    ServeStats after = server.stats();
    const int64_t batches = after.batches - before.batches;
    r.avg_batch = batches > 0
                      ? static_cast<double>(after.batched_requests -
                                            before.batched_requests) /
                            static_cast<double>(batches)
                      : 0.0;
    results.push_back(r);
  }

  net.Stop();
  PrintTable(results);

  const NetStats n = net.stats();
  std::printf("[bench] wire: %lld frames in, %lld responses, %lld bytes in, "
              "%lld bytes out, %lld protocol errors\n",
              static_cast<long long>(n.frames_decoded),
              static_cast<long long>(n.responses_sent),
              static_cast<long long>(n.bytes_in),
              static_cast<long long>(n.bytes_out),
              static_cast<long long>(n.protocol_errors));
  if (!json_path.empty()) WriteJson(json_path, results, n);
  return 0;
}

}  // namespace
}  // namespace poe

int main(int argc, char** argv) { return poe::Main(argc, argv); }

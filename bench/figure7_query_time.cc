// Figure 7: wall-clock time to reach each method's best accuracy when
// building M(Q), as n(Q) grows from 2 to 5.
//
// Paper shape: training time grows with n(Q) for every method (more data,
// bigger students) while PoE stays at ~0 regardless of n(Q).
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "common/bench_env.h"
#include "common/consolidation.h"
#include "eval/table.h"

namespace poe {
namespace bench {
namespace {

void RunDataset(DatasetKind kind) {
  BenchEnv& env = GetBenchEnv(kind);

  std::map<std::string, std::vector<double>> seconds;
  for (int n = 2; n <= 5; ++n) {
    const auto combo = env.Combos(n, 1).front();
    std::printf("[figure7] %s n(Q)=%d...\n", env.name.c_str(), n);
    std::fflush(stdout);
    std::vector<std::string> methods = AllConsolidationMethods();
    methods.erase(methods.begin());  // Oracle is not a build method
    for (ConsolidationRun& run :
         RunConsolidation(env, combo, /*with_curves=*/true, methods)) {
      seconds[run.method].push_back(run.seconds_to_best);
    }
  }

  std::printf("\n=== Figure 7 [%s]: time (s) to best accuracy ===\n",
              env.name.c_str());
  TablePrinter table({"Method", "n(Q)=2", "n(Q)=3", "n(Q)=4", "n(Q)=5"});
  for (const auto& [method, times] : seconds) {
    std::vector<std::string> cells = {method};
    for (double t : times) cells.push_back(TablePrinter::Num(t, 3));
    table.AddRow(cells);
  }
  std::printf("%s", table.ToString().c_str());

  const auto& poe_times = seconds["PoE"];
  double max_poe = 0, min_train = 1e30;
  for (double t : poe_times) max_poe = std::max(max_poe, t);
  for (const auto& [method, times] : seconds) {
    if (method == "PoE") continue;
    for (double t : times) min_train = std::min(min_train, t);
  }
  std::printf(
      "shape check (paper: only PoE is realtime): slowest PoE query %.4fs "
      "vs fastest training run %.2fs -> %s\n",
      max_poe, min_train,
      max_poe * 10 < min_train ? "holds" : "violated");
}

}  // namespace
}  // namespace bench
}  // namespace poe

int main() {
  poe::bench::RunDataset(poe::bench::DatasetKind::kCifar100Like);
  if (poe::bench::BenchScale::FromEnv().paper) {
    poe::bench::RunDataset(poe::bench::DatasetKind::kTinyImageNetLike);
  } else {
    std::printf(
        "\n[figure7] tiny-imagenet-like skipped in fast mode; set "
        "POE_BENCH_SCALE=paper to include it.\n");
  }
  return 0;
}

// Microbenchmarks of the tensor/NN substrate (google-benchmark).
#include <benchmark/benchmark.h>

#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace poe {
namespace {

void BM_Gemm(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, rng);
  Tensor b = Tensor::Randn({n, n}, rng);
  Tensor c = Tensor::Zeros({n, n});
  for (auto _ : state) {
    Gemm(false, false, n, n, n, 1.0f, a.data(), b.data(), 0.0f, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_Conv2dForward(benchmark::State& state) {
  const int64_t channels = state.range(0);
  Rng rng(2);
  Conv2d conv(channels, channels, 3, 1, 1, rng);
  Tensor x = Tensor::Randn({32, channels, 8, 8}, rng);
  for (auto _ : state) {
    Tensor y = conv.Forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_Conv2dForward)->Arg(8)->Arg(32)->Arg(64);

void BM_Conv2dBackward(benchmark::State& state) {
  const int64_t channels = state.range(0);
  Rng rng(3);
  Conv2d conv(channels, channels, 3, 1, 1, rng);
  Tensor x = Tensor::Randn({32, channels, 8, 8}, rng);
  Tensor y = conv.Forward(x, true);
  for (auto _ : state) {
    conv.ZeroGrad();
    Tensor gx = conv.Backward(y);
    benchmark::DoNotOptimize(gx.data());
  }
}
BENCHMARK(BM_Conv2dBackward)->Arg(8)->Arg(32);

void BM_BatchNormTraining(benchmark::State& state) {
  Rng rng(4);
  BatchNorm2d bn(32);
  Tensor x = Tensor::Randn({64, 32, 8, 8}, rng);
  for (auto _ : state) {
    Tensor y = bn.Forward(x, true);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_BatchNormTraining);

void BM_Softmax(benchmark::State& state) {
  Rng rng(5);
  Tensor logits = Tensor::Randn({256, 100}, rng);
  for (auto _ : state) {
    Tensor p = Softmax2d(logits);
    benchmark::DoNotOptimize(p.data());
  }
}
BENCHMARK(BM_Softmax);

void BM_LinearForward(benchmark::State& state) {
  Rng rng(6);
  Linear lin(512, 100, rng);
  Tensor x = Tensor::Randn({256, 512}, rng);
  for (auto _ : state) {
    Tensor y = lin.Forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_LinearForward);

}  // namespace
}  // namespace poe

BENCHMARK_MAIN();

// Microbenchmarks of the tensor/NN substrate (google-benchmark).
#include <benchmark/benchmark.h>

#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "tensor/conv_direct.h"
#include "tensor/gemm.h"
#include "tensor/gemm_s8.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace poe {
namespace {

void BM_Gemm(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, rng);
  Tensor b = Tensor::Randn({n, n}, rng);
  Tensor c = Tensor::Zeros({n, n});
  for (auto _ : state) {
    Gemm(false, false, n, n, n, 1.0f, a.data(), b.data(), 0.0f, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  state.SetLabel(GemmKernelName());
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256)->Arg(512)->Arg(1024);

// Quantized GEMM with the serving-shaped epilogue (per-row dequant scales
// + bias + ReLU fused into the int32 -> f32 store). items_processed uses
// the same 2*n^3 op count as BM_Gemm, so the reported rate is effective
// FLOP-equivalent throughput — directly comparable against BM_Gemm rows.
void BM_GemmS8(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  std::vector<int8_t> a(n * n), b(n * n);
  for (auto& v : a)
    v = static_cast<int8_t>(static_cast<int64_t>(rng.NextInt(255)) - 127);
  for (auto& v : b)
    v = static_cast<int8_t>(static_cast<int64_t>(rng.NextInt(255)) - 127);
  std::vector<float> scales(n), bias(n), c(n * n);
  for (auto& v : scales) v = rng.Uniform(0.001f, 0.01f);
  for (auto& v : bias) v = rng.Uniform(-1.0f, 1.0f);
  GemmS8Epilogue ep;
  ep.scale = 0.02f;
  ep.row_scale = scales.data();
  ep.row_bias = bias.data();
  ep.relu = true;
  for (auto _ : state) {
    GemmS8(false, false, n, n, n, a.data(), b.data(), c.data(), ep,
           /*parallel=*/true);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  state.SetLabel(GemmS8KernelName());
}
BENCHMARK(BM_GemmS8)->Arg(64)->Arg(128)->Arg(256)->Arg(512)->Arg(1024);

// Same product with the weights pre-packed once (the conv serving path:
// packing cost amortized across every query).
void BM_GemmS8Packed(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(2);
  std::vector<int8_t> a(n * n), b(n * n);
  for (auto& v : a)
    v = static_cast<int8_t>(static_cast<int64_t>(rng.NextInt(255)) - 127);
  for (auto& v : b)
    v = static_cast<int8_t>(static_cast<int64_t>(rng.NextInt(255)) - 127);
  std::vector<float> scales(n, 0.01f), c(n * n);
  PackedS8Weights packed = PackedS8Weights::Pack(n, n, a.data());
  GemmS8Epilogue ep;
  ep.scale = 0.02f;
  ep.row_scale = scales.data();
  for (auto _ : state) {
    GemmS8PackedA(packed, n, b.data(), c.data(), ep, /*parallel=*/true);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  state.SetLabel(GemmS8KernelName());
}
BENCHMARK(BM_GemmS8Packed)->Arg(256)->Arg(512)->Arg(1024);

void BM_Conv2dForward(benchmark::State& state) {
  const int64_t channels = state.range(0);
  const int64_t batch = 32, hw = 8, kernel = 3;
  Rng rng(2);
  Conv2d conv(channels, channels, kernel, 1, 1, rng);
  Tensor x = Tensor::Randn({batch, channels, hw, hw}, rng);
  for (auto _ : state) {
    Tensor y = conv.Forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * batch * channels * channels *
                          kernel * kernel * hw * hw * 2);
}
BENCHMARK(BM_Conv2dForward)->Arg(8)->Arg(32)->Arg(64);

// WRN-shaped inference convolutions (CIFAR-style 32x32 inputs, batch 8):
// args are {in_channels, out_channels, spatial, stride, kernel}. The cases
// mirror the oracle WRN-40-(4,4) trunk: the stem, one 3x3 from each
// resolution group, a strided group transition, and the 1x1 projection
// (which exercises the no-im2col pointwise fast path).
void BM_ConvWrn(benchmark::State& state) {
  const int64_t in_c = state.range(0);
  const int64_t out_c = state.range(1);
  const int64_t hw = state.range(2);
  const int64_t stride = state.range(3);
  const int64_t kernel = state.range(4);
  const int64_t pad = kernel / 2;
  const int64_t batch = 8;
  Rng rng(7);
  Conv2d conv(in_c, out_c, kernel, stride, pad, rng);
  Tensor x = Tensor::Randn({batch, in_c, hw, hw}, rng);
  for (auto _ : state) {
    Tensor y = conv.Forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
  const int64_t out_hw = (hw + 2 * pad - kernel) / stride + 1;
  state.SetItemsProcessed(state.iterations() * batch * out_c * out_hw *
                          out_hw * in_c * kernel * kernel * 2);
}
BENCHMARK(BM_ConvWrn)
    ->Args({3, 16, 32, 1, 3})     // stem
    ->Args({64, 64, 32, 1, 3})    // conv2 group body
    ->Args({64, 128, 32, 2, 3})   // conv3 transition (32x32 in -> 16x16)
    ->Args({128, 128, 16, 1, 3})  // conv3 group body
    ->Args({128, 256, 16, 2, 3})  // conv4 transition (16x16 in -> 8x8)
    ->Args({256, 256, 8, 1, 3})   // conv4 group body
    ->Args({256, 256, 8, 1, 1});  // 1x1 pointwise fast path

// The same WRN-shaped convolutions served int8: per-channel-quantized
// pre-packed weights, dynamic activation quantization, fused dequant
// epilogue. Effective-FLOP rates compare row-for-row against BM_ConvWrn.
void BM_ConvWrnInt8(benchmark::State& state) {
  const int64_t in_c = state.range(0);
  const int64_t out_c = state.range(1);
  const int64_t hw = state.range(2);
  const int64_t stride = state.range(3);
  const int64_t kernel = state.range(4);
  const int64_t pad = kernel / 2;
  const int64_t batch = 8;
  Rng rng(7);
  Conv2d conv(in_c, out_c, kernel, stride, pad, rng);
  conv.PrepareInt8Serving();
  Tensor x = Tensor::Randn({batch, in_c, hw, hw}, rng);
  for (auto _ : state) {
    Tensor y = conv.Forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
  const int64_t out_hw = (hw + 2 * pad - kernel) / stride + 1;
  state.SetItemsProcessed(state.iterations() * batch * out_c * out_hw *
                          out_hw * in_c * kernel * kernel * 2);
  state.SetLabel(GemmS8KernelName());
}
BENCHMARK(BM_ConvWrnInt8)
    ->Args({3, 16, 32, 1, 3})     // stem
    ->Args({64, 64, 32, 1, 3})    // conv2 group body
    ->Args({64, 128, 32, 2, 3})   // conv3 transition (32x32 in -> 16x16)
    ->Args({128, 128, 16, 1, 3})  // conv3 group body
    ->Args({128, 256, 16, 2, 3})  // conv4 transition (16x16 in -> 8x8)
    ->Args({256, 256, 8, 1, 3})   // conv4 group body
    ->Args({256, 256, 8, 1, 1});  // 1x1 pointwise fast path

// Int8 conv with a static calibrated activation scale: the per-forward
// max-abs pass over the input disappears (the fused quantizing im2col
// already removed the separate quantization pass). Rates compare
// row-for-row against BM_ConvWrnInt8. Pinned to the im2col lowering so it
// stays the baseline BM_ConvWrnDirectInt8 is gated against.
void BM_ConvWrnInt8Calibrated(benchmark::State& state) {
  const int64_t in_c = state.range(0);
  const int64_t out_c = state.range(1);
  const int64_t hw = state.range(2);
  const int64_t stride = state.range(3);
  const int64_t kernel = state.range(4);
  const int64_t pad = kernel / 2;
  const int64_t batch = 8;
  Rng rng(7);
  Conv2d conv(in_c, out_c, kernel, stride, pad, rng);
  Tensor x = Tensor::Randn({batch, in_c, hw, hw}, rng);
  conv.BeginActivationCalibration();
  conv.Forward(x, false);
  conv.FinishActivationCalibration();
  conv.PrepareInt8Serving();
  const ConvPath prev = ConvPathChoice();
  SetConvPath(ConvPath::kIm2Col);
  for (auto _ : state) {
    Tensor y = conv.Forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
  SetConvPath(prev);
  const int64_t out_hw = (hw + 2 * pad - kernel) / stride + 1;
  state.SetItemsProcessed(state.iterations() * batch * out_c * out_hw *
                          out_hw * in_c * kernel * kernel * 2);
  state.SetLabel(GemmS8KernelName());
}
BENCHMARK(BM_ConvWrnInt8Calibrated)
    ->Args({3, 16, 32, 1, 3})     // stem (activation-pass heavy)
    ->Args({64, 64, 32, 1, 3})    // conv2 group body
    ->Args({128, 128, 16, 1, 3})  // conv3 group body
    ->Args({256, 256, 8, 1, 3})   // conv4 group body
    ->Args({256, 256, 8, 1, 1});  // 1x1 pointwise fast path

// F32 conv with prepacked op(A) weight panels (pack-once serving) vs the
// per-call PackA of BM_ConvWrn — same rows, bitwise identical outputs.
// Pinned to the im2col lowering so it stays the baseline BM_ConvWrnDirect
// is gated against.
void BM_ConvWrnPrepacked(benchmark::State& state) {
  const int64_t in_c = state.range(0);
  const int64_t out_c = state.range(1);
  const int64_t hw = state.range(2);
  const int64_t stride = state.range(3);
  const int64_t kernel = state.range(4);
  const int64_t pad = kernel / 2;
  const int64_t batch = 8;
  Rng rng(7);
  Conv2d conv(in_c, out_c, kernel, stride, pad, rng);
  conv.Prepack(ServingPrecision::kFloat32);
  Tensor x = Tensor::Randn({batch, in_c, hw, hw}, rng);
  const ConvPath prev = ConvPathChoice();
  SetConvPath(ConvPath::kIm2Col);
  for (auto _ : state) {
    Tensor y = conv.Forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
  SetConvPath(prev);
  const int64_t out_hw = (hw + 2 * pad - kernel) / stride + 1;
  state.SetItemsProcessed(state.iterations() * batch * out_c * out_hw *
                          out_hw * in_c * kernel * kernel * 2);
  state.SetLabel(GemmKernelName());
}
BENCHMARK(BM_ConvWrnPrepacked)
    ->Args({3, 16, 32, 1, 3})     // stem
    ->Args({64, 64, 32, 1, 3})    // conv2 group body
    ->Args({128, 128, 16, 1, 3})  // conv3 group body
    ->Args({256, 256, 8, 1, 3})   // conv4 group body
    ->Args({256, 256, 8, 1, 1});  // 1x1 pointwise fast path

// Im2col-free direct convolution: the GEMM's B pack gathers shifted row
// views of the zero-padded image, so the im2col matrix is never
// materialized. Same prepacked weights and shapes as BM_ConvWrnPrepacked;
// outputs are bitwise identical (test-pinned), only the lowering differs.
void BM_ConvWrnDirect(benchmark::State& state) {
  const int64_t in_c = state.range(0);
  const int64_t out_c = state.range(1);
  const int64_t hw = state.range(2);
  const int64_t stride = state.range(3);
  const int64_t kernel = state.range(4);
  const int64_t pad = kernel / 2;
  const int64_t batch = 8;
  Rng rng(7);
  Conv2d conv(in_c, out_c, kernel, stride, pad, rng);
  conv.Prepack(ServingPrecision::kFloat32);
  Tensor x = Tensor::Randn({batch, in_c, hw, hw}, rng);
  const ConvPath prev = ConvPathChoice();
  SetConvPath(ConvPath::kDirect);
  for (auto _ : state) {
    Tensor y = conv.Forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
  SetConvPath(prev);
  const int64_t out_hw = (hw + 2 * pad - kernel) / stride + 1;
  state.SetItemsProcessed(state.iterations() * batch * out_c * out_hw *
                          out_hw * in_c * kernel * kernel * 2);
  state.SetLabel(GemmKernelName());
}
BENCHMARK(BM_ConvWrnDirect)
    ->Args({3, 16, 32, 1, 3})      // stem
    ->Args({64, 64, 32, 1, 3})     // conv2 group body
    ->Args({128, 128, 16, 1, 3})   // conv3 group body
    ->Args({256, 256, 8, 1, 3});   // conv4 group body

// Int8 direct convolution with calibrated activations: each input byte is
// quantized exactly once into the padded image, then the conv-aware B
// pack gathers it — no im2col matrix, no re-quantization. Baseline:
// BM_ConvWrnInt8Calibrated (same rows, bitwise-identical outputs).
void BM_ConvWrnDirectInt8(benchmark::State& state) {
  const int64_t in_c = state.range(0);
  const int64_t out_c = state.range(1);
  const int64_t hw = state.range(2);
  const int64_t stride = state.range(3);
  const int64_t kernel = state.range(4);
  const int64_t pad = kernel / 2;
  const int64_t batch = 8;
  Rng rng(7);
  Conv2d conv(in_c, out_c, kernel, stride, pad, rng);
  Tensor x = Tensor::Randn({batch, in_c, hw, hw}, rng);
  conv.BeginActivationCalibration();
  conv.Forward(x, false);
  conv.FinishActivationCalibration();
  conv.PrepareInt8Serving();
  const ConvPath prev = ConvPathChoice();
  SetConvPath(ConvPath::kDirect);
  for (auto _ : state) {
    Tensor y = conv.Forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
  SetConvPath(prev);
  const int64_t out_hw = (hw + 2 * pad - kernel) / stride + 1;
  state.SetItemsProcessed(state.iterations() * batch * out_c * out_hw *
                          out_hw * in_c * kernel * kernel * 2);
  state.SetLabel(GemmS8KernelName());
}
BENCHMARK(BM_ConvWrnDirectInt8)
    ->Args({3, 16, 32, 1, 3})      // stem
    ->Args({64, 64, 32, 1, 3})     // conv2 group body
    ->Args({128, 128, 16, 1, 3})   // conv3 group body
    ->Args({256, 256, 8, 1, 3});   // conv4 group body

void BM_Conv2dBackward(benchmark::State& state) {
  const int64_t channels = state.range(0);
  Rng rng(3);
  Conv2d conv(channels, channels, 3, 1, 1, rng);
  Tensor x = Tensor::Randn({32, channels, 8, 8}, rng);
  Tensor y = conv.Forward(x, true);
  for (auto _ : state) {
    conv.ZeroGrad();
    Tensor gx = conv.Backward(y);
    benchmark::DoNotOptimize(gx.data());
  }
}
BENCHMARK(BM_Conv2dBackward)->Arg(8)->Arg(32);

void BM_BatchNormTraining(benchmark::State& state) {
  Rng rng(4);
  BatchNorm2d bn(32);
  Tensor x = Tensor::Randn({64, 32, 8, 8}, rng);
  for (auto _ : state) {
    Tensor y = bn.Forward(x, true);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_BatchNormTraining);

void BM_Softmax(benchmark::State& state) {
  Rng rng(5);
  Tensor logits = Tensor::Randn({256, 100}, rng);
  for (auto _ : state) {
    Tensor p = Softmax2d(logits);
    benchmark::DoNotOptimize(p.data());
  }
}
BENCHMARK(BM_Softmax);

void BM_LinearForward(benchmark::State& state) {
  Rng rng(6);
  Linear lin(512, 100, rng);
  Tensor x = Tensor::Randn({256, 512}, rng);
  for (auto _ : state) {
    Tensor y = lin.Forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_LinearForward);

// Pack-once f32 serving: the persistent op(B) = W^T panels delete the
// per-call transposed PackB from every forward. Compare against
// BM_LinearForward (identical geometry and outputs, bitwise).
void BM_LinearForwardPrepacked(benchmark::State& state) {
  Rng rng(6);
  Linear lin(512, 100, rng);
  lin.Prepack(ServingPrecision::kFloat32);
  Tensor x = Tensor::Randn({256, 512}, rng);
  for (auto _ : state) {
    Tensor y = lin.Forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetLabel(GemmKernelName());
}
BENCHMARK(BM_LinearForwardPrepacked);

// Per-call-pack int8 baseline: every forward re-packs W^T into the tiled
// int8 layout AND runs a max-abs pass for the dynamic activation scale —
// the two costs the ROADMAP flagged as eating the int8 win here.
void BM_LinearForwardInt8(benchmark::State& state) {
  Rng rng(6);
  Linear lin(512, 100, rng);
  lin.PrepareInt8Serving();
  Tensor x = Tensor::Randn({256, 512}, rng);
  for (auto _ : state) {
    Tensor y = lin.Forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetLabel(GemmS8KernelName());
}
BENCHMARK(BM_LinearForwardInt8);

// The pack-once serving configuration: persistent int8 op(B) panels plus
// a static calibrated activation scale. Identical arithmetic per element;
// only the per-call pack and the max-abs pass are gone.
void BM_LinearForwardInt8Prepacked(benchmark::State& state) {
  Rng rng(6);
  Linear lin(512, 100, rng);
  Tensor x = Tensor::Randn({256, 512}, rng);
  lin.BeginActivationCalibration();
  lin.Forward(x, false);
  lin.FinishActivationCalibration();
  lin.PrepareInt8Serving();
  lin.Prepack(ServingPrecision::kInt8);
  for (auto _ : state) {
    Tensor y = lin.Forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetLabel(GemmS8KernelName());
}
BENCHMARK(BM_LinearForwardInt8Prepacked);

}  // namespace
}  // namespace poe

BENCHMARK_MAIN();

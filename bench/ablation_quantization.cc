// Extension ablation: int8 post-training quantization of the pool.
//
// The paper notes KD is orthogonal to quantization (Section 2). This bench
// composes them: every expert (and the library) is quantized to int8,
// shrinking the pool ~4x below Table 4's float32 volumes, and the accuracy
// of consolidated task models is re-measured to show the composition costs
// almost nothing.
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/bench_env.h"
#include "compress/quantize.h"
#include "core/serialization.h"
#include "core/task_model.h"
#include "eval/metrics.h"
#include "eval/table.h"

namespace poe {
namespace bench {
namespace {

void RunDataset(DatasetKind kind) {
  BenchEnv& env = GetBenchEnv(kind);

  // Float32 baseline volumes.
  int64_t float_bytes = ModuleStateBytes(*env.pool->library());
  int64_t int8_bytes = QuantizeModule(*env.pool->library()).nbytes();
  for (int t = 0; t < env.pool->num_experts(); ++t) {
    float_bytes += ModuleStateBytes(*env.pool->expert(t));
    int8_bytes += QuantizeModule(*env.pool->expert(t)).nbytes();
  }

  // Accuracy before/after quantizing the whole pool, on a 3-task query.
  std::vector<int> tasks(env.selected_tasks.begin(),
                         env.selected_tasks.begin() + 3);
  Dataset test = FilterClasses(
      env.data.test, env.data.hierarchy.CompositeClasses(tasks), true);

  TaskModel model = env.pool->Query(tasks).ValueOrDie();
  LogitFn fn = [&](const Tensor& x) { return model.Logits(x); };
  const float acc_float = EvaluateAccuracy(fn, test);

  // Quantize -> dequantize in place (simulating an int8-stored pool).
  std::vector<QuantizedModuleState> snapshots;
  snapshots.push_back(QuantizeModule(*env.pool->library()));
  DequantizeInto(snapshots.back(), *env.pool->library());
  for (int t = 0; t < env.pool->num_experts(); ++t) {
    snapshots.push_back(QuantizeModule(*env.pool->expert(t)));
    DequantizeInto(snapshots.back(), *env.pool->expert(t));
  }
  const float acc_int8 = EvaluateAccuracy(fn, test);

  std::printf("\n=== Quantization ablation [%s] ===\n", env.name.c_str());
  TablePrinter table({"Pool storage", "Bytes", "Acc on 3-task Q (%)"});
  table.AddRow({"float32", TablePrinter::HumanBytes(float_bytes),
                TablePrinter::Pct(acc_float)});
  table.AddRow({"int8", TablePrinter::HumanBytes(int8_bytes),
                TablePrinter::Pct(acc_int8)});
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "shape check: ~4x smaller (%.2fx) with <2%% accuracy change "
      "(|delta|=%.2f%%): %s\n",
      static_cast<double>(float_bytes) / int8_bytes,
      100.0 * std::abs(acc_float - acc_int8),
      (float_bytes > 3 * int8_bytes &&
       std::abs(acc_float - acc_int8) < 0.02f)
          ? "holds"
          : "violated");
}

}  // namespace
}  // namespace bench
}  // namespace poe

int main() {
  poe::bench::RunDataset(poe::bench::DatasetKind::kCifar100Like);
  return 0;
}

// Table 2: model specialization methods, averaged over the 6 selected
// primitive tasks. Paper reference (CIFAR-100): Oracle 85.80, KD 62.50,
// Scratch 74.20, Transfer 78.33, CKD 82.40; specialized models use ~1/65
// FLOPs and ~1/150 params of the oracle. (Tiny-ImageNet): Oracle 79.68,
// KD 57.62, Scratch 66.10, Transfer 74.21, CKD 78.72.
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/bench_env.h"
#include "distill/specialize.h"
#include "eval/metrics.h"
#include "eval/table.h"
#include "models/cost.h"

namespace poe {
namespace bench {
namespace {

struct Stats {
  double mean = 0.0, stddev = 0.0;
};

Stats MeanStd(const std::vector<float>& values) {
  Stats s;
  if (values.empty()) return s;
  double sum = 0.0;
  for (float v : values) sum += v;
  s.mean = sum / values.size();
  double sq = 0.0;
  for (float v : values) sq += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(sq / values.size());
  return s;
}

struct PaperRow {
  double oracle, kd, scratch, transfer, ckd;
};

void RunDataset(DatasetKind kind, const PaperRow& paper) {
  BenchEnv& env = GetBenchEnv(kind);
  const int64_t hw = env.data.config.height;

  WrnConfig expert_cfg = env.library_config;
  expert_cfg.ks = env.expert_ks;

  // KD baseline: ONE generic tiny model over all classes, evaluated
  // task-specifically per task.
  WrnConfig kd_cfg = expert_cfg;
  kd_cfg.num_classes = env.data.hierarchy.num_classes();
  Rng kd_rng(11);
  Wrn kd_student(kd_cfg, kd_rng);
  TrainStandardKd(ModelLogits(*env.oracle), kd_student, env.data.train,
                  env.baseline_options);

  std::vector<float> oracle_acc, kd_acc, scratch_acc, transfer_acc, ckd_acc;
  for (int t : env.selected_tasks) {
    const std::vector<int>& classes = env.data.hierarchy.task_classes(t);
    Dataset test_local = FilterClasses(env.data.test, classes, true);
    Dataset test_global = FilterClasses(env.data.test, classes, false);
    Dataset train_local = FilterClasses(env.data.train, classes, true);

    oracle_acc.push_back(EvaluateTaskSpecificAccuracy(
        ModelLogits(*env.oracle), test_global, classes));
    kd_acc.push_back(EvaluateTaskSpecificAccuracy(
        ModelLogits(kd_student), test_global, classes));

    WrnConfig task_cfg = expert_cfg;
    task_cfg.num_classes = static_cast<int>(classes.size());
    Rng rng(100 + t);
    Wrn scratch(task_cfg, rng);
    TrainScratch(scratch, train_local, env.baseline_options);
    scratch_acc.push_back(
        EvaluateAccuracy(ModelLogits(scratch), test_local));

    auto head = BuildExpertPart(task_cfg,
                                env.library_config.conv3_channels(), rng);
    TrainTransfer(*env.pool->library(), *head, train_local,
                  env.expert_options);
    transfer_acc.push_back(EvaluateAccuracy(
        LibraryHeadLogits(*env.pool->library(), *head), test_local));

    // CKD experts come straight from the preprocessed pool.
    ckd_acc.push_back(EvaluateAccuracy(
        LibraryHeadLogits(*env.pool->library(), *env.pool->expert(t)),
        test_local));
  }

  WrnConfig sized = expert_cfg;
  sized.num_classes =
      static_cast<int>(env.data.hierarchy.task_classes(0).size());
  ModelCost oracle_cost = CostOfWrn(env.oracle_config, hw, hw);
  ModelCost special_cost = CostOfWrn(sized, hw, hw);

  std::printf("\n=== Table 2 [%s] ===\n", env.name.c_str());
  TablePrinter table(
      {"Method", "Type", "Architecture", "Acc(%)", "+-", "paper Acc"});
  auto row = [&](const char* name, const char* type, const std::string& arch,
                 const std::vector<float>& accs, double paper_acc) {
    Stats s = MeanStd(accs);
    table.AddRow({name, type, arch, TablePrinter::Pct(s.mean),
                  TablePrinter::Pct(s.stddev), PaperRef(paper_acc)});
  };
  row("Oracle", "generic", env.oracle_config.ToString(), oracle_acc,
      paper.oracle);
  row("KD", "generic", sized.ToString(), kd_acc, paper.kd);
  row("Scratch", "special", sized.ToString(), scratch_acc, paper.scratch);
  row("Transfer", "special", sized.ToString(), transfer_acc, paper.transfer);
  row("CKD (ours)", "special", sized.ToString(), ckd_acc, paper.ckd);
  std::printf("%s", table.ToString().c_str());

  std::printf(
      "sizes: oracle %s FLOPs / %s params; specialized %s FLOPs (x1/%.0f) "
      "/ %s params (x1/%.0f)\n",
      TablePrinter::HumanCount(oracle_cost.flops).c_str(),
      TablePrinter::HumanCount(oracle_cost.params).c_str(),
      TablePrinter::HumanCount(special_cost.flops).c_str(),
      static_cast<double>(oracle_cost.flops) / special_cost.flops,
      TablePrinter::HumanCount(special_cost.params).c_str(),
      static_cast<double>(oracle_cost.params) / special_cost.params);

  Stats ckd = MeanStd(ckd_acc), transfer = MeanStd(transfer_acc),
        scratch = MeanStd(scratch_acc), kd = MeanStd(kd_acc);
  std::printf(
      "shape check (paper: CKD > Transfer > Scratch > KD): %s\n",
      (ckd.mean > transfer.mean && transfer.mean > scratch.mean &&
       scratch.mean > kd.mean)
          ? "holds"
          : "check ordering above");
}

}  // namespace
}  // namespace bench
}  // namespace poe

int main() {
  using poe::bench::DatasetKind;
  poe::bench::RunDataset(DatasetKind::kCifar100Like,
                         {85.80, 62.50, 74.20, 78.33, 82.40});
  if (poe::bench::BenchScale::FromEnv().paper) {
    poe::bench::RunDataset(DatasetKind::kTinyImageNetLike,
                           {79.68, 57.62, 66.10, 74.21, 78.72});
  } else {
    std::printf(
        "\n[table2] tiny-imagenet-like skipped in fast mode; set "
        "POE_BENCH_SCALE=paper to include it.\n");
  }
  return 0;
}

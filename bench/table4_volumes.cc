// Table 4: storage volumes of the entire PoE framework vs storing the
// oracle or all 2^n pre-built specialized models.
//
// Paper reference: CIFAR-100 oracle 34.3MB, library 177KB, expert 54.3KB,
// all-pool 1.23MB, all-specialized >= 54.30GB. Tiny-ImageNet oracle
// 65.8MB, library 656KB, expert 74.9KB, pool 3.20MB, >= 1198.40TB (34
// tasks). Shape: pool is 20-30x smaller than the oracle; pre-building all
// combinations is astronomically larger.
#include <cstdio>
#include <string>

#include "common/bench_env.h"
#include "core/volume.h"
#include "eval/table.h"

namespace poe {
namespace bench {
namespace {

std::string HumanBytesD(double bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB", "PB", "EB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 6) {
    bytes /= 1024.0;
    ++u;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f%s", bytes, units[u]);
  return buf;
}

void RunDataset(DatasetKind kind, const char* paper_row) {
  BenchEnv& env = GetBenchEnv(kind);
  VolumeReport report = ComputeVolumeReport(*env.oracle, *env.pool);

  std::printf("\n=== Table 4 [%s] (%d primitive tasks) ===\n",
              env.name.c_str(), report.num_primitive_tasks);
  TablePrinter table({"Component", "Volume"});
  table.AddRow({"Oracle", TablePrinter::HumanBytes(report.oracle_bytes)});
  table.AddRow(
      {"PoE: Library", TablePrinter::HumanBytes(report.library_bytes)});
  table.AddRow({"PoE: Expert (avg)",
                TablePrinter::HumanBytes(report.avg_expert_bytes)});
  table.AddRow({"PoE: All (library + experts)",
                TablePrinter::HumanBytes(report.pool_total_bytes)});
  table.AddRow({"All specialized (estimation)",
                ">= " + HumanBytesD(report.all_specialized_estimate_bytes)});
  std::printf("%s", table.ToString().c_str());
  std::printf("paper reference: %s\n", paper_row);
  std::printf(
      "shape checks: oracle/pool ratio %.1fx (paper ~20-30x): %s | "
      "all-specialized >> oracle: %s\n",
      static_cast<double>(report.oracle_bytes) / report.pool_total_bytes,
      report.oracle_bytes > 5 * report.pool_total_bytes ? "holds"
                                                        : "violated",
      report.all_specialized_estimate_bytes > 100.0 * report.oracle_bytes
          ? "holds"
          : "violated");
}

}  // namespace
}  // namespace bench
}  // namespace poe

int main() {
  poe::bench::RunDataset(
      poe::bench::DatasetKind::kCifar100Like,
      "oracle 34.3MB, library 177KB, expert 54.3KB, pool 1.23MB, "
      "all-specialized >= 54.30GB");
  if (poe::bench::BenchScale::FromEnv().paper) {
    poe::bench::RunDataset(
        poe::bench::DatasetKind::kTinyImageNetLike,
        "oracle 65.8MB, library 656KB, expert 74.9KB, pool 3.20MB, "
        "all-specialized >= 1198.40TB (34 tasks)");
  } else {
    std::printf(
        "\n[table4] tiny-imagenet-like skipped in fast mode; set "
        "POE_BENCH_SCALE=paper to include it.\n");
  }
  return 0;
}

#include "bench_env.h"

#include <sys/stat.h>

#include <cstdio>
#include <map>

#include "core/serialization.h"
#include "distill/specialize.h"
#include "eval/metrics.h"
#include "util/env.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace poe {
namespace bench {

const char* DatasetName(DatasetKind kind) {
  return kind == DatasetKind::kCifar100Like ? "cifar100-like"
                                            : "tiny-imagenet-like";
}

BenchScale BenchScale::FromEnv() {
  BenchScale scale;
  scale.combos_per_nq = 1;
  if (GetEnvOr("POE_BENCH_SCALE", "fast") == "paper") {
    scale.paper = true;
    scale.epoch_multiplier = 2;
    scale.combos_per_nq = 3;
  }
  return scale;
}

std::vector<std::vector<int>> BenchEnv::Combos(int n, int count) const {
  // Deterministic sliding windows over the selected tasks.
  std::vector<std::vector<int>> combos;
  const int m = static_cast<int>(selected_tasks.size());
  POE_CHECK_LE(n, m);
  for (int start = 0; start < m && static_cast<int>(combos.size()) < count;
       ++start) {
    std::vector<int> combo;
    for (int i = 0; i < n; ++i) combo.push_back(selected_tasks[(start + i) % m]);
    combos.push_back(std::move(combo));
  }
  return combos;
}

namespace {

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

BenchEnv BuildEnv(DatasetKind kind) {
  const BenchScale scale = BenchScale::FromEnv();
  BenchEnv env;
  env.kind = kind;
  env.name = DatasetName(kind);

  // Dataset.
  SyntheticDataConfig dc = kind == DatasetKind::kCifar100Like
                               ? Cifar100LikeConfig()
                               : TinyImageNetLikeConfig();
  if (scale.paper) {
    dc.train_per_class *= 2;
    dc.test_per_class *= 2;
  }
  env.data = GenerateSyntheticDataset(dc);

  // Architectures (scaled-down WRN family; see DESIGN.md).
  env.oracle_config.depth = 10;
  env.oracle_config.kc = 4.0;
  env.oracle_config.ks = 4.0;
  env.oracle_config.num_classes = dc.num_classes();
  env.oracle_config.base_channels = 8;

  env.library_config = env.oracle_config;
  if (kind == DatasetKind::kCifar100Like) {
    env.library_config.kc = 1.0;
    env.library_config.ks = 1.0;
  } else {
    env.library_config.kc = 2.0;
    env.library_config.ks = 2.0;
  }
  env.expert_ks = 0.25;

  env.selected_tasks = kind == DatasetKind::kCifar100Like
                           ? std::vector<int>{0, 3, 7, 11, 14, 18}
                           : std::vector<int>{0, 4, 9, 13, 17, 21};

  // Small batch => enough SGD steps on small task datasets. Figure 5
  // additionally extends this schedule locally to push the CE baselines
  // into the overconfident regime the paper observes.
  env.baseline_options.epochs = 12 * scale.epoch_multiplier;
  env.baseline_options.batch_size = 32;
  env.baseline_options.lr = 0.05f;
  env.baseline_options.lr_decay_epochs = {9 * scale.epoch_multiplier,
                                          11 * scale.epoch_multiplier};
  env.baseline_options.temperature = 4.0f;

  // Expert heads converge much faster (frozen features, soft targets).
  env.expert_options = env.baseline_options;
  env.expert_options.epochs = 12 * scale.epoch_multiplier;
  env.expert_options.batch_size = 64;
  env.expert_options.lr_decay_epochs = {9 * scale.epoch_multiplier,
                                        11 * scale.epoch_multiplier};

  // Oracle: load from cache or train from scratch.
  ::mkdir("poe_cache", 0755);
  const std::string suffix = scale.paper ? "-paper" : "";
  const std::string oracle_path =
      "poe_cache/" + env.name + suffix + ".oracle";
  const std::string pool_path = "poe_cache/" + env.name + suffix + ".pool";

  if (FileExists(oracle_path)) {
    auto loaded = LoadWrnModel(oracle_path);
    POE_CHECK(loaded.ok()) << loaded.status();
    env.oracle = std::move(loaded).ValueOrDie();
    std::printf("[bench-env] loaded cached oracle from %s\n",
                oracle_path.c_str());
  } else {
    std::printf(
        "[bench-env] training oracle %s on %s (one-time, cached)...\n",
        env.oracle_config.ToString().c_str(), env.name.c_str());
    Rng rng(4242);
    env.oracle = std::make_shared<Wrn>(env.oracle_config, rng);
    TrainOptions oopts;
    oopts.epochs = 16 * scale.epoch_multiplier;
    oopts.batch_size = 64;
    oopts.lr = 0.08f;
    oopts.lr_decay_epochs = {11 * scale.epoch_multiplier,
                             14 * scale.epoch_multiplier};
    Stopwatch sw;
    TrainScratch(*env.oracle, env.data.train, oopts);
    std::printf("[bench-env] oracle trained in %.1fs, test acc %.4f\n",
                sw.ElapsedSeconds(),
                EvaluateAccuracy(ModelLogits(*env.oracle), env.data.test));
    Status s = SaveWrnModel(*env.oracle, env.oracle_config, oracle_path);
    POE_CHECK(s.ok()) << s;
  }

  // Pool: load from cache or run the preprocessing phase.
  if (FileExists(pool_path)) {
    auto loaded = ExpertPool::Load(pool_path);
    POE_CHECK(loaded.ok()) << loaded.status();
    env.pool = std::make_shared<ExpertPool>(std::move(loaded).ValueOrDie());
    std::printf("[bench-env] loaded cached pool from %s\n",
                pool_path.c_str());
  } else {
    std::printf("[bench-env] preprocessing PoE pool (one-time, cached)...\n");
    PoeBuildConfig cfg;
    cfg.library_config = env.library_config;
    cfg.expert_ks = env.expert_ks;
    cfg.library_options = env.baseline_options;
    cfg.library_options.epochs = 14 * scale.epoch_multiplier;
    cfg.library_options.lr_decay_epochs = {10 * scale.epoch_multiplier,
                                           13 * scale.epoch_multiplier};
    cfg.expert_options = env.expert_options;
    Rng rng(31337);
    env.pool = std::make_shared<ExpertPool>(
        ExpertPool::Preprocess(ModelLogits(*env.oracle), env.data, cfg, rng,
                               &env.build_stats));
    std::printf("[bench-env] pool built: library %.1fs, %d experts %.1fs\n",
                env.build_stats.library_seconds, env.pool->num_experts(),
                env.build_stats.experts_seconds);
    Status s = env.pool->Save(pool_path);
    POE_CHECK(s.ok()) << s;
  }
  return env;
}

}  // namespace

BenchEnv& GetBenchEnv(DatasetKind kind) {
  static std::map<DatasetKind, BenchEnv>* envs =
      new std::map<DatasetKind, BenchEnv>();
  auto it = envs->find(kind);
  if (it == envs->end()) {
    it = envs->emplace(kind, BuildEnv(kind)).first;
  }
  return it->second;
}

std::string PaperRef(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", value);
  return buf;
}

}  // namespace bench
}  // namespace poe

// Shared benchmark environment: datasets, trained oracles, and expert
// pools, cached on disk so the bench binaries can share preprocessing.
#ifndef POE_BENCH_COMMON_BENCH_ENV_H_
#define POE_BENCH_COMMON_BENCH_ENV_H_

#include <memory>
#include <string>
#include <vector>

#include "core/expert_pool.h"
#include "data/synthetic.h"
#include "distill/trainer.h"
#include "models/wrn.h"

namespace poe {
namespace bench {

/// Which paper dataset the synthetic benchmark mirrors.
enum class DatasetKind { kCifar100Like, kTinyImageNetLike };

const char* DatasetName(DatasetKind kind);

/// Scale preset: "fast" (default) finishes the whole bench suite on a
/// laptop; "paper" (POE_BENCH_SCALE=paper) trains longer and sweeps more
/// task combinations.
struct BenchScale {
  bool paper = false;
  int epoch_multiplier = 1;
  int combos_per_nq = 2;  ///< composite-task combinations averaged per n(Q)

  static BenchScale FromEnv();
};

/// Everything the experiment harnesses need for one dataset.
struct BenchEnv {
  DatasetKind kind;
  std::string name;
  SyntheticDataset data;
  std::shared_ptr<Wrn> oracle;
  std::shared_ptr<ExpertPool> pool;

  WrnConfig oracle_config;
  WrnConfig library_config;
  double expert_ks = 0.25;

  /// The paper evaluates on 6 randomly chosen primitive tasks; we fix a
  /// deterministic selection.
  std::vector<int> selected_tasks;

  /// Base options used for all trained baselines (mirrors the paper's
  /// shared SGD setup).
  TrainOptions baseline_options;
  /// Options used for expert-head training (CKD / Transfer).
  TrainOptions expert_options;

  /// Preprocessing timings of the pool build (0 when loaded from cache).
  PoeBuildStats build_stats;

  /// Composite tasks of size n drawn from selected_tasks.
  std::vector<std::vector<int>> Combos(int n, int count) const;
};

/// Returns the (cached) environment for a dataset. First call trains the
/// oracle and preprocesses the pool, persisting both under ./poe_cache/;
/// later calls (and other bench binaries) load from disk.
BenchEnv& GetBenchEnv(DatasetKind kind);

/// Paper reference strings used in bench output ("paper: 76.70").
std::string PaperRef(double value);

}  // namespace bench
}  // namespace poe

#endif  // POE_BENCH_COMMON_BENCH_ENV_H_

#include "consolidation.h"

#include <algorithm>
#include <map>
#include <memory>

#include "distill/merge.h"
#include "distill/specialize.h"
#include "eval/metrics.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace poe {
namespace bench {

namespace {

/// Scratch-trained primitive teacher models, built lazily once per env and
/// shared across composite tasks (SD/UHC + Scratch need them).
std::shared_ptr<Wrn> ScratchTeacher(BenchEnv& env, int task) {
  static std::map<std::pair<const BenchEnv*, int>, std::shared_ptr<Wrn>>*
      cache = new std::map<std::pair<const BenchEnv*, int>,
                           std::shared_ptr<Wrn>>();
  auto key = std::make_pair(const_cast<const BenchEnv*>(&env), task);
  auto it = cache->find(key);
  if (it != cache->end()) return it->second;

  WrnConfig cfg = env.library_config;
  cfg.ks = env.expert_ks;
  cfg.num_classes =
      static_cast<int>(env.data.hierarchy.task_classes(task).size());
  Rng rng(9000 + task);
  auto model = std::make_shared<Wrn>(cfg, rng);
  Dataset train = FilterClasses(env.data.train,
                                env.data.hierarchy.task_classes(task), true);
  TrainScratch(*model, train, env.baseline_options);
  (*cache)[key] = model;
  return model;
}

std::vector<TeacherSpec> MakeTeachers(BenchEnv& env,
                                      const std::vector<int>& tasks,
                                      bool ckd_teachers) {
  std::vector<TeacherSpec> specs;
  for (int t : tasks) {
    TeacherSpec spec;
    spec.classes = env.data.hierarchy.task_classes(t);
    if (ckd_teachers) {
      spec.logits =
          LibraryHeadLogits(*env.pool->library(), *env.pool->expert(t));
    } else {
      auto teacher = ScratchTeacher(env, t);
      spec.logits = [teacher](const Tensor& x) {
        return teacher->Forward(x, false);
      };
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

}  // namespace

std::vector<std::string> AllConsolidationMethods() {
  return {"Oracle",      "KD",     "Scratch", "Transfer", "SD+Scratch",
          "UHC+Scratch", "SD+CKD", "UHC+CKD", "CKD",      "PoE"};
}

std::vector<ConsolidationRun> RunConsolidation(
    BenchEnv& env, const std::vector<int>& tasks, bool with_curves,
    const std::vector<std::string>& methods) {
  std::vector<std::string> wanted =
      methods.empty() ? AllConsolidationMethods() : methods;
  auto is_wanted = [&](const std::string& m) {
    return std::find(wanted.begin(), wanted.end(), m) != wanted.end();
  };

  const std::vector<int> classes = env.data.hierarchy.CompositeClasses(tasks);
  const int num_q = static_cast<int>(classes.size());
  const int nq = static_cast<int>(tasks.size());
  Dataset q_train = FilterClasses(env.data.train, classes, true);
  Dataset q_test_local = FilterClasses(env.data.test, classes, true);
  Dataset q_test_global = FilterClasses(env.data.test, classes, false);
  const int64_t hw = env.data.config.height;

  // The student architecture all monolithic specialized baselines use:
  // WRN-l-(kc, 0.25 * n(Q)) with |Q| outputs (Table 3 caption).
  WrnConfig student_cfg = env.library_config;
  student_cfg.ks = env.expert_ks * nq;
  student_cfg.num_classes = num_q;

  TrainOptions opts = env.baseline_options;
  if (with_curves) opts.eval_every = 1;

  std::vector<ConsolidationRun> runs;
  auto add_run = [&](ConsolidationRun run) { runs.push_back(std::move(run)); };

  if (is_wanted("Oracle")) {
    ConsolidationRun run;
    run.method = "Oracle";
    run.accuracy = EvaluateTaskSpecificAccuracy(ModelLogits(*env.oracle),
                                                q_test_global, classes);
    run.cost = CostOfWrn(env.oracle_config, hw, hw);
    add_run(std::move(run));
  }

  if (is_wanted("KD")) {
    // Generic small student distilled on the entire class set, evaluated
    // task-specifically.
    WrnConfig kd_cfg = student_cfg;
    kd_cfg.num_classes = env.data.hierarchy.num_classes();
    Rng rng(100 + nq);
    Wrn student(kd_cfg, rng);
    EvalFn evaluator = [&] {
      return EvaluateTaskSpecificAccuracy(ModelLogits(student),
                                          q_test_global, classes);
    };
    TrainResult r =
        TrainStandardKd(ModelLogits(*env.oracle), student, env.data.train,
                        opts, with_curves ? evaluator : EvalFn(nullptr));
    ConsolidationRun run;
    run.method = "KD";
    run.accuracy = evaluator();
    run.train_seconds = r.seconds;
    run.seconds_to_best = with_curves ? r.seconds_to_best : r.seconds;
    run.cost = CostOfWrn(kd_cfg, hw, hw);
    run.curve = std::move(r.curve);
    add_run(std::move(run));
  }

  if (is_wanted("Scratch")) {
    Rng rng(200 + nq);
    Wrn student(student_cfg, rng);
    EvalFn evaluator = [&] {
      return EvaluateAccuracy(ModelLogits(student), q_test_local);
    };
    TrainResult r = TrainScratch(student, q_train, opts,
                                 with_curves ? evaluator : EvalFn(nullptr));
    ConsolidationRun run;
    run.method = "Scratch";
    run.accuracy = evaluator();
    run.train_seconds = r.seconds;
    run.seconds_to_best = with_curves ? r.seconds_to_best : r.seconds;
    run.cost = CostOfWrn(student_cfg, hw, hw);
    run.curve = std::move(r.curve);
    add_run(std::move(run));
  }

  if (is_wanted("Transfer")) {
    Rng rng(300 + nq);
    auto head = BuildExpertPart(student_cfg,
                                env.library_config.conv3_channels(), rng);
    Sequential& library = *env.pool->library();
    EvalFn evaluator = [&] {
      return EvaluateAccuracy(LibraryHeadLogits(library, *head),
                              q_test_local);
    };
    TrainResult r = TrainTransfer(library, *head, q_train, opts,
                                  with_curves ? evaluator : EvalFn(nullptr));
    ConsolidationRun run;
    run.method = "Transfer";
    run.accuracy = evaluator();
    run.train_seconds = r.seconds;
    run.seconds_to_best = with_curves ? r.seconds_to_best : r.seconds;
    run.cost = CostOfWrn(student_cfg, hw, hw);
    run.curve = std::move(r.curve);
    add_run(std::move(run));
  }

  // SD/UHC merging variants.
  for (const bool ckd_teachers : {false, true}) {
    for (const bool uhc : {false, true}) {
      const std::string name = std::string(uhc ? "UHC" : "SD") +
                               (ckd_teachers ? "+CKD" : "+Scratch");
      if (!is_wanted(name)) continue;
      std::vector<TeacherSpec> teachers =
          MakeTeachers(env, tasks, ckd_teachers);
      Rng rng(400 + nq + (uhc ? 1 : 0) + (ckd_teachers ? 2 : 0));
      Wrn student(student_cfg, rng);
      EvalFn evaluator = [&] {
        return EvaluateAccuracy(ModelLogits(student), q_test_local);
      };
      TrainResult r =
          uhc ? TrainUhcMerge(teachers, student, q_train, opts,
                              with_curves ? evaluator : EvalFn(nullptr))
              : TrainSdMerge(teachers, student, q_train, opts,
                             with_curves ? evaluator : EvalFn(nullptr));
      ConsolidationRun run;
      run.method = name;
      run.accuracy = evaluator();
      run.train_seconds = r.seconds;
      run.seconds_to_best = with_curves ? r.seconds_to_best : r.seconds;
      run.cost = CostOfWrn(student_cfg, hw, hw);
      run.curve = std::move(r.curve);
      add_run(std::move(run));
    }
  }

  if (is_wanted("CKD")) {
    // Composite CKD: one monolithic head distilled from the oracle's
    // sub-logits over Q, on all training data.
    Rng rng(500 + nq);
    auto head = BuildExpertPart(student_cfg,
                                env.library_config.conv3_channels(), rng);
    Sequential& library = *env.pool->library();
    EvalFn evaluator = [&] {
      return EvaluateAccuracy(LibraryHeadLogits(library, *head),
                              q_test_local);
    };
    TrainResult r = TrainCkdExpert(ModelLogits(*env.oracle), library, *head,
                                   env.data.train, classes, opts, CkdOptions{},
                                   with_curves ? evaluator : EvalFn(nullptr));
    ConsolidationRun run;
    run.method = "CKD";
    run.accuracy = evaluator();
    run.train_seconds = r.seconds;
    run.seconds_to_best = with_curves ? r.seconds_to_best : r.seconds;
    run.cost = CostOfWrn(student_cfg, hw, hw);
    run.curve = std::move(r.curve);
    add_run(std::move(run));
  }

  if (is_wanted("PoE")) {
    Stopwatch sw;
    TaskModel model = env.pool->Query(tasks).ValueOrDie();
    const double assemble_seconds = sw.ElapsedSeconds();
    LogitFn fn = [&](const Tensor& x) { return model.Logits(x); };
    ConsolidationRun run;
    run.method = "PoE";
    run.accuracy = EvaluateAccuracy(fn, q_test_local);
    run.train_seconds = assemble_seconds;
    run.seconds_to_best = assemble_seconds;
    run.cost = model.Cost(hw, hw);
    // PoE's "learning curve" is a single instantaneous point (Figure 6).
    CurvePoint point;
    point.epoch = 0;
    point.seconds = assemble_seconds;
    point.accuracy = run.accuracy;
    run.curve.push_back(point);
    add_run(std::move(run));
  }

  return runs;
}

}  // namespace bench
}  // namespace poe

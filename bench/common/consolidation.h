// Shared harness running every Section 5.3 consolidation method on one
// composite task. Used by the Table 3, Figure 6, and Figure 7 benches.
#ifndef POE_BENCH_COMMON_CONSOLIDATION_H_
#define POE_BENCH_COMMON_CONSOLIDATION_H_

#include <string>
#include <vector>

#include "bench_env.h"
#include "distill/trainer.h"
#include "models/cost.h"

namespace poe {
namespace bench {

/// Outcome of one method on one composite task.
struct ConsolidationRun {
  std::string method;
  float accuracy = 0.0f;       ///< task-specific accuracy on the Q test set
  double train_seconds = 0.0;  ///< wall-clock of the service-phase work
  double seconds_to_best = 0.0;
  ModelCost cost;
  std::vector<CurvePoint> curve;  ///< populated when with_curves
};

/// All methods of Table 3, in the paper's row order.
std::vector<std::string> AllConsolidationMethods();

/// Runs `methods` (empty = all) for composite task `tasks` and returns one
/// entry per method. When `with_curves`, training methods evaluate every
/// epoch to produce Figure 6's accuracy-vs-time curves.
std::vector<ConsolidationRun> RunConsolidation(
    BenchEnv& env, const std::vector<int>& tasks, bool with_curves,
    const std::vector<std::string>& methods = {});

}  // namespace bench
}  // namespace poe

#endif  // POE_BENCH_COMMON_CONSOLIDATION_H_

// Table 5: ablation of the CKD loss terms. Pools of experts are trained
// with L_soft only, L_scale only, or both, then consolidated train-free
// for n(Q) = 2..5.
//
// Paper shape (CIFAR-100): L_soft+L_scale > L_soft only > L_scale only at
// every n(Q); e.g. n(Q)=2: 79.03 vs 78.17 vs 71.46.
#include <cstdio>
#include <map>
#include <vector>

#include "common/bench_env.h"
#include "core/task_model.h"
#include "distill/specialize.h"
#include "eval/metrics.h"
#include "eval/table.h"

namespace poe {
namespace bench {
namespace {

struct Variant {
  const char* name;
  CkdOptions options;
};

void RunDataset(DatasetKind kind) {
  BenchEnv& env = GetBenchEnv(kind);
  const BenchScale scale = BenchScale::FromEnv();

  CkdOptions soft_only;
  soft_only.use_scale = false;
  CkdOptions scale_only;
  scale_only.use_soft = false;
  const std::vector<Variant> variants = {
      {"L_soft only", soft_only},
      {"L_scale only", scale_only},
      {"L_soft + L_scale", CkdOptions{}},
  };

  // Train variant experts for the selected tasks (the "both" variant
  // re-trains rather than reusing the pool so all variants share setup).
  Sequential& library = *env.pool->library();
  CkdTables tables = PrecomputeCkdTables(ModelLogits(*env.oracle), library,
                                         env.data.train);
  // variant -> task -> expert head.
  std::map<std::string, std::map<int, std::shared_ptr<Sequential>>> experts;
  for (const Variant& v : variants) {
    for (int t : env.selected_tasks) {
      const std::vector<int>& classes = env.data.hierarchy.task_classes(t);
      WrnConfig cfg = env.library_config;
      cfg.ks = env.expert_ks;
      cfg.num_classes = static_cast<int>(classes.size());
      Rng rng(600 + t);  // same init across variants
      auto head =
          BuildExpertPart(cfg, env.library_config.conv3_channels(), rng);
      TrainCkdExpertWithTables(tables, *head, env.data.train, classes,
                               env.expert_options, v.options);
      experts[v.name][t] = std::move(head);
    }
    std::printf("[table5] trained %zu '%s' experts\n",
                env.selected_tasks.size(), v.name);
    std::fflush(stdout);
  }

  auto consolidate_and_eval = [&](const Variant& v,
                                  const std::vector<int>& tasks) {
    std::vector<TaskModel::Branch> branches;
    for (int t : tasks) {
      TaskModel::Branch b;
      b.head = experts[v.name][t];
      b.classes = env.data.hierarchy.task_classes(t);
      b.config = env.pool->ExpertConfig(t);
      branches.push_back(std::move(b));
    }
    TaskModel model(env.pool->library(), env.library_config,
                    std::move(branches));
    Dataset test = FilterClasses(
        env.data.test, env.data.hierarchy.CompositeClasses(tasks), true);
    LogitFn fn = [&](const Tensor& x) { return model.Logits(x); };
    return EvaluateAccuracy(fn, test);
  };

  std::printf("\n=== Table 5 [%s] ===\n", env.name.c_str());
  TablePrinter table({"Method", "n(Q)=2", "n(Q)=3", "n(Q)=4", "n(Q)=5"});
  std::map<std::string, std::vector<double>> acc;
  for (const Variant& v : variants) {
    std::vector<std::string> cells = {v.name};
    for (int n = 2; n <= 5; ++n) {
      double sum = 0.0;
      int count = 0;
      for (const auto& combo : env.Combos(n, scale.combos_per_nq)) {
        sum += consolidate_and_eval(v, combo);
        ++count;
      }
      acc[v.name].push_back(sum / count);
      cells.push_back(TablePrinter::Pct(sum / count));
    }
    table.AddRow(cells);
  }
  std::printf("%s", table.ToString().c_str());

  auto avg = [&](const char* name) {
    double s = 0;
    for (double v : acc[name]) s += v;
    return s / acc[name].size();
  };
  std::printf(
      "shape check (paper: both > soft-only > scale-only): %.2f > %.2f > "
      "%.2f -> %s\n",
      100 * avg("L_soft + L_scale"), 100 * avg("L_soft only"),
      100 * avg("L_scale only"),
      (avg("L_soft + L_scale") > avg("L_soft only") &&
       avg("L_soft only") > avg("L_scale only"))
          ? "holds"
          : "check ordering");
}

}  // namespace
}  // namespace bench
}  // namespace poe

int main() {
  poe::bench::RunDataset(poe::bench::DatasetKind::kCifar100Like);
  if (poe::bench::BenchScale::FromEnv().paper) {
    poe::bench::RunDataset(poe::bench::DatasetKind::kTinyImageNetLike);
  } else {
    std::printf(
        "\n[table5] tiny-imagenet-like skipped in fast mode; set "
        "POE_BENCH_SCALE=paper to include it.\n");
  }
  return 0;
}

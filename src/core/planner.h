// Class-level query planning (extension feature).
//
// The paper's queries name primitive tasks. Real clients often name
// *classes* ("cat", "pizza"); the planner maps a class-level request onto
// the minimal set of primitive tasks covering it and can restrict the
// assembled model's logits back to exactly the requested classes.
#ifndef POE_CORE_PLANNER_H_
#define POE_CORE_PLANNER_H_

#include <vector>

#include "core/task_model.h"
#include "data/hierarchy.h"
#include "eval/metrics.h"
#include "util/result.h"

namespace poe {

/// The plan for a class-level query.
struct QueryPlan {
  /// Primitive tasks to assemble (sorted, deduplicated).
  std::vector<int> task_ids;
  /// The classes the client asked for (deduplicated, original order).
  std::vector<int> requested_classes;
  /// All classes the assembled model will cover (union of the tasks).
  std::vector<int> covered_classes;

  /// Classes delivered beyond the request (coverage overhead of the
  /// task-granular pool).
  int excess_classes() const {
    return static_cast<int>(covered_classes.size() -
                            requested_classes.size());
  }
};

/// Plans a query for `classes` against `hierarchy`. Fails on empty input
/// or unknown class ids.
Result<QueryPlan> PlanClassQuery(const ClassHierarchy& hierarchy,
                                 const std::vector<int>& classes);

/// Wraps an assembled model so its logit columns are exactly
/// `plan.requested_classes` (columns of non-requested classes are
/// dropped). The TaskModel must cover every requested class and must
/// outlive the returned function.
LogitFn RestrictToRequestedClasses(TaskModel& model, const QueryPlan& plan);

}  // namespace poe

#endif  // POE_CORE_PLANNER_H_

#include "core/query_service.h"

#include <algorithm>
#include <utility>

#include "util/fault.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace poe {

namespace {

// Service precision policy runs BEFORE the pool becomes generation 1, so
// the facade's fingerprints (and its serving-precision invariant) see the
// pool's actual serving form.
ExpertPool PrepareInitialPool(ExpertPool pool, ServingPrecision precision) {
  // kFloat32 leaves the pool at whatever precision it already serves
  // (an already-converted int8 pool stays int8); kInt8 converts now.
  if (precision != ServingPrecision::kFloat32) {
    const Status status = pool.SetServingPrecision(precision);
    POE_CHECK(status.ok()) << status.ToString();
  }
  // Pack once, serve many: the library trunk's persistent GEMM panels are
  // built here; expert branches prepack lazily at store acquisition.
  pool.PrepackForServing();
  return pool;
}

}  // namespace

ModelQueryService::ModelQueryService(ExpertPool pool, size_t cache_capacity,
                                     ServingPrecision precision,
                                     int cache_shards)
    : versioned_(PrepareInitialPool(std::move(pool), precision)),
      cache_(ShardedModelCache::Options{
          cache_capacity, cache_shards,
          // Charge each resident composite its PRIVATE-copy bytes; the
          // expert store's referenced bytes are the deduplicated truth
          // and serve_stats() reports the difference as what expert-level
          // sharing saved.
          [](const std::shared_ptr<TaskModel>& m) {
            return m->StateBytes();
          },
          // Generation guard: a hit whose model predates the last content
          // change of ANY key expert is dropped instead of served. This
          // closes the swap race the post-swap sweep cannot: an assembly
          // pinned to the old generation may insert AFTER the sweep ran.
          [this](const std::vector<int>& key,
                 const std::shared_ptr<TaskModel>& m) {
            return GenerationCoversKey(*versioned_.Current(), key,
                                       m->generation());
          }}) {}

Result<std::shared_ptr<TaskModel>> ModelQueryService::Query(
    const std::vector<int>& task_ids) {
  return QueryInternal(task_ids, Deadline());
}

Result<std::shared_ptr<TaskModel>> ModelQueryService::Query(
    const std::vector<int>& task_ids, const Deadline& deadline) {
  return QueryInternal(task_ids, deadline);
}

Result<std::shared_ptr<TaskModel>> ModelQueryService::Query(
    const PoolRequest& request) {
  POE_RETURN_NOT_OK(ValidatePoolRequest(request));
  const Deadline deadline = request.deadline_ms > 0
                                ? Deadline::AfterMillis(request.deadline_ms)
                                : Deadline();
  auto result = QueryInternal(request.task_ids, deadline);
  if (result.ok() && request.generation != 0 &&
      result.ValueOrDie()->generation() != request.generation) {
    NoteStaleGeneration();
  }
  return result;
}

Result<std::shared_ptr<TaskModel>> ModelQueryService::QueryInternal(
    const std::vector<int>& task_ids, const Deadline& deadline) {
  Stopwatch clock;

  if (deadline.expired()) {
    return Status::DeadlineExceeded("deadline expired before assembly");
  }

  // Canonical cache key: sorted + deduplicated, so {2,1,1} and {1,2} are
  // one entry. Assembly also uses the canonical order, so every spelling
  // of a composite task observes one deterministic model - branch (and
  // logit column) order follows sorted task ids, cached or not; callers
  // map columns through global_classes() as always.
  std::vector<int> key = CanonicalTaskKey(task_ids);

  // Every query is accounted on its shard (hit, led assembly, or
  // coalesced wait); the aggregate counters in stats()/serve_stats() are
  // shard sums, so they reconcile by construction and the hot path pays
  // no extra global atomics.
  auto result = cache_.GetOrAssemble(
      key, [this, &deadline](const std::vector<int>& canonical)
               -> Result<std::shared_ptr<TaskModel>> {
        // The assembly leader pins ONE generation for its whole run: the
        // pool it queries and the generation it stamps cannot disagree,
        // and a concurrent swap cannot free anything under it. Pinning
        // at assembly (not at submission) means a query that merely
        // raced a swap still assembles against the NEW pool.
        const PoolGenerationHandle gen = versioned_.Current();
        int64_t retries = 0;
        // Two retry layers: the pool retries each expert acquire close to
        // the failing store; this outer loop additionally restarts the
        // whole assembly when a fault slipped through (e.g. the service-
        // level fault site below, or a pool whose per-expert budget was
        // exhausted by a burst that has since passed).
        auto assembled = RetryWithBackoff(
            gen->pool.retry_policy(), deadline,
            [&]() -> Result<std::shared_ptr<TaskModel>> {
              POE_RETURN_NOT_OK(PoeFaultHit("service.assemble"));
              auto model = gen->pool.Query(canonical, deadline, &retries);
              if (!model.ok()) return model.status();
              auto shared = std::make_shared<TaskModel>(
                  std::move(model).ValueOrDie());
              shared->set_generation(gen->id);
              return shared;
            },
            &retries);
        assembly_retries_.fetch_add(retries, std::memory_order_relaxed);
        return assembled;
      });

  if (result.ok() && (*result.ValueOrDie()).degraded()) {
    degraded_queries_.fetch_add(1, std::memory_order_relaxed);
  }
  latency_.Record(clock.ElapsedMillis());
  qps_.Record();
  return result;
}

Result<GenerationDiff> ModelQueryService::UpgradePool(ExpertPool next) {
  auto diff_result = versioned_.Swap(std::move(next));
  if (!diff_result.ok()) return diff_result.status();
  // Selective invalidation: sweep exactly the keys the new generation no
  // longer covers (those naming a changed/removed expert, or any key if
  // the trunk changed - last_changed bumps make that judgment local).
  // Unchanged composites stay resident and keep hitting; their old-
  // generation models remain correct because every master they alias was
  // adopted by pointer into the new generation. The sweep count lands in
  // per-shard `invalidated`, summed by serve_stats().
  const PoolGenerationHandle gen = versioned_.Current();
  cache_.EraseMatching([&gen](const std::vector<int>& key,
                              const std::shared_ptr<TaskModel>& m) {
    return !GenerationCoversKey(*gen, key, m->generation());
  });
  return diff_result;
}

QueryStats ModelQueryService::stats() const {
  const PoolGenerationHandle gen = versioned_.Current();
  QueryStats stats;
  for (const CacheShardStats& shard : cache_.ShardStats()) {
    stats.num_queries += shard.lookups();
    stats.cache_hits += shard.hits;
  }
  stats.total_ms = latency_.sum_ms();
  stats.max_ms = latency_.max_ms();
  stats.precision = gen->pool.serving_precision();
  stats.pool_bytes = gen->pool.ServingBytes();
  return stats;
}

ServeStats ModelQueryService::serve_stats() const {
  const PoolGenerationHandle gen = versioned_.Current();
  ServeStats stats;
  stats.shards = cache_.ShardStats();
  for (const CacheShardStats& shard : stats.shards) {
    stats.cache_hits += shard.hits;
    stats.cache_misses += shard.misses;
    stats.coalesced += shard.coalesced;
    stats.resident_model_bytes += shard.resident_bytes;
    stats.cache_keys_invalidated += shard.invalidated;
  }
  stats.queries = stats.cache_hits + stats.cache_misses + stats.coalesced;
  // Store counters are per-generation: a swap starts a fresh store for
  // changed experts (adopted masters keep their bytes, not their
  // counters). serve_stats() reports the CURRENT generation's store.
  const ExpertStoreStats store = gen->pool.expert_store()->stats();
  stats.expert_hits = store.expert_hits;
  stats.expert_misses = store.expert_misses;
  stats.shared_bytes_saved = store.shared_bytes_saved;
  stats.experts_referenced = store.experts_referenced;
  stats.referenced_expert_bytes = store.referenced_bytes;
  stats.experts_poisoned = store.experts_poisoned;
  stats.experts_degraded = store.experts_degraded;
  stats.experts_nonresident = store.experts_nonresident;
  stats.trunk_bytes = HeldStateBytes(*gen->pool.library());
  stats.assembly_retries = assembly_retries_.load(std::memory_order_relaxed);
  stats.degraded_queries = degraded_queries_.load(std::memory_order_relaxed);
  stats.generation = gen->id;
  stats.generations_swapped = versioned_.generations_swapped();
  stats.stale_generation_queries =
      stale_generation_queries_.load(std::memory_order_relaxed);
  stats.p50_ms = latency_.Percentile(0.50);
  stats.p95_ms = latency_.Percentile(0.95);
  stats.p99_ms = latency_.Percentile(0.99);
  stats.max_ms = latency_.max_ms();
  stats.avg_ms = latency_.avg_ms();
  stats.qps = qps_.Rate();
  stats.precision = gen->pool.serving_precision();
  stats.pool_bytes = gen->pool.ServingBytes();
  return stats;
}

}  // namespace poe

#include "core/query_service.h"

#include <algorithm>

#include "util/logging.h"
#include "util/stopwatch.h"

namespace poe {

ModelQueryService::ModelQueryService(ExpertPool pool, size_t cache_capacity,
                                     ServingPrecision precision)
    : pool_(std::move(pool)), cache_capacity_(cache_capacity) {
  // kFloat32 leaves the pool at whatever precision it already serves
  // (an already-converted int8 pool stays int8); kInt8 converts now.
  if (precision != ServingPrecision::kFloat32) {
    const Status status = pool_.SetServingPrecision(precision);
    POE_CHECK(status.ok()) << status.ToString();
  }
  stats_.precision = pool_.serving_precision();
  stats_.pool_bytes = pool_.ServingBytes();
}

Result<std::shared_ptr<TaskModel>> ModelQueryService::Query(
    const std::vector<int>& task_ids) {
  Stopwatch clock;
  CacheKey key = task_ids;
  std::sort(key.begin(), key.end());

  std::lock_guard<std::mutex> lock(mu_);
  stats_.num_queries++;

  if (cache_capacity_ > 0) {
    auto it = index_.find(key);
    if (it != index_.end()) {
      // Move to front (most recently used).
      lru_.splice(lru_.begin(), lru_, it->second);
      stats_.cache_hits++;
      const double ms = clock.ElapsedMillis();
      stats_.total_ms += ms;
      stats_.max_ms = std::max(stats_.max_ms, ms);
      return lru_.front().second;
    }
  }

  auto assembled = pool_.Query(task_ids);
  if (!assembled.ok()) return assembled.status();
  auto model =
      std::make_shared<TaskModel>(std::move(assembled).ValueOrDie());

  if (cache_capacity_ > 0) {
    lru_.emplace_front(key, model);
    index_[key] = lru_.begin();
    if (lru_.size() > cache_capacity_) {
      index_.erase(lru_.back().first);
      lru_.pop_back();
    }
  }
  const double ms = clock.ElapsedMillis();
  stats_.total_ms += ms;
  stats_.max_ms = std::max(stats_.max_ms, ms);
  return model;
}

QueryStats ModelQueryService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t ModelQueryService::cache_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace poe

#include "core/expert_store.h"

#include <string>
#include <utility>

#include "util/fault.h"
#include "util/logging.h"

namespace poe {

int ExpertStore::AddExpert(std::shared_ptr<Sequential> module,
                           std::vector<int> classes, WrnConfig config) {
  POE_CHECK(module != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  Slot slot;
  slot.module = std::move(module);
  slot.classes = std::move(classes);
  slot.config = config;
  slot.bytes = HeldStateBytes(*slot.module);
  slots_.push_back(std::move(slot));
  return static_cast<int>(slots_.size()) - 1;
}

void ExpertStore::AdoptMaster(int task_id,
                              std::shared_ptr<Sequential> module) {
  POE_CHECK(module != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  POE_CHECK_GE(task_id, 0);
  POE_CHECK_LT(task_id, static_cast<int>(slots_.size()));
  Slot& slot = slots_[task_id];
  // Adoption happens strictly pre-publish: a live branch would mean this
  // store already served the module being replaced out from under it.
  POE_CHECK(slot.live.expired());
  slot.module = std::move(module);
  slot.bytes = HeldStateBytes(*slot.module);
}

Status ExpertStore::ReleaseMaster(int task_id) {
  std::lock_guard<std::mutex> lock(mu_);
  POE_CHECK_GE(task_id, 0);
  POE_CHECK_LT(task_id, static_cast<int>(slots_.size()));
  Slot& slot = slots_[task_id];
  if (!slot.live.expired()) {
    return Status::FailedPrecondition(
        "expert " + std::to_string(task_id) +
        " has a live branch; cannot release its master");
  }
  slot.module = nullptr;
  slot.bytes = 0;
  return Status::OK();
}

void ExpertStore::SetRemoteMaterializer(RemoteMaterializer fn) {
  std::lock_guard<std::mutex> lock(mu_);
  remote_ = std::move(fn);
}

bool ExpertStore::resident(int task_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  POE_CHECK_GE(task_id, 0);
  POE_CHECK_LT(task_id, static_cast<int>(slots_.size()));
  return slots_[task_id].module != nullptr;
}

std::unique_ptr<ExpertStore> ExpertStore::Clone() const {
  std::lock_guard<std::mutex> lock(mu_);
  auto clone = std::make_unique<ExpertStore>();
  clone->precision_ = precision_;
  clone->remote_ = remote_;
  clone->slots_.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    Slot fresh;
    fresh.module = slot.module;  // masters shared; weights are never copied
    fresh.classes = slot.classes;
    fresh.config = slot.config;
    fresh.bytes = slot.bytes;
    clone->slots_.push_back(std::move(fresh));
  }
  return clone;
}

Result<ExpertBranchHandle> ExpertStore::Acquire(int task_id) {
  std::shared_ptr<Sequential> module;
  RemoteMaterializer remote;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (task_id < 0 || task_id >= static_cast<int>(slots_.size())) {
      return Status::OutOfRange("unknown primitive task id " +
                                std::to_string(task_id));
    }
    Slot& slot = slots_[task_id];
    if (slot.poisoned) {
      // Fail fast, no work: a poisoned expert stays down until the pool
      // is rebuilt, and composites that avoid it are untouched.
      return Status::Unavailable("expert " + std::to_string(task_id) +
                                 " poisoned: " + slot.poison_reason);
    }
    if (ExpertBranchHandle live = slot.live.lock()) {
      // Some composite already holds this expert: the acquire shares it,
      // saving exactly the bytes a per-composite copy would have added.
      expert_hits_++;
      shared_bytes_saved_ += slot.bytes;
      return live;
    }
    module = slot.module;
    if (module == nullptr) remote = remote_;
  }
  if (module == nullptr) {
    // Non-resident master (cluster residency shedding): fetch it OUTSIDE
    // the mutex — a slow peer must not stall acquires of other experts.
    // Two threads racing the first acquire may both fetch; the install
    // below is first-wins and the loser adopts the winner's module.
    if (!remote) {
      return Status::Unavailable("expert " + std::to_string(task_id) +
                                 " is not resident and no remote "
                                 "materializer is installed");
    }
    auto fetched = remote(task_id);
    if (!fetched.ok()) {
      if (fetched.status().code() == StatusCode::kCorruption) {
        // A corrupt payload is permanent for this slot, exactly like a
        // corrupt local materialization.
        std::lock_guard<std::mutex> lock(mu_);
        Slot& slot = slots_[task_id];
        if (!slot.poisoned) {
          slot.poisoned = true;
          slot.poison_reason = fetched.status().message();
        }
      }
      return fetched.status();
    }
    std::lock_guard<std::mutex> lock(mu_);
    Slot& slot = slots_[task_id];
    if (slot.module == nullptr) {
      slot.module = std::move(fetched).ValueOrDie();
      slot.bytes = HeldStateBytes(*slot.module);
    }
    module = slot.module;
  }
  {
    // Materialization faults. Transient codes bubble up for the pool's
    // retry loop; corruption permanently poisons this slot (and only it).
    const Status fault = PoeFaultHit("store.materialize");
    if (!fault.ok()) {
      if (fault.code() == StatusCode::kCorruption) {
        std::lock_guard<std::mutex> lock(mu_);
        Slot& slot = slots_[task_id];
        if (!slot.poisoned) {
          slot.poisoned = true;
          slot.poison_reason = fault.message();
        }
      }
      return fault;
    }
  }
  // Prepack the module's ACTUAL serving form. Under an int8 store a
  // degraded (conversion-failed) expert still serves f32, and
  // Prepack(kInt8) on an f32 module is an ordering bug by contract.
  const ServingPrecision actual = module->Int8WeightBytes() > 0
                                      ? ServingPrecision::kInt8
                                      : ServingPrecision::kFloat32;
  // Pack once, run many: materialization is the single natural point
  // where the expert's persistent GEMM weight panels come up, so every
  // composite, query, and batch referencing this expert shares one packed
  // form by pointer identity. The pack is O(weight bytes), so it runs
  // OUTSIDE the store mutex — acquires of other experts never stall
  // behind it — and BEFORE the branch is published, so slot.bytes is
  // post-pack whenever slot.live is set and every hit credits the packed
  // form (the reconciliation invariant). Prepack is idempotent and
  // mutex-guarded per layer, so two threads racing the first acquire both
  // pack once; the re-check below turns the loser into a hit.
  module->Prepack(actual);
  const int64_t bytes = HeldStateBytes(*module);
  std::lock_guard<std::mutex> lock(mu_);
  Slot& slot = slots_[task_id];
  if (ExpertBranchHandle live = slot.live.lock()) {
    expert_hits_++;
    shared_bytes_saved_ += slot.bytes;
    return live;
  }
  ExpertBranch b;
  b.head = slot.module;
  b.classes = slot.classes;
  b.config = slot.config;
  b.task_id = task_id;
  b.precision = actual;
  auto branch = std::make_shared<const ExpertBranch>(std::move(b));
  slot.bytes = bytes;
  slot.live = branch;
  expert_misses_++;
  return ExpertBranchHandle(std::move(branch));
}

void ExpertStore::PrepareInt8Serving() {
  std::lock_guard<std::mutex> lock(mu_);
  precision_ = ServingPrecision::kInt8;
  for (Slot& slot : slots_) {
    // Non-resident slots have nothing to convert; a later fetch ships the
    // owner's serving form (its payload carries its own precision byte).
    if (slot.module == nullptr) continue;
    // Degraded mode: a failed conversion keeps this expert on f32 instead
    // of failing the whole pool conversion. Its branches will report f32
    // and stats().experts_degraded counts it.
    if (PoeFaultHit("store.int8.convert").ok()) {
      slot.module->PrepareInt8Serving();
    }
    slot.bytes = HeldStateBytes(*slot.module);
  }
}

ServingPrecision ExpertStore::serving_precision() const {
  std::lock_guard<std::mutex> lock(mu_);
  return precision_;
}

int ExpertStore::num_experts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(slots_.size());
}

std::shared_ptr<Sequential> ExpertStore::module(int task_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  POE_CHECK_GE(task_id, 0);
  POE_CHECK_LT(task_id, static_cast<int>(slots_.size()));
  return slots_[task_id].module;
}

std::vector<int> ExpertStore::classes(int task_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  POE_CHECK_GE(task_id, 0);
  POE_CHECK_LT(task_id, static_cast<int>(slots_.size()));
  return slots_[task_id].classes;
}

int64_t ExpertStore::MasterBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t bytes = 0;
  for (const Slot& slot : slots_) {
    if (slot.module != nullptr) bytes += HeldStateBytes(*slot.module);
  }
  return bytes;
}

int64_t ExpertStore::ReferencedBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t bytes = 0;
  for (const Slot& slot : slots_) {
    if (!slot.live.expired()) bytes += slot.bytes;
  }
  return bytes;
}

ExpertStoreStats ExpertStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ExpertStoreStats stats;
  stats.expert_hits = expert_hits_;
  stats.expert_misses = expert_misses_;
  stats.shared_bytes_saved = shared_bytes_saved_;
  for (const Slot& slot : slots_) {
    if (!slot.live.expired()) {
      stats.experts_referenced++;
      stats.referenced_bytes += slot.bytes;
    }
    if (slot.poisoned) stats.experts_poisoned++;
    if (slot.module == nullptr) {
      stats.experts_nonresident++;
      continue;
    }
    // Derived from the module, not a cached flag: pool copies share
    // masters, so a conversion done through one store heals the others.
    if (precision_ == ServingPrecision::kInt8 &&
        slot.module->Int8WeightBytes() == 0) {
      stats.experts_degraded++;
    }
  }
  return stats;
}

}  // namespace poe

#include "core/planner.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "tensor/ops.h"

namespace poe {

Result<QueryPlan> PlanClassQuery(const ClassHierarchy& hierarchy,
                                 const std::vector<int>& classes) {
  if (classes.empty()) {
    return Status::InvalidArgument("class query must be non-empty");
  }
  QueryPlan plan;
  std::unordered_set<int> seen_classes;
  std::set<int> tasks;
  for (int c : classes) {
    if (c < 0 || c >= hierarchy.num_classes()) {
      return Status::OutOfRange("unknown class id " + std::to_string(c));
    }
    if (seen_classes.insert(c).second) {
      plan.requested_classes.push_back(c);
      tasks.insert(hierarchy.task_of_class(c));
    }
  }
  plan.task_ids.assign(tasks.begin(), tasks.end());
  plan.covered_classes = hierarchy.CompositeClasses(plan.task_ids);
  return plan;
}

LogitFn RestrictToRequestedClasses(TaskModel& model, const QueryPlan& plan) {
  // Column index of each requested class within the model's logit order.
  std::unordered_map<int, int> column_of;
  const std::vector<int>& covered = model.global_classes();
  for (size_t i = 0; i < covered.size(); ++i) {
    column_of.emplace(covered[i], static_cast<int>(i));
  }
  std::vector<int> columns;
  columns.reserve(plan.requested_classes.size());
  for (int c : plan.requested_classes) {
    auto it = column_of.find(c);
    POE_CHECK(it != column_of.end())
        << "model does not cover requested class " << c;
    columns.push_back(it->second);
  }
  return [&model, columns](const Tensor& images) {
    return GatherColumns(model.Logits(images), columns);
  };
}

}  // namespace poe

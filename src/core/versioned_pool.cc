#include "core/versioned_pool.h"

#include <algorithm>
#include <utility>

#include "core/serialization.h"
#include "util/crc32c.h"
#include "util/logging.h"

namespace poe {

namespace {

std::string JoinIds(const std::vector<int>& ids) {
  std::string out;
  for (int t : ids) out += (out.empty() ? "" : ",") + std::to_string(t);
  return out;
}

}  // namespace

std::string GenerationDiff::ToString() const {
  std::string out = "generation " + std::to_string(from) + " -> " +
                    std::to_string(to) + ": ";
  if (noop()) {
    out += "no content changes (" + std::to_string(unchanged) + " experts)";
    return out;
  }
  out += std::to_string(changed.size()) + " changed";
  if (!changed.empty()) out += " [" + JoinIds(changed) + "]";
  out += ", " + std::to_string(added.size()) + " added";
  if (!added.empty()) out += " [" + JoinIds(added) + "]";
  out += ", " + std::to_string(removed.size()) + " removed";
  if (!removed.empty()) out += " [" + JoinIds(removed) + "]";
  out += ", " + std::to_string(unchanged) + " unchanged, library ";
  out += library_changed ? "CHANGED" : "unchanged";
  return out;
}

bool GenerationCoversKey(const PoolGeneration& gen,
                         const std::vector<int>& key,
                         uint64_t model_generation) {
  if (model_generation == 0) return false;
  for (int t : key) {
    if (t < 0 || t >= static_cast<int>(gen.last_changed.size())) {
      return false;  // expert removed (or never existed) in `gen`
    }
    if (gen.last_changed[t] > model_generation) return false;
  }
  return true;
}

Result<VersionedPool::Fingerprint> VersionedPool::FingerprintPool(
    const ExpertPool& pool) {
  Fingerprint fp;
  auto library_crc = ModuleContentCrc(*pool.library());
  if (!library_crc.ok()) return library_crc.status();
  fp.library_crc = library_crc.ValueOrDie();
  fp.expert_crcs.reserve(pool.num_experts());
  for (int t = 0; t < pool.num_experts(); ++t) {
    auto crc = ModuleContentCrc(*pool.expert(t));
    if (!crc.ok()) return crc.status();
    // Fold the class list in: an expert with identical weights but a
    // different class mapping predicts differently and must register as
    // changed.
    uint32_t combined = crc.ValueOrDie();
    for (int c : pool.hierarchy().task_classes(t)) {
      const int32_t c32 = static_cast<int32_t>(c);
      combined = Crc32cExtend(combined, &c32, sizeof(c32));
    }
    fp.expert_crcs.push_back(combined);
  }
  return fp;
}

VersionedPool::VersionedPool(ExpertPool initial) {
  auto fp_result = FingerprintPool(initial);
  POE_CHECK(fp_result.ok()) << "initial pool does not fingerprint: "
                            << fp_result.status().ToString();
  Fingerprint fp = std::move(fp_result).ValueOrDie();
  auto gen = std::make_shared<PoolGeneration>(1, std::move(initial));
  gen->library_crc = fp.library_crc;
  gen->expert_crcs = std::move(fp.expert_crcs);
  gen->last_changed.assign(gen->expert_crcs.size(), 1);
  current_ = std::move(gen);
}

PoolGenerationHandle VersionedPool::Current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

uint64_t VersionedPool::generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_->id;
}

Result<GenerationDiff> VersionedPool::Swap(ExpertPool next) {
  // swap_mu_ serializes whole swaps; mu_ is only ever held for the brief
  // current_ reads/writes, so the heavy work below (int8 conversion,
  // fingerprinting, prepack) never stalls Current() — serving continues
  // on the old generation until the one pointer publish at the end.
  std::lock_guard<std::mutex> swap_lock(swap_mu_);
  PoolGenerationHandle old_handle;
  {
    std::lock_guard<std::mutex> lock(mu_);
    old_handle = current_;
  }
  const PoolGeneration& old = *old_handle;

  // Precision reconciliation BEFORE fingerprinting: the diff must compare
  // the serving forms, and int8 conversion is deterministic (same weights
  // + same calibration scales => same packed bytes), so a faithful reload
  // of the current pool still diffs as a no-op after conversion.
  const ServingPrecision serving = old.pool.serving_precision();
  if (serving == ServingPrecision::kInt8 &&
      next.serving_precision() != ServingPrecision::kInt8) {
    POE_RETURN_NOT_OK(next.SetServingPrecision(ServingPrecision::kInt8));
  } else if (serving == ServingPrecision::kFloat32 &&
             next.serving_precision() == ServingPrecision::kInt8) {
    return Status::FailedPrecondition(
        "cannot swap an int8 pool into an f32-serving facade (int8 "
        "conversion is irreversible; restart to change precision)");
  }

  auto fp_result = FingerprintPool(next);
  if (!fp_result.ok()) return fp_result.status();
  Fingerprint fp = std::move(fp_result).ValueOrDie();

  GenerationDiff diff;
  diff.from = old.id;
  diff.to = old.id + 1;
  diff.library_changed = fp.library_crc != old.library_crc;
  const int old_n = static_cast<int>(old.expert_crcs.size());
  const int new_n = static_cast<int>(fp.expert_crcs.size());
  std::vector<int> unchanged_ids;
  for (int t = 0; t < std::min(old_n, new_n); ++t) {
    if (fp.expert_crcs[t] == old.expert_crcs[t]) {
      unchanged_ids.push_back(t);
      diff.unchanged++;
    } else {
      diff.changed.push_back(t);
    }
  }
  for (int t = old_n; t < new_n; ++t) diff.added.push_back(t);
  for (int t = new_n; t < old_n; ++t) diff.removed.push_back(t);

  // Cross-generation sharing: unchanged masters (and an unchanged trunk)
  // are adopted by pointer, then the new pool prepacks — a no-op for
  // adopted modules whose panels already exist, real work only for what
  // actually changed. All of this happens BEFORE publish, so no query
  // ever sees a half-adopted generation.
  next.AdoptUnchangedFrom(old.pool, unchanged_ids, !diff.library_changed);
  next.set_retry_policy(old.pool.retry_policy());
  next.PrepackForServing();

  auto gen = std::make_shared<PoolGeneration>(diff.to, std::move(next));
  gen->library_crc = fp.library_crc;
  gen->expert_crcs = std::move(fp.expert_crcs);
  gen->last_changed.resize(new_n);
  for (int t = 0; t < new_n; ++t) {
    const bool carried = t < old_n &&
                         gen->expert_crcs[t] == old.expert_crcs[t];
    gen->last_changed[t] = carried ? old.last_changed[t] : gen->id;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    current_ = std::move(gen);
  }
  swapped_.fetch_add(1, std::memory_order_relaxed);
  return diff;
}

}  // namespace poe

#include "core/volume.h"

#include <cmath>

#include "core/serialization.h"

namespace poe {

VolumeReport ComputeVolumeReport(Module& oracle, const ExpertPool& pool) {
  VolumeReport report;
  report.num_primitive_tasks = pool.num_experts();
  report.oracle_bytes = ModuleStateBytes(oracle);
  report.library_bytes = ModuleStateBytes(*pool.library());
  for (int t = 0; t < pool.num_experts(); ++t) {
    report.experts_total_bytes += ModuleStateBytes(*pool.expert(t));
  }
  report.avg_expert_bytes =
      pool.num_experts() > 0
          ? report.experts_total_bytes / pool.num_experts()
          : 0;
  report.pool_total_bytes = report.library_bytes + report.experts_total_bytes;
  // One pre-trained specialized model per composite task: at least one
  // expert-sized model for each of the 2^n non-trivial combinations.
  report.all_specialized_estimate_bytes =
      std::ldexp(static_cast<double>(report.avg_expert_bytes),
                 report.num_primitive_tasks);
  return report;
}

}  // namespace poe

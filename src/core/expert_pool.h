// ExpertPool: the preprocessing-phase product of PoE and the query engine
// of the service phase.
#ifndef POE_CORE_EXPERT_POOL_H_
#define POE_CORE_EXPERT_POOL_H_

#include <memory>
#include <string>
#include <vector>

#include "core/expert_store.h"
#include "core/task_model.h"
#include "data/hierarchy.h"
#include "data/synthetic.h"
#include "distill/specialize.h"
#include "distill/trainer.h"
#include "eval/metrics.h"
#include "models/wrn.h"
#include "util/result.h"
#include "util/retry.h"

namespace poe {

/// Preprocessing-phase configuration.
struct PoeBuildConfig {
  /// Architecture of the library *student* model distilled from oracle
  /// with standard KD; num_classes must equal the oracle's class count.
  WrnConfig library_config;
  /// conv4 widening factor of each expert (paper: 0.25).
  double expert_ks = 0.25;
  /// Standard-KD options for the library student.
  TrainOptions library_options;
  /// CKD options for expert extraction.
  TrainOptions expert_options;
  CkdOptions ckd;
  bool verbose = false;
};

/// Timing/diagnostic record of a preprocessing run.
struct PoeBuildStats {
  double library_seconds = 0.0;
  double experts_seconds = 0.0;
  std::vector<double> per_expert_seconds;
};

/// A pool of composable experts plus the shared library component
/// (Figure 1a). Built once from an oracle; then Query() synthesizes a
/// task-specific model for any composite task in realtime with no
/// training (Figure 1b).
class ExpertPool {
 public:
  /// Runs the full preprocessing phase:
  ///  1. library extraction - standard KD from `oracle` into a small
  ///     generic student, keeping conv1..conv3 as the library;
  ///  2. expert extraction - per primitive task, CKD of the oracle's
  ///     sub-logits into a tiny conv4 head on the frozen library.
  static ExpertPool Preprocess(const LogitFn& oracle,
                               const SyntheticDataset& data,
                               const PoeBuildConfig& config, Rng& rng,
                               PoeBuildStats* stats = nullptr);

  /// Assembles the pieces directly (used by Load and tests).
  ExpertPool(WrnConfig library_config, double expert_ks,
             ClassHierarchy hierarchy,
             std::shared_ptr<Sequential> library,
             std::vector<std::shared_ptr<Sequential>> experts);

  /// Copies share the master modules (weights are never duplicated) but
  /// get their OWN expert store: per-copy sharing accounting, and an
  /// AddExpert on one copy cannot desync another copy's hierarchy from
  /// its expert count. Moves keep the store.
  ExpertPool(const ExpertPool& other);
  ExpertPool& operator=(const ExpertPool& other);
  ExpertPool(ExpertPool&&) = default;
  ExpertPool& operator=(ExpertPool&&) = default;

  /// Service phase: builds M(Q) for composite task Q = given primitive
  /// task ids. Train-free; the returned model aliases pool weights (and
  /// inherits the pool's serving precision). Fails on empty, duplicate,
  /// or out-of-range ids.
  Result<TaskModel> Query(const std::vector<int>& task_ids) const;

  /// Deadline- and fault-aware form. Transient branch-acquisition failures
  /// (kIoError/kUnavailable/kResourceExhausted) are retried per expert
  /// with exponential backoff under `retry_policy()`; permanent errors
  /// (kCorruption from a poisoned expert, bad ids) fail immediately. The
  /// deadline bounds the whole assembly — each expert's retry loop gets
  /// the remaining budget, and an expired deadline yields
  /// kDeadlineExceeded without acquiring further branches. `retries`,
  /// when non-null, is incremented once per backoff taken (feeds
  /// ServeStats::assembly_retries).
  Result<TaskModel> Query(const std::vector<int>& task_ids,
                          const Deadline& deadline,
                          int64_t* retries = nullptr) const;

  /// Switches the pool (library + every expert) to the given serving
  /// precision. kInt8 converts Conv2d/Linear weights to packed int8 with
  /// per-output-channel scales and releases their f32 storage, so every
  /// subsequently assembled model serves dequant-free; the conversion is
  /// irreversible (going back to kFloat32 fails) and the pool can no
  /// longer be trained or extended. Save still works: int8 pools persist
  /// their quantized form directly.
  Status SetServingPrecision(ServingPrecision precision);
  ServingPrecision serving_precision() const { return precision_; }

  /// Static activation calibration: runs `samples` (an [N, C, H, W] batch
  /// drawn from the serving distribution) through the library and every
  /// expert head with activation observation on, then freezes the
  /// observed per-layer max-abs ranges into static activation scales.
  /// A subsequent int8 conversion then serves without the per-forward
  /// max-abs pass, and Save persists the scales so loaded int8 pools come
  /// up calibrated. Must run while the pool still serves f32.
  Status CalibrateActivations(const Tensor& samples);

  /// Pack-once serving, library half: materializes the library trunk's
  /// persistent GEMM weight panels for the current precision (experts are
  /// prepacked lazily by the store at branch acquisition). Idempotent;
  /// called by the serving layer (ModelQueryService) at construction.
  void PrepackForServing() const;

  /// Bytes of weight state the pool holds: f32 parameters/buffers plus
  /// packed int8 weights (the memory-footprint half of the paper's
  /// realtime-serving story; reported by QueryStats).
  int64_t ServingBytes() const;

  const ClassHierarchy& hierarchy() const { return hierarchy_; }
  const WrnConfig& library_config() const { return library_config_; }
  double expert_ks() const { return expert_ks_; }
  int num_experts() const { return store_->num_experts(); }
  const std::shared_ptr<Sequential>& library() const { return library_; }
  /// Master module of expert `task_id` (owned by the expert store).
  std::shared_ptr<Sequential> expert(int task_id) const;

  /// The expert-granularity sharing layer: Query() acquires branch handles
  /// from here, so overlapping composites of THIS pool (and models it
  /// already handed out) alias the same ExpertBranch objects. Each pool
  /// copy owns its own store — the masters underneath are shared.
  const std::shared_ptr<ExpertStore>& expert_store() const { return store_; }

  /// Architecture of expert `task_id` (WRN conv4 group + head).
  WrnConfig ExpertConfig(int task_id) const;

  /// Extends the pool with a new primitive task extracted from the oracle
  /// (extension feature: hot-adding knowledge without touching existing
  /// experts). `new_classes` are global class ids not yet covered.
  Status AddExpert(const LogitFn& oracle, const Dataset& full_train,
                   const std::vector<int>& new_classes,
                   const TrainOptions& options, const CkdOptions& ckd,
                   Rng& rng);

  /// Persistence (versioned binary format, checksummed).
  Status Save(const std::string& path) const;
  static Result<ExpertPool> Load(const std::string& path);

  /// Adopts master modules from `prev` for the listed experts (and the
  /// library trunk when `adopt_library`). VersionedPool calls this before
  /// publishing a new generation, for exactly the experts whose content
  /// CRC did NOT change across the upgrade: unchanged weights are then
  /// shared by pointer across generations (no byte duplication, prepacked
  /// panels stay warm) and the trunk keeps its pointer identity, which is
  /// what lets the serving layer's trunk fusion keep batching across a
  /// swap. Must run before this pool serves anything.
  void AdoptUnchangedFrom(const ExpertPool& prev,
                          const std::vector<int>& unchanged_experts,
                          bool adopt_library);

  /// Retry bounds for transient branch-acquisition failures inside the
  /// deadline-aware Query. Tests tighten this to make fault schedules
  /// deterministic; copies inherit it.
  void set_retry_policy(const RetryPolicy& policy) { retry_policy_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_policy_; }

 private:
  WrnConfig library_config_;
  double expert_ks_ = 0.25;
  ClassHierarchy hierarchy_;
  std::shared_ptr<Sequential> library_;
  std::shared_ptr<ExpertStore> store_;
  ServingPrecision precision_ = ServingPrecision::kFloat32;
  RetryPolicy retry_policy_;
};

}  // namespace poe

#endif  // POE_CORE_EXPERT_POOL_H_

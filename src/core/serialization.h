// Versioned, checksummed binary persistence for modules and expert pools.
#ifndef POE_CORE_SERIALIZATION_H_
#define POE_CORE_SERIALIZATION_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "models/wrn.h"
#include "nn/module.h"
#include "util/result.h"
#include "util/status.h"

namespace poe {

class ExpertPool;

/// Writes all parameter values and buffers (BN running stats) of `module`
/// in traversal order, each prefixed by its shape.
Status WriteModuleState(std::ostream& out, Module& module);

/// Reads state written by WriteModuleState into an identically-structured
/// module; fails with Corruption on any shape mismatch.
Status ReadModuleState(std::istream& in, Module& module);

/// Serialized byte size of a module's state (without pool headers).
int64_t ModuleStateBytes(Module& module);

/// CRC32C over the module's v3 section payload (precision byte + state) —
/// the same bytes SaveExpertPool checksums per section, computed without
/// touching disk. Two modules with equal content CRCs serialize (and thus
/// serve) identically; a precision change, weight change, or activation-
/// scale change all change the CRC. VersionedPool diffs generations with
/// this to decide which experts actually changed across an upgrade.
Result<uint32_t> ModuleContentCrc(Module& module);

/// The v3 expert-section payload of `module` (per-module precision byte +
/// serialized state + activation scales) as a byte string — exactly the
/// bytes SaveExpertPool stores per expert section. The cluster layer ships
/// this over its fetch-expert RPC: a fetched expert is bit-identical to
/// one loaded from the same pool file.
Result<std::string> SerializeModulePayload(Module& module);

/// Restores a SerializeModulePayload byte string into an identically-
/// structured module skeleton (see BuildExpertPart for expert heads).
/// kCorruption on shape mismatch, truncation, or trailing bytes.
Status DeserializeModulePayload(const std::string& payload, Module& module);

/// Pool file format, version 3 (little-endian):
///
///   magic "POEPOOL1" | version u32 | section_count u32 | sections...
///   section: tag u32 | payload_len u64 | crc32c(payload) u32 | payload
///
/// Data sections, in order: one meta section (library WrnConfig,
/// expert_ks, hierarchy, pool precision tag), one library section, one
/// expert section per task (task-id order). Module sections lead with a
/// per-module precision byte, so a partially degraded int8 pool (some
/// expert kept f32 after a failed conversion) saves faithfully; on load
/// the pool-level precision is re-applied, which retries the conversion.
/// The final section is a commit footer sealing the data-section count
/// and a CRC over all data-section CRCs — a torn write that loses the
/// tail is detected even when every surviving section checks out.
///
/// SaveExpertPool is crash-safe: the blob is written to `path + ".tmp"`,
/// fsync'd, and renamed over `path` (then the parent directory is
/// fsync'd), so readers see either the old complete file or the new one.
///
/// LoadExpertPool verifies every CRC and the footer before decoding and
/// returns kCorruption on any mismatch, truncation, or trailing garbage;
/// kNotFound when the file is missing. Version 1 (f32-only) and version 2
/// (whole-payload FNV checksum) files still load.
Status SaveExpertPool(const ExpertPool& pool, const std::string& path);
Result<ExpertPool> LoadExpertPool(const std::string& path);

/// Writes `pool` in a legacy format (version 1 or 2) exactly as the old
/// writers did — non-atomic, whole-payload checksum. Compatibility-test
/// aid; version 1 cannot represent int8 pools (InvalidArgument).
Status SaveExpertPoolLegacy(const ExpertPool& pool, const std::string& path,
                            uint32_t version);

/// One section's health as seen by FsckExpertPool.
struct PoolSectionReport {
  std::string name;   ///< "meta", "library", "expert[7]", "footer", ...
  uint32_t tag = 0;
  int64_t bytes = 0;  ///< payload bytes
  bool crc_ok = false;
  std::string detail;  ///< empty when healthy
};

/// Structural + checksum verification of a pool file, without rebuilding
/// any modules. `ok` is the verdict; `error` names the first fatal
/// problem (bad magic, truncation, footer mismatch, ...).
struct PoolFsckReport {
  uint32_t version = 0;
  bool ok = false;
  std::vector<PoolSectionReport> sections;
  std::string error;
};

/// Verifies `path` section by section. Returns kNotFound if the file is
/// missing; otherwise always returns a report (corruption is reported in
/// it, not as an error Status). Legacy files report a single "payload"
/// pseudo-section covered by their whole-file checksum.
Result<PoolFsckReport> FsckExpertPool(const std::string& path);

/// Whole-WRN persistence (config header + state), used to cache trained
/// oracles between bench runs.
Status SaveWrnModel(Module& wrn, const WrnConfig& config,
                    const std::string& path);
Result<std::shared_ptr<Wrn>> LoadWrnModel(const std::string& path);

}  // namespace poe

#endif  // POE_CORE_SERIALIZATION_H_

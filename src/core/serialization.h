// Versioned, checksummed binary persistence for modules and expert pools.
#ifndef POE_CORE_SERIALIZATION_H_
#define POE_CORE_SERIALIZATION_H_

#include <iosfwd>
#include <memory>
#include <string>

#include "models/wrn.h"
#include "nn/module.h"
#include "util/result.h"
#include "util/status.h"

namespace poe {

class ExpertPool;

/// Writes all parameter values and buffers (BN running stats) of `module`
/// in traversal order, each prefixed by its shape.
Status WriteModuleState(std::ostream& out, Module& module);

/// Reads state written by WriteModuleState into an identically-structured
/// module; fails with Corruption on any shape mismatch.
Status ReadModuleState(std::istream& in, Module& module);

/// Serialized byte size of a module's state (without pool headers).
int64_t ModuleStateBytes(Module& module);

/// Pool file format (little-endian):
///   magic "POEPOOL1" | version u32 | FNV-1a checksum u64 of the payload |
///   payload: library WrnConfig, expert_ks, hierarchy,
///            [v2+] precision tag u8 (0 = f32, 1 = int8),
///            library state, per-expert state.
/// f32 module state is the full parameter/buffer tensor dump followed by
/// the quantizable layers' static activation scales (so calibration
/// survives a save/load cycle even before the int8 conversion); int8
/// module state is the portable per-output-channel quantized form (+
/// static activation scales) followed by the surviving f32 parameters
/// and buffers, so Load reaches packed int8 serving without
/// materializing f32 weights. Version 1 files (f32-only) still load.
Status SaveExpertPool(const ExpertPool& pool, const std::string& path);
Result<ExpertPool> LoadExpertPool(const std::string& path);

/// Whole-WRN persistence (config header + state), used to cache trained
/// oracles between bench runs.
Status SaveWrnModel(Module& wrn, const WrnConfig& config,
                    const std::string& path);
Result<std::shared_ptr<Wrn>> LoadWrnModel(const std::string& path);

}  // namespace poe

#endif  // POE_CORE_SERIALIZATION_H_

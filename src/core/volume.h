// Storage-volume accounting (Table 4 of the paper).
#ifndef POE_CORE_VOLUME_H_
#define POE_CORE_VOLUME_H_

#include <cstdint>

#include "core/expert_pool.h"
#include "nn/module.h"

namespace poe {

/// Byte volumes of the PoE framework vs the alternatives.
struct VolumeReport {
  int64_t oracle_bytes = 0;
  int64_t library_bytes = 0;
  int64_t experts_total_bytes = 0;
  int64_t avg_expert_bytes = 0;
  int64_t pool_total_bytes = 0;  ///< library + all experts
  /// Lower-bound estimate of storing one pre-trained specialized model per
  /// non-empty composite task: 2^n * (bytes of one specialized model),
  /// matching the paper's "All specialized (estimation)" column.
  double all_specialized_estimate_bytes = 0.0;
  int num_primitive_tasks = 0;
};

/// Computes the report from live modules (serialized state bytes).
VolumeReport ComputeVolumeReport(Module& oracle, const ExpertPool& pool);

}  // namespace poe

#endif  // POE_CORE_VOLUME_H_

// Task-specific model assembled by train-free knowledge consolidation.
#ifndef POE_CORE_TASK_MODEL_H_
#define POE_CORE_TASK_MODEL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/expert_store.h"
#include "models/cost.h"
#include "models/wrn.h"
#include "nn/sequential.h"
#include "tensor/tensor.h"

namespace poe {

// ServingPrecision (the pool-wide serving mode) lives in nn/module.h so
// layers can prepack per precision; it is re-exported here for the
// serving-side code that always included this header.

/// The branched architecture of Figure 3: a shared library component
/// (conv1..conv3) feeding n(Q) expert branches (conv4 + head), whose output
/// logits are concatenated into the unified logit s_Q. Assembly involves no
/// training and no weight copies - branches are refcounted handles into the
/// pool's ExpertStore, so overlapping composites share the SAME ExpertBranch
/// objects and serving memory scales with distinct experts, not composites.
///
/// In the paper's notation this is WRN-l-(kc, [ks_1..n(Q)]^T).
class TaskModel {
 public:
  /// Branch payload type; kept as an alias so code that composes models
  /// from its own modules (tests, ablations) can build branches directly —
  /// the ctor wraps them into (unshared) handles.
  using Branch = ExpertBranch;

  /// Store path: branches are handles acquired from an ExpertStore, shared
  /// across every composite that references the same expert.
  TaskModel(std::shared_ptr<Sequential> library, WrnConfig library_config,
            std::vector<ExpertBranchHandle> branches,
            ServingPrecision precision = ServingPrecision::kFloat32);

  /// Ad-hoc path: wraps each payload into a fresh handle (no sharing).
  TaskModel(std::shared_ptr<Sequential> library, WrnConfig library_config,
            std::vector<Branch> branches,
            ServingPrecision precision = ServingPrecision::kFloat32);

  /// Unified logits s_Q: library forward once, each expert branch forward,
  /// concatenate. Eval mode only (the assembled model is never trained).
  /// Equivalent to LogitsFromFeatures(TrunkFeatures(images)).
  Tensor Logits(const Tensor& images);

  /// The shared-trunk (library) forward alone: the feature map every
  /// branch head consumes. Rows are independent, which is what lets the
  /// serving layer fuse the trunk pass across requests for DIFFERENT
  /// models that share this trunk, then fan out per-model heads.
  Tensor TrunkFeatures(const Tensor& images);

  /// Branch heads + logit concatenation over precomputed trunk features.
  Tensor LogitsFromFeatures(const Tensor& features);

  /// The shared library trunk. Pointer identity marks models whose rows
  /// may ride one fused trunk pass (all models of one pool share it).
  const std::shared_ptr<Sequential>& trunk() const { return library_; }

  /// Global class ids corresponding to the logit columns.
  const std::vector<int>& global_classes() const { return global_classes_; }

  int num_branches() const { return static_cast<int>(branches_.size()); }
  const Branch& branch(int i) const { return *branches_.at(i); }
  /// The refcounted handle itself (pointer identity across composites).
  const ExpertBranchHandle& branch_handle(int i) const {
    return branches_.at(i);
  }
  const WrnConfig& library_config() const { return library_config_; }

  /// Predicted global class of each row of `images`.
  std::vector<int> Predict(const Tensor& images);

  /// Analytic per-image inference cost for in_h x in_w inputs.
  ModelCost Cost(int64_t in_h, int64_t in_w) const;

  /// Exact f32 parameter count of the assembled network (library +
  /// branches). Under int8 serving the quantized weights are no longer
  /// f32 parameters and are excluded — use StateBytes() for the real
  /// memory footprint of an int8-served model.
  int64_t NumParams() const;

  /// Precision the aliased pool modules serve at (the POOL's intent; see
  /// degraded_branches() for what the branches actually run).
  ServingPrecision serving_precision() const { return precision_; }

  /// Branches serving below the pool's intended precision (f32 under an
  /// int8 pool, after a failed conversion). 0 on a healthy model. Mixed
  /// precision is functionally transparent — inter-module tensors are f32
  /// either way — but responses report it so clients can tell.
  int degraded_branches() const { return degraded_branches_; }

  /// True when the shared library trunk itself is degraded to f32 under
  /// an int8 pool.
  bool trunk_degraded() const { return trunk_degraded_; }

  /// degraded_branches() > 0 or trunk_degraded().
  bool degraded() const { return degraded_branches_ > 0 || trunk_degraded_; }

  /// Pool generation this model was assembled against (0 = unversioned,
  /// e.g. ad-hoc models built by tests). Stamped by ModelQueryService at
  /// assembly; the flight cache validates hits against the CURRENT
  /// generation's per-expert change table, so a model whose expert set
  /// changed in a later generation stops being served the moment the swap
  /// publishes.
  uint64_t generation() const { return generation_; }
  void set_generation(uint64_t generation) { generation_ = generation; }

  /// Bytes of weight state this model would hold if its aliases were
  /// private copies (library + every branch). The serving layer charges
  /// composites only for UNSHARED bytes; the difference against the
  /// store's referenced bytes is exactly the dedup saving.
  int64_t StateBytes() const;

 private:
  std::shared_ptr<Sequential> library_;
  WrnConfig library_config_;
  std::vector<ExpertBranchHandle> branches_;
  std::vector<int> global_classes_;
  ServingPrecision precision_ = ServingPrecision::kFloat32;
  int degraded_branches_ = 0;     // fixed at assembly
  bool trunk_degraded_ = false;   // fixed at assembly
  uint64_t generation_ = 0;       // 0 = unversioned (ad-hoc models)
};

}  // namespace poe

#endif  // POE_CORE_TASK_MODEL_H_

#include "core/expert_pool.h"

#include <algorithm>
#include <unordered_set>

#include "core/serialization.h"
#include "util/fault.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace poe {

ExpertPool::ExpertPool(WrnConfig library_config, double expert_ks,
                       ClassHierarchy hierarchy,
                       std::shared_ptr<Sequential> library,
                       std::vector<std::shared_ptr<Sequential>> experts)
    : library_config_(library_config),
      expert_ks_(expert_ks),
      hierarchy_(std::move(hierarchy)),
      library_(std::move(library)),
      store_(std::make_shared<ExpertStore>()) {
  POE_CHECK(library_ != nullptr);
  POE_CHECK_EQ(static_cast<int>(experts.size()), hierarchy_.num_tasks());
  for (int t = 0; t < static_cast<int>(experts.size()); ++t) {
    store_->AddExpert(std::move(experts[t]), hierarchy_.task_classes(t),
                      ExpertConfig(t));
  }
}

ExpertPool::ExpertPool(const ExpertPool& other)
    : library_config_(other.library_config_),
      expert_ks_(other.expert_ks_),
      hierarchy_(other.hierarchy_),
      library_(other.library_),
      store_(other.store_->Clone()),
      precision_(other.precision_),
      retry_policy_(other.retry_policy_) {}

ExpertPool& ExpertPool::operator=(const ExpertPool& other) {
  if (this != &other) *this = ExpertPool(other);  // copy, then move-assign
  return *this;
}

WrnConfig ExpertPool::ExpertConfig(int task_id) const {
  WrnConfig cfg = library_config_;
  cfg.ks = expert_ks_;
  cfg.num_classes =
      static_cast<int>(hierarchy_.task_classes(task_id).size());
  return cfg;
}

void ExpertPool::AdoptUnchangedFrom(const ExpertPool& prev,
                                    const std::vector<int>& unchanged_experts,
                                    bool adopt_library) {
  for (int t : unchanged_experts) {
    POE_CHECK_GE(t, 0);
    POE_CHECK_LT(t, std::min(num_experts(), prev.num_experts()));
    store_->AdoptMaster(t, prev.store_->module(t));
  }
  if (adopt_library) library_ = prev.library_;
}

ExpertPool ExpertPool::Preprocess(const LogitFn& oracle,
                                  const SyntheticDataset& data,
                                  const PoeBuildConfig& config, Rng& rng,
                                  PoeBuildStats* stats) {
  // The library student is a generic model over the oracle's class set;
  // the pool's hierarchy may cover a subset of those classes (experts can
  // be hot-added later), but never classes the oracle does not know.
  POE_CHECK_GE(config.library_config.num_classes,
               data.hierarchy.num_classes())
      << "library student must cover at least the hierarchy's classes";

  // Phase 1: library extraction by standard KD (Eq. 1). The student is a
  // small generic model; its conv1..conv3 become the shared library.
  Stopwatch sw;
  Wrn library_student(config.library_config, rng);
  TrainStandardKd(oracle, library_student, data.train,
                  config.library_options);
  const double library_seconds = sw.ElapsedSeconds();
  if (config.verbose) {
    POE_LOG(Info) << "library extraction done in " << library_seconds << "s";
  }

  std::shared_ptr<Sequential> library = library_student.library_part();
  // Freeze the shared component: experts never update it.
  library->SetTrainable(false);

  // Phase 2: expert extraction by CKD, one expert per primitive task.
  // The oracle and the frozen library are shared teachers: compute their
  // tables once for all experts.
  CkdTables tables = PrecomputeCkdTables(oracle, *library, data.train);
  std::vector<std::shared_ptr<Sequential>> experts;
  std::vector<double> per_expert;
  sw.Reset();
  for (int t = 0; t < data.hierarchy.num_tasks(); ++t) {
    Stopwatch expert_sw;
    const std::vector<int>& classes = data.hierarchy.task_classes(t);
    WrnConfig expert_cfg = config.library_config;
    expert_cfg.ks = config.expert_ks;
    expert_cfg.num_classes = static_cast<int>(classes.size());
    auto head = BuildExpertPart(expert_cfg,
                                config.library_config.conv3_channels(), rng);
    TrainCkdExpertWithTables(tables, *head, data.train, classes,
                             config.expert_options, config.ckd);
    per_expert.push_back(expert_sw.ElapsedSeconds());
    if (config.verbose) {
      POE_LOG(Info) << "expert " << t << " extracted in "
                    << per_expert.back() << "s";
    }
    experts.push_back(std::move(head));
  }
  const double experts_seconds = sw.ElapsedSeconds();

  if (stats != nullptr) {
    stats->library_seconds = library_seconds;
    stats->experts_seconds = experts_seconds;
    stats->per_expert_seconds = std::move(per_expert);
  }
  return ExpertPool(config.library_config, config.expert_ks,
                    data.hierarchy, std::move(library), std::move(experts));
}

Result<TaskModel> ExpertPool::Query(const std::vector<int>& task_ids) const {
  return Query(task_ids, Deadline());
}

Result<TaskModel> ExpertPool::Query(const std::vector<int>& task_ids,
                                    const Deadline& deadline,
                                    int64_t* retries) const {
  if (task_ids.empty()) {
    return Status::InvalidArgument("composite task must be non-empty");
  }
  std::unordered_set<int> seen;
  std::vector<ExpertBranchHandle> branches;
  branches.reserve(task_ids.size());
  for (int t : task_ids) {
    if (!seen.insert(t).second) {
      return Status::InvalidArgument("duplicate primitive task id " +
                                     std::to_string(t));
    }
    if (deadline.expired()) {
      return Status::DeadlineExceeded(
          "deadline expired during assembly (expert " + std::to_string(t) +
          " of " + std::to_string(task_ids.size()) + ")");
    }
    // The store validates the id and shares the branch if any other
    // composite already holds it (expert-level dedup). Transient
    // materialization failures retry here, closest to the failing layer;
    // permanent ones (poisoned expert, bad id) surface immediately.
    auto branch = RetryWithBackoff(
        retry_policy_, deadline, [&] { return store_->Acquire(t); }, retries);
    if (!branch.ok()) return branch.status();
    branches.push_back(std::move(branch).ValueOrDie());
  }
  return TaskModel(library_, library_config_, std::move(branches),
                   precision_);
}

Status ExpertPool::SetServingPrecision(ServingPrecision precision) {
  if (precision == precision_) return Status::OK();
  if (precision == ServingPrecision::kFloat32) {
    return Status::FailedPrecondition(
        "int8 serving is irreversible: the f32 weights were released");
  }
  // Degraded mode: a failed library conversion keeps the trunk on f32
  // (composites then run an f32 trunk into int8 — or themselves degraded
  // — heads); the pool-level precision still flips so intent is recorded
  // and a later save/load retries the conversion.
  if (PoeFaultHit("pool.int8.convert.library").ok()) {
    library_->PrepareInt8Serving();
  }
  store_->PrepareInt8Serving();
  precision_ = ServingPrecision::kInt8;
  return Status::OK();
}

Status ExpertPool::CalibrateActivations(const Tensor& samples) {
  if (precision_ != ServingPrecision::kFloat32) {
    return Status::FailedPrecondition(
        "activation calibration observes f32 forwards: calibrate before "
        "the int8 conversion");
  }
  if (samples.ndim() != 4 || samples.dim(0) < 1) {
    return Status::InvalidArgument(
        "calibration samples must be a non-empty [N, C, H, W] batch");
  }
  library_->BeginActivationCalibration();
  for (int t = 0; t < store_->num_experts(); ++t) {
    store_->module(t)->BeginActivationCalibration();
  }
  // One shared trunk pass; every expert head observes the same features
  // (exactly the serving dataflow of an all-expert composite).
  Tensor features = library_->Forward(samples, /*training=*/false);
  for (int t = 0; t < store_->num_experts(); ++t) {
    store_->module(t)->Forward(features, /*training=*/false);
  }
  library_->FinishActivationCalibration();
  for (int t = 0; t < store_->num_experts(); ++t) {
    store_->module(t)->FinishActivationCalibration();
  }
  return Status::OK();
}

void ExpertPool::PrepackForServing() const {
  // Pack the trunk's ACTUAL serving form: under a degraded int8 pool the
  // library may still be f32, and Prepack(kInt8) on an f32 module is an
  // ordering bug by contract.
  library_->Prepack(library_->Int8WeightBytes() > 0
                        ? ServingPrecision::kInt8
                        : ServingPrecision::kFloat32);
}

int64_t ExpertPool::ServingBytes() const {
  return HeldStateBytes(*library_) + store_->MasterBytes();
}

std::shared_ptr<Sequential> ExpertPool::expert(int task_id) const {
  return store_->module(task_id);
}

Status ExpertPool::AddExpert(const LogitFn& oracle, const Dataset& full_train,
                             const std::vector<int>& new_classes,
                             const TrainOptions& options,
                             const CkdOptions& ckd, Rng& rng) {
  if (new_classes.empty()) {
    return Status::InvalidArgument("new primitive task must be non-empty");
  }
  if (precision_ == ServingPrecision::kInt8) {
    return Status::FailedPrecondition(
        "cannot extend an int8-serving pool: expert extraction needs f32");
  }
  // Extend the hierarchy; FromTasks re-validates the partition.
  std::vector<std::vector<int>> tasks;
  for (int t = 0; t < hierarchy_.num_tasks(); ++t) {
    tasks.push_back(hierarchy_.task_classes(t));
  }
  tasks.push_back(new_classes);
  auto extended = ClassHierarchy::FromTasks(std::move(tasks));
  if (!extended.ok()) return extended.status();

  WrnConfig expert_cfg = library_config_;
  expert_cfg.ks = expert_ks_;
  expert_cfg.num_classes = static_cast<int>(new_classes.size());
  auto head =
      BuildExpertPart(expert_cfg, library_config_.conv3_channels(), rng);
  TrainCkdExpert(oracle, *library_, *head, full_train, new_classes, options,
                 ckd);

  hierarchy_ = std::move(extended).ValueOrDie();
  store_->AddExpert(std::move(head), new_classes, expert_cfg);
  return Status::OK();
}

Status ExpertPool::Save(const std::string& path) const {
  // Both precisions persist: f32 pools save full module state, int8 pools
  // save the per-channel quantized form (+ static activation scales) so
  // Load comes straight up at packed int8 serving with no f32 round-trip.
  return SaveExpertPool(*this, path);
}

Result<ExpertPool> ExpertPool::Load(const std::string& path) {
  return LoadExpertPool(path);
}

}  // namespace poe

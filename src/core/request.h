// PoolRequest: the ONE canonical request shape of the serving stack.
//
// Before this header existed there were three parallel request spellings —
// the in-process InferenceRequest, the wire protocol's decoded RequestMeta,
// and ModelQueryService's bare (task_ids, deadline) arguments — each with
// its own validation. A new per-request field (generation pinning today,
// tenant id tomorrow) had to be threaded through all three. Now every layer
// speaks PoolRequest: InferenceRequest is an alias, the net front-end
// decodes straight into one, and the query service accepts one directly.
// Validation lives in exactly one function (ValidatePoolRequest).
#ifndef POE_CORE_REQUEST_H_
#define POE_CORE_REQUEST_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "tensor/tensor.h"
#include "util/status.h"

namespace poe {

/// One classification request: which composite task, and a [n,c,h,w] batch
/// of images to run through M(Q).
struct PoolRequest {
  std::vector<int> task_ids;
  Tensor input;
  /// Per-request latency budget in milliseconds from submission; <= 0 =
  /// none. An expired request is SHED, never executed: checked at
  /// submission, at dequeue, and again after model assembly (before the
  /// forward pass). Shed requests resolve with kDeadlineExceeded and count
  /// into ServeStats::deadline_expired, not completed/rejected. The
  /// remaining budget also bounds assembly (retry backoff stops at the
  /// deadline).
  double deadline_ms = 0.0;
  /// Pool generation the client ASSUMED when it built the request; 0 =
  /// current (no assumption). Serving always answers from the current
  /// generation — a stale pin is not an error, it is telemetry: a request
  /// pinned to a generation other than the one that serves it bumps
  /// ServeStats::stale_generation_queries, and the response reports the
  /// generation that actually answered.
  uint64_t generation = 0;
};

/// Fluent builder, for call sites that construct requests inline (tests,
/// benches, tools). All fields default as in PoolRequest.
class PoolRequestBuilder {
 public:
  PoolRequestBuilder& Tasks(std::vector<int> task_ids) {
    request_.task_ids = std::move(task_ids);
    return *this;
  }
  PoolRequestBuilder& Input(Tensor input) {
    request_.input = std::move(input);
    return *this;
  }
  PoolRequestBuilder& DeadlineMs(double deadline_ms) {
    request_.deadline_ms = deadline_ms;
    return *this;
  }
  PoolRequestBuilder& Generation(uint64_t generation) {
    request_.generation = generation;
    return *this;
  }
  PoolRequest Build() { return std::move(request_); }

 private:
  PoolRequest request_;
};

/// The single shared admission check: a request must carry at least one
/// task id and a non-empty [n,c,h,w] input batch. Task-id RANGE errors are
/// left to assembly (the pool knows its expert count; the admission layer
/// does not), and deadline expiry is a scheduling concern, not a validity
/// one. Every front door — InferenceServer::Submit, the wire decode path,
/// ModelQueryService::Query(PoolRequest) — admits through this one
/// function, so the layers cannot drift apart on what "malformed" means.
inline Status ValidatePoolRequest(const PoolRequest& request) {
  if (request.task_ids.empty()) {
    return Status::InvalidArgument("request carries no task ids");
  }
  if (!request.input.defined() || request.input.ndim() != 4 ||
      request.input.dim(0) < 1) {
    return Status::InvalidArgument("input must be a non-empty [n,c,h,w] batch");
  }
  return Status::OK();
}

}  // namespace poe

#endif  // POE_CORE_REQUEST_H_

// ExpertStore: expert-granularity sharing for the serving stack.
//
// The paper's economics come from composing task models out of a shared
// expert library, so serving state must scale with *distinct experts*,
// not with the number of composites that reference them. The store owns
// the master expert modules (moved here from ExpertPool) and hands out
// refcounted, immutable ExpertBranch handles: assembling {1,2,3} after
// {1,2} materializes only expert 3's branch — experts 1 and 2 are the
// SAME objects, by pointer identity, in both composites.
//
// Lifecycle: a branch stays materialized exactly while some TaskModel
// (cached or client-held) references it — the store keeps only a weak
// reference, so evicting one composite can never free an expert another
// composite still uses, and dropping the last composite releases the
// branch without touching the master weights. Branch wiring and counters
// run under the store mutex (cheap: pointers plus a byte count);
// materialization additionally triggers the pack-once step
// (Module::Prepack) that builds the persistent GEMM weight panels every
// forward of every composite sharing this expert then consumes — that
// pack is O(weight bytes) and runs OUTSIDE the store mutex, so acquires
// of other experts never stall behind it. Deduped composites share
// packed bytes by pointer identity, and concurrent acquires of one
// expert trivially coalesce onto a single branch (the single-flight
// property at expert granularity; forwards fall back to per-call packing
// until the panels land). Prepack itself is idempotent, mutex-guarded
// per layer, and publish-safe, so pool copies (which share master
// modules under distinct store mutexes) cannot corrupt each other.
#ifndef POE_CORE_EXPERT_STORE_H_
#define POE_CORE_EXPERT_STORE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "models/wrn.h"
#include "nn/sequential.h"
#include "util/result.h"

namespace poe {

/// One immutable expert branch: the serving form a TaskModel holds. The
/// head aliases the store's master module (f32 or packed int8 — whatever
/// the pool currently serves), so a branch never duplicates weights.
struct ExpertBranch {
  std::shared_ptr<Sequential> head;
  std::vector<int> classes;  ///< global class ids this expert predicts
  WrnConfig config;          ///< architecture (for cost reporting)
  int task_id = -1;          ///< slot in the owning store; -1 = ad-hoc
  /// The precision this branch ACTUALLY serves, fixed at materialization.
  /// Under an int8 pool this is normally kInt8, but an expert whose
  /// conversion failed keeps serving f32 (degraded mode) — composites and
  /// responses report that honestly instead of failing the query.
  ServingPrecision precision = ServingPrecision::kFloat32;
};

/// Refcounted handle composites hold; the refcount IS the residency
/// signal (see ExpertStore lifecycle above).
using ExpertBranchHandle = std::shared_ptr<const ExpertBranch>;

/// Builds a store-less branch handle (tests and ablation benches compose
/// models from modules they trained themselves).
inline ExpertBranchHandle MakeAdHocBranch(std::shared_ptr<Sequential> head,
                                          std::vector<int> classes,
                                          WrnConfig config) {
  ExpertBranch b;
  b.head = std::move(head);
  b.classes = std::move(classes);
  b.config = config;
  b.precision = b.head->Int8WeightBytes() > 0 ? ServingPrecision::kInt8
                                              : ServingPrecision::kFloat32;
  return std::make_shared<const ExpertBranch>(std::move(b));
}

/// Counters of the expert-sharing layer. Reconcile by construction:
///   expert_hits + expert_misses == total Acquire() calls that succeeded
/// and shared_bytes_saved is exactly the sum of the hit experts' bytes —
/// the weight state an isolated-assembly design (one private copy per
/// composite) would have materialized anew.
struct ExpertStoreStats {
  int64_t expert_hits = 0;    ///< acquire reused an already-live branch
  int64_t expert_misses = 0;  ///< acquire materialized the branch
  int64_t shared_bytes_saved = 0;
  int64_t experts_referenced = 0;  ///< branches live right now
  int64_t referenced_bytes = 0;    ///< bytes of those live branches
  /// Slots whose materialization hit permanent corruption: acquires of
  /// THESE experts fail fast with kUnavailable; every other expert keeps
  /// serving (blast-radius isolation).
  int64_t experts_poisoned = 0;
  /// Slots still serving f32 under an int8 store (failed conversion).
  int64_t experts_degraded = 0;
  /// Slots with no resident master module (cluster residency shedding):
  /// acquiring one goes through the remote materializer. A successful
  /// remote fetch installs the master, so the slot leaves this count —
  /// fetched experts are cached, not re-fetched per query.
  int64_t experts_nonresident = 0;
};

class ExpertStore {
 public:
  /// Produces the master module of a non-resident expert (cluster serving:
  /// fetch it from the peer that owns it). Called OUTSIDE the store mutex.
  /// Transient failures (kUnavailable/kIoError/kResourceExhausted) bubble
  /// to the pool's per-expert retry loop; kCorruption poisons the slot
  /// like any other materialization corruption.
  using RemoteMaterializer =
      std::function<Result<std::shared_ptr<Sequential>>(int task_id)>;

  ExpertStore() = default;
  ExpertStore(const ExpertStore&) = delete;
  ExpertStore& operator=(const ExpertStore&) = delete;

  /// Appends a master expert module; returns its task id (slot index).
  int AddExpert(std::shared_ptr<Sequential> module, std::vector<int> classes,
                WrnConfig config);

  /// Replaces the master module of `task_id` with `module`, keeping the
  /// slot's classes/config. VersionedPool uses this before publishing a
  /// new generation: an expert whose content CRC is unchanged adopts the
  /// OLD generation's master, so its bytes (and already-built prepacked
  /// panels) are shared across generations instead of duplicated, and
  /// pointer-identity dedup keeps working across the swap. Only legal
  /// while the slot has no live branch (the pre-publish pool has served
  /// nothing yet).
  void AdoptMaster(int task_id, std::shared_ptr<Sequential> module);

  /// A store over the SAME master modules but with fresh sharing state:
  /// no live branches, zeroed counters. ExpertPool's copy constructor
  /// uses this so each pool copy (each service) gets independent
  /// accounting and an AddExpert on one copy cannot desync another.
  std::unique_ptr<ExpertStore> Clone() const;

  /// Returns the (shared) branch for `task_id`, materializing it if no
  /// composite currently references it. OutOfRange on unknown ids;
  /// kUnavailable (fast, no work) for a poisoned slot. A materialization
  /// failure (fault site "store.materialize") is returned to the caller:
  /// transient codes (kIoError/kUnavailable/kResourceExhausted) are
  /// retried at the pool level, kCorruption permanently poisons THIS slot
  /// only — acquires of other experts are unaffected.
  Result<ExpertBranchHandle> Acquire(int task_id);

  /// Switches every master module to dequant-free int8 serving and
  /// refreshes the per-expert byte accounting. Live branches keep working
  /// (their heads alias the converted modules); like the pool-level
  /// conversion this is irreversible. Subsequent Acquire() materializations
  /// prepack the int8 form instead of the f32 one.
  ///
  /// Degraded mode: a conversion failure (fault site "store.int8.convert")
  /// leaves that expert serving f32 — mixed-precision composites work
  /// because inter-module tensors are f32 either way. Degraded slots are
  /// reported via stats().experts_degraded, and each branch carries its
  /// actual precision.
  void PrepareInt8Serving();

  /// Releases the master module of `task_id` (cluster residency shedding:
  /// a node keeps resident only the experts placement assigns it). Only
  /// legal while the slot has no live branch. The slot keeps its classes
  /// and config — fetch replies and placement still need them — and a
  /// later Acquire materializes through the remote materializer, whose
  /// fetched module is installed back into the slot (cached residency).
  /// FailedPrecondition when a composite still references the branch.
  Status ReleaseMaster(int task_id);

  /// Installs the hook Acquire uses for slots with no resident master.
  /// Clones share it (a pool copy made after shedding must still be able
  /// to materialize).
  void SetRemoteMaterializer(RemoteMaterializer fn);

  /// True when the slot holds its master module locally.
  bool resident(int task_id) const;

  /// Precision newly materialized branches are prepacked for.
  ServingPrecision serving_precision() const;

  int num_experts() const;
  /// By value: slots_ may grow (AddExpert) after the lock is released, so
  /// references into it would not be stable.
  std::shared_ptr<Sequential> module(int task_id) const;
  std::vector<int> classes(int task_id) const;

  /// Bytes of master weight state held (every expert, referenced or not) —
  /// the pool side of ExpertPool::ServingBytes().
  int64_t MasterBytes() const;

  /// Bytes of experts referenced by at least one live composite. With the
  /// model-level view this is the honest footprint denominator: it scales
  /// with distinct experts, never with composites.
  int64_t ReferencedBytes() const;

  ExpertStoreStats stats() const;

 private:
  struct Slot {
    std::shared_ptr<Sequential> module;  ///< null = non-resident (remote)
    std::vector<int> classes;
    WrnConfig config;
    std::weak_ptr<const ExpertBranch> live;  ///< current branch, if any
    int64_t bytes = 0;  ///< HeldStateBytes at last (re)materialization
    bool poisoned = false;      ///< permanent materialization corruption
    std::string poison_reason;  ///< first corruption message, for errors
  };

  mutable std::mutex mu_;
  std::vector<Slot> slots_;
  RemoteMaterializer remote_;  ///< null until SetRemoteMaterializer
  ServingPrecision precision_ = ServingPrecision::kFloat32;
  int64_t expert_hits_ = 0;
  int64_t expert_misses_ = 0;
  int64_t shared_bytes_saved_ = 0;
};

}  // namespace poe

#endif  // POE_CORE_EXPERT_STORE_H_

#include "core/serialization.h"

#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "core/expert_pool.h"
#include "util/logging.h"

namespace poe {

namespace {

constexpr char kMagic[8] = {'P', 'O', 'E', 'P', 'O', 'O', 'L', '1'};
// Version history: 1 = f32-only payload; 2 adds a serving-precision tag
// and, for int8 pools, the per-channel quantized weight form plus static
// activation scales (so Load reaches packed int8 serving with no f32
// round-trip). The reader accepts both; the writer emits 2.
constexpr uint32_t kVersionF32 = 1;
constexpr uint32_t kVersion = 2;

// Low-level primitives. The on-disk layout is the host's little-endian
// representation; the format is an internal cache, not an exchange format.

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

void WriteTensorData(std::ostream& out, const Tensor& t) {
  WritePod<int32_t>(out, t.ndim());
  for (int i = 0; i < t.ndim(); ++i) WritePod<int64_t>(out, t.dim(i));
  out.write(reinterpret_cast<const char*>(t.data()),
            sizeof(float) * t.numel());
}

Status ReadTensorInto(std::istream& in, Tensor* t) {
  int32_t ndim = 0;
  if (!ReadPod(in, &ndim) || ndim < 0 || ndim > 8) {
    return Status::Corruption("bad tensor rank");
  }
  std::vector<int64_t> shape(ndim);
  for (int i = 0; i < ndim; ++i) {
    if (!ReadPod(in, &shape[i])) return Status::Corruption("bad tensor dim");
  }
  if (shape != t->shape()) {
    return Status::Corruption("tensor shape mismatch: file " +
                              Tensor::Zeros(shape).ShapeString() +
                              " vs module " + t->ShapeString());
  }
  in.read(reinterpret_cast<char*>(t->data()), sizeof(float) * t->numel());
  if (!in) return Status::Corruption("truncated tensor data");
  return Status::OK();
}

uint64_t Fnv1a(const std::string& bytes) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

void WriteWrnConfig(std::ostream& out, const WrnConfig& cfg) {
  WritePod<int32_t>(out, cfg.depth);
  WritePod<double>(out, cfg.kc);
  WritePod<double>(out, cfg.ks);
  WritePod<int32_t>(out, cfg.num_classes);
  WritePod<int32_t>(out, cfg.base_channels);
  WritePod<int32_t>(out, cfg.in_channels);
}

Status ReadWrnConfig(std::istream& in, WrnConfig* cfg) {
  int32_t depth, num_classes, base, in_channels;
  double kc, ks;
  if (!ReadPod(in, &depth) || !ReadPod(in, &kc) || !ReadPod(in, &ks) ||
      !ReadPod(in, &num_classes) || !ReadPod(in, &base) ||
      !ReadPod(in, &in_channels)) {
    return Status::Corruption("truncated WrnConfig");
  }
  cfg->depth = depth;
  cfg->kc = kc;
  cfg->ks = ks;
  cfg->num_classes = num_classes;
  cfg->base_channels = base;
  cfg->in_channels = in_channels;
  return Status::OK();
}

}  // namespace

Status WriteModuleState(std::ostream& out, Module& module) {
  std::vector<Parameter*> params = module.Parameters();
  std::vector<Tensor*> buffers;
  module.CollectBuffers(&buffers);
  WritePod<int64_t>(out, static_cast<int64_t>(params.size()));
  WritePod<int64_t>(out, static_cast<int64_t>(buffers.size()));
  for (Parameter* p : params) WriteTensorData(out, p->value);
  for (Tensor* b : buffers) WriteTensorData(out, *b);
  if (!out) return Status::IoError("failed writing module state");
  return Status::OK();
}

Status ReadModuleState(std::istream& in, Module& module) {
  std::vector<Parameter*> params = module.Parameters();
  std::vector<Tensor*> buffers;
  module.CollectBuffers(&buffers);
  int64_t n_params = 0, n_buffers = 0;
  if (!ReadPod(in, &n_params) || !ReadPod(in, &n_buffers)) {
    return Status::Corruption("truncated module header");
  }
  if (n_params != static_cast<int64_t>(params.size()) ||
      n_buffers != static_cast<int64_t>(buffers.size())) {
    return Status::Corruption("module structure mismatch");
  }
  for (Parameter* p : params) POE_RETURN_NOT_OK(ReadTensorInto(in, &p->value));
  for (Tensor* b : buffers) POE_RETURN_NOT_OK(ReadTensorInto(in, b));
  return Status::OK();
}

namespace {

// Int8 module payload: the quantizable layers' portable quantized form in
// traversal order, then the remaining (still-defined) f32 parameters and
// the buffers. Written only inside version >= 2 int8 pool files.
Status WriteInt8ModuleState(std::ostream& out, Module& module) {
  std::vector<Module*> quant;
  module.CollectQuantizable(&quant);
  WritePod<int64_t>(out, static_cast<int64_t>(quant.size()));
  for (Module* layer : quant) {
    auto exported = layer->ExportInt8State();
    if (!exported.ok()) return exported.status();
    const Int8WeightState state = std::move(exported).ValueOrDie();
    WritePod<int64_t>(out, state.rows);
    WritePod<int64_t>(out, state.cols);
    WritePod<float>(out, state.act_scale);
    out.write(reinterpret_cast<const char*>(state.values.data()),
              static_cast<std::streamsize>(state.values.size()));
    out.write(reinterpret_cast<const char*>(state.scales.data()),
              static_cast<std::streamsize>(state.scales.size() *
                                           sizeof(float)));
  }
  // Remaining f32 state: parameters whose storage the int8 conversion did
  // NOT release (biases) plus buffers (batch-norm statistics).
  std::vector<Parameter*> defined;
  for (Parameter* p : module.Parameters()) {
    if (p->value.defined()) defined.push_back(p);
  }
  std::vector<Tensor*> buffers;
  module.CollectBuffers(&buffers);
  WritePod<int64_t>(out, static_cast<int64_t>(defined.size()));
  WritePod<int64_t>(out, static_cast<int64_t>(buffers.size()));
  for (Parameter* p : defined) WriteTensorData(out, p->value);
  for (Tensor* b : buffers) WriteTensorData(out, *b);
  if (!out) return Status::IoError("failed writing int8 module state");
  return Status::OK();
}

// Reads WriteInt8ModuleState output into a freshly built f32 skeleton:
// each quantizable layer adopts its quantized state (releasing its f32
// weight and packing the serving panels), after which the skeleton's
// defined parameters match the saved remainder exactly.
Status ReadInt8ModuleState(std::istream& in, Module& module) {
  std::vector<Module*> quant;
  module.CollectQuantizable(&quant);
  int64_t n_quant = 0;
  if (!ReadPod(in, &n_quant) ||
      n_quant != static_cast<int64_t>(quant.size())) {
    return Status::Corruption("int8 layer count mismatch");
  }
  for (Module* layer : quant) {
    Int8WeightState state;
    if (!ReadPod(in, &state.rows) || !ReadPod(in, &state.cols) ||
        !ReadPod(in, &state.act_scale)) {
      return Status::Corruption("truncated int8 layer header");
    }
    if (state.rows <= 0 || state.cols <= 0 ||
        state.rows > (int64_t{1} << 24) || state.cols > (int64_t{1} << 24) ||
        state.rows * state.cols > (int64_t{1} << 28)) {
      // The product bound keeps a corrupt header from requesting a
      // terabyte-scale resize (bad_alloc) instead of a clean error.
      return Status::Corruption("implausible int8 layer shape");
    }
    state.values.resize(static_cast<size_t>(state.rows * state.cols));
    state.scales.resize(static_cast<size_t>(state.rows));
    in.read(reinterpret_cast<char*>(state.values.data()),
            static_cast<std::streamsize>(state.values.size()));
    in.read(reinterpret_cast<char*>(state.scales.data()),
            static_cast<std::streamsize>(state.scales.size() *
                                         sizeof(float)));
    if (!in) return Status::Corruption("truncated int8 layer data");
    POE_RETURN_NOT_OK(layer->AdoptInt8State(std::move(state)));
  }
  std::vector<Parameter*> defined;
  for (Parameter* p : module.Parameters()) {
    if (p->value.defined()) defined.push_back(p);
  }
  std::vector<Tensor*> buffers;
  module.CollectBuffers(&buffers);
  int64_t n_defined = 0, n_buffers = 0;
  if (!ReadPod(in, &n_defined) || !ReadPod(in, &n_buffers)) {
    return Status::Corruption("truncated int8 module header");
  }
  if (n_defined != static_cast<int64_t>(defined.size()) ||
      n_buffers != static_cast<int64_t>(buffers.size())) {
    return Status::Corruption("int8 module structure mismatch");
  }
  for (Parameter* p : defined) {
    POE_RETURN_NOT_OK(ReadTensorInto(in, &p->value));
  }
  for (Tensor* b : buffers) POE_RETURN_NOT_OK(ReadTensorInto(in, b));
  return Status::OK();
}

// Static activation scales of a module's quantizable layers (traversal
// order). Written inside version >= 2 f32 pool payloads so calibration
// survives a save/load cycle — otherwise a calibrated pool saved before
// its int8 conversion would silently come back dynamic. (Int8 payloads
// carry the scale inside each layer's Int8WeightState instead.)
void WriteActScales(std::ostream& out, Module& module) {
  std::vector<Module*> quant;
  module.CollectQuantizable(&quant);
  WritePod<int64_t>(out, static_cast<int64_t>(quant.size()));
  for (Module* layer : quant) {
    WritePod<float>(out, layer->static_act_scale());
  }
}

Status ReadActScales(std::istream& in, Module& module) {
  std::vector<Module*> quant;
  module.CollectQuantizable(&quant);
  int64_t count = 0;
  if (!ReadPod(in, &count) ||
      count != static_cast<int64_t>(quant.size())) {
    return Status::Corruption("activation scale count mismatch");
  }
  for (Module* layer : quant) {
    float scale = 0.0f;
    if (!ReadPod(in, &scale)) {
      return Status::Corruption("truncated activation scales");
    }
    layer->set_static_act_scale(scale);
  }
  return Status::OK();
}

}  // namespace

int64_t ModuleStateBytes(Module& module) {
  int64_t bytes = 0;
  for (Parameter* p : module.Parameters()) bytes += p->value.nbytes();
  std::vector<Tensor*> buffers;
  module.CollectBuffers(&buffers);
  for (Tensor* b : buffers) bytes += b->nbytes();
  return bytes;
}

Status SaveExpertPool(const ExpertPool& pool, const std::string& path) {
  std::ostringstream payload;
  WriteWrnConfig(payload, pool.library_config());
  WritePod<double>(payload, pool.expert_ks());
  // Hierarchy.
  const ClassHierarchy& h = pool.hierarchy();
  WritePod<int32_t>(payload, h.num_tasks());
  for (int t = 0; t < h.num_tasks(); ++t) {
    const auto& classes = h.task_classes(t);
    WritePod<int32_t>(payload, static_cast<int32_t>(classes.size()));
    for (int c : classes) WritePod<int32_t>(payload, c);
  }
  const bool int8 = pool.serving_precision() == ServingPrecision::kInt8;
  WritePod<uint8_t>(payload, int8 ? 1 : 0);
  if (int8) {
    POE_RETURN_NOT_OK(WriteInt8ModuleState(payload, *pool.library()));
    for (int t = 0; t < pool.num_experts(); ++t) {
      POE_RETURN_NOT_OK(WriteInt8ModuleState(payload, *pool.expert(t)));
    }
  } else {
    POE_RETURN_NOT_OK(WriteModuleState(payload, *pool.library()));
    WriteActScales(payload, *pool.library());
    for (int t = 0; t < pool.num_experts(); ++t) {
      POE_RETURN_NOT_OK(WriteModuleState(payload, *pool.expert(t)));
      WriteActScales(payload, *pool.expert(t));
    }
  }

  const std::string bytes = payload.str();
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return Status::IoError("cannot open " + path + " for writing");
  file.write(kMagic, sizeof(kMagic));
  WritePod<uint32_t>(file, kVersion);
  WritePod<uint64_t>(file, Fnv1a(bytes));
  file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!file) return Status::IoError("failed writing " + path);
  return Status::OK();
}

namespace {
constexpr char kWrnMagic[8] = {'P', 'O', 'E', 'W', 'R', 'N', '0', '1'};
}  // namespace

Status SaveWrnModel(Module& wrn, const WrnConfig& config,
                    const std::string& path) {
  std::ostringstream payload;
  WriteWrnConfig(payload, config);
  POE_RETURN_NOT_OK(WriteModuleState(payload, wrn));
  const std::string bytes = payload.str();
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return Status::IoError("cannot open " + path + " for writing");
  file.write(kWrnMagic, sizeof(kWrnMagic));
  WritePod<uint64_t>(file, Fnv1a(bytes));
  file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!file) return Status::IoError("failed writing " + path);
  return Status::OK();
}

Result<std::shared_ptr<Wrn>> LoadWrnModel(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::NotFound("cannot open " + path);
  char magic[8];
  file.read(magic, sizeof(magic));
  if (!file || std::memcmp(magic, kWrnMagic, sizeof(kWrnMagic)) != 0) {
    return Status::Corruption("bad WRN magic in " + path);
  }
  uint64_t checksum = 0;
  if (!ReadPod(file, &checksum)) return Status::Corruption("truncated WRN");
  std::ostringstream rest;
  rest << file.rdbuf();
  const std::string bytes = rest.str();
  if (Fnv1a(bytes) != checksum) {
    return Status::Corruption("WRN checksum mismatch in " + path);
  }
  std::istringstream in(bytes);
  WrnConfig cfg;
  POE_RETURN_NOT_OK(ReadWrnConfig(in, &cfg));
  Rng rng(0);
  auto model = std::make_shared<Wrn>(cfg, rng);
  POE_RETURN_NOT_OK(ReadModuleState(in, *model));
  return model;
}

Result<ExpertPool> LoadExpertPool(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::NotFound("cannot open " + path);
  char magic[8];
  file.read(magic, sizeof(magic));
  if (!file || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad pool magic in " + path);
  }
  uint32_t version = 0;
  uint64_t checksum = 0;
  if (!ReadPod(file, &version) || !ReadPod(file, &checksum)) {
    return Status::Corruption("truncated pool header");
  }
  if (version != kVersionF32 && version != kVersion) {
    return Status::Corruption("unsupported pool version " +
                              std::to_string(version));
  }
  std::ostringstream rest;
  rest << file.rdbuf();
  const std::string bytes = rest.str();
  if (Fnv1a(bytes) != checksum) {
    return Status::Corruption("pool checksum mismatch in " + path);
  }

  std::istringstream in(bytes);
  WrnConfig library_cfg;
  POE_RETURN_NOT_OK(ReadWrnConfig(in, &library_cfg));
  double expert_ks = 0.0;
  if (!ReadPod(in, &expert_ks)) return Status::Corruption("truncated pool");
  int32_t num_tasks = 0;
  if (!ReadPod(in, &num_tasks) || num_tasks <= 0 || num_tasks > 100000) {
    return Status::Corruption("bad task count");
  }
  std::vector<std::vector<int>> tasks(num_tasks);
  for (int t = 0; t < num_tasks; ++t) {
    int32_t count = 0;
    if (!ReadPod(in, &count) || count <= 0) {
      return Status::Corruption("bad task size");
    }
    tasks[t].resize(count);
    for (int i = 0; i < count; ++i) {
      int32_t c = 0;
      if (!ReadPod(in, &c)) return Status::Corruption("truncated task");
      tasks[t][i] = c;
    }
  }
  POE_ASSIGN_OR_RETURN(ClassHierarchy hierarchy,
                       ClassHierarchy::FromTasks(std::move(tasks)));

  bool int8 = false;
  if (version >= 2) {
    uint8_t precision_tag = 0;
    if (!ReadPod(in, &precision_tag) || precision_tag > 1) {
      return Status::Corruption("bad precision tag");
    }
    int8 = precision_tag == 1;
  }

  // Rebuild module skeletons from the configs, then load states into them
  // (for int8 pools the quantized state is adopted directly — the f32
  // skeleton weights are released without ever being dequantized into).
  Rng rng(0);  // weights are overwritten by the load
  std::shared_ptr<Sequential> library = BuildLibraryPart(library_cfg, rng);
  POE_RETURN_NOT_OK(int8 ? ReadInt8ModuleState(in, *library)
                         : ReadModuleState(in, *library));
  if (!int8 && version >= 2) POE_RETURN_NOT_OK(ReadActScales(in, *library));
  library->SetTrainable(false);

  std::vector<std::shared_ptr<Sequential>> experts;
  for (int t = 0; t < num_tasks; ++t) {
    WrnConfig expert_cfg = library_cfg;
    expert_cfg.ks = expert_ks;
    expert_cfg.num_classes =
        static_cast<int>(hierarchy.task_classes(t).size());
    auto head =
        BuildExpertPart(expert_cfg, library_cfg.conv3_channels(), rng);
    POE_RETURN_NOT_OK(int8 ? ReadInt8ModuleState(in, *head)
                           : ReadModuleState(in, *head));
    if (!int8 && version >= 2) POE_RETURN_NOT_OK(ReadActScales(in, *head));
    experts.push_back(std::move(head));
  }
  ExpertPool pool(library_cfg, expert_ks, std::move(hierarchy),
                  std::move(library), std::move(experts));
  if (int8) {
    // Modules are already converted (adopted); this flips the pool-level
    // precision flag and store accounting without touching weights.
    POE_RETURN_NOT_OK(pool.SetServingPrecision(ServingPrecision::kInt8));
  }
  return pool;
}

}  // namespace poe

#include "core/serialization.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

#include "core/expert_pool.h"
#include "util/crc32c.h"
#include "util/fault.h"
#include "util/logging.h"

namespace poe {

namespace {

constexpr char kMagic[8] = {'P', 'O', 'E', 'P', 'O', 'O', 'L', '1'};
// Version history: 1 = f32-only payload, whole-payload FNV checksum;
// 2 adds a serving-precision tag and the int8 module form (still one FNV
// over the whole payload); 3 splits the file into per-section CRC32C
// frames with a commit footer and is written via tmp+fsync+rename. The
// reader accepts all three; the writer emits 3.
constexpr uint32_t kVersionF32 = 1;
constexpr uint32_t kVersionFnv = 2;
constexpr uint32_t kVersion = 3;

// v3 section tags.
constexpr uint32_t kTagMeta = 1;
constexpr uint32_t kTagLibrary = 2;
constexpr uint32_t kTagExpert = 3;
constexpr uint32_t kTagFooter = 0xF00Fu;

// Low-level primitives. The on-disk layout is the host's little-endian
// representation; the format is an internal cache, not an exchange format.

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

void WriteTensorData(std::ostream& out, const Tensor& t) {
  WritePod<int32_t>(out, t.ndim());
  for (int i = 0; i < t.ndim(); ++i) WritePod<int64_t>(out, t.dim(i));
  out.write(reinterpret_cast<const char*>(t.data()),
            sizeof(float) * t.numel());
}

Status ReadTensorInto(std::istream& in, Tensor* t) {
  int32_t ndim = 0;
  if (!ReadPod(in, &ndim) || ndim < 0 || ndim > 8) {
    return Status::Corruption("bad tensor rank");
  }
  std::vector<int64_t> shape(ndim);
  for (int i = 0; i < ndim; ++i) {
    if (!ReadPod(in, &shape[i])) return Status::Corruption("bad tensor dim");
  }
  if (shape != t->shape()) {
    return Status::Corruption("tensor shape mismatch: file " +
                              Tensor::Zeros(shape).ShapeString() +
                              " vs module " + t->ShapeString());
  }
  in.read(reinterpret_cast<char*>(t->data()), sizeof(float) * t->numel());
  if (!in) return Status::Corruption("truncated tensor data");
  return Status::OK();
}

uint64_t Fnv1a(const std::string& bytes) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

void WriteWrnConfig(std::ostream& out, const WrnConfig& cfg) {
  WritePod<int32_t>(out, cfg.depth);
  WritePod<double>(out, cfg.kc);
  WritePod<double>(out, cfg.ks);
  WritePod<int32_t>(out, cfg.num_classes);
  WritePod<int32_t>(out, cfg.base_channels);
  WritePod<int32_t>(out, cfg.in_channels);
}

Status ReadWrnConfig(std::istream& in, WrnConfig* cfg) {
  int32_t depth, num_classes, base, in_channels;
  double kc, ks;
  if (!ReadPod(in, &depth) || !ReadPod(in, &kc) || !ReadPod(in, &ks) ||
      !ReadPod(in, &num_classes) || !ReadPod(in, &base) ||
      !ReadPod(in, &in_channels)) {
    return Status::Corruption("truncated WrnConfig");
  }
  cfg->depth = depth;
  cfg->kc = kc;
  cfg->ks = ks;
  cfg->num_classes = num_classes;
  cfg->base_channels = base;
  cfg->in_channels = in_channels;
  return Status::OK();
}

}  // namespace

Status WriteModuleState(std::ostream& out, Module& module) {
  std::vector<Parameter*> params = module.Parameters();
  std::vector<Tensor*> buffers;
  module.CollectBuffers(&buffers);
  WritePod<int64_t>(out, static_cast<int64_t>(params.size()));
  WritePod<int64_t>(out, static_cast<int64_t>(buffers.size()));
  for (Parameter* p : params) WriteTensorData(out, p->value);
  for (Tensor* b : buffers) WriteTensorData(out, *b);
  if (!out) return Status::IoError("failed writing module state");
  return Status::OK();
}

Status ReadModuleState(std::istream& in, Module& module) {
  std::vector<Parameter*> params = module.Parameters();
  std::vector<Tensor*> buffers;
  module.CollectBuffers(&buffers);
  int64_t n_params = 0, n_buffers = 0;
  if (!ReadPod(in, &n_params) || !ReadPod(in, &n_buffers)) {
    return Status::Corruption("truncated module header");
  }
  if (n_params != static_cast<int64_t>(params.size()) ||
      n_buffers != static_cast<int64_t>(buffers.size())) {
    return Status::Corruption("module structure mismatch");
  }
  for (Parameter* p : params) POE_RETURN_NOT_OK(ReadTensorInto(in, &p->value));
  for (Tensor* b : buffers) POE_RETURN_NOT_OK(ReadTensorInto(in, b));
  return Status::OK();
}

namespace {

// Int8 module payload: the quantizable layers' portable quantized form in
// traversal order, then the remaining (still-defined) f32 parameters and
// the buffers. Written only inside version >= 2 int8 pool files.
Status WriteInt8ModuleState(std::ostream& out, Module& module) {
  std::vector<Module*> quant;
  module.CollectQuantizable(&quant);
  WritePod<int64_t>(out, static_cast<int64_t>(quant.size()));
  for (Module* layer : quant) {
    auto exported = layer->ExportInt8State();
    if (!exported.ok()) return exported.status();
    const Int8WeightState state = std::move(exported).ValueOrDie();
    WritePod<int64_t>(out, state.rows);
    WritePod<int64_t>(out, state.cols);
    WritePod<float>(out, state.act_scale);
    out.write(reinterpret_cast<const char*>(state.values.data()),
              static_cast<std::streamsize>(state.values.size()));
    out.write(reinterpret_cast<const char*>(state.scales.data()),
              static_cast<std::streamsize>(state.scales.size() *
                                           sizeof(float)));
  }
  // Remaining f32 state: parameters whose storage the int8 conversion did
  // NOT release (biases) plus buffers (batch-norm statistics).
  std::vector<Parameter*> defined;
  for (Parameter* p : module.Parameters()) {
    if (p->value.defined()) defined.push_back(p);
  }
  std::vector<Tensor*> buffers;
  module.CollectBuffers(&buffers);
  WritePod<int64_t>(out, static_cast<int64_t>(defined.size()));
  WritePod<int64_t>(out, static_cast<int64_t>(buffers.size()));
  for (Parameter* p : defined) WriteTensorData(out, p->value);
  for (Tensor* b : buffers) WriteTensorData(out, *b);
  if (!out) return Status::IoError("failed writing int8 module state");
  return Status::OK();
}

// Reads WriteInt8ModuleState output into a freshly built f32 skeleton:
// each quantizable layer adopts its quantized state (releasing its f32
// weight and packing the serving panels), after which the skeleton's
// defined parameters match the saved remainder exactly.
Status ReadInt8ModuleState(std::istream& in, Module& module) {
  std::vector<Module*> quant;
  module.CollectQuantizable(&quant);
  int64_t n_quant = 0;
  if (!ReadPod(in, &n_quant) ||
      n_quant != static_cast<int64_t>(quant.size())) {
    return Status::Corruption("int8 layer count mismatch");
  }
  for (Module* layer : quant) {
    Int8WeightState state;
    if (!ReadPod(in, &state.rows) || !ReadPod(in, &state.cols) ||
        !ReadPod(in, &state.act_scale)) {
      return Status::Corruption("truncated int8 layer header");
    }
    if (state.rows <= 0 || state.cols <= 0 ||
        state.rows > (int64_t{1} << 24) || state.cols > (int64_t{1} << 24) ||
        state.rows * state.cols > (int64_t{1} << 28)) {
      // The product bound keeps a corrupt header from requesting a
      // terabyte-scale resize (bad_alloc) instead of a clean error.
      return Status::Corruption("implausible int8 layer shape");
    }
    state.values.resize(static_cast<size_t>(state.rows * state.cols));
    state.scales.resize(static_cast<size_t>(state.rows));
    in.read(reinterpret_cast<char*>(state.values.data()),
            static_cast<std::streamsize>(state.values.size()));
    in.read(reinterpret_cast<char*>(state.scales.data()),
            static_cast<std::streamsize>(state.scales.size() *
                                         sizeof(float)));
    if (!in) return Status::Corruption("truncated int8 layer data");
    POE_RETURN_NOT_OK(layer->AdoptInt8State(std::move(state)));
  }
  std::vector<Parameter*> defined;
  for (Parameter* p : module.Parameters()) {
    if (p->value.defined()) defined.push_back(p);
  }
  std::vector<Tensor*> buffers;
  module.CollectBuffers(&buffers);
  int64_t n_defined = 0, n_buffers = 0;
  if (!ReadPod(in, &n_defined) || !ReadPod(in, &n_buffers)) {
    return Status::Corruption("truncated int8 module header");
  }
  if (n_defined != static_cast<int64_t>(defined.size()) ||
      n_buffers != static_cast<int64_t>(buffers.size())) {
    return Status::Corruption("int8 module structure mismatch");
  }
  for (Parameter* p : defined) {
    POE_RETURN_NOT_OK(ReadTensorInto(in, &p->value));
  }
  for (Tensor* b : buffers) POE_RETURN_NOT_OK(ReadTensorInto(in, b));
  return Status::OK();
}

// Static activation scales of a module's quantizable layers (traversal
// order). Written inside version >= 2 f32 pool payloads so calibration
// survives a save/load cycle — otherwise a calibrated pool saved before
// its int8 conversion would silently come back dynamic. (Int8 payloads
// carry the scale inside each layer's Int8WeightState instead.)
void WriteActScales(std::ostream& out, Module& module) {
  std::vector<Module*> quant;
  module.CollectQuantizable(&quant);
  WritePod<int64_t>(out, static_cast<int64_t>(quant.size()));
  for (Module* layer : quant) {
    WritePod<float>(out, layer->static_act_scale());
  }
}

Status ReadActScales(std::istream& in, Module& module) {
  std::vector<Module*> quant;
  module.CollectQuantizable(&quant);
  int64_t count = 0;
  if (!ReadPod(in, &count) ||
      count != static_cast<int64_t>(quant.size())) {
    return Status::Corruption("activation scale count mismatch");
  }
  for (Module* layer : quant) {
    float scale = 0.0f;
    if (!ReadPod(in, &scale)) {
      return Status::Corruption("truncated activation scales");
    }
    layer->set_static_act_scale(scale);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Shared meta payload (v2 inline, v3 as its own section): library config,
// expert width, hierarchy, pool-level precision tag.

void WritePoolMeta(std::ostream& out, const ExpertPool& pool) {
  WriteWrnConfig(out, pool.library_config());
  WritePod<double>(out, pool.expert_ks());
  const ClassHierarchy& h = pool.hierarchy();
  WritePod<int32_t>(out, h.num_tasks());
  for (int t = 0; t < h.num_tasks(); ++t) {
    const auto& classes = h.task_classes(t);
    WritePod<int32_t>(out, static_cast<int32_t>(classes.size()));
    for (int c : classes) WritePod<int32_t>(out, c);
  }
  const bool int8 = pool.serving_precision() == ServingPrecision::kInt8;
  WritePod<uint8_t>(out, int8 ? 1 : 0);
}

struct PoolMeta {
  WrnConfig library_cfg;
  double expert_ks = 0.0;
  std::vector<std::vector<int>> tasks;
  bool int8 = false;
};

Status ReadPoolMeta(std::istream& in, bool has_precision, PoolMeta* meta) {
  POE_RETURN_NOT_OK(ReadWrnConfig(in, &meta->library_cfg));
  if (!ReadPod(in, &meta->expert_ks)) {
    return Status::Corruption("truncated pool meta");
  }
  int32_t num_tasks = 0;
  if (!ReadPod(in, &num_tasks) || num_tasks <= 0 || num_tasks > 100000) {
    return Status::Corruption("bad task count");
  }
  meta->tasks.resize(num_tasks);
  for (int t = 0; t < num_tasks; ++t) {
    int32_t count = 0;
    if (!ReadPod(in, &count) || count <= 0) {
      return Status::Corruption("bad task size");
    }
    meta->tasks[t].resize(count);
    for (int i = 0; i < count; ++i) {
      int32_t c = 0;
      if (!ReadPod(in, &c)) return Status::Corruption("truncated task");
      meta->tasks[t][i] = c;
    }
  }
  if (has_precision) {
    uint8_t precision_tag = 0;
    if (!ReadPod(in, &precision_tag) || precision_tag > 1) {
      return Status::Corruption("bad precision tag");
    }
    meta->int8 = precision_tag == 1;
  }
  return Status::OK();
}

// v3 module section payload: a per-module precision byte, then the state.
// The byte is per MODULE (not per pool) so a degraded int8 pool — where a
// failed conversion left some expert serving f32 — saves faithfully.
Status WriteModuleSection(std::ostream& out, Module& module) {
  const bool int8 = module.Int8WeightBytes() > 0;
  WritePod<uint8_t>(out, int8 ? 1 : 0);
  if (int8) return WriteInt8ModuleState(out, module);
  POE_RETURN_NOT_OK(WriteModuleState(out, module));
  WriteActScales(out, module);
  return Status::OK();
}

Status ReadModuleSection(std::istream& in, Module& module) {
  uint8_t precision_tag = 0;
  if (!ReadPod(in, &precision_tag) || precision_tag > 1) {
    return Status::Corruption("bad module precision tag");
  }
  if (precision_tag == 1) return ReadInt8ModuleState(in, module);
  POE_RETURN_NOT_OK(ReadModuleState(in, module));
  return ReadActScales(in, module);
}

// ---------------------------------------------------------------------------
// Crash-safe file replacement (POSIX): write to path+".tmp", fsync, rename
// over the target, fsync the parent directory. Readers observe either the
// old complete file or the new one, never a torn mixture.

#ifndef _WIN32

bool WriteAll(int fd, const char* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, data + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

void SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.empty() ? "/" : dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);  // best effort: the rename itself is already durable-ish
    ::close(fd);
  }
}

Status WriteFileAtomic(const std::string& path, const std::string& blob) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("cannot open " + tmp + ": " +
                           std::strerror(errno));
  }
  {
    // Injected write fault = crash mid-write: half the bytes land in the
    // tmp file and nothing is cleaned up. The committed file at `path`
    // must remain untouched and loadable — that is what the torn-write
    // recovery test asserts.
    const Status fault = PoeFaultHit("pool.save.write");
    if (!fault.ok()) {
      WriteAll(fd, blob.data(), blob.size() / 2);
      ::close(fd);
      return fault;
    }
  }
  if (!WriteAll(fd, blob.data(), blob.size())) {
    const Status s =
        Status::IoError("failed writing " + tmp + ": " +
                        std::strerror(errno));
    ::close(fd);
    std::remove(tmp.c_str());
    return s;
  }
  Status fault = PoeFaultHit("pool.save.sync");
  if (fault.ok() && ::fsync(fd) != 0) {
    fault = Status::IoError("fsync " + tmp + ": " + std::strerror(errno));
  }
  if (!fault.ok()) {
    ::close(fd);
    std::remove(tmp.c_str());
    return fault;
  }
  if (::close(fd) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("close " + tmp + ": " + std::strerror(errno));
  }
  fault = PoeFaultHit("pool.save.rename");
  if (!fault.ok()) {
    std::remove(tmp.c_str());
    return fault;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const Status s =
        Status::IoError("rename " + tmp + " -> " + path + ": " +
                        std::strerror(errno));
    std::remove(tmp.c_str());
    return s;
  }
  SyncParentDir(path);
  return Status::OK();
}

#else  // _WIN32

Status WriteFileAtomic(const std::string& path, const std::string& blob) {
  const std::string tmp = path + ".tmp";
  POE_RETURN_NOT_OK(PoeFaultHit("pool.save.write"));
  {
    std::ofstream file(tmp, std::ios::binary | std::ios::trunc);
    if (!file) return Status::IoError("cannot open " + tmp + " for writing");
    file.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    if (!file) {
      std::remove(tmp.c_str());
      return Status::IoError("failed writing " + tmp);
    }
  }
  POE_RETURN_NOT_OK(PoeFaultHit("pool.save.sync"));
  const Status fault = PoeFaultHit("pool.save.rename");
  if (!fault.ok()) {
    std::remove(tmp.c_str());
    return fault;
  }
  std::remove(path.c_str());  // rename does not replace on Windows
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("rename " + tmp + " -> " + path);
  }
  return Status::OK();
}

#endif  // _WIN32

// ---------------------------------------------------------------------------
// v3 section framing.

void AppendSection(std::string* blob, std::vector<uint32_t>* crcs,
                   uint32_t tag, const std::string& payload) {
  std::ostringstream frame;
  WritePod<uint32_t>(frame, tag);
  WritePod<uint64_t>(frame, static_cast<uint64_t>(payload.size()));
  const uint32_t crc = Crc32c(payload.data(), payload.size());
  WritePod<uint32_t>(frame, crc);
  *blob += frame.str();
  *blob += payload;
  if (crcs != nullptr) crcs->push_back(crc);
}

std::string BuildFooterPayload(const std::vector<uint32_t>& crcs) {
  std::ostringstream payload;
  WritePod<uint32_t>(payload, static_cast<uint32_t>(crcs.size()));
  WritePod<uint32_t>(payload,
                     Crc32c(crcs.data(), crcs.size() * sizeof(uint32_t)));
  return payload.str();
}

struct SectionView {
  uint32_t tag = 0;
  size_t offset = 0;  ///< payload start within the file bytes
  uint64_t len = 0;
  uint32_t crc_stored = 0;
  uint32_t crc_actual = 0;
  bool crc_ok = false;
};

const char* SectionName(uint32_t tag) {
  switch (tag) {
    case kTagMeta:
      return "meta";
    case kTagLibrary:
      return "library";
    case kTagExpert:
      return "expert";
    case kTagFooter:
      return "footer";
    default:
      return "unknown";
  }
}

// Walks the v3 section frames (after the 16-byte header). Fills `out`
// with every fully-framed section (CRCs computed but not enforced — fsck
// wants the per-section verdicts) and returns Corruption on structural
// damage: truncated frame, implausible count, trailing bytes, bad tag.
Status WalkSections(const std::string& bytes, uint32_t section_count,
                    std::vector<SectionView>* out) {
  if (section_count == 0 || section_count > 1000000) {
    return Status::Corruption("implausible section count " +
                              std::to_string(section_count));
  }
  size_t pos = sizeof(kMagic) + 2 * sizeof(uint32_t);
  for (uint32_t i = 0; i < section_count; ++i) {
    constexpr size_t kFrameHeader =
        sizeof(uint32_t) + sizeof(uint64_t) + sizeof(uint32_t);
    if (bytes.size() - pos < kFrameHeader) {
      return Status::Corruption("truncated section header (section " +
                                std::to_string(i) + ")");
    }
    SectionView view;
    std::memcpy(&view.tag, bytes.data() + pos, sizeof(uint32_t));
    std::memcpy(&view.len, bytes.data() + pos + sizeof(uint32_t),
                sizeof(uint64_t));
    std::memcpy(&view.crc_stored,
                bytes.data() + pos + sizeof(uint32_t) + sizeof(uint64_t),
                sizeof(uint32_t));
    pos += kFrameHeader;
    if (view.tag != kTagMeta && view.tag != kTagLibrary &&
        view.tag != kTagExpert && view.tag != kTagFooter) {
      return Status::Corruption("unknown section tag " +
                                std::to_string(view.tag));
    }
    if (view.len > bytes.size() - pos) {
      return Status::Corruption("truncated section payload (" +
                                std::string(SectionName(view.tag)) + ")");
    }
    view.offset = pos;
    view.crc_actual = Crc32c(bytes.data() + pos, view.len);
    view.crc_ok = view.crc_actual == view.crc_stored;
    pos += view.len;
    out->push_back(view);
  }
  if (pos != bytes.size()) {
    return Status::Corruption("trailing bytes after last section");
  }
  return Status::OK();
}

// Checks the commit footer: last section, correct tag, seals the count
// and the CRC-of-CRCs of every data section. A torn write that dropped
// the tail (or a header flip that shrank the count) fails here even when
// each surviving section's own CRC is intact.
Status CheckFooter(const std::vector<SectionView>& sections,
                   const std::string& bytes) {
  if (sections.empty() || sections.back().tag != kTagFooter) {
    return Status::Corruption("missing commit footer");
  }
  const SectionView& footer = sections.back();
  if (!footer.crc_ok) return Status::Corruption("footer checksum mismatch");
  if (footer.len != 2 * sizeof(uint32_t)) {
    return Status::Corruption("bad footer size");
  }
  uint32_t sealed_count = 0, sealed_crc = 0;
  std::memcpy(&sealed_count, bytes.data() + footer.offset, sizeof(uint32_t));
  std::memcpy(&sealed_crc,
              bytes.data() + footer.offset + sizeof(uint32_t),
              sizeof(uint32_t));
  const uint32_t data_count = static_cast<uint32_t>(sections.size()) - 1;
  if (sealed_count != data_count) {
    return Status::Corruption("footer section count mismatch");
  }
  std::vector<uint32_t> crcs;
  crcs.reserve(data_count);
  for (uint32_t i = 0; i < data_count; ++i) {
    crcs.push_back(sections[i].crc_stored);
  }
  if (Crc32c(crcs.data(), crcs.size() * sizeof(uint32_t)) != sealed_crc) {
    return Status::Corruption("footer CRC-of-CRCs mismatch");
  }
  return Status::OK();
}

// Reads the whole file into memory. kNotFound when missing; the
// pool.load.* fault sites model open and read failures.
Result<std::string> ReadFileBytes(const std::string& path) {
  POE_RETURN_NOT_OK(PoeFaultHit("pool.load.open"));
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::NotFound("cannot open " + path);
  std::ostringstream all;
  all << file.rdbuf();
  POE_RETURN_NOT_OK(PoeFaultHit("pool.load.read"));
  return all.str();
}

// Rebuilds the pool from decoded meta plus a per-module section reader.
// `read_module` is called with the library first, then each expert head
// in task order.
template <typename ReadModuleFn>
Result<ExpertPool> AssemblePool(PoolMeta meta, ReadModuleFn read_module) {
  POE_ASSIGN_OR_RETURN(ClassHierarchy hierarchy,
                       ClassHierarchy::FromTasks(std::move(meta.tasks)));
  // Rebuild module skeletons from the configs, then load states into them
  // (for int8 modules the quantized state is adopted directly — the f32
  // skeleton weights are released without ever being dequantized into).
  Rng rng(0);  // weights are overwritten by the load
  std::shared_ptr<Sequential> library =
      BuildLibraryPart(meta.library_cfg, rng);
  POE_RETURN_NOT_OK(read_module(0, *library));
  library->SetTrainable(false);

  std::vector<std::shared_ptr<Sequential>> experts;
  const int num_tasks = hierarchy.num_tasks();
  for (int t = 0; t < num_tasks; ++t) {
    WrnConfig expert_cfg = meta.library_cfg;
    expert_cfg.ks = meta.expert_ks;
    expert_cfg.num_classes =
        static_cast<int>(hierarchy.task_classes(t).size());
    auto head = BuildExpertPart(expert_cfg,
                                meta.library_cfg.conv3_channels(), rng);
    POE_RETURN_NOT_OK(read_module(t + 1, *head));
    experts.push_back(std::move(head));
  }
  ExpertPool pool(meta.library_cfg, meta.expert_ks, std::move(hierarchy),
                  std::move(library), std::move(experts));
  if (meta.int8) {
    // Re-applies the pool-level precision. Already-converted modules are
    // untouched (idempotent); an f32 module from a degraded save gets its
    // conversion retried here, healing the degradation on reload.
    POE_RETURN_NOT_OK(pool.SetServingPrecision(ServingPrecision::kInt8));
  }
  return pool;
}

Result<ExpertPool> LoadLegacyPool(const std::string& bytes, uint32_t version,
                                  const std::string& path) {
  constexpr size_t kHeader =
      sizeof(kMagic) + sizeof(uint32_t) + sizeof(uint64_t);
  if (bytes.size() < kHeader) {
    return Status::Corruption("truncated pool header in " + path);
  }
  uint64_t checksum = 0;
  std::memcpy(&checksum, bytes.data() + sizeof(kMagic) + sizeof(uint32_t),
              sizeof(uint64_t));
  const std::string payload = bytes.substr(kHeader);
  if (Fnv1a(payload) != checksum) {
    return Status::Corruption("pool checksum mismatch in " + path);
  }
  std::istringstream in(payload);
  PoolMeta meta;
  POE_RETURN_NOT_OK(ReadPoolMeta(in, /*has_precision=*/version >= 2, &meta));
  const bool int8 = meta.int8;
  return AssemblePool(std::move(meta), [&](int /*index*/, Module& module) {
    if (int8) return ReadInt8ModuleState(in, module);
    POE_RETURN_NOT_OK(ReadModuleState(in, module));
    if (version >= 2) return ReadActScales(in, module);
    return Status::OK();
  });
}

}  // namespace

int64_t ModuleStateBytes(Module& module) {
  int64_t bytes = 0;
  for (Parameter* p : module.Parameters()) bytes += p->value.nbytes();
  std::vector<Tensor*> buffers;
  module.CollectBuffers(&buffers);
  for (Tensor* b : buffers) bytes += b->nbytes();
  return bytes;
}

Result<uint32_t> ModuleContentCrc(Module& module) {
  std::ostringstream section;
  POE_RETURN_NOT_OK(WriteModuleSection(section, module));
  const std::string bytes = section.str();
  return Crc32c(bytes.data(), bytes.size());
}

Result<std::string> SerializeModulePayload(Module& module) {
  std::ostringstream section;
  POE_RETURN_NOT_OK(WriteModuleSection(section, module));
  return section.str();
}

Status DeserializeModulePayload(const std::string& payload, Module& module) {
  std::istringstream in(payload);
  POE_RETURN_NOT_OK(ReadModuleSection(in, module));
  // Trailing garbage means the payload was not produced by the serializer
  // for THIS architecture — reject it rather than silently ignore bytes.
  if (in.peek() != std::char_traits<char>::eof()) {
    return Status::Corruption("module payload has trailing bytes");
  }
  return Status::OK();
}

Status SaveExpertPool(const ExpertPool& pool, const std::string& path) {
  std::string blob;
  std::vector<uint32_t> crcs;
  {
    std::ostringstream header;
    header.write(kMagic, sizeof(kMagic));
    WritePod<uint32_t>(header, kVersion);
    // Data sections + the footer.
    WritePod<uint32_t>(header,
                       static_cast<uint32_t>(2 + pool.num_experts() + 1));
    blob = header.str();
  }
  {
    std::ostringstream meta;
    WritePoolMeta(meta, pool);
    AppendSection(&blob, &crcs, kTagMeta, meta.str());
  }
  {
    std::ostringstream library;
    POE_RETURN_NOT_OK(WriteModuleSection(library, *pool.library()));
    AppendSection(&blob, &crcs, kTagLibrary, library.str());
  }
  for (int t = 0; t < pool.num_experts(); ++t) {
    std::ostringstream expert;
    POE_RETURN_NOT_OK(WriteModuleSection(expert, *pool.expert(t)));
    AppendSection(&blob, &crcs, kTagExpert, expert.str());
  }
  AppendSection(&blob, nullptr, kTagFooter, BuildFooterPayload(crcs));
  return WriteFileAtomic(path, blob);
}

Result<ExpertPool> LoadExpertPool(const std::string& path) {
  POE_ASSIGN_OR_RETURN(std::string bytes, ReadFileBytes(path));
  constexpr size_t kMinHeader = sizeof(kMagic) + sizeof(uint32_t);
  if (bytes.size() < kMinHeader ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad pool magic in " + path);
  }
  uint32_t version = 0;
  std::memcpy(&version, bytes.data() + sizeof(kMagic), sizeof(uint32_t));
  if (version == kVersionF32 || version == kVersionFnv) {
    return LoadLegacyPool(bytes, version, path);
  }
  if (version != kVersion) {
    return Status::Corruption("unsupported pool version " +
                              std::to_string(version));
  }
  if (bytes.size() < kMinHeader + sizeof(uint32_t)) {
    return Status::Corruption("truncated pool header in " + path);
  }
  uint32_t section_count = 0;
  std::memcpy(&section_count, bytes.data() + kMinHeader, sizeof(uint32_t));
  std::vector<SectionView> sections;
  POE_RETURN_NOT_OK(WalkSections(bytes, section_count, &sections));
  for (const SectionView& s : sections) {
    if (!s.crc_ok) {
      return Status::Corruption(std::string(SectionName(s.tag)) +
                                " section checksum mismatch in " + path);
    }
  }
  POE_RETURN_NOT_OK(CheckFooter(sections, bytes));

  // Expected shape: meta, library, expert x N, footer.
  if (sections.size() < 3 || sections[0].tag != kTagMeta ||
      sections[1].tag != kTagLibrary) {
    return Status::Corruption("unexpected section layout in " + path);
  }
  std::istringstream meta_in(
      bytes.substr(sections[0].offset, sections[0].len));
  PoolMeta meta;
  POE_RETURN_NOT_OK(ReadPoolMeta(meta_in, /*has_precision=*/true, &meta));
  const size_t num_experts = sections.size() - 3;
  if (num_experts != meta.tasks.size()) {
    return Status::Corruption("expert section count mismatch in " + path);
  }
  for (size_t i = 0; i < num_experts; ++i) {
    if (sections[2 + i].tag != kTagExpert) {
      return Status::Corruption("unexpected section layout in " + path);
    }
  }
  return AssemblePool(std::move(meta), [&](int index, Module& module) {
    const SectionView& s = sections[static_cast<size_t>(index) + 1];
    std::istringstream in(bytes.substr(s.offset, s.len));
    return ReadModuleSection(in, module);
  });
}

Status SaveExpertPoolLegacy(const ExpertPool& pool, const std::string& path,
                            uint32_t version) {
  if (version != kVersionF32 && version != kVersionFnv) {
    return Status::InvalidArgument("legacy writer supports versions 1-2");
  }
  const bool int8 = pool.serving_precision() == ServingPrecision::kInt8;
  if (int8 && version == kVersionF32) {
    return Status::InvalidArgument("version 1 cannot represent int8 pools");
  }
  std::ostringstream payload;
  if (version >= 2) {
    WritePoolMeta(payload, pool);
  } else {
    // v1 meta lacks the precision tag.
    WriteWrnConfig(payload, pool.library_config());
    WritePod<double>(payload, pool.expert_ks());
    const ClassHierarchy& h = pool.hierarchy();
    WritePod<int32_t>(payload, h.num_tasks());
    for (int t = 0; t < h.num_tasks(); ++t) {
      const auto& classes = h.task_classes(t);
      WritePod<int32_t>(payload, static_cast<int32_t>(classes.size()));
      for (int c : classes) WritePod<int32_t>(payload, c);
    }
  }
  auto write_module = [&](Module& module) -> Status {
    if (int8) return WriteInt8ModuleState(payload, module);
    POE_RETURN_NOT_OK(WriteModuleState(payload, module));
    if (version >= 2) WriteActScales(payload, module);
    return Status::OK();
  };
  POE_RETURN_NOT_OK(write_module(*pool.library()));
  for (int t = 0; t < pool.num_experts(); ++t) {
    POE_RETURN_NOT_OK(write_module(*pool.expert(t)));
  }

  const std::string bytes = payload.str();
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return Status::IoError("cannot open " + path + " for writing");
  file.write(kMagic, sizeof(kMagic));
  WritePod<uint32_t>(file, version);
  WritePod<uint64_t>(file, Fnv1a(bytes));
  file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!file) return Status::IoError("failed writing " + path);
  return Status::OK();
}

Result<PoolFsckReport> FsckExpertPool(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::NotFound("cannot open " + path);
  std::ostringstream all;
  all << file.rdbuf();
  const std::string bytes = all.str();

  PoolFsckReport report;
  constexpr size_t kMinHeader = sizeof(kMagic) + sizeof(uint32_t);
  if (bytes.size() < kMinHeader ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    report.error = "bad pool magic";
    return report;
  }
  std::memcpy(&report.version, bytes.data() + sizeof(kMagic),
              sizeof(uint32_t));

  if (report.version == kVersionF32 || report.version == kVersionFnv) {
    // Legacy layout: one FNV-64 checksum over the whole payload.
    constexpr size_t kHeader = kMinHeader + sizeof(uint64_t);
    if (bytes.size() < kHeader) {
      report.error = "truncated pool header";
      return report;
    }
    uint64_t checksum = 0;
    std::memcpy(&checksum, bytes.data() + kMinHeader, sizeof(uint64_t));
    PoolSectionReport section;
    section.name = "payload (legacy v" + std::to_string(report.version) + ")";
    section.bytes = static_cast<int64_t>(bytes.size() - kHeader);
    section.crc_ok = Fnv1a(bytes.substr(kHeader)) == checksum;
    if (!section.crc_ok) section.detail = "FNV checksum mismatch";
    report.sections.push_back(std::move(section));
    report.ok = report.sections[0].crc_ok;
    if (!report.ok) report.error = "payload checksum mismatch";
    return report;
  }
  if (report.version != kVersion) {
    report.error = "unsupported pool version " +
                   std::to_string(report.version);
    return report;
  }
  if (bytes.size() < kMinHeader + sizeof(uint32_t)) {
    report.error = "truncated pool header";
    return report;
  }
  uint32_t section_count = 0;
  std::memcpy(&section_count, bytes.data() + kMinHeader, sizeof(uint32_t));
  std::vector<SectionView> sections;
  const Status walk = WalkSections(bytes, section_count, &sections);
  int expert_index = 0;
  for (const SectionView& s : sections) {
    PoolSectionReport section;
    section.tag = s.tag;
    section.name = s.tag == kTagExpert
                       ? "expert[" + std::to_string(expert_index++) + "]"
                       : SectionName(s.tag);
    section.bytes = static_cast<int64_t>(s.len);
    section.crc_ok = s.crc_ok;
    if (!s.crc_ok) section.detail = "CRC32C mismatch";
    report.sections.push_back(std::move(section));
  }
  if (!walk.ok()) {
    report.error = walk.message();
    return report;
  }
  for (const PoolSectionReport& s : report.sections) {
    if (!s.crc_ok) {
      report.error = s.name + ": " + s.detail;
      return report;
    }
  }
  const Status footer = CheckFooter(sections, bytes);
  if (!footer.ok()) {
    report.error = footer.message();
    return report;
  }
  report.ok = true;
  return report;
}

namespace {
constexpr char kWrnMagic[8] = {'P', 'O', 'E', 'W', 'R', 'N', '0', '1'};
}  // namespace

Status SaveWrnModel(Module& wrn, const WrnConfig& config,
                    const std::string& path) {
  std::ostringstream payload;
  WriteWrnConfig(payload, config);
  POE_RETURN_NOT_OK(WriteModuleState(payload, wrn));
  const std::string bytes = payload.str();
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return Status::IoError("cannot open " + path + " for writing");
  file.write(kWrnMagic, sizeof(kWrnMagic));
  WritePod<uint64_t>(file, Fnv1a(bytes));
  file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!file) return Status::IoError("failed writing " + path);
  return Status::OK();
}

Result<std::shared_ptr<Wrn>> LoadWrnModel(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::NotFound("cannot open " + path);
  char magic[8];
  file.read(magic, sizeof(magic));
  if (!file || std::memcmp(magic, kWrnMagic, sizeof(kWrnMagic)) != 0) {
    return Status::Corruption("bad WRN magic in " + path);
  }
  uint64_t checksum = 0;
  if (!ReadPod(file, &checksum)) return Status::Corruption("truncated WRN");
  std::ostringstream rest;
  rest << file.rdbuf();
  const std::string bytes = rest.str();
  if (Fnv1a(bytes) != checksum) {
    return Status::Corruption("WRN checksum mismatch in " + path);
  }
  std::istringstream in(bytes);
  WrnConfig cfg;
  POE_RETURN_NOT_OK(ReadWrnConfig(in, &cfg));
  Rng rng(0);
  auto model = std::make_shared<Wrn>(cfg, rng);
  POE_RETURN_NOT_OK(ReadModuleState(in, *model));
  return model;
}

}  // namespace poe

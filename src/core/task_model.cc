#include "core/task_model.h"

#include <utility>

#include "tensor/ops.h"
#include "util/logging.h"

namespace poe {

namespace {

std::vector<ExpertBranchHandle> WrapAdHoc(std::vector<ExpertBranch> payloads) {
  std::vector<ExpertBranchHandle> handles;
  handles.reserve(payloads.size());
  for (ExpertBranch& b : payloads) {
    handles.push_back(std::make_shared<const ExpertBranch>(std::move(b)));
  }
  return handles;
}

}  // namespace

TaskModel::TaskModel(std::shared_ptr<Sequential> library,
                     WrnConfig library_config,
                     std::vector<ExpertBranchHandle> branches,
                     ServingPrecision precision)
    : library_(std::move(library)),
      library_config_(library_config),
      branches_(std::move(branches)),
      precision_(precision) {
  POE_CHECK(library_ != nullptr);
  POE_CHECK(!branches_.empty());
  for (const ExpertBranchHandle& b : branches_) {
    POE_CHECK(b != nullptr && b->head != nullptr);
    global_classes_.insert(global_classes_.end(), b->classes.begin(),
                           b->classes.end());
    if (precision_ == ServingPrecision::kInt8 &&
        b->precision == ServingPrecision::kFloat32) {
      degraded_branches_++;
    }
  }
  trunk_degraded_ = precision_ == ServingPrecision::kInt8 &&
                    library_->Int8WeightBytes() == 0;
}

TaskModel::TaskModel(std::shared_ptr<Sequential> library,
                     WrnConfig library_config, std::vector<Branch> branches,
                     ServingPrecision precision)
    : TaskModel(std::move(library), library_config,
                WrapAdHoc(std::move(branches)), precision) {}

Tensor TaskModel::TrunkFeatures(const Tensor& images) {
  return library_->Forward(images, /*training=*/false);
}

Tensor TaskModel::LogitsFromFeatures(const Tensor& features) {
  std::vector<Tensor> parts;
  parts.reserve(branches_.size());
  for (const ExpertBranchHandle& b : branches_) {
    parts.push_back(b->head->Forward(features, /*training=*/false));
  }
  return ConcatColumns(parts);
}

Tensor TaskModel::Logits(const Tensor& images) {
  // Knowledge consolidation by logit concatenation (Section 4.2): the
  // library runs once, every expert branches off its feature map, and the
  // branch logits form the unified logit s_Q.
  return LogitsFromFeatures(TrunkFeatures(images));
}

std::vector<int> TaskModel::Predict(const Tensor& images) {
  Tensor logits = Logits(images);
  std::vector<int> out(logits.dim(0));
  for (int64_t r = 0; r < logits.dim(0); ++r) {
    out[r] = global_classes_[ArgmaxRow(logits, r)];
  }
  return out;
}

ModelCost TaskModel::Cost(int64_t in_h, int64_t in_w) const {
  std::vector<WrnConfig> expert_configs;
  expert_configs.reserve(branches_.size());
  for (const ExpertBranchHandle& b : branches_) {
    expert_configs.push_back(b->config);
  }
  return CostOfBranched(library_config_, expert_configs, in_h, in_w);
}

int64_t TaskModel::NumParams() const {
  int64_t n = library_->NumParams();
  for (const ExpertBranchHandle& b : branches_) n += b->head->NumParams();
  return n;
}

int64_t TaskModel::StateBytes() const {
  int64_t bytes = HeldStateBytes(*library_);
  for (const ExpertBranchHandle& b : branches_) {
    bytes += HeldStateBytes(*b->head);
  }
  return bytes;
}

}  // namespace poe

// The realtime model-querying service of the introduction's AIaaS scenario.
#ifndef POE_CORE_QUERY_SERVICE_H_
#define POE_CORE_QUERY_SERVICE_H_

#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/expert_pool.h"
#include "util/result.h"

namespace poe {

/// Service-side query statistics.
struct QueryStats {
  int64_t num_queries = 0;
  int64_t cache_hits = 0;
  double total_ms = 0.0;
  double max_ms = 0.0;
  /// Precision the pool serves at and the weight bytes it holds (packed
  /// int8 + remaining f32 state) — the footprint side of int8 serving.
  ServingPrecision precision = ServingPrecision::kFloat32;
  int64_t pool_bytes = 0;

  double avg_ms() const {
    return num_queries > 0 ? total_ms / num_queries : 0.0;
  }
};

/// Thread-safe front-end over an ExpertPool: clients submit composite
/// tasks, the service assembles (or serves from an LRU cache) the
/// task-specific model and records latency. Assembly is train-free, so
/// serving is dominated by pointer wiring - this is the system's headline
/// property (Figures 6-7).
class ModelQueryService {
 public:
  /// `cache_capacity` = 0 disables the assembled-model cache. `precision`
  /// = kInt8 converts the pool to dequant-free int8 serving up front, so
  /// every assembled model runs the quantized inference path; kFloat32
  /// (default) leaves the pool at whatever precision it already serves.
  explicit ModelQueryService(
      ExpertPool pool, size_t cache_capacity = 0,
      ServingPrecision precision = ServingPrecision::kFloat32);

  /// Builds M(Q) for the composite task. Task id order does not affect
  /// caching (keys are sorted) but does affect logit column order of the
  /// returned model.
  Result<std::shared_ptr<TaskModel>> Query(const std::vector<int>& task_ids);

  QueryStats stats() const;
  const ExpertPool& pool() const { return pool_; }
  size_t cache_size() const;

 private:
  using CacheKey = std::vector<int>;

  ExpertPool pool_;
  size_t cache_capacity_;
  mutable std::mutex mu_;
  QueryStats stats_;
  // LRU: most recent at front.
  std::list<std::pair<CacheKey, std::shared_ptr<TaskModel>>> lru_;
  std::map<CacheKey,
           std::list<std::pair<CacheKey, std::shared_ptr<TaskModel>>>::
               iterator>
      index_;
};

}  // namespace poe

#endif  // POE_CORE_QUERY_SERVICE_H_

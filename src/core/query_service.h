// The realtime model-querying service of the introduction's AIaaS scenario.
#ifndef POE_CORE_QUERY_SERVICE_H_
#define POE_CORE_QUERY_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/expert_pool.h"
#include "serve/metrics.h"
#include "serve/model_cache.h"
#include "util/histogram.h"
#include "util/result.h"
#include "util/retry.h"

namespace poe {

/// Service-side query statistics (the compact legacy view; serve_stats()
/// is the full metrics surface).
struct QueryStats {
  int64_t num_queries = 0;
  int64_t cache_hits = 0;
  double total_ms = 0.0;
  double max_ms = 0.0;
  /// Precision the pool serves at and the weight bytes it holds (packed
  /// int8 + remaining f32 state) — the footprint side of int8 serving.
  ServingPrecision precision = ServingPrecision::kFloat32;
  int64_t pool_bytes = 0;

  double avg_ms() const {
    return num_queries > 0 ? total_ms / num_queries : 0.0;
  }
};

/// Thread-safe front-end over an ExpertPool: clients submit composite
/// tasks, the service assembles (or serves from the sharded model cache)
/// the task-specific model and records latency. Assembly is train-free, so
/// serving is dominated by pointer wiring - this is the system's headline
/// property (Figures 6-7).
///
/// Concurrency: the cache is sharded (hash of the canonical key picks the
/// shard, per-shard mutexes) with single-flight assembly, and
/// `ExpertPool::Query` always runs outside every lock - concurrent misses
/// on different keys assemble in parallel, concurrent misses on the same
/// key share one assembly, and hits never wait behind an assembly.
class ModelQueryService {
 public:
  /// `cache_capacity` = 0 disables the assembled-model cache. `precision`
  /// = kInt8 converts the pool to dequant-free int8 serving up front, so
  /// every assembled model runs the quantized inference path; kFloat32
  /// (default) leaves the pool at whatever precision it already serves.
  /// `cache_shards` partitions the cache's key space (>= 1; more shards =
  /// less lock contention, slightly coarser global LRU).
  explicit ModelQueryService(
      ExpertPool pool, size_t cache_capacity = 0,
      ServingPrecision precision = ServingPrecision::kFloat32,
      int cache_shards = 8);

  /// Builds M(Q) for the composite task. Task ids are canonicalized
  /// (sorted, deduplicated): order and repeats do not affect which cache
  /// entry serves the query ({2,1,1}, {1,2} and {2,1} share one entry),
  /// and branch/logit-column order always follows sorted task ids - every
  /// spelling observes one deterministic model. Map columns to classes
  /// through the model's global_classes().
  Result<std::shared_ptr<TaskModel>> Query(const std::vector<int>& task_ids);

  /// Deadline-aware form: the remaining budget bounds cache assembly (an
  /// expired deadline fails with kDeadlineExceeded before any work), and
  /// transient assembly failures are retried with backoff at two layers —
  /// per expert inside the pool and once around the whole assembly (the
  /// service layer catches faults the pool's per-expert loop exhausted).
  /// Retries taken are counted into serve_stats().assembly_retries, and a
  /// degraded answering model bumps degraded_queries. Error results are
  /// never cached, so a fault-failed key does not stick.
  Result<std::shared_ptr<TaskModel>> Query(const std::vector<int>& task_ids,
                                           const Deadline& deadline);

  QueryStats stats() const;
  /// Full serving metrics: latency percentiles, QPS, per-shard hit rates.
  ServeStats serve_stats() const;
  const ExpertPool& pool() const { return pool_; }
  size_t cache_size() const { return cache_.size(); }

 private:
  ExpertPool pool_;
  ShardedModelCache cache_;
  LatencyHistogram latency_;
  QpsWindow qps_;
  std::atomic<int64_t> assembly_retries_{0};
  std::atomic<int64_t> degraded_queries_{0};
};

}  // namespace poe

#endif  // POE_CORE_QUERY_SERVICE_H_

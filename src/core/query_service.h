// The realtime model-querying service of the introduction's AIaaS scenario.
#ifndef POE_CORE_QUERY_SERVICE_H_
#define POE_CORE_QUERY_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/expert_pool.h"
#include "core/request.h"
#include "core/versioned_pool.h"
#include "serve/metrics.h"
#include "serve/model_cache.h"
#include "util/histogram.h"
#include "util/result.h"
#include "util/retry.h"

namespace poe {

/// Service-side query statistics (the compact legacy view; serve_stats()
/// is the full metrics surface).
struct QueryStats {
  int64_t num_queries = 0;
  int64_t cache_hits = 0;
  double total_ms = 0.0;
  double max_ms = 0.0;
  /// Precision the pool serves at and the weight bytes it holds (packed
  /// int8 + remaining f32 state) — the footprint side of int8 serving.
  ServingPrecision precision = ServingPrecision::kFloat32;
  int64_t pool_bytes = 0;

  double avg_ms() const {
    return num_queries > 0 ? total_ms / num_queries : 0.0;
  }
};

/// Thread-safe front-end over a VersionedPool: clients submit composite
/// tasks, the service assembles (or serves from the sharded model cache)
/// the task-specific model and records latency. Assembly is train-free, so
/// serving is dominated by pointer wiring - this is the system's headline
/// property (Figures 6-7).
///
/// Concurrency: the cache is sharded (hash of the canonical key picks the
/// shard, per-shard mutexes) with single-flight assembly, and
/// `ExpertPool::Query` always runs outside every lock - concurrent misses
/// on different keys assemble in parallel, concurrent misses on the same
/// key share one assembly, and hits never wait behind an assembly.
///
/// Live upgrade: UpgradePool() atomically publishes a new pool generation
/// while in-flight queries finish on the old one (each assembly pins ONE
/// generation handle for its whole run). The flight cache then drops ONLY
/// the keys whose expert set changed between generations — unchanged
/// composites keep hitting across the swap — and a stale model that an
/// in-flight assembly inserts after the sweep is caught by the cache's
/// validate hook on its first would-be hit.
class ModelQueryService {
 public:
  /// `cache_capacity` = 0 disables the assembled-model cache. `precision`
  /// = kInt8 converts the pool to dequant-free int8 serving up front, so
  /// every assembled model runs the quantized inference path; kFloat32
  /// (default) leaves the pool at whatever precision it already serves.
  /// `cache_shards` partitions the cache's key space (>= 1; more shards =
  /// less lock contention, slightly coarser global LRU).
  explicit ModelQueryService(
      ExpertPool pool, size_t cache_capacity = 0,
      ServingPrecision precision = ServingPrecision::kFloat32,
      int cache_shards = 8);

  /// Builds M(Q) for the composite task. Task ids are canonicalized
  /// (sorted, deduplicated): order and repeats do not affect which cache
  /// entry serves the query ({2,1,1}, {1,2} and {2,1} share one entry),
  /// and branch/logit-column order always follows sorted task ids - every
  /// spelling observes one deterministic model. Map columns to classes
  /// through the model's global_classes().
  Result<std::shared_ptr<TaskModel>> Query(const std::vector<int>& task_ids);

  /// Deadline-aware form: the remaining budget bounds cache assembly (an
  /// expired deadline fails with kDeadlineExceeded before any work), and
  /// transient assembly failures are retried with backoff at two layers —
  /// per expert inside the pool and once around the whole assembly (the
  /// service layer catches faults the pool's per-expert loop exhausted).
  /// Retries taken are counted into serve_stats().assembly_retries, and a
  /// degraded answering model bumps degraded_queries. Error results are
  /// never cached, so a fault-failed key does not stick.
  Result<std::shared_ptr<TaskModel>> Query(const std::vector<int>& task_ids,
                                           const Deadline& deadline);

  /// Canonical-request form: validates through ValidatePoolRequest (the
  /// one shared admission check), derives the deadline from deadline_ms,
  /// and accounts a stale generation pin (request.generation set but not
  /// the generation that answers) into stale_generation_queries.
  Result<std::shared_ptr<TaskModel>> Query(const PoolRequest& request);

  /// Atomically publishes `next` as the new serving generation. In-flight
  /// queries complete on the generation they pinned; new queries (and
  /// assemblies) see `next` immediately. Only cache keys whose expert set
  /// CHANGED between the generations are invalidated (the count lands in
  /// serve_stats().cache_keys_invalidated); unchanged composites keep
  /// hitting, served by the old generation's models — safe because their
  /// masters were adopted by pointer into the new generation. Precision
  /// is a service invariant: an f32 `next` under an int8 service is
  /// converted, an int8 `next` under an f32 service is rejected.
  Result<GenerationDiff> UpgradePool(ExpertPool next);

  /// The serving generation now (1 + number of successful upgrades).
  uint64_t generation() const { return versioned_.generation(); }

  /// Pins the current generation (for callers that need a consistent pool
  /// view across several calls — e.g. tests asserting on byte counters).
  PoolGenerationHandle PinGeneration() const { return versioned_.Current(); }

  /// Accounts requests answered by a different generation than the one
  /// they pinned. The InferenceServer calls this at delivery (it knows
  /// the answering model); direct Query(PoolRequest) calls it internally.
  void NoteStaleGeneration(int64_t n = 1) {
    stale_generation_queries_.fetch_add(n, std::memory_order_relaxed);
  }

  QueryStats stats() const;
  /// Full serving metrics: latency percentiles, QPS, per-shard hit rates,
  /// and the generation counters (generation, generations_swapped,
  /// cache_keys_invalidated, stale_generation_queries).
  ServeStats serve_stats() const;

  /// The CURRENT generation's pool (compat shim for pre-generation call
  /// sites). The reference stays valid until the next UpgradePool; callers
  /// that may race an upgrade should PinGeneration() instead.
  const ExpertPool& pool() const { return versioned_.Current()->pool; }

  size_t cache_size() const { return cache_.size(); }

 private:
  Result<std::shared_ptr<TaskModel>> QueryInternal(
      const std::vector<int>& task_ids, const Deadline& deadline);

  VersionedPool versioned_;
  ShardedModelCache cache_;
  LatencyHistogram latency_;
  QpsWindow qps_;
  std::atomic<int64_t> assembly_retries_{0};
  std::atomic<int64_t> degraded_queries_{0};
  std::atomic<int64_t> stale_generation_queries_{0};
};

}  // namespace poe

#endif  // POE_CORE_QUERY_SERVICE_H_

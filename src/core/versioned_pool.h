// VersionedPool: immutable, refcounted pool generations with atomic swap —
// the zero-downtime mutation layer of the serving stack.
//
// Production pools change under traffic: experts get retrained,
// re-quantized, added, retired. A generation is an immutable snapshot of
// the whole expert library (ExpertStore + trunk + calibration state,
// i.e. one ExpertPool) tagged with a monotonically increasing id.
// Swap() publishes a new generation atomically: queries that already
// pinned the old generation finish on it — its refcounted ExpertBranch
// handles keep every module they need alive — and the old generation's
// memory is released when the last reference drops, which the existing
// refcount machinery guarantees without any new lifetime code.
//
// The swap DIFFS the generations by content, not by identity: each
// expert's fingerprint is the CRC32C of its v3 serialization section (the
// exact bytes SaveExpertPool would checksum — weights, precision,
// activation scales) extended with its class list. Experts whose
// fingerprint is unchanged ADOPT the old generation's master module
// before publish, so unchanged weights are shared by pointer across
// generations (no duplication, prepacked GEMM panels stay warm) and the
// trunk keeps pointer identity when the library is unchanged — serving-
// layer trunk fusion keeps batching straight across a swap.
//
// The diff also drives flight-cache invalidation upstream
// (ModelQueryService): only composite keys naming a changed expert are
// dropped; unchanged composites keep hitting. The rule is the per-expert
// change table `last_changed` — see GenerationCoversKey.
#ifndef POE_CORE_VERSIONED_POOL_H_
#define POE_CORE_VERSIONED_POOL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/expert_pool.h"
#include "util/result.h"

namespace poe {

/// One immutable pool snapshot. Handles (shared_ptr<const PoolGeneration>)
/// pin the whole snapshot: the pool, its store, and its masters stay alive
/// until the last handle AND the last ExpertBranch released. Mutating the
/// pool through a handle is a contract violation (hence const).
struct PoolGeneration {
  /// 1 for the initial pool; +1 per successful Swap (no-ops included).
  uint64_t id = 0;
  ExpertPool pool;
  /// Content fingerprints backing the generation diff: CRC32C over each
  /// module's v3 serialization section (+ class list for experts), so a
  /// weight, precision, or activation-scale change all register.
  uint32_t library_crc = 0;
  std::vector<uint32_t> expert_crcs;
  /// last_changed[t] = generation id in which expert t's content last
  /// changed (== this generation's id for changed/added experts, carried
  /// forward for unchanged ones). The cache-invalidation rule in one
  /// line: a model assembled at generation g still serves key K iff every
  /// t in K exists here with last_changed[t] <= g.
  std::vector<uint64_t> last_changed;

  PoolGeneration(uint64_t id_in, ExpertPool pool_in)
      : id(id_in), pool(std::move(pool_in)) {}
};

using PoolGenerationHandle = std::shared_ptr<const PoolGeneration>;

/// What a Swap found when diffing old against new — returned to callers
/// (poectl prints it) and the basis for selective cache invalidation.
struct GenerationDiff {
  uint64_t from = 0;
  uint64_t to = 0;
  std::vector<int> changed;  ///< ids present in both, content differs
  std::vector<int> added;    ///< ids new in `to`
  std::vector<int> removed;  ///< ids dropped in `to`
  int unchanged = 0;         ///< ids present in both, content identical
  bool library_changed = false;

  /// True when nothing changed content-wise (the generation id still
  /// advanced — a no-op upgrade is published, it just invalidates nothing
  /// and serves bitwise-identical results).
  bool noop() const {
    return changed.empty() && added.empty() && removed.empty() &&
           !library_changed;
  }
  std::string ToString() const;
};

/// True when a model assembled at generation `model_generation` still
/// names the same expert content, for every id of (canonical) `key`, in
/// generation `gen`. Unversioned models (generation 0) never validate.
bool GenerationCoversKey(const PoolGeneration& gen,
                         const std::vector<int>& key,
                         uint64_t model_generation);

/// The facade: holds the current generation, swaps in new ones. Reads
/// (Current) are a mutex-protected shared_ptr copy — cheap and wait-free
/// in practice; Swaps serialize against each other. All methods are
/// thread-safe.
class VersionedPool {
 public:
  /// Wraps `initial` as generation 1. Fingerprinting a healthy pool
  /// cannot fail; a pool whose modules refuse to serialize is unusable
  /// and CHECK-fails here rather than serving undiffable generations.
  explicit VersionedPool(ExpertPool initial);

  /// The serving generation now. Callers that need a consistent view
  /// across several operations (assemble, stamp, account) pin ONE handle
  /// and use it throughout; a concurrent Swap never mutates a published
  /// generation.
  PoolGenerationHandle Current() const;

  /// Atomically publishes `next` as the new current generation.
  ///
  /// Precision policy: serving precision is an invariant of the facade.
  /// An f32 `next` arriving while the current generation serves int8 is
  /// converted (same path as ModelQueryService's constructor); an int8
  /// `next` arriving while current serves f32 is rejected with
  /// FailedPrecondition (int8 conversion is irreversible, so the facade
  /// cannot go back — and transports pin the precision at startup).
  ///
  /// Unchanged experts (and an unchanged library) adopt the old
  /// generation's master modules before publish; the new pool is
  /// prepacked before it becomes visible. In-flight queries pinned to the
  /// old generation are untouched. Returns the content diff.
  Result<GenerationDiff> Swap(ExpertPool next);

  /// Id of the current generation (== 1 + generations_swapped()).
  uint64_t generation() const;

  /// Successful Swap() calls so far.
  int64_t generations_swapped() const {
    return swapped_.load(std::memory_order_relaxed);
  }

 private:
  struct Fingerprint {
    uint32_t library_crc = 0;
    std::vector<uint32_t> expert_crcs;
  };
  static Result<Fingerprint> FingerprintPool(const ExpertPool& pool);

  mutable std::mutex mu_;  ///< guards current_ (brief pointer reads/writes)
  std::mutex swap_mu_;     ///< serializes whole Swap calls
  PoolGenerationHandle current_;
  std::atomic<int64_t> swapped_{0};
};

}  // namespace poe

#endif  // POE_CORE_VERSIONED_POOL_H_

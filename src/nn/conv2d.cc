#include "nn/conv2d.h"

#include <algorithm>
#include <mutex>
#include <utility>

#include "nn/init.h"
#include "tensor/arena.h"
#include "tensor/im2col.h"
#include "util/parallel_for.h"

namespace poe {

Conv2d::Conv2d(int64_t in_channels, int64_t out_channels, int64_t kernel,
               int64_t stride, int64_t pad, Rng& rng, bool bias)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      has_bias_(bias) {
  const int64_t fan_in = in_channels * kernel * kernel;
  weight_ = Parameter("conv.weight",
                      HeNormal({out_channels, fan_in}, fan_in, rng));
  if (has_bias_) {
    bias_ = Parameter("conv.bias", Tensor::Zeros({out_channels}));
  }
}

Tensor Conv2d::Forward(const Tensor& input, bool training) {
  return ForwardImpl(input, training, /*fuse_relu=*/false);
}

Tensor Conv2d::ForwardFusedRelu(const Tensor& input) {
  return ForwardImpl(input, /*training=*/false, /*fuse_relu=*/true);
}

Tensor Conv2d::ForwardImpl(const Tensor& input, bool training,
                           bool fuse_relu) {
  if (int8_serving_) {
    POE_CHECK(!training) << "int8-serving Conv2d is inference-only";
    return ForwardInt8(input, fuse_relu);
  }
  POE_CHECK_EQ(input.ndim(), 4);
  POE_CHECK_EQ(input.dim(1), in_channels_);
  if (observe_act_ && !training) {
    observed_act_max_ =
        std::max(observed_act_max_, MaxAbs(input.data(), input.numel()));
  }
  const int64_t batch = input.dim(0);
  const int64_t h = input.dim(2);
  const int64_t w = input.dim(3);
  const int64_t out_h = ConvOutSize(h, kernel_, pad_, stride_);
  const int64_t out_w = ConvOutSize(w, kernel_, pad_, stride_);
  POE_CHECK_GT(out_h, 0);
  POE_CHECK_GT(out_w, 0);
  const int64_t ckk = in_channels_ * kernel_ * kernel_;
  const int64_t ohw = out_h * out_w;

  Tensor output({batch, out_channels_, out_h, out_w});
  const float* wp = weight_.value.data();
  const float* in = input.data();
  float* out = output.data();

  GemmEpilogue ep;
  ep.row_bias = has_bias_ ? bias_.value.data() : nullptr;
  ep.relu = fuse_relu;

  // 1x1/stride-1 convolution is a plain channel-mixing GEMM: the im2col
  // matrix would be the image itself, so skip the unfold entirely.
  const bool pointwise = kernel_ == 1 && stride_ == 1 && pad_ == 0;

  // Im2col-free direct path (inference, stride 1): the GEMM packs its B
  // panels straight from a zero-padded image copy — or the input itself
  // when pad == 0 — instead of a materialized im2col matrix. Bitwise
  // identical output (see conv_direct.h); im2col remains the fallback for
  // strided geometries, training (backward recomputes the unfold, so the
  // forward keeps the same lowering), and POE_CONV_PATH=im2col.
  const bool direct =
      !pointwise && !training && UseDirectConv(kernel_, stride_);

  // Pack-once fast path: the persistent op(A) weight panels are bitwise
  // identical to the per-call PackA output, so the product is too.
  const bool packed = !training && f32_packed_.load(std::memory_order_acquire);
  POE_CHECK(!training || !f32_packed_.load(std::memory_order_relaxed))
      << "prepacked Conv2d is inference-only (packed panels would go stale)";

  // The pool is not reentrant, so only one level parallelizes: hand it to
  // the GEMM's macro-tile loop only when that loop both offers more
  // parallelism than the batch dimension does (the realtime query path is
  // batch 1) and the batch can't fill the workers by itself.
  const bool gemm_parallel = batch < NumThreads() &&
                             GemmParallelTiles(out_channels_, ohw) > batch;

  auto run_gemm = [&](const float* cols_b, float* out_b) {
    if (packed) {
      GemmPackedA(packed_w_, ohw, cols_b, 1.0f, 0.0f, out_b, ep,
                  gemm_parallel);
    } else {
      GemmEx(false, false, out_channels_, ohw, ckk, 1.0f, wp, cols_b, 0.0f,
             out_b, ep, gemm_parallel);
    }
  };
  auto run_range = [&](int64_t begin, int64_t end) {
    ScratchScope scope;
    float* cols = pointwise ? nullptr : scope.Alloc(ckk * ohw);
    for (int64_t b = begin; b < end; ++b) {
      const float* in_b = in + b * in_channels_ * h * w;
      float* out_b = out + b * out_channels_ * ohw;
      if (pointwise) {
        run_gemm(in_b, out_b);
      } else {
        Im2Col(in_b, in_channels_, h, w, kernel_, kernel_, pad_, stride_,
               cols);
        run_gemm(cols, out_b);
      }
    }
  };
  // Direct path: the padded scratch is per-thread and its border is
  // zeroed once — interior copies never touch the border, so the batch
  // loop reuses it with a single memset's worth of zeroing total.
  auto run_range_direct = [&](int64_t begin, int64_t end) {
    ScratchScope scope;
    const int64_t pelems = PaddedImageElems(in_channels_, h, w, pad_);
    float* pbuf = pelems > 0 ? scope.Alloc(pelems) : nullptr;
    if (pbuf != nullptr) ZeroImageBorder(pbuf, in_channels_, h, w, pad_);
    ConvImageView img;
    img.channels = in_channels_;
    img.height = h;
    img.width = w;
    img.kernel = kernel_;
    img.pad = pad_;
    for (int64_t b = begin; b < end; ++b) {
      const float* in_b = in + b * in_channels_ * h * w;
      if (pbuf != nullptr) {
        CopyImageInterior(in_b, in_channels_, h, w, pad_, pbuf);
        img.padded = pbuf;
      } else {
        img.padded = in_b;  // pad == 0: the view aliases the input
      }
      float* out_b = out + b * out_channels_ * ohw;
      if (packed) {
        GemmConvPackedA(packed_w_, img, 1.0f, 0.0f, out_b, ep,
                        gemm_parallel);
      } else {
        GemmConvEx(out_channels_, wp, img, 1.0f, 0.0f, out_b, ep,
                   gemm_parallel);
      }
    }
  };
  if (direct) {
    if (gemm_parallel) {
      run_range_direct(0, batch);
    } else {
      ParallelFor(batch, run_range_direct, /*min_chunk=*/1);
    }
  } else if (gemm_parallel) {
    run_range(0, batch);
  } else {
    ParallelFor(batch, run_range, /*min_chunk=*/1);
  }

  if (training) {
    cached_input_ = input;
    cached_h_ = h;
    cached_w_ = w;
  }
  return output;
}

// The int8 serving forward: activations are quantized per-tensor (static
// calibrated scale when present, else a dynamic max-abs pass) with the
// vectorized quantizer — fused into the column matrix for pointwise
// convs, one whole-image pass for k > 1 — and multiplied against the
// pre-packed int8 weight panels. The GEMM's output pass applies
// scale_act * wscale[channel] dequantization, bias, and the fused ReLU,
// so no f32 weight or separate dequant sweep exists anywhere on this
// path.
Tensor Conv2d::ForwardInt8(const Tensor& input, bool fuse_relu) {
  POE_CHECK_EQ(input.ndim(), 4);
  POE_CHECK_EQ(input.dim(1), in_channels_);
  const int64_t batch = input.dim(0);
  const int64_t h = input.dim(2);
  const int64_t w = input.dim(3);
  const int64_t out_h = ConvOutSize(h, kernel_, pad_, stride_);
  const int64_t out_w = ConvOutSize(w, kernel_, pad_, stride_);
  POE_CHECK_GT(out_h, 0);
  POE_CHECK_GT(out_w, 0);
  const int64_t ckk = in_channels_ * kernel_ * kernel_;
  const int64_t ohw = out_h * out_w;
  const int64_t chw = in_channels_ * h * w;

  Tensor output({batch, out_channels_, out_h, out_w});
  const float* in = input.data();
  float* out = output.data();

  const float act_scale =
      act_scale_ > 0.0f ? act_scale_ : SymmetricScaleS8(in, input.numel());
  const float inv_scale = 1.0f / act_scale;

  GemmS8Epilogue ep;
  ep.scale = act_scale;
  ep.row_scale = wscales_.data();
  ep.row_bias = has_bias_ ? bias_.value.data() : nullptr;
  ep.relu = fuse_relu;

  const bool pointwise = kernel_ == 1 && stride_ == 1 && pad_ == 0;
  const bool direct = !pointwise && UseDirectConv(kernel_, stride_);
  const bool gemm_parallel = batch < NumThreads() &&
                             GemmParallelTiles(out_channels_, ohw) > batch;

  // Pointwise convs quantize straight into the column matrix (the fully
  // fused case: the unfold is the identity, so one vectorized pass does
  // everything). Other k > 1 convs quantize the image exactly once
  // (vectorized) and gather bytes — directly from the padded image on the
  // direct path, through a materialized im2col matrix on the fallback.
  // The fused Im2ColQuantize alternative would re-quantize every element
  // k*k times, which measures ~2x slower at WRN 3x3 geometries
  // (docs/PERF.md), so it is not used anywhere. All orders are bitwise
  // identical.
  auto run_range = [&](int64_t begin, int64_t end) {
    ScratchScope scope;
    int8_t* cols = AllocS8(scope, pointwise ? chw : ckk * ohw);
    int8_t* q_img = pointwise ? nullptr : AllocS8(scope, chw);
    for (int64_t b = begin; b < end; ++b) {
      float* out_b = out + b * out_channels_ * ohw;
      if (pointwise) {
        QuantizeBufferS8(in + b * chw, chw, inv_scale, cols);
      } else {
        QuantizeBufferS8(in + b * chw, chw, inv_scale, q_img);
        Im2Col(q_img, in_channels_, h, w, kernel_, kernel_, pad_, stride_,
               cols);
      }
      GemmS8PackedA(qweight_, ohw, cols, out_b, ep, gemm_parallel);
    }
  };
  // Direct path: pad == 0 quantizes the whole image straight into the
  // view's buffer; pad > 0 quantizes once into a flat scratch and
  // row-copies the bytes into the zero-bordered interior (a memcpy, not a
  // second rounding — each input byte is quantized exactly once).
  auto run_range_direct = [&](int64_t begin, int64_t end) {
    ScratchScope scope;
    const int64_t pelems = PaddedImageElems(in_channels_, h, w, pad_);
    int8_t* q_pad = AllocS8(scope, pad_ > 0 ? pelems : chw);
    int8_t* q_tmp = pad_ > 0 ? AllocS8(scope, chw) : nullptr;
    if (pad_ > 0) ZeroImageBorder(q_pad, in_channels_, h, w, pad_);
    ConvImageViewS8 img;
    img.padded = q_pad;
    img.channels = in_channels_;
    img.height = h;
    img.width = w;
    img.kernel = kernel_;
    img.pad = pad_;
    for (int64_t b = begin; b < end; ++b) {
      float* out_b = out + b * out_channels_ * ohw;
      if (pad_ > 0) {
        QuantizeBufferS8(in + b * chw, chw, inv_scale, q_tmp);
        CopyImageInterior(q_tmp, in_channels_, h, w, pad_, q_pad);
      } else {
        QuantizeBufferS8(in + b * chw, chw, inv_scale, q_pad);
      }
      GemmS8ConvPackedA(qweight_, img, out_b, ep, gemm_parallel);
    }
  };
  if (direct) {
    if (gemm_parallel) {
      run_range_direct(0, batch);
    } else {
      ParallelFor(batch, run_range_direct, /*min_chunk=*/1);
    }
  } else if (gemm_parallel) {
    run_range(0, batch);
  } else {
    ParallelFor(batch, run_range, /*min_chunk=*/1);
  }
  return output;
}

void Conv2d::PrepareInt8Serving() {
  if (int8_serving_) return;
  const int64_t ckk = in_channels_ * kernel_ * kernel_;
  // Per-output-channel symmetric max-abs quantization of the weight
  // matrix (rows are output channels in the im2col GEMM layout).
  wscales_.resize(out_channels_);
  std::vector<int8_t> q(static_cast<size_t>(out_channels_ * ckk));
  const float* wp = weight_.value.data();
  for (int64_t oc = 0; oc < out_channels_; ++oc) {
    const float* row = wp + oc * ckk;
    wscales_[oc] = SymmetricScaleS8(row, ckk);
    QuantizeBufferS8(row, ckk, 1.0f / wscales_[oc], q.data() + oc * ckk);
  }
  FinishInt8Setup(q.data());
}

void Conv2d::FinishInt8Setup(const int8_t* values) {
  // Serialized against Prepack: pool copies share master modules, so a
  // conversion through one copy must not race another copy's prepacking
  // of the same layer.
  std::lock_guard<std::mutex> lock(prepack_mu_);
  // Pack once into the kernel layout; only the packed form stays resident
  // (persistence exports the portable row-major form via Unpack).
  qweight_ = PackedS8Weights::Pack(out_channels_,
                                   in_channels_ * kernel_ * kernel_, values);
  // Dequant-free serving: release the f32 weight storage for good, along
  // with any now-stale f32 packed panels.
  f32_packed_.store(false, std::memory_order_release);
  packed_w_ = PackedAWeights();
  weight_.value = Tensor();
  weight_.grad = Tensor();
  weight_.trainable = false;
  int8_serving_ = true;
}

void Conv2d::Prepack(ServingPrecision precision) {
  std::lock_guard<std::mutex> lock(prepack_mu_);
  // Packs the form the layer CURRENTLY serves (see Linear::Prepack for
  // the stale-copy rationale); int8 panels were built at conversion.
  POE_CHECK(precision != ServingPrecision::kInt8 || int8_serving_)
      << "Prepack(kInt8) requires PrepareInt8Serving first";
  if (int8_serving_) return;
  if (f32_packed_.load(std::memory_order_relaxed)) return;
  packed_w_ = PackedAWeights::Pack(/*trans_a=*/false, out_channels_,
                                   in_channels_ * kernel_ * kernel_,
                                   weight_.value.data());
  f32_packed_.store(true, std::memory_order_release);
}

int64_t Conv2d::PackedWeightBytes() {
  return f32_packed_.load(std::memory_order_acquire) ? packed_w_.nbytes()
                                                     : 0;
}

void Conv2d::BeginActivationCalibration() {
  observe_act_ = true;
  observed_act_max_ = 0.0f;
}

void Conv2d::FinishActivationCalibration() {
  observe_act_ = false;
  // A zero observation (no forwards ran, or the sample batch never lit
  // this layer up) keeps the scale at 0 = dynamic: freezing a guess
  // would saturate real activations forever (and be persisted).
  act_scale_ = observed_act_max_ > 0.0f ? observed_act_max_ / 127.0f : 0.0f;
}

Result<Int8WeightState> Conv2d::ExportInt8State() const {
  if (!int8_serving_) {
    return Status::FailedPrecondition(
        "Conv2d has no int8 state to export (still serving f32)");
  }
  Int8WeightState state;
  state.rows = out_channels_;
  state.cols = in_channels_ * kernel_ * kernel_;
  state.values.resize(static_cast<size_t>(state.rows * state.cols));
  qweight_.Unpack(state.values.data());  // portable row-major form
  state.scales = wscales_;
  state.act_scale = act_scale_;
  return state;
}

Status Conv2d::AdoptInt8State(Int8WeightState state) {
  if (int8_serving_) {
    return Status::FailedPrecondition("Conv2d already serves int8");
  }
  const int64_t ckk = in_channels_ * kernel_ * kernel_;
  if (state.rows != out_channels_ || state.cols != ckk ||
      static_cast<int64_t>(state.values.size()) != out_channels_ * ckk ||
      static_cast<int64_t>(state.scales.size()) != out_channels_) {
    return Status::Corruption("int8 state shape mismatch for Conv2d");
  }
  wscales_ = std::move(state.scales);
  act_scale_ = state.act_scale;
  FinishInt8Setup(state.values.data());
  return Status::OK();
}

int64_t Conv2d::Int8WeightBytes() const {
  if (!int8_serving_) return 0;
  return qweight_.nbytes() +
         static_cast<int64_t>(wscales_.size() * sizeof(float));
}

Tensor Conv2d::Backward(const Tensor& grad_output) {
  POE_CHECK(!int8_serving_) << "int8-serving Conv2d cannot train";
  POE_CHECK(cached_input_.defined()) << "Backward before training Forward";
  const int64_t batch = cached_input_.dim(0);
  const int64_t h = cached_h_;
  const int64_t w = cached_w_;
  const int64_t out_h = ConvOutSize(h, kernel_, pad_, stride_);
  const int64_t out_w = ConvOutSize(w, kernel_, pad_, stride_);
  const int64_t ckk = in_channels_ * kernel_ * kernel_;
  const int64_t ohw = out_h * out_w;
  POE_CHECK_EQ(grad_output.dim(0), batch);
  POE_CHECK_EQ(grad_output.dim(1), out_channels_);

  Tensor grad_input = Tensor::Zeros(cached_input_.shape());
  const float* wp = weight_.value.data();
  const float* in = cached_input_.data();
  const float* gout = grad_output.data();
  float* gin = grad_input.data();

  std::mutex dw_mutex;
  ParallelFor(
      batch,
      [&](int64_t begin, int64_t end) {
        ScratchScope scope;
        float* cols = scope.Alloc(ckk * ohw);
        float* dcols = scope.Alloc(ckk * ohw);
        float* dw_local = scope.Alloc(out_channels_ * ckk);
        std::fill(dw_local, dw_local + out_channels_ * ckk, 0.0f);
        float* db_local = nullptr;
        if (has_bias_) {
          db_local = scope.Alloc(out_channels_);
          std::fill(db_local, db_local + out_channels_, 0.0f);
        }
        for (int64_t b = begin; b < end; ++b) {
          const float* gout_b = gout + b * out_channels_ * ohw;
          // Recompute the unfolding (cheaper than caching it per batch).
          Im2Col(in + b * in_channels_ * h * w, in_channels_, h, w, kernel_,
                 kernel_, pad_, stride_, cols);
          // dW += dY_b (out_c x ohw) * cols_b^T (ohw x ckk).
          GemmSeq(false, true, out_channels_, ckk, ohw, 1.0f, gout_b, cols,
                  1.0f, dw_local);
          // dcols = W^T (ckk x out_c) * dY_b (out_c x ohw).
          GemmSeq(true, false, ckk, ohw, out_channels_, 1.0f, wp, gout_b,
                  0.0f, dcols);
          Col2Im(dcols, in_channels_, h, w, kernel_, kernel_, pad_, stride_,
                 gin + b * in_channels_ * h * w);
          if (has_bias_) {
            for (int64_t oc = 0; oc < out_channels_; ++oc) {
              const float* row = gout_b + oc * ohw;
              float acc = 0.0f;
              for (int64_t i = 0; i < ohw; ++i) acc += row[i];
              db_local[oc] += acc;
            }
          }
        }
        std::lock_guard<std::mutex> lock(dw_mutex);
        float* dw = weight_.grad.data();
        for (int64_t i = 0; i < out_channels_ * ckk; ++i) dw[i] += dw_local[i];
        if (has_bias_) {
          float* db = bias_.grad.data();
          for (int64_t oc = 0; oc < out_channels_; ++oc)
            db[oc] += db_local[oc];
        }
      },
      /*min_chunk=*/1);

  return grad_input;
}

void Conv2d::CollectParameters(std::vector<Parameter*>* out) {
  out->push_back(&weight_);
  if (has_bias_) out->push_back(&bias_);
}

}  // namespace poe

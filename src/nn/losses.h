// Loss functions. Each returns the scalar loss and the gradient wrt logits.
#ifndef POE_NN_LOSSES_H_
#define POE_NN_LOSSES_H_

#include <vector>

#include "tensor/tensor.h"

namespace poe {

/// Scalar loss plus gradient with respect to the (student) logits.
struct LossResult {
  float loss = 0.0f;
  Tensor grad;  // same shape as the logits argument it differentiates
};

/// Mean softmax cross-entropy with integer class labels.
/// grad = (softmax(logits) - onehot) / batch.
LossResult SoftmaxCrossEntropy(const Tensor& logits,
                               const std::vector<int>& labels);

/// Hinton knowledge-distillation loss, Eq. (1) of the paper:
/// mean_rows KL( softmax(t/T) || softmax(s/T) ).
///
/// When `scale_t_squared` (default, standard KD practice) the loss and
/// gradient are multiplied by T^2 so gradient magnitudes stay comparable
/// across temperatures. Gradient is wrt the student logits `s`.
LossResult DistillationKl(const Tensor& teacher_logits,
                          const Tensor& student_logits, float temperature,
                          bool scale_t_squared = true);

/// L_scale of CKD, Eq. (4): mean over rows of || t - s ||_1.
/// Gradient is sign(s - t) / batch.
LossResult L1LogitLoss(const Tensor& teacher_logits,
                       const Tensor& student_logits);

/// Number of rows whose argmax matches the label.
int64_t CountCorrect(const Tensor& logits, const std::vector<int>& labels);

}  // namespace poe

#endif  // POE_NN_LOSSES_H_

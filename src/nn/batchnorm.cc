#include "nn/batchnorm.h"

#include <algorithm>
#include <cmath>

namespace poe {

BatchNorm2d::BatchNorm2d(int64_t channels, float eps, float momentum)
    : channels_(channels),
      eps_(eps),
      momentum_(momentum),
      gamma_(Parameter("bn.gamma", Tensor::Ones({channels}))),
      beta_(Parameter("bn.beta", Tensor::Zeros({channels}))),
      running_mean_(Tensor::Zeros({channels})),
      running_var_(Tensor::Ones({channels})) {}

Tensor BatchNorm2d::Forward(const Tensor& input, bool training) {
  POE_CHECK_EQ(input.ndim(), 4);
  POE_CHECK_EQ(input.dim(1), channels_);
  const int64_t batch = input.dim(0);
  const int64_t hw = input.dim(2) * input.dim(3);
  const int64_t n = batch * hw;
  POE_CHECK_GT(n, 0);

  Tensor output(input.shape());
  const float* in = input.data();
  float* out = output.data();
  const float* g = gamma_.value.data();
  const float* b = beta_.value.data();

  if (training) {
    cached_xhat_ = Tensor(input.shape());
    cached_inv_std_.assign(channels_, 0.0f);
    cached_batch_ = batch;
    cached_hw_ = hw;
    float* xh = cached_xhat_.data();
    float* rm = running_mean_.data();
    float* rv = running_var_.data();
    for (int64_t c = 0; c < channels_; ++c) {
      double sum = 0.0, sq = 0.0;
      for (int64_t bi = 0; bi < batch; ++bi) {
        const float* p = in + (bi * channels_ + c) * hw;
        for (int64_t i = 0; i < hw; ++i) {
          sum += p[i];
          sq += static_cast<double>(p[i]) * p[i];
        }
      }
      const double mean = sum / n;
      double var = sq / n - mean * mean;
      if (var < 0.0) var = 0.0;  // numeric guard
      const float inv_std = 1.0f / std::sqrt(static_cast<float>(var) + eps_);
      cached_inv_std_[c] = inv_std;
      // Update running stats with the unbiased variance (PyTorch semantics).
      const double unbiased = n > 1 ? var * n / (n - 1) : var;
      rm[c] = (1.0f - momentum_) * rm[c] + momentum_ * static_cast<float>(mean);
      rv[c] =
          (1.0f - momentum_) * rv[c] + momentum_ * static_cast<float>(unbiased);
      for (int64_t bi = 0; bi < batch; ++bi) {
        const float* p = in + (bi * channels_ + c) * hw;
        float* xhp = xh + (bi * channels_ + c) * hw;
        float* op = out + (bi * channels_ + c) * hw;
        for (int64_t i = 0; i < hw; ++i) {
          const float xhat = (p[i] - static_cast<float>(mean)) * inv_std;
          xhp[i] = xhat;
          op[i] = g[c] * xhat + b[c];
        }
      }
    }
  } else {
    InferenceNormalize(input, &output, /*relu=*/false);
  }
  return output;
}

Tensor BatchNorm2d::ForwardFusedRelu(const Tensor& input) {
  Tensor output(input.shape());
  InferenceNormalize(input, &output, /*relu=*/true);
  return output;
}

void BatchNorm2d::InferenceNormalize(const Tensor& input, Tensor* output,
                                     bool relu) {
  POE_CHECK_EQ(input.ndim(), 4);
  POE_CHECK_EQ(input.dim(1), channels_);
  const int64_t batch = input.dim(0);
  const int64_t hw = input.dim(2) * input.dim(3);

  const float* in = input.data();
  float* out = output->data();
  const float* g = gamma_.value.data();
  const float* b = beta_.value.data();
  const float* rm = running_mean_.data();
  const float* rv = running_var_.data();
  for (int64_t c = 0; c < channels_; ++c) {
    const float inv_std = 1.0f / std::sqrt(rv[c] + eps_);
    const float scale = g[c] * inv_std;
    const float shift = b[c] - scale * rm[c];
    for (int64_t bi = 0; bi < batch; ++bi) {
      const float* p = in + (bi * channels_ + c) * hw;
      float* op = out + (bi * channels_ + c) * hw;
      if (relu) {
        for (int64_t i = 0; i < hw; ++i)
          op[i] = std::max(0.0f, scale * p[i] + shift);
      } else {
        for (int64_t i = 0; i < hw; ++i) op[i] = scale * p[i] + shift;
      }
    }
  }
}

Tensor BatchNorm2d::Backward(const Tensor& grad_output) {
  POE_CHECK(cached_xhat_.defined()) << "Backward before training Forward";
  const int64_t batch = cached_batch_;
  const int64_t hw = cached_hw_;
  const int64_t n = batch * hw;
  POE_CHECK_EQ(grad_output.dim(0), batch);
  POE_CHECK_EQ(grad_output.dim(1), channels_);

  Tensor grad_input(grad_output.shape());
  const float* gout = grad_output.data();
  const float* xh = cached_xhat_.data();
  const float* g = gamma_.value.data();
  float* dgamma = gamma_.grad.data();
  float* dbeta = beta_.grad.data();
  float* gin = grad_input.data();

  for (int64_t c = 0; c < channels_; ++c) {
    // Accumulate sum(dy) and sum(dy * xhat) over the batch and space.
    double sum_dy = 0.0, sum_dy_xhat = 0.0;
    for (int64_t bi = 0; bi < batch; ++bi) {
      const float* dyp = gout + (bi * channels_ + c) * hw;
      const float* xhp = xh + (bi * channels_ + c) * hw;
      for (int64_t i = 0; i < hw; ++i) {
        sum_dy += dyp[i];
        sum_dy_xhat += static_cast<double>(dyp[i]) * xhp[i];
      }
    }
    dgamma[c] += static_cast<float>(sum_dy_xhat);
    dbeta[c] += static_cast<float>(sum_dy);
    // dx = gamma * inv_std / n * (n*dy - sum(dy) - xhat * sum(dy*xhat)).
    const float k = g[c] * cached_inv_std_[c] / static_cast<float>(n);
    const float s_dy = static_cast<float>(sum_dy);
    const float s_dy_xh = static_cast<float>(sum_dy_xhat);
    for (int64_t bi = 0; bi < batch; ++bi) {
      const float* dyp = gout + (bi * channels_ + c) * hw;
      const float* xhp = xh + (bi * channels_ + c) * hw;
      float* gp = gin + (bi * channels_ + c) * hw;
      for (int64_t i = 0; i < hw; ++i) {
        gp[i] = k * (static_cast<float>(n) * dyp[i] - s_dy -
                     xhp[i] * s_dy_xh);
      }
    }
  }
  return grad_input;
}

void BatchNorm2d::CollectParameters(std::vector<Parameter*>* out) {
  out->push_back(&gamma_);
  out->push_back(&beta_);
}

void BatchNorm2d::CollectBuffers(std::vector<Tensor*>* out) {
  out->push_back(&running_mean_);
  out->push_back(&running_var_);
}

}  // namespace poe

#include "nn/sgd.h"

#include <utility>

#include "util/logging.h"

namespace poe {

Sgd::Sgd(std::vector<Parameter*> params, SgdOptions options)
    : params_(std::move(params)), options_(options) {
  for (Parameter* p : params_) {
    POE_CHECK(p != nullptr);
    velocity_.emplace(p, Tensor::Zeros(p->value.shape()));
  }
}

void Sgd::Step() {
  for (Parameter* p : params_) {
    if (!p->trainable) continue;
    Tensor& v = velocity_.at(p);
    float* vp = v.data();
    float* wp = p->value.data();
    const float* gp = p->grad.data();
    const float lr = options_.lr;
    const float mu = options_.momentum;
    const float wd = options_.weight_decay;
    for (int64_t i = 0; i < p->value.numel(); ++i) {
      vp[i] = mu * vp[i] + gp[i] + wd * wp[i];
      wp[i] -= lr * vp[i];
    }
  }
}

void Sgd::ZeroGrad() {
  for (Parameter* p : params_) p->grad.Fill(0.0f);
}

}  // namespace poe

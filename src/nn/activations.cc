#include "nn/activations.h"

namespace poe {

Tensor ReLU::Forward(const Tensor& input, bool training) {
  Tensor output(input.shape());
  const float* in = input.data();
  float* out = output.data();
  for (int64_t i = 0; i < input.numel(); ++i)
    out[i] = in[i] > 0.0f ? in[i] : 0.0f;
  if (training) cached_input_ = input;
  return output;
}

Tensor ReLU::Backward(const Tensor& grad_output) {
  POE_CHECK(cached_input_.defined());
  POE_CHECK_EQ(grad_output.numel(), cached_input_.numel());
  Tensor grad_input(grad_output.shape());
  const float* g = grad_output.data();
  const float* in = cached_input_.data();
  float* out = grad_input.data();
  for (int64_t i = 0; i < grad_output.numel(); ++i)
    out[i] = in[i] > 0.0f ? g[i] : 0.0f;
  return grad_input;
}

}  // namespace poe

// Weight initialization schemes.
#ifndef POE_NN_INIT_H_
#define POE_NN_INIT_H_

#include <cstdint>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace poe {

/// He/Kaiming normal init for ReLU networks: N(0, sqrt(2 / fan_in)).
Tensor HeNormal(std::vector<int64_t> shape, int64_t fan_in, Rng& rng);

/// Uniform init in [-bound, bound] with bound = 1/sqrt(fan_in)
/// (PyTorch's default for linear bias).
Tensor FanInUniform(std::vector<int64_t> shape, int64_t fan_in, Rng& rng);

}  // namespace poe

#endif  // POE_NN_INIT_H_

// Pre-activation residual block (the Wide ResNet building block).
#ifndef POE_NN_BASIC_BLOCK_H_
#define POE_NN_BASIC_BLOCK_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/module.h"
#include "util/rng.h"

namespace poe {

/// Pre-activation WRN basic block (Zagoruyko & Komodakis 2016):
///
///   a   = ReLU(BN1(x))
///   out = Conv2(ReLU(BN2(Conv1(a)))) + shortcut
///
/// where shortcut is x when shapes match, else a 1x1 strided convolution of
/// `a` (the projection path standard in pre-activation ResNets).
class BasicBlock : public Module {
 public:
  BasicBlock(int64_t in_channels, int64_t out_channels, int64_t stride,
             Rng& rng);

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  void CollectParameters(std::vector<Parameter*>* out) override;
  void CollectBuffers(std::vector<Tensor*>* out) override;
  void PrepareInt8Serving() override;
  int64_t Int8WeightBytes() const override;
  void CollectChildren(std::vector<Module*>* out) override;
  std::string Name() const override { return "BasicBlock"; }

  bool has_projection() const { return projection_ != nullptr; }

 private:
  BatchNorm2d bn1_;
  ReLU relu1_;
  Conv2d conv1_;
  BatchNorm2d bn2_;
  ReLU relu2_;
  Conv2d conv2_;
  std::unique_ptr<Conv2d> projection_;  // nullptr => identity shortcut
};

}  // namespace poe

#endif  // POE_NN_BASIC_BLOCK_H_

// 2-D convolution layer (im2col + GEMM), batch-parallel.
#ifndef POE_NN_CONV2D_H_
#define POE_NN_CONV2D_H_

#include <mutex>
#include <string>
#include <vector>

#include "nn/module.h"
#include "tensor/gemm_s8.h"
#include "util/rng.h"

namespace poe {

/// Square-kernel 2-D convolution over NCHW tensors.
///
/// Weight shape: [out_channels, in_channels * kernel * kernel] (the im2col
/// GEMM layout). Bias is optional and off by default, matching WRN blocks
/// where batch-norm absorbs the bias.
///
/// Steady-state Forward makes no scratch allocations: im2col buffers come
/// from the per-thread arena, 1x1/stride-1 convolutions skip im2col
/// entirely, and bias (+ fused ReLU at inference) is applied by the GEMM
/// epilogue instead of a second pass over the output.
class Conv2d : public Module {
 public:
  Conv2d(int64_t in_channels, int64_t out_channels, int64_t kernel,
         int64_t stride, int64_t pad, Rng& rng, bool bias = false);

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  void CollectParameters(std::vector<Parameter*>* out) override;
  bool CanFuseRelu() const override { return true; }
  Tensor ForwardFusedRelu(const Tensor& input) override;

  /// Dequant-free int8 serving: quantizes the weight matrix with
  /// per-output-channel symmetric scales into pre-packed int8 GEMM panels
  /// and releases the f32 weight storage. Inference Forward then
  /// quantizes activations per-tensor on the fly and runs the int8 GEMM
  /// with dequantization fused into its output pass. Irreversible;
  /// training Forward/Backward are forbidden afterwards.
  void PrepareInt8Serving() override;
  int64_t Int8WeightBytes() const override;
  bool int8_serving() const { return int8_serving_; }

  std::string Name() const override { return "Conv2d"; }

  int64_t in_channels() const { return in_channels_; }
  int64_t out_channels() const { return out_channels_; }
  int64_t kernel() const { return kernel_; }
  int64_t stride() const { return stride_; }
  int64_t pad() const { return pad_; }
  bool has_bias() const { return has_bias_; }

  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }

 private:
  Tensor ForwardImpl(const Tensor& input, bool training, bool fuse_relu);
  Tensor ForwardInt8(const Tensor& input, bool fuse_relu);

  int64_t in_channels_, out_channels_, kernel_, stride_, pad_;
  bool has_bias_;
  Parameter weight_;
  Parameter bias_;

  // Int8 serving state (valid when int8_serving_).
  bool int8_serving_ = false;
  PackedS8Weights qweight_;     // [out_c x ckk] panels, kernel layout
  std::vector<float> wscales_;  // per-output-channel dequant scales

  // Cached from the last training Forward.
  Tensor cached_input_;
  int64_t cached_h_ = 0, cached_w_ = 0;
};

}  // namespace poe

#endif  // POE_NN_CONV2D_H_

// 2-D convolution layer lowered to GEMM, batch-parallel. Inference with
// stride 1 runs im2col-free: the GEMM packs its B panels straight from a
// zero-padded image view (tensor/conv_direct.h), bitwise identical to the
// im2col lowering, which remains the fallback for strided geometries and
// training.
#ifndef POE_NN_CONV2D_H_
#define POE_NN_CONV2D_H_

#include <atomic>
#include <mutex>
#include <string>
#include <vector>

#include "nn/module.h"
#include "tensor/gemm.h"
#include "tensor/gemm_s8.h"
#include "util/rng.h"

namespace poe {

/// Square-kernel 2-D convolution over NCHW tensors.
///
/// Weight shape: [out_channels, in_channels * kernel * kernel] (the im2col
/// GEMM layout). Bias is optional and off by default, matching WRN blocks
/// where batch-norm absorbs the bias.
///
/// Steady-state Forward makes no scratch allocations: the direct path's
/// padded-image buffer (and the fallback's im2col buffer) come from the
/// per-thread arena, 1x1/stride-1 convolutions skip the unfold entirely,
/// and bias (+ fused ReLU at inference) is applied by the GEMM epilogue
/// instead of a second pass over the output.
class Conv2d : public Module {
 public:
  Conv2d(int64_t in_channels, int64_t out_channels, int64_t kernel,
         int64_t stride, int64_t pad, Rng& rng, bool bias = false);

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  void CollectParameters(std::vector<Parameter*>* out) override;
  bool CanFuseRelu() const override { return true; }
  Tensor ForwardFusedRelu(const Tensor& input) override;

  /// Dequant-free int8 serving: quantizes the weight matrix with
  /// per-output-channel symmetric scales into pre-packed int8 GEMM panels
  /// (persistence exports the portable row-major form via Unpack) and
  /// releases the f32 weight storage. Inference Forward then quantizes
  /// activations per-tensor — with the static calibrated scale when one
  /// was observed, else a dynamic max-abs scale; fused straight into the
  /// column matrix for pointwise convs — and runs the int8 GEMM with
  /// dequantization fused into its output pass. Irreversible; training
  /// is forbidden afterwards.
  void PrepareInt8Serving() override;
  int64_t Int8WeightBytes() const override;
  bool int8_serving() const { return int8_serving_; }

  /// Pack-once serving. kFloat32 materializes the persistent op(A) weight
  /// panels (the conv weight is the GEMM's A operand) so inference
  /// forwards skip the per-call PackA pass; kInt8 is satisfied already —
  /// the int8 weight panels are built at PrepareInt8Serving/Adopt time.
  /// Idempotent, publish-safe against concurrent forwards (release/
  /// acquire), transparent fallback while unpacked. Inference-only after.
  void Prepack(ServingPrecision precision) override;
  int64_t PackedWeightBytes() override;

  /// Static activation calibration (see Module); observation happens on
  /// f32 inference forwards between Begin and Finish.
  void BeginActivationCalibration() override;
  void FinishActivationCalibration() override;
  float static_act_scale() const override { return act_scale_; }
  void set_static_act_scale(float scale) override { act_scale_ = scale; }

  void CollectQuantizable(std::vector<Module*>* out) override {
    out->push_back(this);
  }
  Result<Int8WeightState> ExportInt8State() const override;
  Status AdoptInt8State(Int8WeightState state) override;

  std::string Name() const override { return "Conv2d"; }

  int64_t in_channels() const { return in_channels_; }
  int64_t out_channels() const { return out_channels_; }
  int64_t kernel() const { return kernel_; }
  int64_t stride() const { return stride_; }
  int64_t pad() const { return pad_; }
  bool has_bias() const { return has_bias_; }

  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }

 private:
  Tensor ForwardImpl(const Tensor& input, bool training, bool fuse_relu);
  Tensor ForwardInt8(const Tensor& input, bool fuse_relu);
  /// Shared PrepareInt8Serving/Adopt tail: packs `values` (row-major
  /// [out_c x ckk]) and releases the f32 weight.
  void FinishInt8Setup(const int8_t* values);

  int64_t in_channels_, out_channels_, kernel_, stride_, pad_;
  bool has_bias_;
  Parameter weight_;
  Parameter bias_;

  // Int8 serving state (valid when int8_serving_).
  bool int8_serving_ = false;
  PackedS8Weights qweight_;     // [out_c x ckk] panels, kernel layout
  std::vector<float> wscales_;  // per-output-channel dequant scales

  // Static activation calibration (0 = dynamic per-forward max-abs).
  bool observe_act_ = false;
  float observed_act_max_ = 0.0f;
  float act_scale_ = 0.0f;

  // Pack-once f32 serving state (see Prepack).
  std::mutex prepack_mu_;
  PackedAWeights packed_w_;  // f32 op(A) weight panels
  std::atomic<bool> f32_packed_{false};

  // Cached from the last training Forward.
  Tensor cached_input_;
  int64_t cached_h_ = 0, cached_w_ = 0;
};

}  // namespace poe

#endif  // POE_NN_CONV2D_H_

// Finite-difference gradient checking used by the test suite.
#ifndef POE_NN_GRADIENT_CHECK_H_
#define POE_NN_GRADIENT_CHECK_H_

#include <functional>

#include "nn/module.h"
#include "tensor/tensor.h"

namespace poe {

/// Result of a gradient check: the largest relative error observed.
struct GradCheckResult {
  float max_input_grad_error = 0.0f;
  float max_param_grad_error = 0.0f;
};

/// Verifies Module::Backward against central finite differences of the
/// scalar objective 0.5 * ||Forward(x)||^2 (whose analytic upstream
/// gradient is the output itself).
///
/// `epsilon` is the finite-difference step; errors are relative:
/// |analytic - numeric| / max(1, |analytic|, |numeric|).
GradCheckResult CheckModuleGradients(Module& module, const Tensor& input,
                                     float epsilon = 1e-2f);

}  // namespace poe

#endif  // POE_NN_GRADIENT_CHECK_H_

// Pooling and shape adapters.
#ifndef POE_NN_POOLING_H_
#define POE_NN_POOLING_H_

#include <string>
#include <vector>

#include "nn/module.h"

namespace poe {

/// Global average pooling: [B, C, H, W] -> [B, C].
class GlobalAvgPool : public Module {
 public:
  GlobalAvgPool() = default;

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  void CollectParameters(std::vector<Parameter*>*) override {}
  std::string Name() const override { return "GlobalAvgPool"; }

 private:
  std::vector<int64_t> cached_shape_;
};

/// Flatten: [B, ...] -> [B, prod(...)]. Reshape-only; no copies.
class Flatten : public Module {
 public:
  Flatten() = default;

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  void CollectParameters(std::vector<Parameter*>*) override {}
  std::string Name() const override { return "Flatten"; }

 private:
  std::vector<int64_t> cached_shape_;
};

}  // namespace poe

#endif  // POE_NN_POOLING_H_

#include "nn/losses.h"

#include <cmath>

#include "tensor/ops.h"
#include "util/logging.h"

namespace poe {

LossResult SoftmaxCrossEntropy(const Tensor& logits,
                               const std::vector<int>& labels) {
  POE_CHECK_EQ(logits.ndim(), 2);
  const int64_t batch = logits.dim(0);
  const int64_t classes = logits.dim(1);
  POE_CHECK_EQ(batch, static_cast<int64_t>(labels.size()));
  POE_CHECK_GT(batch, 0);

  Tensor log_probs = LogSoftmax2d(logits);
  LossResult result;
  result.grad = Tensor(logits.shape());
  const float* lp = log_probs.data();
  float* g = result.grad.data();
  double loss = 0.0;
  const float inv_batch = 1.0f / static_cast<float>(batch);
  for (int64_t b = 0; b < batch; ++b) {
    const int label = labels[b];
    POE_CHECK_GE(label, 0);
    POE_CHECK_LT(label, classes);
    loss -= lp[b * classes + label];
    for (int64_t c = 0; c < classes; ++c) {
      g[b * classes + c] = std::exp(lp[b * classes + c]) * inv_batch;
    }
    g[b * classes + label] -= inv_batch;
  }
  result.loss = static_cast<float>(loss / batch);
  return result;
}

LossResult DistillationKl(const Tensor& teacher_logits,
                          const Tensor& student_logits, float temperature,
                          bool scale_t_squared) {
  POE_CHECK(SameShape(teacher_logits, student_logits))
      << teacher_logits.ShapeString() << " vs "
      << student_logits.ShapeString();
  POE_CHECK_EQ(student_logits.ndim(), 2);
  POE_CHECK_GT(temperature, 0.0f);
  const int64_t batch = student_logits.dim(0);
  const int64_t classes = student_logits.dim(1);
  POE_CHECK_GT(batch, 0);

  Tensor p_teacher = SoftmaxWithTemperature(teacher_logits, temperature);
  Tensor log_p_student = LogSoftmax2d(Scale(student_logits, 1.0f / temperature));

  LossResult result;
  result.grad = Tensor(student_logits.shape());
  const float* pt = p_teacher.data();
  const float* lps = log_p_student.data();
  float* g = result.grad.data();

  // KL(P_t || P_s) = sum_c P_t (log P_t - log P_s); grad wrt s_c is
  // (P_s_c - P_t_c) / T, averaged over the batch.
  double loss = 0.0;
  const float mult = scale_t_squared ? temperature * temperature : 1.0f;
  const float gscale =
      mult / (temperature * static_cast<float>(batch));
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t c = 0; c < classes; ++c) {
      const int64_t i = b * classes + c;
      const float p = pt[i];
      if (p > 0.0f) {
        loss += static_cast<double>(p) * (std::log(p) - lps[i]);
      }
      g[i] = gscale * (std::exp(lps[i]) - p);
    }
  }
  result.loss = static_cast<float>(loss / batch) * mult;
  return result;
}

LossResult L1LogitLoss(const Tensor& teacher_logits,
                       const Tensor& student_logits) {
  POE_CHECK(SameShape(teacher_logits, student_logits));
  POE_CHECK_EQ(student_logits.ndim(), 2);
  const int64_t batch = student_logits.dim(0);
  POE_CHECK_GT(batch, 0);

  LossResult result;
  result.grad = Tensor(student_logits.shape());
  const float* t = teacher_logits.data();
  const float* s = student_logits.data();
  float* g = result.grad.data();
  double loss = 0.0;
  const float inv_batch = 1.0f / static_cast<float>(batch);
  for (int64_t i = 0; i < student_logits.numel(); ++i) {
    const float diff = s[i] - t[i];
    loss += std::fabs(diff);
    g[i] = (diff > 0.0f ? 1.0f : (diff < 0.0f ? -1.0f : 0.0f)) * inv_batch;
  }
  result.loss = static_cast<float>(loss / batch);
  return result;
}

int64_t CountCorrect(const Tensor& logits, const std::vector<int>& labels) {
  POE_CHECK_EQ(logits.ndim(), 2);
  POE_CHECK_EQ(logits.dim(0), static_cast<int64_t>(labels.size()));
  int64_t correct = 0;
  for (int64_t b = 0; b < logits.dim(0); ++b) {
    if (ArgmaxRow(logits, b) == labels[b]) ++correct;
  }
  return correct;
}

}  // namespace poe

// Fully-connected layer.
#ifndef POE_NN_LINEAR_H_
#define POE_NN_LINEAR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "nn/module.h"
#include "util/rng.h"

namespace poe {

/// y = x W^T + b over 2-D [batch, in_features] inputs.
/// Weight shape [out_features, in_features].
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, Rng& rng,
         bool bias = true);

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  void CollectParameters(std::vector<Parameter*>* out) override;
  bool CanFuseRelu() const override { return true; }
  Tensor ForwardFusedRelu(const Tensor& input) override;

  /// Dequant-free int8 serving: weights become int8 with per-output-
  /// feature scales, the f32 storage is released, and inference quantizes
  /// activations per-tensor on the fly into the int8 GEMM (dequant + bias
  /// + ReLU fused in its output pass). Irreversible; training is
  /// forbidden afterwards.
  void PrepareInt8Serving() override;
  int64_t Int8WeightBytes() const override;
  bool int8_serving() const { return int8_serving_; }

  std::string Name() const override { return "Linear"; }

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }
  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }
  bool has_bias() const { return has_bias_; }

 private:
  Tensor ForwardImpl(const Tensor& input, bool training, bool fuse_relu);
  Tensor ForwardInt8(const Tensor& input, bool fuse_relu);

  int64_t in_features_, out_features_;
  bool has_bias_;
  Parameter weight_;
  Parameter bias_;
  Tensor cached_input_;

  // Int8 serving state (valid when int8_serving_).
  bool int8_serving_ = false;
  std::vector<int8_t> qweight_;  // [out_features x in_features], row-major
  std::vector<float> wscales_;   // per-output-feature dequant scales
};

}  // namespace poe

#endif  // POE_NN_LINEAR_H_

// Fully-connected layer.
#ifndef POE_NN_LINEAR_H_
#define POE_NN_LINEAR_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "nn/module.h"
#include "tensor/gemm.h"
#include "tensor/gemm_s8.h"
#include "util/rng.h"

namespace poe {

/// y = x W^T + b over 2-D [batch, in_features] inputs.
/// Weight shape [out_features, in_features].
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, Rng& rng,
         bool bias = true);

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  void CollectParameters(std::vector<Parameter*>* out) override;
  bool CanFuseRelu() const override { return true; }
  Tensor ForwardFusedRelu(const Tensor& input) override;

  /// Dequant-free int8 serving: weights become int8 with per-output-
  /// feature scales, the f32 storage is released, and inference quantizes
  /// activations on the fly into the int8 GEMM (dequant + bias + ReLU
  /// fused in its output pass). Activations use the static calibrated
  /// scale when one was observed, else a dynamic per-tensor max-abs scale.
  /// Irreversible; training is forbidden afterwards.
  void PrepareInt8Serving() override;
  int64_t Int8WeightBytes() const override;
  bool int8_serving() const { return int8_serving_; }

  /// Pack-once serving: materializes the persistent op(B) = W^T panels
  /// (f32 PackedBWeights or int8 PackedS8BWeights per `precision`, which
  /// must match the current serving mode) so every subsequent inference
  /// forward skips the per-call transposed B pack. Idempotent and safe
  /// against concurrent forwards: the packed form is published with
  /// release/acquire ordering and forwards fall back to the per-call pack
  /// until it lands. A prepacked layer is inference-only.
  void Prepack(ServingPrecision precision) override;
  int64_t PackedWeightBytes() override;

  /// Static activation calibration (see Module). Observation happens on
  /// f32 inference forwards between Begin and Finish; single-threaded
  /// setup-time operation.
  void BeginActivationCalibration() override;
  void FinishActivationCalibration() override;
  float static_act_scale() const override { return act_scale_; }
  void set_static_act_scale(float scale) override { act_scale_ = scale; }

  void CollectQuantizable(std::vector<Module*>* out) override {
    out->push_back(this);
  }
  Result<Int8WeightState> ExportInt8State() const override;
  Status AdoptInt8State(Int8WeightState state) override;

  std::string Name() const override { return "Linear"; }

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }
  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }
  bool has_bias() const { return has_bias_; }

 private:
  Tensor ForwardImpl(const Tensor& input, bool training, bool fuse_relu);
  Tensor ForwardInt8(const Tensor& input, bool fuse_relu);
  void FinishInt8Setup();  // shared PrepareInt8Serving/Adopt tail

  int64_t in_features_, out_features_;
  bool has_bias_;
  Parameter weight_;
  Parameter bias_;
  Tensor cached_input_;

  // Int8 serving state (valid when int8_serving_). The row-major
  // qweight_ stays resident even after Prepack builds packed_qw_ — a
  // deliberate tradeoff: it backs the transparent per-call fallback
  // (forwards may race an in-flight Prepack, so freeing it on publish
  // would be unsafe) and the portable ExportInt8State, at the cost of
  // roughly doubling the int8 LINEAR weight footprint (head layers are
  // small next to the conv experts; both copies are counted honestly).
  // Halving it needs PackedS8BWeights::Unpack + conversion-time packing
  // (ROADMAP follow-on).
  bool int8_serving_ = false;
  std::vector<int8_t> qweight_;  // [out_features x in_features], row-major
  std::vector<float> wscales_;   // per-output-feature dequant scales

  // Static activation calibration (0 = dynamic per-forward max-abs).
  bool observe_act_ = false;
  float observed_act_max_ = 0.0f;
  float act_scale_ = 0.0f;

  // Pack-once serving state. The ready flags publish the packed forms to
  // concurrent forwards (store-release after building, load-acquire in
  // the fast path); prepack_mu_ serializes builders.
  std::mutex prepack_mu_;
  PackedBWeights packed_w_;       // f32 op(B) = W^T panels
  PackedS8BWeights packed_qw_;    // int8 op(B) = W^T panels + colsums
  std::atomic<bool> f32_packed_{false};
  std::atomic<bool> int8_packed_{false};
};

}  // namespace poe

#endif  // POE_NN_LINEAR_H_

// Fully-connected layer.
#ifndef POE_NN_LINEAR_H_
#define POE_NN_LINEAR_H_

#include <string>
#include <vector>

#include "nn/module.h"
#include "util/rng.h"

namespace poe {

/// y = x W^T + b over 2-D [batch, in_features] inputs.
/// Weight shape [out_features, in_features].
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, Rng& rng,
         bool bias = true);

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  void CollectParameters(std::vector<Parameter*>* out) override;
  bool CanFuseRelu() const override { return true; }
  Tensor ForwardFusedRelu(const Tensor& input) override;
  std::string Name() const override { return "Linear"; }

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }
  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }
  bool has_bias() const { return has_bias_; }

 private:
  Tensor ForwardImpl(const Tensor& input, bool training, bool fuse_relu);

  int64_t in_features_, out_features_;
  bool has_bias_;
  Parameter weight_;
  Parameter bias_;
  Tensor cached_input_;
};

}  // namespace poe

#endif  // POE_NN_LINEAR_H_

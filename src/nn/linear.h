// Fully-connected layer.
#ifndef POE_NN_LINEAR_H_
#define POE_NN_LINEAR_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "nn/module.h"
#include "tensor/gemm.h"
#include "tensor/gemm_s8.h"
#include "util/rng.h"

namespace poe {

/// y = x W^T + b over 2-D [batch, in_features] inputs.
/// Weight shape [out_features, in_features].
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, Rng& rng,
         bool bias = true);

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  void CollectParameters(std::vector<Parameter*>* out) override;
  bool CanFuseRelu() const override { return true; }
  Tensor ForwardFusedRelu(const Tensor& input) override;

  /// Dequant-free int8 serving: weights become int8 with per-output-
  /// feature scales, the f32 storage is released, and inference quantizes
  /// activations on the fly into the int8 GEMM (dequant + bias + ReLU
  /// fused in its output pass). Activations use the static calibrated
  /// scale when one was observed, else a dynamic per-tensor max-abs scale.
  /// Irreversible; training is forbidden afterwards.
  void PrepareInt8Serving() override;
  int64_t Int8WeightBytes() const override;
  bool int8_serving() const { return int8_serving_; }

  /// Pack-once serving. kFloat32 materializes the persistent f32 op(B) =
  /// W^T panels so subsequent inference forwards skip the per-call
  /// transposed B pack; the packed form is published with release/acquire
  /// ordering and forwards fall back to the per-call pack until it lands.
  /// kInt8 is satisfied already — the int8 panels are built at
  /// PrepareInt8Serving/Adopt time (conversion-time packing), so the int8
  /// branch is an idempotent no-op. A prepacked layer is inference-only.
  void Prepack(ServingPrecision precision) override;
  int64_t PackedWeightBytes() override;

  /// Static activation calibration (see Module). Observation happens on
  /// f32 inference forwards between Begin and Finish; single-threaded
  /// setup-time operation.
  void BeginActivationCalibration() override;
  void FinishActivationCalibration() override;
  float static_act_scale() const override { return act_scale_; }
  void set_static_act_scale(float scale) override { act_scale_ = scale; }

  void CollectQuantizable(std::vector<Module*>* out) override {
    out->push_back(this);
  }
  Result<Int8WeightState> ExportInt8State() const override;
  Status AdoptInt8State(Int8WeightState state) override;

  std::string Name() const override { return "Linear"; }

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }
  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }
  bool has_bias() const { return has_bias_; }

 private:
  Tensor ForwardImpl(const Tensor& input, bool training, bool fuse_relu);
  Tensor ForwardInt8(const Tensor& input, bool fuse_relu);
  /// Shared PrepareInt8Serving/Adopt tail: packs `values` (row-major
  /// [out_features x in_features]) into the kernel-layout op(B) panels
  /// and releases the f32 weight.
  void FinishInt8Setup(const int8_t* values);

  int64_t in_features_, out_features_;
  bool has_bias_;
  Parameter weight_;
  Parameter bias_;
  Tensor cached_input_;

  // Int8 serving state (valid when int8_serving_). Only the packed op(B)
  // panels stay resident: they are built at conversion time — before
  // int8_serving_ publishes, so no forward can race an unpacked window —
  // and ExportInt8State reconstructs the portable row-major form through
  // PackedS8BWeights::Unpack. No second raw copy of the weights exists
  // (the raw-copy-plus-panels tradeoff this replaces roughly doubled the
  // int8 Linear footprint).
  bool int8_serving_ = false;
  std::vector<float> wscales_;  // per-output-feature dequant scales

  // Static activation calibration (0 = dynamic per-forward max-abs).
  bool observe_act_ = false;
  float observed_act_max_ = 0.0f;
  float act_scale_ = 0.0f;

  // Pack-once serving state. The f32 ready flag publishes the packed form
  // to concurrent forwards (store-release after building, load-acquire in
  // the fast path); prepack_mu_ serializes builders. The int8 panels need
  // no flag: they exist whenever int8_serving_ does.
  std::mutex prepack_mu_;
  PackedBWeights packed_w_;     // f32 op(B) = W^T panels
  PackedS8BWeights packed_qw_;  // int8 op(B) = W^T panels + colsums
  std::atomic<bool> f32_packed_{false};
};

}  // namespace poe

#endif  // POE_NN_LINEAR_H_

#include "nn/linear.h"

#include <algorithm>
#include <utility>

#include "nn/init.h"
#include "tensor/arena.h"
#include "util/logging.h"

namespace poe {

Linear::Linear(int64_t in_features, int64_t out_features, Rng& rng, bool bias)
    : in_features_(in_features),
      out_features_(out_features),
      has_bias_(bias) {
  weight_ = Parameter("linear.weight",
                      HeNormal({out_features, in_features}, in_features, rng));
  if (has_bias_) {
    bias_ = Parameter("linear.bias",
                      FanInUniform({out_features}, in_features, rng));
  }
}

Tensor Linear::Forward(const Tensor& input, bool training) {
  return ForwardImpl(input, training, /*fuse_relu=*/false);
}

Tensor Linear::ForwardFusedRelu(const Tensor& input) {
  return ForwardImpl(input, /*training=*/false, /*fuse_relu=*/true);
}

Tensor Linear::ForwardImpl(const Tensor& input, bool training,
                           bool fuse_relu) {
  if (int8_serving_) {
    POE_CHECK(!training) << "int8-serving Linear is inference-only";
    return ForwardInt8(input, fuse_relu);
  }
  POE_CHECK_EQ(input.ndim(), 2);
  POE_CHECK_EQ(input.dim(1), in_features_);
  if (observe_act_ && !training) {
    observed_act_max_ =
        std::max(observed_act_max_, MaxAbs(input.data(), input.numel()));
  }
  const int64_t batch = input.dim(0);
  Tensor output({batch, out_features_});
  GemmEpilogue ep;
  ep.col_bias = has_bias_ ? bias_.value.data() : nullptr;
  ep.relu = fuse_relu;
  // y = x (batch x in) * W^T (in x out), bias/ReLU fused into the store.
  if (!training && f32_packed_.load(std::memory_order_acquire)) {
    // Pack-once fast path: bitwise identical to the per-call-pack GEMM.
    GemmPackedB(batch, input.data(), /*trans_a=*/false, packed_w_, 1.0f,
                0.0f, output.data(), ep, /*parallel=*/true);
    return output;
  }
  POE_CHECK(!training || !f32_packed_.load(std::memory_order_relaxed))
      << "prepacked Linear is inference-only (packed panels would go stale)";
  GemmEx(false, true, batch, out_features_, in_features_, 1.0f, input.data(),
         weight_.value.data(), 0.0f, output.data(), ep, /*parallel=*/true);
  if (training) cached_input_ = input;
  return output;
}

// Int8 serving forward: per-tensor activation quantization (static
// calibrated scale when present, else a dynamic max-abs pass), then
// y = x_q * W_q^T with per-output-feature dequantization, bias, and ReLU
// fused into the GEMM's int32 -> f32 output pass. The weight panels were
// packed at conversion time, so no per-call B pack — and no raw weight
// copy — exists on this path.
Tensor Linear::ForwardInt8(const Tensor& input, bool fuse_relu) {
  POE_CHECK_EQ(input.ndim(), 2);
  POE_CHECK_EQ(input.dim(1), in_features_);
  const int64_t batch = input.dim(0);
  Tensor output({batch, out_features_});

  const float act_scale =
      act_scale_ > 0.0f ? act_scale_
                        : SymmetricScaleS8(input.data(), input.numel());

  ScratchScope scope;
  int8_t* q_in = AllocS8(scope, input.numel());
  QuantizeBufferS8(input.data(), input.numel(), 1.0f / act_scale, q_in);

  GemmS8Epilogue ep;
  ep.scale = act_scale;
  ep.col_scale = wscales_.data();
  ep.col_bias = has_bias_ ? bias_.value.data() : nullptr;
  ep.relu = fuse_relu;
  POE_CHECK(!packed_qw_.empty()) << "int8 Linear without packed panels";
  GemmS8PackedB(/*trans_a=*/false, batch, q_in, packed_qw_, output.data(),
                ep, /*parallel=*/true);
  return output;
}

void Linear::PrepareInt8Serving() {
  if (int8_serving_) return;
  wscales_.resize(out_features_);
  std::vector<int8_t> q(static_cast<size_t>(out_features_ * in_features_));
  const float* wp = weight_.value.data();
  for (int64_t of = 0; of < out_features_; ++of) {
    const float* row = wp + of * in_features_;
    wscales_[of] = SymmetricScaleS8(row, in_features_);
    QuantizeBufferS8(row, in_features_, 1.0f / wscales_[of],
                     q.data() + of * in_features_);
  }
  FinishInt8Setup(q.data());
}

void Linear::FinishInt8Setup(const int8_t* values) {
  // Serialized against Prepack: pool copies share master modules, so a
  // conversion through one copy must not race another copy's prepacking
  // of the same layer.
  std::lock_guard<std::mutex> lock(prepack_mu_);
  // Pack once into the kernel-layout op(B) panels before int8_serving_
  // publishes; only the packed form stays resident (persistence exports
  // the portable row-major form via Unpack).
  packed_qw_ = PackedS8BWeights::Pack(/*trans_b=*/true, in_features_,
                                      out_features_, values);
  // Release the f32 weight storage for good, along with any now-stale
  // f32 packed panels.
  f32_packed_.store(false, std::memory_order_release);
  packed_w_ = PackedBWeights();
  weight_.value = Tensor();
  weight_.grad = Tensor();
  weight_.trainable = false;
  int8_serving_ = true;
}

void Linear::Prepack(ServingPrecision precision) {
  std::lock_guard<std::mutex> lock(prepack_mu_);
  // Packs the form the layer CURRENTLY serves (an int8-converted layer
  // packs int8 even under a caller still labeled f32 — pool copies share
  // masters, so a stale copy may acquire after another converted them).
  // The reverse direction is a genuine ordering bug.
  POE_CHECK(precision != ServingPrecision::kInt8 || int8_serving_)
      << "Prepack(kInt8) requires PrepareInt8Serving first";
  // Int8 panels were built at conversion (FinishInt8Setup); nothing to do.
  if (int8_serving_) return;
  if (f32_packed_.load(std::memory_order_relaxed)) return;
  packed_w_ = PackedBWeights::Pack(/*trans_b=*/true, in_features_,
                                   out_features_, weight_.value.data());
  f32_packed_.store(true, std::memory_order_release);
}

int64_t Linear::PackedWeightBytes() {
  // f32 panels only: the int8 panels ARE the serving weight and are
  // already counted by Int8WeightBytes (module.h's accounting contract).
  return f32_packed_.load(std::memory_order_acquire) ? packed_w_.nbytes()
                                                     : 0;
}

void Linear::BeginActivationCalibration() {
  observe_act_ = true;
  observed_act_max_ = 0.0f;
}

void Linear::FinishActivationCalibration() {
  observe_act_ = false;
  // Zero observation -> stay dynamic (see Conv2d: a frozen guess would
  // saturate real activations and be persisted with the pool).
  act_scale_ = observed_act_max_ > 0.0f ? observed_act_max_ / 127.0f : 0.0f;
}

Result<Int8WeightState> Linear::ExportInt8State() const {
  if (!int8_serving_) {
    return Status::FailedPrecondition(
        "Linear has no int8 state to export (still serving f32)");
  }
  Int8WeightState state;
  state.rows = out_features_;
  state.cols = in_features_;
  state.values.resize(static_cast<size_t>(out_features_ * in_features_));
  packed_qw_.Unpack(state.values.data());  // portable row-major form
  state.scales = wscales_;
  state.act_scale = act_scale_;
  return state;
}

Status Linear::AdoptInt8State(Int8WeightState state) {
  if (int8_serving_) {
    return Status::FailedPrecondition("Linear already serves int8");
  }
  if (state.rows != out_features_ || state.cols != in_features_ ||
      static_cast<int64_t>(state.values.size()) !=
          out_features_ * in_features_ ||
      static_cast<int64_t>(state.scales.size()) != out_features_) {
    return Status::Corruption("int8 state shape mismatch for Linear");
  }
  wscales_ = std::move(state.scales);
  act_scale_ = state.act_scale;
  // FinishInt8Setup packs straight into the serving panels: an adopted
  // layer (int8 pool load) never runs a per-call B pack.
  FinishInt8Setup(state.values.data());
  return Status::OK();
}

int64_t Linear::Int8WeightBytes() const {
  if (!int8_serving_) return 0;
  return packed_qw_.nbytes() +
         static_cast<int64_t>(wscales_.size() * sizeof(float));
}

Tensor Linear::Backward(const Tensor& grad_output) {
  POE_CHECK(!int8_serving_) << "int8-serving Linear cannot train";
  POE_CHECK(!f32_packed_.load(std::memory_order_relaxed))
      << "prepacked Linear cannot train";
  POE_CHECK(cached_input_.defined());
  const int64_t batch = cached_input_.dim(0);
  POE_CHECK_EQ(grad_output.dim(0), batch);
  POE_CHECK_EQ(grad_output.dim(1), out_features_);

  // dW += dY^T (out x batch) * X (batch x in).
  Gemm(true, false, out_features_, in_features_, batch, 1.0f,
       grad_output.data(), cached_input_.data(), 1.0f, weight_.grad.data());
  if (has_bias_) {
    float* db = bias_.grad.data();
    const float* g = grad_output.data();
    for (int64_t b = 0; b < batch; ++b)
      for (int64_t j = 0; j < out_features_; ++j)
        db[j] += g[b * out_features_ + j];
  }
  // dX = dY (batch x out) * W (out x in).
  Tensor grad_input({batch, in_features_});
  Gemm(false, false, batch, in_features_, out_features_, 1.0f,
       grad_output.data(), weight_.value.data(), 0.0f, grad_input.data());
  return grad_input;
}

void Linear::CollectParameters(std::vector<Parameter*>* out) {
  out->push_back(&weight_);
  if (has_bias_) out->push_back(&bias_);
}

}  // namespace poe

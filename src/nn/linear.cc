#include "nn/linear.h"

#include "nn/init.h"
#include "tensor/arena.h"
#include "tensor/gemm.h"
#include "tensor/gemm_s8.h"

namespace poe {

Linear::Linear(int64_t in_features, int64_t out_features, Rng& rng, bool bias)
    : in_features_(in_features),
      out_features_(out_features),
      has_bias_(bias) {
  weight_ = Parameter("linear.weight",
                      HeNormal({out_features, in_features}, in_features, rng));
  if (has_bias_) {
    bias_ = Parameter("linear.bias",
                      FanInUniform({out_features}, in_features, rng));
  }
}

Tensor Linear::Forward(const Tensor& input, bool training) {
  return ForwardImpl(input, training, /*fuse_relu=*/false);
}

Tensor Linear::ForwardFusedRelu(const Tensor& input) {
  return ForwardImpl(input, /*training=*/false, /*fuse_relu=*/true);
}

Tensor Linear::ForwardImpl(const Tensor& input, bool training,
                           bool fuse_relu) {
  if (int8_serving_) {
    POE_CHECK(!training) << "int8-serving Linear is inference-only";
    return ForwardInt8(input, fuse_relu);
  }
  POE_CHECK_EQ(input.ndim(), 2);
  POE_CHECK_EQ(input.dim(1), in_features_);
  const int64_t batch = input.dim(0);
  Tensor output({batch, out_features_});
  GemmEpilogue ep;
  ep.col_bias = has_bias_ ? bias_.value.data() : nullptr;
  ep.relu = fuse_relu;
  // y = x (batch x in) * W^T (in x out), bias/ReLU fused into the store.
  GemmEx(false, true, batch, out_features_, in_features_, 1.0f, input.data(),
         weight_.value.data(), 0.0f, output.data(), ep, /*parallel=*/true);
  if (training) cached_input_ = input;
  return output;
}

// Int8 serving forward: dynamic per-tensor activation quantization, then
// y = x_q * W_q^T with per-output-feature dequantization, bias, and ReLU
// fused into the GEMM's int32 -> f32 output pass.
Tensor Linear::ForwardInt8(const Tensor& input, bool fuse_relu) {
  POE_CHECK_EQ(input.ndim(), 2);
  POE_CHECK_EQ(input.dim(1), in_features_);
  const int64_t batch = input.dim(0);
  Tensor output({batch, out_features_});

  const float act_scale = SymmetricScaleS8(input.data(), input.numel());

  ScratchScope scope;
  int8_t* q_in = AllocS8(scope, input.numel());
  QuantizeBufferS8(input.data(), input.numel(), 1.0f / act_scale, q_in);

  GemmS8Epilogue ep;
  ep.scale = act_scale;
  ep.col_scale = wscales_.data();
  ep.col_bias = has_bias_ ? bias_.value.data() : nullptr;
  ep.relu = fuse_relu;
  GemmS8(false, true, batch, out_features_, in_features_, q_in,
         qweight_.data(), output.data(), ep, /*parallel=*/true);
  return output;
}

void Linear::PrepareInt8Serving() {
  if (int8_serving_) return;
  wscales_.resize(out_features_);
  qweight_.resize(static_cast<size_t>(out_features_ * in_features_));
  const float* wp = weight_.value.data();
  for (int64_t of = 0; of < out_features_; ++of) {
    const float* row = wp + of * in_features_;
    wscales_[of] = SymmetricScaleS8(row, in_features_);
    QuantizeBufferS8(row, in_features_, 1.0f / wscales_[of],
                     qweight_.data() + of * in_features_);
  }
  weight_.value = Tensor();
  weight_.grad = Tensor();
  weight_.trainable = false;
  int8_serving_ = true;
}

int64_t Linear::Int8WeightBytes() const {
  if (!int8_serving_) return 0;
  return static_cast<int64_t>(qweight_.size()) +
         static_cast<int64_t>(wscales_.size() * sizeof(float));
}

Tensor Linear::Backward(const Tensor& grad_output) {
  POE_CHECK(!int8_serving_) << "int8-serving Linear cannot train";
  POE_CHECK(cached_input_.defined());
  const int64_t batch = cached_input_.dim(0);
  POE_CHECK_EQ(grad_output.dim(0), batch);
  POE_CHECK_EQ(grad_output.dim(1), out_features_);

  // dW += dY^T (out x batch) * X (batch x in).
  Gemm(true, false, out_features_, in_features_, batch, 1.0f,
       grad_output.data(), cached_input_.data(), 1.0f, weight_.grad.data());
  if (has_bias_) {
    float* db = bias_.grad.data();
    const float* g = grad_output.data();
    for (int64_t b = 0; b < batch; ++b)
      for (int64_t j = 0; j < out_features_; ++j)
        db[j] += g[b * out_features_ + j];
  }
  // dX = dY (batch x out) * W (out x in).
  Tensor grad_input({batch, in_features_});
  Gemm(false, false, batch, in_features_, out_features_, 1.0f,
       grad_output.data(), weight_.value.data(), 0.0f, grad_input.data());
  return grad_input;
}

void Linear::CollectParameters(std::vector<Parameter*>* out) {
  out->push_back(&weight_);
  if (has_bias_) out->push_back(&bias_);
}

}  // namespace poe

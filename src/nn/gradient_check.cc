#include "nn/gradient_check.h"

#include <algorithm>
#include <cmath>

namespace poe {

namespace {

double Objective(Module& module, const Tensor& input) {
  Tensor out = module.Forward(input, /*training=*/true);
  const float* p = out.data();
  double acc = 0.0;
  for (int64_t i = 0; i < out.numel(); ++i)
    acc += 0.5 * static_cast<double>(p[i]) * p[i];
  return acc;
}

float RelError(double analytic, double numeric) {
  const double denom =
      std::max({1.0, std::fabs(analytic), std::fabs(numeric)});
  return static_cast<float>(std::fabs(analytic - numeric) / denom);
}

}  // namespace

GradCheckResult CheckModuleGradients(Module& module, const Tensor& input,
                                     float epsilon) {
  GradCheckResult result;

  // Analytic pass: d(0.5*||y||^2)/dy = y.
  module.ZeroGrad();
  Tensor x = input.Clone();
  Tensor out = module.Forward(x, /*training=*/true);
  Tensor grad_input = module.Backward(out);

  // Input gradients.
  for (int64_t i = 0; i < x.numel(); ++i) {
    const float saved = x.at(i);
    x.at(i) = saved + epsilon;
    const double plus = Objective(module, x);
    x.at(i) = saved - epsilon;
    const double minus = Objective(module, x);
    x.at(i) = saved;
    const double numeric = (plus - minus) / (2.0 * epsilon);
    result.max_input_grad_error = std::max(
        result.max_input_grad_error, RelError(grad_input.at(i), numeric));
  }

  // Parameter gradients. BatchNorm running stats drift across the extra
  // forwards; tolerances in tests account for that.
  for (Parameter* p : module.Parameters()) {
    for (int64_t i = 0; i < p->value.numel(); ++i) {
      const float saved = p->value.at(i);
      p->value.at(i) = saved + epsilon;
      const double plus = Objective(module, x);
      p->value.at(i) = saved - epsilon;
      const double minus = Objective(module, x);
      p->value.at(i) = saved;
      const double numeric = (plus - minus) / (2.0 * epsilon);
      result.max_param_grad_error = std::max(
          result.max_param_grad_error, RelError(p->grad.at(i), numeric));
    }
  }
  return result;
}

}  // namespace poe

#include "nn/basic_block.h"

#include "tensor/ops.h"

namespace poe {

BasicBlock::BasicBlock(int64_t in_channels, int64_t out_channels,
                       int64_t stride, Rng& rng)
    : bn1_(in_channels),
      conv1_(in_channels, out_channels, /*kernel=*/3, stride, /*pad=*/1, rng),
      bn2_(out_channels),
      conv2_(out_channels, out_channels, /*kernel=*/3, /*stride=*/1,
             /*pad=*/1, rng) {
  if (in_channels != out_channels || stride != 1) {
    projection_ = std::make_unique<Conv2d>(in_channels, out_channels,
                                           /*kernel=*/1, stride, /*pad=*/0,
                                           rng);
  }
}

Tensor BasicBlock::Forward(const Tensor& input, bool training) {
  // Inference uses the fused BN+ReLU epilogue (one pass instead of two);
  // training keeps the separate modules so their backward caches fill.
  Tensor a = training
                 ? relu1_.Forward(bn1_.Forward(input, true), true)
                 : bn1_.ForwardFusedRelu(input);
  Tensor h = conv1_.Forward(a, training);
  h = training ? relu2_.Forward(bn2_.Forward(h, true), true)
               : bn2_.ForwardFusedRelu(h);
  h = conv2_.Forward(h, training);
  Tensor shortcut =
      projection_ ? projection_->Forward(a, training) : input;
  return Add(h, shortcut);
}

Tensor BasicBlock::Backward(const Tensor& grad_output) {
  // Residual path.
  Tensor g = conv2_.Backward(grad_output);
  g = bn2_.Backward(relu2_.Backward(g));
  Tensor grad_a = conv1_.Backward(g);
  if (projection_) {
    // Shortcut consumed `a` too: accumulate its contribution.
    AddInPlace(grad_a, projection_->Backward(grad_output));
    return bn1_.Backward(relu1_.Backward(grad_a));
  }
  // Identity shortcut consumed `input` directly.
  Tensor grad_input = bn1_.Backward(relu1_.Backward(grad_a));
  AddInPlace(grad_input, grad_output);
  return grad_input;
}

void BasicBlock::CollectParameters(std::vector<Parameter*>* out) {
  bn1_.CollectParameters(out);
  conv1_.CollectParameters(out);
  bn2_.CollectParameters(out);
  conv2_.CollectParameters(out);
  if (projection_) projection_->CollectParameters(out);
}

void BasicBlock::CollectBuffers(std::vector<Tensor*>* out) {
  bn1_.CollectBuffers(out);
  bn2_.CollectBuffers(out);
}

void BasicBlock::PrepareInt8Serving() {
  // Convolutions serve int8; batch-norms stay f32 (their state is tiny and
  // they consume the conv's dequantized f32 output directly).
  conv1_.PrepareInt8Serving();
  conv2_.PrepareInt8Serving();
  if (projection_) projection_->PrepareInt8Serving();
}

int64_t BasicBlock::Int8WeightBytes() const {
  int64_t total = conv1_.Int8WeightBytes() + conv2_.Int8WeightBytes();
  if (projection_) total += projection_->Int8WeightBytes();
  return total;
}

void BasicBlock::CollectChildren(std::vector<Module*>* out) {
  out->push_back(&bn1_);
  out->push_back(&conv1_);
  out->push_back(&bn2_);
  out->push_back(&conv2_);
  if (projection_) out->push_back(projection_.get());
}

}  // namespace poe

#include "nn/init.h"

#include <cmath>

#include "util/logging.h"

namespace poe {

Tensor HeNormal(std::vector<int64_t> shape, int64_t fan_in, Rng& rng) {
  POE_CHECK_GT(fan_in, 0);
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  return Tensor::Randn(std::move(shape), rng, stddev);
}

Tensor FanInUniform(std::vector<int64_t> shape, int64_t fan_in, Rng& rng) {
  POE_CHECK_GT(fan_in, 0);
  const float bound = 1.0f / std::sqrt(static_cast<float>(fan_in));
  return Tensor::Rand(std::move(shape), rng, -bound, bound);
}

}  // namespace poe

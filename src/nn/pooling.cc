#include "nn/pooling.h"

namespace poe {

Tensor GlobalAvgPool::Forward(const Tensor& input, bool training) {
  POE_CHECK_EQ(input.ndim(), 4);
  const int64_t batch = input.dim(0);
  const int64_t channels = input.dim(1);
  const int64_t hw = input.dim(2) * input.dim(3);
  POE_CHECK_GT(hw, 0);
  Tensor output({batch, channels});
  const float* in = input.data();
  float* out = output.data();
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t c = 0; c < channels; ++c) {
      const float* p = in + (b * channels + c) * hw;
      float acc = 0.0f;
      for (int64_t i = 0; i < hw; ++i) acc += p[i];
      out[b * channels + c] = acc / static_cast<float>(hw);
    }
  }
  if (training) cached_shape_ = input.shape();
  return output;
}

Tensor GlobalAvgPool::Backward(const Tensor& grad_output) {
  POE_CHECK(!cached_shape_.empty());
  const int64_t batch = cached_shape_[0];
  const int64_t channels = cached_shape_[1];
  const int64_t hw = cached_shape_[2] * cached_shape_[3];
  POE_CHECK_EQ(grad_output.dim(0), batch);
  POE_CHECK_EQ(grad_output.dim(1), channels);
  Tensor grad_input(cached_shape_);
  const float* g = grad_output.data();
  float* out = grad_input.data();
  const float inv = 1.0f / static_cast<float>(hw);
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t c = 0; c < channels; ++c) {
      const float v = g[b * channels + c] * inv;
      float* p = out + (b * channels + c) * hw;
      for (int64_t i = 0; i < hw; ++i) p[i] = v;
    }
  }
  return grad_input;
}

Tensor Flatten::Forward(const Tensor& input, bool training) {
  POE_CHECK_GE(input.ndim(), 2);
  if (training) cached_shape_ = input.shape();
  return input.Reshape({input.dim(0), input.numel() / input.dim(0)});
}

Tensor Flatten::Backward(const Tensor& grad_output) {
  POE_CHECK(!cached_shape_.empty());
  return grad_output.Reshape(cached_shape_);
}

}  // namespace poe

#include "nn/sequential.h"

namespace poe {

Module* Sequential::Add(ModulePtr module) {
  POE_CHECK(module != nullptr);
  modules_.push_back(std::move(module));
  return modules_.back().get();
}

Tensor Sequential::Forward(const Tensor& input, bool training) {
  Tensor x = input;
  for (auto& m : modules_) x = m->Forward(x, training);
  return x;
}

Tensor Sequential::Backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = modules_.rbegin(); it != modules_.rend(); ++it) {
    g = (*it)->Backward(g);
  }
  return g;
}

void Sequential::CollectParameters(std::vector<Parameter*>* out) {
  for (auto& m : modules_) m->CollectParameters(out);
}

void Sequential::CollectBuffers(std::vector<Tensor*>* out) {
  for (auto& m : modules_) m->CollectBuffers(out);
}

}  // namespace poe

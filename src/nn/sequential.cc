#include "nn/sequential.h"

#include "nn/activations.h"

namespace poe {

Module* Sequential::Add(ModulePtr module) {
  POE_CHECK(module != nullptr);
  modules_.push_back(std::move(module));
  return modules_.back().get();
}

Tensor Sequential::Forward(const Tensor& input, bool training) {
  Tensor x = input;
  for (size_t i = 0; i < modules_.size(); ++i) {
    // At inference, collapse `X -> ReLU` into X's fused epilogue so the
    // activation costs no extra pass over the tensor.
    if (!training && i + 1 < modules_.size() && modules_[i]->CanFuseRelu() &&
        dynamic_cast<const ReLU*>(modules_[i + 1].get()) != nullptr) {
      x = modules_[i]->ForwardFusedRelu(x);
      ++i;
      continue;
    }
    x = modules_[i]->Forward(x, training);
  }
  return x;
}

Tensor Sequential::Backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = modules_.rbegin(); it != modules_.rend(); ++it) {
    g = (*it)->Backward(g);
  }
  return g;
}

void Sequential::CollectParameters(std::vector<Parameter*>* out) {
  for (auto& m : modules_) m->CollectParameters(out);
}

void Sequential::CollectBuffers(std::vector<Tensor*>* out) {
  for (auto& m : modules_) m->CollectBuffers(out);
}

void Sequential::PrepareInt8Serving() {
  for (auto& m : modules_) m->PrepareInt8Serving();
}

int64_t Sequential::Int8WeightBytes() const {
  int64_t total = 0;
  for (const auto& m : modules_) total += m->Int8WeightBytes();
  return total;
}

}  // namespace poe

// Stochastic gradient descent with momentum and weight decay.
#ifndef POE_NN_SGD_H_
#define POE_NN_SGD_H_

#include <unordered_map>
#include <vector>

#include "nn/parameter.h"

namespace poe {

/// SGD options; defaults match the paper's training setup (0.9 momentum,
/// 5e-4 L2 weight decay).
struct SgdOptions {
  float lr = 0.1f;
  float momentum = 0.9f;
  float weight_decay = 5e-4f;
};

/// Classic momentum SGD:
///   v <- momentum * v + (grad + weight_decay * w)
///   w <- w - lr * v
/// Parameters with trainable == false are skipped entirely.
class Sgd {
 public:
  Sgd(std::vector<Parameter*> params, SgdOptions options);

  /// Applies one update using the currently accumulated gradients.
  void Step();

  /// Zeroes gradients of all managed parameters.
  void ZeroGrad();

  void set_lr(float lr) { options_.lr = lr; }
  float lr() const { return options_.lr; }
  const SgdOptions& options() const { return options_; }

 private:
  std::vector<Parameter*> params_;
  SgdOptions options_;
  std::unordered_map<Parameter*, Tensor> velocity_;
};

}  // namespace poe

#endif  // POE_NN_SGD_H_

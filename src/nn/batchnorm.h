// Batch normalization over NCHW feature maps.
#ifndef POE_NN_BATCHNORM_H_
#define POE_NN_BATCHNORM_H_

#include <string>
#include <vector>

#include "nn/module.h"

namespace poe {

/// BatchNorm2d: per-channel normalization with affine transform and running
/// statistics for inference (PyTorch semantics: biased variance for the
/// batch statistic, running stats updated with `momentum`).
class BatchNorm2d : public Module {
 public:
  explicit BatchNorm2d(int64_t channels, float eps = 1e-5f,
                       float momentum = 0.1f);

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  void CollectParameters(std::vector<Parameter*>* out) override;
  void CollectBuffers(std::vector<Tensor*>* out) override;
  bool CanFuseRelu() const override { return true; }
  /// Inference normalize with max(0, scale*x + shift) in one pass.
  Tensor ForwardFusedRelu(const Tensor& input) override;
  std::string Name() const override { return "BatchNorm2d"; }

  int64_t channels() const { return channels_; }
  Parameter& gamma() { return gamma_; }
  Parameter& beta() { return beta_; }
  /// Running statistics (not trainable; serialized with the model).
  Tensor& running_mean() { return running_mean_; }
  Tensor& running_var() { return running_var_; }

 private:
  // Shared inference path: out = scale*x + shift from running stats, with
  // optional fused ReLU.
  void InferenceNormalize(const Tensor& input, Tensor* output, bool relu);

  int64_t channels_;
  float eps_, momentum_;
  Parameter gamma_;
  Parameter beta_;
  Tensor running_mean_;
  Tensor running_var_;

  // Backward caches.
  Tensor cached_xhat_;
  std::vector<float> cached_inv_std_;
  int64_t cached_batch_ = 0, cached_hw_ = 0;
};

}  // namespace poe

#endif  // POE_NN_BATCHNORM_H_

// Sequential container of modules.
#ifndef POE_NN_SEQUENTIAL_H_
#define POE_NN_SEQUENTIAL_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "nn/module.h"

namespace poe {

/// Chains modules; Forward applies them in order, Backward in reverse.
class Sequential : public Module {
 public:
  Sequential() = default;

  /// Appends a module (takes ownership) and returns a raw borrow.
  Module* Add(ModulePtr module);

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  void CollectParameters(std::vector<Parameter*>* out) override;
  void CollectBuffers(std::vector<Tensor*>* out) override;
  void PrepareInt8Serving() override;
  int64_t Int8WeightBytes() const override;
  void CollectChildren(std::vector<Module*>* out) override {
    for (auto& m : modules_) out->push_back(m.get());
  }
  std::string Name() const override { return "Sequential"; }

  size_t size() const { return modules_.size(); }
  Module* at(size_t i) { return modules_.at(i).get(); }
  const Module* at(size_t i) const { return modules_.at(i).get(); }

 private:
  std::vector<ModulePtr> modules_;
};

}  // namespace poe

#endif  // POE_NN_SEQUENTIAL_H_

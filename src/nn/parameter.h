// Trainable parameter: a value tensor paired with its gradient.
#ifndef POE_NN_PARAMETER_H_
#define POE_NN_PARAMETER_H_

#include <string>
#include <utility>

#include "tensor/tensor.h"

namespace poe {

/// A named trainable tensor. `grad` always has the same shape as `value`
/// and is accumulated by Module::Backward; optimizers consume and the
/// caller resets it via Module::ZeroGrad.
///
/// `trainable == false` freezes the parameter: backward still propagates
/// through it but the optimizer skips the update (used by PoE to freeze the
/// library component during expert extraction).
struct Parameter {
  Parameter() = default;
  Parameter(std::string name_in, Tensor value_in)
      : name(std::move(name_in)),
        value(std::move(value_in)),
        grad(Tensor::Zeros(value.shape())) {}

  std::string name;
  Tensor value;
  Tensor grad;
  bool trainable = true;
};

}  // namespace poe

#endif  // POE_NN_PARAMETER_H_

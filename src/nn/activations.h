// Activation layers.
#ifndef POE_NN_ACTIVATIONS_H_
#define POE_NN_ACTIVATIONS_H_

#include <string>
#include <vector>

#include "nn/module.h"

namespace poe {

/// Elementwise rectified linear unit.
class ReLU : public Module {
 public:
  ReLU() = default;

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  void CollectParameters(std::vector<Parameter*>*) override {}
  std::string Name() const override { return "ReLU"; }

 private:
  Tensor cached_input_;
};

}  // namespace poe

#endif  // POE_NN_ACTIVATIONS_H_

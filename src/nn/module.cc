#include "nn/module.h"

#include <algorithm>

namespace poe {

Tensor Module::ForwardFusedRelu(const Tensor& input) {
  Tensor out = Forward(input, /*training=*/false);
  // Pass-through modules (e.g. reshapes) may return a view of the input;
  // clamping that in place would corrupt the caller's tensor.
  if (out.SharesStorageWith(input)) out = out.Clone();
  float* p = out.data();
  const int64_t n = out.numel();
  for (int64_t i = 0; i < n; ++i) p[i] = std::max(0.0f, p[i]);
  return out;
}

std::vector<Parameter*> Module::Parameters() {
  std::vector<Parameter*> out;
  CollectParameters(&out);
  return out;
}

void Module::ZeroGrad() {
  for (Parameter* p : Parameters()) p->grad.Fill(0.0f);
}

void Module::SetTrainable(bool trainable) {
  for (Parameter* p : Parameters()) p->trainable = trainable;
}

int64_t Module::NumParams() {
  int64_t n = 0;
  for (Parameter* p : Parameters()) n += p->value.numel();
  return n;
}

void Module::Prepack(ServingPrecision precision) {
  std::vector<Module*> children;
  CollectChildren(&children);
  for (Module* child : children) child->Prepack(precision);
}

int64_t Module::PackedWeightBytes() {
  std::vector<Module*> children;
  CollectChildren(&children);
  int64_t bytes = 0;
  for (Module* child : children) bytes += child->PackedWeightBytes();
  return bytes;
}

void Module::BeginActivationCalibration() {
  std::vector<Module*> children;
  CollectChildren(&children);
  for (Module* child : children) child->BeginActivationCalibration();
}

void Module::FinishActivationCalibration() {
  std::vector<Module*> children;
  CollectChildren(&children);
  for (Module* child : children) child->FinishActivationCalibration();
}

void Module::CollectQuantizable(std::vector<Module*>* out) {
  std::vector<Module*> children;
  CollectChildren(&children);
  for (Module* child : children) child->CollectQuantizable(out);
}

int64_t HeldStateBytes(Module& module) {
  int64_t bytes = module.Int8WeightBytes() + module.PackedWeightBytes();
  for (Parameter* p : module.Parameters()) bytes += p->value.nbytes();
  std::vector<Tensor*> buffers;
  module.CollectBuffers(&buffers);
  for (Tensor* b : buffers) bytes += b->nbytes();
  return bytes;
}

}  // namespace poe

#include "nn/module.h"

namespace poe {

std::vector<Parameter*> Module::Parameters() {
  std::vector<Parameter*> out;
  CollectParameters(&out);
  return out;
}

void Module::ZeroGrad() {
  for (Parameter* p : Parameters()) p->grad.Fill(0.0f);
}

void Module::SetTrainable(bool trainable) {
  for (Parameter* p : Parameters()) p->trainable = trainable;
}

int64_t Module::NumParams() {
  int64_t n = 0;
  for (Parameter* p : Parameters()) n += p->value.numel();
  return n;
}

}  // namespace poe

// Module: the base interface of the layer-graph training framework.
#ifndef POE_NN_MODULE_H_
#define POE_NN_MODULE_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/parameter.h"
#include "tensor/tensor.h"

namespace poe {

/// A differentiable computation node with explicit forward/backward.
///
/// Calling convention:
///  - Forward(x, training) caches whatever the backward pass needs.
///  - Backward(grad_out) must follow a Forward with training == true; it
///    accumulates parameter gradients (+=) and returns grad wrt the input.
///  - Modules own their parameters; CollectParameters exposes raw pointers
///    whose lifetime equals the module's.
class Module {
 public:
  virtual ~Module() = default;

  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// Computes the output for `input`. When `training`, caches activations
  /// for Backward and uses batch statistics in normalization layers.
  virtual Tensor Forward(const Tensor& input, bool training) = 0;

  /// Back-propagates `grad_output` (same shape as the last Forward output),
  /// accumulating parameter gradients; returns grad wrt the last input.
  virtual Tensor Backward(const Tensor& grad_output) = 0;

  /// Appends pointers to all parameters (recursively for containers).
  virtual void CollectParameters(std::vector<Parameter*>* out) = 0;

  /// Appends pointers to non-trainable state tensors (e.g. batch-norm
  /// running statistics). Containers recurse; leaves default to none.
  virtual void CollectBuffers(std::vector<Tensor*>* /*out*/) {}

  /// True when the module can fold a trailing ReLU into its inference
  /// forward pass (its output-writing epilogue). Sequential uses this to
  /// collapse `X -> ReLU` pairs into one pass at inference.
  virtual bool CanFuseRelu() const { return false; }

  /// Inference-only forward with ReLU fused into the output write. The
  /// base implementation falls back to Forward + an in-place clamp, so it
  /// is always safe to call; layers with CanFuseRelu() avoid the extra
  /// pass over the output.
  virtual Tensor ForwardFusedRelu(const Tensor& input);

  /// Switches the module to dequant-free int8 serving: layers with weight
  /// matrices (Conv2d, Linear) quantize them per-output-channel into
  /// packed int8 panels and release the f32 storage; containers recurse;
  /// everything else (activations, batch-norm) keeps serving f32. The
  /// conversion is irreversible and inference-only — training Forward and
  /// Backward are forbidden afterwards.
  virtual void PrepareInt8Serving() {}

  /// Bytes of packed int8 weight state held (scales included); 0 while
  /// serving f32. Containers report the sum over children.
  virtual int64_t Int8WeightBytes() const { return 0; }

  /// Layer type name for debugging/serialization ("Conv2d", ...).
  virtual std::string Name() const = 0;

  /// Convenience: all parameters as a vector.
  std::vector<Parameter*> Parameters();

  /// Zeroes all parameter gradients.
  void ZeroGrad();

  /// Marks all parameters (non-)trainable; frozen parameters are skipped by
  /// optimizers but still conduct gradients.
  void SetTrainable(bool trainable);

  /// Total number of parameter elements.
  int64_t NumParams();
};

/// Shorthand owning pointer used throughout model builders.
using ModulePtr = std::unique_ptr<Module>;

/// Bytes of weight state `module` actually holds in memory: f32
/// parameter/buffer storage still present plus packed int8 weight bytes.
/// For an int8-serving module this is the dequant-free footprint (released
/// f32 weights count zero); for a f32 module it matches the state size.
int64_t HeldStateBytes(Module& module);

}  // namespace poe

#endif  // POE_NN_MODULE_H_

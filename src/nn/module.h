// Module: the base interface of the layer-graph training framework.
#ifndef POE_NN_MODULE_H_
#define POE_NN_MODULE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/parameter.h"
#include "tensor/tensor.h"
#include "util/result.h"

namespace poe {

/// Numeric precision a module (and the pool built from modules) serves at.
/// kInt8 means weights are held as packed int8 with per-output-channel
/// scales and every forward pass runs the quantized GEMM.
enum class ServingPrecision { kFloat32, kInt8 };

/// Portable (kernel-layout-independent) snapshot of one layer's int8
/// serving state: the row-major quantized weight matrix, its per-row
/// (= per-output-channel) scales, and the static activation scale when the
/// layer was calibrated (0 = dynamic per-forward max-abs quantization).
/// This is what serialization persists for int8 pools — packed GEMM panels
/// are process-local and always rebuilt from this form on load.
struct Int8WeightState {
  int64_t rows = 0;  ///< output channels / features
  int64_t cols = 0;  ///< reduction depth (in_channels*k*k or in_features)
  std::vector<int8_t> values;  ///< rows x cols, row-major
  std::vector<float> scales;   ///< length rows
  float act_scale = 0.0f;      ///< 0 = dynamic activation quantization
};

/// A differentiable computation node with explicit forward/backward.
///
/// Calling convention:
///  - Forward(x, training) caches whatever the backward pass needs.
///  - Backward(grad_out) must follow a Forward with training == true; it
///    accumulates parameter gradients (+=) and returns grad wrt the input.
///  - Modules own their parameters; CollectParameters exposes raw pointers
///    whose lifetime equals the module's.
class Module {
 public:
  virtual ~Module() = default;

  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// Computes the output for `input`. When `training`, caches activations
  /// for Backward and uses batch statistics in normalization layers.
  virtual Tensor Forward(const Tensor& input, bool training) = 0;

  /// Back-propagates `grad_output` (same shape as the last Forward output),
  /// accumulating parameter gradients; returns grad wrt the last input.
  virtual Tensor Backward(const Tensor& grad_output) = 0;

  /// Appends pointers to all parameters (recursively for containers).
  virtual void CollectParameters(std::vector<Parameter*>* out) = 0;

  /// Appends pointers to non-trainable state tensors (e.g. batch-norm
  /// running statistics). Containers recurse; leaves default to none.
  virtual void CollectBuffers(std::vector<Tensor*>* /*out*/) {}

  /// True when the module can fold a trailing ReLU into its inference
  /// forward pass (its output-writing epilogue). Sequential uses this to
  /// collapse `X -> ReLU` pairs into one pass at inference.
  virtual bool CanFuseRelu() const { return false; }

  /// Inference-only forward with ReLU fused into the output write. The
  /// base implementation falls back to Forward + an in-place clamp, so it
  /// is always safe to call; layers with CanFuseRelu() avoid the extra
  /// pass over the output.
  virtual Tensor ForwardFusedRelu(const Tensor& input);

  /// Switches the module to dequant-free int8 serving: layers with weight
  /// matrices (Conv2d, Linear) quantize them per-output-channel into
  /// packed int8 panels and release the f32 storage; containers recurse;
  /// everything else (activations, batch-norm) keeps serving f32. The
  /// conversion is irreversible and inference-only — training Forward and
  /// Backward are forbidden afterwards.
  virtual void PrepareInt8Serving() {}

  /// Bytes of packed int8 weight state held (scales included); 0 while
  /// serving f32. Containers report the sum over children.
  virtual int64_t Int8WeightBytes() const { return 0; }

  /// Direct children of a container module (Sequential, BasicBlock, Wrn).
  /// Leaves append nothing. The default implementations of the traversal
  /// hooks below recurse through this, so containers override exactly one
  /// method to participate in prepacking / calibration / persistence.
  virtual void CollectChildren(std::vector<Module*>* /*out*/) {}

  /// Materializes persistent packed GEMM operands for the given serving
  /// precision ("pack once, run many"): Conv2d/Linear build the kernel-
  /// layout weight panels their inference forwards consume, so steady-
  /// state forwards skip the per-call packing pass. Idempotent and
  /// thread-safe; forwards fall back to per-call packing until the packed
  /// form is published. `precision` must match the layer's current
  /// serving mode (kInt8 requires PrepareInt8Serving first). A prepacked
  /// module is inference-only: the packed panels alias frozen weights.
  virtual void Prepack(ServingPrecision precision);

  /// Bytes of persistent packed weight panels built by Prepack (f32 and
  /// int8 forms not already counted by Int8WeightBytes). Part of the
  /// honest serving footprint (HeldStateBytes).
  virtual int64_t PackedWeightBytes();

  /// Static activation calibration: between Begin and Finish, f32
  /// inference forwards of Conv2d/Linear record the max-abs of their
  /// inputs; Finish freezes those observations into static activation
  /// scales, so int8 serving skips the per-forward max-abs pass.
  virtual void BeginActivationCalibration();
  virtual void FinishActivationCalibration();

  /// The frozen static activation scale of a quantizable leaf (0 while
  /// dynamic / not calibrated). The setter exists for persistence: f32
  /// pool payloads carry calibrated scales so a save/load cycle does not
  /// silently fall back to dynamic quantization.
  virtual float static_act_scale() const { return 0.0f; }
  virtual void set_static_act_scale(float /*scale*/) {}

  /// Appends the quantizable weight-bearing leaves (Conv2d, Linear) in
  /// traversal order — the layers whose int8 state serialization walks.
  virtual void CollectQuantizable(std::vector<Module*>* out);

  /// Leaf hooks for int8 pool persistence. Export snapshots the layer's
  /// quantized weights (FailedPrecondition unless int8-serving); Adopt
  /// installs a snapshot into a still-f32 layer — quantized values and
  /// scales are taken verbatim, packed panels are rebuilt for this
  /// process's kernel, the f32 weight storage is released, and the layer
  /// comes up serving int8 with no f32 round-trip.
  virtual Result<Int8WeightState> ExportInt8State() const {
    return Status::FailedPrecondition(Name() + " holds no int8 state");
  }
  virtual Status AdoptInt8State(Int8WeightState /*state*/) {
    return Status::FailedPrecondition(Name() + " cannot adopt int8 state");
  }

  /// Layer type name for debugging/serialization ("Conv2d", ...).
  virtual std::string Name() const = 0;

  /// Convenience: all parameters as a vector.
  std::vector<Parameter*> Parameters();

  /// Zeroes all parameter gradients.
  void ZeroGrad();

  /// Marks all parameters (non-)trainable; frozen parameters are skipped by
  /// optimizers but still conduct gradients.
  void SetTrainable(bool trainable);

  /// Total number of parameter elements.
  int64_t NumParams();
};

/// Shorthand owning pointer used throughout model builders.
using ModulePtr = std::unique_ptr<Module>;

/// Bytes of weight state `module` actually holds in memory: f32
/// parameter/buffer storage still present, packed int8 weight bytes, and
/// persistent prepacked GEMM panels (PackedWeightBytes). For an
/// int8-serving module this is the dequant-free footprint (released f32
/// weights count zero); for an unpacked f32 module it matches the state
/// size.
int64_t HeldStateBytes(Module& module);

}  // namespace poe

#endif  // POE_NN_MODULE_H_

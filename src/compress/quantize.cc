#include "compress/quantize.h"

#include <algorithm>
#include <cmath>

#include "tensor/gemm_s8.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace poe {

// Scale selection and rounding are the shared int8 primitives from
// tensor/gemm_s8.h (SymmetricScaleS8 / QuantizeBufferS8), so snapshots
// quantize exactly like the int8 serving layers — including the
// vectorized max-abs scan behind SymmetricScaleS8 (MaxAbs), which is
// bitwise-pinned to its scalar reference.

QuantizedTensor Quantize(const Tensor& tensor) {
  QuantizedTensor q;
  q.shape = tensor.shape();
  q.values.resize(tensor.numel());
  q.scale = SymmetricScaleS8(tensor.data(), tensor.numel());
  QuantizeBufferS8(tensor.data(), tensor.numel(), 1.0f / q.scale,
                   q.values.data());
  return q;
}

QuantizedTensor QuantizePerChannel(const Tensor& tensor) {
  POE_CHECK_GE(tensor.ndim(), 2) << "per-channel quantization needs a "
                                    "leading channel axis";
  QuantizedTensor q;
  q.shape = tensor.shape();
  q.axis = 0;
  q.values.resize(tensor.numel());
  const int64_t channels = tensor.dim(0);
  const int64_t stride = tensor.numel() / channels;
  q.channel_scales.resize(channels);
  const float* p = tensor.data();
  for (int64_t ch = 0; ch < channels; ++ch) {
    const float* row = p + ch * stride;
    q.channel_scales[ch] = SymmetricScaleS8(row, stride);
    QuantizeBufferS8(row, stride, 1.0f / q.channel_scales[ch],
                     q.values.data() + ch * stride);
  }
  return q;
}

Tensor Dequantize(const QuantizedTensor& quantized) {
  Tensor out(quantized.shape);
  float* p = out.data();
  if (quantized.axis < 0) {
    for (int64_t i = 0; i < out.numel(); ++i) {
      p[i] = quantized.scale * static_cast<float>(quantized.values[i]);
    }
    return out;
  }
  POE_CHECK_EQ(quantized.axis, 0);
  const int64_t channels = quantized.shape.empty() ? 1 : quantized.shape[0];
  POE_CHECK_EQ(channels,
               static_cast<int64_t>(quantized.channel_scales.size()));
  const int64_t stride = out.numel() / channels;
  for (int64_t ch = 0; ch < channels; ++ch) {
    const float scale = quantized.channel_scales[ch];
    float* row = p + ch * stride;
    const int8_t* src = quantized.values.data() + ch * stride;
    for (int64_t i = 0; i < stride; ++i) {
      row[i] = scale * static_cast<float>(src[i]);
    }
  }
  return out;
}

int64_t QuantizedModuleState::nbytes() const {
  int64_t total = 0;
  for (const QuantizedTensor& t : tensors) total += t.nbytes();
  return total;
}

QuantizedModuleState QuantizeModule(Module& module) {
  QuantizedModuleState state;
  for (Parameter* p : module.Parameters()) {
    POE_CHECK(p->value.defined())
        << "cannot snapshot " << p->name
        << ": its f32 storage was released (int8 serving mode)";
    // Matrix-shaped parameters are Conv2d/Linear weight matrices with
    // output channels on axis 0; give those per-channel scales so int8
    // serving loses no range to cross-channel magnitude spread.
    state.tensors.push_back(p->value.ndim() >= 2
                                ? QuantizePerChannel(p->value)
                                : Quantize(p->value));
  }
  std::vector<Tensor*> buffers;
  module.CollectBuffers(&buffers);
  for (Tensor* b : buffers) state.tensors.push_back(Quantize(*b));
  return state;
}

Status DequantizeInto(const QuantizedModuleState& state, Module& module) {
  std::vector<Parameter*> params = module.Parameters();
  std::vector<Tensor*> buffers;
  module.CollectBuffers(&buffers);
  if (state.tensors.size() != params.size() + buffers.size()) {
    return Status::Corruption("quantized state tensor count mismatch");
  }
  size_t i = 0;
  for (Parameter* p : params) {
    if (state.tensors[i].shape != p->value.shape()) {
      return Status::Corruption("quantized tensor shape mismatch");
    }
    p->value = Dequantize(state.tensors[i++]);
  }
  for (Tensor* b : buffers) {
    if (state.tensors[i].shape != b->shape()) {
      return Status::Corruption("quantized buffer shape mismatch");
    }
    *b = Dequantize(state.tensors[i++]);
  }
  return Status::OK();
}

float QuantizationError(Module& module) {
  float worst = 0.0f;
  for (Parameter* p : module.Parameters()) {
    POE_CHECK(p->value.defined())
        << "cannot measure " << p->name
        << ": its f32 storage was released (int8 serving mode)";
    Tensor round_trip = Dequantize(Quantize(p->value));
    worst = std::max(worst, MaxAbsDiff(p->value, round_trip));
  }
  std::vector<Tensor*> buffers;
  module.CollectBuffers(&buffers);
  for (Tensor* b : buffers) {
    Tensor round_trip = Dequantize(Quantize(*b));
    worst = std::max(worst, MaxAbsDiff(*b, round_trip));
  }
  return worst;
}

}  // namespace poe

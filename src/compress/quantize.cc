#include "compress/quantize.h"

#include <algorithm>
#include <cmath>

#include "tensor/ops.h"
#include "util/logging.h"

namespace poe {

QuantizedTensor Quantize(const Tensor& tensor) {
  QuantizedTensor q;
  q.shape = tensor.shape();
  q.values.resize(tensor.numel());
  float max_abs = 0.0f;
  const float* p = tensor.data();
  for (int64_t i = 0; i < tensor.numel(); ++i) {
    max_abs = std::max(max_abs, std::fabs(p[i]));
  }
  q.scale = max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
  const float inv = 1.0f / q.scale;
  for (int64_t i = 0; i < tensor.numel(); ++i) {
    const float v = std::round(p[i] * inv);
    q.values[i] = static_cast<int8_t>(std::clamp(v, -127.0f, 127.0f));
  }
  return q;
}

Tensor Dequantize(const QuantizedTensor& quantized) {
  Tensor out(quantized.shape);
  float* p = out.data();
  for (int64_t i = 0; i < out.numel(); ++i) {
    p[i] = quantized.scale * static_cast<float>(quantized.values[i]);
  }
  return out;
}

int64_t QuantizedModuleState::nbytes() const {
  int64_t total = 0;
  for (const QuantizedTensor& t : tensors) total += t.nbytes();
  return total;
}

QuantizedModuleState QuantizeModule(Module& module) {
  QuantizedModuleState state;
  for (Parameter* p : module.Parameters()) {
    state.tensors.push_back(Quantize(p->value));
  }
  std::vector<Tensor*> buffers;
  module.CollectBuffers(&buffers);
  for (Tensor* b : buffers) state.tensors.push_back(Quantize(*b));
  return state;
}

Status DequantizeInto(const QuantizedModuleState& state, Module& module) {
  std::vector<Parameter*> params = module.Parameters();
  std::vector<Tensor*> buffers;
  module.CollectBuffers(&buffers);
  if (state.tensors.size() != params.size() + buffers.size()) {
    return Status::Corruption("quantized state tensor count mismatch");
  }
  size_t i = 0;
  for (Parameter* p : params) {
    if (state.tensors[i].shape != p->value.shape()) {
      return Status::Corruption("quantized tensor shape mismatch");
    }
    p->value = Dequantize(state.tensors[i++]);
  }
  for (Tensor* b : buffers) {
    if (state.tensors[i].shape != b->shape()) {
      return Status::Corruption("quantized buffer shape mismatch");
    }
    *b = Dequantize(state.tensors[i++]);
  }
  return Status::OK();
}

float QuantizationError(Module& module) {
  float worst = 0.0f;
  for (Parameter* p : module.Parameters()) {
    Tensor round_trip = Dequantize(Quantize(p->value));
    worst = std::max(worst, MaxAbsDiff(p->value, round_trip));
  }
  std::vector<Tensor*> buffers;
  module.CollectBuffers(&buffers);
  for (Tensor* b : buffers) {
    Tensor round_trip = Dequantize(Quantize(*b));
    worst = std::max(worst, MaxAbsDiff(*b, round_trip));
  }
  return worst;
}

}  // namespace poe

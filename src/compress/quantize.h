// Post-training int8 quantization of module state (extension feature).
//
// The paper notes KD is complementary to quantization and pruning
// (Section 2); this module implements that composition: expert and library
// weights can be stored in int8, shrinking the pool ~4x on top of PoE's
// structural savings, and dequantized on query.
#ifndef POE_COMPRESS_QUANTIZE_H_
#define POE_COMPRESS_QUANTIZE_H_

#include <cstdint>
#include <vector>

#include "nn/module.h"
#include "tensor/tensor.h"
#include "util/result.h"

namespace poe {

/// A symmetric int8 quantization of one tensor: value ~ scale * q with q
/// in [-127, 127]. Per-tensor (axis == -1, one `scale`) or per-channel
/// (axis == 0, one scale per slice along the leading axis — used for
/// Conv2d/Linear weight matrices where rows are output channels, so the
/// int8 serving GEMM can dequantize per output channel).
struct QuantizedTensor {
  std::vector<int64_t> shape;
  float scale = 1.0f;  ///< per-tensor scale (axis == -1)
  int axis = -1;       ///< -1 = per-tensor, 0 = per-output-channel
  std::vector<float> channel_scales;  ///< size shape[0] when axis == 0
  std::vector<int8_t> values;

  int64_t numel() const { return static_cast<int64_t>(values.size()); }

  /// Honest serialized footprint: int8 values, every scale, and the shape
  /// metadata (axis tag, ndim + dims, element count) — the bytes a pool
  /// snapshot actually occupies, as reported by the Table 4 / quantization
  /// ablation benches.
  int64_t nbytes() const {
    return numel() + static_cast<int64_t>(sizeof(float))  // scale
           + static_cast<int64_t>(channel_scales.size() * sizeof(float))
           + static_cast<int64_t>(sizeof(int32_t))   // axis tag
           + static_cast<int64_t>(sizeof(int64_t))   // ndim
           + static_cast<int64_t>(shape.size() * sizeof(int64_t))
           + static_cast<int64_t>(sizeof(int64_t));  // element count
  }
};

/// Quantizes with the per-tensor symmetric max-abs scale. A zero tensor
/// quantizes to scale 1 and all-zero values.
QuantizedTensor Quantize(const Tensor& tensor);

/// Quantizes a matrix-shaped (ndim >= 2) tensor with one symmetric
/// max-abs scale per slice along axis 0 (zero slices get scale 1). The
/// form the int8 serving path consumes for weights.
QuantizedTensor QuantizePerChannel(const Tensor& tensor);

/// Reconstructs the float tensor.
Tensor Dequantize(const QuantizedTensor& quantized);

/// Quantized snapshot of a whole module (parameters + buffers, in
/// traversal order).
struct QuantizedModuleState {
  std::vector<QuantizedTensor> tensors;

  int64_t nbytes() const;
};

/// Snapshots `module` in int8: matrix-shaped parameters (Conv2d/Linear
/// weights) get per-output-channel scales, everything else (biases,
/// batch-norm state) stays per-tensor.
QuantizedModuleState QuantizeModule(Module& module);

/// Writes the snapshot back into an identically-structured module.
/// Fails with Corruption when the structure does not match.
Status DequantizeInto(const QuantizedModuleState& state, Module& module);

/// Max absolute elementwise reconstruction error over all state tensors of
/// `module` under int8 round-trip (diagnostic).
float QuantizationError(Module& module);

}  // namespace poe

#endif  // POE_COMPRESS_QUANTIZE_H_

// Post-training int8 quantization of module state (extension feature).
//
// The paper notes KD is complementary to quantization and pruning
// (Section 2); this module implements that composition: expert and library
// weights can be stored in int8, shrinking the pool ~4x on top of PoE's
// structural savings, and dequantized on query.
#ifndef POE_COMPRESS_QUANTIZE_H_
#define POE_COMPRESS_QUANTIZE_H_

#include <cstdint>
#include <vector>

#include "nn/module.h"
#include "tensor/tensor.h"
#include "util/result.h"

namespace poe {

/// A per-tensor symmetric int8 quantization of one tensor:
/// value ~ scale * q, q in [-127, 127].
struct QuantizedTensor {
  std::vector<int64_t> shape;
  float scale = 1.0f;
  std::vector<int8_t> values;

  int64_t numel() const { return static_cast<int64_t>(values.size()); }
  /// Serialized footprint: one int8 per element plus the scale.
  int64_t nbytes() const { return numel() + static_cast<int64_t>(sizeof(float)); }
};

/// Quantizes with the symmetric max-abs scale. A zero tensor quantizes to
/// scale 1 and all-zero values.
QuantizedTensor Quantize(const Tensor& tensor);

/// Reconstructs the float tensor.
Tensor Dequantize(const QuantizedTensor& quantized);

/// Quantized snapshot of a whole module (parameters + buffers, in
/// traversal order).
struct QuantizedModuleState {
  std::vector<QuantizedTensor> tensors;

  int64_t nbytes() const;
};

/// Snapshots `module` in int8.
QuantizedModuleState QuantizeModule(Module& module);

/// Writes the snapshot back into an identically-structured module.
/// Fails with Corruption when the structure does not match.
Status DequantizeInto(const QuantizedModuleState& state, Module& module);

/// Max absolute elementwise reconstruction error over all state tensors of
/// `module` under int8 round-trip (diagnostic).
float QuantizationError(Module& module);

}  // namespace poe

#endif  // POE_COMPRESS_QUANTIZE_H_

// Accuracy metrics shared by tests, benches, and examples.
#ifndef POE_EVAL_METRICS_H_
#define POE_EVAL_METRICS_H_

#include <functional>
#include <vector>

#include "data/dataset.h"
#include "nn/module.h"
#include "nn/sequential.h"
#include "tensor/tensor.h"

namespace poe {

/// A model viewed as an inference-mode batch logit function.
using LogitFn = std::function<Tensor(const Tensor& images)>;

/// Wraps a module: eval-mode forward.
LogitFn ModelLogits(Module& model);

/// Wraps a frozen library + expert head pair (PoE's specialized model).
LogitFn LibraryHeadLogits(Sequential& library, Sequential& head);

/// Top-1 accuracy on a dataset whose labels already index logit columns.
float EvaluateAccuracy(const LogitFn& logits, const Dataset& data,
                       int64_t batch_size = 256);

/// The paper's "task-specific accuracy" for generic models: restrict the
/// logits of a model trained on all classes to the columns of
/// `task_classes` and take the argmax within the task. `data` carries
/// global labels, all of which must be inside `task_classes`.
float EvaluateTaskSpecificAccuracy(const LogitFn& logits,
                                   const Dataset& data,
                                   const std::vector<int>& task_classes,
                                   int64_t batch_size = 256);

/// Expected calibration error over `bins` equal-width confidence bins
/// (extension metric complementing Figure 5).
float ExpectedCalibrationError(const LogitFn& logits, const Dataset& data,
                               int bins = 10, int64_t batch_size = 256);

}  // namespace poe

#endif  // POE_EVAL_METRICS_H_

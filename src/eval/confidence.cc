#include "eval/confidence.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "tensor/ops.h"
#include "util/logging.h"

namespace poe {

int ConfidenceHistogram::ModeBin() const {
  POE_CHECK(!relative_frequency.empty());
  return static_cast<int>(std::max_element(relative_frequency.begin(),
                                           relative_frequency.end()) -
                          relative_frequency.begin());
}

double ConfidenceHistogram::FractionAbove(double threshold) const {
  double total = 0.0;
  for (int b = 0; b < bins; ++b) {
    const double bin_lo = static_cast<double>(b) / bins;
    if (bin_lo >= threshold) total += relative_frequency[b];
  }
  return total;
}

std::string ConfidenceHistogram::ToAsciiChart(const std::string& title) const {
  std::ostringstream os;
  os << title << " (n=" << num_samples
     << ", mean conf=" << mean_confidence << ")\n";
  for (int b = 0; b < bins; ++b) {
    const double lo = static_cast<double>(b) / bins;
    const double hi = static_cast<double>(b + 1) / bins;
    const int len = static_cast<int>(std::lround(relative_frequency[b] * 60));
    char buf[32];
    std::snprintf(buf, sizeof(buf), "  [%.1f,%.1f) ", lo, hi);
    os << buf << std::string(len, '#') << "  "
       << static_cast<int>(std::lround(relative_frequency[b] * 100)) << "%\n";
  }
  return os.str();
}

ConfidenceHistogram ComputeConfidenceHistogram(const LogitFn& logits,
                                               const Dataset& ood_data,
                                               int bins,
                                               int64_t batch_size) {
  POE_CHECK_GT(bins, 0);
  ConfidenceHistogram hist;
  hist.bins = bins;
  hist.relative_frequency.assign(bins, 0.0);
  hist.num_samples = ood_data.size();
  if (ood_data.size() == 0) return hist;

  double conf_sum = 0.0;
  for (int64_t begin = 0; begin < ood_data.size(); begin += batch_size) {
    const int64_t end = std::min(begin + batch_size, ood_data.size());
    Tensor batch = SliceRows(ood_data.images, begin, end);
    Tensor probs = Softmax2d(logits(batch));
    for (int64_t r = 0; r < end - begin; ++r) {
      float mx = 0.0f;
      for (int64_t c = 0; c < probs.dim(1); ++c) {
        mx = std::max(mx, probs.at(r * probs.dim(1) + c));
      }
      conf_sum += mx;
      int b = std::min(bins - 1, static_cast<int>(mx * bins));
      hist.relative_frequency[b] += 1.0;
    }
  }
  for (double& f : hist.relative_frequency) f /= hist.num_samples;
  hist.mean_confidence = conf_sum / hist.num_samples;
  return hist;
}

}  // namespace poe

// Confidence histograms for the out-of-distribution analysis (Figure 5).
#ifndef POE_EVAL_CONFIDENCE_H_
#define POE_EVAL_CONFIDENCE_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "eval/metrics.h"

namespace poe {

/// Histogram of per-sample maximum class probabilities (confidence).
/// Computed on out-of-distribution samples it diagnoses overconfident
/// experts: a properly confident expert concentrates mass in low bins.
struct ConfidenceHistogram {
  int bins = 10;
  std::vector<double> relative_frequency;  ///< sums to 1 over bins
  double mean_confidence = 0.0;
  int64_t num_samples = 0;

  /// Bin with the highest frequency.
  int ModeBin() const;
  /// Fraction of samples with confidence above `threshold`.
  double FractionAbove(double threshold) const;
  /// Multi-line ASCII bar chart for bench output.
  std::string ToAsciiChart(const std::string& title) const;
};

/// Evaluates `logits` on `ood_data` (samples from classes the model was not
/// trained on) and histograms max softmax probabilities.
ConfidenceHistogram ComputeConfidenceHistogram(const LogitFn& logits,
                                               const Dataset& ood_data,
                                               int bins = 10,
                                               int64_t batch_size = 256);

}  // namespace poe

#endif  // POE_EVAL_CONFIDENCE_H_

#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "tensor/ops.h"
#include "util/logging.h"

namespace poe {

LogitFn ModelLogits(Module& model) {
  return [&model](const Tensor& images) {
    return model.Forward(images, /*training=*/false);
  };
}

LogitFn LibraryHeadLogits(Sequential& library, Sequential& head) {
  return [&library, &head](const Tensor& images) {
    return head.Forward(library.Forward(images, /*training=*/false),
                        /*training=*/false);
  };
}

namespace {

/// Applies `fn` to eval batches and accumulates over predictions.
void ForEachLogitRow(
    const LogitFn& logits, const Dataset& data, int64_t batch_size,
    const std::function<void(const Tensor& batch_logits, int64_t row,
                             int label)>& visit) {
  for (int64_t begin = 0; begin < data.size(); begin += batch_size) {
    const int64_t end = std::min(begin + batch_size, data.size());
    Tensor batch = SliceRows(data.images, begin, end);
    Tensor out = logits(batch);
    POE_CHECK_EQ(out.dim(0), end - begin);
    for (int64_t r = 0; r < end - begin; ++r) {
      visit(out, r, data.labels[begin + r]);
    }
  }
}

}  // namespace

float EvaluateAccuracy(const LogitFn& logits, const Dataset& data,
                       int64_t batch_size) {
  if (data.size() == 0) return 0.0f;
  int64_t correct = 0;
  ForEachLogitRow(logits, data, batch_size,
                  [&](const Tensor& out, int64_t r, int label) {
                    if (ArgmaxRow(out, r) == label) ++correct;
                  });
  return static_cast<float>(correct) / static_cast<float>(data.size());
}

float EvaluateTaskSpecificAccuracy(const LogitFn& logits,
                                   const Dataset& data,
                                   const std::vector<int>& task_classes,
                                   int64_t batch_size) {
  if (data.size() == 0) return 0.0f;
  std::unordered_map<int, int> local;
  for (size_t i = 0; i < task_classes.size(); ++i) {
    local.emplace(task_classes[i], static_cast<int>(i));
  }
  int64_t correct = 0;
  for (int64_t begin = 0; begin < data.size(); begin += batch_size) {
    const int64_t end = std::min(begin + batch_size, data.size());
    Tensor batch = SliceRows(data.images, begin, end);
    Tensor sub = GatherColumns(logits(batch), task_classes);
    for (int64_t r = 0; r < end - begin; ++r) {
      auto it = local.find(data.labels[begin + r]);
      POE_CHECK(it != local.end())
          << "label " << data.labels[begin + r] << " outside the task";
      if (ArgmaxRow(sub, r) == it->second) ++correct;
    }
  }
  return static_cast<float>(correct) / static_cast<float>(data.size());
}

float ExpectedCalibrationError(const LogitFn& logits, const Dataset& data,
                               int bins, int64_t batch_size) {
  POE_CHECK_GT(bins, 0);
  if (data.size() == 0) return 0.0f;
  std::vector<int64_t> count(bins, 0);
  std::vector<double> conf_sum(bins, 0.0);
  std::vector<int64_t> correct(bins, 0);
  for (int64_t begin = 0; begin < data.size(); begin += batch_size) {
    const int64_t end = std::min(begin + batch_size, data.size());
    Tensor batch = SliceRows(data.images, begin, end);
    Tensor probs = Softmax2d(logits(batch));
    for (int64_t r = 0; r < end - begin; ++r) {
      const int64_t pred = ArgmaxRow(probs, r);
      const float conf = probs.at(r * probs.dim(1) + pred);
      int b = std::min(bins - 1, static_cast<int>(conf * bins));
      count[b]++;
      conf_sum[b] += conf;
      if (pred == data.labels[begin + r]) correct[b]++;
    }
  }
  double ece = 0.0;
  for (int b = 0; b < bins; ++b) {
    if (count[b] == 0) continue;
    const double acc = static_cast<double>(correct[b]) / count[b];
    const double conf = conf_sum[b] / count[b];
    ece += std::fabs(acc - conf) * count[b] / data.size();
  }
  return static_cast<float>(ece);
}

}  // namespace poe

// Fixed-width table printer for bench output.
#ifndef POE_EVAL_TABLE_H_
#define POE_EVAL_TABLE_H_

#include <string>
#include <vector>

namespace poe {

/// Accumulates rows of string cells and renders an aligned ASCII table.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);
  /// Horizontal separator line.
  void AddSeparator();

  std::string ToString() const;

  /// Formatting helpers for cells.
  static std::string Pct(double fraction, int decimals = 2);
  static std::string Num(double value, int decimals = 2);
  static std::string HumanBytes(int64_t bytes);
  static std::string HumanCount(int64_t count);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty row == separator
};

}  // namespace poe

#endif  // POE_EVAL_TABLE_H_

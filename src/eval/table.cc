#include "eval/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/logging.h"

namespace poe {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  POE_CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  POE_CHECK_EQ(cells.size(), header_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::AddSeparator() { rows_.emplace_back(); }

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::ostringstream os;
    os << "|";
    for (size_t i = 0; i < header_.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : "";
      os << " " << cell << std::string(widths[i] - cell.size(), ' ') << " |";
    }
    return os.str();
  };
  auto separator = [&]() {
    std::ostringstream os;
    os << "+";
    for (size_t w : widths) os << std::string(w + 2, '-') << "+";
    return os.str();
  };

  std::ostringstream os;
  os << separator() << "\n" << render_row(header_) << "\n" << separator()
     << "\n";
  for (const auto& row : rows_) {
    if (row.empty()) {
      os << separator() << "\n";
    } else {
      os << render_row(row) << "\n";
    }
  }
  os << separator() << "\n";
  return os.str();
}

std::string TablePrinter::Pct(double fraction, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, fraction * 100.0);
  return std::string(buf);
}

std::string TablePrinter::Num(double value, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return std::string(buf);
}

std::string TablePrinter::HumanBytes(int64_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB", "PB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 5) {
    v /= 1024.0;
    ++u;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f%s", v, units[u]);
  return std::string(buf);
}

std::string TablePrinter::HumanCount(int64_t count) {
  char buf[32];
  if (count >= 1000000000) {
    std::snprintf(buf, sizeof(buf), "%.2fB", count / 1e9);
  } else if (count >= 1000000) {
    std::snprintf(buf, sizeof(buf), "%.2fM", count / 1e6);
  } else if (count >= 1000) {
    std::snprintf(buf, sizeof(buf), "%.2fK", count / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(count));
  }
  return std::string(buf);
}

}  // namespace poe

#include "tensor/conv_direct.h"

#include <cstring>
#include <string>

#include "util/env.h"
#include "util/logging.h"

namespace poe {

namespace {

ConvPath ParseConvPathEnv() {
  const std::string value = GetEnvOr("POE_CONV_PATH", "auto");
  if (value == "im2col") return ConvPath::kIm2Col;
  if (value == "direct") return ConvPath::kDirect;
  if (value != "auto") {
    POE_LOG(Warning) << "POE_CONV_PATH=" << value
                     << " not recognized (auto|im2col|direct); using auto";
  }
  return ConvPath::kAuto;
}

// Mutable process-wide choice, seeded from the environment exactly once.
ConvPath& ConvPathState() {
  static ConvPath path = ParseConvPathEnv();
  return path;
}

template <typename T>
void ZeroImageBorderT(T* padded, int64_t channels, int64_t height,
                      int64_t width, int64_t pad) {
  if (pad == 0) return;
  const int64_t ph = height + 2 * pad;
  const int64_t pw = width + 2 * pad;
  for (int64_t c = 0; c < channels; ++c) {
    T* img = padded + c * ph * pw;
    // Top and bottom pad rows in full.
    std::memset(img, 0, static_cast<size_t>(pad * pw) * sizeof(T));
    std::memset(img + (ph - pad) * pw, 0,
                static_cast<size_t>(pad * pw) * sizeof(T));
    // Left/right pad columns of every interior row.
    for (int64_t y = pad; y < ph - pad; ++y) {
      T* row = img + y * pw;
      std::memset(row, 0, static_cast<size_t>(pad) * sizeof(T));
      std::memset(row + pw - pad, 0, static_cast<size_t>(pad) * sizeof(T));
    }
  }
}

template <typename T>
void CopyImageInteriorT(const T* image, int64_t channels, int64_t height,
                        int64_t width, int64_t pad, T* padded) {
  POE_CHECK_GT(pad, 0);  // pad == 0 aliases the image, no copy
  const int64_t ph = height + 2 * pad;
  const int64_t pw = width + 2 * pad;
  for (int64_t c = 0; c < channels; ++c) {
    const T* src = image + c * height * width;
    T* dst = padded + (c * ph + pad) * pw + pad;
    for (int64_t y = 0; y < height; ++y) {
      std::memcpy(dst + y * pw, src + y * width,
                  static_cast<size_t>(width) * sizeof(T));
    }
  }
}

}  // namespace

ConvPath ConvPathChoice() { return ConvPathState(); }

void SetConvPath(ConvPath path) { ConvPathState() = path; }

void ZeroImageBorder(float* padded, int64_t channels, int64_t height,
                     int64_t width, int64_t pad) {
  ZeroImageBorderT(padded, channels, height, width, pad);
}

void ZeroImageBorder(int8_t* padded, int64_t channels, int64_t height,
                     int64_t width, int64_t pad) {
  ZeroImageBorderT(padded, channels, height, width, pad);
}

void CopyImageInterior(const float* image, int64_t channels, int64_t height,
                       int64_t width, int64_t pad, float* padded) {
  CopyImageInteriorT(image, channels, height, width, pad, padded);
}

void CopyImageInterior(const int8_t* image, int64_t channels, int64_t height,
                       int64_t width, int64_t pad, int8_t* padded) {
  CopyImageInteriorT(image, channels, height, width, pad, padded);
}

}  // namespace poe

// Elementwise and reduction operations on Tensors.
#ifndef POE_TENSOR_OPS_H_
#define POE_TENSOR_OPS_H_

#include <vector>

#include "tensor/tensor.h"

namespace poe {

/// out = a + b (same shape).
Tensor Add(const Tensor& a, const Tensor& b);
/// a += b in place.
void AddInPlace(Tensor& a, const Tensor& b);
/// a += alpha * b in place.
void Axpy(float alpha, const Tensor& b, Tensor& a);
/// out = a - b.
Tensor Sub(const Tensor& a, const Tensor& b);
/// out = a * b elementwise.
Tensor Mul(const Tensor& a, const Tensor& b);
/// out = a * scalar.
Tensor Scale(const Tensor& a, float scalar);
/// a *= scalar in place.
void ScaleInPlace(Tensor& a, float scalar);

/// Sum of all elements.
float Sum(const Tensor& a);
/// Mean of all elements.
float Mean(const Tensor& a);
/// Max of all elements; requires numel > 0.
float MaxValue(const Tensor& a);
/// Index of max element; requires numel > 0.
int64_t Argmax(const Tensor& a);
/// Argmax within row `row` of a 2-D tensor.
int64_t ArgmaxRow(const Tensor& a, int64_t row);
/// L1 norm of all elements.
float L1Norm(const Tensor& a);
/// L2 norm of all elements.
float L2Norm(const Tensor& a);
/// Max |a - b| over all elements (same shape).
float MaxAbsDiff(const Tensor& a, const Tensor& b);

/// Row-wise softmax of a 2-D tensor (numerically stable).
Tensor Softmax2d(const Tensor& logits);
/// Row-wise log-softmax of a 2-D tensor.
Tensor LogSoftmax2d(const Tensor& logits);
/// Row-wise softmax with temperature: softmax(logits / temperature).
Tensor SoftmaxWithTemperature(const Tensor& logits, float temperature);

/// Selects columns of a 2-D tensor: out[i][j] = a[i][cols[j]].
Tensor GatherColumns(const Tensor& a, const std::vector<int>& cols);

/// Horizontally concatenates 2-D tensors with equal row counts.
Tensor ConcatColumns(const std::vector<Tensor>& parts);

/// Extracts rows [begin, end) of a 2-D (or N-D, along dim 0) tensor.
Tensor SliceRows(const Tensor& a, int64_t begin, int64_t end);

/// Gathers rows along dim 0: out[i] = a[indices[i]]. Works for any rank.
Tensor GatherRows(const Tensor& a, const std::vector<int64_t>& indices);

}  // namespace poe

#endif  // POE_TENSOR_OPS_H_

// Panel packing for the blocked GEMM (see gemm.cc and docs/PERF.md).
#ifndef POE_TENSOR_PACK_H_
#define POE_TENSOR_PACK_H_

#include <cstdint>
#include <cstring>

#include "tensor/conv_direct.h"

namespace poe {

// The micro-kernel consumes op(A) as MR-row panels and op(B) as NR-column
// panels, both laid out so the k index is the slow axis inside a panel:
//
//   a_pack[(ip/MR) * kc*MR + p*MR + r] = op(A)(i0+ip+r, p0+p)
//   b_pack[(jp/NR) * kc*NR + p*NR + c] = op(B)(p0+p, j0+jp+c)
//
// One k-step of the kernel then reads MR contiguous A floats and NR
// contiguous B floats. Rows/columns past the matrix edge are zero-filled so
// the kernel never needs a remainder loop; the store path masks them off.

/// Packs the op(A) block [i0, i0+mc) x [p0, p0+kc) into `out`
/// (ceil(mc/mr) panels of kc*mr floats). op(A) is the m x k operand:
/// A itself when !trans_a, else the transpose of the k x m storage.
inline void PackA(bool trans_a, const float* a, int64_t m, int64_t k,
                  int64_t i0, int64_t mc, int64_t p0, int64_t kc, int64_t mr,
                  float* out) {
  for (int64_t ip = 0; ip < mc; ip += mr) {
    const int64_t rows = (mc - ip < mr) ? mc - ip : mr;
    float* panel = out + (ip / mr) * kc * mr;
    if (!trans_a) {
      // A(i, p) = a[i*k + p]: each source row is contiguous in p.
      for (int64_t r = 0; r < rows; ++r) {
        const float* src = a + (i0 + ip + r) * k + p0;
        for (int64_t p = 0; p < kc; ++p) panel[p * mr + r] = src[p];
      }
    } else {
      // A(i, p) = a[p*m + i]: each source k-slice is contiguous in r.
      for (int64_t p = 0; p < kc; ++p) {
        const float* src = a + (p0 + p) * m + i0 + ip;
        float* dst = panel + p * mr;
        for (int64_t r = 0; r < rows; ++r) dst[r] = src[r];
        for (int64_t r = rows; r < mr; ++r) dst[r] = 0.0f;
      }
    }
    if (!trans_a && rows < mr) {
      for (int64_t p = 0; p < kc; ++p)
        for (int64_t r = rows; r < mr; ++r) panel[p * mr + r] = 0.0f;
    }
  }
}

/// Packs the op(B) block [p0, p0+kc) x [j0, j0+nc) into `out`
/// (ceil(nc/nr) panels of kc*nr floats). op(B) is the k x n operand:
/// B itself when !trans_b, else the transpose of the n x k storage.
inline void PackB(bool trans_b, const float* b, int64_t k, int64_t n,
                  int64_t p0, int64_t kc, int64_t j0, int64_t nc, int64_t nr,
                  float* out) {
  for (int64_t jp = 0; jp < nc; jp += nr) {
    const int64_t cols = (nc - jp < nr) ? nc - jp : nr;
    float* panel = out + (jp / nr) * kc * nr;
    if (!trans_b) {
      // B(p, j) = b[p*n + j]: each source row is contiguous in j.
      for (int64_t p = 0; p < kc; ++p) {
        const float* src = b + (p0 + p) * n + j0 + jp;
        float* dst = panel + p * nr;
        std::memcpy(dst, src, cols * sizeof(float));
        for (int64_t c = cols; c < nr; ++c) dst[c] = 0.0f;
      }
    } else {
      // B(p, j) = b[j*k + p]: each source column is contiguous in p.
      for (int64_t c = 0; c < cols; ++c) {
        const float* src = b + (j0 + jp + c) * k + p0;
        for (int64_t p = 0; p < kc; ++p) panel[p * nr + c] = src[p];
      }
      if (cols < nr) {
        for (int64_t p = 0; p < kc; ++p)
          for (int64_t c = cols; c < nr; ++c) panel[p * nr + c] = 0.0f;
      }
    }
  }
}

/// Packs the op(B) block [p0, p0+kc) x [j0, j0+nc) of the *virtual*
/// im2col matrix of `img` into `out`, gathering from the padded image
/// instead of a materialized buffer. Row p of the virtual matrix is the
/// (c, kh, kw) = (p / kernel^2, (p % kernel^2) / kernel, p % kernel)
/// shifted view of the padded image, matching Im2Col's row order; column
/// j is output pixel (j / out_w, j % out_w). Because stride is 1, the
/// columns of one output row are contiguous in the padded image, so each
/// panel row is one or two memcpys. The panel bytes are identical to
/// PackB(!trans_b, im2col_matrix, ...) — including the zero fill past the
/// edge — which is what makes the direct conv path bitwise identical to
/// the im2col path.
inline void PackBConv(const ConvImageView& img, int64_t p0, int64_t kc,
                      int64_t j0, int64_t nc, int64_t nr, float* out) {
  const int64_t pw = img.padded_w();
  const int64_t out_w = img.out_w();
  const int64_t kk = img.kernel * img.kernel;
  for (int64_t jp = 0; jp < nc; jp += nr) {
    const int64_t cols = (nc - jp < nr) ? nc - jp : nr;
    float* panel = out + (jp / nr) * kc * nr;
    for (int64_t p = 0; p < kc; ++p) {
      const int64_t pk = p0 + p;
      const int64_t c = pk / kk;
      const int64_t rem = pk - c * kk;
      const int64_t kh = rem / img.kernel;
      const int64_t kw = rem - kh * img.kernel;
      const float* base = img.padded + (c * img.padded_h() + kh) * pw + kw;
      float* dst = panel + p * nr;
      int64_t j = j0 + jp;
      int64_t done = 0;
      while (done < cols) {
        const int64_t oh = j / out_w;
        const int64_t ow = j - oh * out_w;
        const int64_t len =
            (cols - done < out_w - ow) ? cols - done : out_w - ow;
        std::memcpy(dst + done, base + oh * pw + ow,
                    static_cast<size_t>(len) * sizeof(float));
        done += len;
        j += len;
      }
      for (int64_t cpad = cols; cpad < nr; ++cpad) dst[cpad] = 0.0f;
    }
  }
}

}  // namespace poe

#endif  // POE_TENSOR_PACK_H_

// Contiguous float32 tensor with shared storage.
#ifndef POE_TENSOR_TENSOR_H_
#define POE_TENSOR_TENSOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/logging.h"
#include "util/rng.h"

namespace poe {

/// A dense, contiguous, row-major float32 tensor.
///
/// Storage is shared between copies (shallow copy semantics, like
/// torch.Tensor); use Clone() for a deep copy. All shapes use int64_t.
/// Tensors are never sparse and never strided: Reshape shares storage,
/// everything else materializes.
class Tensor {
 public:
  /// An empty 0-dim tensor with no storage.
  Tensor() = default;

  /// Allocates an uninitialized tensor of the given shape.
  explicit Tensor(std::vector<int64_t> shape);

  /// Factory: zero-filled tensor.
  static Tensor Zeros(std::vector<int64_t> shape);
  /// Factory: one-filled tensor.
  static Tensor Ones(std::vector<int64_t> shape);
  /// Factory: constant-filled tensor.
  static Tensor Full(std::vector<int64_t> shape, float value);
  /// Factory: i.i.d. N(0, stddev^2) entries.
  static Tensor Randn(std::vector<int64_t> shape, Rng& rng,
                      float stddev = 1.0f);
  /// Factory: i.i.d. U[lo, hi) entries.
  static Tensor Rand(std::vector<int64_t> shape, Rng& rng, float lo,
                     float hi);
  /// Factory: wraps an explicit value list (shape must match count).
  static Tensor FromVector(std::vector<int64_t> shape,
                           const std::vector<float>& values);

  bool defined() const { return storage_ != nullptr; }
  const std::vector<int64_t>& shape() const { return shape_; }
  int ndim() const { return static_cast<int>(shape_.size()); }
  int64_t dim(int i) const;
  int64_t numel() const { return numel_; }

  float* data() { return storage_ ? storage_->data() : nullptr; }
  const float* data() const { return storage_ ? storage_->data() : nullptr; }

  /// Element access for small-tensor tests; row-major offset.
  float& at(int64_t i) {
    POE_CHECK_LT(i, numel_);
    return (*storage_)[i];
  }
  float at(int64_t i) const {
    POE_CHECK_LT(i, numel_);
    return (*storage_)[i];
  }

  /// Returns a tensor sharing this storage with a different shape.
  /// The element count must match.
  Tensor Reshape(std::vector<int64_t> new_shape) const;

  /// Deep copy.
  Tensor Clone() const;

  /// Sets every element to `value`.
  void Fill(float value);

  /// Copies values from `src` (same numel required; shapes may differ).
  void CopyDataFrom(const Tensor& src);

  /// True when both tensors share the same underlying buffer.
  bool SharesStorageWith(const Tensor& other) const {
    return storage_ != nullptr && storage_ == other.storage_;
  }

  /// "Tensor[2, 3]" style debug string.
  std::string ShapeString() const;

  /// Total bytes of the underlying buffer.
  int64_t nbytes() const { return numel_ * static_cast<int64_t>(sizeof(float)); }

 private:
  std::shared_ptr<std::vector<float>> storage_;
  std::vector<int64_t> shape_;
  int64_t numel_ = 0;
};

/// Product of dims; 1 for an empty shape.
int64_t ShapeNumel(const std::vector<int64_t>& shape);

/// True when shapes are identical.
bool SameShape(const Tensor& a, const Tensor& b);

}  // namespace poe

#endif  // POE_TENSOR_TENSOR_H_

#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/logging.h"

namespace poe {

Tensor Add(const Tensor& a, const Tensor& b) {
  POE_CHECK(SameShape(a, b)) << a.ShapeString() << " vs " << b.ShapeString();
  Tensor out(a.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  for (int64_t i = 0; i < a.numel(); ++i) po[i] = pa[i] + pb[i];
  return out;
}

void AddInPlace(Tensor& a, const Tensor& b) {
  POE_CHECK_EQ(a.numel(), b.numel());
  float* pa = a.data();
  const float* pb = b.data();
  for (int64_t i = 0; i < a.numel(); ++i) pa[i] += pb[i];
}

void Axpy(float alpha, const Tensor& b, Tensor& a) {
  POE_CHECK_EQ(a.numel(), b.numel());
  float* pa = a.data();
  const float* pb = b.data();
  for (int64_t i = 0; i < a.numel(); ++i) pa[i] += alpha * pb[i];
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  POE_CHECK(SameShape(a, b));
  Tensor out(a.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  for (int64_t i = 0; i < a.numel(); ++i) po[i] = pa[i] - pb[i];
  return out;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  POE_CHECK(SameShape(a, b));
  Tensor out(a.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  for (int64_t i = 0; i < a.numel(); ++i) po[i] = pa[i] * pb[i];
  return out;
}

Tensor Scale(const Tensor& a, float scalar) {
  Tensor out(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  for (int64_t i = 0; i < a.numel(); ++i) po[i] = pa[i] * scalar;
  return out;
}

void ScaleInPlace(Tensor& a, float scalar) {
  float* pa = a.data();
  for (int64_t i = 0; i < a.numel(); ++i) pa[i] *= scalar;
}

float Sum(const Tensor& a) {
  const float* p = a.data();
  double acc = 0.0;
  for (int64_t i = 0; i < a.numel(); ++i) acc += p[i];
  return static_cast<float>(acc);
}

float Mean(const Tensor& a) {
  POE_CHECK_GT(a.numel(), 0);
  return Sum(a) / static_cast<float>(a.numel());
}

float MaxValue(const Tensor& a) {
  POE_CHECK_GT(a.numel(), 0);
  const float* p = a.data();
  return *std::max_element(p, p + a.numel());
}

int64_t Argmax(const Tensor& a) {
  POE_CHECK_GT(a.numel(), 0);
  const float* p = a.data();
  return std::max_element(p, p + a.numel()) - p;
}

int64_t ArgmaxRow(const Tensor& a, int64_t row) {
  POE_CHECK_EQ(a.ndim(), 2);
  POE_CHECK_LT(row, a.dim(0));
  const int64_t n = a.dim(1);
  const float* p = a.data() + row * n;
  return std::max_element(p, p + n) - p;
}

float L1Norm(const Tensor& a) {
  const float* p = a.data();
  double acc = 0.0;
  for (int64_t i = 0; i < a.numel(); ++i) acc += std::fabs(p[i]);
  return static_cast<float>(acc);
}

float L2Norm(const Tensor& a) {
  const float* p = a.data();
  double acc = 0.0;
  for (int64_t i = 0; i < a.numel(); ++i)
    acc += static_cast<double>(p[i]) * p[i];
  return static_cast<float>(std::sqrt(acc));
}

float MaxAbsDiff(const Tensor& a, const Tensor& b) {
  POE_CHECK_EQ(a.numel(), b.numel());
  const float* pa = a.data();
  const float* pb = b.data();
  float best = 0.0f;
  for (int64_t i = 0; i < a.numel(); ++i)
    best = std::max(best, std::fabs(pa[i] - pb[i]));
  return best;
}

Tensor Softmax2d(const Tensor& logits) {
  return SoftmaxWithTemperature(logits, 1.0f);
}

Tensor SoftmaxWithTemperature(const Tensor& logits, float temperature) {
  POE_CHECK_EQ(logits.ndim(), 2);
  POE_CHECK_GT(temperature, 0.0f);
  const int64_t rows = logits.dim(0);
  const int64_t cols = logits.dim(1);
  Tensor out(logits.shape());
  const float* pin = logits.data();
  float* pout = out.data();
  for (int64_t r = 0; r < rows; ++r) {
    const float* in = pin + r * cols;
    float* o = pout + r * cols;
    float mx = in[0];
    for (int64_t c = 1; c < cols; ++c) mx = std::max(mx, in[c]);
    double denom = 0.0;
    for (int64_t c = 0; c < cols; ++c) {
      o[c] = std::exp((in[c] - mx) / temperature);
      denom += o[c];
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (int64_t c = 0; c < cols; ++c) o[c] *= inv;
  }
  return out;
}

Tensor LogSoftmax2d(const Tensor& logits) {
  POE_CHECK_EQ(logits.ndim(), 2);
  const int64_t rows = logits.dim(0);
  const int64_t cols = logits.dim(1);
  Tensor out(logits.shape());
  const float* pin = logits.data();
  float* pout = out.data();
  for (int64_t r = 0; r < rows; ++r) {
    const float* in = pin + r * cols;
    float* o = pout + r * cols;
    float mx = in[0];
    for (int64_t c = 1; c < cols; ++c) mx = std::max(mx, in[c]);
    double denom = 0.0;
    for (int64_t c = 0; c < cols; ++c) denom += std::exp(in[c] - mx);
    const float log_denom = static_cast<float>(std::log(denom)) + mx;
    for (int64_t c = 0; c < cols; ++c) o[c] = in[c] - log_denom;
  }
  return out;
}

Tensor GatherColumns(const Tensor& a, const std::vector<int>& cols) {
  POE_CHECK_EQ(a.ndim(), 2);
  const int64_t rows = a.dim(0);
  const int64_t in_cols = a.dim(1);
  Tensor out({rows, static_cast<int64_t>(cols.size())});
  const float* pin = a.data();
  float* pout = out.data();
  for (int64_t r = 0; r < rows; ++r) {
    for (size_t j = 0; j < cols.size(); ++j) {
      POE_CHECK_GE(cols[j], 0);
      POE_CHECK_LT(cols[j], in_cols);
      pout[r * cols.size() + j] = pin[r * in_cols + cols[j]];
    }
  }
  return out;
}

Tensor ConcatColumns(const std::vector<Tensor>& parts) {
  POE_CHECK(!parts.empty());
  const int64_t rows = parts[0].dim(0);
  int64_t total_cols = 0;
  for (const Tensor& t : parts) {
    POE_CHECK_EQ(t.ndim(), 2);
    POE_CHECK_EQ(t.dim(0), rows);
    total_cols += t.dim(1);
  }
  Tensor out({rows, total_cols});
  float* pout = out.data();
  for (int64_t r = 0; r < rows; ++r) {
    int64_t offset = 0;
    for (const Tensor& t : parts) {
      const int64_t c = t.dim(1);
      std::memcpy(pout + r * total_cols + offset, t.data() + r * c,
                  sizeof(float) * c);
      offset += c;
    }
  }
  return out;
}

Tensor SliceRows(const Tensor& a, int64_t begin, int64_t end) {
  POE_CHECK_GE(a.ndim(), 1);
  POE_CHECK_GE(begin, 0);
  POE_CHECK_LE(begin, end);
  POE_CHECK_LE(end, a.dim(0));
  std::vector<int64_t> out_shape = a.shape();
  out_shape[0] = end - begin;
  const int64_t row_size = a.numel() / std::max<int64_t>(1, a.dim(0));
  Tensor out(out_shape);
  std::memcpy(out.data(), a.data() + begin * row_size,
              sizeof(float) * (end - begin) * row_size);
  return out;
}

Tensor GatherRows(const Tensor& a, const std::vector<int64_t>& indices) {
  POE_CHECK_GE(a.ndim(), 1);
  const int64_t rows = a.dim(0);
  const int64_t row_size = a.numel() / std::max<int64_t>(1, rows);
  std::vector<int64_t> out_shape = a.shape();
  out_shape[0] = static_cast<int64_t>(indices.size());
  Tensor out(out_shape);
  for (size_t i = 0; i < indices.size(); ++i) {
    POE_CHECK_GE(indices[i], 0);
    POE_CHECK_LT(indices[i], rows);
    std::memcpy(out.data() + static_cast<int64_t>(i) * row_size,
                a.data() + indices[i] * row_size, sizeof(float) * row_size);
  }
  return out;
}

}  // namespace poe

#include "tensor/gemm.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>

#include "tensor/arena.h"
#include "tensor/pack.h"
#include "util/logging.h"
#include "util/parallel_for.h"

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define POE_GEMM_X86 1
#include <immintrin.h>
#endif

namespace poe {

namespace {

// Cache blocking (floats). One op(A) block (kMC x kKC, ~300 KB) lives in L2
// while a kKC x NR slice of packed op(B) (~40 KB) streams through L1.
constexpr int64_t kMC = 240;  // multiple of every kernel's MR (6 and 12)
constexpr int64_t kKC = 320;
constexpr int64_t kNC = 1024;

constexpr int64_t kMaxMR = 16;
constexpr int64_t kMaxNR = 64;

// A micro-kernel computes acc[r*nr + c] = sum_p a[p*mr + r] * b[p*nr + c]
// over packed panels (acc is overwritten, never read). Scaling by alpha,
// the beta-accumulate into C, and the epilogue all happen in StoreTile.
using MicroKernelFn = void (*)(int64_t kc, const float* a, const float* b,
                               float* acc);

struct Kernel {
  int64_t mr, nr;
  MicroKernelFn fn;
  const char* name;
};

// Portable fallback: 6x16 accumulator block in plain C. The fixed trip
// counts let the compiler unroll and vectorize for whatever the build
// targets.
void MicroKernel6x16Scalar(int64_t kc, const float* a, const float* b,
                           float* acc) {
  float c[6 * 16];
  std::memset(c, 0, sizeof(c));
  for (int64_t p = 0; p < kc; ++p, a += 6, b += 16) {
    for (int r = 0; r < 6; ++r) {
      const float av = a[r];
      for (int j = 0; j < 16; ++j) c[r * 16 + j] += av * b[j];
    }
  }
  std::memcpy(acc, c, sizeof(c));
}

#ifdef POE_GEMM_X86

// 6x16 register tile: 12 fp32x8 accumulators + 2 B vectors + 1 broadcast
// fills 15 of the 16 ymm registers.
__attribute__((target("avx2,fma"))) void MicroKernel6x16Avx2(
    int64_t kc, const float* a, const float* b, float* acc) {
  __m256 c0[6], c1[6];
  for (int r = 0; r < 6; ++r) {
    c0[r] = _mm256_setzero_ps();
    c1[r] = _mm256_setzero_ps();
  }
  for (int64_t p = 0; p < kc; ++p, a += 6, b += 16) {
    const __m256 b0 = _mm256_loadu_ps(b);
    const __m256 b1 = _mm256_loadu_ps(b + 8);
#pragma GCC unroll 6
    for (int r = 0; r < 6; ++r) {
      const __m256 av = _mm256_set1_ps(a[r]);
      c0[r] = _mm256_fmadd_ps(av, b0, c0[r]);
      c1[r] = _mm256_fmadd_ps(av, b1, c1[r]);
    }
  }
  for (int r = 0; r < 6; ++r) {
    _mm256_storeu_ps(acc + r * 16, c0[r]);
    _mm256_storeu_ps(acc + r * 16 + 8, c1[r]);
  }
}

// 12x32 register tile: 24 fp32x16 accumulators + 2 B vectors + broadcasts
// fits the 32 zmm registers with room to spare.
__attribute__((target("avx512f"))) void MicroKernel12x32Avx512(
    int64_t kc, const float* a, const float* b, float* acc) {
  __m512 c0[12], c1[12];
  for (int r = 0; r < 12; ++r) {
    c0[r] = _mm512_setzero_ps();
    c1[r] = _mm512_setzero_ps();
  }
  for (int64_t p = 0; p < kc; ++p, a += 12, b += 32) {
    const __m512 b0 = _mm512_loadu_ps(b);
    const __m512 b1 = _mm512_loadu_ps(b + 16);
#pragma GCC unroll 12
    for (int r = 0; r < 12; ++r) {
      const __m512 av = _mm512_set1_ps(a[r]);
      c0[r] = _mm512_fmadd_ps(av, b0, c0[r]);
      c1[r] = _mm512_fmadd_ps(av, b1, c1[r]);
    }
  }
  for (int r = 0; r < 12; ++r) {
    _mm512_storeu_ps(acc + r * 32, c0[r]);
    _mm512_storeu_ps(acc + r * 32 + 16, c1[r]);
  }
}

#endif  // POE_GEMM_X86

const Kernel& PickKernel() {
  static const Kernel kernel = [] {
    // POE_GEMM_KERNEL=scalar|avx2|avx512 forces a variant (used by the
    // test suite to cover kernels the host wouldn't otherwise pick);
    // unsupported or unknown values fall back to auto-detection.
    const char* env = std::getenv("POE_GEMM_KERNEL");
    const std::string want = env ? env : "";
    const Kernel scalar{6, 16, MicroKernel6x16Scalar, "scalar"};
    if (want == "scalar") return scalar;
#ifdef POE_GEMM_X86
    const bool has_avx512 = __builtin_cpu_supports("avx512f");
    const bool has_avx2 =
        __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
    const Kernel avx512{12, 32, MicroKernel12x32Avx512, "avx512"};
    const Kernel avx2{6, 16, MicroKernel6x16Avx2, "avx2"};
    if (want == "avx512" && has_avx512) return avx512;
    if (want == "avx2" && has_avx2) return avx2;
    if (has_avx512) return avx512;
    if (has_avx2) return avx2;
#endif
    return scalar;
  }();
  return kernel;
}

// Writes one micro-tile of the product into C: C = blk_beta*C + alpha*acc
// over the valid rows x cols region, plus the fused epilogue when this is
// the final k-block.
void StoreTile(const float* acc, int64_t nr, int64_t rows, int64_t cols,
               float alpha, float blk_beta, bool apply_epilogue,
               const GemmEpilogue& ep, int64_t row0, int64_t col0, float* c,
               int64_t ldc) {
  for (int64_t r = 0; r < rows; ++r) {
    const float* arow = acc + r * nr;
    float* crow = c + (row0 + r) * ldc + col0;
    if (blk_beta == 0.0f) {
      for (int64_t j = 0; j < cols; ++j) crow[j] = alpha * arow[j];
    } else if (blk_beta == 1.0f) {
      for (int64_t j = 0; j < cols; ++j) crow[j] += alpha * arow[j];
    } else {
      for (int64_t j = 0; j < cols; ++j)
        crow[j] = blk_beta * crow[j] + alpha * arow[j];
    }
  }
  if (!apply_epilogue) return;
  for (int64_t r = 0; r < rows; ++r) {
    float* crow = c + (row0 + r) * ldc + col0;
    const float rb = ep.row_bias ? ep.row_bias[row0 + r] : 0.0f;
    if (ep.col_bias != nullptr) {
      const float* cb = ep.col_bias + col0;
      for (int64_t j = 0; j < cols; ++j) crow[j] += rb + cb[j];
    } else if (ep.row_bias != nullptr) {
      for (int64_t j = 0; j < cols; ++j) crow[j] += rb;
    }
    if (ep.relu) {
      for (int64_t j = 0; j < cols; ++j) crow[j] = std::max(0.0f, crow[j]);
    }
  }
}

// Offsets into the persistent packed buffers (see PackedAWeights /
// PackedBWeights::Pack below for the layouts). Both layouts place the
// panels of each (tile, k-block) region exactly as the per-call pack
// writes them, so the micro-kernel loops are oblivious to the source.
inline const float* PrepackedABlock(const float* packed, int64_t m,
                                    int64_t mr, int64_t i0, int64_t pc,
                                    int64_t kc) {
  const int64_t m_pad = (m + mr - 1) / mr * mr;
  return packed + m_pad * pc + (i0 / mr) * kc * mr;
}

inline const float* PrepackedBBlock(const float* packed, int64_t k,
                                    int64_t n, int64_t nr, int64_t j0,
                                    int64_t pc, int64_t kc) {
  const int64_t nc = std::min(kNC, n - j0);
  const int64_t nc_pad = (nc + nr - 1) / nr * nr;
  // Column tiles before j0 are all full (kNC wide, kNC a multiple of nr),
  // so they occupy exactly k * j0 floats.
  return packed + k * j0 + nc_pad * pc;
}

// Computes the C macro-tile [i0, i0+mc) x [j0, j0+nc): packs A/B blocks
// into this thread's scratch arena (or indexes the persistent prepacked
// panels when `prepacked_a` / `prepacked_b` are given) and runs the
// micro-kernel over the register-tile grid. One task owns each C tile and
// accumulates k-blocks in a fixed order, so results are identical under
// any thread schedule — and, because prepacked panels are byte-identical
// to per-call packs, across the plain and prepacked entry points.
void ComputeTile(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
                 float alpha, const float* a, const float* b, float beta,
                 float* c, const GemmEpilogue& ep, const Kernel& kernel,
                 const float* prepacked_a, const float* prepacked_b,
                 const ConvImageView* conv_img, int64_t i0, int64_t mc,
                 int64_t j0, int64_t nc) {
  const int64_t mr = kernel.mr;
  const int64_t nr = kernel.nr;
  const int64_t mc_pad = (mc + mr - 1) / mr * mr;
  const int64_t nc_pad = (nc + nr - 1) / nr * nr;
  const int64_t kc_max = std::min(k, kKC);

  ScratchScope scope;
  float* a_buf = prepacked_a ? nullptr : scope.Alloc(mc_pad * kc_max);
  float* b_buf = prepacked_b ? nullptr : scope.Alloc(kc_max * nc_pad);
  float acc[kMaxMR * kMaxNR];

  for (int64_t pc = 0; pc < k; pc += kKC) {
    const int64_t kc = std::min(kKC, k - pc);
    const float* a_pack;
    if (prepacked_a != nullptr) {
      a_pack = PrepackedABlock(prepacked_a, m, mr, i0, pc, kc);
    } else {
      PackA(trans_a, a, m, k, i0, mc, pc, kc, mr, a_buf);
      a_pack = a_buf;
    }
    const float* b_pack;
    if (prepacked_b != nullptr) {
      b_pack = PrepackedBBlock(prepacked_b, k, n, nr, j0, pc, kc);
    } else if (conv_img != nullptr) {
      PackBConv(*conv_img, pc, kc, j0, nc, nr, b_buf);
      b_pack = b_buf;
    } else {
      PackB(trans_b, b, k, n, pc, kc, j0, nc, nr, b_buf);
      b_pack = b_buf;
    }
    const float blk_beta = (pc == 0) ? beta : 1.0f;
    const bool last = pc + kc >= k;
    for (int64_t jp = 0; jp < nc; jp += nr) {
      const float* bp = b_pack + (jp / nr) * kc * nr;
      const int64_t cols = std::min(nr, nc - jp);
      for (int64_t ip = 0; ip < mc; ip += mr) {
        kernel.fn(kc, a_pack + (ip / mr) * kc * mr, bp, acc);
        StoreTile(acc, nr, std::min(mr, mc - ip), cols, alpha, blk_beta,
                  last && !ep.empty(), ep, i0 + ip, j0 + jp, c, n);
      }
    }
  }
}

// Degenerate k == 0 product: C = beta*C plus the epilogue.
void ScaleOnly(int64_t m, int64_t n, float beta, float* c,
               const GemmEpilogue& ep) {
  for (int64_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    if (beta == 0.0f) {
      std::fill(crow, crow + n, 0.0f);
    } else if (beta != 1.0f) {
      for (int64_t j = 0; j < n; ++j) crow[j] *= beta;
    }
    const float rb = ep.row_bias ? ep.row_bias[i] : 0.0f;
    if (ep.row_bias || ep.col_bias) {
      for (int64_t j = 0; j < n; ++j)
        crow[j] += rb + (ep.col_bias ? ep.col_bias[j] : 0.0f);
    }
    if (ep.relu) {
      for (int64_t j = 0; j < n; ++j) crow[j] = std::max(0.0f, crow[j]);
    }
  }
}

void GemmExImpl(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
                float alpha, const float* a, const float* b, float beta,
                float* c, const GemmEpilogue& ep, bool parallel,
                const float* prepacked_a, const float* prepacked_b,
                const ConvImageView* conv_img) {
  POE_CHECK_GE(m, 0);
  POE_CHECK_GE(n, 0);
  POE_CHECK_GE(k, 0);
  if (m == 0 || n == 0) return;
  if (k == 0 || alpha == 0.0f) {
    ScaleOnly(m, n, beta, c, ep);
    return;
  }

  const Kernel& kernel = PickKernel();
  const int64_t row_tiles = (m + kMC - 1) / kMC;
  const int64_t col_tiles = (n + kNC - 1) / kNC;
  // Macro-tile parallelism only when there are enough tiles to feed the
  // pool; smaller products use sub-tile parallelism inside the hoisted
  // path below (and with one worker the per-tile path would only repack B
  // k-blocks row_tiles times over).
  const int64_t workers = parallel ? NumThreads() : 1;
  if (workers > 1 && row_tiles * col_tiles >= workers) {
    ParallelFor2D(row_tiles, col_tiles, [&](int64_t rt, int64_t ct) {
      const int64_t i0 = rt * kMC;
      const int64_t j0 = ct * kNC;
      ComputeTile(trans_a, trans_b, m, n, k, alpha, a, b, beta, c, ep,
                  kernel, prepacked_a, prepacked_b, conv_img, i0,
                  std::min(kMC, m - i0), j0, std::min(kNC, n - j0));
    });
    return;
  }

  // Hoisted path: op(B) packing is hoisted out of the row-macro-tile
  // loop — each B k-block is packed once per column stripe and reused by
  // every row tile, instead of being repacked ceil(m/MC) times. Per-element
  // k-accumulation order is unchanged (ascending k-blocks), so the result
  // stays bitwise identical to the parallel per-tile path.
  //
  // When the pool has workers but the product is under-tiled (fewer macro
  // tiles than workers — the realtime batch-1 conv shapes), the NR-column
  // micro-panels of each (k-block, row-tile) region are distributed over
  // the pool instead (sub-tile ir/jr parallelism). Each C micro-tile is
  // still written by exactly one task and k-blocks still accumulate in
  // ascending order behind a ParallelFor barrier, so the result remains
  // bitwise identical to the sequential schedule — no per-thread C scratch
  // is needed.
  const bool subtile = workers > 1;
  const int64_t mr = kernel.mr;
  const int64_t nr = kernel.nr;
  const int64_t kc_max = std::min(k, kKC);
  const int64_t a_pad_max =
      std::min(kMC, (std::min(kMC, m) + mr - 1) / mr * mr);
  for (int64_t ct = 0; ct < col_tiles; ++ct) {
    const int64_t j0 = ct * kNC;
    const int64_t nc = std::min(kNC, n - j0);
    const int64_t nc_pad = (nc + nr - 1) / nr * nr;
    ScratchScope scope;
    float* a_buf = prepacked_a ? nullptr : scope.Alloc(a_pad_max * kc_max);
    float* b_buf = prepacked_b ? nullptr : scope.Alloc(kc_max * nc_pad);
    for (int64_t pc = 0; pc < k; pc += kKC) {
      const int64_t kc = std::min(kKC, k - pc);
      const float* b_pack;
      if (prepacked_b != nullptr) {
        b_pack = PrepackedBBlock(prepacked_b, k, n, nr, j0, pc, kc);
      } else if (conv_img != nullptr) {
        PackBConv(*conv_img, pc, kc, j0, nc, nr, b_buf);
        b_pack = b_buf;
      } else {
        PackB(trans_b, b, k, n, pc, kc, j0, nc, nr, b_buf);
        b_pack = b_buf;
      }
      const float blk_beta = (pc == 0) ? beta : 1.0f;
      const bool last = pc + kc >= k;
      for (int64_t rt = 0; rt < row_tiles; ++rt) {
        const int64_t i0 = rt * kMC;
        const int64_t mc = std::min(kMC, m - i0);
        const float* a_pack;
        if (prepacked_a != nullptr) {
          a_pack = PrepackedABlock(prepacked_a, m, mr, i0, pc, kc);
        } else {
          PackA(trans_a, a, m, k, i0, mc, pc, kc, mr, a_buf);
          a_pack = a_buf;
        }
        const auto micro_panels = [&](int64_t jb0, int64_t jb1) {
          float acc[kMaxMR * kMaxNR];
          for (int64_t jb = jb0; jb < jb1; ++jb) {
            const int64_t jp = jb * nr;
            const float* bp = b_pack + jb * kc * nr;
            const int64_t cols = std::min(nr, nc - jp);
            for (int64_t ip = 0; ip < mc; ip += mr) {
              kernel.fn(kc, a_pack + (ip / mr) * kc * mr, bp, acc);
              StoreTile(acc, nr, std::min(mr, mc - ip), cols, alpha,
                        blk_beta, last && !ep.empty(), ep, i0 + ip, j0 + jp,
                        c, n);
            }
          }
        };
        const int64_t jp_blocks = (nc + nr - 1) / nr;
        if (subtile && jp_blocks > 1) {
          ParallelFor(jp_blocks, micro_panels, /*min_chunk=*/1);
        } else {
          micro_panels(0, jp_blocks);
        }
      }
    }
  }
}

}  // namespace

void GemmEx(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
            float alpha, const float* a, const float* b, float beta, float* c,
            const GemmEpilogue& ep, bool parallel) {
  GemmExImpl(trans_a, trans_b, m, n, k, alpha, a, b, beta, c, ep, parallel,
             /*prepacked_a=*/nullptr, /*prepacked_b=*/nullptr,
             /*conv_img=*/nullptr);
}

void GemmConvEx(int64_t m, const float* a, const ConvImageView& img,
                float alpha, float beta, float* c, const GemmEpilogue& ep,
                bool parallel) {
  GemmExImpl(/*trans_a=*/false, /*trans_b=*/false, m, img.cols(),
             img.depth(), alpha, a, /*b=*/nullptr, beta, c, ep, parallel,
             /*prepacked_a=*/nullptr, /*prepacked_b=*/nullptr, &img);
}

PackedAWeights PackedAWeights::Pack(bool trans_a, int64_t m, int64_t k,
                                    const float* a) {
  POE_CHECK_GT(m, 0);
  POE_CHECK_GT(k, 0);
  const Kernel& kernel = PickKernel();
  const int64_t mr = kernel.mr;
  const int64_t m_pad = (m + mr - 1) / mr * mr;
  PackedAWeights packed;
  packed.m_ = m;
  packed.k_ = k;
  packed.data_.resize(static_cast<size_t>(m_pad * k));
  // Layout: ascending k-blocks of kKC, each holding ceil(m/mr) panels of
  // kc*mr floats — byte-identical to the per-call PackA of every
  // (row-tile, k-block) the blocked GEMM visits.
  for (int64_t pc = 0; pc < k; pc += kKC) {
    const int64_t kc = std::min(kKC, k - pc);
    PackA(trans_a, a, m, k, /*i0=*/0, /*mc=*/m, pc, kc, mr,
          packed.data_.data() + m_pad * pc);
  }
  return packed;
}

PackedBWeights PackedBWeights::Pack(bool trans_b, int64_t k, int64_t n,
                                    const float* b) {
  POE_CHECK_GT(k, 0);
  POE_CHECK_GT(n, 0);
  const Kernel& kernel = PickKernel();
  const int64_t nr = kernel.nr;
  PackedBWeights packed;
  packed.k_ = k;
  packed.n_ = n;
  // Layout: per kNC column tile (all full tiles occupy exactly k * kNC
  // floats; kNC is a multiple of every kernel's NR), ascending k-blocks of
  // ceil(nc/nr) panels of kc*nr floats.
  int64_t total = 0;
  for (int64_t j0 = 0; j0 < n; j0 += kNC) {
    const int64_t nc = std::min(kNC, n - j0);
    total += k * ((nc + nr - 1) / nr * nr);
  }
  packed.data_.resize(static_cast<size_t>(total));
  for (int64_t j0 = 0; j0 < n; j0 += kNC) {
    const int64_t nc = std::min(kNC, n - j0);
    const int64_t nc_pad = (nc + nr - 1) / nr * nr;
    for (int64_t pc = 0; pc < k; pc += kKC) {
      const int64_t kc = std::min(kKC, k - pc);
      PackB(trans_b, b, k, n, pc, kc, j0, nc, nr,
            packed.data_.data() + k * j0 + nc_pad * pc);
    }
  }
  return packed;
}

void GemmPackedA(const PackedAWeights& a, int64_t n, const float* b,
                 float alpha, float beta, float* c, const GemmEpilogue& ep,
                 bool parallel) {
  POE_CHECK(!a.empty()) << "GemmPackedA on unpacked weights";
  GemmExImpl(/*trans_a=*/false, /*trans_b=*/false, a.m_, n, a.k_, alpha,
             /*a=*/nullptr, b, beta, c, ep, parallel, a.data_.data(),
             /*prepacked_b=*/nullptr, /*conv_img=*/nullptr);
}

void GemmConvPackedA(const PackedAWeights& a, const ConvImageView& img,
                     float alpha, float beta, float* c, const GemmEpilogue& ep,
                     bool parallel) {
  POE_CHECK(!a.empty()) << "GemmConvPackedA on unpacked weights";
  POE_CHECK_EQ(a.k_, img.depth());
  GemmExImpl(/*trans_a=*/false, /*trans_b=*/false, a.m_, img.cols(), a.k_,
             alpha, /*a=*/nullptr, /*b=*/nullptr, beta, c, ep, parallel,
             a.data_.data(), /*prepacked_b=*/nullptr, &img);
}

void GemmPackedB(int64_t m, const float* a, bool trans_a,
                 const PackedBWeights& b, float alpha, float beta, float* c,
                 const GemmEpilogue& ep, bool parallel) {
  POE_CHECK(!b.empty()) << "GemmPackedB on unpacked weights";
  GemmExImpl(trans_a, /*trans_b=*/false, m, b.n_, b.k_, alpha, a,
             /*b=*/nullptr, beta, c, ep, parallel,
             /*prepacked_a=*/nullptr, b.data_.data(), /*conv_img=*/nullptr);
}

void Gemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
          float alpha, const float* a, const float* b, float beta, float* c) {
  GemmEx(trans_a, trans_b, m, n, k, alpha, a, b, beta, c, GemmEpilogue{},
         /*parallel=*/true);
}

void GemmSeq(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
             float alpha, const float* a, const float* b, float beta,
             float* c) {
  GemmEx(trans_a, trans_b, m, n, k, alpha, a, b, beta, c, GemmEpilogue{},
         /*parallel=*/false);
}

void GemmRef(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
             float alpha, const float* a, const float* b, float beta,
             float* c) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int64_t p = 0; p < k; ++p) {
        const float av = trans_a ? a[p * m + i] : a[i * k + p];
        const float bv = trans_b ? b[j * k + p] : b[p * n + j];
        acc += static_cast<double>(av) * bv;
      }
      const float prior = beta == 0.0f ? 0.0f : beta * c[i * n + j];
      c[i * n + j] = alpha * static_cast<float>(acc) + prior;
    }
  }
}

int64_t GemmParallelTiles(int64_t m, int64_t n) {
  if (m <= 0 || n <= 0) return 0;
  const int64_t tiles = ((m + kMC - 1) / kMC) * ((n + kNC - 1) / kNC);
  if (tiles >= NumThreads()) return tiles;
  // Under-tiled products distribute the NR-column micro-panels of one
  // column stripe instead (sub-tile parallelism in GemmExImpl).
  const int64_t nr = PickKernel().nr;
  return std::max(tiles, (std::min(n, kNC) + nr - 1) / nr);
}

const char* GemmKernelName() { return PickKernel().name; }

}  // namespace poe

#include "tensor/gemm.h"

#include <algorithm>

#include "util/logging.h"
#include "util/parallel_for.h"

namespace poe {

namespace {

// Row kernels. All operate on one row i of C (length n).

inline void RowKernelNN(int64_t i, int64_t n, int64_t k, float alpha,
                        const float* a, const float* b, float* c_row) {
  const float* a_row = a + i * k;
  for (int64_t p = 0; p < k; ++p) {
    const float aip = alpha * a_row[p];
    if (aip == 0.0f) continue;
    const float* b_row = b + p * n;
    for (int64_t j = 0; j < n; ++j) c_row[j] += aip * b_row[j];
  }
}

inline void RowKernelNT(int64_t i, int64_t n, int64_t k, float alpha,
                        const float* a, const float* b, float* c_row) {
  const float* a_row = a + i * k;
  for (int64_t j = 0; j < n; ++j) {
    const float* b_row = b + j * k;
    float acc = 0.0f;
    for (int64_t p = 0; p < k; ++p) acc += a_row[p] * b_row[p];
    c_row[j] += alpha * acc;
  }
}

inline void RowKernelTN(int64_t i, int64_t m, int64_t n, int64_t k,
                        float alpha, const float* a, const float* b,
                        float* c_row) {
  for (int64_t p = 0; p < k; ++p) {
    const float aip = alpha * a[p * m + i];
    if (aip == 0.0f) continue;
    const float* b_row = b + p * n;
    for (int64_t j = 0; j < n; ++j) c_row[j] += aip * b_row[j];
  }
}

inline void RowKernelTT(int64_t i, int64_t m, int64_t n, int64_t k,
                        float alpha, const float* a, const float* b,
                        float* c_row) {
  for (int64_t j = 0; j < n; ++j) {
    const float* b_row = b + j * k;
    float acc = 0.0f;
    for (int64_t p = 0; p < k; ++p) acc += a[p * m + i] * b_row[p];
    c_row[j] += alpha * acc;
  }
}

void GemmRows(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
              float alpha, const float* a, const float* b, float beta,
              float* c, int64_t begin, int64_t end) {
  for (int64_t i = begin; i < end; ++i) {
    float* c_row = c + i * n;
    if (beta == 0.0f) {
      std::fill(c_row, c_row + n, 0.0f);
    } else if (beta != 1.0f) {
      for (int64_t j = 0; j < n; ++j) c_row[j] *= beta;
    }
    if (k == 0) continue;
    if (!trans_a && !trans_b) {
      RowKernelNN(i, n, k, alpha, a, b, c_row);
    } else if (!trans_a && trans_b) {
      RowKernelNT(i, n, k, alpha, a, b, c_row);
    } else if (trans_a && !trans_b) {
      RowKernelTN(i, m, n, k, alpha, a, b, c_row);
    } else {
      RowKernelTT(i, m, n, k, alpha, a, b, c_row);
    }
  }
}

}  // namespace

void Gemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
          float alpha, const float* a, const float* b, float beta, float* c) {
  POE_CHECK_GE(m, 0);
  POE_CHECK_GE(n, 0);
  POE_CHECK_GE(k, 0);
  if (m == 0 || n == 0) return;

  // Aim for chunks big enough to amortize dispatch: rows are n*k flops each.
  const int64_t flops_per_row = std::max<int64_t>(1, n * k);
  const int64_t min_rows =
      std::max<int64_t>(1, (1 << 15) / flops_per_row);

  ParallelFor(
      m,
      [&](int64_t begin, int64_t end) {
        GemmRows(trans_a, trans_b, m, n, k, alpha, a, b, beta, c, begin, end);
      },
      min_rows);
}

void GemmSeq(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
             float alpha, const float* a, const float* b, float beta,
             float* c) {
  POE_CHECK_GE(m, 0);
  POE_CHECK_GE(n, 0);
  POE_CHECK_GE(k, 0);
  if (m == 0 || n == 0) return;
  GemmRows(trans_a, trans_b, m, n, k, alpha, a, b, beta, c, 0, m);
}

}  // namespace poe

#include "tensor/tensor.h"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <sstream>

namespace poe {

int64_t ShapeNumel(const std::vector<int64_t>& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    POE_CHECK_GE(d, 0);
    n *= d;
  }
  return n;
}

bool SameShape(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape();
}

Tensor::Tensor(std::vector<int64_t> shape)
    : shape_(std::move(shape)), numel_(ShapeNumel(shape_)) {
  storage_ = std::make_shared<std::vector<float>>(numel_);
}

Tensor Tensor::Zeros(std::vector<int64_t> shape) {
  Tensor t(std::move(shape));
  t.Fill(0.0f);
  return t;
}

Tensor Tensor::Ones(std::vector<int64_t> shape) {
  Tensor t(std::move(shape));
  t.Fill(1.0f);
  return t;
}

Tensor Tensor::Full(std::vector<int64_t> shape, float value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::Randn(std::vector<int64_t> shape, Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  float* p = t.data();
  for (int64_t i = 0; i < t.numel(); ++i) p[i] = rng.Normal(0.0f, stddev);
  return t;
}

Tensor Tensor::Rand(std::vector<int64_t> shape, Rng& rng, float lo,
                    float hi) {
  Tensor t(std::move(shape));
  float* p = t.data();
  for (int64_t i = 0; i < t.numel(); ++i) p[i] = rng.Uniform(lo, hi);
  return t;
}

Tensor Tensor::FromVector(std::vector<int64_t> shape,
                          const std::vector<float>& values) {
  Tensor t(std::move(shape));
  POE_CHECK_EQ(t.numel(), static_cast<int64_t>(values.size()));
  std::copy(values.begin(), values.end(), t.data());
  return t;
}

int64_t Tensor::dim(int i) const {
  if (i < 0) i += ndim();
  POE_CHECK_GE(i, 0);
  POE_CHECK_LT(i, ndim());
  return shape_[i];
}

Tensor Tensor::Reshape(std::vector<int64_t> new_shape) const {
  POE_CHECK(defined()) << "Reshape of undefined tensor";
  POE_CHECK_EQ(ShapeNumel(new_shape), numel_);
  Tensor out;
  out.storage_ = storage_;
  out.shape_ = std::move(new_shape);
  out.numel_ = numel_;
  return out;
}

Tensor Tensor::Clone() const {
  if (!defined()) return Tensor();
  Tensor out(shape_);
  std::memcpy(out.data(), data(), sizeof(float) * numel_);
  return out;
}

void Tensor::Fill(float value) {
  POE_CHECK(defined());
  std::fill(storage_->begin(), storage_->end(), value);
}

void Tensor::CopyDataFrom(const Tensor& src) {
  POE_CHECK(defined());
  POE_CHECK_EQ(numel_, src.numel());
  std::memcpy(data(), src.data(), sizeof(float) * numel_);
}

std::string Tensor::ShapeString() const {
  std::ostringstream os;
  os << "Tensor[";
  for (int i = 0; i < ndim(); ++i) {
    if (i) os << ", ";
    os << shape_[i];
  }
  os << "]";
  return os.str();
}

}  // namespace poe

#include "tensor/im2col.h"

#include <algorithm>
#include <cstring>

#include "tensor/gemm_s8.h"

namespace poe {

namespace {

// Shared unfold over the element type: f32 for training/inference, int8
// for the quantized serving path (zero padding is exact in both domains).
template <typename T>
void Im2ColT(const T* image, int64_t channels, int64_t height, int64_t width,
             int64_t kernel_h, int64_t kernel_w, int64_t pad, int64_t stride,
             T* columns) {
  const int64_t out_h = ConvOutSize(height, kernel_h, pad, stride);
  const int64_t out_w = ConvOutSize(width, kernel_w, pad, stride);
  const int64_t out_hw = out_h * out_w;
  int64_t row = 0;
  for (int64_t c = 0; c < channels; ++c) {
    const T* img_c = image + c * height * width;
    for (int64_t kh = 0; kh < kernel_h; ++kh) {
      for (int64_t kw = 0; kw < kernel_w; ++kw, ++row) {
        T* col_row = columns + row * out_hw;
        for (int64_t oh = 0; oh < out_h; ++oh) {
          const int64_t ih = oh * stride - pad + kh;
          if (ih < 0 || ih >= height) {
            for (int64_t ow = 0; ow < out_w; ++ow)
              col_row[oh * out_w + ow] = T(0);
            continue;
          }
          const T* img_row = img_c + ih * width;
          for (int64_t ow = 0; ow < out_w; ++ow) {
            const int64_t iw = ow * stride - pad + kw;
            col_row[oh * out_w + ow] =
                (iw >= 0 && iw < width) ? img_row[iw] : T(0);
          }
        }
      }
    }
  }
}

}  // namespace

void Im2Col(const float* image, int64_t channels, int64_t height,
            int64_t width, int64_t kernel_h, int64_t kernel_w, int64_t pad,
            int64_t stride, float* columns) {
  Im2ColT(image, channels, height, width, kernel_h, kernel_w, pad, stride,
          columns);
}

void Im2Col(const int8_t* image, int64_t channels, int64_t height,
            int64_t width, int64_t kernel_h, int64_t kernel_w, int64_t pad,
            int64_t stride, int8_t* columns) {
  Im2ColT(image, channels, height, width, kernel_h, kernel_w, pad, stride,
          columns);
}

void Im2ColQuantize(const float* image, int64_t channels, int64_t height,
                    int64_t width, int64_t kernel_h, int64_t kernel_w,
                    int64_t pad, int64_t stride, float inv_scale,
                    int8_t* columns) {
  const int64_t out_h = ConvOutSize(height, kernel_h, pad, stride);
  const int64_t out_w = ConvOutSize(width, kernel_w, pad, stride);
  const int64_t out_hw = out_h * out_w;
  int64_t row = 0;
  for (int64_t c = 0; c < channels; ++c) {
    const float* img_c = image + c * height * width;
    for (int64_t kh = 0; kh < kernel_h; ++kh) {
      for (int64_t kw = 0; kw < kernel_w; ++kw, ++row) {
        int8_t* col_row = columns + row * out_hw;
        for (int64_t oh = 0; oh < out_h; ++oh) {
          const int64_t ih = oh * stride - pad + kh;
          int8_t* dst = col_row + oh * out_w;
          if (ih < 0 || ih >= height) {
            std::memset(dst, 0, static_cast<size_t>(out_w));  // exact zero
            continue;
          }
          const float* img_row = img_c + ih * width;
          if (stride == 1) {
            // Stride 1 (the bulk of WRN conv work): the gathered span is
            // contiguous in the source row, so the quantization runs
            // through the vectorized QuantizeBufferS8 — fused AND as fast
            // as the separate whole-image pass, without its buffer.
            const int64_t lo = std::max<int64_t>(0, pad - kw);
            int64_t hi = std::min(out_w, width + pad - kw);
            if (hi < lo) hi = lo;
            std::memset(dst, 0, static_cast<size_t>(lo));
            QuantizeBufferS8(img_row + lo - pad + kw, hi - lo, inv_scale,
                             dst + lo);
            std::memset(dst + hi, 0, static_cast<size_t>(out_w - hi));
          } else {
            for (int64_t ow = 0; ow < out_w; ++ow) {
              const int64_t iw = ow * stride - pad + kw;
              dst[ow] = (iw >= 0 && iw < width)
                            ? QuantizeOneS8(img_row[iw], inv_scale)
                            : static_cast<int8_t>(0);
            }
          }
        }
      }
    }
  }
}

void Col2Im(const float* columns, int64_t channels, int64_t height,
            int64_t width, int64_t kernel_h, int64_t kernel_w, int64_t pad,
            int64_t stride, float* image_grad) {
  const int64_t out_h = ConvOutSize(height, kernel_h, pad, stride);
  const int64_t out_w = ConvOutSize(width, kernel_w, pad, stride);
  const int64_t out_hw = out_h * out_w;
  int64_t row = 0;
  for (int64_t c = 0; c < channels; ++c) {
    float* img_c = image_grad + c * height * width;
    for (int64_t kh = 0; kh < kernel_h; ++kh) {
      for (int64_t kw = 0; kw < kernel_w; ++kw, ++row) {
        const float* col_row = columns + row * out_hw;
        for (int64_t oh = 0; oh < out_h; ++oh) {
          const int64_t ih = oh * stride - pad + kh;
          if (ih < 0 || ih >= height) continue;
          float* img_row = img_c + ih * width;
          for (int64_t ow = 0; ow < out_w; ++ow) {
            const int64_t iw = ow * stride - pad + kw;
            if (iw >= 0 && iw < width) img_row[iw] += col_row[oh * out_w + ow];
          }
        }
      }
    }
  }
}

}  // namespace poe

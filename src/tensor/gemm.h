// Threaded single-precision GEMM used by conv (via im2col) and linear layers.
#ifndef POE_TENSOR_GEMM_H_
#define POE_TENSOR_GEMM_H_

#include <cstdint>

namespace poe {

/// C = alpha * op(A) * op(B) + beta * C, row-major.
///
/// op(A) is A (m x k) when !trans_a, else A^T with A stored (k x m).
/// op(B) is B (k x n) when !trans_b, else B^T with B stored (n x k).
/// C is m x n. Parallelized over rows of C.
void Gemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
          float alpha, const float* a, const float* b, float beta, float* c);

/// Sequential variant for use inside ParallelFor bodies (ParallelFor is not
/// reentrant, so nested parallel GEMM calls are forbidden).
void GemmSeq(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
             float alpha, const float* a, const float* b, float beta,
             float* c);

}  // namespace poe

#endif  // POE_TENSOR_GEMM_H_

// Blocked, packed, SIMD-dispatched single-precision GEMM used by conv
// (via im2col) and linear layers. See docs/PERF.md for the design.
#ifndef POE_TENSOR_GEMM_H_
#define POE_TENSOR_GEMM_H_

#include <cstdint>
#include <vector>

#include "tensor/conv_direct.h"

namespace poe {

/// Optional fused output transform applied after the matrix product is
/// complete (on the final k-block, in the same pass that writes C), so
/// inference layers avoid separate bias/activation sweeps over the output.
struct GemmEpilogue {
  /// Added to every element of row i of C (length m). Conv layout:
  /// C is [out_channels x out_h*out_w], bias is per channel (= per row).
  const float* row_bias = nullptr;
  /// Added to every element of column j of C (length n). Linear layout:
  /// C is [batch x out_features], bias is per feature (= per column).
  const float* col_bias = nullptr;
  /// Applies max(0, x) after the bias terms.
  bool relu = false;

  bool empty() const {
    return row_bias == nullptr && col_bias == nullptr && !relu;
  }
};

/// C = alpha * op(A) * op(B) + beta * C, row-major.
///
/// op(A) is A (m x k) when !trans_a, else A^T with A stored (k x m).
/// op(B) is B (k x n) when !trans_b, else B^T with B stored (n x k).
/// C is m x n. Parallelized over 2-D macro-tiles of C.
void Gemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
          float alpha, const float* a, const float* b, float beta, float* c);

/// Sequential variant for use inside ParallelFor bodies (ParallelFor is not
/// reentrant, so nested parallel GEMM calls are forbidden).
void GemmSeq(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
             float alpha, const float* a, const float* b, float beta,
             float* c);

/// Gemm with a fused epilogue. `parallel` selects Gemm/GemmSeq behavior.
/// The product is bitwise identical for both settings: every C tile is
/// produced by one task with a fixed k-accumulation order.
void GemmEx(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
            float alpha, const float* a, const float* b, float beta, float* c,
            const GemmEpilogue& epilogue, bool parallel);

/// op(A) of an m x k product pre-packed ONCE into the dispatched kernel's
/// MR-row panel layout, covering every (row-tile, k-block) of the blocked
/// GEMM. Serving layers whose weight matrix is the A operand (Conv2d:
/// [out_channels x ckk]) build this at prepack time so steady-state
/// forwards skip the per-call PackA pass. The panel bytes are identical to
/// what the on-the-fly pack produces, so GemmPackedA is bitwise identical
/// to Gemm/GemmEx. Valid only within the process that packed it (the
/// layout depends on the dispatched kernel geometry).
class PackedAWeights {
 public:
  PackedAWeights() = default;
  static PackedAWeights Pack(bool trans_a, int64_t m, int64_t k,
                             const float* a);

  bool empty() const { return data_.empty(); }
  int64_t rows() const { return m_; }
  int64_t depth() const { return k_; }
  /// Bytes held by the packed panels.
  int64_t nbytes() const {
    return static_cast<int64_t>(data_.size() * sizeof(float));
  }

 private:
  friend void GemmPackedA(const PackedAWeights&, int64_t, const float*,
                          float alpha, float beta, float*,
                          const GemmEpilogue&, bool);
  friend void GemmConvPackedA(const PackedAWeights&, const ConvImageView&,
                              float alpha, float beta, float*,
                              const GemmEpilogue&, bool);
  std::vector<float> data_;  // per k-block: ceil(m/mr) panels of kc*mr
  int64_t m_ = 0, k_ = 0;
};

/// op(B) of a k x n product pre-packed ONCE into the dispatched kernel's
/// NR-column panel layout, covering every (column-tile, k-block). Serving
/// layers whose weight matrix is the B operand (Linear: y = x W^T, op(B) =
/// W^T) build this at prepack time. Bitwise identical to the on-the-fly
/// path; process-local like PackedAWeights.
class PackedBWeights {
 public:
  PackedBWeights() = default;
  static PackedBWeights Pack(bool trans_b, int64_t k, int64_t n,
                             const float* b);

  bool empty() const { return data_.empty(); }
  int64_t depth() const { return k_; }
  int64_t cols() const { return n_; }
  int64_t nbytes() const {
    return static_cast<int64_t>(data_.size() * sizeof(float));
  }

 private:
  friend void GemmPackedB(int64_t, const float*, bool,
                          const PackedBWeights&, float alpha, float beta,
                          float*, const GemmEpilogue&, bool);
  std::vector<float> data_;  // per column tile: k-blocks of panels
  int64_t k_ = 0, n_ = 0;
};

/// GemmEx with op(A) pre-packed: C (m x n) = alpha * packed_a * op(B) +
/// beta * C. Bitwise identical to the equivalent GemmEx call on the
/// unpacked operand, for every kernel tier and both parallel settings.
void GemmPackedA(const PackedAWeights& a, int64_t n, const float* b,
                 float alpha, float beta, float* c, const GemmEpilogue& ep,
                 bool parallel);
/// Convenience overload: trans_b variant is not needed by any layer (conv
/// consumes untransposed im2col columns), so op(B) = B (k x n).

/// GemmEx with op(B) pre-packed: C (m x n) = alpha * op(A) * packed_b +
/// beta * C, same bitwise guarantee. op(A) is A (m x k) when !trans_a.
void GemmPackedB(int64_t m, const float* a, bool trans_a,
                 const PackedBWeights& b, float alpha, float beta, float* c,
                 const GemmEpilogue& ep, bool parallel);

/// Direct (im2col-free) convolution as GEMM: C (m x img.cols()) =
/// alpha * A * vcol(img) + beta * C, where vcol(img) is the virtual
/// im2col matrix of the padded image (img.depth() x img.cols()) that the
/// B-panel pack gathers on the fly (PackBConv). A is the m x img.depth()
/// row-major weight matrix. Bitwise identical to GemmEx over the
/// materialized im2col matrix on every kernel tier, because the packed
/// panels are byte-identical (see conv_direct.h).
void GemmConvEx(int64_t m, const float* a, const ConvImageView& img,
                float alpha, float beta, float* c, const GemmEpilogue& ep,
                bool parallel);

/// GemmConvEx with the weight operand pre-packed (the serving hot path:
/// prepacked weights x virtual im2col). Same bitwise guarantee.
void GemmConvPackedA(const PackedAWeights& a, const ConvImageView& img,
                     float alpha, float beta, float* c, const GemmEpilogue& ep,
                     bool parallel);

/// Number of independent tasks a parallel Gemm/GemmEx can distribute over
/// the worker pool for an m x n product: the 2-D macro-tile count when
/// there are at least as many macro-tiles as workers, otherwise the
/// NR-column micro-panel count of one column stripe (the sub-tile
/// parallelism inside a macro tile). Callers choosing between batch-level
/// and GEMM-level parallelism use this to pick the level that actually
/// has work to spread (1 means the GEMM runs sequentially regardless).
int64_t GemmParallelTiles(int64_t m, int64_t n);

/// Naive triple-loop reference implementation (double accumulator). The
/// test oracle for the optimized paths; never used on the hot path.
void GemmRef(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
             float alpha, const float* a, const float* b, float beta,
             float* c);

/// Name of the dispatched micro-kernel ("avx512", "avx2", "scalar") for
/// logging and benchmark labeling. Selection is automatic per CPU
/// features; the POE_GEMM_KERNEL environment variable forces a variant
/// (unsupported values fall back to auto-detection).
const char* GemmKernelName();

}  // namespace poe

#endif  // POE_TENSOR_GEMM_H_

// Blocked, packed, SIMD-dispatched single-precision GEMM used by conv
// (via im2col) and linear layers. See docs/PERF.md for the design.
#ifndef POE_TENSOR_GEMM_H_
#define POE_TENSOR_GEMM_H_

#include <cstdint>

namespace poe {

/// Optional fused output transform applied after the matrix product is
/// complete (on the final k-block, in the same pass that writes C), so
/// inference layers avoid separate bias/activation sweeps over the output.
struct GemmEpilogue {
  /// Added to every element of row i of C (length m). Conv layout:
  /// C is [out_channels x out_h*out_w], bias is per channel (= per row).
  const float* row_bias = nullptr;
  /// Added to every element of column j of C (length n). Linear layout:
  /// C is [batch x out_features], bias is per feature (= per column).
  const float* col_bias = nullptr;
  /// Applies max(0, x) after the bias terms.
  bool relu = false;

  bool empty() const {
    return row_bias == nullptr && col_bias == nullptr && !relu;
  }
};

/// C = alpha * op(A) * op(B) + beta * C, row-major.
///
/// op(A) is A (m x k) when !trans_a, else A^T with A stored (k x m).
/// op(B) is B (k x n) when !trans_b, else B^T with B stored (n x k).
/// C is m x n. Parallelized over 2-D macro-tiles of C.
void Gemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
          float alpha, const float* a, const float* b, float beta, float* c);

/// Sequential variant for use inside ParallelFor bodies (ParallelFor is not
/// reentrant, so nested parallel GEMM calls are forbidden).
void GemmSeq(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
             float alpha, const float* a, const float* b, float beta,
             float* c);

/// Gemm with a fused epilogue. `parallel` selects Gemm/GemmSeq behavior.
/// The product is bitwise identical for both settings: every C tile is
/// produced by one task with a fixed k-accumulation order.
void GemmEx(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
            float alpha, const float* a, const float* b, float beta, float* c,
            const GemmEpilogue& epilogue, bool parallel);

/// Number of macro-tiles a parallel Gemm/GemmEx would distribute over the
/// worker pool for an m x n product. Callers choosing between batch-level
/// and GEMM-level parallelism use this to pick the level that actually
/// has work to spread (1 means the GEMM runs sequentially regardless).
int64_t GemmParallelTiles(int64_t m, int64_t n);

/// Naive triple-loop reference implementation (double accumulator). The
/// test oracle for the optimized paths; never used on the hot path.
void GemmRef(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
             float alpha, const float* a, const float* b, float beta,
             float* c);

/// Name of the dispatched micro-kernel ("avx512", "avx2", "scalar") for
/// logging and benchmark labeling. Selection is automatic per CPU
/// features; the POE_GEMM_KERNEL environment variable forces a variant
/// (unsupported values fall back to auto-detection).
const char* GemmKernelName();

}  // namespace poe

#endif  // POE_TENSOR_GEMM_H_

// Per-thread bump-allocated scratch memory for hot-path temporaries.
#ifndef POE_TENSOR_ARENA_H_
#define POE_TENSOR_ARENA_H_

#include <cstdint>
#include <memory>
#include <vector>

namespace poe {

/// A chunked bump allocator for float scratch buffers (im2col columns, GEMM
/// packing panels, per-thread gradient accumulators).
///
/// Memory is carved out of a list of fixed blocks that are never freed or
/// reallocated while the arena lives, so pointers returned by Alloc stay
/// valid until the enclosing ScratchScope is destroyed — including across
/// nested allocations that force the arena to grow a new block. After a
/// warmup pass has sized the block list, steady-state Alloc/Reset cycles
/// perform zero heap allocations.
///
/// Not thread-safe; use ThreadLocal() to get this thread's instance.
class ScratchArena {
 public:
  ScratchArena() = default;
  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  /// Returns an uninitialized buffer of `n` floats, valid until the
  /// enclosing scope rewinds past it.
  float* Alloc(int64_t n);

  /// This thread's arena (created on first use).
  static ScratchArena& ThreadLocal();

  /// Total floats reserved across all blocks.
  int64_t capacity() const { return capacity_; }
  /// Number of backing blocks (stable once warmed up).
  int64_t num_blocks() const { return static_cast<int64_t>(blocks_.size()); }

 private:
  friend class ScratchScope;

  struct Block {
    std::unique_ptr<float[]> data;
    int64_t size = 0;
  };

  // Minimum block size: 1 MiB of floats, so small allocations coalesce.
  static constexpr int64_t kMinBlockFloats = 1 << 18;

  std::vector<Block> blocks_;
  int64_t current_ = 0;   // block being bumped
  int64_t offset_ = 0;    // floats used in blocks_[current_]
  int64_t capacity_ = 0;  // sum of block sizes
};

/// RAII rewind point: allocations made through the scope (or directly on the
/// arena while the scope is alive) are released when it is destroyed.
/// Scopes nest; destroy in LIFO order.
class ScratchScope {
 public:
  explicit ScratchScope(ScratchArena& arena = ScratchArena::ThreadLocal())
      : arena_(arena),
        saved_current_(arena.current_),
        saved_offset_(arena.offset_) {}
  ~ScratchScope() {
    arena_.current_ = saved_current_;
    arena_.offset_ = saved_offset_;
  }
  ScratchScope(const ScratchScope&) = delete;
  ScratchScope& operator=(const ScratchScope&) = delete;

  float* Alloc(int64_t n) { return arena_.Alloc(n); }

 private:
  ScratchArena& arena_;
  int64_t saved_current_;
  int64_t saved_offset_;
};

/// `n` bytes of int8 scratch carved out of the float arena (character-type
/// access of the float blocks is aliasing-safe). Used by the quantized
/// serving path for activation buffers and GEMM panels.
inline int8_t* AllocS8(ScratchScope& scope, int64_t n) {
  return reinterpret_cast<int8_t*>(scope.Alloc((n + 3) / 4));
}

/// Unsigned variant (shifted int8 GEMM A-panels).
inline uint8_t* AllocU8(ScratchScope& scope, int64_t n) {
  return reinterpret_cast<uint8_t*>(scope.Alloc((n + 3) / 4));
}

}  // namespace poe

#endif  // POE_TENSOR_ARENA_H_

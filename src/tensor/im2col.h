// im2col / col2im transforms backing convolution as GEMM.
//
// Inference at stride 1 no longer materializes these matrices: the direct
// path (tensor/conv_direct.h) feeds the GEMM's B pack straight from a
// zero-padded image view, bitwise identical to im2col + GEMM. What stays
// on the im2col route is everything direct does not cover — strided
// forwards, and training (Col2Im backs the backward pass).
#ifndef POE_TENSOR_IM2COL_H_
#define POE_TENSOR_IM2COL_H_

#include <cstdint>

namespace poe {

/// Unfolds one image (C x H x W, row-major) into a column matrix of shape
/// (C*kh*kw) x (out_h*out_w) so that convolution is a single GEMM with the
/// (out_c) x (C*kh*kw) weight matrix.
void Im2Col(const float* image, int64_t channels, int64_t height,
            int64_t width, int64_t kernel_h, int64_t kernel_w, int64_t pad,
            int64_t stride, float* columns);

/// Int8 overload for the quantized serving path: unfolds an already
/// symmetric-quantized image (padding writes quantized zero = 0 exactly).
void Im2Col(const int8_t* image, int64_t channels, int64_t height,
            int64_t width, int64_t kernel_h, int64_t kernel_w, int64_t pad,
            int64_t stride, int8_t* columns);

/// Fused quantize + unfold: gathers straight from the f32 image and
/// quantizes each element as it lands in the column matrix (`inv_scale` =
/// 1 / activation scale, QuantizeOneS8 rounding; stride-1 spans run the
/// vectorized quantizer). Bitwise identical to QuantizeBufferS8 followed
/// by the int8 Im2Col (quantization is elementwise and quantized zero
/// padding is exactly 0). Measurement note (docs/PERF.md): the unfold
/// reads each element up to k*k times, so fusing re-quantizes where the
/// two-pass route re-copies bytes — ~2x slower at WRN 3x3 geometries —
/// and Conv2d therefore serves k > 1 via the two-pass route (pointwise
/// convs quantize directly into the column matrix, the fully fused
/// degenerate case).
void Im2ColQuantize(const float* image, int64_t channels, int64_t height,
                    int64_t width, int64_t kernel_h, int64_t kernel_w,
                    int64_t pad, int64_t stride, float inv_scale,
                    int8_t* columns);

/// Inverse accumulation of Im2Col: scatters the column matrix back into the
/// image gradient (adds into `image_grad`, which the caller must zero).
void Col2Im(const float* columns, int64_t channels, int64_t height,
            int64_t width, int64_t kernel_h, int64_t kernel_w, int64_t pad,
            int64_t stride, float* image_grad);

/// Output spatial size for a conv dimension.
inline int64_t ConvOutSize(int64_t in, int64_t kernel, int64_t pad,
                           int64_t stride) {
  return (in + 2 * pad - kernel) / stride + 1;
}

}  // namespace poe

#endif  // POE_TENSOR_IM2COL_H_

// im2col / col2im transforms backing convolution as GEMM.
#ifndef POE_TENSOR_IM2COL_H_
#define POE_TENSOR_IM2COL_H_

#include <cstdint>

namespace poe {

/// Unfolds one image (C x H x W, row-major) into a column matrix of shape
/// (C*kh*kw) x (out_h*out_w) so that convolution is a single GEMM with the
/// (out_c) x (C*kh*kw) weight matrix.
void Im2Col(const float* image, int64_t channels, int64_t height,
            int64_t width, int64_t kernel_h, int64_t kernel_w, int64_t pad,
            int64_t stride, float* columns);

/// Int8 overload for the quantized serving path: unfolds an already
/// symmetric-quantized image (padding writes quantized zero = 0 exactly).
void Im2Col(const int8_t* image, int64_t channels, int64_t height,
            int64_t width, int64_t kernel_h, int64_t kernel_w, int64_t pad,
            int64_t stride, int8_t* columns);

/// Inverse accumulation of Im2Col: scatters the column matrix back into the
/// image gradient (adds into `image_grad`, which the caller must zero).
void Col2Im(const float* columns, int64_t channels, int64_t height,
            int64_t width, int64_t kernel_h, int64_t kernel_w, int64_t pad,
            int64_t stride, float* image_grad);

/// Output spatial size for a conv dimension.
inline int64_t ConvOutSize(int64_t in, int64_t kernel, int64_t pad,
                           int64_t stride) {
  return (in + 2 * pad - kernel) / stride + 1;
}

}  // namespace poe

#endif  // POE_TENSOR_IM2COL_H_

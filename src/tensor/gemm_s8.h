// Blocked, packed, SIMD-dispatched int8 x int8 -> int32 GEMM with a fused
// dequantizing epilogue: the quantized serving hot path. Shares the f32
// GEMM's MC/NC macro-tiling (docs/PERF.md) and adds a KR k-group interleave
// for the 8-bit dot-product instructions.
#ifndef POE_TENSOR_GEMM_S8_H_
#define POE_TENSOR_GEMM_S8_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "tensor/conv_direct.h"

namespace poe {

/// Output transform applied in the int32 -> f32 store pass. The raw
/// product acc = sum_p op(A)(i,p) * op(B)(p,j) becomes
///
///   v = acc * scale * row_scale[i] * col_scale[j] + row_bias[i] + col_bias[j]
///   C(i,j) = relu ? max(0, v) : v
///
/// with absent pointers treated as 1 (scales) / 0 (biases). Quantized
/// layers put the activation scale in `scale` and the per-output-channel
/// weight scales in row_scale (conv layout: C rows are channels) or
/// col_scale (linear layout: C columns are features).
struct GemmS8Epilogue {
  float scale = 1.0f;
  const float* row_scale = nullptr;  ///< length m
  const float* col_scale = nullptr;  ///< length n
  const float* row_bias = nullptr;   ///< length m, f32, added after dequant
  const float* col_bias = nullptr;   ///< length n, f32, added after dequant
  bool relu = false;
};

/// C (f32, m x n, row-major) = epilogue(op(A) * op(B)) where A and B are
/// int8 and the product accumulates exactly in int32 (no intermediate
/// rounding). Within a process results are bitwise identical across
/// thread counts and across the plain/prepacked entry points; different
/// kernels may differ by a few ulps in the f32 epilogue (the VNNI store
/// vectorizes it with a different operation order). op(A)/op(B) transpose
/// semantics match the f32 Gemm. k must be at most 1 << 16 so the
/// worst-case accumulator cannot overflow.
void GemmS8(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
            const int8_t* a, const int8_t* b, float* c,
            const GemmS8Epilogue& epilogue, bool parallel);

/// Weights pre-packed once into the dispatched kernel's op(A) panel layout
/// (an m x k row-major int8 matrix, no transpose). Serving layers build
/// this at quantization time so per-query GEMMs skip the A-packing pass
/// and the f32 weights can be released. Valid only within the process that
/// packed it (the layout depends on the dispatched kernel geometry).
class PackedS8Weights {
 public:
  PackedS8Weights() = default;
  static PackedS8Weights Pack(int64_t m, int64_t k, const int8_t* a);

  /// Reconstructs the original row-major m x k int8 matrix into `out`
  /// (m*k entries) — the exact inverse of Pack for this process's kernel.
  /// Serialization exports through this, so persisted int8 pools stay
  /// kernel-layout independent without holding a second raw copy of the
  /// weights in memory.
  void Unpack(int8_t* out) const;

  bool empty() const { return data_.empty(); }
  int64_t rows() const { return m_; }
  int64_t depth() const { return k_; }
  /// Bytes held by the packed panels (the serving footprint of the
  /// weight matrix).
  int64_t nbytes() const { return static_cast<int64_t>(data_.size()); }

 private:
  friend void GemmS8PackedA(const PackedS8Weights&, int64_t, const int8_t*,
                            float*, const GemmS8Epilogue&, bool);
  friend void GemmS8ConvPackedA(const PackedS8Weights&,
                                const ConvImageViewS8&, float*,
                                const GemmS8Epilogue&, bool);
  std::vector<uint8_t> data_;  // shift-applied panels, kpad*mr per panel
  int64_t m_ = 0, k_ = 0;
};

/// GemmS8 with op(A) pre-packed and op(B) = B (k x n, untransposed):
/// C (m x n) = epilogue(packed_a * B). The conv im2col serving path.
void GemmS8PackedA(const PackedS8Weights& a, int64_t n, const int8_t* b,
                   float* c, const GemmS8Epilogue& epilogue, bool parallel);

/// Direct (im2col-free) int8 convolution as GEMM: op(B) is the virtual
/// im2col matrix of the quantized padded image, gathered while packing
/// (PackBs8Conv / the kernels' SIMD conv packers). Panel bytes and colsums
/// are identical to packing the materialized im2col matrix and the int32
/// accumulation is exact, so outputs are bitwise identical to
/// GemmS8/GemmS8PackedA over im2col on every kernel tier.
void GemmS8Conv(int64_t m, const int8_t* a, const ConvImageViewS8& img,
                float* c, const GemmS8Epilogue& epilogue, bool parallel);

/// GemmS8Conv with the weight operand pre-packed (the int8 conv serving
/// hot path). Same bitwise guarantee.
void GemmS8ConvPackedA(const PackedS8Weights& a, const ConvImageViewS8& img,
                       float* c, const GemmS8Epilogue& epilogue,
                       bool parallel);

/// op(B) of a k x n int8 product pre-packed ONCE into the dispatched
/// kernel's NR-column / KR-group panel layout, column sums included (the
/// shift-compensation term the dequantizing store needs). Linear's int8
/// serving weight is op(B) = W^T — its per-call transposed PackBs8 was the
/// dominant cost at BM_LinearForwardInt8 geometry, and this form deletes
/// it. Panel bytes and colsums are identical to the on-the-fly pack, so
/// GemmS8PackedB is bitwise identical to GemmS8. Process-local (layout
/// depends on the dispatched kernel geometry).
class PackedS8BWeights {
 public:
  PackedS8BWeights() = default;
  static PackedS8BWeights Pack(bool trans_b, int64_t k, int64_t n,
                               const int8_t* b);

  /// Reconstructs the trans_b = true Pack source — the n x k row-major
  /// int8 matrix whose transpose the panels encode — into `out` (n*k
  /// entries); for a !trans_b source this is B^T. The exact inverse of
  /// Pack for this process's kernel, so int8 Linear can serve from the
  /// panels alone and still export a layout-independent raw weight copy
  /// for serialization.
  void Unpack(int8_t* out) const;

  bool empty() const { return data_.empty(); }
  int64_t depth() const { return k_; }
  int64_t cols() const { return n_; }
  /// Bytes held by the packed panels plus the column sums.
  int64_t nbytes() const {
    return static_cast<int64_t>(data_.size()) +
           static_cast<int64_t>(colsum_.size() * sizeof(int32_t));
  }

 private:
  friend void GemmS8PackedB(bool, int64_t, const int8_t*,
                            const PackedS8BWeights&, float*,
                            const GemmS8Epilogue&, bool);
  std::vector<int8_t> data_;     // per column tile: kpad*nr panels
  std::vector<int32_t> colsum_;  // per packed column (nr-padded per tile)
  int64_t k_ = 0, n_ = 0;
};

/// GemmS8 with op(B) pre-packed: C (m x n) = epilogue(op(A) * packed_b)
/// where op(A) is A (m x k) when !trans_a. The linear serving path
/// (activations are A, untransposed).
void GemmS8PackedB(bool trans_a, int64_t m, const int8_t* a,
                   const PackedS8BWeights& b, float* c,
                   const GemmS8Epilogue& epilogue, bool parallel);

/// Naive triple-loop reference with exact int32 accumulation and the same
/// epilogue arithmetic (bitwise-identical outputs). The test oracle.
void GemmS8Ref(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
               const int8_t* a, const int8_t* b, float* c,
               const GemmS8Epilogue& epilogue);

/// Name of the dispatched int8 micro-kernel ("avx512vnni", "avx2",
/// "scalar"). Selection is automatic per CPU features; POE_GEMM_KERNEL
/// forces a variant ("avx512" selects the VNNI kernel; unsupported values
/// fall back to auto-detection).
const char* GemmS8KernelName();

/// The project-wide int8 rounding rule for one value: scale, clamp to
/// [-127, 127], round half away from zero. QuantizeBufferS8 and the fused
/// quantizing im2col both apply exactly this, so quantize-then-gather and
/// gather-then-quantize produce bitwise identical columns.
inline int8_t QuantizeOneS8(float v, float inv_scale) {
  v *= inv_scale;
  // min-first clamp order absorbs NaN to 127 (std::min(127, NaN) == 127),
  // matching the vectorized path's MINPS(x, 127) semantics — no UB cast,
  // no scalar/SIMD divergence on pathological inputs.
  v = std::max(-127.0f, std::min(127.0f, v));
  return static_cast<int8_t>(
      static_cast<int32_t>(v + (v >= 0.0f ? 0.5f : -0.5f)));
}

/// Quantizes `n` f32 values symmetrically to int8 with `inv_scale` =
/// 1 / SymmetricScaleS8(...) (round half away from zero, clamped to
/// [-127, 127]). The single rounding routine behind both the dynamic
/// activation quantization of the serving layers and the snapshot
/// quantization in compress/quantize.cc.
void QuantizeBufferS8(const float* src, int64_t n, float inv_scale,
                      int8_t* dst);

/// Symmetric max-abs int8 scale of `n` values: max|x| / 127, or 1 when
/// all values are zero (so zero tensors round-trip exactly).
float SymmetricScaleS8(const float* src, int64_t n);

/// Max |x| over `n` floats (0 for n == 0). NaNs are skipped — the scalar
/// `v > max` test is false for NaN — and the AVX2 path reproduces exactly
/// that (MAXPS keeps the running max on unordered compares), so like
/// QuantizeBufferS8 it is bitwise identical to the scalar loop and engages
/// on CPU capability alone. The scan behind every dynamic activation scale
/// and the snapshot quantizer's per-channel scales.
float MaxAbs(const float* src, int64_t n);

}  // namespace poe

#endif  // POE_TENSOR_GEMM_S8_H_

#include "tensor/gemm_s8.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>

#include "tensor/arena.h"
#include "tensor/pack_s8.h"
#include "util/logging.h"
#include "util/parallel_for.h"

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define POE_GEMM_S8_X86 1
#include <immintrin.h>
#endif

namespace poe {

namespace {

// Macro-tile grid (same MC/NC as the f32 GEMM, so conv/linear layers can
// reuse GemmParallelTiles for their parallelism decision). There is no
// k-blocking: int8 panels are 4x denser than f32, so whole-k panels stay
// cache-resident for every shape this system runs, and the register tile
// finishes its exact int32 accumulation in one kernel call.
constexpr int64_t kMC = 240;  // multiple of every kernel's MR (6 and 12)
constexpr int64_t kNC = 1024;

// k cap so the worst-case accumulator |sum_p (a+128)*b| <= k * 255 * 127
// stays far from int32 overflow.
constexpr int64_t kMaxK = 1 << 16;

constexpr int64_t kMaxMR = 16;
constexpr int64_t kMaxNR = 32;

// A micro-kernel computes acc[r*acc_rs + c*acc_cs] = sum_p a[...] * b[...]
// over whole packed panels (`groups` = kpad/KR k-groups; acc is
// overwritten). The A panel holds uint8 values pre-shifted by the kernel's
// `shift`; the dequantizing store subtracts shift * colsum to undo it.
using MicroKernelS8Fn = void (*)(int64_t groups, const uint8_t* a,
                                 const int8_t* b, int32_t* acc);

// Optional SIMD fast paths a kernel may plug in (null = generic loops):
// a B-panel packer for the kernel's (nr, kr) geometry (!trans_b only), a
// direct-conv B-panel packer gathering the virtual im2col matrix from a
// padded image (same panel bytes and colsums), and a vectorized
// dequantizing store for the kernel's accumulator tile shape.
using PackBFastFn = void (*)(const int8_t* b, int64_t k, int64_t n,
                             int64_t j0, int64_t nc, int8_t* out,
                             int32_t* colsum);
using PackBConvFastFn = void (*)(const ConvImageViewS8& img, int64_t j0,
                                 int64_t nc, int8_t* out, int32_t* colsum);
using DequantStoreFn = void (*)(const int32_t* acc, int64_t rows,
                                int64_t cols, const int32_t* colsum,
                                const GemmS8Epilogue& ep, int64_t row0,
                                int64_t col0, float* c, int64_t ldc);

struct KernelS8 {
  int64_t mr, nr, kr;
  int64_t acc_rs, acc_cs;  // accumulator tile strides (row, column)
  uint8_t shift;  // 128 for u8 x s8 instruction kernels, else 0
  PackBFastFn pack_b_fast;           // nullable, !trans_b geometry only
  PackBConvFastFn pack_b_conv_fast;  // nullable
  DequantStoreFn store_fast;         // nullable
  MicroKernelS8Fn fn;
  const char* name;
};

// Shared address math for the SIMD direct-conv B packers: one 16-column
// block of the virtual im2col matrix reads 16 consecutive output pixels,
// which for stride 1 are one contiguous run of the padded image when they
// sit inside a single output row, else a handful of row segments. The
// segment structure depends only on the block's starting column — it is
// identical for every k row — so the packers compute it once per panel.
struct ConvColSeg {
  int32_t dst;  // byte offset inside the 16-byte block
  int32_t len;
  int64_t src;  // element offset inside a shifted padded-image row view
};

// Builds the segment list for the 16 columns starting at flat output
// index j. Returns 0 and sets *contig_off when the block is contiguous;
// out_w >= 1 bounds the list by ceil(16/out_w) + 1 <= 17 entries.
inline int BuildConvColSegs(int64_t j, int64_t out_w, int64_t pw,
                            int64_t* contig_off, ConvColSeg* segs) {
  const int64_t oh = j / out_w;
  const int64_t ow = j - oh * out_w;
  if (ow + 16 <= out_w) {
    *contig_off = oh * pw + ow;
    return 0;
  }
  int nseg = 0;
  int64_t left = 16;
  int64_t jj = j;
  while (left > 0) {
    const int64_t soh = jj / out_w;
    const int64_t sow = jj - soh * out_w;
    const int64_t len = std::min(left, out_w - sow);
    segs[nseg].dst = static_cast<int32_t>(16 - left);
    segs[nseg].len = static_cast<int32_t>(len);
    segs[nseg].src = soh * pw + sow;
    ++nseg;
    left -= len;
    jj += len;
  }
  return nseg;
}

#ifdef POE_GEMM_S8_X86
// Loads the 16 virtual-im2col bytes of one k row for a column block:
// `row` is the padded image shifted by that row's (c, kh, kw) offset.
// Contiguous blocks are a single unaligned load (always in bounds: the
// rightmost tap of the last output pixel is the last padded-image byte);
// row-crossing blocks assemble their segments into a stack buffer first.
inline __m128i LoadConvBlock16(const int8_t* row, int64_t contig_off,
                               const ConvColSeg* segs, int nseg) {
  if (nseg == 0) {
    return _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(row + contig_off));
  }
  alignas(16) int8_t buf[16];
  for (int s = 0; s < nseg; ++s) {
    std::memcpy(buf + segs[s].dst, row + segs[s].src,
                static_cast<size_t>(segs[s].len));
  }
  return _mm_load_si128(reinterpret_cast<const __m128i*>(buf));
}

// Walks the per-k row base pointer of a conv image in ascending p =
// (c, kh, kw) order with pure increments (no divisions in the pack loop).
struct ConvRowCursor {
  const int8_t* row;
  int64_t kw = 0, kh = 0;
  int64_t kernel, pw, row_step, chan_step;

  explicit ConvRowCursor(const ConvImageViewS8& img)
      : row(img.padded),
        kernel(img.kernel),
        pw(img.padded_w()),
        row_step(img.padded_w() - img.kernel),
        chan_step((img.padded_h() - img.kernel) * img.padded_w()) {}

  void Advance() {
    ++kw;
    ++row;
    if (kw == kernel) {
      kw = 0;
      ++kh;
      row += row_step;
      if (kh == kernel) {
        kh = 0;
        row += chan_step;
      }
    }
  }
};
#endif  // POE_GEMM_S8_X86

// Chunk-wise specialization of PackAs8 for the untransposed case: each
// source row contributes contiguous kr-byte runs, so the pack is a plain
// kr-byte copy with the +128 shift applied as a bytewise XOR of the top
// bit ((int8)v + 128 == (uint8)v ^ 0x80). ~4x the bytewise generic loop.
void PackAs8RowMajor(const int8_t* a, int64_t m, int64_t k, int64_t i0,
                     int64_t mc, int64_t mr, int64_t kr, uint8_t shift,
                     uint8_t* out) {
  (void)m;
  const int64_t kpad = (k + kr - 1) / kr * kr;
  const int64_t group = mr * kr;
  const int64_t kfull = k / kr * kr;
  const uint32_t mask = shift == 0 ? 0u : 0x80808080u;
  for (int64_t ip = 0; ip < mc; ip += mr) {
    const int64_t rows = (mc - ip < mr) ? mc - ip : mr;
    uint8_t* panel = out + (ip / mr) * kpad * mr;
    for (int64_t r = 0; r < rows; ++r) {
      const int8_t* src = a + (i0 + ip + r) * k;
      uint8_t* dst = panel + r * kr;
      if (kr == 4) {
        for (int64_t p = 0; p < kfull; p += 4, dst += group) {
          uint32_t w;
          std::memcpy(&w, src + p, 4);
          w ^= mask;
          std::memcpy(dst, &w, 4);
        }
      } else {
        for (int64_t p = 0; p < kfull; p += kr, dst += group) {
          for (int64_t q = 0; q < kr; ++q)
            dst[q] = static_cast<uint8_t>(src[p + q] + shift);
        }
      }
      if (kfull < k) {  // zero-padded (post-shift) trailing group
        for (int64_t q = 0; q < kr; ++q)
          dst[q] = kfull + q < k
                       ? static_cast<uint8_t>(src[kfull + q] + shift)
                       : shift;
      }
    }
    // Row padding is `shift` (zero after unshifting).
    for (int64_t r = rows; r < mr; ++r) {
      uint8_t* dst = panel + r * kr;
      for (int64_t g = 0; g < kpad / kr; ++g)
        for (int64_t q = 0; q < kr; ++q) dst[g * group + q] = shift;
    }
  }
}

// Portable fallback: 6x16 int32 accumulator block in plain C with the
// KR = 4 interleave. Fixed trip counts let the compiler unroll/vectorize.
void MicroKernelS8Scalar6x16(int64_t groups, const uint8_t* a,
                             const int8_t* b, int32_t* acc) {
  int32_t c[6 * 16];
  std::memset(c, 0, sizeof(c));
  const int8_t* as = reinterpret_cast<const int8_t*>(a);  // shift == 0
  for (int64_t g = 0; g < groups; ++g, as += 6 * 4, b += 16 * 4) {
    for (int r = 0; r < 6; ++r) {
      const int32_t a0 = as[r * 4 + 0];
      const int32_t a1 = as[r * 4 + 1];
      const int32_t a2 = as[r * 4 + 2];
      const int32_t a3 = as[r * 4 + 3];
      int32_t* crow = c + r * 16;
      for (int j = 0; j < 16; ++j) {
        crow[j] += a0 * b[j * 4 + 0] + a1 * b[j * 4 + 1] +
                   a2 * b[j * 4 + 2] + a3 * b[j * 4 + 3];
      }
    }
  }
  std::memcpy(acc, c, sizeof(c));
}

#ifdef POE_GEMM_S8_X86

// Exact 6x16 AVX2 kernel, KR = 2: both operands are sign-extended to int16
// and combined with vpmaddwd (a0*b0 + a1*b1 into int32, no saturation —
// |products| <= 2 * 127^2 so the pairwise int32 sum is exact). 12 ymm
// accumulators + 2 B vectors + 1 broadcast.
__attribute__((target("avx2"))) void MicroKernelS8Avx2_6x16(
    int64_t groups, const uint8_t* a, const int8_t* b, int32_t* acc) {
  __m256i c0[6], c1[6];
  for (int r = 0; r < 6; ++r) {
    c0[r] = _mm256_setzero_si256();
    c1[r] = _mm256_setzero_si256();
  }
  const int8_t* as = reinterpret_cast<const int8_t*>(a);  // shift == 0
  for (int64_t g = 0; g < groups; ++g, as += 6 * 2, b += 16 * 2) {
    // 32 B bytes = 16 columns x 2 k-values, sign-extended to int16 pairs.
    const __m256i b0 = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b)));
    const __m256i b1 = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + 16)));
#pragma GCC unroll 6
    for (int r = 0; r < 6; ++r) {
      const uint32_t pair =
          static_cast<uint16_t>(static_cast<int16_t>(as[r * 2])) |
          (static_cast<uint32_t>(
               static_cast<uint16_t>(static_cast<int16_t>(as[r * 2 + 1])))
           << 16);
      const __m256i va = _mm256_set1_epi32(static_cast<int32_t>(pair));
      c0[r] = _mm256_add_epi32(c0[r], _mm256_madd_epi16(va, b0));
      c1[r] = _mm256_add_epi32(c1[r], _mm256_madd_epi16(va, b1));
    }
  }
  for (int r = 0; r < 6; ++r) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + r * 16), c0[r]);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + r * 16 + 8),
                        c1[r]);
  }
}

// SIMD B packer for the AVX2 geometry (kr = 2, nr = 16, !trans_b),
// mirroring the VNNI one: each k-group of a panel is a 2x16 byte
// interleave (one unpacklo/unpackhi pair), and the column sums accumulate
// vectorized (sign-extend both rows to int16, add, widen to int32).
__attribute__((target("avx2"))) void PackBs8Avx2_16x2(
    const int8_t* b, int64_t k, int64_t n, int64_t j0, int64_t nc,
    int8_t* out, int32_t* colsum) {
  constexpr int64_t kNr = 16;
  constexpr int64_t kKr = 2;
  const int64_t kpad = (k + kKr - 1) / kKr * kKr;
  const int64_t kfull = k / kKr * kKr;
  for (int64_t jp = 0; jp < nc; jp += kNr) {
    const int64_t cols = (nc - jp < kNr) ? nc - jp : kNr;
    int8_t* panel = out + (jp / kNr) * kpad * kNr;
    if (cols == kNr) {
      __m256i sum_lo = _mm256_setzero_si256();  // columns 0..7, int32
      __m256i sum_hi = _mm256_setzero_si256();  // columns 8..15
      int8_t* dst = panel;
      const int8_t* src = b + j0 + jp;
      for (int64_t p = 0; p < kfull; p += 2, dst += 32) {
        const __m128i r0 = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(src + (p + 0) * n));
        const __m128i r1 = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(src + (p + 1) * n));
        // Interleave to the packed k-group order: dst[c*2 + q] = rq[c].
        _mm_storeu_si128(reinterpret_cast<__m128i*>(dst),
                         _mm_unpacklo_epi8(r0, r1));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + 16),
                         _mm_unpackhi_epi8(r0, r1));
        const __m256i pair16 = _mm256_add_epi16(_mm256_cvtepi8_epi16(r0),
                                                _mm256_cvtepi8_epi16(r1));
        sum_lo = _mm256_add_epi32(
            sum_lo,
            _mm256_cvtepi16_epi32(_mm256_castsi256_si128(pair16)));
        sum_hi = _mm256_add_epi32(
            sum_hi,
            _mm256_cvtepi16_epi32(_mm256_extracti128_si256(pair16, 1)));
      }
      if (kfull < k) {  // odd k: trailing group is (value, 0) pairs
        const __m128i r0 = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(src + kfull * n));
        const __m128i zero = _mm_setzero_si128();
        _mm_storeu_si128(reinterpret_cast<__m128i*>(dst),
                         _mm_unpacklo_epi8(r0, zero));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + 16),
                         _mm_unpackhi_epi8(r0, zero));
        const __m256i last16 = _mm256_cvtepi8_epi16(r0);
        sum_lo = _mm256_add_epi32(
            sum_lo,
            _mm256_cvtepi16_epi32(_mm256_castsi256_si128(last16)));
        sum_hi = _mm256_add_epi32(
            sum_hi,
            _mm256_cvtepi16_epi32(_mm256_extracti128_si256(last16, 1)));
      }
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(colsum + jp), sum_lo);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(colsum + jp + 8),
                          sum_hi);
    } else {
      // Edge panel: generic bytewise pack of the partial column set.
      PackBs8(/*trans_b=*/false, b, k, n, j0 + jp, cols, kNr, kKr, panel,
              colsum + jp);
    }
  }
}

// Direct-conv variant of PackBs8Avx2_16x2: the 16-column source rows come
// from the virtual im2col matrix — 16 consecutive output pixels of one
// (c, kh, kw) tap, i.e. a shifted window of the padded image — instead of
// a materialized B row. The interleave and colsum arithmetic are the
// matrix packer's, so the panel bytes and sums are byte-identical to
// packing the materialized im2col matrix.
__attribute__((target("avx2"))) void PackBs8ConvAvx2_16x2(
    const ConvImageViewS8& img, int64_t j0, int64_t nc, int8_t* out,
    int32_t* colsum) {
  constexpr int64_t kNr = 16;
  constexpr int64_t kKr = 2;
  const int64_t k = img.depth();
  const int64_t kpad = (k + kKr - 1) / kKr * kKr;
  const int64_t kfull = k / kKr * kKr;
  const int64_t out_w = img.out_w();
  const int64_t pw = img.padded_w();
  for (int64_t jp = 0; jp < nc; jp += kNr) {
    const int64_t cols = (nc - jp < kNr) ? nc - jp : kNr;
    int8_t* panel = out + (jp / kNr) * kpad * kNr;
    if (cols == kNr) {
      int64_t contig_off = 0;
      ConvColSeg segs[17];
      const int nseg =
          BuildConvColSegs(j0 + jp, out_w, pw, &contig_off, segs);
      __m256i sum_lo = _mm256_setzero_si256();  // columns 0..7, int32
      __m256i sum_hi = _mm256_setzero_si256();  // columns 8..15
      int8_t* dst = panel;
      ConvRowCursor cur(img);
      for (int64_t p = 0; p < kfull; p += 2, dst += 32) {
        const __m128i r0 = LoadConvBlock16(cur.row, contig_off, segs, nseg);
        cur.Advance();
        const __m128i r1 = LoadConvBlock16(cur.row, contig_off, segs, nseg);
        cur.Advance();
        _mm_storeu_si128(reinterpret_cast<__m128i*>(dst),
                         _mm_unpacklo_epi8(r0, r1));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + 16),
                         _mm_unpackhi_epi8(r0, r1));
        const __m256i pair16 = _mm256_add_epi16(_mm256_cvtepi8_epi16(r0),
                                                _mm256_cvtepi8_epi16(r1));
        sum_lo = _mm256_add_epi32(
            sum_lo,
            _mm256_cvtepi16_epi32(_mm256_castsi256_si128(pair16)));
        sum_hi = _mm256_add_epi32(
            sum_hi,
            _mm256_cvtepi16_epi32(_mm256_extracti128_si256(pair16, 1)));
      }
      if (kfull < k) {  // odd k: trailing group is (value, 0) pairs
        const __m128i r0 = LoadConvBlock16(cur.row, contig_off, segs, nseg);
        const __m128i zero = _mm_setzero_si128();
        _mm_storeu_si128(reinterpret_cast<__m128i*>(dst),
                         _mm_unpacklo_epi8(r0, zero));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + 16),
                         _mm_unpackhi_epi8(r0, zero));
        const __m256i last16 = _mm256_cvtepi8_epi16(r0);
        sum_lo = _mm256_add_epi32(
            sum_lo,
            _mm256_cvtepi16_epi32(_mm256_castsi256_si128(last16)));
        sum_hi = _mm256_add_epi32(
            sum_hi,
            _mm256_cvtepi16_epi32(_mm256_extracti128_si256(last16, 1)));
      }
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(colsum + jp), sum_lo);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(colsum + jp + 8),
                          sum_hi);
    } else {
      // Edge panel: generic bytewise gather of the partial column set.
      PackBs8Conv(img, j0 + jp, cols, kNr, kKr, panel, colsum + jp);
    }
  }
}

// Vectorized dequantizing store for the AVX2 tile (6x16, row-major
// accumulator, shift == 0 so there is no colsum compensation). Performs
// the exact elementwise operation sequence of DequantOne — mul scale, mul
// row_scale, mul col_scale, add row_bias, add col_bias, relu — with
// explicit intrinsics (no contraction), so its results are bitwise
// identical to the scalar store and therefore across every execution
// path of this kernel.
__attribute__((target("avx2"))) void DequantStoreAvx2_6x16(
    const int32_t* acc, int64_t rows, int64_t cols,
    const int32_t* /*colsum*/, const GemmS8Epilogue& ep, int64_t row0,
    int64_t col0, float* c, int64_t ldc) {
  const __m256i idx =
      _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  const __m256i mask_lo = _mm256_cmpgt_epi32(
      _mm256_set1_epi32(static_cast<int>(cols)), idx);
  const __m256i mask_hi = _mm256_cmpgt_epi32(
      _mm256_set1_epi32(static_cast<int>(cols) - 8), idx);
  const __m256 col_scale_lo =
      ep.col_scale != nullptr
          ? _mm256_maskload_ps(ep.col_scale + col0, mask_lo)
          : _mm256_set1_ps(1.0f);
  const __m256 col_scale_hi =
      ep.col_scale != nullptr
          ? _mm256_maskload_ps(ep.col_scale + col0 + 8, mask_hi)
          : _mm256_set1_ps(1.0f);
  const __m256 col_bias_lo =
      ep.col_bias != nullptr
          ? _mm256_maskload_ps(ep.col_bias + col0, mask_lo)
          : _mm256_setzero_ps();
  const __m256 col_bias_hi =
      ep.col_bias != nullptr
          ? _mm256_maskload_ps(ep.col_bias + col0 + 8, mask_hi)
          : _mm256_setzero_ps();
  const __m256 scale = _mm256_set1_ps(ep.scale);
  const __m256 zero = _mm256_setzero_ps();
  for (int64_t r = 0; r < rows; ++r) {
    __m256 lo = _mm256_cvtepi32_ps(_mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(acc + r * 16)));
    __m256 hi = _mm256_cvtepi32_ps(_mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(acc + r * 16 + 8)));
    lo = _mm256_mul_ps(lo, scale);
    hi = _mm256_mul_ps(hi, scale);
    if (ep.row_scale != nullptr) {
      const __m256 rs = _mm256_set1_ps(ep.row_scale[row0 + r]);
      lo = _mm256_mul_ps(lo, rs);
      hi = _mm256_mul_ps(hi, rs);
    }
    if (ep.col_scale != nullptr) {
      lo = _mm256_mul_ps(lo, col_scale_lo);
      hi = _mm256_mul_ps(hi, col_scale_hi);
    }
    if (ep.row_bias != nullptr) {
      const __m256 rb = _mm256_set1_ps(ep.row_bias[row0 + r]);
      lo = _mm256_add_ps(lo, rb);
      hi = _mm256_add_ps(hi, rb);
    }
    if (ep.col_bias != nullptr) {
      lo = _mm256_add_ps(lo, col_bias_lo);
      hi = _mm256_add_ps(hi, col_bias_hi);
    }
    if (ep.relu) {
      lo = _mm256_max_ps(lo, zero);
      hi = _mm256_max_ps(hi, zero);
    }
    float* crow = c + (row0 + r) * ldc + col0;
    _mm256_maskstore_ps(crow, mask_lo, lo);
    if (cols > 8) _mm256_maskstore_ps(crow + 8, mask_hi, hi);
  }
}

// 16x16 AVX-512 VNNI kernel, KR = 4. One zmm load covers a whole A
// k-group (16 rows x 4 k-bytes); each of the 16 accumulator columns is
// updated by one vpdpbusd whose signed operand is the column's 4-byte
// B run broadcast straight from the panel ({1to16} embedded broadcast:
// no shuffle uop, no register). Accumulator lanes are rows, so the tile
// is written column-major (acc_rs = 1, acc_cs = 16). Hand-written asm:
// GCC's allocator otherwise rotates the 16 tied vpdpbusd accumulators
// through spill slots, which halves throughput. Sustains ~2 vpdpbusd
// (128 MACs) per cycle — about 4x the f32 FMA peak.
// The target attribute only legalizes the zmm16-23 clobbers for a
// non-native (runtime-dispatch) build; the body is fixed asm either way
// and is reached only when dispatch selected the VNNI kernel.
__attribute__((target("avx512f,avx512bw,avx512vnni"))) void
MicroKernelS8Vnni16x16(int64_t groups, const uint8_t* a, const int8_t* b,
                       int32_t* acc) {
  asm volatile(
      "vpxord %%zmm8, %%zmm8, %%zmm8\n\t"
      "vpxord %%zmm9, %%zmm9, %%zmm9\n\t"
      "vpxord %%zmm10, %%zmm10, %%zmm10\n\t"
      "vpxord %%zmm11, %%zmm11, %%zmm11\n\t"
      "vpxord %%zmm12, %%zmm12, %%zmm12\n\t"
      "vpxord %%zmm13, %%zmm13, %%zmm13\n\t"
      "vpxord %%zmm14, %%zmm14, %%zmm14\n\t"
      "vpxord %%zmm15, %%zmm15, %%zmm15\n\t"
      "vpxord %%zmm16, %%zmm16, %%zmm16\n\t"
      "vpxord %%zmm17, %%zmm17, %%zmm17\n\t"
      "vpxord %%zmm18, %%zmm18, %%zmm18\n\t"
      "vpxord %%zmm19, %%zmm19, %%zmm19\n\t"
      "vpxord %%zmm20, %%zmm20, %%zmm20\n\t"
      "vpxord %%zmm21, %%zmm21, %%zmm21\n\t"
      "vpxord %%zmm22, %%zmm22, %%zmm22\n\t"
      "vpxord %%zmm23, %%zmm23, %%zmm23\n\t"
      "1:\n\t"
      "vmovdqu64 (%[a]), %%zmm0\n\t"
      "vpdpbusd 0(%[b])%{1to16%}, %%zmm0, %%zmm8\n\t"
      "vpdpbusd 4(%[b])%{1to16%}, %%zmm0, %%zmm9\n\t"
      "vpdpbusd 8(%[b])%{1to16%}, %%zmm0, %%zmm10\n\t"
      "vpdpbusd 12(%[b])%{1to16%}, %%zmm0, %%zmm11\n\t"
      "vpdpbusd 16(%[b])%{1to16%}, %%zmm0, %%zmm12\n\t"
      "vpdpbusd 20(%[b])%{1to16%}, %%zmm0, %%zmm13\n\t"
      "vpdpbusd 24(%[b])%{1to16%}, %%zmm0, %%zmm14\n\t"
      "vpdpbusd 28(%[b])%{1to16%}, %%zmm0, %%zmm15\n\t"
      "vpdpbusd 32(%[b])%{1to16%}, %%zmm0, %%zmm16\n\t"
      "vpdpbusd 36(%[b])%{1to16%}, %%zmm0, %%zmm17\n\t"
      "vpdpbusd 40(%[b])%{1to16%}, %%zmm0, %%zmm18\n\t"
      "vpdpbusd 44(%[b])%{1to16%}, %%zmm0, %%zmm19\n\t"
      "vpdpbusd 48(%[b])%{1to16%}, %%zmm0, %%zmm20\n\t"
      "vpdpbusd 52(%[b])%{1to16%}, %%zmm0, %%zmm21\n\t"
      "vpdpbusd 56(%[b])%{1to16%}, %%zmm0, %%zmm22\n\t"
      "vpdpbusd 60(%[b])%{1to16%}, %%zmm0, %%zmm23\n\t"
      "add $64, %[a]\n\t"
      "add $64, %[b]\n\t"
      "dec %[g]\n\t"
      "jne 1b\n\t"
      "vmovdqu64 %%zmm8, 0(%[acc])\n\t"
      "vmovdqu64 %%zmm9, 64(%[acc])\n\t"
      "vmovdqu64 %%zmm10, 128(%[acc])\n\t"
      "vmovdqu64 %%zmm11, 192(%[acc])\n\t"
      "vmovdqu64 %%zmm12, 256(%[acc])\n\t"
      "vmovdqu64 %%zmm13, 320(%[acc])\n\t"
      "vmovdqu64 %%zmm14, 384(%[acc])\n\t"
      "vmovdqu64 %%zmm15, 448(%[acc])\n\t"
      "vmovdqu64 %%zmm16, 512(%[acc])\n\t"
      "vmovdqu64 %%zmm17, 576(%[acc])\n\t"
      "vmovdqu64 %%zmm18, 640(%[acc])\n\t"
      "vmovdqu64 %%zmm19, 704(%[acc])\n\t"
      "vmovdqu64 %%zmm20, 768(%[acc])\n\t"
      "vmovdqu64 %%zmm21, 832(%[acc])\n\t"
      "vmovdqu64 %%zmm22, 896(%[acc])\n\t"
      "vmovdqu64 %%zmm23, 960(%[acc])\n\t"
      : [a] "+r"(a), [b] "+r"(b), [g] "+r"(groups)
      : [acc] "r"(acc)
      : "zmm0", "zmm8", "zmm9", "zmm10", "zmm11", "zmm12", "zmm13",
        "zmm14", "zmm15", "zmm16", "zmm17", "zmm18", "zmm19", "zmm20",
        "zmm21", "zmm22", "zmm23", "memory", "cc");
}

// SIMD B packer for the VNNI geometry (kr = 4, nr = 16, !trans_b): each
// k-group of a panel is a 4x16 byte transpose (two punpck levels), and the
// column sums fall out of one vpdpbusd against all-ones (u8 ones x s8
// values accumulate each column's 4 bytes into its int32 lane).
__attribute__((target("avx512f,avx512bw,avx512vnni"))) void
PackBs8Vnni16x4(const int8_t* b, int64_t k, int64_t n, int64_t j0,
                int64_t nc, int8_t* out, int32_t* colsum) {
  constexpr int64_t kNr = 16;
  constexpr int64_t kKr = 4;
  const int64_t kpad = (k + kKr - 1) / kKr * kKr;
  const int64_t kfull = k / kKr * kKr;
  const __m512i ones = _mm512_set1_epi8(1);
  for (int64_t jp = 0; jp < nc; jp += kNr) {
    const int64_t cols = (nc - jp < kNr) ? nc - jp : kNr;
    int8_t* panel = out + (jp / kNr) * kpad * kNr;
    if (cols == kNr) {
      __m512i sums = _mm512_setzero_si512();
      int8_t* dst = panel;
      const int8_t* src = b + j0 + jp;
      for (int64_t p = 0; p < kfull; p += 4, dst += 64) {
        const __m128i r0 = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(src + (p + 0) * n));
        const __m128i r1 = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(src + (p + 1) * n));
        const __m128i r2 = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(src + (p + 2) * n));
        const __m128i r3 = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(src + (p + 3) * n));
        const __m128i t0 = _mm_unpacklo_epi8(r0, r1);  // c0..c7 (r0,r1)
        const __m128i t1 = _mm_unpackhi_epi8(r0, r1);  // c8..c15
        const __m128i t2 = _mm_unpacklo_epi8(r2, r3);
        const __m128i t3 = _mm_unpackhi_epi8(r2, r3);
        __m512i block = _mm512_castsi128_si512(_mm_unpacklo_epi16(t0, t2));
        block = _mm512_inserti32x4(block, _mm_unpackhi_epi16(t0, t2), 1);
        block = _mm512_inserti32x4(block, _mm_unpacklo_epi16(t1, t3), 2);
        block = _mm512_inserti32x4(block, _mm_unpackhi_epi16(t1, t3), 3);
        _mm512_storeu_si512(dst, block);
        sums = _mm512_dpbusd_epi32(sums, ones, block);
      }
      if (kfull < k) {  // zero-padded trailing group
        alignas(64) int8_t tail[64] = {0};
        for (int64_t q = 0; kfull + q < k; ++q)
          for (int64_t c = 0; c < kNr; ++c)
            tail[c * 4 + q] = src[(kfull + q) * n + c];
        const __m512i block =
            _mm512_load_si512(reinterpret_cast<const __m512i*>(tail));
        _mm512_storeu_si512(dst, block);
        sums = _mm512_dpbusd_epi32(sums, ones, block);
      }
      _mm512_storeu_si512(colsum + jp, sums);
    } else {
      // Edge panel: generic bytewise pack of the partial column set.
      PackBs8(/*trans_b=*/false, b, k, n, j0 + jp, cols, kNr, kKr, panel,
              colsum + jp);
    }
  }
}

// Direct-conv variant of PackBs8Vnni16x4 (kr = 4): rows of the k-group
// come from shifted padded-image windows; the tail group substitutes zero
// vectors for the missing k rows, which the transpose turns into exactly
// the zero-padded tail bytes the matrix packer emits. Byte-identical
// panels and colsums, same vpdpbusd colsum trick.
__attribute__((target("avx512f,avx512bw,avx512vnni"))) void
PackBs8ConvVnni16x4(const ConvImageViewS8& img, int64_t j0, int64_t nc,
                    int8_t* out, int32_t* colsum) {
  constexpr int64_t kNr = 16;
  constexpr int64_t kKr = 4;
  const int64_t k = img.depth();
  const int64_t kpad = (k + kKr - 1) / kKr * kKr;
  const int64_t kfull = k / kKr * kKr;
  const int64_t out_w = img.out_w();
  const int64_t pw = img.padded_w();
  const __m512i ones = _mm512_set1_epi8(1);
  for (int64_t jp = 0; jp < nc; jp += kNr) {
    const int64_t cols = (nc - jp < kNr) ? nc - jp : kNr;
    int8_t* panel = out + (jp / kNr) * kpad * kNr;
    if (cols == kNr) {
      int64_t contig_off = 0;
      ConvColSeg segs[17];
      const int nseg =
          BuildConvColSegs(j0 + jp, out_w, pw, &contig_off, segs);
      __m512i sums = _mm512_setzero_si512();
      int8_t* dst = panel;
      ConvRowCursor cur(img);
      const auto transpose_store = [&](__m128i r0, __m128i r1, __m128i r2,
                                       __m128i r3) {
        const __m128i t0 = _mm_unpacklo_epi8(r0, r1);  // c0..c7 (r0,r1)
        const __m128i t1 = _mm_unpackhi_epi8(r0, r1);  // c8..c15
        const __m128i t2 = _mm_unpacklo_epi8(r2, r3);
        const __m128i t3 = _mm_unpackhi_epi8(r2, r3);
        __m512i block = _mm512_castsi128_si512(_mm_unpacklo_epi16(t0, t2));
        block = _mm512_inserti32x4(block, _mm_unpackhi_epi16(t0, t2), 1);
        block = _mm512_inserti32x4(block, _mm_unpacklo_epi16(t1, t3), 2);
        block = _mm512_inserti32x4(block, _mm_unpackhi_epi16(t1, t3), 3);
        _mm512_storeu_si512(dst, block);
        sums = _mm512_dpbusd_epi32(sums, ones, block);
      };
      for (int64_t p = 0; p < kfull; p += 4, dst += 64) {
        const __m128i r0 = LoadConvBlock16(cur.row, contig_off, segs, nseg);
        cur.Advance();
        const __m128i r1 = LoadConvBlock16(cur.row, contig_off, segs, nseg);
        cur.Advance();
        const __m128i r2 = LoadConvBlock16(cur.row, contig_off, segs, nseg);
        cur.Advance();
        const __m128i r3 = LoadConvBlock16(cur.row, contig_off, segs, nseg);
        cur.Advance();
        transpose_store(r0, r1, r2, r3);
      }
      if (kfull < k) {  // zero rows for k past the end == zero-padded tail
        const __m128i zero = _mm_setzero_si128();
        __m128i r[4] = {zero, zero, zero, zero};
        for (int64_t q = 0; kfull + q < k; ++q) {
          r[q] = LoadConvBlock16(cur.row, contig_off, segs, nseg);
          cur.Advance();
        }
        transpose_store(r[0], r[1], r[2], r[3]);
      }
      _mm512_storeu_si512(colsum + jp, sums);
    } else {
      // Edge panel: generic bytewise gather of the partial column set.
      PackBs8Conv(img, j0 + jp, cols, kNr, kKr, panel, colsum + jp);
    }
  }
}

// Vectorized dequantizing store for the VNNI tile (16x16, column-major
// accumulator): shift compensation is folded into the column loads, a
// 16x16 in-register int32 transpose turns columns into row vectors, and
// each row then converts + scales + biases + clamps + masked-stores as one
// 16-lane operation. Replaces ~256 branchy scalar conversions per tile.
__attribute__((target("avx512f"))) void DequantStoreVnni16x16(
    const int32_t* acc, int64_t rows, int64_t cols, const int32_t* colsum,
    const GemmS8Epilogue& ep, int64_t row0, int64_t col0, float* c,
    int64_t ldc) {
  __m512i r[16], t[16];
  for (int j = 0; j < 16; ++j) {
    r[j] = _mm512_sub_epi32(
        _mm512_loadu_si512(acc + j * 16),
        _mm512_set1_epi32(128 * colsum[j]));
  }
  // 16x16 transpose: 32-bit unpack, 64-bit unpack, two 128-bit shuffles.
  for (int i = 0; i < 8; ++i) {
    t[2 * i] = _mm512_unpacklo_epi32(r[2 * i], r[2 * i + 1]);
    t[2 * i + 1] = _mm512_unpackhi_epi32(r[2 * i], r[2 * i + 1]);
  }
  for (int g = 0; g < 4; ++g) {
    r[4 * g + 0] = _mm512_unpacklo_epi64(t[4 * g + 0], t[4 * g + 2]);
    r[4 * g + 1] = _mm512_unpackhi_epi64(t[4 * g + 0], t[4 * g + 2]);
    r[4 * g + 2] = _mm512_unpacklo_epi64(t[4 * g + 1], t[4 * g + 3]);
    r[4 * g + 3] = _mm512_unpackhi_epi64(t[4 * g + 1], t[4 * g + 3]);
  }
  for (int i = 0; i < 4; ++i) {
    t[i] = _mm512_shuffle_i32x4(r[i], r[i + 4], 0x88);
    t[i + 4] = _mm512_shuffle_i32x4(r[i], r[i + 4], 0xdd);
    t[i + 8] = _mm512_shuffle_i32x4(r[i + 8], r[i + 12], 0x88);
    t[i + 12] = _mm512_shuffle_i32x4(r[i + 8], r[i + 12], 0xdd);
  }
  for (int i = 0; i < 8; ++i) {
    r[i] = _mm512_shuffle_i32x4(t[i], t[i + 8], 0x88);
    r[i + 8] = _mm512_shuffle_i32x4(t[i], t[i + 8], 0xdd);
  }

  const __mmask16 mask =
      static_cast<__mmask16>((1u << cols) - 1u);  // cols <= 16
  const __m512 col_scale =
      ep.col_scale != nullptr
          ? _mm512_maskz_loadu_ps(mask, ep.col_scale + col0)
          : _mm512_set1_ps(1.0f);
  const __m512 col_bias =
      ep.col_bias != nullptr
          ? _mm512_maskz_loadu_ps(mask, ep.col_bias + col0)
          : _mm512_setzero_ps();
  const __m512 zero = _mm512_setzero_ps();
  for (int64_t i = 0; i < rows; ++i) {
    const float rs =
        ep.scale * (ep.row_scale != nullptr ? ep.row_scale[row0 + i] : 1.0f);
    __m512 v = _mm512_cvtepi32_ps(r[i]);
    v = _mm512_mul_ps(v, _mm512_mul_ps(_mm512_set1_ps(rs), col_scale));
    v = _mm512_add_ps(v, col_bias);
    if (ep.row_bias != nullptr) {
      v = _mm512_add_ps(v, _mm512_set1_ps(ep.row_bias[row0 + i]));
    }
    if (ep.relu) v = _mm512_max_ps(v, zero);
    _mm512_mask_storeu_ps(c + (row0 + i) * ldc + col0, mask, v);
  }
}

#endif  // POE_GEMM_S8_X86

const KernelS8& PickKernelS8() {
  static const KernelS8 kernel = [] {
    // POE_GEMM_KERNEL=scalar|avx2|avx512 forces a variant ("avx512" maps
    // to the VNNI kernel); unsupported values fall back to detection.
    const char* env = std::getenv("POE_GEMM_KERNEL");
    const std::string want = env ? env : "";
    const KernelS8 scalar{6, 16, 4, 16, 1, 0, nullptr, nullptr, nullptr,
                          MicroKernelS8Scalar6x16, "scalar"};
    if (want == "scalar") return scalar;
#ifdef POE_GEMM_S8_X86
    const bool has_vnni = __builtin_cpu_supports("avx512vnni") &&
                          __builtin_cpu_supports("avx512bw");
    const bool has_avx2 = __builtin_cpu_supports("avx2");
    const KernelS8 vnni{16, 16, 4, 1, 16, 128,
                        PackBs8Vnni16x4, PackBs8ConvVnni16x4,
                        DequantStoreVnni16x16, MicroKernelS8Vnni16x16,
                        "avx512vnni"};
    const KernelS8 avx2{6, 16, 2, 16, 1, 0,
                        PackBs8Avx2_16x2, PackBs8ConvAvx2_16x2,
                        DequantStoreAvx2_6x16, MicroKernelS8Avx2_6x16,
                        "avx2"};
    if (want == "avx512" && has_vnni) return vnni;
    if (want == "avx2" && has_avx2) return avx2;
    if (has_vnni) return vnni;
    if (has_avx2) return avx2;
#endif
    return scalar;
  }();
  return kernel;
}

// Kernel-aware packing dispatch: the untransposed A side always takes the
// chunk-wise row-major packer; the untransposed B side takes the SIMD
// transpose packer when the dispatched kernel uses the VNNI geometry.
void PackADispatch(const KernelS8& kn, bool trans_a, const int8_t* a,
                   int64_t m, int64_t k, int64_t i0, int64_t mc,
                   uint8_t* out) {
  if (!trans_a) {
    PackAs8RowMajor(a, m, k, i0, mc, kn.mr, kn.kr, kn.shift, out);
  } else {
    PackAs8(true, a, m, k, i0, mc, kn.mr, kn.kr, kn.shift, out);
  }
}

void PackBDispatch(const KernelS8& kn, bool trans_b, const int8_t* b,
                   int64_t k, int64_t n, int64_t j0, int64_t nc,
                   int8_t* out, int32_t* colsum) {
  if (!trans_b && kn.pack_b_fast != nullptr) {
    kn.pack_b_fast(b, k, n, j0, nc, out, colsum);
    return;
  }
  PackBs8(trans_b, b, k, n, j0, nc, kn.nr, kn.kr, out, colsum);
}

// Direct-conv B pack: gathers the virtual im2col block straight from the
// padded image, SIMD when the kernel provides a conv packer.
void PackBConvDispatch(const KernelS8& kn, const ConvImageViewS8& img,
                       int64_t j0, int64_t nc, int8_t* out,
                       int32_t* colsum) {
  if (kn.pack_b_conv_fast != nullptr) {
    kn.pack_b_conv_fast(img, j0, nc, out, colsum);
    return;
  }
  PackBs8Conv(img, j0, nc, kn.nr, kn.kr, out, colsum);
}

// Scalar int32 -> f32 conversion, shared by the scalar/avx2 store path,
// GemmS8Ref, and the k == 0 epilogue-only path. The vectorized VNNI store
// performs the same arithmetic with a different operation order, so it
// may differ from this by a few ulps (tests compare kernels to the
// reference with a tight relative tolerance, not bitwise).
inline float DequantOne(int64_t i, int64_t j, int32_t acc,
                        const GemmS8Epilogue& ep) {
  float v = static_cast<float>(acc) * ep.scale;
  if (ep.row_scale != nullptr) v *= ep.row_scale[i];
  if (ep.col_scale != nullptr) v *= ep.col_scale[j];
  if (ep.row_bias != nullptr) v += ep.row_bias[i];
  if (ep.col_bias != nullptr) v += ep.col_bias[j];
  if (ep.relu && v < 0.0f) v = 0.0f;
  return v;
}

// Writes one micro-tile: undoes the A shift via colsum (colsum points at
// this panel's columns) and applies the dequantizing epilogue. noinline:
// a single compiled instance (one call per register tile) guarantees every
// execution path — parallel, sequential, prepacked — performs bitwise
// identical f32 arithmetic regardless of per-callsite fp contraction.
__attribute__((noinline)) void DequantStoreS8(
    const int32_t* acc, int64_t acc_rs, int64_t acc_cs, int64_t rows,
    int64_t cols, const int32_t* colsum, int32_t shift,
    const GemmS8Epilogue& ep, int64_t row0, int64_t col0, float* c,
    int64_t ldc) {
  for (int64_t r = 0; r < rows; ++r) {
    const int32_t* arow = acc + r * acc_rs;
    float* crow = c + (row0 + r) * ldc + col0;
    for (int64_t j = 0; j < cols; ++j) {
      crow[j] = DequantOne(row0 + r, col0 + j,
                           arow[j * acc_cs] - shift * colsum[j], ep);
    }
  }
}

// Register-tile loops over one packed macro-tile.
void MicroLoopsS8(const KernelS8& kernel, const uint8_t* a_pack,
                  const int8_t* b_pack, const int32_t* colsum, int64_t kpad,
                  int64_t i0, int64_t mc, int64_t j0, int64_t nc,
                  const GemmS8Epilogue& ep, float* c, int64_t ldc) {
  const int64_t mr = kernel.mr;
  const int64_t nr = kernel.nr;
  const int64_t groups = kpad / kernel.kr;
  const int32_t shift = kernel.shift;
  int32_t acc[kMaxMR * kMaxNR];
  for (int64_t jp = 0; jp < nc; jp += nr) {
    const int8_t* bp = b_pack + (jp / nr) * kpad * nr;
    const int64_t cols = std::min(nr, nc - jp);
    for (int64_t ip = 0; ip < mc; ip += mr) {
      kernel.fn(groups, a_pack + (ip / mr) * kpad * mr, bp, acc);
      if (kernel.store_fast != nullptr) {  // SIMD dequantizing store
        kernel.store_fast(acc, std::min(mr, mc - ip), cols, colsum + jp,
                          ep, i0 + ip, j0 + jp, c, ldc);
        continue;
      }
      DequantStoreS8(acc, kernel.acc_rs, kernel.acc_cs,
                     std::min(mr, mc - ip), cols, colsum + jp, shift, ep,
                     i0 + ip, j0 + jp, c, ldc);
    }
  }
}

// Offsets into a persistent prepacked op(B): per column tile the panels
// occupy kpad * nc_pad bytes and the colsums nc_pad entries; every tile
// before j0 is full (kNC wide, kNC a multiple of every NR), so tile bases
// are kpad * j0 / j0 exactly.
struct PrepackedS8B {
  const int8_t* data;
  const int32_t* colsum;
};

// Computes the C macro-tile [i0, i0+mc) x [j0, j0+nc) from scratch-packed
// panels. `prepacked_a` (kernel-layout panels for the full m, from
// PackedS8Weights) skips the A pack; it requires i0 % mr == 0, which holds
// because kMC is a multiple of every MR. `prepacked_b` (panels + colsums
// for the full k x n, from PackedS8BWeights) likewise skips the B pack.
// `conv_img` substitutes the virtual im2col matrix for b (direct conv).
void ComputeTileS8(bool trans_a, bool trans_b, int64_t m, int64_t n,
                   int64_t k, const int8_t* a, const int8_t* b,
                   const ConvImageViewS8* conv_img, float* c,
                   const GemmS8Epilogue& ep, const KernelS8& kernel,
                   const uint8_t* prepacked_a, const PrepackedS8B* prepacked_b,
                   int64_t i0, int64_t mc, int64_t j0, int64_t nc) {
  const int64_t mr = kernel.mr;
  const int64_t nr = kernel.nr;
  const int64_t kpad = (k + kernel.kr - 1) / kernel.kr * kernel.kr;
  const int64_t mc_pad = (mc + mr - 1) / mr * mr;
  const int64_t nc_pad = (nc + nr - 1) / nr * nr;

  ScratchScope scope;
  const uint8_t* a_pack;
  if (prepacked_a != nullptr) {
    a_pack = prepacked_a + (i0 / mr) * kpad * mr;
  } else {
    uint8_t* buf = AllocU8(scope, mc_pad * kpad);
    PackADispatch(kernel, trans_a, a, m, k, i0, mc, buf);
    a_pack = buf;
  }
  const int8_t* b_pack;
  const int32_t* colsum;
  int32_t colsum_buf[kNC];
  if (prepacked_b != nullptr) {
    b_pack = prepacked_b->data + kpad * j0;
    colsum = prepacked_b->colsum + j0;
  } else {
    int8_t* buf = AllocS8(scope, nc_pad * kpad);
    if (conv_img != nullptr) {
      PackBConvDispatch(kernel, *conv_img, j0, nc, buf, colsum_buf);
    } else {
      PackBDispatch(kernel, trans_b, b, k, n, j0, nc, buf, colsum_buf);
    }
    b_pack = buf;
    colsum = colsum_buf;
  }
  MicroLoopsS8(kernel, a_pack, b_pack, colsum, kpad, i0, mc, j0, nc, ep, c,
               n);
}

void GemmS8Impl(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
                const int8_t* a, const int8_t* b, float* c,
                const GemmS8Epilogue& ep, bool parallel,
                const uint8_t* prepacked_a, const PrepackedS8B* prepacked_b,
                const ConvImageViewS8* conv_img) {
  POE_CHECK_GE(m, 0);
  POE_CHECK_GE(n, 0);
  POE_CHECK_GE(k, 0);
  POE_CHECK_LE(k, kMaxK) << "int8 GEMM depth would risk int32 overflow";
  if (m == 0 || n == 0) return;
  if (k == 0) {
    for (int64_t i = 0; i < m; ++i)
      for (int64_t j = 0; j < n; ++j) c[i * n + j] = DequantOne(i, j, 0, ep);
    return;
  }

  const KernelS8& kernel = PickKernelS8();
  const int64_t row_tiles = (m + kMC - 1) / kMC;
  const int64_t col_tiles = (n + kNC - 1) / kNC;
  const int64_t workers = parallel ? NumThreads() : 1;
  // Macro-tile parallelism only when there are enough tiles to occupy the
  // pool; under-tiled shapes (the common conv geometry: out_channels <=
  // kMC, out pixels <= kNC) fall through to the hoisted path, which
  // distributes NR-column micro-panel blocks of each macro tile across the
  // workers instead (sub-tile parallelism). Both schedules produce bitwise
  // identical C: every register tile is computed by exactly one task with
  // the same packed panels and the same single dequantizing store.
  if (workers > 1 && row_tiles * col_tiles >= workers) {
    ParallelFor2D(row_tiles, col_tiles, [&](int64_t rt, int64_t ct) {
      const int64_t i0 = rt * kMC;
      const int64_t j0 = ct * kNC;
      ComputeTileS8(trans_a, trans_b, m, n, k, a, b, conv_img, c, ep,
                    kernel, prepacked_a, prepacked_b, i0,
                    std::min(kMC, m - i0), j0, std::min(kNC, n - j0));
    });
    return;
  }
  // Hoisted path: op(B) packing is hoisted out of the row-tile loop —
  // each B stripe is packed once per column tile and reused by every row
  // macro-tile (the f32 path shares this structure). With workers > 1 the
  // register-tile loops split over micro-panel column blocks.
  const bool subtile = workers > 1;
  const int64_t kpad = (k + kernel.kr - 1) / kernel.kr * kernel.kr;
  const int64_t mr = kernel.mr;
  const int64_t nr = kernel.nr;
  for (int64_t ct = 0; ct < col_tiles; ++ct) {
    const int64_t j0 = ct * kNC;
    const int64_t nc = std::min(kNC, n - j0);
    const int64_t nc_pad = (nc + nr - 1) / nr * nr;
    ScratchScope scope;
    const int8_t* b_pack;
    const int32_t* colsum;
    int32_t colsum_buf[kNC];
    if (prepacked_b != nullptr) {
      b_pack = prepacked_b->data + kpad * j0;
      colsum = prepacked_b->colsum + j0;
    } else {
      int8_t* buf = AllocS8(scope, nc_pad * kpad);
      if (conv_img != nullptr) {
        PackBConvDispatch(kernel, *conv_img, j0, nc, buf, colsum_buf);
      } else {
        PackBDispatch(kernel, trans_b, b, k, n, j0, nc, buf, colsum_buf);
      }
      b_pack = buf;
      colsum = colsum_buf;
    }
    for (int64_t rt = 0; rt < row_tiles; ++rt) {
      const int64_t i0 = rt * kMC;
      const int64_t mc = std::min(kMC, m - i0);
      const uint8_t* a_pack;
      ScratchScope tile_scope;
      if (prepacked_a != nullptr) {
        a_pack = prepacked_a + (i0 / mr) * kpad * mr;
      } else {
        const int64_t mc_pad = (mc + mr - 1) / mr * mr;
        uint8_t* buf = AllocU8(tile_scope, mc_pad * kpad);
        PackADispatch(kernel, trans_a, a, m, k, i0, mc, buf);
        a_pack = buf;
      }
      // One block = [jb0, jb1) micro panels; pointers advance whole
      // panels, so each block runs MicroLoopsS8 on a disjoint C column
      // range with its own accumulator (no shared mutable state).
      const auto micro_panels = [&](int64_t jb0, int64_t jb1) {
        MicroLoopsS8(kernel, a_pack, b_pack + jb0 * kpad * nr,
                     colsum + jb0 * nr, kpad, i0, mc, j0 + jb0 * nr,
                     std::min(nc - jb0 * nr, (jb1 - jb0) * nr), ep, c, n);
      };
      const int64_t jp_blocks = (nc + nr - 1) / nr;
      if (subtile && jp_blocks > 1) {
        ParallelFor(jp_blocks, micro_panels, /*min_chunk=*/1);
      } else {
        micro_panels(0, jp_blocks);
      }
    }
  }
}

}  // namespace

void GemmS8(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
            const int8_t* a, const int8_t* b, float* c,
            const GemmS8Epilogue& epilogue, bool parallel) {
  GemmS8Impl(trans_a, trans_b, m, n, k, a, b, c, epilogue, parallel,
             /*prepacked_a=*/nullptr, /*prepacked_b=*/nullptr,
             /*conv_img=*/nullptr);
}

PackedS8Weights PackedS8Weights::Pack(int64_t m, int64_t k,
                                      const int8_t* a) {
  POE_CHECK_GT(m, 0);
  POE_CHECK_GT(k, 0);
  POE_CHECK_LE(k, kMaxK);
  const KernelS8& kernel = PickKernelS8();
  const int64_t kpad = (k + kernel.kr - 1) / kernel.kr * kernel.kr;
  const int64_t panels = (m + kernel.mr - 1) / kernel.mr;
  PackedS8Weights packed;
  packed.m_ = m;
  packed.k_ = k;
  packed.data_.resize(static_cast<size_t>(panels * kpad * kernel.mr));
  PackADispatch(kernel, /*trans_a=*/false, a, m, k, /*i0=*/0, /*mc=*/m,
                packed.data_.data());
  return packed;
}

void GemmS8PackedA(const PackedS8Weights& a, int64_t n, const int8_t* b,
                   float* c, const GemmS8Epilogue& epilogue, bool parallel) {
  POE_CHECK(!a.empty()) << "GemmS8PackedA on unpacked weights";
  GemmS8Impl(/*trans_a=*/false, /*trans_b=*/false, a.m_, n, a.k_,
             /*a=*/nullptr, b, c, epilogue, parallel, a.data_.data(),
             /*prepacked_b=*/nullptr, /*conv_img=*/nullptr);
}

void GemmS8Conv(int64_t m, const int8_t* a, const ConvImageViewS8& img,
                float* c, const GemmS8Epilogue& epilogue, bool parallel) {
  GemmS8Impl(/*trans_a=*/false, /*trans_b=*/false, m, img.cols(),
             img.depth(), a, /*b=*/nullptr, c, epilogue, parallel,
             /*prepacked_a=*/nullptr, /*prepacked_b=*/nullptr, &img);
}

void GemmS8ConvPackedA(const PackedS8Weights& a, const ConvImageViewS8& img,
                       float* c, const GemmS8Epilogue& epilogue,
                       bool parallel) {
  POE_CHECK(!a.empty()) << "GemmS8ConvPackedA on unpacked weights";
  POE_CHECK_EQ(a.k_, img.depth());
  GemmS8Impl(/*trans_a=*/false, /*trans_b=*/false, a.m_, img.cols(), a.k_,
             /*a=*/nullptr, /*b=*/nullptr, c, epilogue, parallel,
             a.data_.data(), /*prepacked_b=*/nullptr, &img);
}

void PackedS8Weights::Unpack(int8_t* out) const {
  POE_CHECK(!empty()) << "Unpack on empty PackedS8Weights";
  const KernelS8& kernel = PickKernelS8();
  const int64_t mr = kernel.mr;
  const int64_t kr = kernel.kr;
  const int64_t kpad = (k_ + kr - 1) / kr * kr;
  const uint8_t shift = kernel.shift;
  // Inverse of the panel layout (see pack_s8.h): value(i, p) lives at
  // panel (i/mr), k-group (p/kr), row run i%mr, byte p%kr — shifted.
  for (int64_t i = 0; i < m_; ++i) {
    const uint8_t* panel = data_.data() + (i / mr) * kpad * mr;
    const int64_t r = i % mr;
    for (int64_t p = 0; p < k_; ++p) {
      const uint8_t byte = panel[(p / kr) * mr * kr + r * kr + (p % kr)];
      out[i * k_ + p] = static_cast<int8_t>(byte - shift);
    }
  }
}

PackedS8BWeights PackedS8BWeights::Pack(bool trans_b, int64_t k, int64_t n,
                                        const int8_t* b) {
  POE_CHECK_GT(k, 0);
  POE_CHECK_GT(n, 0);
  POE_CHECK_LE(k, kMaxK);
  const KernelS8& kernel = PickKernelS8();
  const int64_t nr = kernel.nr;
  const int64_t kpad = (k + kernel.kr - 1) / kernel.kr * kernel.kr;
  PackedS8BWeights packed;
  packed.k_ = k;
  packed.n_ = n;
  // Layout: per kNC column tile (full tiles occupy exactly kpad * kNC
  // panel bytes and kNC colsums; kNC is a multiple of every kernel's NR),
  // panels + nr-padded column sums exactly as the per-call pack emits.
  int64_t pad_cols = 0;
  for (int64_t j0 = 0; j0 < n; j0 += kNC) {
    const int64_t nc = std::min(kNC, n - j0);
    pad_cols += (nc + nr - 1) / nr * nr;
  }
  packed.data_.resize(static_cast<size_t>(kpad * pad_cols));
  packed.colsum_.resize(static_cast<size_t>(pad_cols));
  for (int64_t j0 = 0; j0 < n; j0 += kNC) {
    const int64_t nc = std::min(kNC, n - j0);
    PackBDispatch(kernel, trans_b, b, k, n, j0, nc,
                  packed.data_.data() + kpad * j0,
                  packed.colsum_.data() + j0);
  }
  return packed;
}

void GemmS8PackedB(bool trans_a, int64_t m, const int8_t* a,
                   const PackedS8BWeights& b, float* c,
                   const GemmS8Epilogue& epilogue, bool parallel) {
  POE_CHECK(!b.empty()) << "GemmS8PackedB on unpacked weights";
  const PrepackedS8B pb{b.data_.data(), b.colsum_.data()};
  GemmS8Impl(trans_a, /*trans_b=*/false, m, b.n_, b.k_, a,
             /*b=*/nullptr, c, epilogue, parallel,
             /*prepacked_a=*/nullptr, &pb, /*conv_img=*/nullptr);
}

void PackedS8BWeights::Unpack(int8_t* out) const {
  POE_CHECK(!empty()) << "Unpack on empty PackedS8BWeights";
  const KernelS8& kernel = PickKernelS8();
  const int64_t nr = kernel.nr;
  const int64_t kr = kernel.kr;
  const int64_t kpad = (k_ + kr - 1) / kr * kr;
  // Inverse of the tile/panel layout: op(B) column j lives in column tile
  // j / kNC (every full tile occupies exactly kpad * kNC panel bytes, so
  // tile bases are kpad * tile0), panel (jt / nr) inside the tile, column
  // run jt % nr, k-group p / kr, byte p % kr. Emitted row-major as the
  // trans_b = true Pack source: out[j * k + p] = op(B)(p, j).
  for (int64_t j = 0; j < n_; ++j) {
    const int64_t tile0 = j / kNC * kNC;
    const int64_t jt = j - tile0;
    const int8_t* panel = data_.data() + kpad * tile0 +
                          (jt / nr) * kpad * nr + (jt % nr) * kr;
    int8_t* dst = out + j * k_;
    for (int64_t p = 0; p < k_; ++p) {
      dst[p] = panel[(p / kr) * nr * kr + (p % kr)];
    }
  }
}

void GemmS8Ref(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
               const int8_t* a, const int8_t* b, float* c,
               const GemmS8Epilogue& epilogue) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      int32_t acc = 0;
      for (int64_t p = 0; p < k; ++p) {
        const int32_t av = trans_a ? a[p * m + i] : a[i * k + p];
        const int32_t bv = trans_b ? b[j * k + p] : b[p * n + j];
        acc += av * bv;
      }
      c[i * n + j] = DequantOne(i, j, acc, epilogue);
    }
  }
}

const char* GemmS8KernelName() { return PickKernelS8().name; }

namespace {

#ifdef POE_GEMM_S8_X86
// Vectorized activation quantization: 32 elements per iteration. Performs
// exactly QuantizeOneS8's operation sequence — scale, clamp to ±127, add
// sign(v)*0.5, truncate toward zero — so outputs are bitwise identical to
// the scalar loop (the saturating packs are no-ops on pre-clamped
// values; sign-select rounds -0.0 to 0 like the >= 0 test does). This
// pass runs over every activation element of every int8 forward, so it
// matters as soon as the per-call weight pack is gone.
__attribute__((target("avx2"))) void QuantizeBufferS8Avx2(
    const float* src, int64_t n, float inv_scale, int8_t* dst) {
  const __m256 inv = _mm256_set1_ps(inv_scale);
  const __m256 lo = _mm256_set1_ps(-127.0f);
  const __m256 hi = _mm256_set1_ps(127.0f);
  const __m256 half = _mm256_set1_ps(0.5f);
  const __m256 sign_mask = _mm256_set1_ps(-0.0f);
  const __m256i regroup = _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
  int64_t i = 0;
  for (; i + 32 <= n; i += 32) {
    __m256i q[4];
    for (int v = 0; v < 4; ++v) {
      __m256 x = _mm256_loadu_ps(src + i + v * 8);
      x = _mm256_mul_ps(x, inv);
      // min(x, 127) first: MINPS returns the SECOND operand on NaN, so a
      // NaN clamps to 127 exactly like the scalar std::min(127, NaN).
      x = _mm256_max_ps(_mm256_min_ps(x, hi), lo);
      const __m256 rnd = _mm256_or_ps(_mm256_and_ps(x, sign_mask), half);
      q[v] = _mm256_cvttps_epi32(_mm256_add_ps(x, rnd));
    }
    // 4x8 int32 -> 32 int8; packs work lane-wise, the permute restores
    // element order (groups 0,4,1,5,... are q0[0:4), q0[4:8), q1[0:4)...).
    const __m256i p01 = _mm256_packs_epi32(q[0], q[1]);
    const __m256i p23 = _mm256_packs_epi32(q[2], q[3]);
    const __m256i packed = _mm256_permutevar8x32_epi32(
        _mm256_packs_epi16(p01, p23), regroup);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), packed);
  }
  for (; i < n; ++i) dst[i] = QuantizeOneS8(src[i], inv_scale);
}

// Vectorized max-|x| scan: |x| is the sign bit cleared (exactly the scalar
// negate for negatives), and the accumulate keeps the NEW value as MAXPS's
// first operand — the instruction returns its second operand on unordered
// compares, so a NaN input leaves the running max untouched, exactly like
// the scalar `v > max` test. The maximum of a set of non-negative floats
// is a unique value, so the 4-accumulator reassociation cannot change the
// result: bitwise identical to the scalar loop.
__attribute__((target("avx2"))) float MaxAbsAvx2(const float* src,
                                                 int64_t n) {
  const __m256 abs_mask =
      _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  __m256 m0 = _mm256_setzero_ps();
  __m256 m1 = _mm256_setzero_ps();
  __m256 m2 = _mm256_setzero_ps();
  __m256 m3 = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 32 <= n; i += 32) {
    m0 = _mm256_max_ps(
        _mm256_and_ps(_mm256_loadu_ps(src + i), abs_mask), m0);
    m1 = _mm256_max_ps(
        _mm256_and_ps(_mm256_loadu_ps(src + i + 8), abs_mask), m1);
    m2 = _mm256_max_ps(
        _mm256_and_ps(_mm256_loadu_ps(src + i + 16), abs_mask), m2);
    m3 = _mm256_max_ps(
        _mm256_and_ps(_mm256_loadu_ps(src + i + 24), abs_mask), m3);
  }
  for (; i + 8 <= n; i += 8) {
    m0 = _mm256_max_ps(
        _mm256_and_ps(_mm256_loadu_ps(src + i), abs_mask), m0);
  }
  // Accumulators hold only non-NaN values, so the reduce order is free.
  m0 = _mm256_max_ps(_mm256_max_ps(m0, m1), _mm256_max_ps(m2, m3));
  __m128 m = _mm_max_ps(_mm256_castps256_ps128(m0),
                        _mm256_extractf128_ps(m0, 1));
  m = _mm_max_ps(m, _mm_movehl_ps(m, m));
  m = _mm_max_ss(m, _mm_shuffle_ps(m, m, 1));
  float max_abs = _mm_cvtss_f32(m);
  for (; i < n; ++i) {
    const float v = src[i] < 0.0f ? -src[i] : src[i];
    if (v > max_abs) max_abs = v;
  }
  return max_abs;
}
#endif  // POE_GEMM_S8_X86

}  // namespace

void QuantizeBufferS8(const float* src, int64_t n, float inv_scale,
                      int8_t* dst) {
  // One rounding rule for every int8 producer (see QuantizeOneS8). The
  // AVX2 path is bitwise identical, so it engages on CPU capability alone
  // (independent of the POE_GEMM_KERNEL override, which pins kernel
  // GEOMETRY, not elementwise arithmetic).
#ifdef POE_GEMM_S8_X86
  static const bool kHasAvx2 = __builtin_cpu_supports("avx2");
  if (kHasAvx2) {
    QuantizeBufferS8Avx2(src, n, inv_scale, dst);
    return;
  }
#endif
  for (int64_t i = 0; i < n; ++i) dst[i] = QuantizeOneS8(src[i], inv_scale);
}

float SymmetricScaleS8(const float* src, int64_t n) {
  const float max_abs = MaxAbs(src, n);
  return max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
}

float MaxAbs(const float* src, int64_t n) {
  // Like QuantizeBufferS8, the AVX2 path is bitwise identical to the
  // scalar loop and engages on CPU capability alone.
#ifdef POE_GEMM_S8_X86
  static const bool kHasAvx2 = __builtin_cpu_supports("avx2");
  if (kHasAvx2) return MaxAbsAvx2(src, n);
#endif
  float max_abs = 0.0f;
  for (int64_t i = 0; i < n; ++i) {
    const float v = src[i] < 0.0f ? -src[i] : src[i];
    if (v > max_abs) max_abs = v;
  }
  return max_abs;
}

}  // namespace poe

#include "tensor/arena.h"

#include <algorithm>

#include "util/logging.h"

namespace poe {

float* ScratchArena::Alloc(int64_t n) {
  POE_CHECK_GE(n, 0);
  // Round up so consecutive buffers keep 64-byte-multiple spacing (block
  // bases themselves are only operator-new aligned; all SIMD consumers
  // use unaligned loads).
  n = (n + 15) & ~int64_t{15};
  if (n == 0) n = 16;
  while (current_ < static_cast<int64_t>(blocks_.size())) {
    Block& b = blocks_[current_];
    if (b.size - offset_ >= n) {
      float* p = b.data.get() + offset_;
      offset_ += n;
      return p;
    }
    // Leave the block's tail unused; move on. The walk order is
    // deterministic, so a warmed-up arena replays the same placements.
    ++current_;
    offset_ = 0;
  }
  Block b;
  b.size = std::max(n, kMinBlockFloats);
  b.data = std::make_unique<float[]>(b.size);
  capacity_ += b.size;
  blocks_.push_back(std::move(b));
  current_ = static_cast<int64_t>(blocks_.size()) - 1;
  offset_ = n;
  return blocks_.back().data.get();
}

ScratchArena& ScratchArena::ThreadLocal() {
  thread_local ScratchArena arena;
  return arena;
}

}  // namespace poe

// Panel packing for the int8 GEMM (see gemm_s8.cc and docs/PERF.md).
#ifndef POE_TENSOR_PACK_S8_H_
#define POE_TENSOR_PACK_S8_H_

#include <cstdint>

#include "tensor/conv_direct.h"

namespace poe {

// The int8 micro-kernels consume op(A) as MR-row panels and op(B) as
// NR-column panels with the k axis additionally grouped by KR (the number
// of 8-bit products one kernel instruction accumulates: 4 for AVX-512 VNNI
// vpdpbusd, 2 for the AVX2 int16-madd path):
//
//   a_pack[(ip/MR)*kpad*MR + (p/KR)*MR*KR + r*KR + (p%KR)]
//       = shift + op(A)(i0+ip+r, p)                        (stored uint8)
//   b_pack[(jp/NR)*kpad*NR + (p/KR)*NR*KR + c*KR + (p%KR)]
//       = op(B)(p, j0+jp+c)                                (stored int8)
//
// so one k-group of the kernel reads MR*KR contiguous A bytes and each
// row/column owns a KR-byte run inside a group (the VNNI kernel broadcasts
// a column's 4-byte run straight from the B panel). Unlike the f32 GEMM
// there is no k-blocking: panels span the whole k, so a register tile
// accumulates its entire int32 dot product in one kernel call and the
// dequantizing store runs exactly once per tile.
//
// `shift` is the unsigned-operand offset of the kernel (128 for VNNI's
// u8 x s8 vpdpbusd, 0 otherwise). Rows past the matrix edge and k past
// the end are filled with `shift` in A (a true zero after the shift) and
// 0 in B, so products in the padding vanish and kernels never need
// remainder loops.
//
// Packing op(B) also records colsum[c] = sum_p op(B)(p, j0+c) per packed
// column (colsum must hold ceil(nc/nr)*nr entries), the compensation term
// the dequantizing store needs to undo the A shift:
// sum_p (a+128)*b = sum_p a*b + 128*colsum.

/// Packs the op(A) block rows [i0, i0+mc) x the full k into `out`
/// (ceil(mc/mr) panels of kpad*mr bytes, kpad = k rounded up to kr).
/// op(A) is the m x k operand: A itself when !trans_a, else the transpose
/// of the k x m storage.
inline void PackAs8(bool trans_a, const int8_t* a, int64_t m, int64_t k,
                    int64_t i0, int64_t mc, int64_t mr, int64_t kr,
                    uint8_t shift, uint8_t* out) {
  const int64_t kpad = (k + kr - 1) / kr * kr;
  const int64_t group = mr * kr;  // bytes per packed k-group
  for (int64_t ip = 0; ip < mc; ip += mr) {
    const int64_t rows = (mc - ip < mr) ? mc - ip : mr;
    uint8_t* panel = out + (ip / mr) * kpad * mr;
    if (!trans_a) {
      // A(i, p) = a[i*k + p]: each source row is contiguous in p.
      for (int64_t r = 0; r < rows; ++r) {
        const int8_t* src = a + (i0 + ip + r) * k;
        uint8_t* dst = panel + r * kr;
        int64_t p = 0;
        for (; p + kr <= k; p += kr, dst += group) {
          for (int64_t q = 0; q < kr; ++q)
            dst[q] = static_cast<uint8_t>(src[p + q] + shift);
        }
        for (int64_t q = 0; p < k; ++p, ++q)
          dst[q] = static_cast<uint8_t>(src[p] + shift);
      }
    } else {
      // A(i, p) = a[p*m + i]: each source k-slice is contiguous in r.
      for (int64_t p = 0; p < k; ++p) {
        const int8_t* src = a + p * m + i0 + ip;
        uint8_t* dst = panel + (p / kr) * group + (p % kr);
        for (int64_t r = 0; r < rows; ++r)
          dst[r * kr] = static_cast<uint8_t>(src[r] + shift);
      }
    }
    // Row padding and the k tail are `shift` (zero after unshifting).
    if (rows < mr) {
      for (int64_t p = 0; p < kpad; ++p) {
        uint8_t* dst = panel + (p / kr) * group + (p % kr);
        for (int64_t r = rows; r < mr; ++r) dst[r * kr] = shift;
      }
    }
    if (k < kpad) {
      for (int64_t p = k; p < kpad; ++p) {
        uint8_t* dst = panel + (p / kr) * group + (p % kr);
        for (int64_t r = 0; r < rows; ++r) dst[r * kr] = shift;
      }
    }
  }
}

/// Packs the op(B) block full k x [j0, j0+nc) into `out` (ceil(nc/nr)
/// panels of kpad*nr bytes) and writes colsum[c] for c in [0,
/// ceil(nc/nr)*nr). op(B) is the k x n operand: B itself when !trans_b,
/// else the transpose of the n x k storage.
inline void PackBs8(bool trans_b, const int8_t* b, int64_t k, int64_t n,
                    int64_t j0, int64_t nc, int64_t nr, int64_t kr,
                    int8_t* out, int32_t* colsum) {
  const int64_t kpad = (k + kr - 1) / kr * kr;
  const int64_t group = nr * kr;  // bytes per packed k-group
  for (int64_t jp = 0; jp < nc; jp += nr) {
    const int64_t cols = (nc - jp < nr) ? nc - jp : nr;
    int8_t* panel = out + (jp / nr) * kpad * nr;
    int32_t* sums = colsum + jp;
    for (int64_t c = 0; c < nr; ++c) sums[c] = 0;
    if (!trans_b) {
      // B(p, j) = b[p*n + j]: each source row is contiguous in j. One
      // pass interleaves kr source rows into the packed k-group.
      int8_t* dst = panel;
      int64_t p = 0;
      for (; p + kr <= k; p += kr, dst += group) {
        for (int64_t q = 0; q < kr; ++q) {
          const int8_t* src = b + (p + q) * n + j0 + jp;
          for (int64_t c = 0; c < cols; ++c) {
            dst[c * kr + q] = src[c];
            sums[c] += src[c];
          }
          for (int64_t c = cols; c < nr; ++c) dst[c * kr + q] = 0;
        }
      }
      if (p < k) {  // partial trailing group, zero-padded to kr
        for (int64_t q = 0; q < kr; ++q) {
          if (p + q < k) {
            const int8_t* src = b + (p + q) * n + j0 + jp;
            for (int64_t c = 0; c < cols; ++c) {
              dst[c * kr + q] = src[c];
              sums[c] += src[c];
            }
            for (int64_t c = cols; c < nr; ++c) dst[c * kr + q] = 0;
          } else {
            for (int64_t c = 0; c < nr; ++c) dst[c * kr + q] = 0;
          }
        }
      }
    } else {
      // B(p, j) = b[j*k + p]: each source column is contiguous in p.
      for (int64_t c = 0; c < cols; ++c) {
        const int8_t* src = b + (j0 + jp + c) * k;
        int8_t* dst = panel + c * kr;
        int32_t sum = 0;
        int64_t p = 0;
        for (; p + kr <= k; p += kr, dst += group) {
          for (int64_t q = 0; q < kr; ++q) {
            dst[q] = src[p + q];
            sum += src[p + q];
          }
        }
        if (p < k) {  // zero-padded tail group
          for (int64_t q = 0; q < kr; ++q) {
            dst[q] = (p + q < k) ? src[p + q] : 0;
            if (p + q < k) sum += src[p + q];
          }
        }
        sums[c] = sum;
      }
      // Column padding is true zeros.
      for (int64_t c = cols; c < nr; ++c) {
        int8_t* dst = panel + c * kr;
        for (int64_t g = 0; g < kpad / kr; ++g)
          for (int64_t q = 0; q < kr; ++q) dst[g * group + q] = 0;
      }
    }
  }
}

/// Packs the full k x [j0, j0+nc) block of the *virtual* im2col matrix of
/// `img` (see PackBConv in pack.h for the row/column mapping) into `out`
/// and writes colsum exactly like PackBs8. This is the portable direct-conv
/// B pack used by the scalar kernel and by edge panels of the SIMD conv
/// packers; the panel bytes and colsums are identical to
/// PackBs8(!trans_b, im2col_matrix, ...), so the int8 GEMM — whose
/// accumulation is exact integer arithmetic — produces bitwise-identical
/// output on the direct and im2col paths.
inline void PackBs8Conv(const ConvImageViewS8& img, int64_t j0, int64_t nc,
                        int64_t nr, int64_t kr, int8_t* out,
                        int32_t* colsum) {
  const int64_t k = img.depth();
  const int64_t kpad = (k + kr - 1) / kr * kr;
  const int64_t group = nr * kr;  // bytes per packed k-group
  const int64_t pw = img.padded_w();
  const int64_t out_w = img.out_w();
  const int64_t kk = img.kernel * img.kernel;
  for (int64_t jp = 0; jp < nc; jp += nr) {
    const int64_t cols = (nc - jp < nr) ? nc - jp : nr;
    int8_t* panel = out + (jp / nr) * kpad * nr;
    int32_t* sums = colsum + jp;
    for (int64_t c = 0; c < nr; ++c) sums[c] = 0;
    int8_t* dst = panel;
    for (int64_t p = 0; p < kpad; p += kr, dst += group) {
      for (int64_t q = 0; q < kr; ++q) {
        const int64_t pk = p + q;
        if (pk >= k) {  // zero-padded k tail
          for (int64_t c = 0; c < nr; ++c) dst[c * kr + q] = 0;
          continue;
        }
        const int64_t ch = pk / kk;
        const int64_t rem = pk - ch * kk;
        const int64_t kh = rem / img.kernel;
        const int64_t kw = rem - kh * img.kernel;
        const int8_t* base =
            img.padded + (ch * img.padded_h() + kh) * pw + kw;
        int64_t j = j0 + jp;
        int64_t c = 0;
        while (c < cols) {
          const int64_t oh = j / out_w;
          const int64_t ow = j - oh * out_w;
          const int64_t len =
              (cols - c < out_w - ow) ? cols - c : out_w - ow;
          const int8_t* src = base + oh * pw + ow;
          for (int64_t t = 0; t < len; ++t, ++c, ++j) {
            dst[c * kr + q] = src[t];
            sums[c] += src[t];
          }
        }
        for (int64_t cpad = cols; cpad < nr; ++cpad) dst[cpad * kr + q] = 0;
      }
    }
  }
}

}  // namespace poe

#endif  // POE_TENSOR_PACK_S8_H_

// Im2col-free direct convolution support: shifted-row views of a padded
// input image that the blocked GEMM packs its B panels from directly.
//
// The direct path replaces the materialized im2col matrix (which
// duplicates every input element kernel*kernel times) with a single
// zero-padded copy of the image. The GEMM's B-panel packers gather the
// *virtual* im2col matrix straight out of that copy while packing: for
// stride 1 a run of output columns inside one output row is contiguous in
// the padded image, so the gather is spans/memcpys (f32) or straight SIMD
// loads (int8) rather than an element-at-a-time unfold. The packed panel
// bytes are identical to what PackB/PackBs8 would produce from the real
// im2col matrix, so the GEMM arithmetic — and therefore the conv output —
// is bitwise identical to the im2col path on every kernel tier, by
// construction.
//
// Coverage: stride 1, square kernels, any padding (kernel 1 with pad 0 is
// already served by the cheaper pointwise path in Conv2d). Strided
// geometries fall back to im2col; `POE_CONV_PATH=im2col|direct|auto`
// (or SetConvPath) overrides the automatic choice for A/B benching.
#ifndef POE_TENSOR_CONV_DIRECT_H_
#define POE_TENSOR_CONV_DIRECT_H_

#include <cstdint>

namespace poe {

/// Which lowering Conv2d uses for non-pointwise forward passes.
enum class ConvPath {
  kAuto,    ///< direct when the geometry is covered, else im2col
  kIm2Col,  ///< always materialize the im2col matrix
  kDirect,  ///< direct when covered; uncovered geometries still fall back
};

/// Current process-wide path choice. Initialized once from POE_CONV_PATH
/// ("auto" | "im2col" | "direct", default auto).
ConvPath ConvPathChoice();

/// Overrides the path choice (tests and A/B benches). Not thread-safe
/// against concurrent forwards; flip it only around single-threaded
/// measurement or setup code.
void SetConvPath(ConvPath path);

/// True when the direct path covers this geometry: stride 1 (the padding
/// is absorbed into the padded image copy, so any pad works).
inline bool DirectConvSupported(int64_t kernel, int64_t stride) {
  return stride == 1 && kernel >= 1;
}

/// Combined decision: the configured path choice applied to a geometry.
inline bool UseDirectConv(int64_t kernel, int64_t stride) {
  return ConvPathChoice() != ConvPath::kIm2Col &&
         DirectConvSupported(kernel, stride);
}

/// A zero-padded image the GEMM reads the virtual im2col matrix from.
/// `padded` holds channels x (height + 2*pad) x (width + 2*pad) elements;
/// the interior is the image, the border is exact zero (float 0.0f or
/// quantized 0, matching what Im2Col writes for out-of-range taps).
template <typename T>
struct ConvImageViewT {
  const T* padded = nullptr;
  int64_t channels = 0;
  int64_t height = 0;  ///< logical (unpadded) image height
  int64_t width = 0;   ///< logical (unpadded) image width
  int64_t kernel = 0;  ///< square kernel extent (stride is always 1)
  int64_t pad = 0;

  int64_t padded_h() const { return height + 2 * pad; }
  int64_t padded_w() const { return width + 2 * pad; }
  int64_t out_h() const { return height + 2 * pad - kernel + 1; }
  int64_t out_w() const { return width + 2 * pad - kernel + 1; }
  /// GEMM reduction depth (im2col rows): channels * kernel^2.
  int64_t depth() const { return channels * kernel * kernel; }
  /// GEMM output columns (im2col columns): out_h * out_w.
  int64_t cols() const { return out_h() * out_w(); }
};

using ConvImageView = ConvImageViewT<float>;
using ConvImageViewS8 = ConvImageViewT<int8_t>;

/// Number of elements a padded copy of one image needs. Zero when pad == 0
/// (the view can alias the input image directly — no copy at all).
inline int64_t PaddedImageElems(int64_t channels, int64_t height,
                                int64_t width, int64_t pad) {
  return pad == 0 ? 0
                  : channels * (height + 2 * pad) * (width + 2 * pad);
}

/// Zeroes the border of a padded image buffer once; the interior may stay
/// uninitialized (CopyImageInterior overwrites all of it). Callers reuse
/// one buffer across a batch: the borders only need zeroing once because
/// interior copies never touch them.
void ZeroImageBorder(float* padded, int64_t channels, int64_t height,
                     int64_t width, int64_t pad);
void ZeroImageBorder(int8_t* padded, int64_t channels, int64_t height,
                     int64_t width, int64_t pad);

/// Copies a CHW image into the interior of a padded buffer (f32).
void CopyImageInterior(const float* image, int64_t channels, int64_t height,
                       int64_t width, int64_t pad, float* padded);
/// Same for an already-quantized int8 image.
void CopyImageInterior(const int8_t* image, int64_t channels, int64_t height,
                       int64_t width, int64_t pad, int8_t* padded);

}  // namespace poe

#endif  // POE_TENSOR_CONV_DIRECT_H_

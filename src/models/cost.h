// Analytic FLOPs/parameter cost model for the WRN family.
#ifndef POE_MODELS_COST_H_
#define POE_MODELS_COST_H_

#include <cstdint>
#include <vector>

#include "models/wrn.h"

namespace poe {

/// Per-image inference cost. `flops` counts multiply-adds as 2 flops.
struct ModelCost {
  int64_t flops = 0;
  int64_t params = 0;

  ModelCost& operator+=(const ModelCost& other) {
    flops += other.flops;
    params += other.params;
    return *this;
  }
};

inline ModelCost operator+(ModelCost a, const ModelCost& b) { return a += b; }

/// Cost of the conv1..conv3 stack for inputs of size in_h x in_w; outputs
/// the conv3 feature-map spatial size through out_h/out_w (may be null).
ModelCost CostOfLibraryPart(const WrnConfig& config, int64_t in_h,
                            int64_t in_w, int64_t* out_h = nullptr,
                            int64_t* out_w = nullptr);

/// Cost of a conv4 group + head consuming `in_channels` maps of h x w.
ModelCost CostOfExpertPart(const WrnConfig& config, int64_t in_channels,
                           int64_t in_h, int64_t in_w);

/// Full-model cost.
ModelCost CostOfWrn(const WrnConfig& config, int64_t in_h, int64_t in_w);

/// Cost of a branched task model WRN-l-(kc, [ks...]^T): one library part
/// plus one expert part per entry of `expert_configs` (all sharing the
/// library's conv3 output).
ModelCost CostOfBranched(const WrnConfig& library_config,
                         const std::vector<WrnConfig>& expert_configs,
                         int64_t in_h, int64_t in_w);

}  // namespace poe

#endif  // POE_MODELS_COST_H_

// Wide Residual Networks with the paper's fine-grained (kc, ks) widening.
#ifndef POE_MODELS_WRN_H_
#define POE_MODELS_WRN_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/module.h"
#include "nn/sequential.h"
#include "util/rng.h"

namespace poe {

/// Configuration of a WRN-l-(kc, ks) model (Section 5.1 of the paper).
///
/// Structure: conv1 (3x3, base channels) ; conv2 group (base*kc channels) ;
/// conv3 group (2*base*kc, stride 2) ; conv4 group (4*base*ks, stride 2) ;
/// head (BN-ReLU-GlobalAvgPool-Linear). Blocks per group = (depth - 4) / 6.
///
/// The paper uses base = 16 and 32x32 inputs; this repo defaults to base = 8
/// and 16x16-or-smaller synthetic inputs (see DESIGN.md substitutions).
struct WrnConfig {
  int depth = 10;         ///< l; must satisfy (l - 4) % 6 == 0, l >= 10
  double kc = 1.0;        ///< widening factor of conv2/conv3
  double ks = 1.0;        ///< widening factor of conv4 (expert group)
  int num_classes = 10;
  int base_channels = 8;  ///< channels of conv1 (paper: 16)
  int in_channels = 3;

  int blocks_per_group() const { return (depth - 4) / 6; }
  int64_t conv1_channels() const { return base_channels; }
  int64_t conv2_channels() const { return ScaledChannels(1.0 * kc); }
  int64_t conv3_channels() const { return ScaledChannels(2.0 * kc); }
  int64_t conv4_channels() const { return ScaledChannels(4.0 * ks); }

  /// "WRN-10-(1, 0.25)" style name.
  std::string ToString() const;

 private:
  int64_t ScaledChannels(double factor) const;
};

/// Builds the conv4 group + classification head as a standalone module.
/// `in_channels` must equal the library's conv3 output channel count.
std::shared_ptr<Sequential> BuildExpertPart(const WrnConfig& config,
                                            int64_t in_channels, Rng& rng);

/// Builds the conv1..conv3 stack (the part PoE keeps as the library).
std::shared_ptr<Sequential> BuildLibraryPart(const WrnConfig& config,
                                             Rng& rng);

/// A full WRN classifier, internally split at the conv3/conv4 boundary so
/// that PoE can take shared ownership of the library part after training.
class Wrn : public Module {
 public:
  Wrn(const WrnConfig& config, Rng& rng);

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  void CollectParameters(std::vector<Parameter*>* out) override;
  void CollectBuffers(std::vector<Tensor*>* out) override;
  void PrepareInt8Serving() override;
  int64_t Int8WeightBytes() const override;
  void CollectChildren(std::vector<Module*>* out) override {
    out->push_back(library_part_.get());
    out->push_back(expert_part_.get());
  }
  std::string Name() const override { return "Wrn"; }

  const WrnConfig& config() const { return config_; }
  /// conv1..conv3 (shared component candidate).
  const std::shared_ptr<Sequential>& library_part() { return library_part_; }
  /// conv4 + head (expert component candidate).
  const std::shared_ptr<Sequential>& expert_part() { return expert_part_; }

 private:
  WrnConfig config_;
  std::shared_ptr<Sequential> library_part_;
  std::shared_ptr<Sequential> expert_part_;
};

}  // namespace poe

#endif  // POE_MODELS_WRN_H_

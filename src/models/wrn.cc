#include "models/wrn.h"

#include <cmath>
#include <sstream>

#include "nn/activations.h"
#include "nn/basic_block.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/pooling.h"

namespace poe {

int64_t WrnConfig::ScaledChannels(double factor) const {
  const int64_t c =
      static_cast<int64_t>(std::llround(base_channels * factor));
  return c < 1 ? 1 : c;
}

std::string WrnConfig::ToString() const {
  std::ostringstream os;
  auto trim = [](double v) {
    std::ostringstream o;
    o << v;
    return o.str();
  };
  os << "WRN-" << depth << "-(" << trim(kc) << ", " << trim(ks) << ")";
  return os.str();
}

namespace {

void AddGroup(Sequential& seq, int blocks, int64_t in_channels,
              int64_t out_channels, int64_t stride, Rng& rng) {
  for (int i = 0; i < blocks; ++i) {
    seq.Add(std::make_unique<BasicBlock>(i == 0 ? in_channels : out_channels,
                                         out_channels, i == 0 ? stride : 1,
                                         rng));
  }
}

}  // namespace

std::shared_ptr<Sequential> BuildLibraryPart(const WrnConfig& config,
                                             Rng& rng) {
  POE_CHECK_GE(config.depth, 10);
  POE_CHECK_EQ((config.depth - 4) % 6, 0);
  auto seq = std::make_shared<Sequential>();
  // conv1: plain 3x3 convolution.
  seq->Add(std::make_unique<Conv2d>(config.in_channels,
                                    config.conv1_channels(), /*kernel=*/3,
                                    /*stride=*/1, /*pad=*/1, rng));
  const int blocks = config.blocks_per_group();
  // conv2 group (no downsampling).
  AddGroup(*seq, blocks, config.conv1_channels(), config.conv2_channels(),
           /*stride=*/1, rng);
  // conv3 group (downsample x2).
  AddGroup(*seq, blocks, config.conv2_channels(), config.conv3_channels(),
           /*stride=*/2, rng);
  return seq;
}

std::shared_ptr<Sequential> BuildExpertPart(const WrnConfig& config,
                                            int64_t in_channels, Rng& rng) {
  auto seq = std::make_shared<Sequential>();
  const int blocks = config.blocks_per_group();
  // conv4 group (downsample x2).
  AddGroup(*seq, blocks, in_channels, config.conv4_channels(), /*stride=*/2,
           rng);
  // Head: final pre-activation BN-ReLU, pool, classifier.
  seq->Add(std::make_unique<BatchNorm2d>(config.conv4_channels()));
  seq->Add(std::make_unique<ReLU>());
  seq->Add(std::make_unique<GlobalAvgPool>());
  seq->Add(std::make_unique<Linear>(config.conv4_channels(),
                                    config.num_classes, rng));
  return seq;
}

Wrn::Wrn(const WrnConfig& config, Rng& rng) : config_(config) {
  library_part_ = BuildLibraryPart(config, rng);
  expert_part_ = BuildExpertPart(config, config.conv3_channels(), rng);
}

Tensor Wrn::Forward(const Tensor& input, bool training) {
  return expert_part_->Forward(library_part_->Forward(input, training),
                               training);
}

Tensor Wrn::Backward(const Tensor& grad_output) {
  return library_part_->Backward(expert_part_->Backward(grad_output));
}

void Wrn::CollectParameters(std::vector<Parameter*>* out) {
  library_part_->CollectParameters(out);
  expert_part_->CollectParameters(out);
}

void Wrn::CollectBuffers(std::vector<Tensor*>* out) {
  library_part_->CollectBuffers(out);
  expert_part_->CollectBuffers(out);
}

void Wrn::PrepareInt8Serving() {
  library_part_->PrepareInt8Serving();
  expert_part_->PrepareInt8Serving();
}

int64_t Wrn::Int8WeightBytes() const {
  return library_part_->Int8WeightBytes() + expert_part_->Int8WeightBytes();
}

}  // namespace poe
